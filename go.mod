module atmostonce

go 1.24
