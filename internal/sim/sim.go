// Package sim is the execution engine for the paper's asynchronous
// shared-memory model (§2.1): m crash-prone processes take atomic actions
// one at a time, under the control of an omniscient on-line adversary that
// schedules steps and injects up to f < m crashes.
//
// Every algorithm in this repository is written as a state machine whose
// Step method performs exactly one action of its I/O automaton (at most one
// shared-memory access plus local computation). Because the engine
// serializes actions, each run is a linearization — exactly the execution
// space the paper's proofs quantify over.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"atmostonce/internal/shmem"
)

// Status is the lifecycle state of a process.
type Status int

// Process lifecycle states.
const (
	// Running means the process has enabled actions.
	Running Status = iota + 1
	// Done means the process terminated voluntarily (the paper's "end").
	Done
	// Crashed means the adversary delivered stop_p.
	Crashed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Done:
		return "done"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Process is a deterministic state machine executing one atomic action per
// Step call. Implementations must not touch shared memory outside Step,
// and each Step must perform at most one shared read or write.
type Process interface {
	// ID returns the 1-based process identifier from P = [1..m].
	ID() int
	// Step performs the single enabled action. It must only be called
	// while Status() == Running.
	Step()
	// Status reports the process lifecycle state.
	Status() Status
	// Crash delivers the stop action; the process takes no further steps.
	Crash()
}

// Worker is implemented by processes that track their own work, in the
// paper's cost model (§2.2: comparisons, additions, memory accesses; set
// operations cost O(log n)).
type Worker interface {
	Work() uint64
}

// Event records one do_{p,j} action.
type Event struct {
	PID  int    // process that performed the job
	Job  int64  // job identifier
	Step uint64 // global step index at which the do action occurred
}

// World is the global state of one execution: processes, shared memory and
// crash budget.
type World struct {
	Procs      []Process // Procs[i] has ID i+1
	Mem        *shmem.SimMem
	MaxCrashes int // f; must be < len(Procs)

	steps   uint64
	crashes int
	events  []Event
}

// NewWorld assembles a world. maxCrashes is clamped to m-1, the paper's
// f < m requirement.
func NewWorld(procs []Process, mem *shmem.SimMem, maxCrashes int) *World {
	if maxCrashes >= len(procs) {
		maxCrashes = len(procs) - 1
	}
	if maxCrashes < 0 {
		maxCrashes = 0
	}
	return &World{Procs: procs, Mem: mem, MaxCrashes: maxCrashes}
}

// Steps returns the number of actions executed so far.
func (w *World) Steps() uint64 { return w.steps }

// Crashes returns the number of crashes injected so far.
func (w *World) Crashes() int { return w.crashes }

// Events returns the recorded do events. The returned slice is owned by
// the world; callers must not mutate it.
func (w *World) Events() []Event { return w.events }

// RecordDo is called by processes when they execute a do_{p,j} action.
func (w *World) RecordDo(pid int, job int64) {
	w.events = append(w.events, Event{PID: pid, Job: job, Step: w.steps})
}

// Live returns the ids of processes that are still Running.
func (w *World) Live() []int {
	var out []int
	for _, p := range w.Procs {
		if p.Status() == Running {
			out = append(out, p.ID())
		}
	}
	return out
}

// CanCrash reports whether the crash budget allows another failure.
func (w *World) CanCrash() bool { return w.crashes < w.MaxCrashes }

// proc returns the process with the given 1-based id.
func (w *World) proc(pid int) Process { return w.Procs[pid-1] }

// DecisionKind distinguishes adversary moves.
type DecisionKind int

// Adversary decision kinds.
const (
	// DecideStep schedules one action of process PID.
	DecideStep DecisionKind = iota + 1
	// DecideCrash delivers stop to process PID (consumes crash budget).
	DecideCrash
)

// Decision is one adversary move.
type Decision struct {
	Kind DecisionKind
	PID  int
}

// StepOf returns a step decision for pid.
func StepOf(pid int) Decision { return Decision{Kind: DecideStep, PID: pid} }

// CrashOf returns a crash decision for pid.
func CrashOf(pid int) Decision { return Decision{Kind: DecideCrash, PID: pid} }

// Adversary controls scheduling and failures. It is consulted before every
// action with full visibility of the world ("omniscient on-line", §2.1).
// Implementations must eventually schedule every live process (fairness);
// the engine enforces only basic validity, not fairness.
type Adversary interface {
	// Next returns the next move. It must name a Running process; crash
	// moves are ignored when the budget is exhausted (the engine then asks
	// again after converting the move to a step of the same process).
	Next(w *World) Decision
}

// Result summarizes a completed execution.
type Result struct {
	Steps      uint64
	Crashes    int
	Events     []Event
	TotalWork  uint64 // sum over processes implementing Worker
	MemReads   uint64
	MemWrites  uint64
	DoneProcs  int
	CrashProcs int
}

// ErrStepLimit is returned when an execution exceeds the step budget,
// which for a fair adversary indicates a wait-freedom violation
// (Lemma 4.3 guarantees this never happens for β ≥ m).
var ErrStepLimit = errors.New("sim: step limit exceeded before termination")

// Run drives the world until every process is Done or Crashed, or until
// maxSteps actions have been executed. maxSteps ≤ 0 means no limit.
func Run(w *World, adv Adversary, maxSteps uint64) (*Result, error) {
	for {
		if allStopped(w) {
			return summarize(w), nil
		}
		if maxSteps > 0 && w.steps >= maxSteps {
			return summarize(w), ErrStepLimit
		}
		d := adv.Next(w)
		p := w.proc(d.PID)
		if p.Status() != Running {
			return summarize(w), fmt.Errorf("sim: adversary chose %s process %d", p.Status(), d.PID)
		}
		switch d.Kind {
		case DecideCrash:
			if w.CanCrash() {
				p.Crash()
				w.crashes++
				continue
			}
			// Budget exhausted: treat as a step to keep the run moving.
			fallthrough
		case DecideStep:
			w.steps++
			p.Step()
		default:
			return summarize(w), fmt.Errorf("sim: invalid decision kind %d", d.Kind)
		}
	}
}

func allStopped(w *World) bool {
	for _, p := range w.Procs {
		if p.Status() == Running {
			return false
		}
	}
	return true
}

func summarize(w *World) *Result {
	r := &Result{
		Steps:     w.steps,
		Crashes:   w.crashes,
		Events:    w.events,
		MemReads:  w.Mem.Reads(),
		MemWrites: w.Mem.Writes(),
	}
	for _, p := range w.Procs {
		switch p.Status() {
		case Done:
			r.DoneProcs++
		case Crashed:
			r.CrashProcs++
		}
		if wk, ok := p.(Worker); ok {
			r.TotalWork += wk.Work()
		}
	}
	return r
}

// --- stock adversaries ---

// RoundRobin steps live processes cyclically and never crashes anyone.
type RoundRobin struct {
	next int
}

// Next implements Adversary.
func (a *RoundRobin) Next(w *World) Decision {
	m := len(w.Procs)
	for i := 0; i < m; i++ {
		pid := a.next%m + 1
		a.next++
		if w.proc(pid).Status() == Running {
			return StepOf(pid)
		}
	}
	// Unreachable while the engine checks allStopped first.
	return StepOf(1)
}

// Random steps a uniformly random live process; with probability
// CrashProb it crashes a random live process instead (budget permitting).
// Deterministic for a fixed seed.
type Random struct {
	Rng       *rand.Rand
	CrashProb float64
}

// NewRandom returns a Random adversary with the given seed and no crashes.
func NewRandom(seed int64) *Random {
	return &Random{Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Adversary.
func (a *Random) Next(w *World) Decision {
	live := w.Live()
	pid := live[a.Rng.Intn(len(live))]
	if a.CrashProb > 0 && w.CanCrash() && len(live) > 1 && a.Rng.Float64() < a.CrashProb {
		return CrashOf(pid)
	}
	return StepOf(pid)
}

// CrashList crashes the listed processes immediately (in order, budget
// permitting), then delegates to Then.
type CrashList struct {
	Victims []int
	Then    Adversary

	idx int
}

// Next implements Adversary.
func (a *CrashList) Next(w *World) Decision {
	for a.idx < len(a.Victims) && w.CanCrash() {
		pid := a.Victims[a.idx]
		a.idx++
		if w.proc(pid).Status() == Running {
			return CrashOf(pid)
		}
	}
	return a.Then.Next(w)
}

// Solo steps a single process until it stops, then falls back to
// round-robin over the rest. Useful for building worst-case schedules.
type Solo struct {
	PID  int
	rest RoundRobin
}

// Next implements Adversary.
func (a *Solo) Next(w *World) Decision {
	if w.proc(a.PID).Status() == Running {
		return StepOf(a.PID)
	}
	return a.rest.Next(w)
}

// Observer wraps an adversary and invokes Fn with the world before every
// decision. Used to assert execution invariants (the structural facts the
// paper's proofs rely on) at every step of a run.
type Observer struct {
	Inner Adversary
	Fn    func(w *World)
}

// Next implements Adversary.
func (o *Observer) Next(w *World) Decision {
	if o.Fn != nil {
		o.Fn(w)
	}
	return o.Inner.Next(w)
}

// Scripted replays an explicit decision list, then delegates to Then.
// Decisions naming non-running processes are skipped. Used by tests and by
// the bounded model checker to reproduce counterexample schedules.
type Scripted struct {
	Script []Decision
	Then   Adversary

	idx int
}

// Next implements Adversary.
func (a *Scripted) Next(w *World) Decision {
	for a.idx < len(a.Script) {
		d := a.Script[a.idx]
		a.idx++
		if w.proc(d.PID).Status() == Running {
			return d
		}
	}
	return a.Then.Next(w)
}
