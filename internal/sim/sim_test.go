package sim

import (
	"errors"
	"testing"

	"atmostonce/internal/shmem"
)

// toyProc writes its id into register id-1 a fixed number of times, then
// terminates. One write per step.
type toyProc struct {
	id     int
	left   int
	status Status
	mem    shmem.Mem
	world  *World
	work   uint64
}

func (p *toyProc) ID() int        { return p.id }
func (p *toyProc) Status() Status { return p.status }
func (p *toyProc) Crash()         { p.status = Crashed }
func (p *toyProc) Work() uint64   { return p.work }

func (p *toyProc) Step() {
	if p.left == 0 {
		p.status = Done
		return
	}
	p.mem.Write(p.id-1, int64(p.id))
	p.world.RecordDo(p.id, int64(p.left))
	p.left--
	p.work++
}

func newToyWorld(m, writes, maxCrashes int) *World {
	mem := shmem.NewSim(m)
	toys := make([]*toyProc, m)
	procs := make([]Process, m)
	for i := 0; i < m; i++ {
		toys[i] = &toyProc{id: i + 1, left: writes, status: Running, mem: mem}
		procs[i] = toys[i]
	}
	w := NewWorld(procs, mem, maxCrashes)
	for _, p := range toys {
		p.world = w
	}
	return w
}

func TestRunRoundRobinTerminates(t *testing.T) {
	w := newToyWorld(4, 10, 0)
	res, err := Run(w, &RoundRobin{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DoneProcs != 4 || res.CrashProcs != 0 {
		t.Fatalf("done=%d crashed=%d, want 4,0", res.DoneProcs, res.CrashProcs)
	}
	// Each process: 10 writes + 1 terminating step.
	if res.Steps != 44 {
		t.Fatalf("steps = %d, want 44", res.Steps)
	}
	if res.MemWrites != 40 {
		t.Fatalf("writes = %d, want 40", res.MemWrites)
	}
	if res.TotalWork != 40 {
		t.Fatalf("work = %d, want 40", res.TotalWork)
	}
	if len(res.Events) != 40 {
		t.Fatalf("events = %d, want 40", len(res.Events))
	}
}

func TestRunStepLimit(t *testing.T) {
	w := newToyWorld(2, 1000, 0)
	_, err := Run(w, &RoundRobin{}, 10)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestCrashBudgetClamped(t *testing.T) {
	w := newToyWorld(3, 1, 5)
	if w.MaxCrashes != 2 {
		t.Fatalf("MaxCrashes = %d, want clamped 2 (f < m)", w.MaxCrashes)
	}
}

func TestCrashListCrashesVictims(t *testing.T) {
	w := newToyWorld(4, 5, 2)
	adv := &CrashList{Victims: []int{1, 3}, Then: &RoundRobin{}}
	res, err := Run(w, adv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", res.Crashes)
	}
	if w.Procs[0].Status() != Crashed || w.Procs[2].Status() != Crashed {
		t.Fatal("victims not crashed")
	}
	if w.Procs[1].Status() != Done || w.Procs[3].Status() != Done {
		t.Fatal("survivors not done")
	}
	// Crashed before any step: only survivors produced events.
	for _, e := range res.Events {
		if e.PID == 1 || e.PID == 3 {
			t.Fatalf("crashed process %d produced event", e.PID)
		}
	}
}

func TestCrashBudgetEnforced(t *testing.T) {
	w := newToyWorld(3, 2, 1)
	adv := &CrashList{Victims: []int{1, 2, 3}, Then: &RoundRobin{}}
	res, err := Run(w, adv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1 (budget)", res.Crashes)
	}
	if res.DoneProcs != 2 {
		t.Fatalf("done = %d, want 2", res.DoneProcs)
	}
}

func TestRandomAdversaryDeterministic(t *testing.T) {
	run := func() *Result {
		w := newToyWorld(3, 20, 1)
		adv := NewRandom(42)
		adv.CrashProb = 0.05
		res, err := Run(w, adv, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Crashes != b.Crashes || len(a.Events) != len(b.Events) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSoloRunsOneProcessFirst(t *testing.T) {
	w := newToyWorld(3, 4, 0)
	res, err := Run(w, &Solo{PID: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First 4 events must all belong to process 2.
	for i := 0; i < 4; i++ {
		if res.Events[i].PID != 2 {
			t.Fatalf("event %d from pid %d, want 2", i, res.Events[i].PID)
		}
	}
}

func TestScriptedReplaysThenDelegates(t *testing.T) {
	w := newToyWorld(2, 3, 0)
	script := []Decision{StepOf(2), StepOf(2), StepOf(1)}
	res, err := Run(w, &Scripted{Script: script, Then: &RoundRobin{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events[0].PID != 2 || res.Events[1].PID != 2 || res.Events[2].PID != 1 {
		t.Fatalf("script not honored: %+v", res.Events[:3])
	}
}

func TestAdversaryChoosesStoppedProcess(t *testing.T) {
	w := newToyWorld(2, 1, 0)
	// Malformed adversary that always names process 1.
	bad := adversaryFunc(func(*World) Decision { return StepOf(1) })
	_, err := Run(w, bad, 0)
	if err == nil {
		t.Fatal("expected error when adversary steps a stopped process")
	}
}

type adversaryFunc func(*World) Decision

func (f adversaryFunc) Next(w *World) Decision { return f(w) }

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{Running, "running"}, {Done, "done"}, {Crashed, "crashed"}, {Status(9), "Status(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestObserverRunsBeforeEveryDecision(t *testing.T) {
	w := newToyWorld(2, 3, 0)
	var calls []uint64
	obs := &Observer{Inner: &RoundRobin{}, Fn: func(w *World) {
		calls = append(calls, w.Steps())
	}}
	res, err := Run(w, obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(calls)) != res.Steps {
		t.Fatalf("observer called %d times for %d steps", len(calls), res.Steps)
	}
	for i, c := range calls {
		if c != uint64(i) {
			t.Fatalf("call %d saw step counter %d (must run before the step)", i, c)
		}
	}
}

func TestObserverNilFn(t *testing.T) {
	w := newToyWorld(2, 2, 0)
	if _, err := Run(w, &Observer{Inner: &RoundRobin{}}, 0); err != nil {
		t.Fatal(err)
	}
}
