// Package harness defines the reproduction experiments E1–E8 (see
// DESIGN.md §4): one experiment per theorem of the paper, each producing
// a table that pairs the paper's predicted value or asymptotic shape with
// the measured one. cmd/amo-bench renders the full suite to Markdown;
// bench_test.go exposes each experiment as a testing.B benchmark.
package harness

import (
	"fmt"
	"strings"
)

// Table is one experiment's result table.
type Table struct {
	// ID is the experiment identifier (E1..E8).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the reproduced statement of the paper.
	Claim string
	// Header and Rows hold the tabular data.
	Header []string
	Rows   [][]string
	// Notes are appended after the table.
	Notes []string
	// Pass is false if any measured value contradicted the claim.
	Pass bool
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim (%s).*\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	b.WriteString("\n")
	if t.Pass {
		b.WriteString("**Result: PASS** — measurements match the claim.\n")
	} else {
		b.WriteString("**Result: FAIL** — at least one measurement contradicts the claim.\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Suite runs experiments. Quick mode shrinks sweeps for benchmarks.
type Suite struct {
	Quick bool
}

// All runs every experiment in order.
func (s Suite) All() []*Table {
	return []*Table{
		s.E1Effectiveness(),
		s.E2Bounds(),
		s.E3Work(),
		s.E4Collisions(),
		s.E5Iterative(),
		s.E6WriteAll(),
		s.E7Comparison(),
		s.E8Crossover(),
		s.E9Verification(),
	}
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func utoa(v uint64) string  { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.3f", v) }
func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// lg is ceil(log2(v)), min 1 — the paper's log factors.
func lg(v int) int {
	r, p := 0, 1
	for p < v {
		p <<= 1
		r++
	}
	if r < 1 {
		return 1
	}
	return r
}
