package harness

import (
	"fmt"

	"atmostonce/internal/adversary"
	"atmostonce/internal/core"
	"atmostonce/internal/sim"
)

const stepLimit = 2_000_000_000

// E1Effectiveness reproduces Theorem 4.4: under the paper's adversarial
// strategy, KKβ performs EXACTLY n−(β+m−2) jobs, and the bound is met for
// every (n, m, β) in the sweep.
func (s Suite) E1Effectiveness() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "KKβ worst-case effectiveness is exactly n−(β+m−2)",
		Claim:  "Theorem 4.4: E_KKβ(n,m,f) = n−(β+m−2); the adversarial strategy in its proof achieves it",
		Header: []string{"n", "m", "β", "predicted Do", "measured Do", "exact"},
		Pass:   true,
	}
	ns := []int{1024, 4096, 16384}
	ms := []int{2, 8, 32}
	if s.Quick {
		ns, ms = []int{1024}, []int{2, 8}
	}
	for _, n := range ns {
		for _, m := range ms {
			for _, beta := range []int{m, 3 * m * m} {
				if beta+m-2 >= n { // degenerate: nothing guaranteed
					continue
				}
				sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: beta, F: m - 1})
				if err != nil {
					t.fail(err)
					continue
				}
				rep, err := sys.Run(&adversary.Tightness{}, stepLimit)
				if err != nil {
					t.fail(err)
					continue
				}
				want := core.EffectivenessBound(n, m, beta)
				ok := rep.Distinct == want && rep.Duplicates == 0
				if !ok {
					t.Pass = false
				}
				t.Rows = append(t.Rows, []string{
					itoa(n), itoa(m), itoa(beta), itoa(want), itoa(rep.Distinct), mark(ok),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"Adversary: processes 1..m−1 each announce one job and crash (the STUCK set); process m runs alone.",
		"β=m is the effectiveness-optimal configuration (n−2m+2); β=3m² is the work-optimal one (Theorem 5.6).")
	return t
}

// E2Bounds reproduces the two-sided bound: every completed execution has
// n−(β+m−2) ≤ Do(α) ≤ n (Lemma 4.2 + Definition 2.2) and zero duplicate
// jobs (Lemma 4.1), across random schedules with and without crashes.
func (s Suite) E2Bounds() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Every execution respects the effectiveness bounds and at-most-once safety",
		Claim:  "Lemma 4.1 (safety), Lemma 4.2 (lower bound), Theorem 2.1 (no algorithm exceeds n−f worst-case)",
		Header: []string{"n", "m", "f budget", "runs", "min Do", "max Do", "lower bound", "duplicates", "ok"},
		Pass:   true,
	}
	type cfg struct{ n, m, f int }
	cfgs := []cfg{{2000, 4, 0}, {2000, 4, 3}, {1000, 8, 7}, {500, 16, 15}}
	runs := 25
	if s.Quick {
		cfgs = cfgs[:2]
		runs = 5
	}
	for _, c := range cfgs {
		minDo, maxDo, dups := c.n+1, -1, 0
		for seed := 0; seed < runs; seed++ {
			sys, err := core.NewSystem(core.Config{N: c.n, M: c.m, F: c.f})
			if err != nil {
				t.fail(err)
				continue
			}
			adv := sim.NewRandom(int64(seed))
			if c.f > 0 {
				adv.CrashProb = 0.0005
			}
			rep, err := sys.Run(adv, stepLimit)
			if err != nil {
				t.fail(err)
				continue
			}
			if rep.Distinct < minDo {
				minDo = rep.Distinct
			}
			if rep.Distinct > maxDo {
				maxDo = rep.Distinct
			}
			dups += rep.Duplicates
		}
		lb := core.EffectivenessBound(c.n, c.m, 0)
		ok := minDo >= lb && maxDo <= c.n && dups == 0
		if !ok {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.n), itoa(c.m), itoa(c.f), itoa(runs),
			itoa(minDo), itoa(maxDo), itoa(lb), itoa(dups), mark(ok),
		})
	}
	return t
}

// E3Work reproduces Theorem 5.6's shape: for β = 3m², total work divided
// by n·m·lg n·lg m stays bounded by a small constant as n and m grow.
func (s Suite) E3Work() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Work of KK_{3m²} scales as O(n·m·log n·log m)",
		Claim:  "Theorem 5.6: W = O(n·m·log n·log m) for β ≥ 3m²",
		Header: []string{"n", "m", "adversary", "work", "work/(n·m·lgn·lgm)", "set-op share"},
		Pass:   true,
	}
	ns := []int{2048, 8192, 32768}
	ms := []int{2, 4, 8, 16}
	if s.Quick {
		ns, ms = []int{2048, 8192}, []int{2, 8}
	}
	var maxRatio float64
	for _, n := range ns {
		for _, m := range ms {
			beta := 3 * m * m
			if beta+m-2 >= n {
				continue
			}
			for _, a := range []struct {
				name string
				adv  sim.Adversary
			}{
				{"round-robin", &sim.RoundRobin{}},
				{"staircase", &adversary.Staircase{}},
			} {
				sys, err := core.NewSystem(core.Config{N: n, M: m, Beta: beta})
				if err != nil {
					t.fail(err)
					continue
				}
				rep, err := sys.Run(a.adv, stepLimit)
				if err != nil {
					t.fail(err)
					continue
				}
				denom := float64(n) * float64(m) * float64(lg(n)) * float64(lg(m))
				ratio := float64(rep.Work) / denom
				if ratio > maxRatio {
					maxRatio = ratio
				}
				var setOps uint64
				for _, p := range sys.Procs {
					setOps += p.SetOps()
				}
				setShare := float64(setOps) * float64(lg(n)) / float64(rep.Work)
				t.Rows = append(t.Rows, []string{
					itoa(n), itoa(m), a.name, utoa(rep.Work), ftoa(ratio),
					fmt.Sprintf("%.0f%%", 100*setShare),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Max normalized constant over the sweep: %.3f — bounded, i.e. the measured work tracks the Theorem 5.6 envelope.", maxRatio),
		"Work unit: one shared access or constant local step; set operations charged ⌈lg n⌉ (the paper's §2.2 cost model).")
	return t
}

// E4Collisions reproduces Lemma 5.5: for β ≥ 3m², no process pair (p,q)
// collides more than 2⌈n/(m·|q−p|)⌉ times, under collision-maximizing
// schedules.
func (s Suite) E4Collisions() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Pairwise collisions stay below the Lemma 5.5 bound",
		Claim:  "Lemma 5.5: for β ≥ 3m², p collides with q at most 2⌈n/(m·|q−p|)⌉ times",
		Header: []string{"n", "m", "adversary", "total collisions", "max pair util (measured/bound)", "violations"},
		Pass:   true,
	}
	type cfg struct{ n, m int }
	cfgs := []cfg{{4096, 4}, {4096, 8}, {16384, 8}}
	if s.Quick {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		for _, a := range []struct {
			name string
			mk   func() sim.Adversary
		}{
			{"staircase", func() sim.Adversary { return &adversary.Staircase{} }},
			{"alternator", func() sim.Adversary { return &adversary.Alternator{} }},
			{"random", func() sim.Adversary { return sim.NewRandom(13) }},
		} {
			sys, err := core.NewSystem(core.Config{N: c.n, M: c.m, Beta: 3 * c.m * c.m, TrackCollisions: true})
			if err != nil {
				t.fail(err)
				continue
			}
			if _, err := sys.Run(a.mk(), stepLimit); err != nil {
				t.fail(err)
				continue
			}
			violations := 0
			var maxUtil float64
			for p := 1; p <= c.m; p++ {
				for q := 1; q <= c.m; q++ {
					if p == q {
						continue
					}
					got := sys.Collisions.Count(p, q)
					bound := core.PairBound(c.n, c.m, p, q)
					if got > bound {
						violations++
					}
					if u := float64(got) / float64(bound); u > maxUtil {
						maxUtil = u
					}
				}
			}
			if violations > 0 {
				t.Pass = false
			}
			t.Rows = append(t.Rows, []string{
				itoa(c.n), itoa(c.m), a.name,
				utoa(sys.Collisions.Total()), ftoa(maxUtil), itoa(violations),
			})
		}
	}
	return t
}

func (t *Table) fail(err error) {
	t.Pass = false
	t.Notes = append(t.Notes, "ERROR: "+err.Error())
}
