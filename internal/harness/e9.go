package harness

import (
	"fmt"

	"atmostonce/internal/core"
	"atmostonce/internal/verify"
)

// E9Verification runs the exhaustive model-checking battery: every
// interleaving and crash pattern of small KKβ and IterStepKK instances,
// machine-checking Lemma 4.1 (safety), Lemma 4.3 (no fair cycles),
// Theorem 4.4's lower bound and Lemma 6.2 (output soundness).
func (s Suite) E9Verification() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Exhaustive model checking of small configurations",
		Claim:  "Lemmas 4.1, 4.3, 6.2 and Theorem 4.4 on the complete execution tree",
		Header: []string{"config", "states", "terminals", "Do range", "bound", "fair cycles", "ok"},
		Pass:   true,
	}
	configs := []verify.MCConfig{
		{N: 2, M: 2, F: 1},
		{N: 3, M: 2, F: 0},
		{N: 3, M: 2, F: 1},
		{N: 4, M: 2, F: 1},
		{N: 3, M: 3, F: 1},
		{N: 2, M: 2, F: 1, IterStep: true},
		{N: 3, M: 2, F: 1, IterStep: true},
	}
	if s.Quick {
		configs = configs[:3]
	}
	for _, cfg := range configs {
		stats, err := verify.ExploreKK(cfg)
		if err != nil {
			t.fail(err)
			continue
		}
		name := fmt.Sprintf("n=%d m=%d f=%d", cfg.N, cfg.M, cfg.F)
		bound := itoa(core.EffectivenessBound(cfg.N, cfg.M, cfg.Beta))
		ok := stats.Cycles == 0
		if cfg.IterStep {
			name += " IterStepKK"
			bound = "—"
		} else if b := core.EffectivenessBound(cfg.N, cfg.M, cfg.Beta); stats.MinDo < b {
			ok = false
		}
		if !ok {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			name, itoa(stats.States), itoa(stats.Terminals),
			fmt.Sprintf("[%d,%d]", stats.MinDo, stats.MaxDo), bound,
			itoa(stats.Cycles), mark(ok),
		})
	}
	t.Notes = append(t.Notes,
		"Explorations abort with a replayable witness schedule on any violation; none exists.",
		"The checker's teeth are themselves tested: a deliberately racy algorithm is refuted with a counterexample that replays to a duplicate (internal/verify mutation tests).")
	return t
}
