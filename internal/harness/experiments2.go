package harness

import (
	"fmt"
	"math"

	"atmostonce/internal/adversary"
	"atmostonce/internal/baseline"
	"atmostonce/internal/core"
	"atmostonce/internal/sim"
	"atmostonce/internal/verify"
	"atmostonce/internal/writeall"
)

// E5Iterative reproduces Theorem 6.4: IterativeKK(ε) loses at most
// O(m²·log n·log m) jobs and spends O(n + m^{3+ε}·log n) work.
func (s Suite) E5Iterative() *Table {
	t := &Table{
		ID:     "E5",
		Title:  "IterativeKK(ε): effectiveness n−O(m²·lgn·lgm), work O(n+m^{3+ε}·lgn)",
		Claim:  "Theorem 6.4",
		Header: []string{"n", "m", "1/ε", "levels", "jobs lost", "loss/(m²·lgn·lgm)", "work", "work/(n+m^{3+ε}·lgn)"},
		Pass:   true,
	}
	ns := []int{8192, 32768}
	ms := []int{2, 4, 8}
	ks := []int{1, 2}
	if s.Quick {
		ns, ms, ks = []int{8192}, []int{2, 4}, []int{1}
	}
	for _, n := range ns {
		for _, m := range ms {
			for _, k := range ks {
				sys, err := core.NewIterSystem(core.IterConfig{N: n, M: m, EpsDenom: k})
				if err != nil {
					t.fail(err)
					continue
				}
				rep, err := sys.Run(&sim.RoundRobin{}, stepLimit)
				if err != nil {
					t.fail(err)
					continue
				}
				if rep.Duplicates != 0 {
					t.Pass = false
				}
				loss := n - rep.Distinct
				lossDenom := float64(m*m) * float64(lg(n)) * float64(lg(m))
				eps := 1.0 / float64(k)
				workDenom := float64(n) + math.Pow(float64(m), 3+eps)*float64(lg(n))
				// Loss must stay within the Theorem 6.4 accounting
				// ((1/ε+2) TRY-set levels plus the final β+m−2).
				budget := (k+2)*(m-1)*m*lg(n)*lg(m) + 3*m*m + m - 2
				if loss > budget {
					t.Pass = false
				}
				t.Rows = append(t.Rows, []string{
					itoa(n), itoa(m), itoa(k), itoa(len(sys.Levels)),
					itoa(loss), ftoa(float64(loss) / lossDenom),
					utoa(rep.Work), ftoa(float64(rep.Work) / workDenom),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"‘loss/(m²·lgn·lgm)’ bounded ⇒ effectiveness claim holds; ‘work/(n+m^{3+ε}·lgn)’ bounded ⇒ work claim holds.",
		"Super-job sizes are the paper's cascade rounded to powers of two so that map() nests levels exactly (DESIGN.md §2).",
		"Rows with n < 3m³·lgn·lgm sit outside Theorem 6.4's work-optimal regime (cf. E8): the coarse levels degenerate (block count < β = 3m²) and the run collapses to KK_{3m²} on raw jobs, which is why their work constants are large. Within the regime (m ≤ 4 here) the constants shrink as n grows.")
	return t
}

// E6WriteAll reproduces Theorem 7.1: WA_IterativeKK(ε) writes all n cells
// with work O(n+m^{3+ε}·lgn). The distinguishing shape against the
// Θ(n·m) baselines: with m fixed inside the work-optimal frontier,
// WA_IterativeKK's per-cell work FALLS as n grows (the m-term amortizes)
// while every baseline's per-cell work is pinned at Θ(m) forever.
func (s Suite) E6WriteAll() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "WA_IterativeKK(ε): Write-All with work O(n+m^{3+ε}·log n)",
		Claim:  "Theorem 7.1: all cells written; per-cell work amortizes to O(1) in n, vs Θ(m) for the baselines",
		Header: []string{"n", "m", "algorithm", "complete", "writes", "work", "work/n"},
		Pass:   true,
	}
	type cfg struct{ n, m int }
	cfgs := []cfg{{8192, 4}, {32768, 4}, {131072, 4}, {524288, 4}, {32768, 8}}
	if s.Quick {
		cfgs = []cfg{{8192, 4}, {32768, 4}}
	}
	var kkSeries []float64
	for _, c := range cfgs {
		type res struct {
			name string
			rep  *writeall.Report
			err  error
		}
		kk, errKK := writeall.RunIterKK(c.n, c.m, 1, 0, &sim.RoundRobin{}, stepLimit)
		tr, errTR := writeall.RunTrivial(c.n, c.m, 0, &sim.RoundRobin{}, stepLimit)
		cs, errCS := writeall.RunCheckSweep(c.n, c.m, 0, &sim.RoundRobin{}, stepLimit)
		for _, r := range []res{
			{"WA_IterativeKK(ε=1)", kk, errKK},
			{"WA_Trivial", tr, errTR},
			{"WA_CheckSweep", cs, errCS},
		} {
			if r.err != nil {
				t.fail(r.err)
				continue
			}
			if !r.rep.Complete() {
				t.Pass = false
			}
			perCell := float64(r.rep.Work) / float64(c.n)
			if r.name == "WA_IterativeKK(ε=1)" && c.m == 4 {
				kkSeries = append(kkSeries, perCell)
			}
			t.Rows = append(t.Rows, []string{
				itoa(c.n), itoa(c.m), r.name, mark(r.rep.Complete()),
				itoa(r.rep.Writes), utoa(r.rep.Work), ftoa(perCell),
			})
		}
	}
	// Shape assertion: per-cell work strictly decreasing along the m=4,
	// growing-n series (the n-term takes over, Theorem 7.1's shape).
	for i := 1; i < len(kkSeries); i++ {
		if kkSeries[i] >= kkSeries[i-1] {
			t.Pass = false
		}
	}
	t.Notes = append(t.Notes,
		"WA_IterativeKK's work/n falls monotonically as n grows at fixed m (the O(m^{3+ε}·log n) term amortizes); the baselines stay pinned at m and m+1 writes/reads per cell at every n.",
		"The absolute crossover vs the Θ(n·m) baselines sits where m exceeds the per-cell constant, which requires n ≳ 3m³·lg n·lg m (the Theorem 6.4 regime) — beyond what a simulation sweep reaches; the measured exponent shape is the reproducible evidence at this scale.")
	return t
}

// E7Comparison reproduces the paper's positioning (§1, §8): KKβ's
// worst-case effectiveness beats the trivial split and the prior
// deterministic art, and approaches the TAS/upper-bound reference lines.
func (s Suite) E7Comparison() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Worst-case effectiveness: KKβ vs baselines",
		Claim:  "§1: previous best deterministic effectiveness n−lgm·o(n) [26]; trivial (m−f)·n/m; upper bound n−f (Thm 2.1)",
		Header: []string{"n", "m", "f", "algorithm", "worst measured Do", "analytic reference"},
		Pass:   true,
	}
	const n = 4096
	m := 8
	if s.Quick {
		m = 4
	}
	for _, f := range []int{0, m / 2, m - 1} {
		victims := make([]int, f)
		for i := range victims {
			victims[i] = i + 1
		}
		crashStart := func() sim.Adversary {
			vs := make([]int, len(victims))
			copy(vs, victims)
			return &sim.CrashList{Victims: vs, Then: &sim.RoundRobin{}}
		}

		// KKβ (β=m): worst over crash-at-start, random, tightness (f=m−1 only).
		kkWorst := n + 1
		runKK := func(adv sim.Adversary) {
			sys, err := core.NewSystem(core.Config{N: n, M: m, F: f})
			if err != nil {
				t.fail(err)
				return
			}
			rep, err := sys.Run(adv, stepLimit)
			if err != nil {
				t.fail(err)
				return
			}
			if rep.Duplicates != 0 {
				t.Pass = false
			}
			if rep.Distinct < kkWorst {
				kkWorst = rep.Distinct
			}
		}
		runKK(crashStart())
		for seed := int64(0); seed < 3; seed++ {
			adv := sim.NewRandom(seed)
			if f > 0 {
				adv.CrashProb = 0.001
			}
			runKK(adv)
		}
		if f == m-1 {
			runKK(&adversary.Tightness{})
		}
		kkRef := core.EffectivenessBound(n, m, 0)
		if kkWorst < kkRef {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{itoa(n), itoa(m), itoa(f), "KKβ (β=m)", itoa(kkWorst),
			fmt.Sprintf("≥ n−2m+2 = %d", kkRef)})

		// Paired two-process baseline.
		pairWorst := runBaselineWorst(t, f, func() (*sim.World, error) { return baseline.NewPairedSystem(n, m, f) }, crashStart)
		t.Rows = append(t.Rows, []string{itoa(n), itoa(m), itoa(f), "Paired 2-proc [26]-style", itoa(pairWorst),
			"n − ⌊f/2⌋·2n/m − O(m)"})

		// Trivial split.
		trivWorst := runBaselineWorst(t, f, func() (*sim.World, error) { return baseline.NewTrivialSystem(n, m, f) }, crashStart)
		trivRef := baseline.TrivialEffectiveness(n, m, f)
		if trivWorst < trivRef {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{itoa(n), itoa(m), itoa(f), "Trivial split (§2.2)", itoa(trivWorst),
			fmt.Sprintf("(m−f)·n/m = %d", trivRef)})

		// TAS reference.
		tasWorst := runBaselineWorst(t, f, func() (*sim.World, error) { return baseline.NewTASSystem(n, m, f) }, crashStart)
		t.Rows = append(t.Rows, []string{itoa(n), itoa(m), itoa(f), "TAS reference (§1)", itoa(tasWorst),
			fmt.Sprintf("n−f = %d", n-f)})

		// Prior deterministic art [26], analytic only.
		kkns := math.Pow(math.Pow(float64(n), 1/float64(lg(m)))-1, float64(lg(m)))
		t.Rows = append(t.Rows, []string{itoa(n), itoa(m), itoa(f), "KKNS multi-process [26] (analytic)", "—",
			fmt.Sprintf("(n^{1/lgm}−1)^{lgm} = %.0f", kkns)})
	}
	t.Notes = append(t.Notes,
		"‘Worst measured Do’ is the minimum over crash-at-start, three random-crash seeds and (for f=m−1) the Theorem 4.4 strategy.",
		"The full multi-process algorithm of [26] is not reconstructable from this paper's text; its effectiveness formula is reported analytically (DESIGN.md §2).",
		"Ordering check: KKβ ≥ Paired ≥ Trivial under crashes, with TAS/n−f as the unattainable-by-R/W reference.")
	return t
}

func runBaselineWorst(t *Table, f int, mk func() (*sim.World, error), crashStart func() sim.Adversary) int {
	worst := 1 << 30
	run := func(adv sim.Adversary) {
		w, err := mk()
		if err != nil {
			t.fail(err)
			return
		}
		res, err := sim.Run(w, adv, stepLimit)
		if err != nil {
			t.fail(err)
			return
		}
		rep := verify.CheckEvents(res.Events)
		if !rep.OK() {
			t.Pass = false
		}
		if rep.Distinct < worst {
			worst = rep.Distinct
		}
	}
	run(crashStart())
	for seed := int64(0); seed < 3; seed++ {
		adv := sim.NewRandom(seed)
		if f > 0 {
			adv.CrashProb = 0.001
		}
		run(adv)
	}
	return worst
}

// E8Crossover reproduces the work-optimality frontier: IterativeKK(ε) has
// work O(n) exactly while m = O((n/log n)^{1/(3+ε)}); past that point the
// m-term dominates and work/n blows up.
func (s Suite) E8Crossover() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Work-optimality range of IterativeKK(ε)",
		Claim:  "Theorem 6.4 / §6: work-optimal for m = O((n/log n)^{1/(3+ε)})",
		Header: []string{"n", "m", "work", "work/n", "m vs (n/lgn)^{1/4}"},
		Pass:   true,
	}
	n := 16384
	ms := []int{2, 4, 8, 16, 32}
	if s.Quick {
		n, ms = 8192, []int{2, 8, 32}
	}
	frontier := math.Pow(float64(n)/float64(lg(n)), 0.25) // ε=1 ⇒ exponent 1/4
	var inside, outside float64
	for _, m := range ms {
		sys, err := core.NewIterSystem(core.IterConfig{N: n, M: m, EpsDenom: 1})
		if err != nil {
			t.fail(err)
			continue
		}
		rep, err := sys.Run(&sim.RoundRobin{}, stepLimit)
		if err != nil {
			t.fail(err)
			continue
		}
		ratio := float64(rep.Work) / float64(n)
		rel := "inside"
		if float64(m) > frontier {
			rel = "outside"
			if ratio > outside {
				outside = ratio
			}
		} else if ratio > inside {
			inside = ratio
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(m), utoa(rep.Work), ftoa(ratio),
			fmt.Sprintf("%s (frontier ≈ %.1f)", rel, frontier),
		})
	}
	if outside > 0 && inside > 0 && outside <= inside {
		// The crossover should be visible: work/n grows once m passes
		// the frontier.
		t.Pass = false
	}
	t.Notes = append(t.Notes,
		"Inside the frontier work/n is a small constant; outside it the m^{3+ε}·lg n term dominates, matching the theorem's optimality range.")
	return t
}
