package harness

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Claim: "none",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
		Pass:   true,
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "PASS", "> note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	tab.Pass = false
	if !strings.Contains(tab.Markdown(), "FAIL") {
		t.Error("FAIL marker missing")
	}
}

func TestQuickSuiteAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("suite is slow")
	}
	s := Suite{Quick: true}
	for _, tab := range s.All() {
		if !tab.Pass {
			t.Errorf("%s failed:\n%s", tab.ID, tab.Markdown())
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
	}
}

func TestHelpers(t *testing.T) {
	if lg(1) != 1 || lg(2) != 1 || lg(3) != 2 || lg(1024) != 10 {
		t.Error("lg wrong")
	}
	if mark(true) != "✓" || mark(false) != "✗" {
		t.Error("mark wrong")
	}
	if itoa(5) != "5" || utoa(7) != "7" || ftoa(1.5) != "1.500" {
		t.Error("format helpers wrong")
	}
}

// TestExperimentSchemas pins each experiment's identity and table shape so
// EXPERIMENTS.md regeneration stays stable.
func TestExperimentSchemas(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := Suite{Quick: true}
	tables := s.All()
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("suite has %d experiments, want %d", len(tables), len(wantIDs))
	}
	for i, tab := range tables {
		if tab.ID != wantIDs[i] {
			t.Errorf("experiment %d id = %s, want %s", i, tab.ID, wantIDs[i])
		}
		if tab.Title == "" || tab.Claim == "" {
			t.Errorf("%s missing title/claim", tab.ID)
		}
		if len(tab.Header) < 3 {
			t.Errorf("%s header too small: %v", tab.ID, tab.Header)
		}
		for j, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s row %d has %d cells for %d columns", tab.ID, j, len(row), len(tab.Header))
			}
		}
	}
}
