package core

import (
	"testing"

	"atmostonce/internal/sim"
)

func TestLevelStatsAccounting(t *testing.T) {
	const n, m = 4096, 2
	s, err := NewIterSystem(IterConfig{N: n, M: m, EpsDenom: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&sim.RoundRobin{}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Procs {
		stats := p.LevelStats()
		if len(stats) != len(s.Levels) {
			t.Fatalf("proc %d recorded %d levels, want %d", p.ID(), len(stats), len(s.Levels))
		}
		for i, st := range stats {
			if st.Size != s.Levels[i].Size || st.Blocks != s.Levels[i].Blocks {
				t.Fatalf("proc %d level %d descriptor mismatch: %+v vs %+v",
					p.ID(), i, st, s.Levels[i])
			}
			if st.Performed < 0 || st.Output < 0 || st.Input < 0 {
				t.Fatalf("negative counters: %+v", st)
			}
			// A process never performs more blocks than it received.
			if st.Performed > st.Input {
				t.Fatalf("proc %d level %d performed %d of %d inputs",
					p.ID(), i, st.Performed, st.Input)
			}
			// Outputs never exceed inputs minus own performed blocks.
			if st.Output > st.Input-st.Performed {
				t.Fatalf("proc %d level %d output %d > input %d - performed %d",
					p.ID(), i, st.Output, st.Input, st.Performed)
			}
		}
	}
	// Total jobs performed across processes and levels must equal the
	// event count.
	totalJobs := 0
	for _, p := range s.Procs {
		for _, st := range p.LevelStats() {
			totalJobs += st.Performed * st.Size
		}
	}
	// Performed counts blocks; block sizes may be truncated at the tail,
	// so totalJobs over-counts by at most one block's worth.
	if totalJobs < len(rep.Result.Events) {
		t.Fatalf("level stats account for %d jobs, events say %d", totalJobs, len(rep.Result.Events))
	}
}

func TestLevelStatsDegenerateDetection(t *testing.T) {
	// m=8 at small n: coarse levels have fewer blocks than β=3m²=192 and
	// must be flagged degenerate (the E5/E8 out-of-regime collapse).
	const n, m = 4096, 8
	s, err := NewIterSystem(IterConfig{N: n, M: m, EpsDenom: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&sim.RoundRobin{}, testStepLimit); err != nil {
		t.Fatal(err)
	}
	stats := s.Procs[0].LevelStats()
	if !stats[0].Degenerate {
		t.Fatalf("coarse level not flagged degenerate: %+v (β=%d)", stats[0], s.Cfg.Beta)
	}
	last := stats[len(stats)-1]
	if last.Degenerate {
		t.Fatalf("final level flagged degenerate: %+v", last)
	}
	if last.Performed == 0 {
		t.Fatal("final level performed nothing for process 1")
	}
}
