package core

import (
	"testing"

	"atmostonce/internal/oset"
	"atmostonce/internal/sim"
)

func TestSuperJobSizesShape(t *testing.T) {
	tests := []struct {
		n, m, k int
	}{
		{1000, 2, 1}, {1000, 4, 2}, {10000, 8, 1}, {10000, 8, 2},
		{100000, 16, 3}, {64, 2, 1}, {512, 3, 4},
	}
	for _, tt := range tests {
		sizes := SuperJobSizes(tt.n, tt.m, tt.k)
		if len(sizes) == 0 {
			t.Fatalf("n=%d m=%d: empty cascade", tt.n, tt.m)
		}
		if sizes[len(sizes)-1] != 1 {
			t.Errorf("n=%d m=%d: cascade does not end at 1: %v", tt.n, tt.m, sizes)
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] >= sizes[i-1] {
				t.Errorf("n=%d m=%d: cascade not strictly decreasing: %v", tt.n, tt.m, sizes)
			}
			if sizes[i-1]%sizes[i] != 0 {
				t.Errorf("n=%d m=%d: %d does not divide %d", tt.n, tt.m, sizes[i], sizes[i-1])
			}
		}
		for _, s := range sizes {
			if s&(s-1) != 0 {
				t.Errorf("n=%d m=%d: size %d not a power of two", tt.n, tt.m, s)
			}
		}
	}
}

func TestBlocksAndBlockJobs(t *testing.T) {
	if got := Blocks(100, 32); got != 4 {
		t.Errorf("Blocks(100,32) = %d, want 4", got)
	}
	if got := Blocks(96, 32); got != 3 {
		t.Errorf("Blocks(96,32) = %d, want 3", got)
	}
	lo, hi := BlockJobs(100, 32, 1)
	if lo != 1 || hi != 32 {
		t.Errorf("block 1 = [%d,%d], want [1,32]", lo, hi)
	}
	lo, hi = BlockJobs(100, 32, 4)
	if lo != 97 || hi != 100 {
		t.Errorf("tail block = [%d,%d], want [97,100]", lo, hi)
	}
}

func TestMapBlocksLossless(t *testing.T) {
	const n, s1, s2 = 1000, 64, 16
	in := oset.New(1, 3, 16) // block 16 is the truncated tail (jobs 961..1000)
	out := MapBlocks(in, n, s1, s2)
	// Collect jobs covered by input and output; they must be identical.
	cover := func(set *oset.Set, size int) map[int]bool {
		jobs := make(map[int]bool)
		set.Ascend(func(b int) bool {
			lo, hi := BlockJobs(n, size, b)
			for j := lo; j <= hi; j++ {
				jobs[j] = true
			}
			return true
		})
		return jobs
	}
	inJobs, outJobs := cover(in, s1), cover(out, s2)
	if len(inJobs) != len(outJobs) {
		t.Fatalf("coverage changed: %d -> %d jobs", len(inJobs), len(outJobs))
	}
	for j := range inJobs {
		if !outJobs[j] {
			t.Fatalf("job %d lost by map", j)
		}
	}
}

func TestMapBlocksSameSize(t *testing.T) {
	in := oset.New(2, 5)
	out := MapBlocks(in, 100, 8, 8)
	if out.Len() != 2 || !out.Contains(2) || !out.Contains(5) {
		t.Fatalf("identity map wrong: %v", out.Slice())
	}
	out.Insert(9)
	if in.Contains(9) {
		t.Fatal("MapBlocks aliases input")
	}
}

func TestIterConfigValidation(t *testing.T) {
	if _, err := NewIterSystem(IterConfig{N: 5, M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewIterSystem(IterConfig{N: 1, M: 3}); err == nil {
		t.Error("n<m accepted")
	}
	s, err := NewIterSystem(IterConfig{N: 100, M: 3, F: 77})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Beta != 27 {
		t.Errorf("default β = %d, want 3m²=27", s.Cfg.Beta)
	}
	if s.Cfg.F != 2 {
		t.Errorf("F = %d, want clamped 2", s.Cfg.F)
	}
	if s.Cfg.EpsDenom != 1 {
		t.Errorf("EpsDenom = %d, want 1", s.Cfg.EpsDenom)
	}
}

func TestIterativeRoundRobinSmall(t *testing.T) {
	s, err := NewIterSystem(IterConfig{N: 300, M: 3, EpsDenom: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&sim.RoundRobin{}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("AMO violated across levels: %d dups", rep.Duplicates)
	}
	if rep.Distinct == 0 {
		t.Fatal("nothing performed")
	}
	if rep.Distinct > 300 {
		t.Fatalf("Do = %d > n", rep.Distinct)
	}
}

func TestIterativeRandomSeedsAMO(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, err := NewIterSystem(IterConfig{N: 256, M: 2, EpsDenom: 2, F: 1})
		if err != nil {
			t.Fatal(err)
		}
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.0005
		rep, err := s.Run(adv, testStepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("seed %d: AMO violated (%d dups)", seed, rep.Duplicates)
		}
	}
}

func TestIterativeEffectivenessLossBounded(t *testing.T) {
	// Theorem 6.4: unperformed jobs = O(m² log n log m). With no crashes
	// and a fair schedule the loss must stay within the theorem's
	// accounting: (1/ε+1)·(m−1)·m·lgn·lgm from TRY sets plus the last
	// level's β+m−2.
	const n, m, k = 4096, 3, 1
	s, err := NewIterSystem(IterConfig{N: n, M: m, EpsDenom: k})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&sim.RoundRobin{}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated")
	}
	lgn, lgm := ceilLog2(n), ceilLog2(m)
	budget := (k+2)*(m-1)*m*lgn*lgm + 3*m*m + m - 2
	if loss := n - rep.Distinct; loss > budget {
		t.Fatalf("loss %d exceeds Theorem 6.4 budget %d", loss, budget)
	}
}

func TestIterProcLevelsAdvance(t *testing.T) {
	s, err := NewIterSystem(IterConfig{N: 500, M: 2, EpsDenom: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&sim.RoundRobin{}, testStepLimit); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Procs {
		if p.Status() != sim.Done {
			t.Fatalf("proc %d not done: %v", p.ID(), p.Status())
		}
		if p.Level() != len(s.Levels)-1 {
			t.Fatalf("proc %d finished at level %d of %d", p.ID(), p.Level(), len(s.Levels))
		}
	}
}

func TestIterativeWriteAllCoversEverything(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		const n = 400
		s, err := NewIterSystem(IterConfig{N: n, M: 3, EpsDenom: 1, F: 2, WriteAll: true})
		if err != nil {
			t.Fatal(err)
		}
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.0005
		rep, err := s.Run(adv, testStepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Write-All: every job performed at least once (duplicates OK).
		if rep.Distinct != n {
			t.Fatalf("seed %d: covered %d of %d jobs", seed, rep.Distinct, n)
		}
	}
}

func TestIterativeCrashAll(t *testing.T) {
	// Crash m−1 processes at the very start: the survivor must still
	// complete and the run must stay safe.
	s, err := NewIterSystem(IterConfig{N: 200, M: 4, F: 3})
	if err != nil {
		t.Fatal(err)
	}
	adv := &sim.CrashList{Victims: []int{1, 2, 3}, Then: &sim.RoundRobin{}}
	rep, err := s.Run(adv, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated")
	}
}
