package core

import "encoding/binary"

// Clone returns a deep copy of the process state (sets, pointers,
// scalars). The copy shares the memory, sink and collision-matrix
// references. Used by the bounded model checker to branch executions.
func (p *Proc) Clone() *Proc {
	c := *p
	c.free = p.free.CloneSet()
	c.done = p.done.CloneSet()
	c.try = p.try.CloneSet()
	c.pos = make([]int, len(p.pos))
	copy(c.pos, p.pos)
	c.outBuf = nil // never share output storage between clones
	if p.out != nil {
		c.out = p.out.Clone()
	}
	c.bindCallbacks()
	return &c
}

// RestoreFrom overwrites this process's state from a clone made with
// Clone. Memory, sink and collision references are left untouched.
func (p *Proc) RestoreFrom(c *Proc) {
	mem, sink, collide := p.mem, p.sink, p.collide
	*p = *c
	p.free = c.free.CloneSet()
	p.done = c.done.CloneSet()
	p.try = c.try.CloneSet()
	p.pos = make([]int, len(c.pos))
	copy(p.pos, c.pos)
	p.outBuf = nil
	if c.out != nil {
		p.out = c.out.Clone()
	}
	p.mem, p.sink, p.collide = mem, sink, collide
	p.bindCallbacks()
}

// AppendState serializes the behaviorally relevant process state for
// state-hashing in the model checker. Crashed processes collapse to a
// single marker byte: their internals can never influence the future.
func (p *Proc) AppendState(buf []byte) []byte {
	if p.phase == PhaseStop {
		return append(buf, 0xFF)
	}
	var tmp [8]byte
	app32 := func(v int) {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(v))
		buf = append(buf, tmp[:4]...)
	}
	buf = append(buf, byte(p.phase))
	if p.termGath {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	app32(int(p.next))
	app32(p.q)
	for _, v := range p.pos[1:] {
		app32(v)
	}
	app32(p.free.Len())
	p.free.Ascend(func(v int) bool { app32(v); return true })
	app32(p.done.Len())
	p.done.Ascend(func(v int) bool { app32(v); return true })
	app32(p.try.Len())
	p.try.Ascend(func(v int) bool { app32(v); return true })
	return buf
}

// SetSink rebinds the do-event sink (used by harnesses that assemble
// processes manually).
func (p *Proc) SetSink(s DoSink) { p.sink = s }

// SaveState implements the model checker's Snapshottable interface.
func (p *Proc) SaveState() any { return p.Clone() }

// LoadState implements the model checker's Snapshottable interface.
// Snapshots from any other process are rejected by doing nothing; the
// checker only ever restores a process's own snapshots.
func (p *Proc) LoadState(snapshot any) {
	if c, ok := snapshot.(*Proc); ok {
		p.RestoreFrom(c)
	}
}
