package core

import (
	"testing"

	"atmostonce/internal/sim"
)

// TestExecutionInvariants drives KKβ under several adversaries while
// asserting, at every single step, the structural invariants the paper's
// proofs rely on:
//
//  1. |TRY_p| ≤ m−1 (used in Lemma 4.2's accounting);
//  2. FREE_p and DONE_p partition J (elements only move FREE→DONE);
//  3. DONE_p is monotone non-decreasing;
//  4. after setNext and until the next compNext, the shared register
//     next_p holds NEXT_p (the announcement argument of Lemma 4.1);
//  5. POS_p(q) pointers are monotone and within [1, n+1];
//  6. the done matrix holds a nonzero prefix per row and all nonzero
//     entries across ALL rows are distinct (published jobs are unique —
//     the shared-memory shadow of Lemma 4.1).
func TestExecutionInvariants(t *testing.T) {
	const n, m = 60, 3
	adversaries := map[string]func() sim.Adversary{
		"round-robin": func() sim.Adversary { return &sim.RoundRobin{} },
		"random":      func() sim.Adversary { return sim.NewRandom(5) },
		"random-crash": func() sim.Adversary {
			a := sim.NewRandom(9)
			a.CrashProb = 0.002
			return a
		},
	}
	for name, mk := range adversaries {
		t.Run(name, func(t *testing.T) {
			s := mustSystem(t, Config{N: n, M: m, F: m - 1})
			prevDone := make([]int, m+1)
			prevPos := make([][]int, m+1)
			for p := 1; p <= m; p++ {
				prevPos[p] = make([]int, m+1)
				for q := 1; q <= m; q++ {
					prevPos[p][q] = 1
				}
			}
			check := func(w *sim.World) {
				for i, sp := range w.Procs {
					p := sp.(*Proc)
					pid := i + 1
					if p.Status() == sim.Crashed {
						continue
					}
					if p.TryLen() > m-1 {
						t.Fatalf("proc %d: |TRY| = %d > m-1", pid, p.TryLen())
					}
					if p.FreeLen()+p.DoneLen() != n {
						t.Fatalf("proc %d: FREE (%d) and DONE (%d) do not partition J",
							pid, p.FreeLen(), p.DoneLen())
					}
					if p.DoneLen() < prevDone[pid] {
						t.Fatalf("proc %d: DONE shrank %d -> %d", pid, prevDone[pid], p.DoneLen())
					}
					prevDone[pid] = p.DoneLen()
					switch p.Phase() {
					case PhaseGatherTry, PhaseGatherDone, PhaseCheck, PhaseDo, PhaseDoneWrite:
						if got := s.Mem.Peek(s.Layout.NextAddr(pid)); got != p.NextJob() {
							t.Fatalf("proc %d: register next=%d but NEXT=%d in phase %v",
								pid, got, p.NextJob(), p.Phase())
						}
					}
					for q := 1; q <= m; q++ {
						pos := p.PosOf(q)
						if pos < prevPos[pid][q] || pos > n+1 {
							t.Fatalf("proc %d: POS(%d) moved %d -> %d", pid, q, prevPos[pid][q], pos)
						}
						prevPos[pid][q] = pos
					}
				}
				// Done-matrix shadow of Lemma 4.1: nonzero prefixes, all
				// published jobs globally distinct.
				seen := make(map[int64]bool)
				for q := 1; q <= m; q++ {
					zeroSeen := false
					for idx := 1; idx <= n; idx++ {
						v := s.Mem.Peek(s.Layout.DoneAddr(q, idx))
						if v == 0 {
							zeroSeen = true
							continue
						}
						if zeroSeen {
							t.Fatalf("done row %d has a gap before index %d", q, idx)
						}
						if seen[v] {
							t.Fatalf("job %d published twice in the done matrix", v)
						}
						seen[v] = true
					}
				}
			}
			obs := &sim.Observer{Inner: mk(), Fn: check}
			rep, err := s.Run(obs, testStepLimit)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Duplicates != 0 {
				t.Fatal("AMO violated")
			}
		})
	}
}

// TestInvariantObserverSeesEveryStep sanity-checks the Observer plumbing.
func TestInvariantObserverSeesEveryStep(t *testing.T) {
	s := mustSystem(t, Config{N: 10, M: 2})
	calls := 0
	obs := &sim.Observer{Inner: &sim.RoundRobin{}, Fn: func(*sim.World) { calls++ }}
	rep, err := s.Run(obs, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(calls) != rep.Result.Steps {
		t.Fatalf("observer called %d times for %d steps", calls, rep.Result.Steps)
	}
}
