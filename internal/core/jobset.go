package core

import (
	"atmostonce/internal/denseset"
	"atmostonce/internal/oset"
)

// JobSet is the set abstraction behind a process's FREE, DONE and TRY
// state variables. Two implementations exist: a bitmap set for the dense
// job universes of the round-based runtime (ProcOptions.Jobs == nil, ids
// contiguous in [1..Universe] — the hot path, where Insert/Delete/
// Contains are one word operation each), and the red-black
// order-statistic tree for sparse inputs (IterativeKK super-job sets,
// harness tests over arbitrary subsets). Within one process all three
// sets share an implementation, so SelectExcluding always sees an
// exclusion set of its own kind and dispatches to the native
// rank(SET1, SET2, i).
type JobSet interface {
	Len() int
	Contains(v int) bool
	Insert(v int) bool
	Delete(v int) bool
	Clear()
	ResetRange(lo, hi int)
	Ascend(fn func(v int) bool)
	// SelectExcluding returns the element of rank i (1-indexed) in the
	// set difference s \ excl — the paper's rank(SET1, SET2, i).
	SelectExcluding(excl JobSet, i int) (v int, ok bool)
	Reserve(n int)
	ReserveSelectScratch(n int)
	CloneSet() JobSet
}

// denseJobSet adapts denseset.Set to JobSet. All methods except the two
// below are promoted from the embedded set.
type denseJobSet struct{ *denseset.Set }

func (d denseJobSet) SelectExcluding(excl JobSet, i int) (int, bool) {
	if e, ok := excl.(denseJobSet); ok {
		return d.Set.SelectExcluding(e.Set, i)
	}
	return genericSelectExcluding(d, excl, i)
}

func (d denseJobSet) CloneSet() JobSet { return denseJobSet{d.Set.Clone()} }

// treeJobSet adapts oset.Set to JobSet.
type treeJobSet struct{ *oset.Set }

func (t treeJobSet) SelectExcluding(excl JobSet, i int) (int, bool) {
	if e, ok := excl.(treeJobSet); ok {
		return t.Set.SelectExcluding(e.Set, i)
	}
	return genericSelectExcluding(t, excl, i)
}

func (t treeJobSet) CloneSet() JobSet { return treeJobSet{t.Set.Clone()} }

// genericSelectExcluding handles the mixed-implementation case, which a
// Proc never produces; it exists so JobSet stays total. O(n) scan.
func genericSelectExcluding(s, excl JobSet, i int) (v int, ok bool) {
	if i < 1 {
		return 0, false
	}
	s.Ascend(func(e int) bool {
		if excl.Contains(e) {
			return true
		}
		i--
		if i == 0 {
			v, ok = e, true
			return false
		}
		return true
	})
	return v, ok
}
