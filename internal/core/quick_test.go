package core

import (
	"testing"
	"testing/quick"

	"atmostonce/internal/oset"
	"atmostonce/internal/sim"
)

// TestQuickKKSafetyAndBounds property-tests whole executions: for random
// (n, m, β, seed, crash budget), the run terminates, performs each job at
// most once and lands within the Theorem 4.4 / Definition 2.2 window.
func TestQuickKKSafetyAndBounds(t *testing.T) {
	f := func(nRaw, mRaw, betaRaw uint8, seed int64, crashy bool) bool {
		m := int(mRaw)%6 + 1
		n := m + int(nRaw)%120
		beta := m + int(betaRaw)%60
		fBudget := 0
		if crashy {
			fBudget = m - 1
		}
		sys, err := NewSystem(Config{N: n, M: m, Beta: beta, F: fBudget})
		if err != nil {
			return false
		}
		adv := sim.NewRandom(seed)
		if crashy {
			adv.CrashProb = 0.002
		}
		rep, err := sys.Run(adv, testStepLimit)
		if err != nil {
			return false
		}
		if rep.Duplicates != 0 || rep.Distinct > n {
			return false
		}
		lower := EffectivenessBound(n, m, beta)
		if lower < 0 {
			lower = 0
		}
		return rep.Distinct >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterativeSafety property-tests IterativeKK(ε) executions.
func TestQuickIterativeSafety(t *testing.T) {
	f := func(nRaw uint16, mRaw, kRaw uint8, seed int64) bool {
		m := int(mRaw)%4 + 1
		n := m + int(nRaw)%900
		k := int(kRaw)%3 + 1
		sys, err := NewIterSystem(IterConfig{N: n, M: m, EpsDenom: k})
		if err != nil {
			return false
		}
		rep, err := sys.Run(sim.NewRandom(seed), testStepLimit)
		if err != nil {
			return false
		}
		return rep.Duplicates == 0 && rep.Distinct <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSuperJobSizes property-tests the size cascade: powers of two,
// strictly decreasing, mutually dividing, ending at 1.
func TestQuickSuperJobSizes(t *testing.T) {
	f := func(nRaw uint32, mRaw, kRaw uint8) bool {
		n := int(nRaw)%1_000_000 + 2
		m := int(mRaw)%64 + 1
		if n < m {
			n = m
		}
		k := int(kRaw)%5 + 1
		sizes := SuperJobSizes(n, m, k)
		if len(sizes) == 0 || sizes[len(sizes)-1] != 1 {
			return false
		}
		for i, s := range sizes {
			if s < 1 || s&(s-1) != 0 {
				return false
			}
			if i > 0 && (s >= sizes[i-1] || sizes[i-1]%s != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMapBlocksLossless property-tests the super-job map: for random
// block sets and nested power-of-two sizes, coverage is preserved exactly.
func TestQuickMapBlocksLossless(t *testing.T) {
	f := func(nRaw uint16, s1Exp, s2Exp uint8, picks []uint16) bool {
		n := int(nRaw)%5000 + 16
		e1 := int(s1Exp)%6 + 1 // s1 ∈ {2..64}
		e2 := int(s2Exp) % (e1 + 1)
		s1, s2 := 1<<e1, 1<<e2
		b1max := Blocks(n, s1)
		in := oset.New()
		for _, p := range picks {
			in.Insert(int(p)%b1max + 1)
		}
		out := MapBlocks(in, n, s1, s2)
		// Coverage must be identical.
		covered := make(map[int]bool)
		in.Ascend(func(b int) bool {
			lo, hi := BlockJobs(n, s1, b)
			for j := lo; j <= hi; j++ {
				covered[j] = true
			}
			return true
		})
		total := 0
		ok := true
		out.Ascend(func(b int) bool {
			lo, hi := BlockJobs(n, s2, b)
			for j := lo; j <= hi; j++ {
				if !covered[j] {
					ok = false
					return false
				}
				total++
			}
			return true
		})
		return ok && total == len(covered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneRoundTrip property-tests the model checker's snapshot
// machinery: stepping a clone-restored process reproduces the original's
// behavior exactly.
func TestQuickCloneRoundTrip(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		sys, err := NewSystem(Config{N: 20, M: 2})
		if err != nil {
			return false
		}
		p := sys.Procs[0]
		// Advance some random number of steps.
		for i := 0; i < int(k)%30; i++ {
			if p.Status() != sim.Running {
				break
			}
			p.Step()
		}
		snap := p.SaveState()
		before := encodeState(p)
		// Mutate: take a few more steps, then restore.
		for i := 0; i < 5 && p.Status() == sim.Running; i++ {
			p.Step()
		}
		p.LoadState(snap)
		return encodeState(p) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func encodeState(p *Proc) string {
	return string(p.AppendState(nil))
}
