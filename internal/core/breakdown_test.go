package core

import (
	"testing"

	"atmostonce/internal/sim"
)

// TestWorkBreakdownConsistent: per-process work decomposes into shared
// accesses, log-charged set operations and O(1) residual steps, and the
// process-level shared-access counts sum to the memory's global counters.
func TestWorkBreakdownConsistent(t *testing.T) {
	s := mustSystem(t, Config{N: 256, M: 4})
	if _, err := s.Run(&sim.RoundRobin{}, testStepLimit); err != nil {
		t.Fatal(err)
	}
	var shared, setOps, work uint64
	for _, p := range s.Procs {
		shared += p.SharedAccesses()
		setOps += p.SetOps()
		work += p.Work()
	}
	if got := s.Mem.Accesses(); shared != got {
		t.Fatalf("proc shared accesses %d != memory accesses %d", shared, got)
	}
	lgN := uint64(ceilLog2(256 + 1))
	if floor := shared + setOps*lgN; work < floor {
		t.Fatalf("work %d < shared %d + setops·lg %d", work, shared, setOps*lgN)
	}
	// Set operations dominate the cost model (the paper's lg n factor).
	if setOps == 0 || shared == 0 {
		t.Fatal("breakdown counters not populated")
	}
}
