package core

// CollisionMatrix counts collision events per ordered process pair:
// Record(p, q) means "p collided with q" in the sense of Definition 5.2
// (p abandoned its announced job after observing q announcing or
// completing it). Lemma 5.5 bounds each entry by 2⌈n/(m·|q−p|)⌉ when
// β ≥ 3m².
type CollisionMatrix struct {
	m      int
	counts []uint64
}

// NewCollisionMatrix returns a matrix for processes 1..m.
func NewCollisionMatrix(m int) *CollisionMatrix {
	return &CollisionMatrix{m: m, counts: make([]uint64, m*m)}
}

// Record adds one collision of detector p with culprit q.
func (c *CollisionMatrix) Record(p, q int) {
	c.counts[(p-1)*c.m+(q-1)]++
}

// Count returns the number of times p collided with q.
func (c *CollisionMatrix) Count(p, q int) uint64 {
	return c.counts[(p-1)*c.m+(q-1)]
}

// Total returns the total number of collisions recorded.
func (c *CollisionMatrix) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// M returns the number of processes the matrix covers.
func (c *CollisionMatrix) M() int { return c.m }

// PairBound returns Lemma 5.5's bound 2⌈n/(m·|q−p|)⌉ for a pair p ≠ q.
func PairBound(n, m, p, q int) uint64 {
	d := p - q
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	den := m * d
	return uint64(2 * ((n + den - 1) / den))
}
