package core

import (
	"testing"

	"atmostonce/internal/oset"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// collectSink records do events for direct-stepping tests.
type collectSink struct {
	events []sim.Event
}

func (c *collectSink) RecordDo(pid int, job int64) {
	c.events = append(c.events, sim.Event{PID: pid, Job: job})
}

// newPair builds a 2-process instance for direct stepping (no engine).
func newPair(n, beta int, iterStep bool) (*Proc, *Proc, *shmem.SimMem, *collectSink, Layout) {
	lay := Layout{M: 2, RowLen: n, HasFlag: iterStep}
	mem := shmem.NewSim(lay.Size())
	sink := &collectSink{}
	mk := func(id int) *Proc {
		return NewProc(ProcOptions{
			ID: id, M: 2, Beta: beta, Layout: lay, Mem: mem,
			Universe: n, IterStep: iterStep, Sink: sink,
		})
	}
	return mk(1), mk(2), mem, sink, lay
}

// TestActionSequenceGolden walks process 1 through one complete job cycle
// and checks the phase sequence and shared-memory effects action by
// action, mirroring Figure 2 literally.
func TestActionSequenceGolden(t *testing.T) {
	p1, _, mem, sink, lay := newPair(10, 2, false)

	// comp_next: picks rank ⌊(p−1)·(10−1)/2⌋+1 = 1 → job 1.
	if p1.Phase() != PhaseCompNext {
		t.Fatalf("phase = %v", p1.Phase())
	}
	p1.Step()
	if p1.Phase() != PhaseSetNext || p1.NextJob() != 1 {
		t.Fatalf("after compNext: phase=%v next=%d", p1.Phase(), p1.NextJob())
	}
	if mem.Peek(lay.NextAddr(1)) != 0 {
		t.Fatal("compNext touched shared memory")
	}

	// set_next: announce in next[1].
	p1.Step()
	if p1.Phase() != PhaseGatherTry {
		t.Fatalf("after setNext: phase=%v", p1.Phase())
	}
	if mem.Peek(lay.NextAddr(1)) != 1 {
		t.Fatal("announcement not written")
	}

	// gather_try: m=2 ⇒ two sub-steps (skip self, read peer).
	p1.Step() // Q=1 (self, skip)
	if p1.Phase() != PhaseGatherTry {
		t.Fatalf("gather_try ended early: %v", p1.Phase())
	}
	p1.Step() // Q=2 reads next[2]=0
	if p1.Phase() != PhaseGatherDone {
		t.Fatalf("after gather_try: phase=%v", p1.Phase())
	}
	if p1.TryLen() != 0 {
		t.Fatalf("TRY picked up a phantom announcement: %d", p1.TryLen())
	}

	// gather_done: Q=1 (self, skip), Q=2 (empty row).
	p1.Step()
	p1.Step()
	if p1.Phase() != PhaseCheck {
		t.Fatalf("after gather_done: phase=%v", p1.Phase())
	}

	// check: job 1 is safe.
	p1.Step()
	if p1.Phase() != PhaseDo {
		t.Fatalf("after check: phase=%v", p1.Phase())
	}

	// do: event recorded.
	p1.Step()
	if p1.Phase() != PhaseDoneWrite || len(sink.events) != 1 || sink.events[0].Job != 1 {
		t.Fatalf("after do: phase=%v events=%v", p1.Phase(), sink.events)
	}

	// done: published in row 1, sets updated, POS advanced.
	p1.Step()
	if p1.Phase() != PhaseCompNext {
		t.Fatalf("after done: phase=%v", p1.Phase())
	}
	if mem.Peek(lay.DoneAddr(1, 1)) != 1 {
		t.Fatal("done entry not published")
	}
	if p1.FreeContains(1) || !p1.DoneContains(1) {
		t.Fatal("sets not updated by done")
	}
	if p1.PosOf(1) != 2 {
		t.Fatalf("POS(1) = %d, want 2", p1.PosOf(1))
	}
}

// TestCheckFailsOnAnnouncement: if the peer announced our candidate, the
// check action must bounce us back to comp_next without performing.
func TestCheckFailsOnAnnouncement(t *testing.T) {
	p1, p2, _, sink, _ := newPair(10, 2, false)

	// p2 announces job 1 first (it would pick rank ⌊1·9/2⌋+1 = 5; force
	// the clash by stepping p1's choice into p2's register instead).
	p2.Step() // compNext → NEXT₂ = 5
	p1.Step() // compNext → NEXT₁ = 1
	// Manually make p2 announce 1 to provoke the collision:
	p2.next = 1
	p2.Step() // setNext writes next[2] = 1

	p1.Step() // setNext
	p1.Step() // gatherTry self
	p1.Step() // gatherTry reads next[2] = 1 → TRY = {1}
	if p1.TryLen() != 1 {
		t.Fatalf("TRY = %d, want 1", p1.TryLen())
	}
	p1.Step() // gatherDone self
	p1.Step() // gatherDone peer row empty
	if p1.Phase() != PhaseCheck {
		t.Fatalf("phase = %v", p1.Phase())
	}
	p1.Step() // check: NEXT=1 ∈ TRY → comp_next
	if p1.Phase() != PhaseCompNext {
		t.Fatalf("check did not bounce: %v", p1.Phase())
	}
	if len(sink.events) != 0 {
		t.Fatal("job performed despite announcement clash")
	}
}

// TestGatherDoneDrainsRow: fresh done entries keep Q on the same row,
// one read per action (the POS bookkeeping of Figure 2).
func TestGatherDoneDrainsRow(t *testing.T) {
	p1, _, mem, _, lay := newPair(10, 2, false)
	// Peer published three jobs.
	mem.Write(lay.DoneAddr(2, 1), 7)
	mem.Write(lay.DoneAddr(2, 2), 8)
	mem.Write(lay.DoneAddr(2, 3), 9)

	p1.Step() // compNext
	p1.Step() // setNext
	p1.Step() // gatherTry self
	p1.Step() // gatherTry peer
	if p1.Phase() != PhaseGatherDone {
		t.Fatalf("phase = %v", p1.Phase())
	}
	p1.Step() // Q=1 self → Q=2
	for i := 0; i < 3; i++ {
		p1.Step() // reads row 2 entry i+1, Q stays 2
		if p1.Phase() != PhaseGatherDone {
			t.Fatalf("left gather_done after %d drains", i+1)
		}
	}
	if p1.DoneLen() != 3 || p1.FreeLen() != 7 {
		t.Fatalf("sets after drain: done=%d free=%d", p1.DoneLen(), p1.FreeLen())
	}
	if p1.PosOf(2) != 4 {
		t.Fatalf("POS(2) = %d, want 4", p1.PosOf(2))
	}
	p1.Step() // reads 0 at row 2 index 4 → Q=3 > m → check
	if p1.Phase() != PhaseCheck {
		t.Fatalf("phase = %v", p1.Phase())
	}
}

// TestIterStepFlagProtocol exercises §6's termination flag end to end by
// direct stepping: process 1 terminates and raises the flag; process 2,
// already past its safety check, must read the flag and terminate
// WITHOUT performing (the Lemma 6.2 mechanism).
func TestIterStepFlagProtocol(t *testing.T) {
	const n, beta = 14, 12
	p1, p2, mem, sink, lay := newPair(n, beta, true)

	// p2 announces its candidate, then pauses.
	p2.Step() // compNext → some job
	p2.Step() // setNext
	target := p2.NextJob()

	// p1 performs jobs until it hits |FREE\TRY| < β and terminates. Each
	// performed job shrinks FREE; with β=12, n=14 and p2's announcement
	// in TRY, p1 stops after two jobs.
	steps := 0
	for p1.Status() == sim.Running {
		p1.Step()
		steps++
		if steps > 1000 {
			t.Fatal("p1 did not terminate")
		}
	}
	if mem.Peek(lay.FlagAddr()) != 1 {
		t.Fatal("termination flag not raised")
	}
	performedByP1 := len(sink.events)
	if performedByP1 == 0 {
		t.Fatal("p1 performed nothing")
	}
	// p1's output must not contain anything performed (Lemma 6.2) nor
	// p2's announced job (it is in p1's TRY).
	for _, e := range sink.events {
		if p1.Output().Contains(int(e.Job)) {
			t.Fatalf("p1 output contains performed job %d", e.Job)
		}
	}
	if p1.Output().Contains(int(target)) {
		t.Fatal("p1 output contains p2's announced job")
	}

	// Now p2 resumes: gather, check, and the extra check_flag action.
	sawCheckFlag := false
	steps = 0
	for p2.Status() == sim.Running {
		if p2.Phase() == PhaseCheckFlag {
			sawCheckFlag = true
		}
		p2.Step()
		steps++
		if steps > 1000 {
			t.Fatal("p2 did not terminate")
		}
	}
	for _, e := range sink.events[performedByP1:] {
		if e.PID == 2 {
			t.Fatal("p2 performed a job after the flag was raised")
		}
	}
	_ = sawCheckFlag // p2 may bounce at check instead if its job was taken
	// Either path, Lemma 6.2 must hold for p2's output too.
	for _, e := range sink.events {
		if p2.Output().Contains(int(e.Job)) {
			t.Fatalf("p2 output contains performed job %d", e.Job)
		}
	}
}

// TestIterStepOutputsComposable: the outputs of a terminated IterStepKK
// round, restricted per process, can seed a NEW round (fresh memory) and
// the union of both rounds' events still satisfies at-most-once — the
// composition IterativeKK relies on (Theorem 6.3).
func TestIterStepOutputsComposable(t *testing.T) {
	const n = 30
	p1, p2, _, sink, _ := newPair(n, 12, true)
	// Run round 1 to completion, interleaved.
	for p1.Status() == sim.Running || p2.Status() == sim.Running {
		if p1.Status() == sim.Running {
			p1.Step()
		}
		if p2.Status() == sim.Running {
			p2.Step()
		}
	}
	round1 := len(sink.events)

	// Round 2: fresh shared memory, inputs = round-1 outputs.
	lay2 := Layout{M: 2, RowLen: n, HasFlag: true}
	mem2 := shmem.NewSim(lay2.Size())
	mk := func(id int, jobs *oset.Set) *Proc {
		return NewProc(ProcOptions{
			ID: id, M: 2, Beta: 2, Layout: lay2, Mem: mem2,
			Universe: n, Jobs: jobs, Sink: sink,
		})
	}
	q1 := mk(1, p1.Output().Clone())
	q2 := mk(2, p2.Output().Clone())
	for q1.Status() == sim.Running || q2.Status() == sim.Running {
		if q1.Status() == sim.Running {
			q1.Step()
		}
		if q2.Status() == sim.Running {
			q2.Step()
		}
	}
	if round1 == len(sink.events) {
		t.Fatal("round 2 performed nothing")
	}
	seen := make(map[int64]bool)
	for _, e := range sink.events {
		if seen[e.Job] {
			t.Fatalf("job %d performed in both rounds — composition unsafe", e.Job)
		}
		seen[e.Job] = true
	}
}
