package core

import (
	"testing"

	"atmostonce/internal/sim"
)

const testStepLimit = 50_000_000

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runRR(t *testing.T, cfg Config) *Report {
	t.Helper()
	s := mustSystem(t, cfg)
	rep, err := s.Run(&sim.RoundRobin{}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPhaseString(t *testing.T) {
	phases := map[Phase]string{
		PhaseCompNext: "comp_next", PhaseSetNext: "set_next",
		PhaseGatherTry: "gather_try", PhaseGatherDone: "gather_done",
		PhaseCheck: "check", PhaseCheckFlag: "check_flag", PhaseDo: "do",
		PhaseDoneWrite: "done", PhaseTermFlag: "term_flag",
		PhaseEnd: "end", PhaseStop: "stop", Phase(99): "Phase(99)",
	}
	for ph, want := range phases {
		if got := ph.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(ph), got, want)
		}
	}
}

func TestLayoutAddresses(t *testing.T) {
	l := Layout{Base: 10, M: 3, RowLen: 5, HasFlag: true}
	if got := l.NextAddr(1); got != 10 {
		t.Errorf("NextAddr(1) = %d, want 10", got)
	}
	if got := l.NextAddr(3); got != 12 {
		t.Errorf("NextAddr(3) = %d, want 12", got)
	}
	if got := l.DoneAddr(1, 1); got != 13 {
		t.Errorf("DoneAddr(1,1) = %d, want 13", got)
	}
	if got := l.DoneAddr(2, 3); got != 20 {
		t.Errorf("DoneAddr(2,3) = %d, want 20", got)
	}
	if got := l.FlagAddr(); got != 28 {
		t.Errorf("FlagAddr = %d, want 28", got)
	}
	if got := l.Size(); got != 19 {
		t.Errorf("Size = %d, want 19", got)
	}
	l.HasFlag = false
	if got := l.Size(); got != 18 {
		t.Errorf("Size without flag = %d, want 18", got)
	}
}

func TestLayoutPaddedAddresses(t *testing.T) {
	l := Layout{Base: 10, M: 3, RowLen: 5, HasFlag: true}.Padded()
	// Next cells sit one cache line (CacheLineCells registers) apart.
	if got := l.NextAddr(1); got != 10 {
		t.Errorf("NextAddr(1) = %d, want 10", got)
	}
	if got := l.NextAddr(3); got != 10+2*CacheLineCells {
		t.Errorf("NextAddr(3) = %d, want %d", got, 10+2*CacheLineCells)
	}
	// The done matrix stays packed, starting right after the strided
	// next array.
	if got := l.DoneAddr(1, 1); got != 34 {
		t.Errorf("DoneAddr(1,1) = %d, want 34", got)
	}
	if got := l.DoneAddr(2, 3); got != 41 {
		t.Errorf("DoneAddr(2,3) = %d, want 41", got)
	}
	if got := l.FlagAddr(); got != 49 {
		t.Errorf("FlagAddr = %d, want 49", got)
	}
	if got := l.Size(); got != 40 {
		t.Errorf("Size = %d, want 40", got)
	}
	// Padding must never make two variables share an address: the last
	// next cell is strictly below the first done cell.
	if l.NextAddr(3) >= l.DoneAddr(1, 1) {
		t.Errorf("next array overlaps done matrix: %d >= %d", l.NextAddr(3), l.DoneAddr(1, 1))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{N: 5, M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewSystem(Config{N: 2, M: 3}); err == nil {
		t.Error("n < m accepted")
	}
	s, err := NewSystem(Config{N: 10, M: 3, F: 99})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.F != 2 {
		t.Errorf("F clamped to %d, want 2", s.Cfg.F)
	}
	if s.Cfg.Beta != 3 {
		t.Errorf("default Beta = %d, want m=3", s.Cfg.Beta)
	}
}

func TestSingleProcessPerformsEverything(t *testing.T) {
	rep := runRR(t, Config{N: 25, M: 1})
	if rep.Distinct != 25 {
		t.Fatalf("Do(α) = %d, want 25", rep.Distinct)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("duplicates = %d", rep.Duplicates)
	}
}

func TestRoundRobinNoCrashesBounds(t *testing.T) {
	tests := []struct {
		n, m, beta int
	}{
		{10, 2, 0}, {50, 2, 0}, {50, 5, 0}, {100, 10, 0},
		{100, 4, 12}, {64, 8, 8}, {200, 3, 27}, // β = 3m²
	}
	for _, tt := range tests {
		rep := runRR(t, Config{N: tt.n, M: tt.m, Beta: tt.beta})
		lower := EffectivenessBound(tt.n, tt.m, tt.beta)
		if rep.Distinct < lower {
			t.Errorf("n=%d m=%d β=%d: Do = %d < bound %d",
				tt.n, tt.m, tt.beta, rep.Distinct, lower)
		}
		if rep.Distinct > tt.n {
			t.Errorf("n=%d m=%d: Do = %d > n", tt.n, tt.m, rep.Distinct)
		}
		if rep.Duplicates != 0 {
			t.Errorf("n=%d m=%d: %d duplicate do events (AMO violation)",
				tt.n, tt.m, rep.Duplicates)
		}
	}
}

func TestRandomSchedulesAMOAndBounds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := Config{N: 80, M: 4}
		s := mustSystem(t, cfg)
		rep, err := s.Run(sim.NewRandom(seed), testStepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("seed %d: AMO violated (%d dups)", seed, rep.Duplicates)
		}
		if lower := EffectivenessBound(80, 4, 0); rep.Distinct < lower {
			t.Fatalf("seed %d: Do = %d < %d", seed, rep.Distinct, lower)
		}
	}
}

func TestRandomCrashesAMOAndBounds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := Config{N: 60, M: 5, F: 4}
		s := mustSystem(t, cfg)
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.001
		rep, err := s.Run(adv, testStepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("seed %d: AMO violated (%d dups)", seed, rep.Duplicates)
		}
		// Lemma 4.2's accounting: at least one process terminates
		// voluntarily (f ≤ m−1), so the completed run performed at least
		// n−(β+m−2) jobs.
		if lower := EffectivenessBound(60, 5, 0); rep.Distinct < lower {
			t.Fatalf("seed %d: Do = %d < %d", seed, rep.Distinct, lower)
		}
	}
}

func TestBetaLessThanMStillSafe(t *testing.T) {
	// Correctness (Lemma 4.1) holds for any β; termination is not
	// guaranteed by the paper, but our implementation terminates
	// defensively instead of spinning. Safety is what we assert.
	for seed := int64(0); seed < 10; seed++ {
		s := mustSystem(t, Config{N: 30, M: 4, Beta: 1})
		rep, err := s.Run(sim.NewRandom(seed), testStepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Duplicates != 0 {
			t.Fatalf("seed %d: AMO violated with β<m", seed)
		}
	}
}

func TestSoloProcessLeavesWorkForOthers(t *testing.T) {
	// Process 2 runs alone to completion, then the others finish.
	s := mustSystem(t, Config{N: 40, M: 3})
	rep, err := s.Run(&sim.Solo{PID: 2}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated")
	}
	if s.Procs[1].Performed() == 0 {
		t.Fatal("solo process performed nothing")
	}
	if rep.Distinct < EffectivenessBound(40, 3, 0) {
		t.Fatalf("Do = %d below bound", rep.Distinct)
	}
}

func TestPerformedMatchesEvents(t *testing.T) {
	s := mustSystem(t, Config{N: 50, M: 4})
	rep, err := s.Run(&sim.RoundRobin{}, testStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range s.Procs {
		total += p.Performed()
	}
	if total != len(rep.Result.Events) {
		t.Fatalf("Σ Performed = %d, events = %d", total, len(rep.Result.Events))
	}
	if rep.Distinct != total-rep.Duplicates {
		t.Fatalf("distinct %d != events %d - dups %d", rep.Distinct, total, rep.Duplicates)
	}
}

func TestWorkIsCounted(t *testing.T) {
	rep := runRR(t, Config{N: 64, M: 4})
	if rep.Work == 0 {
		t.Fatal("work not counted")
	}
	if rep.Result.MemReads == 0 || rep.Result.MemWrites == 0 {
		t.Fatal("memory accesses not counted")
	}
	// Work must dominate the raw access counts (it includes them).
	if rep.Work < rep.Result.MemReads+rep.Result.MemWrites {
		t.Fatalf("work %d < accesses %d", rep.Work, rep.Result.MemReads+rep.Result.MemWrites)
	}
}

func TestProcAccessors(t *testing.T) {
	s := mustSystem(t, Config{N: 10, M: 2})
	p := s.Procs[0]
	if p.ID() != 1 {
		t.Errorf("ID = %d", p.ID())
	}
	if p.Phase() != PhaseCompNext {
		t.Errorf("initial phase = %v", p.Phase())
	}
	if p.FreeLen() != 10 || p.DoneLen() != 0 || p.TryLen() != 0 {
		t.Errorf("initial sets: free=%d done=%d try=%d", p.FreeLen(), p.DoneLen(), p.TryLen())
	}
	if p.Output() != nil {
		t.Error("Output non-nil before termination")
	}
	p.Step() // compNext
	if p.Phase() != PhaseSetNext {
		t.Errorf("after compNext phase = %v", p.Phase())
	}
	if p.NextJob() == 0 {
		t.Error("NEXT not set by compNext")
	}
	p.Crash()
	if p.Status() != sim.Crashed {
		t.Errorf("status after crash = %v", p.Status())
	}
}

func TestDistinctNextChoicesFromFreshState(t *testing.T) {
	// From identical fresh states, different processes must pick distinct
	// jobs (the interval-splitting rule of compNext) — the mechanism
	// behind the Theorem 4.4 adversary's STUCK set.
	s := mustSystem(t, Config{N: 100, M: 8})
	seen := make(map[int64]bool)
	for _, p := range s.Procs {
		p.Step() // compNext
		if seen[p.NextJob()] {
			t.Fatalf("processes chose the same job %d from fresh state", p.NextJob())
		}
		seen[p.NextJob()] = true
	}
}

func TestCollisionTrackingRecordsSomething(t *testing.T) {
	// Lock-step round-robin on a small job space forces collisions.
	s := mustSystem(t, Config{N: 12, M: 4, Beta: 4, TrackCollisions: true})
	if _, err := s.Run(&sim.RoundRobin{}, testStepLimit); err != nil {
		t.Fatal(err)
	}
	if s.Collisions == nil {
		t.Fatal("collision matrix nil")
	}
	// No self-collisions ever.
	for p := 1; p <= 4; p++ {
		if c := s.Collisions.Count(p, p); c != 0 {
			t.Fatalf("self-collision recorded for %d: %d", p, c)
		}
	}
}

func TestEffectivenessBoundHelpers(t *testing.T) {
	if got := EffectivenessBound(100, 5, 0); got != 100-(5+5-2) {
		t.Errorf("EffectivenessBound = %d", got)
	}
	if got := EffectivenessBound(100, 5, 75); got != 100-(75+5-2) {
		t.Errorf("EffectivenessBound β=75 = %d", got)
	}
	if got := UpperBound(100, 4); got != 96 {
		t.Errorf("UpperBound = %d", got)
	}
}

func TestPairBound(t *testing.T) {
	if got := PairBound(100, 4, 1, 3); got != 2*((100+7)/8) {
		t.Errorf("PairBound = %d", got)
	}
	if got := PairBound(100, 4, 3, 1); got != PairBound(100, 4, 1, 3) {
		t.Error("PairBound not symmetric")
	}
	if got := PairBound(100, 4, 2, 2); got != 0 {
		t.Errorf("PairBound same proc = %d", got)
	}
}

func TestCollisionMatrix(t *testing.T) {
	c := NewCollisionMatrix(3)
	c.Record(1, 2)
	c.Record(1, 2)
	c.Record(3, 1)
	if c.Count(1, 2) != 2 || c.Count(3, 1) != 1 || c.Count(2, 1) != 0 {
		t.Errorf("counts wrong: %d %d %d", c.Count(1, 2), c.Count(3, 1), c.Count(2, 1))
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.M() != 3 {
		t.Errorf("M = %d", c.M())
	}
}
