package core

import (
	"fmt"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// Config describes a plain KKβ instance solving the at-most-once problem
// for n jobs J = [1..n] with m processes.
type Config struct {
	// N is the number of jobs (n ≥ m required by the model, §2.2).
	N int
	// M is the number of processes.
	M int
	// Beta is the termination parameter β; 0 means β = m, the
	// effectiveness-optimal choice of Theorem 4.4.
	Beta int
	// F is the crash budget f < m available to the adversary.
	F int
	// TrackCollisions enables Definition 5.2 collision accounting.
	TrackCollisions bool
	// NoPosCache is the DESIGN.md §5.3 ablation: disable the POS row
	// pointers so every gather pass re-reads the done rows from scratch.
	NoPosCache bool
}

func (c *Config) normalize() error {
	if c.M < 1 {
		return fmt.Errorf("core: need at least one process, got m=%d", c.M)
	}
	if c.N < c.M {
		return fmt.Errorf("core: need n ≥ m, got n=%d m=%d", c.N, c.M)
	}
	if c.Beta == 0 {
		c.Beta = c.M
	}
	if c.F >= c.M {
		c.F = c.M - 1
	}
	if c.F < 0 {
		c.F = 0
	}
	return nil
}

// System is an assembled KKβ instance: shared memory, processes and world,
// ready to run under any adversary.
type System struct {
	Cfg        Config
	Mem        *shmem.SimMem
	World      *sim.World
	Procs      []*Proc
	Collisions *CollisionMatrix
	Layout     Layout
}

// NewSystem assembles a KKβ instance per Config.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	lay := Layout{M: cfg.M, RowLen: cfg.N}
	mem := shmem.NewSim(lay.Size())
	var coll *CollisionMatrix
	if cfg.TrackCollisions {
		coll = NewCollisionMatrix(cfg.M)
	}
	procs := make([]*Proc, cfg.M)
	simProcs := make([]sim.Process, cfg.M)
	for i := 0; i < cfg.M; i++ {
		procs[i] = NewProc(ProcOptions{
			ID:         i + 1,
			M:          cfg.M,
			Beta:       cfg.Beta,
			Layout:     lay,
			Mem:        mem,
			Universe:   cfg.N,
			Collisions: coll,
			NoPosCache: cfg.NoPosCache,
		})
		simProcs[i] = procs[i]
	}
	world := sim.NewWorld(simProcs, mem, cfg.F)
	for _, p := range procs {
		p.sink = world
	}
	return &System{
		Cfg:        cfg,
		Mem:        mem,
		World:      world,
		Procs:      procs,
		Collisions: coll,
		Layout:     lay,
	}, nil
}

// Report summarizes one completed execution of an at-most-once system.
type Report struct {
	// Result is the raw engine summary.
	Result *sim.Result
	// Distinct is Do(α): the number of distinct jobs performed.
	Distinct int
	// Duplicates is the number of do events beyond the first per job.
	// Any nonzero value is an at-most-once violation (Lemma 4.1 says it
	// is always zero).
	Duplicates int
	// Work is the total work in the paper's cost model.
	Work uint64
}

// Run executes the system under adv. maxSteps ≤ 0 means unlimited; a fair
// adversary always terminates by Lemma 4.3, so tests pass a generous limit
// to convert a wait-freedom bug into a failure instead of a hang.
func (s *System) Run(adv sim.Adversary, maxSteps uint64) (*Report, error) {
	res, err := sim.Run(s.World, adv, maxSteps)
	if err != nil {
		return nil, err
	}
	return summarizeEvents(res), nil
}

func summarizeEvents(res *sim.Result) *Report {
	seen := make(map[int64]int, len(res.Events))
	dups := 0
	for _, e := range res.Events {
		seen[e.Job]++
		if seen[e.Job] > 1 {
			dups++
		}
	}
	return &Report{
		Result:     res,
		Distinct:   len(seen),
		Duplicates: dups,
		Work:       res.TotalWork,
	}
}

// EffectivenessBound returns Theorem 4.4's exact effectiveness
// n − (β + m − 2) for a configuration.
func EffectivenessBound(n, m, beta int) int {
	if beta == 0 {
		beta = m
	}
	return n - (beta + m - 2)
}

// UpperBound returns Theorem 2.1's effectiveness upper bound n − f.
func UpperBound(n, f int) int { return n - f }
