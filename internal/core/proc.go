package core

import (
	"fmt"

	"atmostonce/internal/denseset"
	"atmostonce/internal/oset"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// DoSink receives do_{p,j} events. sim.World implements it; the concurrent
// runtime and the Write-All harness provide their own sinks.
type DoSink interface {
	RecordDo(pid int, job int64)
}

// nopSink discards events.
type nopSink struct{}

func (nopSink) RecordDo(int, int64) {}

// ProcOptions configures a single KKβ/IterStepKK process.
type ProcOptions struct {
	// ID is the process identifier p ∈ [1..m].
	ID int
	// M is the total number of processes.
	M int
	// Beta is the termination parameter β. The paper requires β ≥ m for
	// termination (Lemma 4.3); correctness holds for any β (Lemma 4.1).
	Beta int
	// Layout locates the instance's shared variables in Mem.
	Layout Layout
	// Mem is the shared memory.
	Mem shmem.Mem
	// Jobs is the initial FREE set. For plain KKβ this is J = [1..n]; for
	// IterStepKK it is the per-process input set of super-jobs.
	Jobs *oset.Set
	// Universe is the largest job identifier that can appear (n). Used for
	// work-charging set operations at the paper's O(log n) rate and for
	// bounding POS row scans.
	Universe int
	// IterStep selects the §6 variant: a shared termination flag is
	// written when |FREE\TRY| < β and read before every do action.
	IterStep bool
	// ReturnFree makes the terminating process output FREE instead of
	// FREE\TRY — the WA_IterStepKK variant of §7.
	ReturnFree bool
	// Sink receives do events; nil discards them.
	Sink DoSink
	// DoFn, when non-nil, is invoked for each performed job (payload
	// execution in the concurrent runtime).
	DoFn func(job int64)
	// DoCost is the work charged per do action (1 for plain jobs, the
	// super-job size for IterativeKK levels). Zero means 1.
	DoCost uint64
	// Collisions, when non-nil, records Definition 5.2 collision events.
	Collisions *CollisionMatrix
	// NoPosCache disables the POS row pointers: every gather_done pass
	// re-reads each done row from the beginning. Correctness is
	// unaffected (set updates are idempotent); work blows up from
	// O(nm·lgn·lgm) toward O(n²m·lgn)-ish. Ablation use only (DESIGN.md
	// §5.3).
	NoPosCache bool
}

// Proc is one KKβ process: the I/O automaton of Figures 1–2 with the state
// variables STATUS, FREE, DONE, TRY, POS, NEXT and Q. Each Step performs
// one action (at most one shared-memory access).
type Proc struct {
	id       int
	m        int
	beta     int
	lay      Layout
	mem      shmem.Mem
	sink     DoSink
	doFn     func(job int64)
	doCost   uint64
	iterStep bool
	retFree  bool
	collide  *CollisionMatrix
	lgN      int
	noCache  bool

	phase     Phase
	termGath  bool // gather pass is the §6 terminating recomputation
	free      JobSet
	done      JobSet
	try       JobSet
	pos       []int // pos[q], 1-based; pos[0] unused
	next      int64
	q         int
	work      uint64
	nDone     int    // count of do actions by this process
	nAnnounce int    // count of setNext actions by this process
	nShared   uint64 // shared-memory accesses
	nSetOps   uint64 // set operations charged at O(log n)

	out        *oset.Set // output set on termination (IterStepKK)
	outBuf     *oset.Set // reusable backing storage for out across Resets
	tryCulprit int       // process blamed for a pending collision on next

	// Pre-bound Ascend callbacks. Built once in NewProc and reused so the
	// hot path never materializes a closure: a literal passed to an
	// interface method escapes, and the round loop must stay
	// allocation-free.
	inFreeCount int
	countInFree func(v int) bool
	emitOutput  func(v int) bool
}

var _ sim.Process = (*Proc)(nil)

// NewProc builds a process in its start state (Figure 1: STATUS=comp_next,
// FREE=Jobs, DONE=TRY=∅, POS(i)=1, Q=1).
func NewProc(o ProcOptions) *Proc {
	if o.Beta <= 0 {
		o.Beta = o.M
	}
	if o.DoCost == 0 {
		o.DoCost = 1
	}
	sink := o.Sink
	if sink == nil {
		sink = nopSink{}
	}
	// A nil Jobs means the dense universe [1..Universe] — the round-based
	// runtime's case — where the bitmap implementation turns every
	// FREE/DONE/TRY operation on the round path into word arithmetic. An
	// explicit Jobs set (sparse super-jobs, arbitrary test subsets) keeps
	// the order-statistic tree. All three sets must share a kind; see
	// JobSet.
	var free, done, try JobSet
	if o.Jobs == nil {
		free = denseJobSet{denseset.NewRange(1, o.Universe)}
		done = denseJobSet{denseset.New()}
		try = denseJobSet{denseset.New()}
	} else {
		free = treeJobSet{o.Jobs}
		done = treeJobSet{oset.New()}
		try = treeJobSet{oset.New()}
	}
	p := &Proc{
		id:       o.ID,
		m:        o.M,
		beta:     o.Beta,
		lay:      o.Layout,
		mem:      o.Mem,
		sink:     sink,
		doFn:     o.DoFn,
		doCost:   o.DoCost,
		iterStep: o.IterStep,
		retFree:  o.ReturnFree,
		collide:  o.Collisions,
		noCache:  o.NoPosCache,
		lgN:      ceilLog2(o.Universe + 1),
		phase:    PhaseCompNext,
		free:     free,
		done:     done,
		try:      try,
		pos:      make([]int, o.M+1),
		q:        1,
	}
	for i := 1; i <= o.M; i++ {
		p.pos[i] = 1
	}
	p.bindCallbacks()
	return p
}

// bindCallbacks (re)builds the pre-bound Ascend callbacks so they
// capture this Proc. Called from NewProc and again after Clone /
// RestoreFrom, where copying the fields verbatim would leave closures
// over another instance's sets.
func (p *Proc) bindCallbacks() {
	p.countInFree = func(v int) bool {
		if p.free.Contains(v) {
			p.inFreeCount++
		}
		return true
	}
	p.emitOutput = func(v int) bool {
		if p.retFree || !p.try.Contains(v) {
			p.outBuf.Insert(v)
		}
		return true
	}
}

// ID implements sim.Process.
func (p *Proc) ID() int { return p.id }

// SetDoFn rebinds the per-job payload.
func (p *Proc) SetDoFn(fn func(job int64)) { p.doFn = fn }

// Prewarm grows the FREE/DONE/TRY node pools to their worst case for a
// universe of the given size, so Reset and round execution never allocate
// (DONE can reach the full universe; TRY never exceeds m-1 announcements).
func (p *Proc) Prewarm(universe int) {
	p.free.Reserve(universe)
	p.free.ReserveSelectScratch(p.m)
	p.done.Reserve(universe)
	p.try.Reserve(p.m)
	if p.outBuf == nil {
		p.outBuf = oset.New()
	}
	p.outBuf.Reserve(universe)
}

// Reset returns the process to its Figure 1 start state over the dense job
// universe [1..universe], reviving it from end or stop. All node storage of
// the FREE/DONE/TRY sets is reused, so a warm process restarts without
// allocating — the property the round-based runtime builds on. The caller
// owns re-zeroing the shared-memory region; universe must fit the layout
// row length fixed at construction.
func (p *Proc) Reset(universe int) {
	if universe < 1 || universe > p.lay.RowLen {
		panic(fmt.Sprintf("core: Reset universe %d outside [1..%d]", universe, p.lay.RowLen))
	}
	p.phase = PhaseCompNext
	p.termGath = false
	p.free.ResetRange(1, universe)
	p.done.Clear()
	p.try.Clear()
	for i := 1; i <= p.m; i++ {
		p.pos[i] = 1
	}
	p.next = 0
	p.q = 1
	p.work = 0
	p.nDone = 0
	p.nAnnounce = 0
	p.nShared = 0
	p.nSetOps = 0
	p.out = nil
	p.tryCulprit = 0
	p.lgN = ceilLog2(universe + 1)
}

// Status implements sim.Process.
func (p *Proc) Status() sim.Status {
	switch p.phase {
	case PhaseEnd:
		return sim.Done
	case PhaseStop:
		return sim.Crashed
	default:
		return sim.Running
	}
}

// Crash implements sim.Process (the stop_p input action).
func (p *Proc) Crash() { p.phase = PhaseStop }

// Work implements sim.Worker: total basic operations in the paper's cost
// model (§2.2) — O(1) per shared access and constant-size local step,
// O(log n) per set operation.
func (p *Proc) Work() uint64 { return p.work }

// Phase exposes the current STATUS for adversaries and tests.
func (p *Proc) Phase() Phase { return p.phase }

// NextJob exposes NEXT_p (0 before the first compNext).
func (p *Proc) NextJob() int64 { return p.next }

// FreeLen returns |FREE_p|.
func (p *Proc) FreeLen() int { return p.free.Len() }

// DoneLen returns |DONE_p|.
func (p *Proc) DoneLen() int { return p.done.Len() }

// TryLen returns |TRY_p|.
func (p *Proc) TryLen() int { return p.try.Len() }

// Performed returns the number of do actions this process executed.
func (p *Proc) Performed() int { return p.nDone }

// Announced returns the number of setNext actions this process executed.
func (p *Proc) Announced() int { return p.nAnnounce }

// SharedAccesses returns the number of shared-register reads and writes
// this process performed.
func (p *Proc) SharedAccesses() uint64 { return p.nShared }

// SetOps returns the number of set operations charged at O(log n) in the
// paper's cost model. work ≈ SharedAccesses + SetOps·⌈lg n⌉ + O(steps).
func (p *Proc) SetOps() uint64 { return p.nSetOps }

// PosOf returns the POS_p(q) row pointer (1-based q).
func (p *Proc) PosOf(q int) int { return p.pos[q] }

// FreeContains reports whether job v is in FREE_p.
func (p *Proc) FreeContains(v int) bool { return p.free.Contains(v) }

// DoneContains reports whether job v is in DONE_p.
func (p *Proc) DoneContains(v int) bool { return p.done.Contains(v) }

// Output returns the set the process returned on termination (IterStepKK's
// FREE\TRY, or FREE for the Write-All variant). Nil before termination.
func (p *Proc) Output() *oset.Set { return p.out }

// Step implements sim.Process: perform the single enabled action.
func (p *Proc) Step() {
	switch p.phase {
	case PhaseCompNext:
		p.stepCompNext()
	case PhaseSetNext:
		p.stepSetNext()
	case PhaseGatherTry:
		p.stepGatherTry()
	case PhaseGatherDone:
		p.stepGatherDone()
	case PhaseCheck:
		p.stepCheck()
	case PhaseCheckFlag:
		p.stepCheckFlag()
	case PhaseDo:
		p.stepDo()
	case PhaseDoneWrite:
		p.stepDoneWrite()
	case PhaseTermFlag:
		p.stepTermFlag()
	case PhaseEnd, PhaseStop:
		// No enabled actions; Step must not be called here (the engine
		// never does). Keep it a no-op for robustness.
	}
}

// chargeSet charges k set operations at O(log n) each.
func (p *Proc) chargeSet(k int) {
	p.work += uint64(k * p.lgN)
	p.nSetOps += uint64(k)
}

// stepCompNext is action compNext_p of Figure 2.
func (p *Proc) stepCompNext() {
	// |FREE \ TRY|: TRY holds announcements by other processes, which may
	// or may not still be in FREE.
	p.inFreeCount = 0
	p.try.Ascend(p.countInFree)
	inFree := p.inFreeCount
	p.chargeSet(p.try.Len() + 1)
	if p.free.Len()-inFree < p.beta {
		if p.iterStep {
			p.phase = PhaseTermFlag
			return
		}
		p.terminate()
		return
	}
	f := p.free.Len()
	var idx int
	if f-(p.m-1) >= p.m {
		// TMP = (|FREE|-(m-1))/m ≥ 1: take the first element of the p-th
		// of m intervals: ⌊(p-1)·TMP⌋+1.
		idx = (p.id-1)*(f-p.m+1)/p.m + 1
	} else {
		idx = p.id
	}
	v, ok := p.free.SelectExcluding(p.try, idx)
	p.chargeSet(p.try.Len() + 1) // rank(FREE,TRY,·) costs O(|TRY|·log n)
	if !ok {
		// Unreachable for β ≥ m (|FREE\TRY| ≥ β ≥ idx; see §3). For β < m
		// the paper guarantees correctness but not termination; we choose
		// to terminate rather than fail.
		p.terminate()
		return
	}
	p.next = int64(v)
	p.q = 1
	p.try.Clear()
	p.tryCulprit = 0
	p.phase = PhaseSetNext
	p.work++
}

// stepSetNext is action setNext_p: announce NEXT in shared memory.
func (p *Proc) stepSetNext() {
	p.mem.Write(p.lay.NextAddr(p.id), p.next)
	p.work++
	p.nShared++
	p.nAnnounce++
	p.phase = PhaseGatherTry
}

// stepGatherTry is one iteration of the gatherTry_p read loop.
func (p *Proc) stepGatherTry() {
	if p.q != p.id {
		v := p.mem.Read(p.lay.NextAddr(p.q))
		p.work++
		p.nShared++
		if v > 0 {
			if p.try.Insert(int(v)) {
				p.chargeSet(1)
			}
			if v == p.next && p.tryCulprit == 0 {
				p.tryCulprit = p.q // Definition 5.2(ii), gatherTry case
			}
		}
	} else {
		p.work++
	}
	if p.q+1 <= p.m {
		p.q++
		return
	}
	p.q = 1
	p.phase = PhaseGatherDone
	if p.noCache {
		// Ablation: forget row progress, re-scan every done row in full.
		for q := 1; q <= p.m; q++ {
			if q != p.id {
				p.pos[q] = 1
			}
		}
	}
}

// stepGatherDone is one iteration of the gatherDone_p read loop. While row
// q yields fresh entries the action re-reads the same row at the advanced
// POS pointer (the paper's POS_p(Q_p) bookkeeping).
func (p *Proc) stepGatherDone() {
	if p.q != p.id && p.pos[p.q] <= p.lay.RowLen {
		v := p.mem.Read(p.lay.DoneAddr(p.q, p.pos[p.q]))
		p.work++
		p.nShared++
		if v > 0 {
			if v == p.next && p.tryCulprit == 0 && !p.try.Contains(int(v)) {
				p.tryCulprit = p.q // Definition 5.2(ii), gatherDone case
			}
			p.done.Insert(int(v))
			p.free.Delete(int(v))
			p.chargeSet(2)
			p.pos[p.q]++
			return // Q_p unchanged: keep draining this row next action.
		}
	} else {
		p.work++
	}
	p.q++
	if p.q > p.m {
		p.q = 1
		if p.termGath {
			p.terminate()
			return
		}
		p.phase = PhaseCheck
	}
}

// stepCheck is action check_p: is it safe to perform NEXT?
func (p *Proc) stepCheck() {
	inTry := p.try.Contains(int(p.next))
	inDone := p.done.Contains(int(p.next))
	p.chargeSet(2)
	if !inTry && !inDone {
		if p.iterStep {
			p.phase = PhaseCheckFlag
		} else {
			p.phase = PhaseDo
		}
		return
	}
	// Collision (Definition 5.2): p wanted NEXT but another process
	// announced or completed it during this gather pass.
	if p.collide != nil && p.tryCulprit != 0 {
		p.collide.Record(p.id, p.tryCulprit)
	}
	p.phase = PhaseCompNext
}

// stepCheckFlag is IterStepKK's extra flag read between check and do (§6).
func (p *Proc) stepCheckFlag() {
	v := p.mem.Read(p.lay.FlagAddr())
	p.work++
	p.nShared++
	if v != 0 {
		p.beginTermGather()
		return
	}
	p.phase = PhaseDo
}

// stepDo is the output action do_{p,j}.
func (p *Proc) stepDo() {
	p.sink.RecordDo(p.id, p.next)
	if p.doFn != nil {
		p.doFn(p.next)
	}
	p.work += p.doCost
	p.nDone++
	p.phase = PhaseDoneWrite
}

// stepDoneWrite is action done_p: publish the performed job.
func (p *Proc) stepDoneWrite() {
	p.mem.Write(p.lay.DoneAddr(p.id, p.pos[p.id]), p.next)
	p.work++
	p.nShared++
	p.done.Insert(int(p.next))
	p.free.Delete(int(p.next))
	p.chargeSet(2)
	p.pos[p.id]++
	p.phase = PhaseCompNext
}

// stepTermFlag is IterStepKK's terminating flag write (§6): raise the flag,
// then recompute FREE and TRY with a fresh gather pass before returning.
func (p *Proc) stepTermFlag() {
	p.mem.Write(p.lay.FlagAddr(), 1)
	p.work++
	p.nShared++
	p.beginTermGather()
}

// beginTermGather starts the final FREE/TRY recomputation pass of §6.
func (p *Proc) beginTermGather() {
	p.q = 1
	p.try.Clear()
	p.tryCulprit = 0
	p.termGath = true
	p.phase = PhaseGatherTry
}

// terminate computes the output set and enters end. The set's storage is
// reused across Resets, so the result is only valid until the next Reset.
func (p *Proc) terminate() {
	if p.outBuf == nil {
		p.outBuf = oset.New()
	} else {
		p.outBuf.Clear()
	}
	p.free.Ascend(p.emitOutput)
	p.out = p.outBuf
	p.phase = PhaseEnd
}

// ceilLog2 returns max(1, ceil(log2(v))) for v ≥ 1.
func ceilLog2(v int) int {
	r, pw := 0, 1
	for pw < v {
		pw <<= 1
		r++
	}
	if r < 1 {
		return 1
	}
	return r
}
