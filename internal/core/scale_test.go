package core

import (
	"testing"

	"atmostonce/internal/sim"
)

// TestLargeScaleKK runs a million-job instance through the simulator —
// a robustness check for the tree code, the memory layout and the
// engine at realistic sizes (≈40 MB of registers, ≈10M actions).
func TestLargeScaleKK(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run in -short mode")
	}
	const n, m = 1_000_000, 4
	s := mustSystem(t, Config{N: n, M: m})
	rep, err := s.Run(&sim.RoundRobin{}, 0 /* no step limit */)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated at scale")
	}
	if rep.Distinct < EffectivenessBound(n, m, 0) {
		t.Fatalf("Do = %d below bound %d", rep.Distinct, EffectivenessBound(n, m, 0))
	}
	t.Logf("n=1M m=4: Do=%d, steps=%d, work=%d", rep.Distinct, rep.Result.Steps, rep.Work)
}

// TestLargeScaleIterative runs IterativeKK(ε=1) at scale inside the
// work-optimal regime and checks the per-job work constant stays small.
func TestLargeScaleIterative(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run in -short mode")
	}
	const n, m = 500_000, 4
	s, err := NewIterSystem(IterConfig{N: n, M: m, EpsDenom: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&sim.RoundRobin{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated at scale")
	}
	perJob := float64(rep.Work) / float64(n)
	// Inside the regime the n-term dominates: per-job work must be far
	// below the ≈90 work/job of single-level KK_{3m²} at this size.
	if perJob > 40 {
		t.Fatalf("per-job work %.1f did not amortize", perJob)
	}
	t.Logf("n=500k m=4: loss=%d, work/job=%.2f, levels=%d",
		n-rep.Distinct, perJob, len(s.Levels))
}
