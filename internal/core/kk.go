// Package core implements the paper's primary contribution: algorithm KKβ
// (Kentros & Kiayias, Figures 1–2), its IterStepKK variant with a shared
// termination flag (§6), and the iterated algorithm IterativeKK(ε)
// (Figure 3) built on top of them.
//
// Every process is a state machine that performs exactly one I/O-automaton
// action per Step call, so it can be driven both by the deterministic
// adversarial scheduler (internal/sim) and by a goroutine loop over atomic
// registers (internal/conc).
package core

import "fmt"

// Phase is the STATUS_p internal variable of Figure 1, extended with the
// two extra statuses IterStepKK needs for its termination-flag handling.
type Phase int

// Process phases. The first eight mirror Figure 1's
// {comp_next, set_next, gather_try, gather_done, check, do, done, end,
// stop}; PhaseCheckFlag and PhaseTermFlag implement §6's IterStepKK
// modifications (read the flag before performing, write the flag before
// terminating).
const (
	PhaseCompNext Phase = iota + 1
	PhaseSetNext
	PhaseGatherTry
	PhaseGatherDone
	PhaseCheck
	PhaseCheckFlag
	PhaseDo
	PhaseDoneWrite
	PhaseTermFlag
	PhaseEnd
	PhaseStop
)

// String implements fmt.Stringer.
func (ph Phase) String() string {
	switch ph {
	case PhaseCompNext:
		return "comp_next"
	case PhaseSetNext:
		return "set_next"
	case PhaseGatherTry:
		return "gather_try"
	case PhaseGatherDone:
		return "gather_done"
	case PhaseCheck:
		return "check"
	case PhaseCheckFlag:
		return "check_flag"
	case PhaseDo:
		return "do"
	case PhaseDoneWrite:
		return "done"
	case PhaseTermFlag:
		return "term_flag"
	case PhaseEnd:
		return "end"
	case PhaseStop:
		return "stop"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// Layout maps the algorithm's shared variables onto a flat register file:
// the next array (m cells, optionally strided), the done matrix (m rows
// of RowLen cells) and, for IterStepKK, one termination-flag cell. Base
// allows several instances (IterativeKK levels) to share one memory.
type Layout struct {
	Base    int
	M       int
	RowLen  int
	HasFlag bool
	// NextStride spaces consecutive next-array cells NextStride registers
	// apart (0 or 1 = packed). Every process re-reads every next_q each
	// round (gather phases), while next_p is write-hot for its owner — on
	// a packed layout eight processes' next cells share one cache line
	// and every set_next invalidates all of them. Padded() sets the
	// stride to a full cache line. The done matrix is left packed: a row
	// has a single writer and rows are RowLen cells long, so only the
	// RowLen-boundary cells can ever be shared.
	NextStride int
}

// CacheLineCells is the number of 8-byte registers in a 64-byte cache
// line — the stride Padded layouts use for the next array.
const CacheLineCells = 8

// Padded returns l with its next array spread one cell per cache line.
// It costs (CacheLineCells-1)*M extra registers and leaves packed-layout
// instances (the zero NextStride) byte-compatible with earlier versions.
func (l Layout) Padded() Layout {
	l.NextStride = CacheLineCells
	return l
}

// nextStride is the effective spacing of next-array cells.
func (l Layout) nextStride() int {
	if l.NextStride < 1 {
		return 1
	}
	return l.NextStride
}

// NextAddr returns the address of next_q (q is 1-based).
func (l Layout) NextAddr(q int) int { return l.Base + (q-1)*l.nextStride() }

// DoneAddr returns the address of done_{q,idx} (q, idx are 1-based).
func (l Layout) DoneAddr(q, idx int) int {
	return l.Base + l.M*l.nextStride() + (q-1)*l.RowLen + idx - 1
}

// FlagAddr returns the address of the IterStepKK termination flag.
func (l Layout) FlagAddr() int {
	return l.Base + l.M*l.nextStride() + l.M*l.RowLen
}

// Size returns the number of registers the instance occupies.
func (l Layout) Size() int {
	s := l.M*l.nextStride() + l.M*l.RowLen
	if l.HasFlag {
		s++
	}
	return s
}
