package core

import (
	"fmt"
	"math"

	"atmostonce/internal/oset"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// SuperJobSizes computes the size cascade of IterativeKK(ε) (Figure 3,
// lines 01/06/11) for ε = 1/epsDenom:
//
//	s_0 = m·lg n·lg m,   s_i = m^{1-iε}·lg n·lg^{1+i} m (i = 1..1/ε),   1.
//
// Two engineering adjustments keep the map() of §6 lossless while staying
// within constant factors of the paper's sizes: every size is rounded up
// to a power of two, and the cascade is forced non-increasing, so each
// level's size divides the previous one and super-job boundaries nest
// exactly. Consecutive duplicate sizes are merged.
func SuperJobSizes(n, m, epsDenom int) []int {
	lgn := float64(ceilLog2(n))
	lgm := float64(ceilLog2(m))
	prev := nextPow2(int(math.Ceil(float64(m) * lgn * lgm)))
	if prev < 1 {
		prev = 1
	}
	sizes := []int{prev}
	for i := 1; i <= epsDenom; i++ {
		exp := 1 - float64(i)/float64(epsDenom)
		v := math.Pow(float64(m), exp) * lgn * math.Pow(lgm, float64(1+i))
		s := nextPow2(int(math.Ceil(v)))
		if s > prev {
			s = prev
		}
		if s < 1 {
			s = 1
		}
		if s != prev {
			sizes = append(sizes, s)
			prev = s
		}
	}
	if prev != 1 {
		sizes = append(sizes, 1)
	}
	return sizes
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Blocks returns the number of super-jobs of size s over n jobs.
func Blocks(n, s int) int { return (n + s - 1) / s }

// BlockJobs returns the inclusive job range [lo, hi] covered by the
// 1-based super-job b of size s over n jobs.
func BlockJobs(n, s, b int) (lo, hi int) {
	lo = (b-1)*s + 1
	hi = b * s
	if hi > n {
		hi = n
	}
	return lo, hi
}

// MapBlocks is the function map(SET1, size1, size2) of §6: it maps a set
// of super-jobs of size s1 to the super-jobs of size s2 covering the same
// jobs. Because s2 divides s1 (see SuperJobSizes) the mapping is exact: a
// job always belongs to the same super-job of a given size, independent of
// the input set, so the at-most-once property is preserved across levels
// (Theorem 6.3).
func MapBlocks(set *oset.Set, n, s1, s2 int) *oset.Set {
	if s1 == s2 {
		return set.Clone()
	}
	ratio := s1 / s2
	b2max := Blocks(n, s2)
	out := oset.New()
	set.Ascend(func(b1 int) bool {
		first := (b1-1)*ratio + 1
		for c := first; c < first+ratio && c <= b2max; c++ {
			out.Insert(c)
		}
		return true
	})
	return out
}

// IterConfig describes an IterativeKK(ε) instance (Figure 3) or its
// Write-All variant WA_IterativeKK(ε) (Figure 4).
type IterConfig struct {
	// N is the number of jobs.
	N int
	// M is the number of processes.
	M int
	// EpsDenom is 1/ε (a positive integer, per §6). 0 means 1 (ε = 1).
	EpsDenom int
	// F is the crash budget.
	F int
	// WriteAll selects the §7 variant: levels return FREE instead of
	// FREE\TRY and every process directly performs its residual set at
	// the end (Figure 4 lines 14–16).
	WriteAll bool
	// Beta overrides the per-level termination parameter; 0 means the
	// paper's 3m².
	Beta int
}

func (c *IterConfig) normalize() error {
	if c.M < 1 {
		return fmt.Errorf("core: need at least one process, got m=%d", c.M)
	}
	if c.N < c.M {
		return fmt.Errorf("core: need n ≥ m, got n=%d m=%d", c.N, c.M)
	}
	if c.EpsDenom <= 0 {
		c.EpsDenom = 1
	}
	if c.Beta == 0 {
		c.Beta = 3 * c.M * c.M
	}
	if c.F >= c.M {
		c.F = c.M - 1
	}
	if c.F < 0 {
		c.F = 0
	}
	return nil
}

// Level is one IterStepKK invocation's static description.
type Level struct {
	Size   int // super-job size at this level
	Blocks int // number of super-jobs
	Layout Layout
}

// LevelStat records one process's passage through one IterStepKK level.
type LevelStat struct {
	// Size and Blocks describe the level.
	Size, Blocks int
	// Input is |FREE| at entry, Performed the super-jobs done by THIS
	// process, Output the size of the returned set.
	Input, Performed, Output int
	// Degenerate marks a level whose input was below β, so the process
	// terminated it immediately via the flag path without performing
	// anything (the out-of-regime collapse discussed in EXPERIMENTS.md).
	Degenerate bool
}

// IterProc chains one process through all IterStepKK levels of
// IterativeKK(ε). It is itself a sim.Process: each Step delegates to the
// inner per-level process; when the inner process terminates, its output
// set is mapped to the next level and a fresh inner process starts there.
// Process asynchrony across levels is preserved — one process may be at
// level 2 while another is still at level 0, exactly as in the paper.
type IterProc struct {
	id     int
	cfg    IterConfig
	levels []Level
	mem    shmem.Mem
	sink   DoSink
	doFn   func(job int64)

	level    int
	inner    *Proc
	work     uint64 // accumulated work of finished inner processes
	crashed  bool
	ended    bool
	drain    []int // Write-All final direct-execution queue (job ids)
	stats    []LevelStat
	curInput int // |FREE| at entry of the current level
}

var _ sim.Process = (*IterProc)(nil)

// newIterProc builds the process at level 0 with FREE = map(J, 1, s_0).
func newIterProc(id int, cfg IterConfig, levels []Level, mem shmem.Mem, sink DoSink, doFn func(job int64)) *IterProc {
	p := &IterProc{id: id, cfg: cfg, levels: levels, mem: mem, sink: sink, doFn: doFn}
	first := oset.NewRange(1, levels[0].Blocks)
	p.curInput = first.Len()
	p.inner = p.newLevelProc(0, first)
	return p
}

func (p *IterProc) newLevelProc(level int, jobs *oset.Set) *Proc {
	lv := p.levels[level]
	return NewProc(ProcOptions{
		ID:         p.id,
		M:          p.cfg.M,
		Beta:       p.cfg.Beta,
		Layout:     lv.Layout,
		Mem:        p.mem,
		Jobs:       jobs,
		Universe:   lv.Blocks,
		IterStep:   true,
		ReturnFree: p.cfg.WriteAll,
		Sink:       blockSink{p: p, level: level},
		DoFn:       nil, // payload runs via blockSink to expand super-jobs
		DoCost:     uint64(lv.Size),
	})
}

// blockSink expands a super-job do event into one event per covered job.
type blockSink struct {
	p     *IterProc
	level int
}

func (s blockSink) RecordDo(pid int, job int64) {
	lv := s.p.levels[s.level]
	lo, hi := BlockJobs(s.p.cfg.N, lv.Size, int(job))
	for j := lo; j <= hi; j++ {
		if s.p.sink != nil {
			s.p.sink.RecordDo(pid, int64(j))
		}
		if s.p.doFn != nil {
			s.p.doFn(int64(j))
		}
	}
}

// ID implements sim.Process.
func (p *IterProc) ID() int { return p.id }

// Status implements sim.Process.
func (p *IterProc) Status() sim.Status {
	switch {
	case p.crashed:
		return sim.Crashed
	case p.ended:
		return sim.Done
	default:
		return sim.Running
	}
}

// Crash implements sim.Process.
func (p *IterProc) Crash() {
	p.crashed = true
	if p.inner != nil {
		p.inner.Crash()
	}
}

// Work implements sim.Worker.
func (p *IterProc) Work() uint64 {
	w := p.work
	if p.inner != nil {
		w += p.inner.Work()
	}
	return w
}

// Level returns the level the process is currently executing.
func (p *IterProc) Level() int { return p.level }

// LevelStats returns per-level statistics for the levels this process has
// completed so far.
func (p *IterProc) LevelStats() []LevelStat {
	out := make([]LevelStat, len(p.stats))
	copy(out, p.stats)
	return out
}

// recordLevel appends the finished inner process's statistics.
func (p *IterProc) recordLevel(input int) {
	lv := p.levels[p.level]
	p.stats = append(p.stats, LevelStat{
		Size:       lv.Size,
		Blocks:     lv.Blocks,
		Input:      input,
		Performed:  p.inner.Performed(),
		Output:     p.inner.Output().Len(),
		Degenerate: p.inner.Performed() == 0 && input < p.cfg.Beta,
	})
}

// Step implements sim.Process.
func (p *IterProc) Step() {
	if p.drain != nil {
		p.stepDrain()
		return
	}
	p.inner.Step()
	if p.inner.Status() != sim.Done {
		return
	}
	// Inner IterStepKK terminated: map its output to the next level.
	out := p.inner.Output()
	p.work += p.inner.Work()
	p.recordLevel(p.curInput)
	if p.level+1 < len(p.levels) {
		cur, next := p.levels[p.level], p.levels[p.level+1]
		mapped := MapBlocks(out, p.cfg.N, cur.Size, next.Size)
		p.work += uint64(mapped.Len()) // map() cost: building the new set
		p.level++
		p.curInput = mapped.Len()
		p.inner = p.newLevelProc(p.level, mapped)
		return
	}
	// Past the last level (size 1).
	p.inner = nil
	if p.cfg.WriteAll {
		p.drain = out.Slice() // Figure 4, lines 14–16
		if len(p.drain) == 0 {
			p.ended = true
		}
		return
	}
	p.ended = true
}

// stepDrain performs one residual do_{p,i} of Figure 4 lines 14–16.
func (p *IterProc) stepDrain() {
	job := int64(p.drain[0])
	p.drain = p.drain[1:]
	if p.sink != nil {
		p.sink.RecordDo(p.id, job)
	}
	if p.doFn != nil {
		p.doFn(job)
	}
	p.work++
	if len(p.drain) == 0 {
		p.ended = true
	}
}

// IterSystem is an assembled IterativeKK(ε) (or WA_IterativeKK(ε)) run.
type IterSystem struct {
	Cfg    IterConfig
	Sizes  []int
	Levels []Level
	Mem    *shmem.SimMem
	World  *sim.World
	Procs  []*IterProc
}

// PlanLevels normalizes the config and computes the level descriptors and
// the total number of shared registers required. Callers that provide
// their own memory (e.g. the concurrent runtime) use this to size it.
func PlanLevels(cfg IterConfig) (IterConfig, []Level, int, error) {
	if err := cfg.normalize(); err != nil {
		return cfg, nil, 0, err
	}
	sizes := SuperJobSizes(cfg.N, cfg.M, cfg.EpsDenom)
	levels := make([]Level, len(sizes))
	base := 0
	for i, s := range sizes {
		b := Blocks(cfg.N, s)
		lay := Layout{Base: base, M: cfg.M, RowLen: b, HasFlag: true}
		levels[i] = Level{Size: s, Blocks: b, Layout: lay}
		base += lay.Size()
	}
	return cfg, levels, base, nil
}

// NewIterProcsOn builds the per-process level chains over an existing
// memory sized by PlanLevels. Sinks and payloads default to nil; rebind
// them with SetSink/SetDoFn before stepping.
func NewIterProcsOn(cfg IterConfig, levels []Level, mem shmem.Mem) []*IterProc {
	procs := make([]*IterProc, cfg.M)
	for i := 0; i < cfg.M; i++ {
		procs[i] = newIterProc(i+1, cfg, levels, mem, nil, nil)
	}
	return procs
}

// SetSink rebinds the do-event sink.
func (p *IterProc) SetSink(s DoSink) { p.sink = s }

// SetDoFn rebinds the per-job payload.
func (p *IterProc) SetDoFn(fn func(job int64)) { p.doFn = fn }

// NewIterSystem assembles an IterativeKK(ε) instance. Each level's shared
// variables (next array, done matrix, termination flag) occupy a disjoint
// region of one shared memory.
func NewIterSystem(cfg IterConfig) (*IterSystem, error) {
	cfg, levels, total, err := PlanLevels(cfg)
	if err != nil {
		return nil, err
	}
	mem := shmem.NewSim(total)
	procs := NewIterProcsOn(cfg, levels, mem)
	simProcs := make([]sim.Process, cfg.M)
	for i, p := range procs {
		simProcs[i] = p
	}
	world := sim.NewWorld(simProcs, mem, cfg.F)
	for _, p := range procs {
		p.sink = world
	}
	sizes := make([]int, len(levels))
	for i, lv := range levels {
		sizes[i] = lv.Size
	}
	return &IterSystem{Cfg: cfg, Sizes: sizes, Levels: levels, Mem: mem, World: world, Procs: procs}, nil
}

// Run executes the system under adv; see System.Run.
func (s *IterSystem) Run(adv sim.Adversary, maxSteps uint64) (*Report, error) {
	res, err := sim.Run(s.World, adv, maxSteps)
	if err != nil {
		return nil, err
	}
	return summarizeEvents(res), nil
}
