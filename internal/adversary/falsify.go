package adversary

import (
	"math/rand"

	"atmostonce/internal/core"
	"atmostonce/internal/sim"
)

// RandomStuck is a randomized generalization of the Theorem 4.4 strategy,
// used to probe whether ANY crash-timing pattern can push KKβ below its
// effectiveness bound (none can — Lemma 4.2): a random subset of victims
// each runs until it has announced a random number of jobs (performing
// the earlier ones), crashes right after the announcement, and the
// survivors then run under a random schedule.
//
// Crashing immediately after setNext is the worst possible moment — the
// announced job is stuck in every survivor's TRY set forever — so
// sweeping seeds explores the adversary subspace the paper's lower-bound
// argument identifies as extremal.
type RandomStuck struct {
	// Rng drives victim selection and crash timing.
	Rng *rand.Rand
	// MaxAnnounces bounds how many announce cycles a victim survives
	// before its fatal one (0 = up to 3).
	MaxAnnounces int

	initialized bool
	plan        map[int]int // pid -> announce count at which to crash
	order       []int       // victims in attack order
	idx         int
	counts      map[int]int // announcements observed so far per victim
	after       sim.Adversary
}

var _ sim.Adversary = (*RandomStuck)(nil)

// NewRandomStuck returns a seeded RandomStuck adversary.
func NewRandomStuck(seed int64) *RandomStuck {
	return &RandomStuck{Rng: rand.New(rand.NewSource(seed))}
}

func (a *RandomStuck) init(w *sim.World) {
	m := len(w.Procs)
	maxA := a.MaxAnnounces
	if maxA <= 0 {
		maxA = 3
	}
	victims := a.Rng.Perm(m)
	nVictims := a.Rng.Intn(m) // 0..m-1, respecting f < m
	if nVictims > w.MaxCrashes {
		nVictims = w.MaxCrashes
	}
	a.plan = make(map[int]int, nVictims)
	a.counts = make(map[int]int, nVictims)
	for _, v := range victims[:nVictims] {
		a.plan[v+1] = a.Rng.Intn(maxA) + 1
		a.order = append(a.order, v+1)
	}
	a.after = &sim.Random{Rng: a.Rng}
	a.initialized = true
}

// Next implements sim.Adversary.
func (a *RandomStuck) Next(w *sim.World) sim.Decision {
	if !a.initialized {
		a.init(w)
	}
	// Phase 1: drive each victim to its fatal announcement, one by one.
	for a.idx < len(a.order) {
		pid := a.order[a.idx]
		p, ok := w.Procs[pid-1].(*core.Proc)
		if !ok || p.Status() != sim.Running {
			a.idx++
			continue
		}
		// Crash immediately after the victim's plan[pid]-th announcement
		// (its setNext counter just reached the planned value).
		if p.Announced() > a.counts[pid] {
			a.counts[pid] = p.Announced()
			if a.counts[pid] >= a.plan[pid] {
				a.idx++
				return sim.CrashOf(pid)
			}
		}
		return sim.StepOf(pid)
	}
	// Phase 2: random schedule over the survivors.
	return a.after.Next(w)
}
