// Package adversary implements KKβ-specific adversarial strategies from
// the paper's analysis: the Theorem 4.4 strategy that pins the
// effectiveness of KKβ to exactly n−(β+m−2), and staleness-maximizing
// schedules used to stress the collision accounting of Section 5.
package adversary

import (
	"atmostonce/internal/core"
	"atmostonce/internal/sim"
)

// Tightness is the adversarial strategy from the proof of Theorem 4.4:
// let each of processes 1..m−1 announce a job (compNext + setNext) and
// crash it immediately after, so that m−1 distinct jobs are stuck in the
// next array forever (the STUCK set, with Jα ∩ STUCKα = ∅). Then run
// process m alone: every stuck job stays in TRY_m, so m terminates as
// soon as |FREE\TRY| < β, having performed exactly n−(β+m−2) jobs.
//
// The world must allow f = m−1 crashes.
type Tightness struct {
	victim int // victims processed so far (victims are pids 1..m-1)
}

var _ sim.Adversary = (*Tightness)(nil)

// Next implements sim.Adversary.
func (a *Tightness) Next(w *sim.World) sim.Decision {
	m := len(w.Procs)
	for a.victim < m-1 {
		pid := a.victim + 1
		p, ok := w.Procs[pid-1].(*core.Proc)
		if !ok || p.Status() != sim.Running {
			a.victim++
			continue
		}
		// Fresh process: comp_next → set_next → (announced) gather_try.
		if p.Phase() == core.PhaseGatherTry {
			a.victim++
			return sim.CrashOf(pid)
		}
		return sim.StepOf(pid)
	}
	return sim.StepOf(m)
}

// Staircase maximizes the staleness of low-id processes' FREE estimates:
// it repeatedly lets the highest-id live process perform one complete job
// before giving anyone else a step, then rotates. Stale FREE views cause
// rank() to land on already-taken jobs, which drives up Definition 5.2
// collisions — the workload for the Lemma 5.5 bound check.
type Staircase struct {
	cur    int // pid currently being driven (0 = pick new)
	target int // Performed() count at which cur yields
}

var _ sim.Adversary = (*Staircase)(nil)

// Next implements sim.Adversary.
func (a *Staircase) Next(w *sim.World) sim.Decision {
	if a.cur != 0 {
		p := w.Procs[a.cur-1]
		if p.Status() == sim.Running {
			kp, ok := p.(*core.Proc)
			if !ok || kp.Performed() < a.target {
				return sim.StepOf(a.cur)
			}
		}
		a.cur = 0
	}
	// Pick the highest-id live process and drive it through one more job.
	for pid := len(w.Procs); pid >= 1; pid-- {
		p := w.Procs[pid-1]
		if p.Status() != sim.Running {
			continue
		}
		a.cur = pid
		if kp, ok := p.(*core.Proc); ok {
			a.target = kp.Performed() + 1
		}
		return sim.StepOf(pid)
	}
	// Engine guarantees at least one live process when Next is called.
	return sim.StepOf(1)
}

// Alternator interleaves processes at the finest grain but delays each
// process's gather phases so announcements overlap: all processes are
// stepped once per round in descending id order. Descending order makes
// low-id processes read announcements that high-id processes are about to
// overwrite, another collision-friendly pattern.
type Alternator struct {
	round []int
}

var _ sim.Adversary = (*Alternator)(nil)

// Next implements sim.Adversary.
func (a *Alternator) Next(w *sim.World) sim.Decision {
	if len(a.round) == 0 {
		for pid := len(w.Procs); pid >= 1; pid-- {
			a.round = append(a.round, pid)
		}
	}
	for len(a.round) > 0 {
		pid := a.round[0]
		a.round = a.round[1:]
		if w.Procs[pid-1].Status() == sim.Running {
			return sim.StepOf(pid)
		}
	}
	return a.Next(w)
}
