package adversary

import (
	"testing"

	"atmostonce/internal/core"
	"atmostonce/internal/sim"
)

const stepLimit = 50_000_000

// TestTightnessExact reproduces Theorem 4.4's matching adversarial
// strategy: the execution completes exactly n−(β+m−2) jobs — not one more,
// not one less.
func TestTightnessExact(t *testing.T) {
	tests := []struct {
		n, m, beta int
	}{
		{50, 2, 0}, {50, 4, 0}, {100, 8, 0}, {200, 16, 0},
		{100, 4, 48},  // β = 3m²
		{1000, 5, 75}, // β = 3m²
	}
	for _, tt := range tests {
		s, err := core.NewSystem(core.Config{N: tt.n, M: tt.m, Beta: tt.beta, F: tt.m - 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(&Tightness{}, stepLimit)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tt.n, tt.m, err)
		}
		want := core.EffectivenessBound(tt.n, tt.m, tt.beta)
		if rep.Distinct != want {
			t.Errorf("n=%d m=%d β=%d: Do = %d, want exactly %d",
				tt.n, tt.m, tt.beta, rep.Distinct, want)
		}
		if rep.Duplicates != 0 {
			t.Errorf("n=%d m=%d: AMO violated", tt.n, tt.m)
		}
		if rep.Result.Crashes != tt.m-1 {
			t.Errorf("n=%d m=%d: crashes = %d, want m-1", tt.n, tt.m, rep.Result.Crashes)
		}
	}
}

// TestTightnessIsWorstCase cross-checks Theorem 2.1: the tightness
// execution's Do is also ≤ n − f with f = m−1.
func TestTightnessIsWorstCase(t *testing.T) {
	const n, m = 60, 4
	s, err := core.NewSystem(core.Config{N: n, M: m, F: m - 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&Tightness{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distinct > core.UpperBound(n, m-1) {
		t.Fatalf("Do = %d exceeds n-f = %d", rep.Distinct, core.UpperBound(n, m-1))
	}
}

func TestStaircaseSafeAndTerminates(t *testing.T) {
	s, err := core.NewSystem(core.Config{N: 120, M: 4, Beta: 48, TrackCollisions: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&Staircase{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated under staircase schedule")
	}
	if rep.Distinct < core.EffectivenessBound(120, 4, 48) {
		t.Fatalf("Do = %d below bound", rep.Distinct)
	}
}

func TestAlternatorSafeAndTerminates(t *testing.T) {
	s, err := core.NewSystem(core.Config{N: 100, M: 5, TrackCollisions: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(&Alternator{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated under alternator schedule")
	}
}

// TestCollisionBoundLemma55 checks Lemma 5.5's pairwise collision bound
// 2⌈n/(m|q−p|)⌉ for β ≥ 3m² under collision-maximizing schedules.
func TestCollisionBoundLemma55(t *testing.T) {
	const n, m = 300, 4
	beta := 3 * m * m
	for _, adv := range []sim.Adversary{&Staircase{}, &Alternator{}, sim.NewRandom(7)} {
		s, err := core.NewSystem(core.Config{N: n, M: m, Beta: beta, TrackCollisions: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(adv, stepLimit); err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= m; p++ {
			for q := 1; q <= m; q++ {
				if p == q {
					continue
				}
				if got, bound := s.Collisions.Count(p, q), core.PairBound(n, m, p, q); got > bound {
					t.Errorf("%T: collisions(%d,%d) = %d > bound %d", adv, p, q, got, bound)
				}
			}
		}
	}
}
