package adversary

import (
	"testing"

	"atmostonce/internal/core"
)

// TestFalsificationSearch sweeps hundreds of randomized stuck-job attack
// plans trying to push KKβ BELOW its Theorem 4.4 effectiveness bound.
// Lemma 4.2 says no adversary can; every attempt must fail. A single
// success would be a counterexample to the paper.
func TestFalsificationSearch(t *testing.T) {
	configs := []struct {
		n, m, beta int
	}{
		{100, 3, 0}, {100, 5, 0}, {200, 4, 48},
	}
	seeds := int64(100)
	if testing.Short() {
		seeds = 20
	}
	for _, cfg := range configs {
		bound := core.EffectivenessBound(cfg.n, cfg.m, cfg.beta)
		minDo := cfg.n + 1
		for seed := int64(0); seed < seeds; seed++ {
			s, err := core.NewSystem(core.Config{N: cfg.n, M: cfg.m, Beta: cfg.beta, F: cfg.m - 1})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(NewRandomStuck(seed), stepLimit)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rep.Duplicates != 0 {
				t.Fatalf("seed %d: AMO violated", seed)
			}
			if rep.Distinct < bound {
				t.Fatalf("COUNTEREXAMPLE to Theorem 4.4: n=%d m=%d β=%d seed=%d Do=%d < %d",
					cfg.n, cfg.m, cfg.beta, seed, rep.Distinct, bound)
			}
			if rep.Distinct < minDo {
				minDo = rep.Distinct
			}
		}
		t.Logf("n=%d m=%d β=%d: min Do over %d attack plans = %d (bound %d)",
			cfg.n, cfg.m, cfg.beta, seeds, minDo, bound)
	}
}

// TestRandomStuckReachesTheBound: among the randomized plans there are
// ones as strong as the deterministic tightness strategy (crash every
// victim at its first announcement) — the search space includes the
// extremal point.
func TestRandomStuckReachesTheBound(t *testing.T) {
	const n, m = 100, 4
	bound := core.EffectivenessBound(n, m, 0)
	best := n + 1
	for seed := int64(0); seed < 300; seed++ {
		s, err := core.NewSystem(core.Config{N: n, M: m, F: m - 1})
		if err != nil {
			t.Fatal(err)
		}
		adv := NewRandomStuck(seed)
		adv.MaxAnnounces = 1 // always fatal first announcement
		rep, err := s.Run(adv, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Distinct < best {
			best = rep.Distinct
		}
	}
	// With MaxAnnounces=1 and some seed killing all m−1 victims, the run
	// should get close to the bound (within the jobs the victims
	// completed before their single announcement — none).
	if best > bound+2*m {
		t.Fatalf("randomized search never approached the bound: best %d vs bound %d", best, bound)
	}
	t.Logf("best randomized attack: Do = %d (deterministic bound %d)", best, bound)
}
