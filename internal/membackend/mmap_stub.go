//go:build !linux

package membackend

import (
	"errors"
	"fmt"
)

// ErrMmapUnsupported is returned by the mmap backend on platforms where
// the durable register file is not implemented.
var ErrMmapUnsupported = errors.New("membackend: mmap backend requires linux")

func init() {
	Register("mmap", func(arg string, size int) (Backend, error) {
		return nil, fmt.Errorf("%w (spec %q)", ErrMmapUnsupported, "mmap:"+arg)
	})
}
