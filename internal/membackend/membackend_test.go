package membackend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"atmostonce/internal/memtest"
	"atmostonce/internal/shmem"
)

// mmapFactory builds a memtest.Factory over one register file path so
// the Reopen subtest maps the same storage twice.
func mmapFactory(t *testing.T, wrap string) memtest.Factory {
	dir := t.TempDir()
	var path string
	spec := func() string {
		s := "mmap:" + path
		if wrap != "" {
			s = wrap + ":" + s
		}
		return s
	}
	open := func(t *testing.T, size int) shmem.Mem {
		b, err := Open(spec(), size)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	return memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			// Subtests get distinct files; "/" in subtest names would
			// otherwise read as directories.
			path = filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".reg")
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			return open(t, size)
		},
		Reopen:  open,
		Release: func(t *testing.T, m shmem.Mem) { m.(Backend).Close() },
	}
}

func TestAtomicBackendSuite(t *testing.T) {
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			b, err := Open("atomic", size)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	})
}

func TestCountingAtomicSuite(t *testing.T) {
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			b, err := Open("counting:atomic", size)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	})
}

func TestMmapSuite(t *testing.T) {
	requireMmap(t)
	memtest.RunMemSuite(t, mmapFactory(t, ""))
}

func TestCountingMmapSuite(t *testing.T) {
	requireMmap(t)
	memtest.RunMemSuite(t, mmapFactory(t, "counting"))
}

func requireMmap(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap backend requires linux")
	}
}

func TestCountingCounts(t *testing.T) {
	b, err := Open("counting:atomic", 4)
	if err != nil {
		t.Fatal(err)
	}
	c := AsCounting(b)
	c.Write(0, 7)
	c.Write(1, 8)
	if c.Read(0) != 7 {
		t.Fatal("read through wrapper lost the write")
	}
	if c.Reads() != 1 || c.Writes() != 2 || c.Accesses() != 3 {
		t.Fatalf("counters reads=%d writes=%d, want 1/2", c.Reads(), c.Writes())
	}
	if c.Reopened() {
		t.Fatal("volatile inner backend reported Reopened")
	}
}

// TestParseSpec is the parser's table test: well-formed specs split
// into kind/argument, malformed ones are rejected with errors that name
// the problem.
func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec       string
		kind, arg  string
		errPattern string // substring of the expected error; "" = ok
	}{
		{"", "atomic", "", ""},
		{"atomic", "atomic", "", ""},
		{"mmap:/var/lib/amo/regs", "mmap", "/var/lib/amo/regs", ""},
		{"counting:mmap:/x", "counting", "mmap:/x", ""},
		{"net:127.0.0.1:7878/jobs", "net", "127.0.0.1:7878/jobs", ""},
		{"atomic:", "", "", "dangling ':'"},
		{"mmap:", "", "", "dangling ':'"},
		{"counting:", "", "", "dangling ':'"},
		{":mmap", "", "", "empty backend kind"},
		{":", "", "", "empty backend kind"},
		{" atomic", "", "", "whitespace"},
		{"atomic ", "", "", "whitespace"},
		{"mmap:/x ", "", "", "whitespace"},
		{"\tatomic", "", "", "whitespace"},
	}
	for _, c := range cases {
		kind, arg, err := parseSpec(c.spec)
		if c.errPattern == "" {
			if err != nil {
				t.Errorf("parseSpec(%q): unexpected error %v", c.spec, err)
			} else if kind != c.kind || arg != c.arg {
				t.Errorf("parseSpec(%q) = %q, %q, want %q, %q", c.spec, kind, arg, c.kind, c.arg)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseSpec(%q) accepted, want error containing %q", c.spec, c.errPattern)
		} else if !strings.Contains(err.Error(), c.errPattern) {
			t.Errorf("parseSpec(%q) error %q does not mention %q", c.spec, err, c.errPattern)
		}
	}
}

// TestOpenMalformedSpecs checks the same hardening end to end through
// Open, including the near-miss suggestion for misspelled kinds.
func TestOpenMalformedSpecs(t *testing.T) {
	for spec, want := range map[string]string{
		"atomic:":        "dangling ':'",
		"mmap:":          "dangling ':'",
		"counting:atomc": `did you mean "atomic"`,
		"atomc":          `did you mean "atomic"`,
		"mmmap:/x":       `did you mean "mmap"`,
		"couting:atomic": `did you mean "counting"`,
		"zzz":            "unknown backend",
		" atomic":        "whitespace",
	} {
		if _, err := Open(spec, 8); err == nil {
			t.Errorf("Open(%q) accepted, want error containing %q", spec, want)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("Open(%q) error %q does not mention %q", spec, err, want)
		}
	}
	// A kind nothing is close to gets no suggestion, just the inventory.
	if _, err := Open("postgres:dsn", 8); err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off kind got a suggestion: %v", err)
	}
}

// recordingBackend logs the order of operations it receives, so wrapper
// passthrough ordering is observable.
type recordingBackend struct {
	AtomicBackend
	ops []string
}

func (r *recordingBackend) Write(addr int, v int64) {
	r.ops = append(r.ops, fmt.Sprintf("write %d=%d", addr, v))
	r.AtomicBackend.Write(addr, v)
}

func (r *recordingBackend) Sync() error {
	r.ops = append(r.ops, "sync")
	return nil
}

// TestCountingSyncPassthrough pins the wrapper contract satellite: Sync
// calls pass through to the inner backend in program order relative to
// writes (a Sync issued after a write must reach the store after it),
// and the wrapper counts them.
func TestCountingSyncPassthrough(t *testing.T) {
	inner := &recordingBackend{AtomicBackend: NewAtomic(8)}
	c := NewCounting(inner)
	c.Write(0, 1)
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAcked(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	want := []string{"write 0=1", "sync", "write 1=2", "sync"}
	if len(inner.ops) != len(want) {
		t.Fatalf("inner saw %v, want %v", inner.ops, want)
	}
	for i := range want {
		if inner.ops[i] != want[i] {
			t.Fatalf("inner op %d = %q, want %q (full: %v)", i, inner.ops[i], want[i], inner.ops)
		}
	}
	if c.Syncs() != 2 {
		t.Fatalf("Syncs() = %d, want 2", c.Syncs())
	}
	if c.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2 (WriteAcked must count)", c.Writes())
	}
}

// TestCountingDurableSync drives Sync counting through a real durable
// inner backend (counting:mmap) and checks the flushed state survives a
// reopen — i.e. the wrapper forwarded the msync rather than absorbing
// it.
func TestCountingDurableSync(t *testing.T) {
	requireMmap(t)
	path := filepath.Join(t.TempDir(), "regs")
	b, err := Open("counting:mmap:"+path, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := AsCounting(b)
	c.Write(3, 77)
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if c.Syncs() != 1 {
		t.Fatalf("Syncs() = %d, want 1", c.Syncs())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open("counting:mmap:"+path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !AsCounting(r).Reopened() {
		t.Fatal("reopened durable file not reported")
	}
	if got := r.Read(3); got != 77 {
		t.Fatalf("cell 3 reads %d after reopen, want 77", got)
	}
}

// TestCountingCapabilities exercises the capability passthroughs and
// their counting weights over a capability-less inner backend (the
// fallback loops).
func TestCountingCapabilities(t *testing.T) {
	b, err := Open("counting:atomic", 16)
	if err != nil {
		t.Fatal(err)
	}
	c := AsCounting(b)
	if err := c.Fill(4, 4, 9); err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, 6)
	if err := c.ReadRange(3, dst); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 9, 9, 9, 9, 0}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("ReadRange[%d] = %d, want %d", i, dst[i], v)
		}
	}
	sw, ok := b.(Swapper)
	if !ok {
		t.Fatal("counting over a Swapper inner does not advertise CAS")
	}
	if !sw.CompareAndSwap(4, 9, 10) {
		t.Fatal("CAS with matching old failed")
	}
	if sw.CompareAndSwap(4, 9, 11) {
		t.Fatal("CAS with stale old succeeded")
	}
	if got := c.Read(4); got != 10 {
		t.Fatalf("cell 4 = %d after CAS, want 10", got)
	}
	// Weights: Fill = 4 writes, ReadRange = 6 reads, 2 CAS = 2r+2w, Read = 1r.
	if c.Writes() != 4+2 || c.Reads() != 6+2+1 {
		t.Fatalf("counters reads=%d writes=%d, want 9/6", c.Reads(), c.Writes())
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("nosuch", 8); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown kind: got %v", err)
	}
	if _, err := Open("atomic", 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := Open("atomic:junk", 8); err == nil {
		t.Fatal("atomic with argument accepted")
	}
	if _, err := Open("counting", 8); err == nil {
		t.Fatal("counting without inner spec accepted")
	}
	if _, err := Open("mmap", 8); err == nil {
		t.Fatal("mmap without path accepted")
	}
	// Empty spec defaults to atomic.
	b, err := Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(AtomicBackend); !ok {
		t.Fatalf("empty spec opened %T, want AtomicBackend", b)
	}
}

func TestShardSpec(t *testing.T) {
	cases := [][3]string{
		{"atomic", "0", "atomic"},
		{"mmap:/tmp/x", "2", "mmap:/tmp/x.shard2"},
		{"counting:mmap:/tmp/x", "1", "counting:mmap:/tmp/x.shard1"},
		{"counting:atomic", "3", "counting:atomic"},
		// The "net" kind's suffix grammar is owned by internal/netmem
		// (RegisterSuffixer) and tested there; unregistered kinds pass
		// through untouched.
		{"net:127.0.0.1:7878/jobs", "2", "net:127.0.0.1:7878/jobs"},
	}
	for _, c := range cases {
		shard := int(c[1][0] - '0')
		if got := ShardSpec(c[0], shard); got != c[2] {
			t.Errorf("ShardSpec(%q, %d) = %q, want %q", c[0], shard, got, c[2])
		}
	}
	// WithSuffix only touches path-bearing terminals.
	if got := WithSuffix("counting:atomic", ".shape1"); got != "counting:atomic" {
		t.Errorf("WithSuffix(counting:atomic) = %q, want unchanged", got)
	}
	if got := WithSuffix("counting:mmap:/x", ".shape1"); got != "counting:mmap:/x.shape1" {
		t.Errorf("WithSuffix(counting:mmap:/x) = %q", got)
	}
}

func TestKinds(t *testing.T) {
	kinds := Kinds()
	for _, want := range []string{"atomic", "counting", "mmap"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, kinds)
		}
	}
}

func TestMmapHeaderValidation(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "regs")

	b, err := OpenMmap(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(5, 99)
	if b.Reopened() {
		t.Fatal("fresh file reported Reopened")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}

	// Reopen with the right size sees the data and reports Reopened.
	r, err := OpenMmap(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reopened() {
		t.Fatal("existing file not reported as reopened")
	}
	if got := r.Read(5); got != 99 {
		t.Fatalf("persisted cell reads %d, want 99", got)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Size mismatch is rejected, both ways.
	if _, err := OpenMmap(path, 64); err == nil {
		t.Fatal("cell-count mismatch accepted")
	}

	// A non-register file is rejected.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, make([]byte, mmapHeader+32*8), 0o644); err != nil {
		t.Fatal(err)
	}
	// All-zero content is the crashed-during-create case: accepted as fresh.
	z, err := OpenMmap(junk, 32)
	if err != nil {
		t.Fatalf("zeroed file rejected: %v", err)
	}
	if z.Reopened() {
		t.Fatal("zeroed file reported Reopened")
	}
	z.Close()
	// Corrupt the magic: rejected.
	data, _ := os.ReadFile(junk)
	copy(data, "GARBAGE!")
	if err := os.WriteFile(junk, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(junk, 32); err == nil || !strings.Contains(err.Error(), "not a register file") {
		t.Fatalf("corrupt magic: got %v", err)
	}

	// A directory path fails cleanly with a path error, not a panic.
	if _, err := OpenMmap(dir, 8); err == nil {
		t.Fatal("directory path accepted")
	} else {
		var perr *os.PathError
		if !errors.As(err, &perr) && !strings.Contains(err.Error(), dir) {
			t.Fatalf("directory open error does not name the path: %v", err)
		}
	}
}
