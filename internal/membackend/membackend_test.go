package membackend

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"atmostonce/internal/memtest"
	"atmostonce/internal/shmem"
)

// mmapFactory builds a memtest.Factory over one register file path so
// the Reopen subtest maps the same storage twice.
func mmapFactory(t *testing.T, wrap string) memtest.Factory {
	dir := t.TempDir()
	var path string
	spec := func() string {
		s := "mmap:" + path
		if wrap != "" {
			s = wrap + ":" + s
		}
		return s
	}
	open := func(t *testing.T, size int) shmem.Mem {
		b, err := Open(spec(), size)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	return memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			// Subtests get distinct files; "/" in subtest names would
			// otherwise read as directories.
			path = filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".reg")
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			return open(t, size)
		},
		Reopen:  open,
		Release: func(t *testing.T, m shmem.Mem) { m.(Backend).Close() },
	}
}

func TestAtomicBackendSuite(t *testing.T) {
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			b, err := Open("atomic", size)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	})
}

func TestCountingAtomicSuite(t *testing.T) {
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			b, err := Open("counting:atomic", size)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	})
}

func TestMmapSuite(t *testing.T) {
	requireMmap(t)
	memtest.RunMemSuite(t, mmapFactory(t, ""))
}

func TestCountingMmapSuite(t *testing.T) {
	requireMmap(t)
	memtest.RunMemSuite(t, mmapFactory(t, "counting"))
}

func requireMmap(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap backend requires linux")
	}
}

func TestCountingCounts(t *testing.T) {
	b, err := Open("counting:atomic", 4)
	if err != nil {
		t.Fatal(err)
	}
	c := b.(*CountingMem)
	c.Write(0, 7)
	c.Write(1, 8)
	if c.Read(0) != 7 {
		t.Fatal("read through wrapper lost the write")
	}
	if c.Reads() != 1 || c.Writes() != 2 || c.Accesses() != 3 {
		t.Fatalf("counters reads=%d writes=%d, want 1/2", c.Reads(), c.Writes())
	}
	if c.Reopened() {
		t.Fatal("volatile inner backend reported Reopened")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("nosuch", 8); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown kind: got %v", err)
	}
	if _, err := Open("atomic", 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := Open("atomic:junk", 8); err == nil {
		t.Fatal("atomic with argument accepted")
	}
	if _, err := Open("counting", 8); err == nil {
		t.Fatal("counting without inner spec accepted")
	}
	if _, err := Open("mmap", 8); err == nil {
		t.Fatal("mmap without path accepted")
	}
	// Empty spec defaults to atomic.
	b, err := Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(AtomicBackend); !ok {
		t.Fatalf("empty spec opened %T, want AtomicBackend", b)
	}
}

func TestShardSpec(t *testing.T) {
	cases := [][3]string{
		{"atomic", "0", "atomic"},
		{"mmap:/tmp/x", "2", "mmap:/tmp/x.shard2"},
		{"counting:mmap:/tmp/x", "1", "counting:mmap:/tmp/x.shard1"},
		{"counting:atomic", "3", "counting:atomic"},
	}
	for _, c := range cases {
		shard := int(c[1][0] - '0')
		if got := ShardSpec(c[0], shard); got != c[2] {
			t.Errorf("ShardSpec(%q, %d) = %q, want %q", c[0], shard, got, c[2])
		}
	}
	// WithSuffix only touches path-bearing terminals.
	if got := WithSuffix("counting:atomic", ".shape1"); got != "counting:atomic" {
		t.Errorf("WithSuffix(counting:atomic) = %q, want unchanged", got)
	}
	if got := WithSuffix("counting:mmap:/x", ".shape1"); got != "counting:mmap:/x.shape1" {
		t.Errorf("WithSuffix(counting:mmap:/x) = %q", got)
	}
}

func TestKinds(t *testing.T) {
	kinds := Kinds()
	for _, want := range []string{"atomic", "counting", "mmap"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, kinds)
		}
	}
}

func TestMmapHeaderValidation(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "regs")

	b, err := OpenMmap(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(5, 99)
	if b.Reopened() {
		t.Fatal("fresh file reported Reopened")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}

	// Reopen with the right size sees the data and reports Reopened.
	r, err := OpenMmap(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reopened() {
		t.Fatal("existing file not reported as reopened")
	}
	if got := r.Read(5); got != 99 {
		t.Fatalf("persisted cell reads %d, want 99", got)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Size mismatch is rejected, both ways.
	if _, err := OpenMmap(path, 64); err == nil {
		t.Fatal("cell-count mismatch accepted")
	}

	// A non-register file is rejected.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, make([]byte, mmapHeader+32*8), 0o644); err != nil {
		t.Fatal(err)
	}
	// All-zero content is the crashed-during-create case: accepted as fresh.
	z, err := OpenMmap(junk, 32)
	if err != nil {
		t.Fatalf("zeroed file rejected: %v", err)
	}
	if z.Reopened() {
		t.Fatal("zeroed file reported Reopened")
	}
	z.Close()
	// Corrupt the magic: rejected.
	data, _ := os.ReadFile(junk)
	copy(data, "GARBAGE!")
	if err := os.WriteFile(junk, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(junk, 32); err == nil || !strings.Contains(err.Error(), "not a register file") {
		t.Fatalf("corrupt magic: got %v", err)
	}

	// A directory path fails cleanly with a path error, not a panic.
	if _, err := OpenMmap(dir, 8); err == nil {
		t.Fatal("directory path accepted")
	} else {
		var perr *os.PathError
		if !errors.As(err, &perr) && !strings.Contains(err.Error(), dir) {
			t.Fatalf("directory open error does not name the path: %v", err)
		}
	}
}
