package membackend

import (
	"fmt"
	"sync/atomic"
)

// CountingMem wraps any backend with read/write counters, giving the
// shared-access instrumentation of shmem.SimMem outside the simulator:
// unlike SimMem it is safe for concurrent use (counters are atomic) and
// composes with durable backends ("counting:mmap:PATH").
type CountingMem struct {
	inner  Backend
	reads  atomic.Uint64
	writes atomic.Uint64
}

var (
	_ Backend  = (*CountingMem)(nil)
	_ Reopener = (*CountingMem)(nil)
)

// NewCounting wraps inner with access counting.
func NewCounting(inner Backend) *CountingMem {
	return &CountingMem{inner: inner}
}

// Read implements shmem.Mem.
func (c *CountingMem) Read(addr int) int64 {
	c.reads.Add(1)
	return c.inner.Read(addr)
}

// Write implements shmem.Mem.
func (c *CountingMem) Write(addr int, v int64) {
	c.writes.Add(1)
	c.inner.Write(addr, v)
}

// Size implements shmem.Mem.
func (c *CountingMem) Size() int { return c.inner.Size() }

// Sync implements Backend.
func (c *CountingMem) Sync() error { return c.inner.Sync() }

// Close implements Backend.
func (c *CountingMem) Close() error { return c.inner.Close() }

// Reopened implements Reopener by delegating to the inner backend.
func (c *CountingMem) Reopened() bool {
	if r, ok := c.inner.(Reopener); ok {
		return r.Reopened()
	}
	return false
}

// Inner returns the wrapped backend.
func (c *CountingMem) Inner() Backend { return c.inner }

// Reads returns the number of Read calls observed.
func (c *CountingMem) Reads() uint64 { return c.reads.Load() }

// Writes returns the number of Write calls observed.
func (c *CountingMem) Writes() uint64 { return c.writes.Load() }

// Accesses returns Reads()+Writes().
func (c *CountingMem) Accesses() uint64 { return c.reads.Load() + c.writes.Load() }

func init() {
	Register("counting", func(arg string, size int) (Backend, error) {
		if arg == "" {
			return nil, fmt.Errorf("membackend: counting backend needs an inner spec, e.g. %q", "counting:atomic")
		}
		inner, err := Open(arg, size)
		if err != nil {
			return nil, err
		}
		return NewCounting(inner), nil
	})
}
