package membackend

import (
	"fmt"
	"sync/atomic"
)

// CountingMem wraps any backend with read/write counters, giving the
// shared-access instrumentation of shmem.SimMem outside the simulator:
// unlike SimMem it is safe for concurrent use (counters are atomic) and
// composes with durable backends ("counting:mmap:PATH"). The loopable
// capabilities (AckedWriter, RangeReader, Filler) pass through to the
// inner backend when it has them and fall back to the equivalent cell
// loop when it does not, so wrapping never hides them — and every
// access through a capability is counted with the same weights a
// cell-at-a-time caller would pay. Swapper has no sound fallback (a
// read-then-write emulation would not be atomic), so CountingMem
// itself does not implement it; the registry's "counting:" opener
// returns a CAS-capable wrapper exactly when the inner backend is a
// Swapper, keeping type-assertion capability discovery honest.
type CountingMem struct {
	inner  Backend
	reads  atomic.Uint64
	writes atomic.Uint64
	syncs  atomic.Uint64
}

var (
	_ Backend            = (*CountingMem)(nil)
	_ Reopener           = (*CountingMem)(nil)
	_ AckedWriter        = (*CountingMem)(nil)
	_ JournalWriter      = (*CountingMem)(nil)
	_ BatchAckedWriter   = (*CountingMem)(nil)
	_ BatchJournalWriter = (*CountingMem)(nil)
	_ RangeReader        = (*CountingMem)(nil)
	_ Filler             = (*CountingMem)(nil)
)

// swappingCounting is a CountingMem over a Swapper-capable inner
// backend; only it advertises CompareAndSwap.
type swappingCounting struct {
	*CountingMem
	sw Swapper
}

var _ Swapper = (*swappingCounting)(nil)

// CompareAndSwap implements Swapper, counting one read and one write
// (the access pattern a CAS subsumes).
func (s *swappingCounting) CompareAndSwap(addr int, old, new int64) bool {
	s.reads.Add(1)
	s.writes.Add(1)
	return s.sw.CompareAndSwap(addr, old, new)
}

// AsCounting unwraps the counting layer of a backend built by the
// "counting:" spec (either counting flavor), or nil if b is not one.
func AsCounting(b Backend) *CountingMem {
	switch v := b.(type) {
	case *CountingMem:
		return v
	case *swappingCounting:
		return v.CountingMem
	}
	return nil
}

// NewCounting wraps inner with access counting.
func NewCounting(inner Backend) *CountingMem {
	return &CountingMem{inner: inner}
}

// Read implements shmem.Mem.
func (c *CountingMem) Read(addr int) int64 {
	c.reads.Add(1)
	return c.inner.Read(addr)
}

// Write implements shmem.Mem.
func (c *CountingMem) Write(addr int, v int64) {
	c.writes.Add(1)
	c.inner.Write(addr, v)
}

// Size implements shmem.Mem.
func (c *CountingMem) Size() int { return c.inner.Size() }

// WriteAcked implements AckedWriter, counting one write. An in-process
// inner backend's plain Write is already acked by the time it returns.
func (c *CountingMem) WriteAcked(addr int, v int64) error {
	c.writes.Add(1)
	if aw, ok := c.inner.(AckedWriter); ok {
		return aw.WriteAcked(addr, v)
	}
	c.inner.Write(addr, v)
	return nil
}

// JournalWrite implements JournalWriter, counting one write. Falls back
// through WriteAcked to plain Write when the inner backend lacks the
// capability, mirroring how the dispatcher itself degrades.
func (c *CountingMem) JournalWrite(addr int, id uint64) error {
	c.writes.Add(1)
	switch v := c.inner.(type) {
	case JournalWriter:
		return v.JournalWrite(addr, id)
	case AckedWriter:
		return v.WriteAcked(addr, int64(id))
	}
	c.inner.Write(addr, int64(id))
	return nil
}

// WriteAckedBatch implements BatchAckedWriter, counting len(vals)
// writes. When the inner backend lacks the batch capability it degrades
// to per-cell acked writes — still correct (each cell is ordered), just
// without the single-ack amortization, and with the same
// prefix-on-crash window the contract allows for in-process backends.
func (c *CountingMem) WriteAckedBatch(addr int, vals []int64) error {
	c.writes.Add(uint64(len(vals)))
	if bw, ok := c.inner.(BatchAckedWriter); ok {
		return bw.WriteAckedBatch(addr, vals)
	}
	if aw, ok := c.inner.(AckedWriter); ok {
		for i, v := range vals {
			if err := aw.WriteAcked(addr+i, v); err != nil {
				return err
			}
		}
		return nil
	}
	for i, v := range vals {
		c.inner.Write(addr+i, v)
	}
	return nil
}

// JournalWriteBatch implements BatchJournalWriter, counting len(ids)
// writes. Falls back through JournalWrite so the per-job server-side
// trace witnessing survives wrapping, then through the acked/plain
// ladder like the other capabilities.
func (c *CountingMem) JournalWriteBatch(addr int, ids []uint64) error {
	c.writes.Add(uint64(len(ids)))
	switch v := c.inner.(type) {
	case BatchJournalWriter:
		return v.JournalWriteBatch(addr, ids)
	case JournalWriter:
		for i, id := range ids {
			if err := v.JournalWrite(addr+i, id); err != nil {
				return err
			}
		}
		return nil
	case AckedWriter:
		for i, id := range ids {
			if err := v.WriteAcked(addr+i, int64(id)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, id := range ids {
		c.inner.Write(addr+i, int64(id))
	}
	return nil
}

// ReadRange implements RangeReader, counting len(dst) reads.
func (c *CountingMem) ReadRange(addr int, dst []int64) error {
	c.reads.Add(uint64(len(dst)))
	if rr, ok := c.inner.(RangeReader); ok {
		return rr.ReadRange(addr, dst)
	}
	for i := range dst {
		dst[i] = c.inner.Read(addr + i)
	}
	return nil
}

// Fill implements Filler, counting n writes.
func (c *CountingMem) Fill(addr, n int, v int64) error {
	if n < 0 {
		return fmt.Errorf("membackend: negative fill count %d", n)
	}
	c.writes.Add(uint64(n))
	if f, ok := c.inner.(Filler); ok {
		return f.Fill(addr, n, v)
	}
	for i := 0; i < n; i++ {
		c.inner.Write(addr+i, v)
	}
	return nil
}

// Sync implements Backend, counting the call (Syncs) and passing it
// through to the inner backend.
func (c *CountingMem) Sync() error {
	c.syncs.Add(1)
	return c.inner.Sync()
}

// Close implements Backend.
func (c *CountingMem) Close() error { return c.inner.Close() }

// Reopened implements Reopener by delegating to the inner backend.
func (c *CountingMem) Reopened() bool {
	if r, ok := c.inner.(Reopener); ok {
		return r.Reopened()
	}
	return false
}

// Inner returns the wrapped backend.
func (c *CountingMem) Inner() Backend { return c.inner }

// Reads returns the number of Read calls observed.
func (c *CountingMem) Reads() uint64 { return c.reads.Load() }

// Writes returns the number of Write calls observed.
func (c *CountingMem) Writes() uint64 { return c.writes.Load() }

// Syncs returns the number of Sync calls observed.
func (c *CountingMem) Syncs() uint64 { return c.syncs.Load() }

// Accesses returns Reads()+Writes().
func (c *CountingMem) Accesses() uint64 { return c.reads.Load() + c.writes.Load() }

func init() {
	Register("counting", func(arg string, size int) (Backend, error) {
		if arg == "" {
			return nil, fmt.Errorf("membackend: counting backend needs an inner spec, e.g. %q", "counting:atomic")
		}
		inner, err := Open(arg, size)
		if err != nil {
			return nil, err
		}
		c := NewCounting(inner)
		if sw, ok := inner.(Swapper); ok {
			return &swappingCounting{CountingMem: c, sw: sw}, nil
		}
		return c, nil
	})
}
