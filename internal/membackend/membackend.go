// Package membackend is the register-backend registry: every
// implementation of shmem.Mem that the concurrent stack can run on,
// behind one factory. The paper's algorithms only ever see an array of
// atomic read/write registers (§2.1); everything above the registers —
// core, conc.Runtime, the streaming dispatcher — talks to them through
// the shmem.Mem interface, so the register file itself is a replaceable
// subsystem. This package makes the replacement explicit:
//
//   - "atomic"  — the in-process sync/atomic backend (shmem.AtomicMem),
//     the default for purely in-memory dispatchers.
//   - "mmap:PATH" — a durable register file: the cells live in a
//     memory-mapped file with a versioned header, so at-most-once state
//     survives process death and a dispatcher can recover it
//     (internal/dispatch's recovery scan; DESIGN.md §7).
//   - "counting:SPEC" — an instrumented wrapper around any other
//     backend, counting reads and writes outside the simulator.
//
// Backends are selected by spec string through Open, e.g.
// Open("mmap:/var/lib/amo/shard.reg", size). Additional backends (a
// networked register service, say) register themselves with Register.
//
// See DESIGN.md §7 for the interface contract, the mmap file layout and
// the multi-process atomicity caveats.
package membackend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atmostonce/internal/shmem"
)

// Backend is a register file with an explicit lifecycle. Read and Write
// must be atomic per cell and safe for concurrent use (the contract the
// conformance suite internal/memtest enforces); Sync and Close are
// no-ops for volatile backends.
type Backend interface {
	shmem.Mem
	// Sync flushes outstanding writes to the backing store, if any.
	Sync() error
	// Close releases the backend's resources. Using the backend after
	// Close is undefined. Close is idempotent.
	Close() error
}

// Reopener is the optional capability of durable backends: Reopened
// reports whether Open found existing register state (as opposed to
// creating a fresh, zeroed file). The dispatcher's crash recovery keys
// off this.
type Reopener interface {
	Reopened() bool
}

// OpenFunc builds a backend with size cells from the spec's argument
// (the part after "kind:", possibly empty).
type OpenFunc func(arg string, size int) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = map[string]OpenFunc{}
)

// Register adds a backend kind to the registry. It panics on a
// duplicate kind; call it from an init function.
func Register(kind string, open OpenFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("membackend: duplicate backend kind " + kind)
	}
	registry[kind] = open
}

// Kinds returns the registered backend kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Open builds the backend a spec names, with size cells. A spec is
// "kind" or "kind:argument"; wrapper kinds (counting) take a nested
// spec as their argument. An empty spec means "atomic".
func Open(spec string, size int) (Backend, error) {
	if size <= 0 {
		return nil, fmt.Errorf("membackend: need a positive size, got %d", size)
	}
	kind, arg := splitSpec(spec)
	regMu.RLock()
	open, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("membackend: unknown backend %q (have %s)", kind, strings.Join(Kinds(), ", "))
	}
	return open(arg, size)
}

// ShardSpec rewrites a spec for one shard of a sharded deployment:
// path-bearing kinds (mmap) get a ".shard<i>" suffix so every shard
// maps its own file; volatile kinds pass through unchanged. Wrappers
// rewrite their inner spec.
func ShardSpec(spec string, shard int) string {
	return WithSuffix(spec, fmt.Sprintf(".shard%d", shard))
}

// WithSuffix appends suffix to the path of a spec's path-bearing
// terminal kind (mmap), recursing through wrappers (counting); specs
// without a path pass through unchanged. Callers that need several
// independent instances of one spec (shards, bench sweep points) use it
// to derive per-instance file names.
func WithSuffix(spec, suffix string) string {
	kind, arg := splitSpec(spec)
	switch kind {
	case "mmap":
		return kind + ":" + arg + suffix
	case "counting":
		return kind + ":" + WithSuffix(arg, suffix)
	default:
		return spec
	}
}

func splitSpec(spec string) (kind, arg string) {
	if spec == "" {
		return "atomic", ""
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return spec, ""
}
