// Package membackend is the register-backend registry: every
// implementation of shmem.Mem that the concurrent stack can run on,
// behind one factory. The paper's algorithms only ever see an array of
// atomic read/write registers (§2.1); everything above the registers —
// core, conc.Runtime, the streaming dispatcher — talks to them through
// the shmem.Mem interface, so the register file itself is a replaceable
// subsystem. This package makes the replacement explicit:
//
//   - "atomic"  — the in-process sync/atomic backend (shmem.AtomicMem),
//     the default for purely in-memory dispatchers.
//   - "mmap:PATH" — a durable register file: the cells live in a
//     memory-mapped file with a versioned header, so at-most-once state
//     survives process death and a dispatcher can recover it
//     (internal/dispatch's recovery scan; DESIGN.md §7).
//   - "counting:SPEC" — an instrumented wrapper around any other
//     backend, counting reads and writes outside the simulator.
//   - "net:HOST:PORT[/NAMESPACE]" — a remote register service: the cells
//     live in an amo-regd server process and are accessed over a binary
//     TCP protocol with single-writer lease arbitration. Implemented in
//     internal/netmem, which registers the kind from its init; import it
//     (the public atmostonce package does) before opening net specs.
//
// Backends are selected by spec string through Open, e.g.
// Open("mmap:/var/lib/amo/shard.reg", size). Additional backends
// register themselves with Register.
//
// See DESIGN.md §7 for the interface contract, the mmap file layout and
// the multi-process atomicity caveats.
package membackend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atmostonce/internal/obs/eventlog"
	"atmostonce/internal/shmem"
)

// Backend is a register file with an explicit lifecycle. Read and Write
// must be atomic per cell and safe for concurrent use (the contract the
// conformance suite internal/memtest enforces); Sync and Close are
// no-ops for volatile backends.
type Backend interface {
	shmem.Mem
	// Sync flushes outstanding writes to the backing store, if any.
	Sync() error
	// Close releases the backend's resources. Using the backend after
	// Close is undefined. Close is idempotent.
	Close() error
}

// Reopener is the optional capability of durable backends: Reopened
// reports whether Open found existing register state (as opposed to
// creating a fresh, zeroed file). The dispatcher's crash recovery keys
// off this.
type Reopener interface {
	Reopened() bool
}

// The interfaces below are optional backend capabilities, discovered by
// type assertion. In-process backends satisfy them trivially (a plain
// Write is already acked, a range read is a loop); they exist so remote
// backends (internal/netmem) can expose the semantics a caller actually
// needs — an acknowledged durable write, a batched scan — instead of
// paying one network round trip per cell. internal/memtest exercises
// whichever of them a backend implements.

// AckedWriter is the capability of writing a cell and not returning
// until the write has reached the backing store's ordering point (the
// server, for a remote backend). The streaming dispatcher journals
// through it: record-then-do is only safe when the record is known to
// survive the writer's death before the payload runs. For in-process
// backends plain Write already has that property.
type AckedWriter interface {
	WriteAcked(addr int, v int64) error
}

// RangeReader reads the len(dst) cells starting at addr in one
// operation. The dispatcher's recovery scan uses it to pull whole
// journal rows instead of cell-at-a-time.
type RangeReader interface {
	ReadRange(addr int, dst []int64) error
}

// Filler stores v into the n cells starting at addr in one operation.
// The dispatcher uses it to re-zero the runtime register window on
// recovery.
type Filler interface {
	Fill(addr, n int, v int64) error
}

// Swapper is per-cell compare-and-swap: if the cell at addr holds old,
// store new and report true; otherwise leave it and report false. The
// paper's algorithms never need it (they are read/write only); it backs
// the register service's TAS emulation and test scaffolding.
type Swapper interface {
	CompareAndSwap(addr int, old, new int64) bool
}

// BatchAckedWriter writes the len(vals) contiguous cells starting at
// addr and does not return until every one of them has reached the
// backing store's ordering point — one acknowledged operation for the
// whole batch. The group-commit journal path is built on it: a worker
// claims k jobs, journals all k cells in one vectored write, then
// executes, paying one round trip (or one ack) per claim instead of per
// job. The write must be all-or-nothing with respect to admission
// control: a backend that can reject a write (a fenced remote writer)
// must reject the entire batch without applying any prefix of it.
// Backends whose cells are individually ordered (the in-process ones)
// may apply cell by cell — a crash mid-batch then leaves a prefix,
// which the journal's scan-to-first-zero recovery already tolerates.
type BatchAckedWriter interface {
	WriteAckedBatch(addr int, vals []int64) error
}

// BatchJournalWriter is WriteAckedBatch for journal cells: ids[i] is the
// job id recorded at addr+i. Like JournalWriter it exists so a remote
// backend can name the jobs on the wire and the server can witness the
// journal records in its own tracer; the fencing atomicity contract of
// BatchAckedWriter applies (a fenced batch rejects as a whole, never a
// prefix).
type BatchJournalWriter interface {
	JournalWriteBatch(addr int, ids []uint64) error
}

// JournalWriter is an acked write that additionally names the job whose
// journal record the cell carries. Semantically identical to WriteAcked
// (v is the job id for a journal cell); the separate capability exists
// so a remote backend can tell the server "this is a journal record for
// job id" on the wire, letting the server record a server-side trace
// event for the write. That server-side event is what makes a job's
// cross-process timeline stitchable even when the writing dispatcher
// dies before its own tracer is ever scraped.
type JournalWriter interface {
	JournalWrite(addr int, id uint64) error
}

// OpenFunc builds a backend with size cells from the spec's argument
// (the part after "kind:", possibly empty).
type OpenFunc func(arg string, size int) (Backend, error)

var (
	regMu     sync.RWMutex
	registry  = map[string]OpenFunc{}
	suffixers = map[string]func(arg, suffix string) string{}
)

// Register adds a backend kind to the registry. It panics on a
// duplicate kind; call it from an init function.
func Register(kind string, open OpenFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("membackend: duplicate backend kind " + kind)
	}
	registry[kind] = open
}

// RegisterSuffixer teaches WithSuffix how a kind's spec argument takes
// an instance suffix, so each backend owns its own spec grammar (the
// net backend's host/namespace/option syntax lives in internal/netmem,
// not here). Kinds without a suffixer pass through WithSuffix
// unchanged.
func RegisterSuffixer(kind string, fn func(arg, suffix string) string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := suffixers[kind]; dup {
		panic("membackend: duplicate suffixer for kind " + kind)
	}
	suffixers[kind] = fn
}

// Kinds returns the registered backend kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Open builds the backend a spec names, with size cells. A spec is
// "kind" or "kind:argument"; wrapper kinds (counting) take a nested
// spec as their argument. An empty spec means "atomic". Malformed specs
// — surrounding whitespace, an empty kind, a dangling ":" — are
// rejected with errors that say how to fix them, and an unknown kind's
// error suggests the nearest registered kind.
func Open(spec string, size int) (Backend, error) {
	if size <= 0 {
		return nil, fmt.Errorf("membackend: need a positive size, got %d", size)
	}
	kind, arg, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	regMu.RLock()
	open, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		hint := ""
		if near := nearestKind(kind); near != "" {
			hint = fmt.Sprintf(" — did you mean %q?", near)
		}
		return nil, fmt.Errorf("membackend: unknown backend %q in spec %q%s (have %s)",
			kind, spec, hint, strings.Join(Kinds(), ", "))
	}
	b, err := open(arg, size)
	if err != nil {
		eventlog.Logger().Warn("backend_open_failed", "kind", kind, "spec", spec, "size", size, "err", err)
		return b, err
	}
	obsOpened(kind)
	reopened := false
	if r, ok := b.(Reopener); ok {
		reopened = r.Reopened()
	}
	eventlog.Logger().Debug("backend_open", "kind", kind, "size", size, "reopened", reopened)
	return b, nil
}

// parseSpec splits a spec into kind and argument, rejecting the
// malformed shapes that would otherwise fail deep inside a backend (or
// worse, be silently accepted): surrounding whitespace, an empty kind
// (":arg"), and a dangling ":" with nothing after it.
func parseSpec(spec string) (kind, arg string, err error) {
	if spec == "" {
		return "atomic", "", nil
	}
	if strings.TrimSpace(spec) != spec {
		return "", "", fmt.Errorf("membackend: spec %q has surrounding whitespace; remove it", spec)
	}
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return spec, "", nil
	}
	kind, arg = spec[:i], spec[i+1:]
	if kind == "" {
		return "", "", fmt.Errorf("membackend: spec %q has an empty backend kind before ':' (want e.g. %q)", spec, "mmap:/path/regs")
	}
	if arg == "" {
		return "", "", fmt.Errorf("membackend: spec %q has a dangling ':' with no argument; write just %q, or give an argument (e.g. %q)", spec, kind, kind+":ARG")
	}
	return kind, arg, nil
}

// nearestKind returns the registered kind closest to the misspelled one
// (edit distance at most 2), or "" when nothing is plausibly close.
func nearestKind(kind string) string {
	best, bestDist := "", 3
	for _, k := range Kinds() {
		if d := editDistance(kind, k); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// editDistance is plain Levenshtein distance; specs and kind names are
// tiny, so the quadratic table is free.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ShardSpec rewrites a spec for one shard of a sharded deployment:
// instance-bearing kinds (mmap paths, net namespaces) get a ".shard<i>"
// suffix so every shard owns its own register set; volatile kinds pass
// through unchanged. Wrappers rewrite their inner spec.
func ShardSpec(spec string, shard int) string {
	return WithSuffix(spec, fmt.Sprintf(".shard%d", shard))
}

// WithSuffix appends suffix to the instance name of a spec's terminal
// kind — the file path for mmap, the namespace for net (before any
// "?option" tail) — recursing through wrappers (counting); kinds
// without an instance name pass through unchanged, as do specs Open
// would reject. Callers that need several independent instances of one
// spec (shards, bench sweep points) use it to derive per-instance
// names.
func WithSuffix(spec, suffix string) string {
	kind, arg, err := parseSpec(spec)
	if err != nil {
		return spec
	}
	switch kind {
	case "mmap":
		return kind + ":" + arg + suffix
	case "counting":
		return kind + ":" + WithSuffix(arg, suffix)
	}
	regMu.RLock()
	fn := suffixers[kind]
	regMu.RUnlock()
	if fn != nil {
		return kind + ":" + fn(arg, suffix)
	}
	return spec
}
