//go:build linux

package membackend

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// The mmap register file layout (all little-endian):
//
//	offset  size  field
//	0       8     magic ("AMOREG1\n")
//	8       4     format version (currently 1)
//	12      4     cell size in bytes (8)
//	16      8     cell count
//	24      40    reserved (zero)
//	64      8·n   cells, each an int64 register
//
// The 64-byte header keeps the cell array 8-byte aligned (the mapping
// itself is page aligned), so each cell is accessed with real
// sync/atomic loads and stores on the mapped memory.
const (
	mmapMagic    uint64 = 0x0a314745524f4d41 // "AMOREG1\n"
	mmapVersion  uint32 = 1
	mmapCellSize uint32 = 8
	mmapHeader          = 64
)

// MmapMem is a durable register file: size int64 cells memory-mapped
// from a file with a versioned header. Reads and writes are per-cell
// atomic (sync/atomic on the mapped memory), so the backend is safe for
// concurrent use within one process; see DESIGN.md §7 for the
// multi-process caveats. A fresh file is created zeroed; reopening an
// existing file validates the header and exposes the persisted cells,
// with Reopened reporting which case occurred.
type MmapMem struct {
	path     string
	f        *os.File
	data     []byte
	cells    []atomic.Int64
	reopened bool

	// mu serializes Sync and Close against each other, so a Sync racing
	// a Close never msyncs an unmapped region. Read/Write stay lock-free;
	// cell access after Close is undefined by contract.
	mu     sync.Mutex
	closed bool
}

var (
	_ Backend            = (*MmapMem)(nil)
	_ Reopener           = (*MmapMem)(nil)
	_ AckedWriter        = (*MmapMem)(nil)
	_ JournalWriter      = (*MmapMem)(nil)
	_ BatchAckedWriter   = (*MmapMem)(nil)
	_ BatchJournalWriter = (*MmapMem)(nil)
)

// OpenMmap maps the register file at path with size cells, creating and
// zero-initializing it if it does not exist (or exists empty). An
// existing non-empty file must carry a valid header whose cell count
// matches size.
func OpenMmap(path string, size int) (*MmapMem, error) {
	if size <= 0 {
		return nil, fmt.Errorf("membackend: mmap %s: need a positive size, got %d", path, size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("membackend: mmap: %w", err)
	}
	m, err := initMmap(f, path, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

func initMmap(f *os.File, path string, size int) (*MmapMem, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("membackend: mmap %s: %w", path, err)
	}
	want := int64(mmapHeader) + int64(size)*int64(mmapCellSize)
	fresh := st.Size() == 0
	if fresh {
		if err := f.Truncate(want); err != nil {
			return nil, fmt.Errorf("membackend: mmap %s: %w", path, err)
		}
	} else if st.Size() != want {
		return nil, fmt.Errorf("membackend: mmap %s: file holds %d bytes, want %d for %d cells",
			path, st.Size(), want, size)
	}

	data, err := syscall.Mmap(int(f.Fd()), 0, int(want), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("membackend: mmap %s: %w", path, err)
	}
	m := &MmapMem{
		path:  path,
		f:     f,
		data:  data,
		cells: unsafe.Slice((*atomic.Int64)(unsafe.Pointer(&data[mmapHeader])), size),
	}
	if err := m.checkHeader(size, fresh); err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	return m, nil
}

// checkHeader validates (or, for a fresh file, writes) the header. A
// zero magic is treated as fresh even on a non-empty file: it means a
// previous creator was killed between Truncate and the header write,
// and the cells are still all zero.
func (m *MmapMem) checkHeader(size int, fresh bool) error {
	hdr := m.data[:mmapHeader]
	magic := binary.LittleEndian.Uint64(hdr[0:])
	if magic == 0 {
		binary.LittleEndian.PutUint64(hdr[0:], mmapMagic)
		binary.LittleEndian.PutUint32(hdr[8:], mmapVersion)
		binary.LittleEndian.PutUint32(hdr[12:], mmapCellSize)
		binary.LittleEndian.PutUint64(hdr[16:], uint64(size))
		return m.Sync()
	}
	if magic != mmapMagic {
		return fmt.Errorf("membackend: mmap %s: not a register file (magic %#x)", m.path, magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != mmapVersion {
		return fmt.Errorf("membackend: mmap %s: format version %d, want %d", m.path, v, mmapVersion)
	}
	if cs := binary.LittleEndian.Uint32(hdr[12:]); cs != mmapCellSize {
		return fmt.Errorf("membackend: mmap %s: cell size %d, want %d", m.path, cs, mmapCellSize)
	}
	if n := binary.LittleEndian.Uint64(hdr[16:]); n != uint64(size) {
		return fmt.Errorf("membackend: mmap %s: file holds %d cells, want %d", m.path, n, size)
	}
	m.reopened = !fresh
	return nil
}

// Read implements shmem.Mem.
func (m *MmapMem) Read(addr int) int64 { return m.cells[addr].Load() }

// Write implements shmem.Mem.
func (m *MmapMem) Write(addr int, v int64) { m.cells[addr].Store(v) }

// CompareAndSwap implements the optional Swapper capability with a real
// atomic compare-and-swap on the mapped cell.
func (m *MmapMem) CompareAndSwap(addr int, old, new int64) bool {
	return m.cells[addr].CompareAndSwap(old, new)
}

// syncCells msyncs the page range covering the n cells starting at
// addr, making their current values durable against host crash, not
// just process death. The mapping starts page-aligned, so rounding the
// byte offsets to page boundaries stays inside it. Like Read and Write
// it must not race Close (undefined by contract); unlike Sync it takes
// no lock, because it is the acked-write hot path.
func (m *MmapMem) syncCells(addr, n int) error {
	page := syscall.Getpagesize()
	lo := (mmapHeader + addr*int(mmapCellSize)) &^ (page - 1)
	hi := mmapHeader + (addr+n)*int(mmapCellSize)
	if rem := hi % page; rem != 0 {
		hi += page - rem
	}
	if hi > len(m.data) {
		hi = len(m.data)
	}
	if err := msync(m.data[lo:hi]); err != nil {
		return fmt.Errorf("membackend: msync %s cells [%d,%d): %w", m.path, addr, addr+n, err)
	}
	mbSyncs.Inc()
	return nil
}

// WriteAcked implements AckedWriter: the store plus an msync of its
// page. A plain Write already survives process death (the pages belong
// to the kernel); the acked variant is the genuinely synchronous write
// the journal's record-then-do needs to also survive a host crash. It
// is expensive — one msync per call — which is exactly what the
// group-commit batch variants below amortize.
func (m *MmapMem) WriteAcked(addr int, v int64) error {
	m.cells[addr].Store(v)
	return m.syncCells(addr, 1)
}

// JournalWrite implements JournalWriter. Locally the job id carries no
// extra meaning (there is no server to witness it); the semantics are
// WriteAcked's.
func (m *MmapMem) JournalWrite(addr int, id uint64) error {
	return m.WriteAcked(addr, int64(id))
}

// WriteAckedBatch implements BatchAckedWriter: len(vals) stores, then
// ONE msync covering the touched page range — the group-commit
// amortization. The cells are individually ordered atomic stores, so a
// crash mid-batch leaves a prefix (allowed by the contract for
// in-process backends; the journal's scan-to-first-zero recovery
// tolerates it).
func (m *MmapMem) WriteAckedBatch(addr int, vals []int64) error {
	if len(vals) == 0 {
		return nil
	}
	for i, v := range vals {
		m.cells[addr+i].Store(v)
	}
	return m.syncCells(addr, len(vals))
}

// JournalWriteBatch implements BatchJournalWriter with WriteAckedBatch
// semantics over the journal cells.
func (m *MmapMem) JournalWriteBatch(addr int, ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	for i, id := range ids {
		m.cells[addr+i].Store(int64(id))
	}
	return m.syncCells(addr, len(ids))
}

// Size implements shmem.Mem.
func (m *MmapMem) Size() int { return len(m.cells) }

// Path returns the backing file's path.
func (m *MmapMem) Path() string { return m.path }

// Reopened reports whether OpenMmap found existing register state.
func (m *MmapMem) Reopened() bool { return m.reopened }

// msync is syscall.Msync, which the stdlib syscall package does not
// export on linux.
func msync(b []byte) error {
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

// Sync flushes the mapping to the backing file (msync). It is safe to
// call concurrently with reads, writes and Close; concurrent writes may
// or may not be included in the flush, and a Sync racing Close is a
// no-op.
func (m *MmapMem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	if err := msync(m.data); err != nil {
		return fmt.Errorf("membackend: msync %s: %w", m.path, err)
	}
	mbSyncs.Inc()
	return nil
}

// Close syncs, unmaps and closes the file. Close is idempotent; cell
// access after Close faults.
func (m *MmapMem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	err := msync(m.data)
	if e := syscall.Munmap(m.data); err == nil {
		err = e
	}
	if e := m.f.Close(); err == nil {
		err = e
	}
	m.data, m.cells = nil, nil
	if err != nil {
		return fmt.Errorf("membackend: close %s: %w", m.path, err)
	}
	return nil
}

func init() {
	Register("mmap", func(arg string, size int) (Backend, error) {
		if arg == "" {
			return nil, fmt.Errorf("membackend: mmap backend needs a file path, e.g. %q", "mmap:/var/lib/amo/shard.reg")
		}
		return OpenMmap(arg, size)
	})
}
