package membackend

import "atmostonce/internal/obs"

// Metric families for the register backends, in obs.Default (process
// scope: backends are shared infrastructure, not per-dispatcher). The
// common kinds are pre-registered at init so the amo_membackend_*
// families appear in the first scrape of any binary, zero-valued until
// backends open. The journal-write counter and recovery-scan histogram
// of the same family live with the dispatcher, which owns that state.
var mbSyncs *obs.Counter

func init() {
	r := obs.Default
	for _, kind := range []string{"atomic", "mmap"} {
		r.Counter("amo_membackend_opens_total",
			"Backends opened via the spec registry, by kind.", "kind", kind)
	}
	mbSyncs = r.Counter("amo_membackend_syncs_total",
		"Explicit flushes to stable storage (msync on mmap backends).")
}

// obsOpened accounts one successful Open of the given kind.
func obsOpened(kind string) {
	obs.Default.Counter("amo_membackend_opens_total",
		"Backends opened via the spec registry, by kind.", "kind", kind).Inc()
}
