package membackend

import (
	"fmt"

	"atmostonce/internal/shmem"
)

// AtomicBackend adapts the in-process shmem.AtomicMem to the Backend
// lifecycle. Sync and Close are no-ops: the registers live on the heap
// and die with the process.
type AtomicBackend struct {
	*shmem.AtomicMem
}

var _ Backend = AtomicBackend{}

// NewAtomic returns a volatile in-process backend with size zeroed
// cells.
func NewAtomic(size int) AtomicBackend {
	return AtomicBackend{AtomicMem: shmem.NewAtomic(size)}
}

// Sync implements Backend; there is nothing to flush.
func (AtomicBackend) Sync() error { return nil }

// Close implements Backend; there is nothing to release.
func (AtomicBackend) Close() error { return nil }

func init() {
	Register("atomic", func(arg string, size int) (Backend, error) {
		if arg != "" {
			return nil, fmt.Errorf("membackend: atomic backend takes no argument, got %q", arg)
		}
		return NewAtomic(size), nil
	})
}
