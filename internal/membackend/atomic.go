package membackend

import (
	"fmt"

	"atmostonce/internal/shmem"
)

// AtomicBackend adapts the in-process shmem.AtomicMem to the Backend
// lifecycle. Sync and Close are no-ops: the registers live on the heap
// and die with the process.
type AtomicBackend struct {
	*shmem.AtomicMem
}

var (
	_ Backend            = AtomicBackend{}
	_ BatchAckedWriter   = AtomicBackend{}
	_ BatchJournalWriter = AtomicBackend{}
)

// NewAtomic returns a volatile in-process backend with size zeroed
// cells.
func NewAtomic(size int) AtomicBackend {
	return AtomicBackend{AtomicMem: shmem.NewAtomic(size)}
}

// WriteAckedBatch implements BatchAckedWriter. In-process atomic stores
// are acked the moment they return, so the batch is a plain loop; the
// capability exists so the group-commit path is exercised uniformly
// across backends.
func (b AtomicBackend) WriteAckedBatch(addr int, vals []int64) error {
	for i, v := range vals {
		b.AtomicMem.Write(addr+i, v)
	}
	return nil
}

// JournalWriteBatch implements BatchJournalWriter; locally the ids are
// just the cell values.
func (b AtomicBackend) JournalWriteBatch(addr int, ids []uint64) error {
	for i, id := range ids {
		b.AtomicMem.Write(addr+i, int64(id))
	}
	return nil
}

// Sync implements Backend; there is nothing to flush.
func (AtomicBackend) Sync() error { return nil }

// Close implements Backend; there is nothing to release.
func (AtomicBackend) Close() error { return nil }

func init() {
	Register("atomic", func(arg string, size int) (Backend, error) {
		if arg != "" {
			return nil, fmt.Errorf("membackend: atomic backend takes no argument, got %q", arg)
		}
		return NewAtomic(size), nil
	})
}
