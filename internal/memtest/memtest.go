// Package memtest is the conformance suite every register backend must
// pass: one shared battery of subtests exercised against SimMem,
// AtomicMem, MmapMem, CountingMem and the networked NetMem (against a
// live server), so a new shmem.Mem implementation inherits the
// contract checks instead of re-inventing them. Run it from the
// backend's own test file:
//
//	memtest.RunMemSuite(t, memtest.Factory{
//		New: func(t *testing.T, size int) shmem.Mem { ... },
//	})
//
// The battery checks zero initialization, Size, read-your-writes over
// the whole address range, full-cell atomicity under concurrent access
// (run with -race; skipped for backends that declare themselves
// sequential) and, for durable backends, that a reopened instance sees
// exactly the cells the previous instance wrote.
package memtest

import (
	"sync"
	"testing"

	"atmostonce/internal/shmem"
)

// Factory tells the suite how to build instances of the backend under
// test. Cleanup of an instance (closing files, etc.) is the factory's
// job — register it on t.
type Factory struct {
	// New returns a fresh backend with size zeroed cells.
	New func(t *testing.T, size int) shmem.Mem
	// Reopen, when non-nil, declares the backend durable: it must
	// return a new instance backed by the same storage as the instance
	// most recently created by New (which the suite has already
	// released via Release, if that is set).
	Reopen func(t *testing.T, size int) shmem.Mem
	// Release, when non-nil, is called to quiesce an instance before
	// Reopen (e.g. Close the mapping). Volatile backends leave it nil.
	Release func(t *testing.T, m shmem.Mem)
	// Sequential marks backends that are not safe for concurrent use
	// (SimMem); the suite then skips the concurrency subtest.
	Sequential bool
}

// RunMemSuite runs the conformance battery against the factory's
// backend.
func RunMemSuite(t *testing.T, f Factory) {
	t.Run("ZeroInit", func(t *testing.T) { testZeroInit(t, f) })
	t.Run("Size", func(t *testing.T) { testSize(t, f) })
	t.Run("ReadWrite", func(t *testing.T) { testReadWrite(t, f) })
	t.Run("Concurrent", func(t *testing.T) {
		if f.Sequential {
			t.Skip("backend is sequential by contract")
		}
		testConcurrent(t, f)
	})
	t.Run("Reopen", func(t *testing.T) {
		if f.Reopen == nil {
			t.Skip("backend is volatile")
		}
		testReopen(t, f)
	})
	t.Run("Capabilities", func(t *testing.T) { testCapabilities(t, f) })
	t.Run("BatchWrite", func(t *testing.T) { testBatchWrite(t, f) })
}

// Local structural mirrors of membackend's optional capability
// interfaces (AckedWriter, RangeReader, Filler, Swapper). They are
// redeclared here instead of imported because membackend's own tests
// run this suite from inside package membackend — importing it back
// would be an import cycle — and Go interface satisfaction is
// structural, so the assertions are equivalent.
type (
	ackedWriter interface {
		WriteAcked(addr int, v int64) error
	}
	rangeReader interface {
		ReadRange(addr int, dst []int64) error
	}
	filler interface {
		Fill(addr, n int, v int64) error
	}
	swapper interface {
		CompareAndSwap(addr int, old, new int64) bool
	}
	batchAckedWriter interface {
		WriteAckedBatch(addr int, vals []int64) error
	}
	batchJournalWriter interface {
		JournalWriteBatch(addr int, ids []uint64) error
	}
)

// testCapabilities checks whichever of the optional membackend
// capability interfaces the backend implements against the plain
// Read/Write semantics: WriteAcked is a write, ReadRange sees exactly
// what per-cell reads see, Fill covers its range and nothing else, and
// CompareAndSwap succeeds precisely on a matching old value. Backends
// with none of the capabilities pass vacuously.
func testCapabilities(t *testing.T, f Factory) {
	const size = 64
	m := f.New(t, size)
	any := false
	if aw, ok := m.(ackedWriter); ok {
		any = true
		if err := aw.WriteAcked(7, 1234); err != nil {
			t.Fatalf("WriteAcked: %v", err)
		}
		if got := m.Read(7); got != 1234 {
			t.Fatalf("cell 7 reads %d after WriteAcked, want 1234", got)
		}
	}
	for a := 0; a < size; a++ {
		m.Write(a, int64(a)*3+1)
	}
	if rr, ok := m.(rangeReader); ok {
		any = true
		dst := make([]int64, 17)
		if err := rr.ReadRange(5, dst); err != nil {
			t.Fatalf("ReadRange: %v", err)
		}
		for i, v := range dst {
			if want := m.Read(5 + i); v != want {
				t.Fatalf("ReadRange[%d] = %d, per-cell read says %d", i, v, want)
			}
		}
	}
	if fl, ok := m.(filler); ok {
		any = true
		if err := fl.Fill(10, 20, -7); err != nil {
			t.Fatalf("Fill: %v", err)
		}
		for a := 0; a < size; a++ {
			want := int64(a)*3 + 1
			if a >= 10 && a < 30 {
				want = -7
			}
			if got := m.Read(a); got != want {
				t.Fatalf("cell %d = %d after Fill(10,20), want %d", a, got, want)
			}
		}
	}
	if sw, ok := m.(swapper); ok {
		any = true
		m.Write(40, 5)
		if sw.CompareAndSwap(40, 6, 7) {
			t.Fatal("CAS with stale old succeeded")
		}
		if got := m.Read(40); got != 5 {
			t.Fatalf("failed CAS mutated the cell to %d", got)
		}
		if !sw.CompareAndSwap(40, 5, 7) {
			t.Fatal("CAS with matching old failed")
		}
		if got := m.Read(40); got != 7 {
			t.Fatalf("cell = %d after CAS, want 7", got)
		}
	}
	if !any {
		t.Skip("backend implements no optional capabilities")
	}
}

// testBatchWrite checks the vectored-write capabilities
// (WriteAckedBatch / JournalWriteBatch) against plain per-cell reads: a
// batch of k values lands in exactly the k contiguous cells starting at
// addr, neighbours untouched, single-element and larger batches alike.
// The stronger contract — a *fenced* batch write rejecting atomically
// with no prefix applied — involves two competing writers and lives in
// the net backend's own tests (it is the only backend with admission
// control); here every accepted batch must simply be fully applied.
// Backends without the capabilities pass vacuously.
func testBatchWrite(t *testing.T, f Factory) {
	const size = 96
	m := f.New(t, size)
	any := false
	for a := 0; a < size; a++ {
		m.Write(a, int64(a)+100)
	}
	if bw, ok := m.(batchAckedWriter); ok {
		any = true
		for _, n := range []int{1, 2, 7, 33} {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(1000*n + i)
			}
			const addr = 20
			if err := bw.WriteAckedBatch(addr, vals); err != nil {
				t.Fatalf("WriteAckedBatch(%d cells): %v", n, err)
			}
			for a := 0; a < size; a++ {
				want := int64(a) + 100
				if a >= addr && a < addr+n {
					want = vals[a-addr]
				}
				if got := m.Read(a); got != want {
					t.Fatalf("cell %d = %d after WriteAckedBatch(%d,%d cells), want %d", a, got, addr, n, want)
				}
			}
			for a := 0; a < size; a++ {
				m.Write(a, int64(a)+100)
			}
		}
	}
	if jw, ok := m.(batchJournalWriter); ok {
		any = true
		ids := []uint64{901, 902, 903, 904, 905}
		const addr = 50
		if err := jw.JournalWriteBatch(addr, ids); err != nil {
			t.Fatalf("JournalWriteBatch: %v", err)
		}
		for i, id := range ids {
			if got := m.Read(addr + i); got != int64(id) {
				t.Fatalf("journal cell %d = %d, want %d", addr+i, got, id)
			}
		}
		if got := m.Read(addr + len(ids)); got != int64(addr+len(ids))+100 {
			t.Fatalf("cell after journal batch clobbered: %d", got)
		}
	}
	if !any {
		t.Skip("backend implements no batch-write capabilities")
	}
}

func testZeroInit(t *testing.T, f Factory) {
	const size = 257
	m := f.New(t, size)
	for a := 0; a < size; a++ {
		if v := m.Read(a); v != 0 {
			t.Fatalf("fresh cell %d holds %d, want 0", a, v)
		}
	}
}

func testSize(t *testing.T, f Factory) {
	for _, size := range []int{1, 7, 64, 1023} {
		if got := f.New(t, size).Size(); got != size {
			t.Fatalf("Size() = %d, want %d", got, size)
		}
	}
}

func testReadWrite(t *testing.T, f Factory) {
	const size = 513
	m := f.New(t, size)
	pattern := func(a int) int64 { return int64(a)*0x9e3779b9 + 1 }
	for a := 0; a < size; a++ {
		m.Write(a, pattern(a))
	}
	for a := 0; a < size; a++ {
		if got := m.Read(a); got != pattern(a) {
			t.Fatalf("cell %d reads %d after writing %d", a, got, pattern(a))
		}
	}
	// Overwrites land, and neighbours are untouched.
	m.Write(size/2, -42)
	if got := m.Read(size / 2); got != -42 {
		t.Fatalf("overwritten cell reads %d, want -42", got)
	}
	if got := m.Read(size/2 + 1); got != pattern(size/2+1) {
		t.Fatalf("neighbour cell clobbered: %d", got)
	}
}

// testConcurrent hammers a few cells from many goroutines. Every value
// ever written encodes its writer and sequence number, so any torn
// (non-atomic) write or out-of-thin-air read surfaces as a value nobody
// wrote; the race detector additionally flags unsynchronized access.
func testConcurrent(t *testing.T, f Factory) {
	const (
		size    = 8
		writers = 8
		rounds  = 2000
	)
	m := f.New(t, size)
	valid := func(v int64) bool {
		if v == 0 {
			return true
		}
		g := v >> 32
		s := v & 0xffffffff
		return g >= 1 && g <= writers && s >= 1 && s <= rounds
	}
	var wg sync.WaitGroup
	bad := make(chan int64, writers)
	for g := 1; g <= writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 1; s <= rounds; s++ {
				a := (g + s) % size
				m.Write(a, int64(g)<<32|int64(s))
				if v := m.Read((g + s + 3) % size); !valid(v) {
					select {
					case bad <- v:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(bad)
	if v, ok := <-bad; ok {
		t.Fatalf("read torn or out-of-thin-air value %#x", v)
	}
	for a := 0; a < size; a++ {
		if v := m.Read(a); !valid(v) {
			t.Fatalf("cell %d settled on torn value %#x", a, v)
		}
	}
}

func testReopen(t *testing.T, f Factory) {
	const size = 129
	m := f.New(t, size)
	pattern := func(a int) int64 { return int64(a*a + 1) }
	for a := 0; a < size; a++ {
		m.Write(a, pattern(a))
	}
	if f.Release != nil {
		f.Release(t, m)
	}
	r := f.Reopen(t, size)
	if got := r.Size(); got != size {
		t.Fatalf("reopened Size() = %d, want %d", got, size)
	}
	for a := 0; a < size; a++ {
		if got := r.Read(a); got != pattern(a) {
			t.Fatalf("reopened cell %d reads %d, want %d", a, got, pattern(a))
		}
	}
}
