package memtest

import (
	"testing"

	"atmostonce/internal/shmem"
)

// The two shmem-native implementations pass the shared battery; the
// backend registry's implementations run it from internal/membackend.

func TestSimMemSuite(t *testing.T) {
	RunMemSuite(t, Factory{
		New:        func(t *testing.T, size int) shmem.Mem { return shmem.NewSim(size) },
		Sequential: true, // SimMem is only atomic under a serializing scheduler
	})
}

func TestAtomicMemSuite(t *testing.T) {
	RunMemSuite(t, Factory{
		New: func(t *testing.T, size int) shmem.Mem { return shmem.NewAtomic(size) },
	})
}
