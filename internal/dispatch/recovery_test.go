package dispatch

import (
	"errors"
	"expvar"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/netmem"
)

// mmapFactory returns a Config.NewMem mapping each shard's register
// file under dir, so successive dispatchers share durable state.
func mmapFactory(dir string) func(shard, size int) (membackend.Backend, error) {
	spec := "mmap:" + filepath.Join(dir, "regs")
	return func(shard, size int) (membackend.Backend, error) {
		return membackend.Open(membackend.ShardSpec(spec, shard), size)
	}
}

func requireMmap(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("durable backend requires linux")
	}
}

// waitFor polls cond for up to 20s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecoverMidRound is the heart of the durability story: a durable
// dispatcher is "killed" in the middle of its first round — its workers
// quiesce at action boundaries, the paper's crash model (§2.1), and the
// process state is simply abandoned — then a second dispatcher over the
// same register files recovers the journal and the re-submitted stream
// completes with zero duplicates and zero lost jobs.
func TestRecoverMidRound(t *testing.T) {
	requireMmap(t)
	const (
		n       = 2000
		workers = 4
		killAt  = 32
	)
	dir := t.TempDir()
	executions := make([]atomic.Int32, n+1)

	// Phase 1: the doomed incarnation. Once killAt payloads have run,
	// every subsequent payload blocks forever, so all workers end up
	// parked inside a payload (after its effect and its journal record)
	// and the round can never finish — a process frozen mid-round.
	var performed, blocked atomic.Int64
	gate := make(chan struct{}) // never closed: d1's workers stay frozen
	d1, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 512,
		NewMem: mmapFactory(dir), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			executions[id].Add(1)
			if performed.Add(1) >= killAt {
				blocked.Add(1)
				<-gate
			}
		}
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all workers frozen mid-round", func() bool { return blocked.Load() == workers })
	preCrash := performed.Load()
	// d1 is now abandoned without Close: its goroutines leak for the
	// test's lifetime, exactly like memory of a killed process.

	// Phase 2: recovery. Reopen the same register files and re-submit
	// the identical stream (same order, hence same ids).
	d2, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 512,
		NewMem: mmapFactory(dir), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	st := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	if st.Recovered != uint64(preCrash) {
		t.Errorf("recovered %d jobs from the journal, want %d (the pre-crash performs)", st.Recovered, preCrash)
	}
	dup, lost := 0, 0
	for id := 1; id <= n; id++ {
		switch executions[id].Load() {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	if dup != 0 {
		t.Errorf("at-most-once violated across the crash: %d duplicate executions", dup)
	}
	if lost != 0 {
		t.Errorf("%d jobs lost across the crash", lost)
	}
	if st.Duplicates != 0 {
		t.Errorf("round-level duplicates: %d", st.Duplicates)
	}
}

// TestRecoverRoundBoundary crashes a multi-shard dispatcher between
// rounds (abandon: loops exit at the next round boundary without
// draining) and checks the reopened dispatcher completes the stream
// exactly once.
func TestRecoverRoundBoundary(t *testing.T) {
	requireMmap(t)
	const n = 1000
	dir := t.TempDir()
	executions := make([]atomic.Int32, n+1)
	cfg := Config{
		Shards: 2, Workers: 3, MaxBatch: 64,
		NewMem: mmapFactory(dir), MaxJobs: n,
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		// The sleep throttles the drain so the abandon below reliably
		// lands while most of the stream is still queued.
		fns[i] = func() { executions[id].Add(1); time.Sleep(100 * time.Microsecond) }
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "some progress", func() bool { return d1.Stats().Performed >= 100 })
	d1.abandon() // process death at the round boundary; queue not drained

	phase1 := 0
	for id := 1; id <= n; id++ {
		phase1 += int(executions[id].Load())
	}
	if phase1 >= n {
		t.Fatalf("phase 1 already drained everything (%d); crash came too late to test recovery", phase1)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	st := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	if st.Recovered != uint64(phase1) {
		t.Errorf("recovered %d, want %d", st.Recovered, phase1)
	}
	for id := 1; id <= n; id++ {
		if c := executions[id].Load(); c != 1 {
			t.Fatalf("job %d executed %d times across the crash", id, c)
		}
	}
}

// TestRecoverAfterCleanClose reopens a drained register file: the whole
// re-submitted stream must resolve from the journal without a single
// payload run (idempotent restart).
func TestRecoverAfterCleanClose(t *testing.T) {
	requireMmap(t)
	const n = 300
	dir := t.TempDir()
	cfg := Config{
		Shards: 2, Workers: 2, MaxBatch: 32,
		NewMem: mmapFactory(dir), MaxJobs: n,
	}
	var runs atomic.Int64
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		fns[i] = func() { runs.Add(1) }
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d1.Flush()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != n {
		t.Fatalf("first incarnation ran %d payloads, want %d", got, n)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	if got := runs.Load(); got != n {
		t.Fatalf("restart re-ran payloads: %d total runs, want %d", got, n)
	}
	if st := d2.Stats(); st.Recovered != n {
		t.Fatalf("Recovered = %d, want %d", st.Recovered, n)
	}
}

// TestReopenConfigMismatch: a register file written under one shape
// must be refused under another.
func TestReopenConfigMismatch(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	cfg := Config{
		Shards: 1, Workers: 2, MaxBatch: 32,
		NewMem: mmapFactory(dir), MaxJobs: 100,
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	d1.Flush()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// A shape with a different register-file size is refused by the
	// backend's header check.
	bad := cfg
	bad.Workers = 3
	bad.MaxBatch = 64
	if _, err := New(bad); err == nil {
		t.Fatal("reopen with different file size accepted")
	}
	// A shape with the SAME total size but different geometry gets past
	// the header and is refused by the fingerprint. With m=2 the cell
	// count is 8 + 2·MaxJobs + 16 (padded next array) + 2·MaxBatch;
	// trading one MaxBatch cell for one MaxJobs cell keeps it constant.
	sly := cfg
	sly.MaxJobs = cfg.MaxJobs + 1
	sly.MaxBatch = cfg.MaxBatch - 1
	if _, err := New(sly); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("size-preserving mismatched reopen: got %v", err)
	}
	// Shrinking the shard count must be refused too: shard 0's file has
	// the same size and geometry either way, but opening it under
	// Shards=1 would silently orphan the other shards' journals and
	// re-execute their jobs.
	multi := cfg
	multi.Shards = 2
	multi.NewMem = mmapFactory(t.TempDir()) // fresh files; shard0 above was written under Shards=1
	dm, err := New(multi)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}
	shrunk := multi
	shrunk.Shards = 1
	if _, err := New(shrunk); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("shrunk shard count reopen: got %v", err)
	}
	// The original shape still opens.
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()
}

// TestJournalFull: ids beyond MaxJobs are refused on both submit paths.
func TestJournalFull(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	d, err := New(Config{
		Shards: 1, Workers: 2, MaxBatch: 8,
		NewMem: mmapFactory(dir), MaxJobs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	// Ids beyond MaxJobs are refused; the failed lease moves nothing, so
	// no ids are burned and the journal capacity stays protected.
	if _, err := d.Submit(func() {}); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("submit past MaxJobs: got %v, want ErrJournalFull", err)
	}
	if _, err := d.SubmitBatch(make([]Job, 5)); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("batch past MaxJobs: got %v, want ErrJournalFull", err)
	}
	d.Flush()

	// Config sanity: NewMem without MaxJobs is rejected.
	if _, err := New(Config{NewMem: mmapFactory(dir)}); err == nil {
		t.Fatal("NewMem without MaxJobs accepted")
	}
}

// TestReopenAfterJournalFull: exhausting the journal is not a dead end
// — the same configuration reopens over the same files, the whole
// re-submitted stream resolves from the journal without re-running a
// payload, and the capacity guard still holds for genuinely new ids.
func TestReopenAfterJournalFull(t *testing.T) {
	requireMmap(t)
	const n = 24
	dir := t.TempDir()
	cfg := Config{
		Shards: 1, Workers: 2, MaxBatch: 8,
		NewMem: mmapFactory(dir), MaxJobs: n,
	}
	var runs atomic.Int64
	fns := make([]Job, n)
	for i := range fns {
		fns[i] = func() { runs.Add(1) }
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d1.Flush()
	if _, err := d1.Submit(func() {}); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("submit past MaxJobs: %v, want ErrJournalFull", err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen after ErrJournalFull refused: %v", err)
	}
	defer d2.Close()
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	if got := runs.Load(); got != n {
		t.Fatalf("restart re-ran payloads: %d total, want %d", got, n)
	}
	if st := d2.Stats(); st.Recovered != n {
		t.Fatalf("Recovered = %d, want %d", st.Recovered, n)
	}
	// The journal is still full: new ids keep being refused.
	if _, err := d2.Submit(func() {}); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("submit past MaxJobs after reopen: %v, want ErrJournalFull", err)
	}
}

// netFactory builds a Config.NewMem over an in-process register server,
// one namespace per shard, recording the clients so the test can sever
// them (simulating process death, which releases nothing until the
// lease is explicitly dropped or expires).
func netFactory(addr, ns string, clients *[]*netmem.NetMem) func(shard, size int) (membackend.Backend, error) {
	return func(shard, size int) (membackend.Backend, error) {
		m, err := netmem.Open(addr, size, netmem.Options{
			Namespace: fmt.Sprintf("%s.shard%d", ns, shard),
			LeaseTTL:  500 * time.Millisecond,
			OnFatal:   func(error) {}, // a dead client shows up as errors, not a test-killing panic
		})
		if err != nil {
			return nil, err
		}
		if clients != nil {
			*clients = append(*clients, m)
		}
		return m, nil
	}
}

// TestRecoverOverNetwork is TestRecoverMidRound transplanted onto the
// networked register service: the registers, the journal and the
// recovery scan all live on the other side of a TCP connection. The
// journal path runs through WriteAcked (record-then-do with the record
// acknowledged before the payload), the recovery scan through
// ReadRange, and the window reset through Fill.
func TestRecoverOverNetwork(t *testing.T) {
	const (
		n       = 600
		workers = 4
		killAt  = 24
	)
	srv := netmem.NewServer(netmem.ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ns := fmt.Sprintf("recover-%d", time.Now().UnixNano())
	executions := make([]atomic.Int32, n+1)

	// Phase 1: the doomed incarnation, frozen with every worker parked
	// inside a payload whose journal record is already acknowledged by
	// the server.
	var clients []*netmem.NetMem
	var performed, blocked atomic.Int64
	gate := make(chan struct{})
	d1, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 128,
		NewMem: netFactory(addr, ns, &clients), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			executions[id].Add(1)
			if performed.Add(1) >= killAt {
				blocked.Add(1)
				<-gate
			}
		}
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all workers frozen mid-round", func() bool { return blocked.Load() == workers })
	preCrash := performed.Load()
	// Sever the frozen incarnation's clients: the process is "dead", its
	// lease released. (Lease-expiry takeover without a release is the
	// netmem fencing tests' and examples/failover's territory.)
	for _, c := range clients {
		c.Close()
	}

	// Phase 2: a successor over the network recovers the journal and
	// finishes the stream.
	d2, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 128,
		NewMem: netFactory(addr, ns, nil), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	st := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	if st.Recovered != uint64(preCrash) {
		t.Errorf("recovered %d jobs over the network, want %d", st.Recovered, preCrash)
	}
	dup, lost := 0, 0
	for id := 1; id <= n; id++ {
		switch executions[id].Load() {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	if dup != 0 {
		t.Errorf("at-most-once violated across the networked crash: %d duplicates", dup)
	}
	if lost != 0 {
		t.Errorf("%d jobs lost across the networked crash", lost)
	}
}

// TestExpvar: the legacy expvar knob is now a thin adapter over the obs
// registry — one source of truth, registry-style keys.
func TestExpvar(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, Expvar: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	name := d.ExpvarName()
	if name == "" {
		t.Fatal("Expvar set but ExpvarName is empty")
	}
	if d.Registry() == nil {
		t.Fatal("Expvar no longer implies Metrics")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	for i := 0; i < 10; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	out := v.String()
	for _, field := range []string{
		`"amo_dispatcher_submitted_jobs_total{shard=\"0\"}":10`,
		`"amo_dispatcher_performed_jobs_total{shard=\"0\"}":10`,
		`"amo_dispatcher_rounds_total{shard=\"0\"}"`,
		`"amo_dispatcher_round_duration_seconds"`,
	} {
		if !strings.Contains(out, field) {
			t.Errorf("expvar output missing %s: %s", field, out)
		}
	}

	// Off by default.
	d2, err := New(Config{Shards: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.ExpvarName() != "" {
		t.Fatal("ExpvarName set without Config.Expvar")
	}
}

// TestDurableSync: Sync is callable on both durable and in-process
// dispatchers.
func TestDurableSync(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal("in-process Sync:", err)
	}
	d.Close()

	requireMmap(t)
	dd, err := New(Config{
		Shards: 1, Workers: 2, MaxBatch: 8,
		NewMem: mmapFactory(t.TempDir()), MaxJobs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dd.Close()
	if _, err := dd.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	dd.Flush()
	if err := dd.Sync(); err != nil {
		t.Fatal("durable Sync:", err)
	}
}

// TestGroupCommitRoundTrip: the happy path of JournalBatch > 1. With no
// crash, the end-of-round flush drains every claim buffer, so a clean
// close loses nothing: every job executes exactly once, every id is
// journaled, and a recovering incarnation skips them all.
func TestGroupCommitRoundTrip(t *testing.T) {
	requireMmap(t)
	const n = 2000
	dir := t.TempDir()
	executions := make([]atomic.Int32, n+1)
	cfg := Config{
		Shards: 1, Workers: 4, MaxBatch: 256,
		NewMem: mmapFactory(dir), MaxJobs: n, JournalBatch: 16,
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d1.Flush()
	journaled := d1.shards[0].journaled.Load()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if journaled != n {
		t.Errorf("journaled %d rows, want %d", journaled, n)
	}
	for id := 1; id <= n; id++ {
		if got := executions[id].Load(); got != 1 {
			t.Fatalf("job %d executed %d times before the restart, want 1", id, got)
		}
	}

	// Recovery: the identical stream resolves entirely from the journal.
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	st2 := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if st2.Recovered != n {
		t.Errorf("recovered %d jobs, want %d", st2.Recovered, n)
	}
	for id := 1; id <= n; id++ {
		if got := executions[id].Load(); got != 1 {
			t.Errorf("job %d executed %d times across the restart, want 1", id, got)
		}
	}
}

// TestGroupCommitCrashPlan: injected (cooperative) crashes with
// JournalBatch > 1. A crashed worker's open claim buffer is flushed by
// the runtime's end-of-round hook — journal then payloads — so
// algorithm-level crashes still lose nothing: every job executes exactly
// once, rounds carry residue, never duplicates.
func TestGroupCommitCrashPlan(t *testing.T) {
	requireMmap(t)
	const n = 1500
	executions := make([]atomic.Int32, n+1)
	d, err := New(Config{
		Shards: 1, Workers: 4, MaxBatch: 128,
		NewMem: mmapFactory(t.TempDir()), MaxJobs: n, JournalBatch: 8,
		CrashPlan: func(shard, round int) []uint64 {
			if round%2 == 1 {
				return nil
			}
			return []uint64{uint64(10 + round%37), 0, uint64(25 + round%17), 0}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	st := d.Stats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 0 {
		t.Errorf("round-level duplicates: %d", st.Duplicates)
	}
	if st.Crashes == 0 {
		t.Error("crash plan injected no crashes; the test exercised nothing")
	}
	for id := 1; id <= n; id++ {
		if got := executions[id].Load(); got != 1 {
			t.Errorf("job %d executed %d times, want 1", id, got)
		}
	}
}

// TestGroupCommitRecoverMidClaim is the widened crash window of
// JournalBatch > 1, in-process: the dispatcher freezes with workers
// parked inside deferred payloads — AFTER their claim batch's journal
// write, with sibling claims journaled but never run — and a recovering
// incarnation must produce ZERO duplicates while losing at most
// JournalBatch payloads per worker (journaled-but-unperformed jobs,
// which recovery counts performed; DESIGN.md §14's bound).
func TestGroupCommitRecoverMidClaim(t *testing.T) {
	requireMmap(t)
	const (
		n       = 2000
		workers = 4
		jbatch  = 16
		killAt  = 32
	)
	dir := t.TempDir()
	executions := make([]atomic.Int32, n+1)

	var performed, blocked atomic.Int64
	gate := make(chan struct{}) // never closed: d1's workers stay frozen
	cfg := Config{
		Shards: 1, Workers: workers, MaxBatch: 512,
		NewMem: mmapFactory(dir), MaxJobs: n, JournalBatch: jbatch,
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			executions[id].Add(1)
			if performed.Add(1) >= killAt {
				blocked.Add(1)
				<-gate
			}
		}
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all workers frozen mid-claim", func() bool { return blocked.Load() == workers })
	// d1 is abandoned without Close, like a killed process. Each frozen
	// worker sits inside a deferred payload, so its claim batch is
	// journaled but its remaining payloads never ran.

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fns {
		id := i + 1
		fns[i] = func() { executions[id].Add(1) }
	}
	if _, err := d2.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d2.Flush()
	st := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 0 {
		t.Errorf("round-level duplicates: %d", st.Duplicates)
	}
	dup, lost := 0, 0
	for id := 1; id <= n; id++ {
		switch executions[id].Load() {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	if dup != 0 {
		t.Errorf("at-most-once violated across the crash: %d duplicate executions", dup)
	}
	// The crash window: journaled-but-unperformed claims, at most
	// JournalBatch per worker (minus the payload each worker is frozen
	// inside, which DID run).
	if max := workers * jbatch; lost > max {
		t.Errorf("lost %d payloads across the crash, want ≤ %d (workers × JournalBatch)", lost, max)
	}
}
