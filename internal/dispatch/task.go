package dispatch

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Priority is a Task's scheduling class. Each shard keeps one ring per
// class and drains them strictly in priority order: a queued High job is
// always cut into a round before any queued Normal job, and Normal
// before Low. Within a class, order is FIFO (residue re-enters at the
// front of its own class). Strict ordering starves a lower class only
// while a higher one has work — an idle High ring costs Low nothing.
type Priority int8

const (
	// Normal is the default (zero-value) class; all v1 submissions use it.
	Normal Priority = 0
	// High jobs jump every queued Normal and Low job.
	High Priority = 1
	// Low jobs run only when no High or Normal work is queued — bulk or
	// best-effort background work.
	Low Priority = -1
)

// valid reports whether p is one of the three defined classes.
func (p Priority) valid() bool { return p == Normal || p == High || p == Low }

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Low:
		return "low"
	case Normal:
		return "normal"
	default:
		return fmt.Sprintf("Priority(%d)", int8(p))
	}
}

// Task is the v2 job descriptor: one payload plus its scheduling
// contract. It subsumes all four v1 submission paths (see Do).
type Task struct {
	// Fn is the payload, invoked at most once from a shard worker. The
	// context carries the Task's Deadline when one is set (Background
	// otherwise); the returned error does not affect at-most-once
	// accounting — the job counts performed either way — and is delivered
	// verbatim in the JobResult's Err.
	Fn func(context.Context) error
	// Deadline, when non-zero, bounds how long the job may wait in the
	// queue: expiry is decided at round-assembly time, so a job whose
	// deadline has passed when its shard cuts the next round is NEVER
	// started and resolves exactly once with Expired set and
	// Err = context.DeadlineExceeded. A job whose round has already
	// started always runs and counts as performed (at-most-once is
	// untouched: expiry can only turn "run once" into "run zero times").
	// A queued job due within the shard's promotion window is pulled
	// ahead of its class in deadline order so it gets its chance to run;
	// and when a class holds deadlined jobs but cannot be drained whole
	// in one round, the deadlined jobs lead the class earliest-first
	// (EDF), so of two same-priority deadlined jobs the earlier deadline
	// never runs in a later round.
	Deadline time.Time
	// Priority selects the scheduling class; the zero value is Normal.
	Priority Priority
	// Callback, when non-nil, is invoked exactly once with the job's
	// JobResult, after the Handle's Done channel is filled. It runs on
	// the performing shard's loop goroutine (keep it fast; do not call
	// the dispatcher's blocking methods from it) — or synchronously on
	// the submitting goroutine for journal-recovered jobs.
	Callback func(JobResult)
}

// Handle identifies an accepted Task: its dispatcher-wide id and its
// completion future.
type Handle struct {
	// ID is the job's dispatcher-wide id. Ids start at 1, and each
	// shard's single-submit sequence is dense (consecutive ids from
	// leased blocks — see the id-leasing notes in dispatch.go), so a
	// fixed submission order always reproduces the same ids.
	ID uint64

	ch chan JobResult
}

// Done returns the job's completion future: a 1-buffered channel that
// receives exactly one JobResult — when the payload has returned (Err
// carrying its error), when the deadline expired before the round
// started (Expired set), or immediately for journal-recovered jobs
// (Recovered set). The channel is never closed.
func (h Handle) Done() <-chan JobResult { return h.ch }

// ErrNilFn is returned by Do and DoBatch for a Task without a payload.
var ErrNilFn = errors.New("dispatch: Task.Fn is nil")

// entryOf validates a Task and converts it to its queue entry.
func entryOf(t Task) (entry, error) {
	if t.Fn == nil {
		return entry{}, ErrNilFn
	}
	if !t.Priority.valid() {
		return entry{}, fmt.Errorf("dispatch: unknown Priority(%d)", int8(t.Priority))
	}
	var dl int64
	if !t.Deadline.IsZero() {
		if dl = t.Deadline.UnixNano(); dl == 0 {
			// The Unix epoch is a real (long-past) deadline, but its
			// nanosecond value collides with the no-deadline sentinel;
			// nudge it so the job still expires.
			dl = -1
		}
	}
	return entry{fn: t.Fn, dl: dl, pri: t.Priority}, nil
}

// handleDone builds the single completion waiter for a Task: it fills
// the future first, then fires the callback.
func handleDone(ch chan JobResult, cb func(JobResult)) func(JobResult) {
	return func(r JobResult) {
		ch <- r
		if cb != nil {
			cb(r)
		}
	}
}

// Do submits one Task and returns its Handle. It is the single v2 entry
// point: Submit is Do with a bare payload, SubmitAsync is Handle.Done,
// SubmitCallback is Task.Callback, and deadlines/priorities have no v1
// equivalent. ctx governs ADMISSION: a cancelled or expired ctx releases
// a Block-policy submitter parked on a full queue — and a concurrent
// Close releases it with ErrClosed — in both cases without consuming a
// job id, so id assignment stays dense for deterministic re-submission.
// Once Do returns nil, the Task is accepted and will resolve exactly
// once; a ctx that dies while the Task is still QUEUED resolves it with
// Cancelled set and ctx's error at the shard's next round assembly —
// the cooperative cancellation fast-path, mirroring deadline expiry:
// decided before the job is started, so the payload never runs. A Task
// whose round has already been cut runs to completion regardless of
// ctx (at-most-once is untouched: cancellation only ever turns "run
// once" into "run zero times").
func (d *Dispatcher) Do(ctx context.Context, t Task) (Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e, err := entryOf(t)
	if err != nil {
		return Handle{}, err
	}
	ch := make(chan JobResult, 1)
	id, err := d.do(ctx, e, handleDone(ch, t.Callback))
	if err != nil {
		return Handle{}, err
	}
	return Handle{ID: id, ch: ch}, nil
}

// DoBatch submits the Tasks in order and returns one Handle per Task;
// their ids form a contiguous block. An empty batch returns (nil, nil)
// without consuming a job id or touching a shard — note the contrast
// with real ids, which start at 1. Acceptance is all-or-nothing exactly
// as for SubmitBatch. ctx is checked only BEFORE acceptance (a dead ctx
// rejects the batch with nothing consumed); unlike Do's abortable
// single-job admission, an accepted Block-policy batch consumes its ids
// up front and is fed in un-abortably as rounds free space, and every
// Handle resolves exactly once regardless of ctx.
func (d *Dispatcher) DoBatch(ctx context.Context, tasks []Task) ([]Handle, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	entries := make([]entry, len(tasks))
	for i := range tasks {
		e, err := entryOf(tasks[i])
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
		entries[i] = e
	}
	handles := make([]Handle, len(tasks))
	dones := make([]func(JobResult), len(tasks))
	for i := range tasks {
		ch := make(chan JobResult, 1)
		handles[i] = Handle{ch: ch}
		dones[i] = handleDone(ch, tasks[i].Callback)
	}
	first, err := d.doBatch(ctx, len(tasks),
		func(i int) entry { return entries[i] },
		func(i int) func(JobResult) { return dones[i] })
	if err != nil {
		return nil, err
	}
	for i := range handles {
		handles[i].ID = first + uint64(i)
	}
	return handles, nil
}
