package dispatch

import (
	"sync/atomic"
	"testing"
)

// TestEffBucket pins the histogram's bucket boundaries: bucket i holds
// loss fractions in (2⁻⁽ⁱ⁺¹⁾, 2⁻ⁱ], the last bucket is loss 0.
func TestEffBucket(t *testing.T) {
	cases := []struct {
		performed, batch, want int
	}{
		{100, 100, EffBuckets - 1}, // perfect
		{1, 1, EffBuckets - 1},
		{0, 100, 0}, // total loss
		{0, 1, 0},
		{49, 100, 0},                         // loss 0.51 > 1/2
		{50, 100, 1},                         // loss 0.50 ∈ (1/4, 1/2]
		{75, 100, 2},                         // loss 0.25 ∈ (1/8, 1/4]
		{99, 100, 6},                         // loss 0.01 ∈ (2⁻⁷, 2⁻⁶]
		{1023, 1024, EffBuckets - 2},         // loss 2⁻¹⁰ lands in the sweep-up bucket
		{1 << 20, 1<<20 + 1, EffBuckets - 2}, // tinier loss clamps there too
	}
	for _, c := range cases {
		if got := effBucket(c.performed, c.batch); got != c.want {
			t.Errorf("effBucket(%d, %d) = %d, want %d", c.performed, c.batch, got, c.want)
		}
	}
}

// TestEffHistCountsRounds: every executed round lands in exactly one
// bucket, crash-injected rounds included, and the aggregate equals the
// per-shard sums.
func TestEffHistCountsRounds(t *testing.T) {
	var ran atomic.Int64
	d, err := New(Config{
		Shards: 2, Workers: 3, MaxBatch: 32,
		Seed: 7,
		// Crash two of three workers early in every shard's first three
		// rounds, so imperfect rounds are guaranteed to occur.
		CrashPlan: func(shard, round int) []uint64 {
			if round < 3 {
				return []uint64{2, 2, 0}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, 500)
	for i := range fns {
		fns[i] = func() { ran.Add(1) }
	}
	if _, err := d.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	st := d.Stats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 500 {
		t.Fatalf("ran %d payloads, want 500", ran.Load())
	}
	var sum, shardSum uint64
	for _, n := range st.EffHist {
		sum += n
	}
	for _, sh := range st.Shards {
		for _, n := range sh.EffHist {
			shardSum += n
		}
	}
	if sum != st.Rounds {
		t.Fatalf("EffHist sums to %d, want Rounds = %d (hist %v)", sum, st.Rounds, st.EffHist)
	}
	if shardSum != sum {
		t.Fatalf("per-shard histograms sum to %d, aggregate says %d", shardSum, sum)
	}
	if st.Crashes == 0 {
		t.Fatal("crash plan injected no crashes; the imperfect-round premise is broken")
	}
	var imperfect uint64
	for b := 0; b < EffBuckets-1; b++ {
		imperfect += st.EffHist[b]
	}
	if imperfect == 0 {
		t.Fatalf("no imperfect rounds recorded despite %d crashes (hist %v)", st.Crashes, st.EffHist)
	}
}
