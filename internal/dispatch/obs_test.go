package dispatch

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"atmostonce/internal/obs"
)

// TestMetricsEndToEnd: a Metrics dispatcher populates its registry with
// counters that reconcile against Stats, and the exposition it would
// serve is valid Prometheus text.
func TestMetricsEndToEnd(t *testing.T) {
	d, err := New(Config{Shards: 2, Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()

	reg := d.Registry()
	if reg == nil {
		t.Fatal("Metrics set but Registry is nil")
	}
	snap := reg.Snapshot()
	var submitted, performed, rounds uint64
	for k, v := range snap {
		u, ok := v.(uint64)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(k, "amo_dispatcher_submitted_jobs_total"):
			submitted += u
		case strings.HasPrefix(k, "amo_dispatcher_performed_jobs_total"):
			performed += u
		case strings.HasPrefix(k, "amo_dispatcher_rounds_total"):
			rounds += u
		}
	}
	if submitted != n || performed != n {
		t.Fatalf("registry saw submitted=%d performed=%d, want %d/%d", submitted, performed, n, n)
	}
	if rounds == 0 {
		t.Fatal("registry saw zero rounds after a flush")
	}
	st := d.Stats()
	if st.Rounds != rounds {
		t.Fatalf("registry rounds %d != Stats rounds %d", rounds, st.Rounds)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("dispatcher exposition does not parse: %v", err)
	}
	if !strings.Contains(buf.String(), "# TYPE amo_dispatcher_round_duration_seconds histogram") {
		t.Fatal("round-duration histogram missing from exposition")
	}
}

// TestLatencyQuantiles: enough submissions cross the 1-in-16 sample
// mask to yield non-zero latency quantiles.
func TestLatencyQuantiles(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, ok := d.LatencyQuantiles(0.5); ok {
		t.Fatal("quantiles reported before any job completed")
	}
	for i := 0; i < 64; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	qs, ok := d.LatencyQuantiles(0.5, 0.99)
	if !ok {
		t.Fatal("no latency samples after 64 jobs (mask samples 1 in 16)")
	}
	if len(qs) != 2 || qs[0] <= 0 || qs[1] < qs[0] {
		t.Fatalf("implausible quantiles %v", qs)
	}
}

// TestQueueDepthGaugeConsistent: the queue-depth gauge and Stats read
// the same locked snapshot, so after Flush both must agree on zero.
func TestQueueDepthGaugeConsistent(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 50; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	if depth := d.Stats().Shards[0].QueueDepth; depth != 0 {
		t.Fatalf("Stats queue depth %d after Flush", depth)
	}
	snap := d.Registry().Snapshot()
	if v, ok := snap[`amo_dispatcher_queue_depth{shard="0"}`]; !ok {
		t.Fatal("queue-depth gauge not in snapshot")
	} else if f := v.(float64); f != 0 {
		t.Fatalf("queue-depth gauge %v after Flush", f)
	}
}

// eventsOf collects one timeline's event codes in recorded order.
func eventsOf(tl obs.Timeline) []obs.TraceEvent {
	evs := make([]obs.TraceEvent, len(tl.Events))
	for i, e := range tl.Events {
		evs[i] = e.Event
	}
	return evs
}

// TestTraceOrdering: with full sampling over a durable dispatcher,
// every traced job's timeline obeys the at-most-once event grammar:
// Submitted first, Queued before Started, Started at most once and
// followed by Journaled, and exactly one terminal Resolved.
func TestTraceOrdering(t *testing.T) {
	dir := t.TempDir()
	const n = 60
	d, err := New(Config{
		Shards: 2, Workers: 2,
		NewMem: mmapFactory(dir), MaxJobs: 4 * n, // headroom for 2 shards' id-block leases
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < n; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()

	tls := d.Tracer().Timelines()
	if len(tls) != n {
		t.Fatalf("traced %d jobs, want %d at full sampling", len(tls), n)
	}
	for _, tl := range tls {
		evs := eventsOf(tl)
		if evs[0] != obs.TraceSubmitted {
			t.Fatalf("job %d: first event %v, want Submitted (%v)", tl.ID, evs[0], evs)
		}
		var started, resolved, queuedAt, startedAt int
		queuedAt, startedAt = -1, -1
		for i, ev := range evs {
			switch ev {
			case obs.TraceQueued:
				if queuedAt < 0 {
					queuedAt = i
				}
			case obs.TraceStarted:
				started++
				startedAt = i
			case obs.TraceJournaled:
				if startedAt < 0 || i < startedAt {
					t.Fatalf("job %d: Journaled before Started (%v)", tl.ID, evs)
				}
			case obs.TraceResolved:
				resolved++
				if i != len(evs)-1 {
					t.Fatalf("job %d: Resolved is not terminal (%v)", tl.ID, evs)
				}
			}
		}
		if started > 1 {
			t.Fatalf("job %d: Started %d times — at-most-once violated in trace (%v)", tl.ID, started, evs)
		}
		if resolved != 1 {
			t.Fatalf("job %d: %d Resolved events, want exactly 1 (%v)", tl.ID, resolved, evs)
		}
		if started == 1 && (queuedAt < 0 || queuedAt > startedAt) {
			t.Fatalf("job %d: Started without a preceding Queued (%v)", tl.ID, evs)
		}
	}
}

// TestTraceExpired: a job whose deadline passed before round assembly
// gets a terminal Expired event and never a Started one.
func TestTraceExpired(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, TraceSampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	h, err := d.Do(t.Context(), Task{
		Fn:       func(ctx context.Context) error { return nil },
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done()
	if !res.Expired {
		t.Fatalf("job not expired: %+v", res)
	}
	d.Flush()
	entries := d.Tracer().Timeline(h.ID)
	if len(entries) == 0 {
		t.Fatal("expired job left no timeline at full sampling")
	}
	var sawExpired bool
	for _, e := range entries {
		if e.Event == obs.TraceStarted {
			t.Fatal("expired job has a Started event")
		}
		if e.Event == obs.TraceExpired {
			sawExpired = true
		}
	}
	if !sawExpired {
		t.Fatal("expired job missing Expired event")
	}
}

// TestOpsEndpoint: a dispatcher with MetricsAddr serves /metrics with
// both the dispatcher's own registry and the process-default families
// (membackend registers there at init), /healthz flips to 503 on
// Close, and OpsAddr reports the bound port.
func TestOpsEndpoint(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := d.OpsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr set but OpsAddr is empty")
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, b
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d on a live dispatcher", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if _, err := obs.ParseExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	for _, family := range []string{"# TYPE amo_dispatcher_", "# TYPE amo_membackend_"} {
		if !bytes.Contains(body, []byte(family)) {
			t.Fatalf("/metrics missing %q family", family)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The listener closes with the dispatcher.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("ops endpoint still serving after Close")
	}
}
