package dispatch

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkDispatcherThroughput measures end-to-end streaming throughput
// (reported as jobs/sec) across shard × worker × batch shapes. Run with
// -benchmem: the b.N loop submits and drains jobs through warm pools, so
// steady-state allocations per job round to zero.
func BenchmarkDispatcherThroughput(b *testing.B) {
	shapes := []struct{ shards, workers, batch int }{
		{1, 4, 1024},
		{2, 4, 1024},
		{4, 4, 1024},
		{4, 8, 4096},
	}
	for _, sh := range shapes {
		name := fmt.Sprintf("S%d_m%d_b%d", sh.shards, sh.workers, sh.batch)
		b.Run(name, func(b *testing.B) {
			d, err := New(Config{Shards: sh.shards, Workers: sh.workers, MaxBatch: sh.batch})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			var count atomic.Uint64
			job := Job(func() { count.Add(1) })
			fns := make([]Job, 2048)
			for i := range fns {
				fns[i] = job
			}
			// Warm the pools, queues and set-node arenas out of the timed
			// region.
			if _, err := d.SubmitBatch(fns); err != nil {
				b.Fatal(err)
			}
			d.Flush()
			count.Store(0)
			b.ReportAllocs()
			b.ResetTimer()
			submitted := 0
			for submitted < b.N {
				n := len(fns)
				if rem := b.N - submitted; rem < n {
					n = rem
				}
				if _, err := d.SubmitBatch(fns[:n]); err != nil {
					b.Fatal(err)
				}
				submitted += n
			}
			d.Flush()
			b.StopTimer()
			if got := count.Load(); got != uint64(b.N) {
				b.Fatalf("performed %d of %d", got, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
		})
	}
}
