package dispatch

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTakeClassEDF drives takeClass directly: when a priority ring
// holds deadlined entries and cannot be drained whole in one round, the
// deadlined entries must lead the class in deadline order (EDF), with
// the overflow returned to the front still deadline-sorted — and
// already-expired entries must resolve, never run.
func TestTakeClassEDF(t *testing.T) {
	now := time.Now().UnixNano()
	h := time.Hour.Nanoseconds()
	s := &shard{batch: make([]entry, 4)}
	// Same class (Normal), submission order 3h, 4h, 2h, plus one
	// undeadlined entry FIFO-first.
	s.q.pushBack(entry{id: 10, pri: Normal})
	s.q.pushBack(entry{id: 1, pri: Normal, dl: now + 3*h})
	s.q.pushBack(entry{id: 2, pri: Normal, dl: now + 4*h})
	s.q.pushBack(entry{id: 3, pri: Normal, dl: now + 2*h})

	ri := ringIndex(Normal)
	n := s.takeClass(ri, 0, 2, now)
	if n != 2 {
		t.Fatalf("round 1 took %d, want 2", n)
	}
	if s.batch[0].id != 3 || s.batch[1].id != 1 {
		t.Fatalf("round 1 batch ids [%d %d], want [3 1] (earliest deadlines first)", s.batch[0].id, s.batch[1].id)
	}
	// Overflow (4h job, then the undeadlined one) went back to the front
	// in deadline order; a second assembly picks it up next.
	n = s.takeClass(ri, 0, 2, now)
	if n != 2 {
		t.Fatalf("round 2 took %d, want 2", n)
	}
	if s.batch[0].id != 2 || s.batch[1].id != 10 {
		t.Fatalf("round 2 batch ids [%d %d], want [2 10] (last deadline, then FIFO remainder)", s.batch[0].id, s.batch[1].id)
	}
	if s.q.len() != 0 {
		t.Fatalf("%d entries left in the queue", s.q.len())
	}

	// FIFO is preserved whenever the class fits in the round, deadlines
	// or not.
	s.q.pushBack(entry{id: 20, pri: Normal, dl: now + 4*h})
	s.q.pushBack(entry{id: 21, pri: Normal, dl: now + 2*h})
	n = s.takeClass(ri, 0, 4, now)
	if n != 2 || s.batch[0].id != 20 || s.batch[1].id != 21 {
		t.Fatalf("untruncated class reordered: n=%d ids [%d %d], want FIFO [20 21]", n, s.batch[0].id, s.batch[1].id)
	}

	// An entry already past its deadline expires during the EDF pull.
	s.expired = s.expired[:0]
	s.q.pushBack(entry{id: 30, pri: Normal, dl: now - 1})
	s.q.pushBack(entry{id: 31, pri: Normal, dl: now + h})
	s.q.pushBack(entry{id: 32, pri: Normal})
	n = s.takeClass(ri, 0, 2, now)
	if n != 2 || s.batch[0].id != 31 || s.batch[1].id != 32 {
		t.Fatalf("expiring pull: n=%d ids [%d %d], want [31 32]", n, s.batch[0].id, s.batch[1].id)
	}
	if len(s.expired) != 1 || s.expired[0].ID != 30 || !s.expired[0].Expired {
		t.Fatalf("expired slice %+v, want exactly id 30", s.expired)
	}
}

// TestEDFOrderWithinClass is the end-to-end version: two same-priority
// deadlined jobs (deadlines far beyond the promotion window, so only
// round truncation can order them) must run in deadline order, not
// submission order. With MaxBatch=2 and three queued jobs the class is
// truncated every round; FIFO assembly would run the 2h job last,
// EDF runs it first.
func TestEDFOrderWithinClass(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Wedge the current round so the three deadline jobs accumulate and
	// are assembled together.
	if _, err := d.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)

	var mu sync.Mutex
	var order []string
	now := time.Now()
	mk := func(name string, dl time.Duration) {
		t.Helper()
		_, err := d.Do(context.Background(), Task{
			Fn:       func(context.Context) error { return nil },
			Deadline: now.Add(dl),
			Callback: func(JobResult) {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("d3h", 3*time.Hour)
	mk("d4h", 4*time.Hour)
	mk("d2h", 2*time.Hour)
	close(gate)
	d.Flush()

	mu.Lock()
	defer mu.Unlock()
	pos := map[string]int{}
	for i, name := range order {
		pos[name] = i
	}
	if len(pos) != 3 {
		t.Fatalf("resolutions %v, want all three deadline jobs exactly once", order)
	}
	// EDF: the 2h job is pulled into the first post-gate round, the 4h
	// job is pushed to the last. FIFO would give the opposite.
	if pos["d2h"] > pos["d4h"] {
		t.Fatalf("completion order %v: the 2h-deadline job finished after the 4h one (submission order won over deadline order)", order)
	}
}
