package dispatch

import (
	"fmt"
	"hash/fnv"
	"time"

	"atmostonce/internal/core"
	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

// Durable shard state. When Config.NewMem supplies a register backend,
// each shard lays its register file out as
//
//	cell 0                 — config fingerprint (shard id, shard count,
//	                         m, MaxBatch, MaxJobs folded through FNV;
//	                         reopening with a different shape is refused)
//	cells 1..jmetaCells-1  — reserved
//	m rows × MaxJobs cells — the durable journal: worker p appends the
//	                         dispatcher-wide id of every job it performs
//	                         to row p, in order, before invoking the
//	                         payload
//	the rest               — the conc.Runtime register layout (cache-
//	                         line-padded next array + done matrix) at
//	                         base jbase+m·MaxJobs
//
// The journal rows mirror the paper's done matrix — single-writer
// ownership registers, append-only within a row — but hold durable
// dispatcher-wide ids instead of the round's dense local ids, so a
// recovery scan (scan each row to its first zero) reconstructs exactly
// which jobs were ever performed, across every round and every process
// incarnation. See DESIGN.md §7 for the protocol and its crash-window
// analysis.
const jmetaCells = 8

// fingerprint folds a shard's layout-determining configuration into a
// positive int64 stored at cell 0 of its register file. The shard COUNT
// is included even though it does not shape this file: reopening a
// 2-shard register-file set with Shards=1 would silently ignore shard
// 1's journal and re-execute its jobs, so any shape change is refused.
func fingerprint(shard, shards, m, maxBatch, maxJobs int) int64 {
	h := fnv.New64a()
	// v2: the runtime window moved to the cache-line-padded register
	// layout, so v1 files (packed next array) are not interpretable.
	fmt.Fprintf(h, "amo-dispatch-v2/%d of %d/%d/%d/%d", shard, shards, m, maxBatch, maxJobs)
	return int64(h.Sum64() >> 1) // keep it positive and distinct from the empty cell
}

// jaddr returns the journal cell for worker p's idx-th performed job
// (p 1-based, idx 0-based).
func (s *shard) jaddr(p, idx int) int { return jmetaCells + (p-1)*s.jlen + idx }

// openDurable builds the shard's backend, validates or initializes its
// metadata and, when the backend holds pre-crash state, recovers it:
// the journal rows are scanned for performed job ids (returned to the
// caller), the per-worker append cursors are rebuilt, and the runtime's
// register window is re-zeroed so the next round starts from the model's
// initial state.
func (s *shard) openDurable(cfg *Config) (recovered []uint64, err error) {
	m, maxBatch, maxJobs := cfg.Workers, cfg.MaxBatch, cfg.MaxJobs
	// Padded, matching the layout conc.NewRuntime builds over this window.
	lay := core.Layout{M: m, RowLen: maxBatch}.Padded()
	jbase := jmetaCells + m*maxJobs
	size := jbase + lay.Size()
	b, err := cfg.NewMem(s.id, size)
	if err != nil {
		return nil, fmt.Errorf("dispatch: shard %d backend: %w", s.id, err)
	}
	if b.Size() < size {
		b.Close()
		return nil, fmt.Errorf("dispatch: shard %d backend holds %d cells, need %d", s.id, b.Size(), size)
	}
	s.backend = b
	s.durable = true
	s.jlen = maxJobs
	s.jcur = make([]int, m)
	s.rbase = jbase
	s.ackedW, _ = b.(membackend.AckedWriter)
	s.journalW, _ = b.(membackend.JournalWriter)
	s.batchJournalW, _ = b.(membackend.BatchJournalWriter)
	s.jbatch = cfg.JournalBatch
	if s.jbatch > 1 {
		// Claim buffers are sized once; the round path appends into them
		// without ever growing (flush fires at jbatch).
		s.claims = make([]workerClaims, m)
		for p := range s.claims {
			s.claims[p].ids = make([]uint64, 0, s.jbatch)
			s.claims[p].locals = make([]int, 0, s.jbatch)
		}
	}

	fp := fingerprint(s.id, cfg.Shards, m, maxBatch, maxJobs)
	if r, ok := b.(membackend.Reopener); ok && r.Reopened() {
		if got := b.Read(0); got != fp {
			b.Close()
			eventlog.Logger().Error("dispatch_fingerprint_mismatch",
				"shard", s.id, "got", fmt.Sprintf("%#x", got), "want", fmt.Sprintf("%#x", fp))
			return nil, fmt.Errorf("dispatch: shard %d register file was written by a different configuration (fingerprint %#x, want %#x); use the original Shards/Workers/MaxBatch/MaxJobs or start from a fresh file",
				s.id, got, fp)
		}
		scan0 := time.Now()
		eventlog.Logger().Info("dispatch_recovery_scan_begin", "shard", s.id, "workers", m)
		for p := 1; p <= m; p++ {
			n, err := s.scanJournalRow(p, &recovered)
			if err != nil {
				b.Close()
				eventlog.Logger().Error("dispatch_recovery_scan_failed", "shard", s.id, "row", p, "err", err)
				return nil, fmt.Errorf("dispatch: shard %d journal scan: %w", s.id, err)
			}
			s.jcur[p-1] = n
		}
		// The crash may have left a round in flight: the runtime window
		// holds that round's next/done registers. The journal already
		// accounts for every performed job, so the window is just dirt —
		// restore the model's all-zero initial state.
		if err := s.zeroWindow(jbase, size); err != nil {
			b.Close()
			return nil, fmt.Errorf("dispatch: shard %d window reset: %w", s.id, err)
		}
		if s.d.recoveryHist != nil {
			s.d.recoveryHist.Observe(uint64(time.Since(scan0)))
		}
		eventlog.Logger().Info("dispatch_recovery_scan_end",
			"shard", s.id, "recovered", len(recovered), "dur", time.Since(scan0))
	} else {
		b.Write(0, fp)
	}
	return recovered, nil
}

// scanChunk sizes the journal-scan range reads: big enough that a
// remote row costs a handful of round trips, small enough not to drag
// megabytes for a nearly-empty row.
const scanChunk = 4096

// scanJournalRow reads worker p's journal row up to its first zero,
// appending the recovered ids. Over a RangeReader backend (remote) it
// pulls chunks instead of cells — the difference between O(row) network
// round trips and O(row/scanChunk).
func (s *shard) scanJournalRow(p int, recovered *[]uint64) (n int, err error) {
	rr, batched := s.backend.(membackend.RangeReader)
	var chunk []int64
	if batched {
		chunk = make([]int64, scanChunk)
	}
	for n < s.jlen {
		if !batched {
			id := s.backend.Read(s.jaddr(p, n))
			if id == 0 {
				return n, nil
			}
			*recovered = append(*recovered, uint64(id))
			n++
			continue
		}
		m := s.jlen - n
		if m > scanChunk {
			m = scanChunk
		}
		if err := rr.ReadRange(s.jaddr(p, n), chunk[:m]); err != nil {
			return n, err
		}
		for _, id := range chunk[:m] {
			if id == 0 {
				return n, nil
			}
			*recovered = append(*recovered, uint64(id))
			n++
		}
	}
	return n, nil
}

// zeroWindow restores the runtime register window [lo, hi) to the
// model's initial all-zero state, in one operation when the backend can
// Fill.
func (s *shard) zeroWindow(lo, hi int) error {
	if f, ok := s.backend.(membackend.Filler); ok {
		return f.Fill(lo, hi-lo, 0)
	}
	for a := lo; a < hi; a++ {
		if s.backend.Read(a) != 0 {
			s.backend.Write(a, 0)
		}
	}
	return nil
}

// journal durably records that worker p performed the job in batch slot
// local-1, before the payload runs. Crash ordering: record-then-do. A
// process killed between the two re-performs nothing on recovery — the
// at-most-once guarantee is absolute — at the price of counting the job
// performed even though its payload never ran, the same way the paper's
// crashes cost effectiveness, never safety (Theorem 2.1 makes that
// trade unavoidable). Cooperative crashes (injected via CrashPlan, or
// any stop at action granularity, the paper's model §2.1) sit outside
// the record/do window, so they lose nothing.
//
// Over a backend with an AckedWriter (the networked register service),
// the record must be ACKNOWLEDGED before the payload runs: a pipelined
// write still sitting in a buffer when the process dies would let the
// successor re-run a job whose payload already executed — a duplicate.
// A failed acked write (connection dead after retries, or fenced by a
// successor's lease) panics: this worker's process has lost the right
// to execute payloads, and dying before the payload is exactly the
// crash the recovery protocol is built to absorb.
func (s *shard) journal(p int, id uint64) {
	idx := s.jcur[p-1] // p's row is single-writer; no synchronization needed
	if idx >= s.jlen {
		// Unreachable while the Submit-side MaxJobs guard holds: every id
		// is journaled at most once across all rows and incarnations, so a
		// row never outgrows MaxJobs. Fail loudly rather than overwrite a
		// neighbouring row.
		eventlog.CrashDump("dispatch_journal_overflow", "shard", s.id, "row", p, "max_jobs", s.jlen)
		panic(fmt.Sprintf("dispatch: shard %d journal row %d overflow (MaxJobs %d)", s.id, p, s.jlen))
	}
	switch {
	case s.journalW != nil:
		// The journal-aware capability carries the job id on the wire,
		// so a remote register server witnesses the write in its own
		// tracer — the stitching anchor for this job's cross-process
		// timeline.
		if err := s.journalW.JournalWrite(s.jaddr(p, idx), id); err != nil {
			eventlog.CrashDump("dispatch_journal_write_failed", "shard", s.id, "job", id, "err", err)
			panic(fmt.Sprintf("dispatch: shard %d journal write for job %d failed (fenced or unreachable backend): %v", s.id, id, err))
		}
	case s.ackedW != nil:
		if err := s.ackedW.WriteAcked(s.jaddr(p, idx), int64(id)); err != nil {
			eventlog.CrashDump("dispatch_journal_write_failed", "shard", s.id, "job", id, "err", err)
			panic(fmt.Sprintf("dispatch: shard %d journal write for job %d failed (fenced or unreachable backend): %v", s.id, id, err))
		}
	default:
		s.mem.Write(s.jaddr(p, idx), int64(id))
	}
	s.jcur[p-1] = idx + 1
	s.journaled.Add(1)
}

// workerClaims is one worker's open group-commit buffer: jobs marked
// done in the round whose journal records and payloads are deferred to
// the next flush. ids and locals move in lockstep; both are sized to
// Config.JournalBatch at construction and never grow.
type workerClaims struct {
	ids    []uint64 // dispatcher-wide ids, journaled in one vectored write
	locals []int    // matching batch slots, payloads run after the write
}

// claim appends one job to worker p's group-commit buffer, flushing when
// the buffer reaches JournalBatch. Called only from exec on p's own
// goroutine.
func (s *shard) claim(p, local int) {
	c := &s.claims[p-1]
	c.ids = append(c.ids, s.batch[local-1].id)
	c.locals = append(c.locals, local)
	if len(c.ids) >= s.jbatch {
		s.flushClaims(p)
	}
}

// flushClaims is the group commit: journal every claimed id of worker p
// in ONE vectored acked write (the batch capability when the backend has
// one, per-cell acked writes otherwise), then run the deferred payloads
// in claim order. Record-then-do holds for the whole batch — no payload
// runs before the batch's journal write returns — so a crash anywhere
// in the window costs at most JournalBatch payloads per worker
// (journaled, counted performed by recovery, never run: effectiveness
// loss), and never a duplicate. It runs on worker p's goroutine, either
// from claim (buffer full) or from the runtime's end-of-round Flush
// hook; between rounds every buffer is empty.
func (s *shard) flushClaims(p int) {
	c := &s.claims[p-1]
	k := len(c.ids)
	if k == 0 {
		return
	}
	idx := s.jcur[p-1] // p's row is single-writer; no synchronization needed
	if idx+k > s.jlen {
		eventlog.CrashDump("dispatch_journal_overflow",
			"shard", s.id, "row", p, "claimed", k, "max_jobs", s.jlen)
		panic(fmt.Sprintf("dispatch: shard %d journal row %d overflow (%d claimed at %d, MaxJobs %d)",
			s.id, p, k, idx, s.jlen))
	}
	addr := s.jaddr(p, idx)
	switch {
	case s.batchJournalW != nil:
		if err := s.batchJournalW.JournalWriteBatch(addr, c.ids); err != nil {
			s.journalFail(c.ids[0], err)
		}
	case s.journalW != nil:
		for i, id := range c.ids {
			if err := s.journalW.JournalWrite(addr+i, id); err != nil {
				s.journalFail(id, err)
			}
		}
	case s.ackedW != nil:
		for i, id := range c.ids {
			if err := s.ackedW.WriteAcked(addr+i, int64(id)); err != nil {
				s.journalFail(id, err)
			}
		}
	default:
		for i, id := range c.ids {
			s.mem.Write(addr+i, int64(id))
		}
	}
	s.jcur[p-1] = idx + k
	s.journaled.Add(uint64(k))
	tr := s.d.tr
	for _, local := range c.locals {
		e := &s.batch[local-1]
		if tr != nil {
			tr.Record(e.id, obs.TraceJournaled, s.id)
		}
		s.runPayload(e)
	}
	c.ids = c.ids[:0]
	c.locals = c.locals[:0]
}

// journalFail is the shared death path of a failed journal write: the
// backend is fenced or unreachable, so this process has lost the right
// to run payloads — dying before them is exactly the crash recovery
// absorbs.
func (s *shard) journalFail(id uint64, err error) {
	eventlog.CrashDump("dispatch_journal_write_failed", "shard", s.id, "job", id, "err", err)
	panic(fmt.Sprintf("dispatch: shard %d journal write for job %d failed (fenced or unreachable backend): %v", s.id, id, err))
}
