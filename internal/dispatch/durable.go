package dispatch

import (
	"fmt"
	"hash/fnv"

	"atmostonce/internal/core"
	"atmostonce/internal/membackend"
)

// Durable shard state. When Config.NewMem supplies a register backend,
// each shard lays its register file out as
//
//	cell 0                 — config fingerprint (shard id, shard count,
//	                         m, MaxBatch, MaxJobs folded through FNV;
//	                         reopening with a different shape is refused)
//	cells 1..jmetaCells-1  — reserved
//	m rows × MaxJobs cells — the durable journal: worker p appends the
//	                         dispatcher-wide id of every job it performs
//	                         to row p, in order, before invoking the
//	                         payload
//	the rest               — the conc.Runtime register layout (next
//	                         array + done matrix) at base jbase+m·MaxJobs
//
// The journal rows mirror the paper's done matrix — single-writer
// ownership registers, append-only within a row — but hold durable
// dispatcher-wide ids instead of the round's dense local ids, so a
// recovery scan (scan each row to its first zero) reconstructs exactly
// which jobs were ever performed, across every round and every process
// incarnation. See DESIGN.md §7 for the protocol and its crash-window
// analysis.
const jmetaCells = 8

// fingerprint folds a shard's layout-determining configuration into a
// positive int64 stored at cell 0 of its register file. The shard COUNT
// is included even though it does not shape this file: reopening a
// 2-shard register-file set with Shards=1 would silently ignore shard
// 1's journal and re-execute its jobs, so any shape change is refused.
func fingerprint(shard, shards, m, maxBatch, maxJobs int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "amo-dispatch-v1/%d of %d/%d/%d/%d", shard, shards, m, maxBatch, maxJobs)
	return int64(h.Sum64() >> 1) // keep it positive and distinct from the empty cell
}

// jaddr returns the journal cell for worker p's idx-th performed job
// (p 1-based, idx 0-based).
func (s *shard) jaddr(p, idx int) int { return jmetaCells + (p-1)*s.jlen + idx }

// openDurable builds the shard's backend, validates or initializes its
// metadata and, when the backend holds pre-crash state, recovers it:
// the journal rows are scanned for performed job ids (returned to the
// caller), the per-worker append cursors are rebuilt, and the runtime's
// register window is re-zeroed so the next round starts from the model's
// initial state.
func (s *shard) openDurable(cfg *Config) (recovered []uint64, err error) {
	m, maxBatch, maxJobs := cfg.Workers, cfg.MaxBatch, cfg.MaxJobs
	lay := core.Layout{M: m, RowLen: maxBatch}
	jbase := jmetaCells + m*maxJobs
	size := jbase + lay.Size()
	b, err := cfg.NewMem(s.id, size)
	if err != nil {
		return nil, fmt.Errorf("dispatch: shard %d backend: %w", s.id, err)
	}
	if b.Size() < size {
		b.Close()
		return nil, fmt.Errorf("dispatch: shard %d backend holds %d cells, need %d", s.id, b.Size(), size)
	}
	s.backend = b
	s.durable = true
	s.jlen = maxJobs
	s.jcur = make([]int, m)
	s.rbase = jbase

	fp := fingerprint(s.id, cfg.Shards, m, maxBatch, maxJobs)
	if r, ok := b.(membackend.Reopener); ok && r.Reopened() {
		if got := b.Read(0); got != fp {
			b.Close()
			return nil, fmt.Errorf("dispatch: shard %d register file was written by a different configuration (fingerprint %#x, want %#x); use the original Shards/Workers/MaxBatch/MaxJobs or start from a fresh file",
				s.id, got, fp)
		}
		for p := 1; p <= m; p++ {
			n := 0
			for n < maxJobs {
				id := b.Read(s.jaddr(p, n))
				if id == 0 {
					break
				}
				recovered = append(recovered, uint64(id))
				n++
			}
			s.jcur[p-1] = n
		}
		// The crash may have left a round in flight: the runtime window
		// holds that round's next/done registers. The journal already
		// accounts for every performed job, so the window is just dirt —
		// restore the model's all-zero initial state.
		for a := jbase; a < size; a++ {
			if b.Read(a) != 0 {
				b.Write(a, 0)
			}
		}
	} else {
		b.Write(0, fp)
	}
	return recovered, nil
}

// journal durably records that worker p performed the job in batch slot
// local-1, before the payload runs. Crash ordering: record-then-do. A
// process killed between the two re-performs nothing on recovery — the
// at-most-once guarantee is absolute — at the price of counting the job
// performed even though its payload never ran, the same way the paper's
// crashes cost effectiveness, never safety (Theorem 2.1 makes that
// trade unavoidable). Cooperative crashes (injected via CrashPlan, or
// any stop at action granularity, the paper's model §2.1) sit outside
// the record/do window, so they lose nothing.
func (s *shard) journal(p int, id uint64) {
	idx := s.jcur[p-1] // p's row is single-writer; no synchronization needed
	if idx >= s.jlen {
		// Unreachable while the Submit-side MaxJobs guard holds: every id
		// is journaled at most once across all rows and incarnations, so a
		// row never outgrows MaxJobs. Fail loudly rather than overwrite a
		// neighbouring row.
		panic(fmt.Sprintf("dispatch: shard %d journal row %d overflow (MaxJobs %d)", s.id, p, s.jlen))
	}
	s.mem.Write(s.jaddr(p, idx), int64(id))
	s.jcur[p-1] = idx + 1
}
