package dispatch

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBatchedResolutionRace hammers the striped completion table from
// three sides at once: shard loops resolving whole rounds in stripe
// batches, concurrent Handle.Done() readers draining futures, and
// callbacks that re-enter the dispatcher mid-resolution (a nested
// SubmitCallback lands in the very stripes the resolver is walking —
// legal only because callbacks fire outside the stripe locks). Every
// job must resolve exactly once on each side. Run under -race.
func TestBatchedResolutionRace(t *testing.T) {
	const (
		producers = 4
		outer     = 2000
	)
	d, err := New(Config{Shards: 4, Workers: 2, MaxBatch: 64, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Each outer job is observed twice: once by its callback, once by a
	// dedicated goroutine blocked on the handle's future.
	seen := make([]atomic.Int32, outer)
	var nestedSubmitted, nestedResolved atomic.Int64
	var subWG, readWG sync.WaitGroup
	ctx := context.Background()
	for p := 0; p < producers; p++ {
		subWG.Add(1)
		go func(p int) {
			defer subWG.Done()
			for i := p; i < outer; i += producers {
				idx := i
				h, err := d.Do(ctx, Task{
					Fn: func(context.Context) error { return nil },
					Callback: func(JobResult) {
						seen[idx].Add(1)
						if idx%97 == 0 {
							// Re-enter the dispatcher from inside a resolution
							// batch.
							nestedSubmitted.Add(1)
							if _, err := d.SubmitCallback(func() {}, func(JobResult) {
								nestedResolved.Add(1)
							}); err != nil {
								t.Errorf("nested submit from callback: %v", err)
							}
						}
					},
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				readWG.Add(1)
				go func() {
					defer readWG.Done()
					r := <-h.Done()
					if r.ID != h.ID {
						t.Errorf("future for id %d delivered result for id %d", h.ID, r.ID)
					}
					seen[idx].Add(1)
				}()
			}
		}(p)
	}
	subWG.Wait()
	d.Flush()
	// Nested submissions race the Flush snapshot; wait for them and the
	// future readers explicitly.
	waitFor(t, "nested callbacks resolved", func() bool {
		return nestedResolved.Load() == nestedSubmitted.Load()
	})
	readWG.Wait()

	for i := range seen {
		if c := seen[i].Load(); c != 2 {
			t.Fatalf("outer job %d observed %d resolutions (callback+future), want 2", i, c)
		}
	}
	if nestedSubmitted.Load() == 0 {
		t.Fatal("no nested submissions happened; re-entrancy went unexercised")
	}
	if n := d.waiters.pending(); n != 0 {
		t.Fatalf("completion table not drained: %d waiters", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
