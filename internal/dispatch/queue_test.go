package dispatch

import "testing"

// TestRingGrowWraparound drives the deque through interleaved
// front/back pushes and pops so growth happens with a wrapped layout.
func TestRingGrowWraparound(t *testing.T) {
	var r ring
	for i := 1; i <= 40; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	r.pushFront(entry{id: 0})
	for want := uint64(0); want <= 40; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("popFront = %d, want %d", got, want)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len = %d after drain", r.len())
	}
	// Wrap-around: interleave front/back pushes against pops.
	for i := 0; i < 100; i++ {
		r.pushBack(entry{id: uint64(i)})
		r.pushFront(entry{id: uint64(1000 + i)})
		if got := r.popFront().id; got != uint64(1000+i) {
			t.Fatalf("iteration %d: popFront = %d", i, got)
		}
	}
	for want := uint64(0); want < 100; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("popFront = %d, want %d", got, want)
		}
	}
}

// TestRingShrink: a one-time spike must not pin the backing array
// forever — after a sustained stretch of low occupancy the ring halves,
// and FIFO order survives every reallocation.
func TestRingShrink(t *testing.T) {
	var r ring
	const spike = 4096
	for i := 0; i < spike; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	grown := cap(r.buf)
	if grown < spike {
		t.Fatalf("cap %d after %d pushes", grown, spike)
	}
	for i := 0; i < spike; i++ {
		if got := r.popFront().id; got != uint64(i) {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	// Steady state far below the spike: keep ~32 entries live while
	// cycling many operations; the ring should shed capacity.
	next := uint64(spike)
	head := uint64(spike)
	for i := 0; i < 32; i++ {
		r.pushBack(entry{id: next})
		next++
	}
	for op := 0; op < 64*spike; op++ {
		r.pushBack(entry{id: next})
		next++
		if got := r.popFront().id; got != head {
			t.Fatalf("op %d: pop = %d, want %d", op, got, head)
		}
		head++
	}
	if cap(r.buf) >= grown {
		t.Fatalf("ring never shrank: cap still %d (spike-time cap %d)", cap(r.buf), grown)
	}
	if cap(r.buf) < minRingCap {
		t.Fatalf("ring shrank below the floor: cap %d < %d", cap(r.buf), minRingCap)
	}
	// Everything still drains in order.
	for r.len() > 0 {
		if got := r.popFront().id; got != head {
			t.Fatalf("drain: pop = %d, want %d", got, head)
		}
		head++
	}
}

// TestRingShrinkHysteresis: a workload oscillating around a steady peak
// must not thrash between grow and shrink.
func TestRingShrinkHysteresis(t *testing.T) {
	var r ring
	// Establish a capacity for a peak of ~100.
	for i := 0; i < 100; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	for r.len() > 0 {
		r.popFront()
	}
	c := cap(r.buf)
	// Many full drain/refill cycles at the same peak: capacity stable.
	id := uint64(0)
	for cycle := 0; cycle < 200; cycle++ {
		for i := 0; i < 100; i++ {
			r.pushBack(entry{id: id})
			id++
		}
		for r.len() > 0 {
			r.popFront()
		}
		if cap(r.buf) != c {
			t.Fatalf("cycle %d: cap moved %d → %d", cycle, c, cap(r.buf))
		}
	}
}

// TestRingStealBack: stealing takes the youngest entries, preserves
// their relative order, and leaves the victim's front (the residue end)
// untouched.
func TestRingStealBack(t *testing.T) {
	var r ring
	// Offset head so the steal range wraps the backing array.
	for i := 0; i < 10; i++ {
		r.pushBack(entry{id: 999})
	}
	for i := 0; i < 10; i++ {
		r.popFront()
	}
	for i := 1; i <= 20; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	buf := make([]entry, 8)
	r.stealBack(buf)
	for i, e := range buf {
		if want := uint64(13 + i); e.id != want {
			t.Fatalf("stolen[%d] = %d, want %d", i, e.id, want)
		}
	}
	if r.len() != 12 {
		t.Fatalf("victim keeps %d, want 12", r.len())
	}
	for want := uint64(1); want <= 12; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("victim pop = %d, want %d", got, want)
		}
	}
}
