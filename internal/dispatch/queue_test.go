package dispatch

import "testing"

// TestRingGrowWraparound drives the deque through interleaved
// front/back pushes and pops so growth happens with a wrapped layout.
func TestRingGrowWraparound(t *testing.T) {
	var r ring
	for i := 1; i <= 40; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	r.pushFront(entry{id: 0})
	for want := uint64(0); want <= 40; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("popFront = %d, want %d", got, want)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len = %d after drain", r.len())
	}
	// Wrap-around: interleave front/back pushes against pops.
	for i := 0; i < 100; i++ {
		r.pushBack(entry{id: uint64(i)})
		r.pushFront(entry{id: uint64(1000 + i)})
		if got := r.popFront().id; got != uint64(1000+i) {
			t.Fatalf("iteration %d: popFront = %d", i, got)
		}
	}
	for want := uint64(0); want < 100; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("popFront = %d, want %d", got, want)
		}
	}
}

// TestRingShrink: a one-time spike must not pin the backing array
// forever — after a sustained stretch of low occupancy the ring halves,
// and FIFO order survives every reallocation.
func TestRingShrink(t *testing.T) {
	var r ring
	const spike = 4096
	for i := 0; i < spike; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	grown := cap(r.buf)
	if grown < spike {
		t.Fatalf("cap %d after %d pushes", grown, spike)
	}
	for i := 0; i < spike; i++ {
		if got := r.popFront().id; got != uint64(i) {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	// Steady state far below the spike: keep ~32 entries live while
	// cycling many operations; the ring should shed capacity.
	next := uint64(spike)
	head := uint64(spike)
	for i := 0; i < 32; i++ {
		r.pushBack(entry{id: next})
		next++
	}
	for op := 0; op < 64*spike; op++ {
		r.pushBack(entry{id: next})
		next++
		if got := r.popFront().id; got != head {
			t.Fatalf("op %d: pop = %d, want %d", op, got, head)
		}
		head++
	}
	if cap(r.buf) >= grown {
		t.Fatalf("ring never shrank: cap still %d (spike-time cap %d)", cap(r.buf), grown)
	}
	if cap(r.buf) < minRingCap {
		t.Fatalf("ring shrank below the floor: cap %d < %d", cap(r.buf), minRingCap)
	}
	// Everything still drains in order.
	for r.len() > 0 {
		if got := r.popFront().id; got != head {
			t.Fatalf("drain: pop = %d, want %d", got, head)
		}
		head++
	}
}

// TestRingShrinkHysteresis: a workload oscillating around a steady peak
// must not thrash between grow and shrink.
func TestRingShrinkHysteresis(t *testing.T) {
	var r ring
	// Establish a capacity for a peak of ~100.
	for i := 0; i < 100; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	for r.len() > 0 {
		r.popFront()
	}
	c := cap(r.buf)
	// Many full drain/refill cycles at the same peak: capacity stable.
	id := uint64(0)
	for cycle := 0; cycle < 200; cycle++ {
		for i := 0; i < 100; i++ {
			r.pushBack(entry{id: id})
			id++
		}
		for r.len() > 0 {
			r.popFront()
		}
		if cap(r.buf) != c {
			t.Fatalf("cycle %d: cap moved %d → %d", cycle, c, cap(r.buf))
		}
	}
}

// TestRingStealBack: stealing takes the youngest entries, preserves
// their relative order, and leaves the victim's front (the residue end)
// untouched.
func TestRingStealBack(t *testing.T) {
	var r ring
	// Offset head so the steal range wraps the backing array.
	for i := 0; i < 10; i++ {
		r.pushBack(entry{id: 999})
	}
	for i := 0; i < 10; i++ {
		r.popFront()
	}
	for i := 1; i <= 20; i++ {
		r.pushBack(entry{id: uint64(i)})
	}
	buf := make([]entry, 8)
	r.stealBack(buf)
	for i, e := range buf {
		if want := uint64(13 + i); e.id != want {
			t.Fatalf("stolen[%d] = %d, want %d", i, e.id, want)
		}
	}
	if r.len() != 12 {
		t.Fatalf("victim keeps %d, want 12", r.len())
	}
	for want := uint64(1); want <= 12; want++ {
		if got := r.popFront().id; got != want {
			t.Fatalf("victim pop = %d, want %d", got, want)
		}
	}
}

// TestPQueuePriorityOrder: popFront drains High before Normal before
// Low, FIFO within a class, and pushFront re-enters at the front of the
// entry's OWN class.
func TestPQueuePriorityOrder(t *testing.T) {
	var q pqueue
	q.pushBack(entry{id: 1, pri: Low})
	q.pushBack(entry{id: 2, pri: Normal})
	q.pushBack(entry{id: 3, pri: High})
	q.pushBack(entry{id: 4, pri: Low})
	q.pushBack(entry{id: 5, pri: High})
	q.pushBack(entry{id: 6, pri: Normal})
	// Residue for the Normal class: jumps its class's line, not Low's.
	q.pushFront(entry{id: 7, pri: Normal})
	want := []uint64{3, 5, 7, 2, 6, 1, 4}
	if q.len() != len(want) {
		t.Fatalf("len = %d, want %d", q.len(), len(want))
	}
	for i, w := range want {
		if got := q.popFront().id; got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after drain", q.len())
	}
}

// TestPQueueExtractDue: extraction crosses priority classes, returns
// entries in deadline order, leaves the rest in place, and repairs the
// deadline bound.
func TestPQueueExtractDue(t *testing.T) {
	var q pqueue
	q.pushBack(entry{id: 1, pri: Low, dl: 50})
	q.pushBack(entry{id: 2, pri: High})
	q.pushBack(entry{id: 3, pri: Normal, dl: 10})
	q.pushBack(entry{id: 4, pri: Normal, dl: 999})
	q.pushBack(entry{id: 5, pri: Low, dl: 30})
	q.pushBack(entry{id: 6, pri: Normal})
	if md := q.minDeadline(); md != 10 {
		t.Fatalf("minDeadline = %d, want 10", md)
	}
	due := q.extractDue(100, nil)
	var ids []uint64
	for _, e := range due {
		ids = append(ids, e.id)
	}
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 5 || ids[2] != 1 {
		t.Fatalf("due ids = %v, want [3 5 1] (deadline order)", ids)
	}
	if q.len() != 3 {
		t.Fatalf("len = %d after extraction, want 3", q.len())
	}
	if md := q.minDeadline(); md != 999 {
		t.Fatalf("minDeadline after extraction = %d, want 999", md)
	}
	// Survivors drain in priority order, dated or not.
	for i, w := range []uint64{2, 4, 6} {
		if got := q.popFront().id; got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	// An empty sweep still succeeds.
	if due := q.extractDue(1_000_000, nil); len(due) != 0 {
		t.Fatalf("extractDue on empty queue returned %d entries", len(due))
	}
}

// TestPQueueStealLowest: thieves take from the back of the LOWEST
// non-empty ring, so a victim's high-priority work is never migrated
// while lower-class work exists.
func TestPQueueStealLowest(t *testing.T) {
	var q pqueue
	for i := 1; i <= 4; i++ {
		q.pushBack(entry{id: uint64(i), pri: High})
	}
	for i := 5; i <= 8; i++ {
		q.pushBack(entry{id: uint64(i), pri: Low})
	}
	if got := q.lowest(); got != 4 {
		t.Fatalf("lowest = %d, want 4", got)
	}
	buf := make([]entry, 2)
	q.stealBack(buf)
	if buf[0].id != 7 || buf[1].id != 8 {
		t.Fatalf("stole ids %d,%d, want 7,8 (back of the Low ring)", buf[0].id, buf[1].id)
	}
	if buf[0].pri != Low {
		t.Fatalf("stolen entry lost its priority: %v", buf[0].pri)
	}
	if q.len() != 6 {
		t.Fatalf("len = %d after steal, want 6", q.len())
	}
	// With Low emptied, the Normal/High work becomes stealable — but only
	// ever the lowest class present.
	q.stealBack(buf[:1])
	q.stealBack(buf[1:])
	if buf[0].id != 6 || buf[1].id != 5 {
		t.Fatalf("follow-up steals got %d,%d, want 6,5", buf[0].id, buf[1].id)
	}
	if got := q.lowest(); got != 4 {
		t.Fatalf("lowest after draining Low = %d, want 4 (the High ring)", got)
	}
}
