//go:build race

package dispatch

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards are meaningless under its instrumentation.
const raceEnabled = true
