package dispatch

import (
	"context"
	"math"
	"sort"
)

// entry is one queued job: its dispatcher-wide id, its payload (exactly
// one of fn0/fn is set — fn0 for the v1 func() paths, fn for v2 Task
// payloads), and its scheduling descriptor. dl is the deadline as Unix
// nanoseconds (0 = none). err is written by the worker that performs the
// job (the payload's returned error) and read by finishRound after the
// round joins; a requeued (unperformed) entry never ran, so its err is
// always nil.
type entry struct {
	id  uint64
	fn0 Job
	fn  func(context.Context) error
	dl  int64
	pri Priority
	// t0 is the submit stamp of jobs sampled into the submit→completion
	// latency histogram (Dispatcher.latStamp: microseconds since the
	// dispatcher started, truncated to 32 bits; 0 = unsampled). It rides
	// the entry through requeues and steals, so the recorded latency is
	// wall time from submission to final resolution. A uint32 in the
	// padding hole after pri keeps entry compact — entries are copied
	// through rings, batches and steals, so every byte here is hot-path
	// memory traffic. Wrap-safe uint32 subtraction at resolution means
	// only latencies beyond ~71 minutes alias.
	t0  uint32
	err error
	// cx boxes a cancellable submission's context behind ONE pointer
	// (nil for Background and batch submissions — the common case, and
	// every bench path — so those stay alloc-free). Boxing keeps entry
	// at exactly 64 bytes, one cache line: embedding the two-word
	// context interface directly would push it to 72 and split every
	// entry copy across lines. Round assembly polls cx.ctx.Err() so a
	// job whose ctx died in the queue resolves without starting
	// (mirroring deadline expiry; see shard.takeBatch).
	cx *entryCtx
}

// entryCtx is the one-pointer box for a cancellable submission's ctx
// (see entry.cx).
type entryCtx struct{ ctx context.Context }

// cancelErr reports the entry's submission-ctx error, nil for
// non-cancellable entries.
func (e *entry) cancelErr() error {
	if e.cx == nil {
		return nil
	}
	return e.cx.ctx.Err()
}

// minRingCap is the smallest backing array the ring keeps once it has
// grown at all; below this, shrinking saves too little to be worth the
// copy churn.
const minRingCap = 64

// ring is a growable, shrinkable double-ended queue of entries. Residue
// carried over from a round is pushed back at the FRONT so old jobs keep
// their place in line ahead of newly submitted ones; work-stealing takes
// from the BACK, so a thief claims the youngest jobs and the victim keeps
// its residue. Capacity is retained across rounds, so a steady-state
// workload enqueues and dequeues without allocating — but a one-time
// spike no longer pins memory forever: after sustained low occupancy
// (see low/maybeShrink) the backing array is halved.
type ring struct {
	buf  []entry
	head int
	n    int
	// low counts consecutive dequeues observed at ≤ 1/8 occupancy; it is
	// reset whenever the queue refills past 1/4. A halving is triggered
	// only once low reaches the current capacity, so the O(n) copy is
	// amortized O(1) per operation and a brief dip never thrashes.
	low int
	// minDL is a conservative lower bound on the earliest deadline among
	// the ring's entries (0 = none known). It is tightened on push and
	// recomputed exactly by extractDue; pops leave it stale-low, which at
	// worst triggers one extra (empty) extraction sweep that recomputes
	// it — never a missed deadline.
	minDL int64
}

// noteDeadline folds a pushed entry's deadline into the bound.
func (r *ring) noteDeadline(dl int64) {
	if dl != 0 && (r.minDL == 0 || dl < r.minDL) {
		r.minDL = dl
	}
}

func (r *ring) len() int { return r.n }

func (r *ring) grow() {
	c := len(r.buf) * 2
	if c < 16 {
		c = 16
	}
	nb := make([]entry, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head, r.low = nb, 0, 0
}

// maybeShrink halves the backing array after sustained low occupancy.
// Hysteresis: shrink requires ≤ 1/8 occupancy sustained for a full
// capacity's worth of dequeues, and the result is ≥ 1/4 free, so a
// workload oscillating around a steady peak neither grows nor shrinks.
func (r *ring) maybeShrink() {
	c := len(r.buf)
	if c <= minRingCap || r.n*8 > c {
		r.low = 0
		return
	}
	if r.low++; r.low < c {
		return
	}
	nc := c / 2
	nb := make([]entry, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%c]
	}
	r.buf, r.head, r.low = nb, 0, 0
}

func (r *ring) pushBack(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	r.noteDeadline(e.dl)
	if r.n*4 >= len(r.buf) {
		r.low = 0
	}
}

func (r *ring) pushFront(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = e
	r.n++
	r.noteDeadline(e.dl)
	if r.n*4 >= len(r.buf) {
		r.low = 0
	}
}

func (r *ring) popFront() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if r.n == 0 {
		r.minDL = 0
	}
	r.maybeShrink()
	return e
}

// extractDue removes every entry whose deadline is non-zero and ≤ cutoff,
// appending them to dst (in queue order) and compacting the survivors in
// place. It recomputes minDL exactly, so a sweep that extracts nothing
// still repairs a stale bound.
func (r *ring) extractDue(cutoff int64, dst []entry) []entry {
	c := len(r.buf)
	kept, min := 0, int64(0)
	for i := 0; i < r.n; i++ {
		idx := (r.head + i) % c
		e := r.buf[idx]
		if e.dl != 0 && e.dl <= cutoff {
			dst = append(dst, e)
			continue
		}
		if e.dl != 0 && (min == 0 || e.dl < min) {
			min = e.dl
		}
		r.buf[(r.head+kept)%c] = e
		kept++
	}
	for i := kept; i < r.n; i++ {
		r.buf[(r.head+i)%c] = entry{}
	}
	r.n, r.minDL = kept, min
	return dst
}

// stealBack removes the last len(dst) entries — the youngest jobs — into
// dst, preserving their relative order. The caller must ensure
// len(dst) ≤ r.len().
func (r *ring) stealBack(dst []entry) {
	k := len(dst)
	c := len(r.buf)
	for i := 0; i < k; i++ {
		idx := (r.head + r.n - k + i) % c
		dst[i] = r.buf[idx]
		r.buf[idx] = entry{}
	}
	r.n -= k
	if r.n == 0 {
		r.minDL = 0
	}
	r.maybeShrink()
}

// numRings is the number of priority classes (High, Normal, Low).
const numRings = 3

// pqueue is a shard's pending-job queue: one ring per priority class,
// drained strictly in priority order (High before Normal before Low,
// FIFO within a class) with deadline-ordered promotion across classes
// (extractDue). Residue re-enters at the FRONT of its own class's ring,
// so an old job keeps its place in line among its peers but never jumps
// a class; work-stealing takes from the BACK of the LOWEST non-empty
// ring, so a thief relieves the victim of the work it would get to last.
type pqueue struct {
	rings [numRings]ring
	size  int
}

// ringIndex maps a priority to its drain position: High first.
func ringIndex(p Priority) int {
	switch p {
	case High:
		return 0
	case Low:
		return 2
	default:
		return 1
	}
}

func (q *pqueue) len() int { return q.size }

// capCells reports the total backing-array cells across the rings (for
// the backpressure memory-bound assertions).
func (q *pqueue) capCells() int {
	c := 0
	for i := range q.rings {
		c += len(q.rings[i].buf)
	}
	return c
}

func (q *pqueue) pushBack(e entry) {
	q.rings[ringIndex(e.pri)].pushBack(e)
	q.size++
}

func (q *pqueue) pushFront(e entry) {
	q.rings[ringIndex(e.pri)].pushFront(e)
	q.size++
}

// popFront removes the head of the highest-priority non-empty ring. The
// caller must ensure len() > 0.
func (q *pqueue) popFront() entry {
	for i := range q.rings {
		if q.rings[i].n > 0 {
			q.size--
			return q.rings[i].popFront()
		}
	}
	panic("dispatch: popFront on empty pqueue")
}

// minDeadline is the earliest (conservative) deadline bound across the
// rings, 0 when no queued entry carries one.
func (q *pqueue) minDeadline() int64 {
	var min int64
	for i := range q.rings {
		if dl := q.rings[i].minDL; dl != 0 && (min == 0 || dl < min) {
			min = dl
		}
	}
	return min
}

// extractDue removes every queued entry with a deadline at or before
// cutoff — regardless of priority class — appending them to dst in
// DEADLINE order (ties keep priority-then-FIFO order). Rings whose
// deadline bound is beyond the cutoff are skipped without a scan.
func (q *pqueue) extractDue(cutoff int64, dst []entry) []entry {
	before := len(dst)
	for i := range q.rings {
		r := &q.rings[i]
		if r.minDL == 0 || r.minDL > cutoff {
			continue
		}
		dst = r.extractDue(cutoff, dst)
	}
	q.size -= len(dst) - before
	due := dst[before:]
	sort.SliceStable(due, func(a, b int) bool { return due[a].dl < due[b].dl })
	return dst
}

// popRing removes the head entry of ring ri. The caller must ensure the
// ring is non-empty.
func (q *pqueue) popRing(ri int) entry {
	q.size--
	return q.rings[ri].popFront()
}

// extractDeadlined removes every deadlined entry of ring ri, appending
// them to dst in DEADLINE order (FIFO ties) — the EDF pre-pass for a
// priority class that cannot be drained whole this round (see
// shard.takeClass). A stale minDL bound costs at most the one sweep,
// which recomputes it exactly.
func (q *pqueue) extractDeadlined(ri int, dst []entry) []entry {
	before := len(dst)
	dst = q.rings[ri].extractDue(math.MaxInt64, dst)
	q.size -= len(dst) - before
	due := dst[before:]
	sort.SliceStable(due, func(a, b int) bool { return due[a].dl < due[b].dl })
	return dst
}

// lowest returns the occupancy of the lowest-priority non-empty ring.
func (q *pqueue) lowest() int {
	for i := numRings - 1; i >= 0; i-- {
		if n := q.rings[i].n; n > 0 {
			return n
		}
	}
	return 0
}

// stealBack removes the last len(dst) entries of the lowest-priority
// non-empty ring into dst, preserving their relative order. The caller
// must ensure len(dst) ≤ lowest(). Stolen entries keep their priority
// and deadline — they are re-queued into the same class on the thief.
func (q *pqueue) stealBack(dst []entry) {
	for i := numRings - 1; i >= 0; i-- {
		if q.rings[i].n > 0 {
			q.rings[i].stealBack(dst)
			q.size -= len(dst)
			return
		}
	}
}
