package dispatch

// entry is one queued job: its dispatcher-wide id and its payload.
type entry struct {
	id uint64
	fn Job
}

// minRingCap is the smallest backing array the ring keeps once it has
// grown at all; below this, shrinking saves too little to be worth the
// copy churn.
const minRingCap = 64

// ring is a growable, shrinkable double-ended queue of entries. Residue
// carried over from a round is pushed back at the FRONT so old jobs keep
// their place in line ahead of newly submitted ones; work-stealing takes
// from the BACK, so a thief claims the youngest jobs and the victim keeps
// its residue. Capacity is retained across rounds, so a steady-state
// workload enqueues and dequeues without allocating — but a one-time
// spike no longer pins memory forever: after sustained low occupancy
// (see low/maybeShrink) the backing array is halved.
type ring struct {
	buf  []entry
	head int
	n    int
	// low counts consecutive dequeues observed at ≤ 1/8 occupancy; it is
	// reset whenever the queue refills past 1/4. A halving is triggered
	// only once low reaches the current capacity, so the O(n) copy is
	// amortized O(1) per operation and a brief dip never thrashes.
	low int
}

func (r *ring) len() int { return r.n }

func (r *ring) grow() {
	c := len(r.buf) * 2
	if c < 16 {
		c = 16
	}
	nb := make([]entry, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head, r.low = nb, 0, 0
}

// maybeShrink halves the backing array after sustained low occupancy.
// Hysteresis: shrink requires ≤ 1/8 occupancy sustained for a full
// capacity's worth of dequeues, and the result is ≥ 1/4 free, so a
// workload oscillating around a steady peak neither grows nor shrinks.
func (r *ring) maybeShrink() {
	c := len(r.buf)
	if c <= minRingCap || r.n*8 > c {
		r.low = 0
		return
	}
	if r.low++; r.low < c {
		return
	}
	nc := c / 2
	nb := make([]entry, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%c]
	}
	r.buf, r.head, r.low = nb, 0, 0
}

func (r *ring) pushBack(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	if r.n*4 >= len(r.buf) {
		r.low = 0
	}
}

func (r *ring) pushFront(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = e
	r.n++
	if r.n*4 >= len(r.buf) {
		r.low = 0
	}
}

func (r *ring) popFront() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.maybeShrink()
	return e
}

// stealBack removes the last len(dst) entries — the youngest jobs — into
// dst, preserving their relative order. The caller must ensure
// len(dst) ≤ r.len().
func (r *ring) stealBack(dst []entry) {
	k := len(dst)
	c := len(r.buf)
	for i := 0; i < k; i++ {
		idx := (r.head + r.n - k + i) % c
		dst[i] = r.buf[idx]
		r.buf[idx] = entry{}
	}
	r.n -= k
	r.maybeShrink()
}
