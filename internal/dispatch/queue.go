package dispatch

// entry is one queued job: its dispatcher-wide id and its payload.
type entry struct {
	id uint64
	fn Job
}

// ring is a growable double-ended queue of entries. Residue carried over
// from a round is pushed back at the FRONT so old jobs keep their place in
// line ahead of newly submitted ones. Capacity is retained across rounds,
// so a steady-state workload enqueues and dequeues without allocating.
type ring struct {
	buf  []entry
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) grow() {
	c := len(r.buf) * 2
	if c < 16 {
		c = 16
	}
	nb := make([]entry, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *ring) pushBack(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *ring) pushFront(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = e
	r.n++
}

func (r *ring) popFront() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}
