package dispatch

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitAsyncFutures: every future receives exactly one JobResult
// with the right id, even while crash injection forces jobs to ride
// residue across multiple rounds.
func TestSubmitAsyncFutures(t *testing.T) {
	const jobs = 4000
	d, err := New(Config{
		Shards:   2,
		Workers:  3,
		MaxBatch: 64,
		Jitter:   true,
		Seed:     11,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 15 {
				return nil
			}
			return []uint64{0, uint64(30 + 11*round + 5*shard), uint64(70 + 7*round)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	eo := newExactlyOnce(jobs)
	ids := make([]uint64, jobs)
	chans := make([]<-chan JobResult, jobs)
	for i := 0; i < jobs; i++ {
		id, ch, err := d.SubmitAsync(eo.job(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i], chans[i] = id, ch
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.ID != ids[i] {
				t.Fatalf("future %d: got id %d, want %d", i, r.ID, ids[i])
			}
			if r.Recovered {
				t.Fatalf("future %d: spurious Recovered", i)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("future %d never resolved", i)
		}
		select {
		case r := <-ch:
			t.Fatalf("future %d resolved twice: %+v", i, r)
		default:
		}
	}
	eo.verify(t)
	if st := d.Stats(); st.Crashes == 0 || st.Residue == 0 {
		t.Fatalf("fault injection inert: crashes=%d residue=%d", st.Crashes, st.Residue)
	}
}

// TestSubmitCallbackExactlyOnce: the callback variant fires exactly once
// per job under crash injection, and the completion table drains.
func TestSubmitCallbackExactlyOnce(t *testing.T) {
	const jobs = 3000
	d, err := New(Config{
		Shards:   3,
		Workers:  2,
		MaxBatch: 32,
		Seed:     12,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 10 {
				return nil
			}
			return []uint64{0, uint64(25 + 9*round)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-shard block leasing means single-submit ids are dense per
	// shard, not globally: 3000 singles over 3 shards span at most
	// jobs + 3·(idBlock−1) ids. Track the issued ids and assert each
	// fired exactly once (and nothing else fired at all).
	fired := make([]atomic.Int32, jobs+3*idBlock+1)
	issued := make([]uint64, 0, jobs)
	var wrong atomic.Int32
	for i := 0; i < jobs; i++ {
		var wantID atomic.Uint64
		id, err := d.SubmitCallback(func() {}, func(r JobResult) {
			if w := wantID.Load(); w != 0 && r.ID != w {
				wrong.Add(1)
			}
			fired[r.ID].Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		wantID.Store(id)
		issued = append(issued, id)
	}
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for _, id := range issued {
		c := fired[id].Load()
		if c != 1 {
			t.Fatalf("callback for job %d fired %d times", id, c)
		}
		total += c
	}
	if total != jobs {
		t.Fatalf("%d callbacks fired for issued ids, want %d", total, jobs)
	}
	for id := range fired {
		if c := fired[id].Load(); c != 0 && !slicesContains(issued, uint64(id)) {
			t.Fatalf("callback fired for never-issued id %d", id)
		}
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d callbacks saw a mismatched id", wrong.Load())
	}
	if n := d.waiters.pending(); n != 0 {
		t.Fatalf("completion table not drained: %d waiters left", n)
	}
}

// slicesContains is a tiny helper (the test sticks to the stdlib the
// package already imports).
func slicesContains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestAsyncRecovery: futures must resolve for journal-recovered jobs. A
// durable dispatcher is frozen mid-round and abandoned; the successor
// re-submits the same stream async and every future resolves exactly
// once — the pre-crash ones with Recovered set, without re-running.
func TestAsyncRecovery(t *testing.T) {
	requireMmap(t)
	const (
		n       = 800
		workers = 4
		killAt  = 16
	)
	dir := t.TempDir()
	executions := make([]atomic.Int32, n+1)

	var performed, blocked atomic.Int64
	gate := make(chan struct{}) // never closed: d1's workers stay frozen
	d1, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 128,
		NewMem: mmapFactory(dir), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]Job, n)
	for i := range fns {
		id := i + 1
		fns[i] = func() {
			executions[id].Add(1)
			if performed.Add(1) >= killAt {
				blocked.Add(1)
				<-gate
			}
		}
	}
	if _, err := d1.SubmitBatch(fns); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all workers frozen mid-round", func() bool { return blocked.Load() == workers })
	preCrash := performed.Load()
	// d1 is abandoned without Close, like a killed process.

	d2, err := New(Config{
		Shards: 1, Workers: workers, MaxBatch: 128,
		NewMem: mmapFactory(dir), MaxJobs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	chans := make([]<-chan JobResult, n)
	for i := 0; i < n; i++ {
		id := i + 1
		_, ch, err := d2.SubmitAsync(func() { executions[id].Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	d2.Flush()
	recovered := 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.ID != uint64(i+1) {
				t.Fatalf("future %d resolved with id %d", i, r.ID)
			}
			if r.Recovered {
				recovered++
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("future %d never resolved after recovery", i)
		}
	}
	st := d2.Stats()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if recovered != int(preCrash) {
		t.Errorf("%d futures resolved as Recovered, want %d", recovered, preCrash)
	}
	if st.Recovered != uint64(preCrash) {
		t.Errorf("Stats.Recovered = %d, want %d", st.Recovered, preCrash)
	}
	for id := 1; id <= n; id++ {
		if c := executions[id].Load(); c > 1 {
			t.Fatalf("job %d executed %d times across the crash", id, c)
		}
	}
}

// TestBackpressureBlock: with a bounded queue and the Block policy, a
// producer overdriving slow payloads is throttled instead of growing
// memory — the queue and its ring never exceed QueueDepth, even while
// crash injection requeues residue at the front (in-flight jobs hold
// their slots until the round resolves) — and the blocked time is
// accounted.
func TestBackpressureBlock(t *testing.T) {
	const (
		depth = 16
		jobs  = 400
	)
	d, err := New(Config{
		Shards:     2,
		Workers:    2,
		MaxBatch:   8,
		QueueDepth: depth,
		Policy:     Block,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 40 {
				return nil
			}
			return []uint64{0, uint64(10 + 7*round)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Sample queue depths and ring capacities while the producer runs.
	stop := make(chan struct{})
	var maxDepth, maxCap atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			for _, s := range d.shards {
				s.mu.Lock()
				if l := int64(s.q.len()); l > maxDepth.Load() {
					maxDepth.Store(l)
				}
				if c := int64(s.q.capCells()); c > maxCap.Load() {
					maxCap.Store(c)
				}
				s.mu.Unlock()
			}
			select {
			case <-stop:
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	eo := newExactlyOnce(jobs)
	for i := 0; i < jobs; i++ {
		job := eo.job(i)
		slow := func() { time.Sleep(50 * time.Microsecond); job() }
		if i%3 == 0 {
			if _, err := d.Submit(slow); err != nil {
				t.Fatal(err)
			}
		} else if _, err := d.SubmitBatch([]Job{slow}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	close(stop)
	sampler.Wait()
	eo.verify(t)

	if got := maxDepth.Load(); got > depth {
		t.Errorf("queue depth reached %d, bound is %d", got, depth)
	}
	if got := maxCap.Load(); got > 2*depth {
		t.Errorf("ring capacity grew to %d cells, want ≤ %d for QueueDepth %d", got, 2*depth, depth)
	}
	st := d.Stats()
	if st.SubmitBlockedNanos == 0 {
		t.Error("producer overdrove a depth-16 queue but SubmitBlockedNanos is 0")
	}
	if st.Residue == 0 {
		t.Error("crash plan produced no residue; the requeue-under-bound path went untested")
	}
}

// TestBackpressureFailFast: a full queue rejects with ErrQueueFull, no
// job id is consumed by a rejection (ids stay dense), and batches are
// all-or-nothing.
func TestBackpressureFailFast(t *testing.T) {
	const depth = 4
	gate := make(chan struct{})
	d, err := New(Config{
		Shards:     1,
		Workers:    2,
		MaxBatch:   2,
		QueueDepth: depth,
		Policy:     FailFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	blockJob := func() { <-gate; ran.Add(1) }

	// Fill the queue (and the in-flight round) until a rejection.
	accepted := []uint64{}
	rejected := 0
	for len(accepted) < 64 && rejected == 0 {
		id, err := d.Submit(blockJob)
		switch {
		case err == nil:
			accepted = append(accepted, id)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatal("queue never filled; backpressure inert")
	}
	// Ids must be dense: rejections consumed nothing.
	for i, id := range accepted {
		if id != uint64(i+1) {
			t.Fatalf("accepted ids not dense: position %d has id %d", i, id)
		}
	}
	// A batch that cannot fit is rejected whole...
	if _, err := d.SubmitBatch(make([]Job, depth+1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: err = %v, want ErrQueueFull", err)
	}
	// ...and the next accepted submission continues the dense sequence.
	// (Retry: the queue drains asynchronously once the gate opens.)
	close(gate)
	var id uint64
	for {
		id, err = d.Submit(func() { ran.Add(1) })
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if want := uint64(len(accepted) + 1); id != want {
		t.Fatalf("post-rejection id %d, want %d (rejections must not burn ids)", id, want)
	}
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != int64(len(accepted)+1) {
		t.Fatalf("ran %d jobs, want %d", got, len(accepted)+1)
	}
}

// TestBatchRotation: batch-only workloads must rotate their start shard
// — the plan cursor advances per batch, so small batches reach every
// shard instead of piling onto one. With gated payloads and depth-2
// FailFast queues, a 2-shard dispatcher must accept ~4 one-job batches
// (2 resident per shard); a broken rotation pins one shard and caps
// acceptance at ~2.
func TestBatchRotation(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{
		Shards:     2,
		Workers:    2,
		MaxBatch:   2,
		QueueDepth: 2,
		Policy:     FailFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := []Job{func() { <-gate }}
	accepted, rejected := 0, 0
	for rejected < 8 && accepted < 16 {
		if _, err := d.SubmitBatch(block); err == nil {
			accepted++
		} else if errors.Is(err, ErrQueueFull) {
			rejected++
		} else {
			t.Fatal(err)
		}
	}
	if accepted < 3 {
		t.Fatalf("only %d one-job batches accepted across 2 shards; rotation is pinning one shard", accepted)
	}
	close(gate)
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAbandonReleasesBlockedSubmitter: abandon (the crash-simulation
// path) must not strand a Block-policy submitter parked on a full
// queue — the dead shard releases it and swallows the entries, like
// memory of a killed process.
func TestAbandonReleasesBlockedSubmitter(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d, err := New(Config{
		Shards:     1,
		Workers:    2,
		MaxBatch:   2,
		QueueDepth: 2,
		Policy:     Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: QueueDepth bounds queued + in-flight jobs, so two gated
	// submissions fill the shard completely.
	for i := 0; i < 2; i++ {
		if _, err := d.Submit(func() { <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	returned := make(chan error, 1)
	go func() {
		_, err := d.Submit(func() {})
		returned <- err
	}()
	// Give the submitter time to park (abandon-before-park is fine too:
	// waitSpace checks abandoned before waiting). Shard-level abandon:
	// the dispatcher-level wrapper would wait for the gated round to
	// finish, which is not what a crash does to a parked submitter.
	time.Sleep(20 * time.Millisecond)
	d.shards[0].abandon()
	select {
	case err := <-returned:
		if err != nil {
			t.Fatalf("stranded submitter returned error %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submitter still parked after abandon")
	}
	// Cleanup: the gate's deferred close lets the gated round finish and
	// the abandoned loop exit; the dispatcher is unusable, as after any
	// abandon, and intentionally not Closed.
}

// TestWorkStealing: an idle shard must claim work from a deep sibling.
// Jobs are placed round-robin, so with 2 shards the even-indexed
// submissions land on one shard and get slow payloads while the other
// shard's jobs are instant: the fast shard goes idle and steals. All
// jobs still execute exactly once and futures all resolve.
func TestWorkStealing(t *testing.T) {
	const jobs = 300
	d, err := New(Config{
		Shards:   2,
		Workers:  2,
		MaxBatch: 256,
		// A tight latency target keeps the slow shard cutting small
		// rounds, so its queue stays deep between rounds — the window a
		// thief needs.
		RoundTarget: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Park both shard loops in a gated first round so the whole stream
	// queues up behind it; the gated round also seeds the controller with
	// a slow estimate, keeping the skewed shard's rounds small.
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		if _, err := d.Submit(func() { <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)

	eo := newExactlyOnce(jobs)
	var resolved atomic.Int64
	for i := 0; i < jobs; i++ {
		job := eo.job(i)
		fn := job
		if i%2 == 0 {
			fn = func() { time.Sleep(time.Millisecond); job() }
		}
		if _, err := d.SubmitCallback(fn, func(JobResult) { resolved.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	d.Flush()
	eo.verify(t)
	st := d.Stats()
	if st.StolenJobs == 0 {
		t.Fatalf("no jobs were stolen despite a skewed load: %+v", st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("stealing broke at-most-once: %d duplicates", st.Duplicates)
	}
	waitFor(t, "all callbacks fired", func() bool { return resolved.Load() == jobs })
}

// TestAdaptiveRoundSizing: with slow payloads and a deep pre-loaded
// queue, the latency-targeted controller must cut rounds well below
// MaxBatch — and many more of them than the two MaxBatch-sized rounds
// the fixed cut would have used.
func TestAdaptiveRoundSizing(t *testing.T) {
	const jobs = 200
	gate := make(chan struct{})
	d, err := New(Config{
		Shards:      1,
		Workers:     2,
		MaxBatch:    128,
		RoundTarget: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Park the loop on a first gated round so the whole stream queues up.
	if _, err := d.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	eo := newExactlyOnce(jobs)
	for i := 0; i < jobs; i++ {
		job := eo.job(i)
		if _, err := d.Submit(func() { time.Sleep(time.Millisecond); job() }); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	d.Flush()
	eo.verify(t)
	st := d.Stats()
	// At ~1ms per payload on 2 workers a 2ms target admits only a few
	// jobs per round; allow generous slack but rule out MaxBatch cuts.
	if st.Rounds < 10 {
		t.Fatalf("adaptive controller cut only %d rounds for %d slow jobs (fixed MaxBatch behavior)", st.Rounds, jobs)
	}
	if lb := st.Shards[0].LastBatch; lb >= 128 {
		t.Fatalf("last round took the full MaxBatch (%d) despite the latency target", lb)
	}
}
