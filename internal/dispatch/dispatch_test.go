package dispatch

import (
	"sync/atomic"
	"testing"
)

// exactlyOnce tracks per-job execution counts and summarizes violations.
type exactlyOnce struct {
	counts []atomic.Int32
}

func newExactlyOnce(n int) *exactlyOnce {
	return &exactlyOnce{counts: make([]atomic.Int32, n)}
}

func (e *exactlyOnce) job(i int) Job {
	return func() { e.counts[i].Add(1) }
}

func (e *exactlyOnce) verify(t *testing.T) {
	t.Helper()
	lost, dup := 0, 0
	for i := range e.counts {
		switch c := e.counts[i].Load(); {
		case c == 0:
			lost++
		case c > 1:
			dup++
		}
	}
	if lost != 0 || dup != 0 {
		t.Fatalf("%d jobs lost, %d jobs executed more than once", lost, dup)
	}
}

// TestDispatcherCarryoverProperty is the round-carryover property test: a
// stream of jobs pushed through small rounds with jitter and persistent
// crash injection must finish with every job performed exactly once —
// nothing lost to the per-round effectiveness tail, nothing duplicated
// across the round boundary. Run under -race in CI.
func TestDispatcherCarryoverProperty(t *testing.T) {
	const jobs = 8000
	crashRounds := 12
	d, err := New(Config{
		Shards:   4,
		Workers:  3,
		MaxBatch: 64, // force many rounds and much carryover
		Jitter:   true,
		Seed:     1,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= crashRounds {
				return nil
			}
			// Workers 1 and 2 crash at staggered, round-varying points;
			// worker 0 always survives.
			return []uint64{0, uint64(40 + 13*round + 7*shard), uint64(90 + 5*round)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	eo := newExactlyOnce(jobs)
	for i := 0; i < jobs; i++ {
		if i%3 == 0 {
			if _, err := d.Submit(eo.job(i)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Mix in small batches to cover both submission paths.
		batch := []Job{eo.job(i)}
		for i+1 < jobs && len(batch) < 5 && (i+1)%3 != 0 {
			i++
			batch = append(batch, eo.job(i))
		}
		if _, err := d.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	eo.verify(t)

	st := d.Stats()
	if st.Performed != jobs {
		t.Fatalf("performed %d of %d", st.Performed, jobs)
	}
	if st.Pending != 0 {
		t.Fatalf("pending %d after Flush", st.Pending)
	}
	if st.Duplicates != 0 {
		t.Fatalf("stats report %d duplicates", st.Duplicates)
	}
	if st.Crashes == 0 {
		t.Fatal("crash plan injected no crashes; test lost its teeth")
	}
	if st.Residue == 0 {
		t.Fatal("no residue was ever carried over; test lost its teeth")
	}
}

// TestDispatcherE2EStream is the acceptance end-to-end run: 100k jobs
// through 4 shards with crash injection, zero duplicates, zero lost jobs.
func TestDispatcherE2EStream(t *testing.T) {
	const jobs = 100_000
	d, err := New(Config{
		Shards:   4,
		Workers:  4,
		MaxBatch: 512,
		Seed:     2,
		CrashPlan: func(shard, round int) []uint64 {
			if round >= 25 {
				return nil
			}
			return []uint64{0, 300, uint64(500 + 31*round), 0}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	eo := newExactlyOnce(jobs)
	const chunk = 1000
	fns := make([]Job, 0, chunk)
	for base := 0; base < jobs; base += chunk {
		fns = fns[:0]
		for i := base; i < base+chunk; i++ {
			fns = append(fns, eo.job(i))
		}
		if _, err := d.SubmitBatch(fns); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	eo.verify(t)

	st := d.Stats()
	if st.Performed != jobs || st.Duplicates != 0 {
		t.Fatalf("performed %d, duplicates %d", st.Performed, st.Duplicates)
	}
	if st.Crashes == 0 {
		t.Fatal("no crashes injected")
	}
	if len(st.Shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.Rounds == 0 || sh.Performed == 0 {
			t.Fatalf("shard %d idle: %+v", i, sh)
		}
	}
}

// TestDispatcherTrickle drives batches smaller than the worker count, so
// every round needs padding, and interleaves Flushes with submissions.
func TestDispatcherTrickle(t *testing.T) {
	const jobs = 200
	d, err := New(Config{Shards: 2, Workers: 8, MaxBatch: 32, Jitter: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	eo := newExactlyOnce(jobs)
	for i := 0; i < jobs; i++ {
		if _, err := d.Submit(eo.job(i)); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			d.Flush()
		}
	}
	d.Flush()
	eo.verify(t)
}

// TestDispatcherCloseDrains checks Close completes pending work before
// stopping and that the dispatcher rejects submissions afterwards.
func TestDispatcherCloseDrains(t *testing.T) {
	const jobs = 3000
	d, err := New(Config{Shards: 2, Workers: 4, MaxBatch: 128, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eo := newExactlyOnce(jobs)
	for i := 0; i < jobs; i++ {
		if _, err := d.Submit(eo.job(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	eo.verify(t)
	if _, err := d.Submit(func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := d.SubmitBatch([]Job{func() {}}); err != ErrClosed {
		t.Fatalf("SubmitBatch after Close: err = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDispatcherIDs checks id assignment under per-shard block leasing:
// each shard draws dense ids from its own leased idBlock-sized block
// (one global-cursor CAS per block, not per job), and SubmitBatch leases
// its own contiguous range from the cursor.
func TestDispatcherIDs(t *testing.T) {
	d, err := New(Config{Shards: 3, Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Round-robin: the first two singles land on shards 0 and 1, each
	// leasing a fresh block.
	id1, err := d.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := d.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 {
		t.Fatalf("first single id %d, want 1 (shard 0's block starts the sequence)", id1)
	}
	if id2 != idBlock+1 {
		t.Fatalf("second single id %d, want %d (shard 1 leases its own block)", id2, idBlock+1)
	}
	// A batch leases a contiguous range directly from the cursor, past
	// the blocks already handed to the shards.
	first, err := d.SubmitBatch([]Job{func() {}, func() {}, func() {}})
	if err != nil {
		t.Fatal(err)
	}
	if first != 2*idBlock+1 {
		t.Fatalf("batch first id %d, want %d", first, 2*idBlock+1)
	}
	// The next single continues shard 0's block densely: per-shard
	// sequences stay gapless, which is what deterministic re-submission
	// keys on.
	next, err := d.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	if next != id1+1 {
		t.Fatalf("post-batch single id %d, want %d (shard 0's block continues densely)", next, id1+1)
	}
}

// TestDispatcherIDsSingleShard: with one shard the whole single-submit
// stream is one dense sequence from 1, blocks notwithstanding.
func TestDispatcherIDsSingleShard(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for want := uint64(1); want <= idBlock+2; want++ {
		id, err := d.Submit(func() {})
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("single-shard id %d, want %d (dense across block boundaries)", id, want)
		}
	}
}

// The ring deque's unit tests (grow, shrink, wraparound, stealBack)
// live in queue_test.go.
