package dispatch

import (
	"errors"
	"strconv"
	"time"

	"atmostonce/internal/obs"
	"atmostonce/internal/obs/opshttp"
)

// Metric threading. The dispatcher's hot paths never push into the
// registry: every per-shard counter and gauge is registered pull-style
// over state the engine already maintains (padded atomics, or the
// mu-guarded ShardStats the scrape reads under the same lock Stats
// takes — the one ordering that keeps QueueDepth consistent with the
// round counters). The only push-style instruments are the three
// histograms, each bounded by construction: the round-duration and
// round-loss histograms record once per ROUND, and the
// submit→completion histogram records only jobs sampled by id
// (latSampleMask, 1 in 16) — two atomic adds per sampled job. The
// amo-bench -overhead gate holds the sum of all of this under 3% of
// streaming throughput.

// latSampleMask selects the jobs whose submit→completion latency is
// recorded: id & latSampleMask == 0, i.e. 1 in 16. Ids are assigned
// densely, so the sample is unbiased across shards and batches.
const latSampleMask = 0xf

// latStamp converts a wall-clock reading to the compact latency stamp
// entries carry (see entry.t0): microseconds since the dispatcher's
// latBase anchor, truncated to 32 bits. 0 is reserved for "unsampled",
// so a reading that lands exactly on a wrap boundary is nudged to 1 —
// the µs of error is far below the histogram's bucket width.
func (d *Dispatcher) latStamp(now int64) uint32 {
	s := uint32(uint64(now-d.latBase) / 1000)
	if s == 0 {
		s = 1
	}
	return s
}

// setupObs builds the dispatcher's registry, histograms and tracer.
// Called before the shards are built so the recovery scan can record
// into the registry.
func (d *Dispatcher) setupObs() {
	if !d.cfg.Metrics {
		d.tr = obs.NewTracer(d.cfg.TraceSampleRate, 0)
		return
	}
	reg := obs.NewRegistry()
	d.reg = reg
	d.roundHist = reg.Histogram("amo_dispatcher_round_duration_seconds",
		"Wall time of each shard round (cut, execute, resolve).", 1e-9)
	d.latHist = reg.Histogram("amo_dispatcher_submit_to_done_seconds",
		"Submit-to-resolution latency of sampled jobs (1 in 16 by id), requeues included.", 1e-9)
	d.lossHist = reg.Histogram("amo_dispatcher_round_loss_ppm",
		"Per-round effectiveness loss (1 - performed/batch) in parts per million; bucket 0 is a perfect round.", 1)
	reg.CounterFunc("amo_dispatcher_recovered_jobs_total",
		"Jobs resolved from a previous incarnation's journal without re-running.",
		func() uint64 { return d.recoveredN.Load() })
	reg.GaugeFunc("amo_dispatcher_pending_jobs",
		"Jobs submitted but not yet resolved (queued or in flight), summed over shards.",
		func() float64 {
			performed := d.sumPerformed()
			submitted := d.sumSubmitted()
			if submitted < performed {
				submitted = performed
			}
			return float64(submitted - performed)
		})
	d.recoveryHist = reg.Histogram("amo_membackend_recovery_scan_seconds",
		"Duration of the per-shard journal recovery scan at startup.", 1e-9)
	d.tr = obs.NewTracer(d.cfg.TraceSampleRate, 0)
}

// registerShardObs exposes one shard's counters. The padded
// submitted/performed atomics are read lock-free; everything living in
// ShardStats is read under s.mu — the same lock and ordering Stats()
// uses, so a scrape can never see a QueueDepth that disagrees with the
// round counters next to it.
func (d *Dispatcher) registerShardObs(s *shard) {
	if d.reg == nil {
		return
	}
	sid := strconv.Itoa(s.id)
	d.reg.CounterFunc("amo_dispatcher_submitted_jobs_total",
		"Jobs accepted into the shard (ids consumed).",
		func() uint64 { return s.count.submitted.Load() }, "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_performed_jobs_total",
		"Jobs resolved by the shard: executed, expired or recovered.",
		func() uint64 { return s.count.performed.Load() }, "shard", sid)
	stat := func(read func(*ShardStats) uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			v := read(&s.stats)
			s.mu.Unlock()
			return v
		}
	}
	d.reg.CounterFunc("amo_dispatcher_rounds_total", "KKβ rounds executed.",
		stat(func(st *ShardStats) uint64 { return st.Rounds }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_residue_jobs_total",
		"Jobs carried to a later round as unperformed residue.",
		stat(func(st *ShardStats) uint64 { return st.Residue }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_stolen_jobs_total",
		"Jobs this shard claimed from sibling queues while idle.",
		stat(func(st *ShardStats) uint64 { return st.Stolen }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_expired_jobs_total",
		"Jobs resolved by deadline expiry at round assembly (payload never ran).",
		stat(func(st *ShardStats) uint64 { return st.Expired }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_cancelled_jobs_total",
		"Jobs resolved by submission-ctx cancellation at round assembly (payload never ran).",
		stat(func(st *ShardStats) uint64 { return st.Cancelled }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_crashes_total",
		"Injected worker crashes (workers revive next round).",
		stat(func(st *ShardStats) uint64 { return st.Crashes }), "shard", sid)
	d.reg.CounterFunc("amo_dispatcher_submit_blocked_nanoseconds_total",
		"Time submitters spent parked on this shard's full queue (Block policy backpressure).",
		stat(func(st *ShardStats) uint64 { return st.SubmitBlockedNanos }), "shard", sid)
	d.reg.GaugeFunc("amo_dispatcher_queue_depth",
		"Jobs resident in the shard queue at scrape time.",
		func() float64 {
			s.mu.Lock()
			v := s.q.len()
			s.mu.Unlock()
			return float64(v)
		}, "shard", sid)
	d.reg.GaugeFunc("amo_dispatcher_round_size",
		"Real jobs the adaptive controller cut into the shard's last round.",
		func() float64 { return float64(s.lastTakenA.Load()) }, "shard", sid)
	if s.durable {
		d.reg.CounterFunc("amo_membackend_journal_writes_total",
			"Journal rows appended (record-then-do) by the shard's workers.",
			func() uint64 { return s.journaled.Load() }, "shard", sid)
	}
}

// startOps binds the ops HTTP endpoint when MetricsAddr is set. The
// endpoint serves this dispatcher's registry alongside the process
// default (netmem, membackend).
func (d *Dispatcher) startOps() error {
	if d.cfg.MetricsAddr == "" {
		return nil
	}
	srv, err := opshttp.Serve(d.cfg.MetricsAddr, opshttp.Options{
		Registries: []*obs.Registry{d.reg, obs.Default},
		Statsz:     func() any { return d.Stats() },
		Tracer:     d.tr,
		Healthz: func() error {
			if d.closed.Load() {
				return errors.New("dispatcher closed")
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	d.ops = srv
	return nil
}

// OpsAddr returns the bound address of the ops endpoint ("" when
// Config.MetricsAddr is unset). With a ":0" config it carries the
// kernel-chosen port.
func (d *Dispatcher) OpsAddr() string {
	if d.ops == nil {
		return ""
	}
	return d.ops.Addr()
}

// Registry returns the dispatcher's metric registry (nil unless
// Config.Metrics — or one of the options implying it — is set).
func (d *Dispatcher) Registry() *obs.Registry { return d.reg }

// Tracer returns the dispatcher's job tracer (nil unless
// Config.TraceSampleRate > 0).
func (d *Dispatcher) Tracer() *obs.Tracer { return d.tr }

// LatencyQuantiles reads quantiles (each in [0,1]) off the sampled
// submit→completion latency histogram — the very histogram /metrics
// exposes. ok is false when metrics are disabled or nothing has been
// sampled yet.
func (d *Dispatcher) LatencyQuantiles(qs ...float64) ([]time.Duration, bool) {
	if d.latHist == nil {
		return nil, false
	}
	snap := d.latHist.Snapshot()
	if snap.Count == 0 {
		return nil, false
	}
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = time.Duration(snap.Quantile(q))
	}
	return out, true
}

// traceExpired records Expired (or Cancelled) events for a batch of
// round-assembly casualties (resolved outside the shard lock).
func (s *shard) traceExpired(rs []JobResult) {
	tr := s.d.tr
	if tr == nil {
		return
	}
	for _, r := range rs {
		ev := obs.TraceExpired
		if r.Cancelled {
			ev = obs.TraceCancelled
		}
		tr.Record(r.ID, ev, s.id)
	}
}
