package dispatch

import (
	"sync/atomic"
	"testing"
)

// TestDispatcherRoundLoopAllocFree is the allocation gate for the
// steady-state round path: submit → queue → round → finishRound →
// Flush, with no async waiters, no metrics and no tracer, must not
// allocate per job or per round once warm. The budget below is a small
// fraction of one allocation per ROUND (cycles cut several rounds), so
// a single heap allocation creeping into either the per-job submit path
// or the per-round loop trips it. The only tolerated noise is the
// once-per-second dispatch_round heartbeat record (~10 allocations,
// amortized across every cycle of the run).
func TestDispatcherRoundLoopAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var sink atomic.Uint64
	fn := func() { sink.Add(1) }
	// Warm every pool: ring capacities, runtime prewarm, the first
	// heartbeat record.
	for i := 0; i < 4096; i++ {
		if _, err := d.Submit(fn); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	const jobs = 2048
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < jobs; i++ {
			if _, err := d.Submit(fn); err != nil {
				t.Fatal(err)
			}
		}
		d.Flush()
	})
	t.Logf("allocs per %d-job cycle: %.3f", jobs, avg)
	// < 1 alloc per 2048-job cycle: a per-round leak shows up as several
	// per cycle, a per-job leak as thousands.
	if avg >= 1 {
		t.Errorf("steady-state cycle of %d jobs allocates %.2f times (want < 1)", jobs, avg)
	}
}

// TestDispatcherResolveAllocs gates the async resolution path: with a
// registered callback per job, the marginal cost per job is the waiter
// table's map churn (insert at submit, delete at resolve) plus
// resolveResults itself, which reuses the shard's scratch buffer. The
// map's occasional same-size growth is real but amortized, so the gate
// is a small epsilon per job rather than exact zero.
func TestDispatcherResolveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var resolved atomic.Uint64
	done := func(r JobResult) { resolved.Add(1) }
	fn := func() {}
	for i := 0; i < 8192; i++ {
		if _, err := d.SubmitCallback(fn, done); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	const jobs = 2048
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < jobs; i++ {
			if _, err := d.SubmitCallback(fn, done); err != nil {
				t.Fatal(err)
			}
		}
		d.Flush()
	})
	t.Logf("allocs per %d-job async cycle: %.3f", jobs, avg)
	if perJob := avg / jobs; perJob > 0.05 {
		t.Errorf("async cycle allocates %.3f per job (want ≤ 0.05; %.1f per %d-job cycle)",
			perJob, avg, jobs)
	}
}
