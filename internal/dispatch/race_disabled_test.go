//go:build !race

package dispatch

const raceEnabled = false
