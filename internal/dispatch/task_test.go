package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoBasics: one Task through Do carries its payload error to both
// the Handle's future and the callback, exactly once each.
func TestDoBasics(t *testing.T) {
	d, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	boom := errors.New("boom")
	var cbErr atomic.Value
	h, err := d.Do(context.Background(), Task{
		Fn:       func(context.Context) error { return boom },
		Callback: func(r JobResult) { cbErr.Store(r.Err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID == 0 {
		t.Fatal("Handle.ID is 0; real ids start at 1")
	}
	select {
	case r := <-h.Done():
		if r.ID != h.ID || !errors.Is(r.Err, boom) || r.Expired || r.Recovered {
			t.Fatalf("future = %+v, want ID %d with Err boom", r, h.ID)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("future never resolved")
	}
	d.Flush() // the callback fires before the round publishes, so it has run by now
	if got, _ := cbErr.Load().(error); !errors.Is(got, boom) {
		t.Fatalf("callback saw Err %v, want boom", got)
	}
	select {
	case r := <-h.Done():
		t.Fatalf("future resolved twice: %+v", r)
	default:
	}

	if _, err := d.Do(context.Background(), Task{}); !errors.Is(err, ErrNilFn) {
		t.Fatalf("nil Fn: err = %v, want ErrNilFn", err)
	}
	if _, err := d.Do(context.Background(), Task{Fn: func(context.Context) error { return nil }, Priority: 7}); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

// TestDoBatchHandles: DoBatch hands back one Handle per Task with a
// contiguous id block, and every future resolves.
func TestDoBatchHandles(t *testing.T) {
	d, err := New(Config{Shards: 3, Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const n = 100
	var ran atomic.Int64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Fn: func(context.Context) error { ran.Add(1); return nil }}
	}
	hs, err := d.DoBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != n {
		t.Fatalf("%d handles, want %d", len(hs), n)
	}
	for i, h := range hs {
		if h.ID != hs[0].ID+uint64(i) {
			t.Fatalf("handle %d id %d; block not contiguous from %d", i, h.ID, hs[0].ID)
		}
		select {
		case r := <-h.Done():
			if r.ID != h.ID || r.Err != nil {
				t.Fatalf("handle %d resolved as %+v", i, r)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("handle %d never resolved", i)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d", got, n)
	}
}

// TestEmptyBatchSentinel: an empty batch — v1 or v2 — consumes no job
// ids and never touches a shard; SubmitBatch's sentinel 0 is disjoint
// from real ids, which start at 1.
func TestEmptyBatchSentinel(t *testing.T) {
	d, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 3; i++ {
		first, err := d.SubmitBatch(nil)
		if err != nil || first != 0 {
			t.Fatalf("SubmitBatch(nil) = (%d, %v), want (0, nil)", first, err)
		}
		hs, err := d.DoBatch(context.Background(), nil)
		if err != nil || hs != nil {
			t.Fatalf("DoBatch(nil) = (%v, %v), want (nil, nil)", hs, err)
		}
	}
	if st := d.Stats(); st.Submitted != 0 {
		t.Fatalf("empty batches counted %d submissions", st.Submitted)
	}
	for _, s := range d.shards {
		s.mu.Lock()
		l := s.q.len()
		s.mu.Unlock()
		if l != 0 {
			t.Fatalf("empty batch touched shard %d (queue %d)", s.id, l)
		}
	}
	// The very next real id is 1: the sentinel consumed nothing.
	id, err := d.Submit(func() {})
	if err != nil || id != 1 {
		t.Fatalf("first real submission got id %d (err %v), want 1", id, err)
	}
}

// TestDoCtxCancelUnparks: a cancelled ctx releases a Block-policy
// submitter parked on a full queue, without consuming a job id.
func TestDoCtxCancelUnparks(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 2, QueueDepth: 2, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Saturate: QueueDepth bounds queued + in-flight, so two gated jobs
	// fill the shard.
	for i := 0; i < 2; i++ {
		if _, err := d.Submit(func() { <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	returned := make(chan error, 1)
	go func() {
		_, err := d.Do(ctx, Task{Fn: func(context.Context) error { return nil }})
		returned <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it park (cancel-before-park works too)
	cancel()
	select {
	case err := <-returned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("unparked submitter returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submitter still parked after ctx cancel")
	}
	// A ctx that is already dead is rejected up front, id unconsumed.
	if _, err := d.Do(ctx, Task{Fn: func(context.Context) error { return nil }}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx Do returned %v", err)
	}
	// No id was burned: ids 1,2 went to the gated jobs, the next is 3.
	close(gate)
	d.Flush()
	h, err := d.Do(context.Background(), Task{Fn: func(context.Context) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 3 {
		t.Fatalf("post-cancel id %d, want 3 (cancellations must not burn ids)", h.ID)
	}
}

// TestCloseReleasesParkedSubmitters: Close must release Block-policy
// submitters parked on a full queue with ErrClosed — not a hang, not
// ErrQueueFull — without consuming their ids. Run under -race; the test
// races several parked submitters against Close.
func TestCloseReleasesParkedSubmitters(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 2, QueueDepth: 2, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Submit(func() { <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	const parked = 4
	errs := make(chan error, parked)
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				_, err = d.Submit(func() {})
			} else {
				_, err = d.Do(context.Background(), Task{Fn: func(context.Context) error { return nil }})
			}
			errs <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let them park (close-before-park is fine too)

	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	// The parked submitters must be released by Close itself, while the
	// gated round is still wedged — release the gate only afterwards.
	for i := 0; i < parked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked submitter returned %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("submitter still parked after Close")
		}
	}
	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if st := d.Stats(); st.Submitted != 2 || st.Performed != 2 {
		t.Fatalf("released submitters consumed ids: submitted %d performed %d, want 2/2", st.Submitted, st.Performed)
	}
}

// TestDeadlineExpiry: a job whose deadline passes before its round is
// assembled is never started and resolves exactly once with Expired and
// Err = context.DeadlineExceeded — while still counting toward Flush and
// Stats conservation.
func TestDeadlineExpiry(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var ran atomic.Int64
	var cbs atomic.Int64
	h, err := d.Do(context.Background(), Task{
		Fn:       func(context.Context) error { ran.Add(1); return nil },
		Deadline: time.Now().Add(-time.Millisecond), // already dead on arrival
		Callback: func(r JobResult) { cbs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-h.Done():
		if !r.Expired || !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("result = %+v, want Expired with DeadlineExceeded", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("expired job never resolved")
	}
	d.Flush() // must return: expired jobs count as resolved
	if ran.Load() != 0 {
		t.Fatal("expired job's payload ran")
	}
	if got := cbs.Load(); got != 1 {
		t.Fatalf("expired job's callback fired %d times", got)
	}
	st := d.Stats()
	if st.Expired != 1 {
		t.Fatalf("Stats.Expired = %d, want 1", st.Expired)
	}
	if st.Pending != 0 || st.Performed != st.Submitted {
		t.Fatalf("conservation broken: %+v", st)
	}

	// A generous deadline runs normally and hands the payload a ctx
	// carrying that deadline.
	var sawDeadline atomic.Bool
	h2, err := d.Do(context.Background(), Task{
		Fn: func(ctx context.Context) error {
			_, ok := ctx.Deadline()
			sawDeadline.Store(ok)
			return nil
		},
		Deadline: time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := <-h2.Done(); r.Expired || r.Err != nil {
		t.Fatalf("dated job resolved as %+v", r)
	}
	if !sawDeadline.Load() {
		t.Fatal("payload ctx did not carry the Task deadline")
	}
}

// TestPriorityInversion: a High-priority Task submitted behind a deep
// Low-priority backlog jumps the line — it completes while most of the
// backlog is still pending. This is the regression guard for the v1
// single-ring behavior, where the High job would have waited out the
// whole backlog.
func TestPriorityInversion(t *testing.T) {
	const backlog = 500
	gate := make(chan struct{})
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Wedge the first round so the whole backlog queues behind it.
	if _, err := d.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	tasks := make([]Task, backlog)
	for i := range tasks {
		tasks[i] = Task{Fn: func(context.Context) error { return nil }, Priority: Low}
	}
	if _, err := d.DoBatch(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	pendingAtHigh := make(chan uint64, 1)
	_, err = d.Do(context.Background(), Task{
		Fn:       func(context.Context) error { return nil },
		Priority: High,
		Callback: func(JobResult) { pendingAtHigh <- d.Stats().Pending },
	})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	d.Flush()
	got := <-pendingAtHigh
	if got < backlog/2 {
		t.Fatalf("High job completed with only %d of %d jobs pending — it waited out the Low backlog", got, backlog)
	}
}

// TestLowRunsWhenHighIdle: strict priority must not starve Low once the
// higher classes go idle — a burst of High work delays Low, but after it
// drains the Low jobs all run.
func TestLowRunsWhenHighIdle(t *testing.T) {
	d, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const low = 200
	var lowDone atomic.Int64
	for i := 0; i < low; i++ {
		if _, err := d.Do(context.Background(), Task{
			Fn:       func(context.Context) error { lowDone.Add(1); return nil },
			Priority: Low,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A competing stream of High work, then silence.
	for i := 0; i < 2000; i++ {
		if _, err := d.Do(context.Background(), Task{
			Fn:       func(context.Context) error { return nil },
			Priority: High,
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	if got := lowDone.Load(); got != low {
		t.Fatalf("only %d of %d Low jobs ran after High went idle", got, low)
	}
	if st := d.Stats(); st.Duplicates != 0 {
		t.Fatalf("%d duplicates", st.Duplicates)
	}
}

// TestFlushContext: a deadline-capable Flush returns ctx.Err when the
// drain outlasts the ctx, and nil once the dispatcher is drained.
func TestFlushContext(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := d.FlushContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FlushContext on a wedged dispatcher = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := d.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext after drain = %v", err)
	}
}
