package dispatch

import (
	"context"
	"sync"
	"sync/atomic"
)

// JobResult reports one submitted job's completion to its future or
// callback. Exactly one JobResult is delivered per async submission.
type JobResult struct {
	// ID is the job's dispatcher-wide id.
	ID uint64
	// Err is the payload's returned error (always nil for the v1 func()
	// paths, whose payloads cannot fail), or context.DeadlineExceeded
	// when Expired is set. An error does not affect at-most-once
	// accounting: the job ran once and counts performed.
	Err error
	// Expired is true when the job's deadline passed before its round
	// was assembled: the payload never ran and never will (an expired
	// job is removed at round-assembly time, so at-most-once is
	// untouched), and Err is context.DeadlineExceeded.
	Expired bool
	// Recovered is true when the job resolved from a previous
	// incarnation's durable journal: a prior process performed it, so
	// this incarnation completed the future without re-running the
	// payload (the at-most-once guarantee across process death).
	Recovered bool
}

// waiterShards is the lock striping of the completion-notification
// table; a power of two so the modulo is a mask.
const waiterShards = 16

// waiters is the dispatcher-wide completion-notification table: job id →
// completion callback, registered by the async submit paths and fired by
// whichever shard performs the job. Because the table is keyed by the
// dispatcher-wide id — not by shard — a job's future survives residue
// carry-over, work-stealing (the performing shard may not be the one the
// job was submitted to) and durable recovery (a recovered job never
// reaches a shard; its waiter is fired by the submit path itself).
type waiters struct {
	n      atomic.Int64 // registered waiters; lets sync-only workloads skip the table
	stripe [waiterShards]struct {
		mu sync.Mutex
		m  map[uint64]func(JobResult)
	}
}

// active reports whether any waiter is registered; shards use it to skip
// per-job table lookups when the workload is purely synchronous.
func (w *waiters) active() bool { return w.n.Load() > 0 }

// add registers done to fire when job id completes. The id must not
// already be registered (ids are unique, and each is registered at most
// once by its submitting goroutine).
func (w *waiters) add(id uint64, done func(JobResult)) {
	s := &w.stripe[id%waiterShards]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]func(JobResult))
	}
	s.m[id] = done
	s.mu.Unlock()
	w.n.Add(1)
}

// resolve fires and removes id's waiter, if any. The callback runs on
// the caller's goroutine, outside all table and shard locks.
func (w *waiters) resolve(id uint64, r JobResult) {
	s := &w.stripe[id%waiterShards]
	s.mu.Lock()
	done, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if ok {
		w.n.Add(-1)
		done(r)
	}
}

// resolveResults fires the waiter (if any) of every result's id. Ids
// without a waiter (plain Submit jobs) are skipped cheaply.
func (w *waiters) resolveResults(rs []JobResult) {
	for _, r := range rs {
		if w.n.Load() == 0 {
			return
		}
		w.resolve(r.ID, r)
	}
}

// SubmitAsync enqueues fn like Submit and additionally returns a future:
// a 1-buffered channel that receives exactly one JobResult once the job
// has been performed (after its payload returned), or immediately when
// the job resolves from a previous incarnation's durable journal. The
// channel is never closed. Backpressure applies exactly as for Submit:
// with a bounded queue the call blocks (Block) or fails with
// ErrQueueFull (FailFast) — a failed call delivers nothing.
func (d *Dispatcher) SubmitAsync(fn Job) (uint64, <-chan JobResult, error) {
	ch := make(chan JobResult, 1)
	id, err := d.do(context.Background(), entry{fn0: fn}, func(r JobResult) { ch <- r })
	if err != nil {
		return 0, nil, err
	}
	return id, ch, nil
}

// SubmitCallback enqueues fn like Submit and invokes done exactly once
// when the job completes. done runs on the performing shard's loop
// goroutine — it must be fast and must not call back into the
// dispatcher's blocking methods (Flush, Close) — or, for jobs resolved
// from the durable journal, synchronously on the submitting goroutine
// with Recovered set. A nil done degrades to Submit.
func (d *Dispatcher) SubmitCallback(fn Job, done func(JobResult)) (uint64, error) {
	return d.do(context.Background(), entry{fn0: fn}, done)
}
