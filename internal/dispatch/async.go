package dispatch

import (
	"context"
	"sync"
	"sync/atomic"
)

// JobResult reports one submitted job's completion to its future or
// callback. Exactly one JobResult is delivered per async submission.
type JobResult struct {
	// ID is the job's dispatcher-wide id.
	ID uint64
	// Err is the payload's returned error (always nil for the v1 func()
	// paths, whose payloads cannot fail), or context.DeadlineExceeded
	// when Expired is set. An error does not affect at-most-once
	// accounting: the job ran once and counts performed.
	Err error
	// Expired is true when the job's deadline passed before its round
	// was assembled: the payload never ran and never will (an expired
	// job is removed at round-assembly time, so at-most-once is
	// untouched), and Err is context.DeadlineExceeded.
	Expired bool
	// Cancelled is true when the job's submission ctx (Do's ctx
	// argument) was already cancelled when its shard assembled the next
	// round: the payload never ran and never will — like deadline
	// expiry, cancellation is decided at round-assembly time, so it can
	// only turn "run once" into "run zero times" — and Err is the ctx's
	// error (context.Canceled or context.DeadlineExceeded).
	Cancelled bool
	// Recovered is true when the job resolved from a previous
	// incarnation's durable journal: a prior process performed it, so
	// this incarnation completed the future without re-running the
	// payload (the at-most-once guarantee across process death).
	Recovered bool
}

// waiterStripes is the lock striping of the completion-notification
// table; a power of two so the modulo is a mask.
const waiterStripes = 64

// waiterStripe is one lock-striped slice of the table, padded to a full
// cache line so neighboring stripes — hammered by different shards —
// never false-share.
type waiterStripe struct {
	mu sync.Mutex
	m  map[uint64]func(JobResult)
	_  [48]byte
}

// waiterHit pairs a resolved waiter with its result, collected under a
// stripe lock and fired outside it (see resolveResults).
type waiterHit struct {
	done func(JobResult)
	r    JobResult
}

// waiters is the dispatcher-wide completion-notification table: job id →
// completion callback, registered by the async submit paths and fired by
// whichever shard performs the job. Because the table is keyed by the
// dispatcher-wide id — not by shard — a job's future survives residue
// carry-over, work-stealing (the performing shard may not be the one the
// job was submitted to) and durable recovery (a recovered job never
// reaches a shard; its waiter is fired by the submit path itself).
//
// The stripe of an id is its id BLOCK modulo waiterStripes: single
// submissions draw consecutive ids from their shard's leased block (see
// leaseID), so one shard's adds land on one stripe at a time, and a
// round's batched resolution touches each stripe once per run of
// consecutive ids instead of once per job. Different shards hold
// different blocks, so under concurrent load they hash to different
// stripes instead of bouncing one table-wide line.
type waiters struct {
	// used latches once any waiter has ever been registered; sync-only
	// workloads read it (read-mostly, no write traffic after the first
	// async submission) and skip the table entirely.
	used   atomic.Bool
	_      [63]byte
	stripe [waiterStripes]waiterStripe
}

// stripeOf maps an id to its stripe: block-clustered (see waiters).
func stripeOf(id uint64) int {
	return int((id >> idBlockBits) & (waiterStripes - 1))
}

// active reports whether a waiter was ever registered; shards use it to
// skip per-job table lookups when the workload is purely synchronous.
// It never resets: a dispatcher that has seen one async submission keeps
// collecting results, which costs a per-round slice walk, not a lock.
func (w *waiters) active() bool { return w.used.Load() }

// add registers done to fire when job id completes. The id must not
// already be registered (ids are unique, and each is registered at most
// once by its submitting goroutine). The used latch is written only on
// the first async submission, so the flag's cache line stays read-mostly
// (shards poll active() every round).
func (w *waiters) add(id uint64, done func(JobResult)) {
	if !w.used.Load() {
		w.used.Store(true)
	}
	s := &w.stripe[stripeOf(id)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]func(JobResult))
	}
	s.m[id] = done
	s.mu.Unlock()
}

// resolveResults fires the waiter (if any) of every result's id, in
// result order. Consecutive results on the same stripe resolve under ONE
// lock acquisition — a round's results arrive in batch order and ids
// cluster by block, so a typical round costs a handful of lock rounds
// instead of one per job. Callbacks never run under the stripe lock
// (they may re-enter add via SubmitAsync): each run's hits are collected
// into *scratch (the caller's reusable buffer, grown as needed) and
// fired after the lock is dropped, preserving result order.
func (w *waiters) resolveResults(rs []JobResult, scratch *[]waiterHit) {
	if !w.used.Load() {
		return
	}
	buf := (*scratch)[:0]
	for i := 0; i < len(rs); {
		si := stripeOf(rs[i].ID)
		st := &w.stripe[si]
		st.mu.Lock()
		j := i
		for ; j < len(rs) && stripeOf(rs[j].ID) == si; j++ {
			if done, ok := st.m[rs[j].ID]; ok {
				delete(st.m, rs[j].ID)
				buf = append(buf, waiterHit{done, rs[j]})
			}
		}
		st.mu.Unlock()
		for k := range buf {
			buf[k].done(buf[k].r)
			buf[k] = waiterHit{} // drop the callback reference
		}
		buf = buf[:0]
		i = j
	}
	*scratch = buf
}

// pending counts registered waiters — a test/debug helper (it takes
// every stripe lock), not a hot-path primitive.
func (w *waiters) pending() int {
	n := 0
	for i := range w.stripe {
		w.stripe[i].mu.Lock()
		n += len(w.stripe[i].m)
		w.stripe[i].mu.Unlock()
	}
	return n
}

// SubmitAsync enqueues fn like Submit and additionally returns a future:
// a 1-buffered channel that receives exactly one JobResult once the job
// has been performed (after its payload returned), or immediately when
// the job resolves from a previous incarnation's durable journal. The
// channel is never closed. Backpressure applies exactly as for Submit:
// with a bounded queue the call blocks (Block) or fails with
// ErrQueueFull (FailFast) — a failed call delivers nothing.
func (d *Dispatcher) SubmitAsync(fn Job) (uint64, <-chan JobResult, error) {
	ch := make(chan JobResult, 1)
	id, err := d.do(context.Background(), entry{fn0: fn}, func(r JobResult) { ch <- r })
	if err != nil {
		return 0, nil, err
	}
	return id, ch, nil
}

// SubmitCallback enqueues fn like Submit and invokes done exactly once
// when the job completes. done runs on the performing shard's loop
// goroutine — it must be fast and must not call back into the
// dispatcher's blocking methods (Flush, Close) — or, for jobs resolved
// from the durable journal, synchronously on the submitting goroutine
// with Recovered set. A nil done degrades to Submit.
func (d *Dispatcher) SubmitCallback(fn Job, done func(JobResult)) (uint64, error) {
	return d.do(context.Background(), entry{fn0: fn}, done)
}
