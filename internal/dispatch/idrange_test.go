package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// checkDenseLease asserts the id-range lease invariant after a
// dispatcher has quiesced: the assigned ids plus the shards' unconsumed
// block tails tile [1, cursor] exactly — every leased id is accounted
// for once, no id twice, no gaps. This is what keeps each shard's
// durable id sequence dense (deterministic re-submission reproduces it)
// no matter how many submissions were rejected, cancelled or cut off by
// Close along the way.
func checkDenseLease(t *testing.T, d *Dispatcher, ids []uint64) {
	t.Helper()
	cursor := d.idCursor.v.Load()
	seen := make(map[uint64]bool, cursor)
	for _, id := range ids {
		if id == 0 || id > cursor {
			t.Fatalf("id %d outside the leased range [1, %d]", id, cursor)
		}
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
	}
	for _, s := range d.shards {
		s.idMu.Lock()
		lo, hi := s.idNext, s.idEnd
		s.idMu.Unlock()
		for id := lo; id < hi; id++ {
			if seen[id] {
				t.Fatalf("id %d is both assigned and in shard %d's unconsumed block tail [%d, %d)", id, s.id, lo, hi)
			}
			seen[id] = true
		}
	}
	for id := uint64(1); id <= cursor; id++ {
		if !seen[id] {
			t.Fatalf("id %d was leased but neither assigned nor held in a block tail — a gap in the sequence", id)
		}
	}
}

// TestIDRangesDenseUnderRejections: FailFast rejections and dead-ctx
// admissions must not burn ids or leave gaps in any shard's leased
// blocks.
func TestIDRangesDenseUnderRejections(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{Shards: 3, Workers: 2, MaxBatch: 4, QueueDepth: 4, Policy: FailFast, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	rejected := 0
	for i := 0; i < 300; i++ {
		id, err := d.Submit(func() { <-gate })
		if errors.Is(err, ErrQueueFull) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 40; i++ {
		first, err := d.SubmitBatch([]Job{func() { <-gate }, func() { <-gate }})
		if errors.Is(err, ErrQueueFull) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, first, first+1)
	}
	if rejected == 0 {
		t.Fatal("queues never filled; the test exercised no rejections")
	}
	// A dead ctx is rejected at admission, consuming nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Do(ctx, Task{Fn: func(context.Context) error { return nil }}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx Do returned %v", err)
	}
	close(gate)
	d.Flush()
	checkDenseLease(t, d, ids)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIDRangesDenseUnderCancelCloseRace: Block-policy submitters
// released by ctx cancellation or by a concurrent Close must leave the
// per-shard id sequences gapless. Run under -race.
func TestIDRangesDenseUnderCancelCloseRace(t *testing.T) {
	for iter := 0; iter < 4; iter++ {
		gate := make(chan struct{})
		d, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 4, QueueDepth: 2, Policy: Block, Seed: int64(iter)})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var ids []uint64
		// Wedge both shards full of gated jobs.
		for i := 0; i < 4; i++ {
			id, err := d.Submit(func() { <-gate })
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := context.Background()
				if i%2 == 0 {
					c = ctx // half the parked submitters get cancelled
				}
				h, err := d.Do(c, Task{Fn: func(context.Context) error { return nil }})
				if err != nil {
					return // cancelled or closed: must have consumed nothing
				}
				mu.Lock()
				ids = append(ids, h.ID)
				mu.Unlock()
			}(i)
		}
		time.Sleep(10 * time.Millisecond) // let them park
		cancel()
		// Race Close against the remaining parked submitters, then free
		// the wedged rounds so Close can drain.
		closed := make(chan error, 1)
		go func() { closed <- d.Close() }()
		time.Sleep(5 * time.Millisecond)
		close(gate)
		if err := <-closed; err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		mu.Lock()
		checkDenseLease(t, d, ids)
		mu.Unlock()
	}
}

// TestRecoveryAcrossRangeBoundary: a durable single-submit stream long
// enough that every shard leases multiple id blocks, crashed mid-stream
// and replayed — recovery must hand back the same ids across the block
// boundaries, skipping exactly the journaled jobs (no duplicate, no
// loss).
func TestRecoveryAcrossRangeBoundary(t *testing.T) {
	requireMmap(t)
	const (
		shards = 2
		jobs   = 5 * idBlock // > 2 blocks per shard: singles cross boundaries
	)
	dir := t.TempDir()
	cfg := Config{
		Shards:  shards,
		Workers: 2, MaxBatch: 32,
		MaxJobs: jobs + 4*idBlock, // slack for leased-but-unconsumed tails
		NewMem:  mmapFactory(dir),
		Seed:    99,
	}

	eo := newExactlyOnce(jobs)
	submit := func(d *Dispatcher) []uint64 {
		ids := make([]uint64, jobs)
		for i := 0; i < jobs; i++ {
			id, err := d.Submit(eo.job(i))
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return ids
	}

	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids1 := submit(d1)
	// Let it perform a decent prefix, then die at a round boundary.
	waitFor(t, "some progress before the crash", func() bool {
		return d1.Stats().Performed > jobs/4
	})
	d1.abandon()

	// The successor replays the identical stream: same single-submit
	// order, so the same per-shard blocks are leased in the same order
	// and every id matches its first incarnation.
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Stats().Recovered; rec != 0 {
		t.Fatalf("recovered count %d before any re-submission", rec)
	}
	ids2 := submit(d2)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("replayed submission %d got id %d, want %d (id sequence not deterministic across restart)", i, ids2[i], ids1[i])
		}
	}
	d2.Flush()
	eo.verify(t) // every job ran exactly once across both incarnations
	st := d2.Stats()
	if st.Recovered == 0 {
		t.Fatal("nothing recovered from the journal; the crash happened too early to test replay")
	}
	if st.Duplicates != 0 {
		t.Fatalf("%d duplicates across the restart", st.Duplicates)
	}
}
