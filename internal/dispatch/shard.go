package dispatch

import (
	"context"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce/internal/conc"
	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
	"atmostonce/internal/shmem"
)

// shard is one independent KKβ instance: a persistent worker pool, a
// pending-job deque and the loop that cuts rounds. The loop goroutine is
// the only round orchestrator, so everything it touches between rounds
// (batch, runtime, the adaptive-controller state) needs no lock; the
// deque, the reservation counter and stats are shared with Submit/Stats
// and guarded by mu.
type shard struct {
	d  *Dispatcher
	id int
	m  int
	rt *conc.Runtime

	// Backpressure shape, fixed at construction: depth is the bounded
	// queue capacity (0 = unbounded) and target the adaptive
	// controller's per-round latency goal in nanoseconds (≤ 0 disables).
	depth  int
	target float64

	// Durable state (nil/zero for in-process shards): the register
	// backend, the journal geometry and the per-worker append cursors.
	// See durable.go for the register-file layout. ackedW is the
	// backend's AckedWriter capability when it has one (remote backends
	// do): the journal writes through it so record-then-do holds across
	// the network, not just across local process death.
	backend       membackend.Backend
	mem           shmem.Mem
	ackedW        membackend.AckedWriter
	journalW      membackend.JournalWriter
	batchJournalW membackend.BatchJournalWriter
	durable       bool
	jlen          int
	rbase         int
	jcur          []int

	// Group-commit state (JournalBatch > 1): each worker claims up to
	// jbatch jobs — marked done in the round, payloads deferred — then
	// flushClaims journals all of them in ONE vectored acked write and
	// runs the payloads. claims[p-1] is worker p's open claim buffer,
	// touched only by worker p during a round and by nobody between
	// rounds (the runtime's Flush hook drains it before the round
	// settles).
	jbatch int
	claims []workerClaims

	// count points at this shard's padded submitted/performed counters
	// (d.counts[id]); submit paths and round completion touch only these,
	// never a dispatcher-global counter.
	count *shardCount

	// Id-range lease state: [idNext, idEnd) is the unconsumed tail of the
	// block this shard last leased from the dispatcher's cursor (see
	// leaseID). idMu is taken only by single-job submitters targeting
	// this shard — never by the loop — so it is uncontended unless
	// multiple producers hash onto one shard simultaneously.
	idMu   sync.Mutex
	idNext uint64
	idEnd  uint64

	mu        sync.Mutex
	cond      *sync.Cond // queue became non-empty (or shard closed)
	notFull   *sync.Cond // queue space freed, for Block-policy submitters
	q         pqueue
	reserved  int // slots reserved but not yet enqueued (FailFast, Block, steals)
	inflight  int // jobs of the round in flight, still holding their slots
	closed    bool
	abandoned bool
	stats     ShardStats

	// batch holds the jobs of the round in flight, indexed by local job id
	// minus one; slots past the real batch are zero (round padding). Only
	// the loop goroutine and — during a round — the pool workers read it.
	batch  []entry
	lastK  int
	execFn func(worker, local int)
	done   chan struct{}

	// Adaptive round controller (loop goroutine only): ewmaPerJob is the
	// smoothed wall-clock cost per batch slot of recent rounds, lastTaken
	// the size of the last round's real batch — the next round is capped
	// at target/ewmaPerJob and at 2·lastTaken (ramp smoothing), floored
	// at m, so round size follows observed load instead of pinning at
	// MaxBatch.
	ewmaPerJob float64
	lastTaken  int
	// lastRoundLog (loop goroutine only) is the Unix-nano stamp of the
	// last dispatch_round record, for the once-per-second heartbeat gate
	// in observeRound.
	lastRoundLog int64

	// Observability mirrors (see obs.go): lastTakenA shadows lastTaken
	// atomically so the round-size gauge never races the loop goroutine;
	// journaled counts journal rows for the journal-writes counter
	// (jcur holds the same totals but is written lock-free by workers,
	// so a scrape cannot read it).
	lastTakenA atomic.Int64
	journaled  atomic.Uint64

	stealBuf []entry     // scratch for work-stealing transfers
	doneRes  []JobResult // scratch: results of this round, for waiter resolution
	dueBuf   []entry     // scratch: deadline-due entries pulled at round assembly
	expired  []JobResult // scratch: expired-job results, resolved outside the lock
	cbBuf    []waiterHit // scratch for batched waiter resolution (see waiters.resolveResults)
}

// newShard builds one shard. With a durable backend it also performs
// the recovery scan, returning the job ids a previous process
// incarnation already performed.
func newShard(d *Dispatcher, id int) (*shard, []uint64, error) {
	s := &shard{
		d:      d,
		id:     id,
		m:      d.cfg.Workers,
		count:  &d.counts[id],
		depth:  d.cfg.QueueDepth,
		target: float64(d.cfg.RoundTarget),
		batch:  make([]entry, d.cfg.MaxBatch),
		done:   make(chan struct{}),
	}
	opts := conc.RuntimeOptions{
		M:        d.cfg.Workers,
		Capacity: d.cfg.MaxBatch,
		Beta:     d.cfg.Beta,
		Jitter:   d.cfg.Jitter,
		Seed:     d.cfg.Seed + int64(id)*1_000_003,
	}
	var recovered []uint64
	if d.cfg.NewMem != nil {
		var err error
		if recovered, err = s.openDurable(&d.cfg); err != nil {
			return nil, nil, err
		}
		s.mem = s.backend
		opts.Mem, opts.MemBase = s.backend, s.rbase
		if s.jbatch > 1 {
			// Workers with an open claim buffer at the end of their step
			// loop (round drained, or injected crash) flush it before the
			// round settles.
			opts.Flush = s.flushClaims
		}
	}
	rt, err := conc.NewRuntime(opts)
	if err != nil {
		if s.backend != nil {
			s.backend.Close()
		}
		return nil, nil, err
	}
	s.rt = rt
	s.cond = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	s.execFn = s.exec
	return s, recovered, nil
}

// leaseID hands out the next id from the shard's leased block, leasing
// a fresh block from the dispatcher-wide cursor only when the block is
// spent — so the single-submit hot path crosses shards once per idBlock
// ids instead of once per job. Ids within a block are consumed densely
// and in order on the submitting goroutines, so a deterministic submit
// stream reproduces the same ids across incarnations (the durable
// recovery contract). On ErrJournalFull nothing is consumed.
func (s *shard) leaseID() (uint64, error) {
	s.idMu.Lock()
	if s.idNext == s.idEnd {
		lo, hi, err := s.d.leaseBlock()
		if err != nil {
			s.idMu.Unlock()
			return 0, err
		}
		s.idNext, s.idEnd = lo, hi
	}
	id := s.idNext
	s.idNext++
	s.idMu.Unlock()
	return id, nil
}

// snapshotStats copies the shard's counters and its queue depth inside
// ONE critical section of s.mu. Every reader of per-shard state —
// Stats(), the obs gauge/counter funcs, and through them the expvar
// adapter — goes through this lock, so a snapshot can never pair a
// stale QueueDepth with fresher round counters (or vice versa): the
// depth is exactly the queue the counters describe.
func (s *shard) snapshotStats() ShardStats {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = s.q.len()
	s.mu.Unlock()
	return st
}

// jobsDone publishes n resolved jobs (performed, expired or recovered)
// on this shard's padded counter and wakes parked Flush callers, if any.
func (s *shard) jobsDone(n int) {
	if n <= 0 {
		return
	}
	s.count.performed.Add(uint64(n))
	s.d.wakeFlushers()
}

// exec is the round payload: local job ids map to batch slots; padding
// slots carry no payload. Durable shards journal the job's durable id
// before running it (record-then-do; see durable.go) — or, at
// JournalBatch > 1, claim it into the worker's group-commit buffer and
// defer both the journal write and the payload to the next flush. v2
// payloads get a context carrying the Task's deadline and may return an
// error, recorded in the entry for finishRound to deliver; v1 payloads
// run bare.
func (s *shard) exec(worker, local int) {
	e := &s.batch[local-1]
	if e.fn0 == nil && e.fn == nil {
		return // round padding
	}
	tr := s.d.tr
	if tr != nil {
		tr.Record(e.id, obs.TraceStarted, s.id)
	}
	if s.durable {
		if s.jbatch > 1 {
			s.claim(worker, local)
			return
		}
		s.journal(worker, e.id)
		if tr != nil {
			tr.Record(e.id, obs.TraceJournaled, s.id)
		}
	}
	s.runPayload(e)
}

// runPayload invokes one entry's payload, recording a v2 payload's error
// in the entry for finishRound to deliver.
func (s *shard) runPayload(e *entry) {
	switch {
	case e.fn0 != nil:
		e.fn0()
	case e.fn != nil:
		ctx := context.Background()
		if e.dl != 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, e.dl))
			defer cancel()
		}
		e.err = e.fn(ctx)
	}
}

// space reports the free queue slots; unbounded queues are always open.
// Caller holds s.mu. Reservations (FailFast submissions, in-progress
// steals) count as occupied so a reserved batch can never be beaten to
// its slots — and so do the in-flight round's jobs, which keep holding
// their slots until finishRound resolves them: the round may requeue
// any of them as residue, and a slot freed early would let submitters
// refill underneath and push the requeue past QueueDepth.
func (s *shard) space() int {
	if s.depth <= 0 {
		return math.MaxInt
	}
	free := s.depth - s.q.len() - s.reserved - s.inflight
	if free < 0 {
		free = 0
	}
	return free
}

// waitSpace parks the caller until at least one queue slot is free,
// folding the blocked time into SubmitBlockedNanos. Caller holds s.mu;
// returns with s.mu held and space() ≥ 1 — or with the shard abandoned,
// the one case where space can never free (abandon stops the loop
// without the closeMu barrier Close uses; the caller then dumps its
// entries into the dead queue, exactly like memory of a killed
// process). The shard loop keeps draining while submitters wait (Close
// stops it only after all in-flight submitters finish), so the wait
// always terminates.
func (s *shard) waitSpace() {
	if s.space() > 0 || s.abandoned {
		return
	}
	// The loop may be parked waiting for work that is already queued;
	// make sure it sees it before we park on the opposite condition.
	s.cond.Signal()
	t0 := time.Now()
	for s.space() == 0 && !s.abandoned {
		s.notFull.Wait()
	}
	s.stats.SubmitBlockedNanos += uint64(time.Since(t0))
}

// reserveWait claims one queue slot for a Block-policy submission,
// parking until space frees; the blocked time is folded into
// SubmitBlockedNanos. The park is ABORTABLE because it happens at
// admission, before any job id is consumed: a cancelled or expired ctx
// returns its error, and a concurrent Close returns ErrClosed (Close
// broadcasts notFull after flipping closed, and both checks run under
// s.mu, so the wakeup cannot be lost) — in both cases the submission
// burns nothing. An abandoned shard grants the reservation: the dead
// queue swallows the entry, like memory of a killed process.
func (s *shard) reserveWait(ctx context.Context) error {
	s.mu.Lock()
	if s.space() > 0 || s.abandoned {
		s.reserved++
		s.mu.Unlock()
		return nil
	}
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.notFull.Broadcast()
			s.mu.Unlock()
		})
	}
	// The loop may be parked waiting for work that is already queued;
	// make sure it sees it before we park on the opposite condition.
	s.cond.Signal()
	t0 := time.Now()
	var err error
	for {
		if s.d.closed.Load() {
			err = ErrClosed
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		if s.space() > 0 || s.abandoned {
			s.reserved++
			break
		}
		s.notFull.Wait()
	}
	s.stats.SubmitBlockedNanos += uint64(time.Since(t0))
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	return err
}

// tryReserve claims k queue slots for a FailFast submission without
// enqueueing yet, so multi-shard batches can be accepted all-or-nothing
// before any id is consumed. It fails if fewer than k slots are free.
func (s *shard) tryReserve(k int) bool {
	s.mu.Lock()
	ok := s.space() >= k
	if ok {
		s.reserved += k
	}
	s.mu.Unlock()
	return ok
}

// unreserve releases reserved slots that will not be used (rejected
// batch, journal-full, or journal-recovered jobs).
func (s *shard) unreserve(k int) {
	s.mu.Lock()
	s.reserved -= k
	s.notFull.Broadcast()
	s.mu.Unlock()
}

// feed appends n entries produced by get(i); reserved marks slots
// claimed via tryReserve (pushed in one pass), otherwise the call feeds
// them in as space frees, signaling the loop so it can drain underneath
// a parked submitter. The enqueue paths are only reachable while the
// dispatcher's closeMu barrier guarantees the shard loop is still
// running (Close waits for in-flight submitters before stopping
// shards), so enqueued jobs are always drained.
func (s *shard) feed(n int, get func(i int) entry, reserved bool) {
	s.mu.Lock()
	if reserved {
		s.reserved -= n
	}
	for i := 0; i < n; {
		free := n - i
		if !reserved {
			s.waitSpace()
			if free = s.space(); s.abandoned {
				free = n - i // dead shard: dump the rest, like a killed process
			}
		}
		for ; free > 0 && i < n; free-- {
			s.q.pushBack(get(i))
			i++
		}
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// enqueueOne appends one entry — feed's single-job case, open-coded so
// the Submit hot path builds no closure (the capture of e is a heap
// allocation per submission; see TestDispatcherSubmitAllocs).
func (s *shard) enqueueOne(e entry, reserved bool) {
	s.mu.Lock()
	if reserved {
		s.reserved--
	} else {
		s.waitSpace()
	}
	s.q.pushBack(e)
	s.cond.Signal()
	s.mu.Unlock()
}

// enqueueEntries appends pre-built entries (the recovery filter path).
func (s *shard) enqueueEntries(es []entry, reserved bool) {
	s.feed(len(es), func(i int) entry { return es[i] }, reserved)
}

// stop marks the shard closed and wakes the loop so it can drain and exit.
func (s *shard) stop() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// closeBackend syncs and closes the shard's durable backend, if any.
func (s *shard) closeBackend() error {
	if s.backend == nil {
		return nil
	}
	return s.backend.Close()
}

// abandon simulates process death at a round boundary (the paper's
// crash model stops processes between actions): the loop exits after
// the round in flight WITHOUT draining the queue, leaving the durable
// backend exactly as a killed process would. Crash-recovery tests use
// it; production code paths never do.
func (s *shard) abandon() {
	s.mu.Lock()
	s.abandoned = true
	s.cond.Signal()
	s.notFull.Broadcast() // release Block-policy submitters parked on a dead queue
	s.mu.Unlock()
}

// loop is the shard's round engine: cut an adaptively sized batch off
// the deque (stealing from the deepest sibling when idle), execute it as
// one KKβ round (padded up to m when the batch is short), push the
// unperformed residue back onto the FRONT of the deque, resolve the
// performed jobs' futures, repeat. On close it drains the deque —
// including residue and anything stolen — before exiting.
func (s *shard) loop() {
	defer close(s.done)
	for {
		n := s.takeBatch()
		if n == 0 {
			return
		}
		k := n
		if k < s.m {
			k = s.m // KKβ needs n ≥ m; slots n..k-1 are no-op padding
		}
		round := int(s.stats.Rounds)
		t0 := time.Now()
		res, err := s.rt.RunRound(k, s.execFn, s.crashVector(round))
		if err != nil {
			// Unreachable: k and the crash vector are validated here.
			panic("dispatch: " + err.Error())
		}
		s.observeRound(n, k, time.Since(t0), res.Crashed)
		performed, doneRes := s.finishRound(n, res)
		if len(doneRes) > 0 {
			s.d.waiters.resolveResults(doneRes, &s.cbBuf)
		}
		s.jobsDone(performed)
	}
}

// roundLimit is the adaptive controller's cut: how many jobs the next
// round may take. MaxBatch is the cap (it sizes the register file), m
// the floor (KKβ needs n ≥ m); in between the limit tracks the latency
// target — at the observed EWMA per-job cost, a round should finish
// within roughly Config.RoundTarget — and ramps at most 2× the previous
// round, so a burst after an idle stretch doesn't jump straight from a
// trickle round to MaxBatch on a stale cost estimate.
func (s *shard) roundLimit() int {
	limit := len(s.batch)
	if s.target > 0 && s.ewmaPerJob > 0 {
		if c := int(s.target / s.ewmaPerJob); c < limit {
			limit = c
		}
	}
	if s.lastTaken > 0 {
		if r := 2 * s.lastTaken; r < limit {
			limit = r
		}
	}
	if limit < s.m {
		limit = s.m
	}
	return limit
}

// observeRound feeds one executed round back into the controller: k
// slots (real jobs plus padding) took dur, so the per-slot cost estimate
// is dur/k, smoothed 1:3 into the EWMA.
func (s *shard) observeRound(n, k int, dur time.Duration, crashed int) {
	s.lastTaken = n
	per := float64(dur) / float64(k)
	if s.ewmaPerJob == 0 {
		s.ewmaPerJob = per
	} else {
		s.ewmaPerJob = 0.75*s.ewmaPerJob + 0.25*per
	}
	if s.d.roundHist != nil {
		// The round histogram reuses the duration the controller already
		// measured — instrumentation adds one record per round, not one
		// per job.
		s.d.roundHist.Observe(uint64(dur))
		s.lastTakenA.Store(int64(n))
	}
	// dispatch_round is sampled, not per-round: a shard at steady state
	// cuts thousands of rounds per second, and building a slog record
	// costs ~10 heap allocations — in a loop the allocation gate holds at
	// zero (TestDispatcherRoundLoopAllocFree). The flight ring gets one
	// heartbeat per shard per second, every crashed round (rare, and the
	// forensically interesting ones), and every round when the operator
	// asked for full rate with AMO_LOG=debug.
	if now := time.Now().UnixNano(); crashed > 0 ||
		now-s.lastRoundLog >= int64(time.Second) ||
		eventlog.SinkEnabled(slog.LevelDebug) {
		s.lastRoundLog = now
		eventlog.Logger().Debug("dispatch_round",
			"shard", s.id, "jobs", n, "slots", k, "dur", dur, "crashed", crashed)
	}
}

// promoWindow is the deadline-promotion lookahead at round assembly,
// derived from the adaptive controller's own estimate: roughly two
// rounds of work at the observed per-slot cost (floored at the latency
// target). A queued job due sooner than that cannot afford to wait its
// FIFO-within-class turn — it is pulled ahead in deadline order — and a
// job already past its deadline is expired instead of started.
func (s *shard) promoWindow(limit int) int64 {
	est := s.target
	if s.ewmaPerJob > 0 {
		if e := s.ewmaPerJob * float64(limit); e > est {
			est = e
		}
	}
	if est <= 0 {
		est = float64(DefaultRoundTarget)
	}
	return int64(2 * est)
}

// takeBatch blocks until jobs are pending (or the shard is closed and
// drained), then moves up to roundLimit of them into the batch buffer —
// highest priority class first, FIFO within a class, with deadline-due
// jobs promoted ahead of everything and already-expired jobs resolved
// here (never started; see Task.Deadline). Before parking on an empty
// queue it tries to steal a slice of the deepest sibling queue. It
// returns the number of real jobs taken; 0 means exit.
func (s *shard) takeBatch() int {
	for {
		s.mu.Lock()
		for s.q.len() == 0 && !s.closed && !s.abandoned {
			// Idle: claim work from the deepest sibling before parking.
			s.mu.Unlock()
			stole := s.stealWork()
			s.mu.Lock()
			if stole > 0 || s.q.len() > 0 || s.closed || s.abandoned {
				continue
			}
			s.cond.Wait()
		}
		if s.q.len() == 0 || s.abandoned {
			s.mu.Unlock()
			return 0
		}
		limit := s.roundLimit()
		now := time.Now().UnixNano()
		n := 0
		s.expired = s.expired[:0]
		// Deadline pass: pull everything due within the promotion window
		// out of the rings (in deadline order). Entries already past
		// their deadline expire — removed from the queue, never started —
		// and the rest lead the batch. Overflow beyond the round limit
		// returns to the front of its class, still ahead of its peers.
		if md := s.q.minDeadline(); md != 0 && md <= now+s.promoWindow(limit) {
			s.dueBuf = s.q.extractDue(now+s.promoWindow(limit), s.dueBuf[:0])
			overflow := 0
			for _, e := range s.dueBuf {
				switch cerr := e.cancelErr(); {
				case e.dl <= now:
					s.expired = append(s.expired, JobResult{ID: e.id, Expired: true, Err: context.DeadlineExceeded})
				case cerr != nil:
					s.expired = append(s.expired, JobResult{ID: e.id, Cancelled: true, Err: cerr})
				case n < limit:
					s.batch[n] = e
					n++
				default:
					s.dueBuf[overflow] = e
					overflow++
				}
			}
			for i := overflow - 1; i >= 0; i-- { // reversed: keeps deadline order at the front
				s.q.pushFront(s.dueBuf[i])
			}
			for i := range s.dueBuf {
				s.dueBuf[i] = entry{} // don't pin payloads past the transfer
			}
		}
		// Priority pass: drain High, then Normal, then Low — EDF within
		// any class that cannot be drained whole this round (takeClass).
		for ri := 0; ri < numRings && n < limit; ri++ {
			n = s.takeClass(ri, n, limit, now)
		}
		// s.expired holds this assembly's casualties — deadline expiries
		// AND ctx cancellations; both resolve without starting, but are
		// counted apart.
		nExp := len(s.expired)
		if nExp > 0 {
			nCan := 0
			for i := range s.expired {
				if s.expired[i].Cancelled {
					nCan++
				}
			}
			s.stats.Expired += uint64(nExp - nCan)
			s.stats.Cancelled += uint64(nCan)
			if s.depth > 0 {
				s.notFull.Broadcast() // expired/cancelled jobs freed their queue slots
			}
		}
		// The popped jobs keep holding their queue slots (inflight) until
		// finishRound requeues the residue and frees the performed ones;
		// freeing them here would let submitters refill underneath the
		// round and push the residue requeue past QueueDepth.
		s.inflight = n
		s.mu.Unlock()
		if nExp > 0 {
			// Each expired or cancelled job resolves exactly once, outside
			// the lock, and counts toward Flush like any other resolution.
			s.traceExpired(s.expired)
			s.d.waiters.resolveResults(s.expired, &s.cbBuf)
			s.jobsDone(nExp)
		}
		if n == 0 {
			continue // everything due had expired; wait for more work
		}
		// Clear the slots the previous round used beyond this batch, so
		// stale payloads can never be reached through padding ids.
		for i := n; i < s.lastK; i++ {
			s.batch[i] = entry{}
		}
		s.lastK = n
		if s.lastK < s.m {
			s.lastK = s.m
		}
		return n
	}
}

// takeClass moves entries of priority ring ri into the batch (from slot
// n up to limit) and returns the new n. FIFO is the order within a
// class — except when the ring holds deadlined entries AND cannot be
// drained whole this round, the only case where intra-class order can
// matter: then the deadlined entries are pulled ahead in deadline order
// (EDF within the class), so of two same-priority deadlined jobs the
// earlier deadline always runs in the earlier round. The ring's minDL
// bound keeps the common all-FIFO path scan-free; already-expired
// entries resolve here exactly like the promotion pass's. Caller holds
// s.mu.
func (s *shard) takeClass(ri, n, limit int, now int64) int {
	r := &s.q.rings[ri]
	if r.minDL != 0 && r.n > limit-n {
		// Truncation with deadlines present: extract every deadlined
		// entry (deadline-sorted), lead the class with the earliest, and
		// push the overflow back to the FRONT in reverse so deadline
		// order survives into the next round's assembly.
		s.dueBuf = s.q.extractDeadlined(ri, s.dueBuf[:0])
		overflow := 0
		for _, e := range s.dueBuf {
			switch cerr := e.cancelErr(); {
			case e.dl <= now:
				s.expired = append(s.expired, JobResult{ID: e.id, Expired: true, Err: context.DeadlineExceeded})
			case cerr != nil:
				s.expired = append(s.expired, JobResult{ID: e.id, Cancelled: true, Err: cerr})
			case n < limit:
				s.batch[n] = e
				n++
			default:
				s.dueBuf[overflow] = e
				overflow++
			}
		}
		for i := overflow - 1; i >= 0; i-- {
			s.q.pushFront(s.dueBuf[i])
		}
		for i := range s.dueBuf {
			s.dueBuf[i] = entry{} // don't pin payloads past the transfer
		}
	}
	for n < limit && r.n > 0 {
		e := s.q.popRing(ri)
		if e.dl != 0 && e.dl <= now {
			s.expired = append(s.expired, JobResult{ID: e.id, Expired: true, Err: context.DeadlineExceeded})
			continue
		}
		if cerr := e.cancelErr(); cerr != nil {
			s.expired = append(s.expired, JobResult{ID: e.id, Cancelled: true, Err: cerr})
			continue
		}
		s.batch[n] = e
		n++
	}
	return n
}

// stealWork claims a slice of the deepest sibling queue for this (idle)
// shard — from the BACK of the victim's LOWEST non-empty priority ring:
// the work the victim would get to last, so a steal never delays the
// victim's own high-priority jobs. Stolen entries keep their ids,
// priorities and deadlines (they re-queue into the same class here), and
// — because the completion table is dispatcher-wide — their waiters; the
// thief journals whatever it performs under its OWN backend and lease,
// and the recovery scan unions all shards' journals, so at-most-once and
// fencing are untouched by migration. The take is capped at MaxBatch and
// at the thief's own free capacity — reserved up front, so concurrent
// submitters cannot race the transfer past QueueDepth. Locks are taken
// one shard at a time (self, victim, self), so thieves can never
// deadlock against each other.
func (s *shard) stealWork() int {
	shards := s.d.shards
	if len(shards) < 2 {
		return 0
	}
	var victim *shard
	deepest := 1 // a steal must leave the victim work: need ≥ 2 pending
	for _, v := range shards {
		if v == s {
			continue
		}
		v.mu.Lock()
		l := v.q.len()
		v.mu.Unlock()
		if l > deepest {
			deepest, victim = l, v
		}
	}
	if victim == nil {
		return 0
	}
	// Reserve the thief's own free capacity before touching the victim:
	// submitters may refill this queue while the victim is being robbed,
	// and an unreserved steal landing on top of them would push a
	// bounded queue past QueueDepth.
	max := len(s.batch)
	if s.depth > 0 {
		s.mu.Lock()
		if free := s.space(); free < max {
			max = free
		}
		s.reserved += max
		s.mu.Unlock()
		if max == 0 {
			return 0
		}
	}
	victim.mu.Lock()
	// Re-read under the lock (the scan was racy). Take the victim's whole
	// lowest non-empty ring when it has higher-priority work of its own;
	// when that ring IS all its work, take half, leaving it something.
	k := victim.q.lowest()
	if k == victim.q.len() {
		k /= 2
	}
	if k > max {
		k = max
	}
	if k > 0 {
		if cap(s.stealBuf) < k {
			s.stealBuf = make([]entry, k)
		}
		victim.q.stealBack(s.stealBuf[:k])
		if victim.depth > 0 {
			victim.notFull.Broadcast()
		}
	}
	victim.mu.Unlock()
	buf := s.stealBuf[:k]
	if tr := s.d.tr; tr != nil {
		for _, e := range buf {
			tr.Record(e.id, obs.TraceStolen, s.id)
		}
	}
	s.mu.Lock()
	if s.depth > 0 {
		s.reserved -= max
		if k < max {
			s.notFull.Broadcast() // give unused reservation back to submitters
		}
	}
	for _, e := range buf {
		s.q.pushBack(e)
	}
	s.stats.Stolen += uint64(k)
	s.mu.Unlock()
	if k > 0 {
		eventlog.Logger().Debug("dispatch_steal", "shard", s.id, "victim", victim.id, "jobs", k)
	}
	for i := range buf {
		buf[i] = entry{} // don't pin payloads past the transfer
	}
	return k
}

// crashVector asks the configured plan for this round's crash injection
// and sanitizes it (length m, at least one survivor).
func (s *shard) crashVector(round int) []uint64 {
	plan := s.d.cfg.CrashPlan
	if plan == nil {
		return nil
	}
	v := plan(s.id, round)
	if len(v) != s.m {
		return nil
	}
	for _, c := range v {
		if c == 0 {
			return v
		}
	}
	return nil
}

// finishRound requeues the real residue at the front of its priority
// ring and folds the round into the shard stats. It returns the number
// of real jobs performed this round and — when any async waiter is
// registered — their JobResults (payload errors included), for
// resolution outside the lock.
func (s *shard) finishRound(n int, res *conc.RoundResult) (int, []JobResult) {
	collect := s.d.waiters.active()
	latOn := s.d.latHist != nil
	tr := s.d.tr
	s.mu.Lock()
	requeued := 0
	for i := len(res.Unperformed) - 1; i >= 0; i-- {
		if local := res.Unperformed[i]; local <= n {
			s.q.pushFront(s.batch[local-1])
			if tr != nil {
				tr.Record(s.batch[local-1].id, obs.TraceRequeued, s.id)
			}
			requeued++
		}
	}
	var doneRes []JobResult
	if (collect || latOn || tr != nil) && requeued < n {
		// The performed slots are 1..n minus the (ascending) unperformed
		// list; walk the two in lockstep. One wall-clock read covers the
		// whole round's latency samples: resolution happens here, so the
		// per-entry spread inside a round is below the histogram's own
		// bucket error.
		var end uint32
		if latOn {
			end = s.d.latStamp(time.Now().UnixNano())
		}
		s.doneRes = s.doneRes[:0]
		ui := 0
		for local := 1; local <= n; local++ {
			if ui < len(res.Unperformed) && res.Unperformed[ui] == local {
				ui++
				continue
			}
			e := &s.batch[local-1]
			if latOn && e.t0 != 0 {
				// Wrap-safe uint32 subtraction (see entry.t0); a clamp
				// catches the rare sample whose stamps straddle the 0→1
				// nudge or a wall-clock step backwards.
				dus := end - e.t0
				if dus > 1<<31 {
					dus = 0
				}
				s.d.latHist.Observe(uint64(dus) * 1000)
			}
			if tr != nil {
				tr.Record(e.id, obs.TraceResolved, s.id)
			}
			if collect {
				s.doneRes = append(s.doneRes, JobResult{ID: e.id, Err: e.err})
			}
		}
		if collect {
			doneRes = s.doneRes
		}
	}
	// The round's slots are resolved: residue went back to the queue,
	// the rest are free for parked submitters.
	s.inflight = 0
	if s.depth > 0 {
		s.notFull.Broadcast()
	}
	performed := n - requeued
	s.stats.Rounds++
	s.stats.Performed += uint64(performed)
	s.stats.Residue += uint64(requeued)
	s.stats.Duplicates += uint64(res.Duplicates)
	s.stats.Crashes += uint64(res.Crashed)
	s.stats.Steps += res.Steps
	s.stats.Work += res.Work
	s.stats.LastBatch = n
	s.stats.LastPerformed = performed
	s.stats.EffHist[effBucket(performed, n)]++
	s.mu.Unlock()
	if s.d.lossHist != nil {
		// Effectiveness loss of this round in ppm: 0 for a perfect round,
		// 1e6 would mean nothing performed (impossible — KKβ guarantees
		// n - m + 1 per round).
		s.d.lossHist.Observe(uint64(requeued) * 1_000_000 / uint64(n))
	}
	return performed, doneRes
}
