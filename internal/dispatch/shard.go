package dispatch

import (
	"sync"

	"atmostonce/internal/conc"
	"atmostonce/internal/membackend"
	"atmostonce/internal/shmem"
)

// shard is one independent KKβ instance: a persistent worker pool, a
// pending-job deque and the loop that cuts rounds. The loop goroutine is
// the only round orchestrator, so everything it touches between rounds
// (batch, runtime) needs no lock; the deque and stats are shared with
// Submit/Stats and guarded by mu.
type shard struct {
	d  *Dispatcher
	id int
	m  int
	rt *conc.Runtime

	// Durable state (nil/zero for in-process shards): the register
	// backend, the journal geometry and the per-worker append cursors.
	// See durable.go for the register-file layout. ackedW is the
	// backend's AckedWriter capability when it has one (remote backends
	// do): the journal writes through it so record-then-do holds across
	// the network, not just across local process death.
	backend membackend.Backend
	mem     shmem.Mem
	ackedW  membackend.AckedWriter
	durable bool
	jlen    int
	rbase   int
	jcur    []int

	mu        sync.Mutex
	cond      *sync.Cond
	q         ring
	closed    bool
	abandoned bool
	stats     ShardStats

	// batch holds the jobs of the round in flight, indexed by local job id
	// minus one; slots past the real batch are zero (round padding). Only
	// the loop goroutine and — during a round — the pool workers read it.
	batch  []entry
	lastK  int
	execFn func(worker, local int)
	done   chan struct{}
}

// newShard builds one shard. With a durable backend it also performs
// the recovery scan, returning the job ids a previous process
// incarnation already performed.
func newShard(d *Dispatcher, id int) (*shard, []uint64, error) {
	s := &shard{
		d:     d,
		id:    id,
		m:     d.cfg.Workers,
		batch: make([]entry, d.cfg.MaxBatch),
		done:  make(chan struct{}),
	}
	opts := conc.RuntimeOptions{
		M:        d.cfg.Workers,
		Capacity: d.cfg.MaxBatch,
		Beta:     d.cfg.Beta,
		Jitter:   d.cfg.Jitter,
		Seed:     d.cfg.Seed + int64(id)*1_000_003,
	}
	var recovered []uint64
	if d.cfg.NewMem != nil {
		var err error
		if recovered, err = s.openDurable(&d.cfg); err != nil {
			return nil, nil, err
		}
		s.mem = s.backend
		opts.Mem, opts.MemBase = s.backend, s.rbase
	}
	rt, err := conc.NewRuntime(opts)
	if err != nil {
		if s.backend != nil {
			s.backend.Close()
		}
		return nil, nil, err
	}
	s.rt = rt
	s.cond = sync.NewCond(&s.mu)
	s.execFn = s.exec
	return s, recovered, nil
}

// exec is the round payload: local job ids map to batch slots; padding
// slots carry no payload. Durable shards journal the job's durable id
// before running it (record-then-do; see durable.go).
func (s *shard) exec(worker, local int) {
	e := &s.batch[local-1]
	if e.fn == nil {
		return
	}
	if s.durable {
		s.journal(worker, e.id)
	}
	e.fn()
}

// enqueue and enqueueBatch are only reachable while the dispatcher's
// closeMu barrier guarantees the shard loop is still running (Close waits
// for in-flight submitters before stopping shards), so enqueued jobs are
// always drained.
func (s *shard) enqueue(e entry) {
	s.mu.Lock()
	s.q.pushBack(e)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *shard) enqueueBatch(firstID uint64, fns []Job) {
	s.mu.Lock()
	for i, fn := range fns {
		s.q.pushBack(entry{id: firstID + uint64(i), fn: fn})
	}
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *shard) enqueueEntries(es []entry) {
	s.mu.Lock()
	for _, e := range es {
		s.q.pushBack(e)
	}
	s.cond.Signal()
	s.mu.Unlock()
}

// stop marks the shard closed and wakes the loop so it can drain and exit.
func (s *shard) stop() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// closeBackend syncs and closes the shard's durable backend, if any.
func (s *shard) closeBackend() error {
	if s.backend == nil {
		return nil
	}
	return s.backend.Close()
}

// abandon simulates process death at a round boundary (the paper's
// crash model stops processes between actions): the loop exits after
// the round in flight WITHOUT draining the queue, leaving the durable
// backend exactly as a killed process would. Crash-recovery tests use
// it; production code paths never do.
func (s *shard) abandon() {
	s.mu.Lock()
	s.abandoned = true
	s.cond.Signal()
	s.mu.Unlock()
}

// loop is the shard's round engine: cut a batch off the deque, execute it
// as one KKβ round (padded up to m when the batch is short), push the
// unperformed residue back onto the FRONT of the deque, repeat. On close
// it drains the deque — including residue — before exiting.
func (s *shard) loop() {
	defer close(s.done)
	for {
		n := s.takeBatch()
		if n == 0 {
			return
		}
		k := n
		if k < s.m {
			k = s.m // KKβ needs n ≥ m; slots n..k-1 are no-op padding
		}
		round := int(s.stats.Rounds)
		res, err := s.rt.RunRound(k, s.execFn, s.crashVector(round))
		if err != nil {
			// Unreachable: k and the crash vector are validated here.
			panic("dispatch: " + err.Error())
		}
		performed := s.finishRound(n, res)
		s.d.jobsDone(performed)
	}
}

// takeBatch blocks until jobs are pending (or the shard is closed and
// drained), then moves up to MaxBatch of them into the batch buffer. It
// returns the number of real jobs taken; 0 means exit.
func (s *shard) takeBatch() int {
	s.mu.Lock()
	for s.q.len() == 0 && !s.closed && !s.abandoned {
		s.cond.Wait()
	}
	n := s.q.len()
	if n == 0 || s.abandoned {
		s.mu.Unlock()
		return 0
	}
	if n > len(s.batch) {
		n = len(s.batch)
	}
	for i := 0; i < n; i++ {
		s.batch[i] = s.q.popFront()
	}
	s.mu.Unlock()
	// Clear the slots the previous round used beyond this batch, so stale
	// payloads can never be reached through padding ids.
	for i := n; i < s.lastK; i++ {
		s.batch[i] = entry{}
	}
	s.lastK = n
	if s.lastK < s.m {
		s.lastK = s.m
	}
	return n
}

// crashVector asks the configured plan for this round's crash injection
// and sanitizes it (length m, at least one survivor).
func (s *shard) crashVector(round int) []uint64 {
	plan := s.d.cfg.CrashPlan
	if plan == nil {
		return nil
	}
	v := plan(s.id, round)
	if len(v) != s.m {
		return nil
	}
	for _, c := range v {
		if c == 0 {
			return v
		}
	}
	return nil
}

// finishRound requeues the real residue at the front of the deque and
// folds the round into the shard stats. It returns the number of real
// jobs performed this round.
func (s *shard) finishRound(n int, res *conc.RoundResult) int {
	s.mu.Lock()
	requeued := 0
	for i := len(res.Unperformed) - 1; i >= 0; i-- {
		if local := res.Unperformed[i]; local <= n {
			s.q.pushFront(s.batch[local-1])
			requeued++
		}
	}
	performed := n - requeued
	s.stats.Rounds++
	s.stats.Performed += uint64(performed)
	s.stats.Residue += uint64(requeued)
	s.stats.Duplicates += uint64(res.Duplicates)
	s.stats.Crashes += uint64(res.Crashed)
	s.stats.Steps += res.Steps
	s.stats.Work += res.Work
	s.stats.LastBatch = n
	s.stats.LastPerformed = performed
	s.stats.EffHist[effBucket(performed, n)]++
	s.mu.Unlock()
	return performed
}
