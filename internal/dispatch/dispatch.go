// Package dispatch turns the paper's fixed-batch at-most-once primitive
// into a streaming engine. A Dispatcher accepts a continuous stream of
// jobs, batches them into rounds, and partitions each round across S
// shards — every shard a persistent KKβ worker pool (conc.Runtime) with
// its own m workers and register file. Each round's unperformed residue
// (the unavoidable ≤ β+m−2 tail of Theorem 4.4, plus anything lost to
// injected crashes) is carried to the front of the shard's queue for the
// next round, so the additive per-round effectiveness loss never turns
// into a lost job: every submitted job is eventually performed, and the
// at-most-once guarantee holds end-to-end because a job is requeued only
// when no worker performed it.
//
// This is the round/epoch construction of the do-all literature (Dwork,
// Halpern & Waarts) layered over KKβ: amortize the per-round loss over a
// long computation instead of paying it once on a single batch.
package dispatch

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
	"atmostonce/internal/obs/opshttp"
)

// Job is a unit of user work. The dispatcher invokes it at most once,
// from one of the shard's worker goroutines.
type Job func()

// Config configures a Dispatcher.
type Config struct {
	// Shards is S, the number of independent KKβ instances (default 1).
	// Shards multiply throughput: rounds on different shards run fully in
	// parallel and share nothing.
	Shards int
	// Workers is m, the worker goroutines per shard. The default is
	// derived from the machine: enough workers to cover
	// runtime.GOMAXPROCS(0) across the shards, clamped to [2, 8] per
	// shard (see DefaultWorkers).
	Workers int
	// Beta is KKβ's termination parameter per shard (0 = Workers, the
	// effectiveness-optimal choice).
	Beta int
	// MaxBatch caps the jobs a shard executes in one round (default 1024).
	// It fixes the shard's register-file capacity, so memory is
	// S·Workers·MaxBatch registers in total. It is a CAP, not the round
	// size: each round is sized by the adaptive controller (see
	// RoundTarget) from observed queue depth and recent round latency.
	MaxBatch int
	// QueueDepth bounds each shard's resident jobs — queued plus the
	// round in flight (0 = unbounded, the legacy behavior). When a shard
	// is at depth, submissions into it block or fail according to
	// Policy, so a saturated dispatcher exerts real backpressure instead
	// of growing its rings without bound. The bound is hard: in-flight
	// jobs keep holding their slots until their round resolves (any of
	// them may come back as residue), and a thief steals at most into
	// its own free capacity, so neither residue carry-over nor
	// work-stealing pushes a queue past what submitters see.
	QueueDepth int
	// Policy selects what a submission into a full shard queue does:
	// Block (the default) parks the submitter until space frees, FailFast
	// returns ErrQueueFull immediately. Only meaningful with QueueDepth.
	Policy SubmitPolicy
	// RoundTarget is the adaptive round controller's latency goal: each
	// shard sizes its next round so that — at the EWMA per-job cost
	// observed over recent rounds — the round should finish within
	// roughly this duration, capped by MaxBatch and floored at Workers.
	// Smaller targets cut smaller, more frequent rounds (lower per-job
	// completion latency); larger targets amortize round overhead
	// (higher throughput). 0 means DefaultRoundTarget; negative disables
	// latency-based sizing (rounds are cut from queue depth alone).
	RoundTarget time.Duration
	// Jitter adds scheduling noise inside the worker pools; Seed makes it
	// deterministic.
	Jitter bool
	Seed   int64
	// CrashPlan, when non-nil, injects worker crashes: before shard s runs
	// its round r (0-based), CrashPlan(s, r) may return a per-worker step
	// budget (0 = never crash; at least one worker must survive). Crashed
	// workers are revived on the shard's next round. Malformed vectors are
	// ignored. This is the fault-injection hook used by the chaos tests;
	// a plan that crashes workers on every round forever can starve Flush.
	CrashPlan func(shard, round int) []uint64
	// NewMem, when non-nil, supplies each shard's register backend
	// (internal/membackend) instead of in-process atomic memory. The
	// factory is called once per shard with the number of cells the shard
	// needs; durable backends (mmap) make the dispatcher crash
	// recoverable — see Recovery below. Requires MaxJobs.
	NewMem func(shard, size int) (membackend.Backend, error)
	// MaxJobs bounds the distinct job ids a backend-backed dispatcher may
	// assign over the lifetime of its register files (across restarts):
	// it sizes the durable journal rows, and Submit fails with
	// ErrJournalFull beyond it. Required with NewMem, ignored without.
	MaxJobs int
	// JournalBatch is the durable journal's group-commit factor (default
	// 1 = journal per job). At k > 1 each worker CLAIMS up to k jobs —
	// marking them taken in the round but deferring their payloads — then
	// journals all k ids in one vectored acked write and runs the k
	// payloads, paying one ack (one msync, one network round trip) per
	// claim instead of per job. Record-then-do still holds per batch: no
	// payload runs before its journal record is acknowledged, so a crash
	// can never produce a duplicate. The crash WINDOW widens from one job
	// to k per worker: a process killed after the batch journal write but
	// before the payloads has recorded up to k jobs whose payloads never
	// ran, which recovery counts performed — effectiveness loss, bounded
	// by Workers·JournalBatch per crash (DESIGN.md §14). Ignored without
	// NewMem.
	JournalBatch int
	// Metrics enables the dispatcher's obs registry: per-shard
	// submit/round/steal/expiry counters, queue-depth and round-size
	// gauges, and the round-duration, round-loss and sampled
	// submit→completion histograms, all exposable in Prometheus text
	// format (Registry, or the ops endpoint below). MetricsAddr, Expvar
	// and a positive TraceSampleRate each imply it.
	Metrics bool
	// MetricsAddr, when non-empty, binds an ops HTTP endpoint
	// (host:port; ":0" picks a free port, OpsAddr returns it) serving
	// /metrics, /healthz, /statsz, /tracez and /debug/pprof/*. The
	// endpoint exposes this dispatcher's registry alongside the
	// process-global one (netmem, membackend) and closes with the
	// dispatcher.
	MetricsAddr string
	// TraceSampleRate samples that fraction of job ids (deterministically
	// by id hash, clamped to [0,1]) into a ring-buffered per-job event
	// timeline — submitted→queued→(stolen|requeued)*→started→journaled→
	// resolved, plus expired and recovered — dumpable at /tracez and via
	// Tracer.
	TraceSampleRate float64
	// Expvar publishes the dispatcher's metric registry as an expvar
	// variable ("atmostonce.dispatcher.<n>"; ExpvarName returns the
	// exact name) on /debug/vars.
	//
	// Deprecated: Expvar is now a thin adapter over the obs registry —
	// the same name→value map /statsz serves — kept working the way the
	// v1 submit wrappers are. New code should set MetricsAddr (or read
	// Registry directly). The stdlib cannot unpublish a var, so after
	// Close it keeps reporting the final snapshot.
	Expvar bool
}

// Recovery. A dispatcher over durable backends journals every performed
// job's id before running its payload (record-then-do: a crash can cost
// effectiveness, never a duplicate — the paper's trade, Theorem 2.1).
// When New finds existing register state, it scans the journals and
// treats those ids as already performed. The contract is that the
// client re-submits the same job stream in the same order after a
// restart: id assignment is a deterministic function of the submission
// sequence (singles draw densely from their target shard's leased id
// block, batches lease contiguous ranges — see the id-range leasing
// comment above Dispatcher), so the same stream reproduces the same
// ids, and determinism of the stream is the client's responsibility.
// Re-submitted jobs that were performed by a
// previous incarnation resolve immediately without running their
// payload, and everything else — including the residue the crash cut
// off mid-round — runs exactly once. Stats.Recovered counts the skips.

// SubmitPolicy selects the behavior of submissions into a shard whose
// bounded queue is full (Config.QueueDepth).
type SubmitPolicy int

const (
	// Block parks the submitter until the shard's rounds free space.
	Block SubmitPolicy = iota
	// FailFast returns ErrQueueFull instead of waiting. A rejected
	// submission consumes no job id, so deterministic re-submission (the
	// durable recovery contract) is unaffected by transient overload.
	FailFast
)

// DefaultRoundTarget is the adaptive controller's latency goal when
// Config.RoundTarget is zero: long enough that cheap payloads run at
// full MaxBatch rounds (throughput unharmed), short enough that a queue
// of slow payloads is cut into small rounds and per-job completion
// latency stays bounded.
const DefaultRoundTarget = 5 * time.Millisecond

// DefaultWorkers is the worker count per shard used when Config.Workers
// is zero: ceil(GOMAXPROCS/shards), so the default dispatcher saturates
// the machine without oversubscribing it, clamped to [2, 8] — m = 1
// degenerates KKβ (no contention to resolve, but also no fault
// tolerance), and beyond 8 the done-matrix gather cost per round
// outweighs the extra parallelism of a single shard.
func DefaultWorkers(shards int) int {
	if shards < 1 {
		shards = 1
	}
	p := runtime.GOMAXPROCS(0)
	w := (p + shards - 1) / shards
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	return w
}

func (c *Config) normalize() error {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers(c.Shards)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBatch < c.Workers {
		c.MaxBatch = c.Workers
	}
	if c.Beta < 0 {
		return fmt.Errorf("dispatch: negative beta %d", c.Beta)
	}
	if c.NewMem != nil && c.MaxJobs <= 0 {
		return fmt.Errorf("dispatch: NewMem requires MaxJobs > 0 (it sizes the durable journal)")
	}
	if c.JournalBatch <= 0 {
		c.JournalBatch = 1
	}
	if c.NewMem != nil && c.JournalBatch > c.MaxJobs {
		c.JournalBatch = c.MaxJobs
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	switch c.Policy {
	case Block, FailFast:
	default:
		return fmt.Errorf("dispatch: unknown SubmitPolicy %d", c.Policy)
	}
	if c.RoundTarget == 0 {
		c.RoundTarget = DefaultRoundTarget
	}
	if c.TraceSampleRate < 0 {
		c.TraceSampleRate = 0
	}
	if c.TraceSampleRate > 1 {
		c.TraceSampleRate = 1
	}
	if c.MetricsAddr != "" || c.TraceSampleRate > 0 || c.Expvar {
		c.Metrics = true
	}
	return nil
}

// ErrClosed is returned by Submit and SubmitBatch after Close.
var ErrClosed = errors.New("dispatch: dispatcher is closed")

// ErrQueueFull is returned by the submit paths under Policy FailFast
// when the target shard's queue is at Config.QueueDepth. The submission
// consumed no job id; the caller may retry.
var ErrQueueFull = errors.New("dispatch: shard queue is full (QueueDepth reached)")

// ErrJournalFull is returned by Submit and SubmitBatch when accepting
// the jobs would assign ids beyond Config.MaxJobs, the capacity of the
// durable journal rows.
var ErrJournalFull = errors.New("dispatch: durable journal capacity exhausted (raise Config.MaxJobs)")

// Id-range leasing. Ids are still assigned by submission order — the
// durable recovery contract depends on it — but the global cursor is
// touched once per BLOCK, not once per job: each shard leases blocks of
// idBlock ids and hands out singles from its current block (leaseID), so
// the only cross-shard state on the single-submit hot path is one CAS
// every idBlock submissions. A shard's sequence of singles stays dense
// within its blocks (a block is consumed in order, and a new one is
// leased only when the previous is spent), which is exactly what
// deterministic re-submission needs: the same submit stream re-leases
// the same blocks in the same order and reproduces the same ids.
// Batches lease their contiguous range [first, first+n) directly from
// the cursor (leaseRange), interleaving with the shards' blocks.
const (
	// idBlockBits is log2(idBlock); the completion table stripes by
	// id >> idBlockBits so one shard's consecutive singles land on one
	// stripe (see waiters).
	idBlockBits = 6
	idBlock     = 1 << idBlockBits
)

// padUint64 is an atomic counter alone on its cache line, so hot
// counters owned by different shards never false-share.
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// shardCount holds one shard's submission/completion counters, each on
// its own cache line. Flush and Stats sum them across shards — reading
// every performed before any submitted, so the sums never show a job
// performed without its submission (see FlushContext).
type shardCount struct {
	submitted atomic.Uint64
	_         [56]byte
	performed atomic.Uint64
	_         [56]byte
}

// Dispatcher is a long-lived, sharded, round-based at-most-once engine.
// All methods are safe for concurrent use.
type Dispatcher struct {
	cfg    Config
	shards []*shard
	start  time.Time

	idCursor padUint64 // ids leased so far (shard blocks + batch ranges)
	rr       padUint64 // round-robin shard cursor

	// counts[i] belongs to shard i; len(counts) == Shards.
	counts []shardCount
	// flushers counts FlushContext calls parked on cond; shards broadcast
	// completion progress only while one is waiting (see shard.jobsDone).
	flushers atomic.Int32

	// Crash-recovery state: ids a previous incarnation's journals proved
	// performed, consumed as the client re-submits the stream. recLeft
	// lets the common case (nothing recovered, or already drained) skip
	// the lock entirely.
	recLeft    atomic.Int64
	recMu      sync.Mutex
	recovered  map[uint64]struct{}
	recoveredN atomic.Uint64 // jobs resolved from the journal, for Stats

	// waiters is the completion-notification table for the async submit
	// paths (see async.go): job id → callback, fired by whichever shard
	// performs the job.
	waiters waiters

	expvarName string

	// Observability (see obs.go): reg is the dispatcher's metric
	// registry (nil with Metrics off), the three histograms are its only
	// push-style instruments, tr is the sampled job tracer and ops the
	// endpoint bound to Config.MetricsAddr.
	reg          *obs.Registry
	roundHist    *obs.Histogram
	latHist      *obs.Histogram
	lossHist     *obs.Histogram
	recoveryHist *obs.Histogram
	tr           *obs.Tracer
	ops          *opshttp.Server
	// jfullOnce gates the journal-full warning: the condition repeats on
	// every rejected submission, the event is interesting once.
	jfullOnce sync.Once
	// latBase anchors entry.t0 latency stamps (latStamp): Unix
	// nanoseconds at construction, so stamps stay small and a uint32 of
	// microseconds is enough for wrap-safe submit→done deltas.
	latBase int64

	// closeMu makes submission all-or-nothing with respect to Close:
	// submitters hold the read side across their closed-check and enqueue,
	// and Close takes the write side after flipping closed, so a batch is
	// either fully enqueued before the shards stop (and drains) or fully
	// rejected — never partially accepted.
	closeMu sync.RWMutex
	closed  atomic.Bool

	mu   sync.Mutex // guards cond (Flush waiters)
	cond *sync.Cond
}

// New builds the dispatcher and starts its S shard loops. Callers must
// Close it to release the worker pools. Over durable backends that hold
// state from a crashed incarnation, New performs the recovery scan (see
// Recovery above) before any round runs.
func New(cfg Config) (*Dispatcher, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Dispatcher{cfg: cfg, start: time.Now()}
	d.latBase = d.start.UnixNano()
	d.cond = sync.NewCond(&d.mu)
	d.counts = make([]shardCount, cfg.Shards)
	d.shards = make([]*shard, cfg.Shards)
	d.recovered = make(map[uint64]struct{})
	d.setupObs()
	for i := range d.shards {
		s, rec, err := newShard(d, i)
		if err != nil {
			for _, prev := range d.shards[:i] {
				prev.stop()
				prev.rt.Close()
				prev.closeBackend()
			}
			return nil, err
		}
		d.shards[i] = s
		d.registerShardObs(s)
		for _, id := range rec {
			d.recovered[id] = struct{}{}
		}
	}
	d.recLeft.Store(int64(len(d.recovered)))
	if cfg.Expvar {
		// Legacy adapter: the expvar blob is the registry's name→value
		// snapshot — the exact map /statsz serves — so there is one
		// source of metric truth no matter which door it leaves through.
		d.expvarName = fmt.Sprintf("atmostonce.dispatcher.%d", expvarSeq.Add(1))
		expvar.Publish(d.expvarName, expvar.Func(func() any { return d.reg.Snapshot() }))
	}
	if err := d.startOps(); err != nil {
		for _, s := range d.shards {
			s.stop()
			s.rt.Close()
			s.closeBackend()
		}
		return nil, err
	}
	for _, s := range d.shards {
		go s.loop()
	}
	return d, nil
}

// expvarSeq disambiguates the expvar names of successive dispatchers;
// the stdlib forbids republishing a name.
var expvarSeq atomic.Uint64

// ExpvarName returns the name Stats is published under when
// Config.Expvar is set, and "" otherwise.
func (d *Dispatcher) ExpvarName() string { return d.expvarName }

// resolveRecovered reports whether id was performed by a previous
// incarnation (per the durable journal), consuming the entry.
func (d *Dispatcher) resolveRecovered(id uint64) bool {
	if d.recLeft.Load() == 0 {
		return false
	}
	d.recMu.Lock()
	_, ok := d.recovered[id]
	if ok {
		delete(d.recovered, id)
		d.recLeft.Add(-1)
	}
	d.recMu.Unlock()
	return ok
}

// leaseBlock claims the next block of up to idBlock fresh ids from the
// global cursor, returning the half-open range [lo, hi). Durable
// dispatchers clamp the lease at MaxJobs, so the journal's last block is
// short rather than overshot — a CAS that would start past MaxJobs fails
// with ErrJournalFull and moves nothing, so a rejected submission never
// burns ids.
func (d *Dispatcher) leaseBlock() (lo, hi uint64, err error) {
	if d.cfg.NewMem == nil {
		end := d.idCursor.v.Add(idBlock)
		return end - idBlock + 1, end + 1, nil
	}
	max := uint64(d.cfg.MaxJobs)
	for {
		cur := d.idCursor.v.Load()
		if cur >= max {
			d.warnJournalFull()
			return 0, 0, ErrJournalFull
		}
		want := uint64(idBlock)
		if cur+want > max {
			want = max - cur
		}
		if d.idCursor.v.CompareAndSwap(cur, cur+want) {
			return cur + 1, cur + want + 1, nil
		}
	}
}

// leaseRange claims the contiguous range [first, first+n) directly from
// the global cursor — a batch is its own lease, independent of the
// shards' single-submit blocks. A durable range that would cross
// MaxJobs fails with ErrJournalFull without moving the cursor: no ids
// are burned, and a smaller batch (or more MaxJobs headroom) may still
// be accepted afterwards.
func (d *Dispatcher) leaseRange(n uint64) (uint64, error) {
	if d.cfg.NewMem == nil {
		end := d.idCursor.v.Add(n)
		return end - n + 1, nil
	}
	max := uint64(d.cfg.MaxJobs)
	for {
		cur := d.idCursor.v.Load()
		if cur+n > max {
			d.warnJournalFull()
			return 0, ErrJournalFull
		}
		if d.idCursor.v.CompareAndSwap(cur, cur+n) {
			return cur + 1, nil
		}
	}
}

// warnJournalFull emits the journal-capacity event once per dispatcher.
func (d *Dispatcher) warnJournalFull() {
	d.jfullOnce.Do(func() {
		eventlog.Logger().Warn("dispatch_journal_full", "max_jobs", d.cfg.MaxJobs)
	})
}

// Submit enqueues one job and returns its dispatcher-wide id. The job will
// be executed at most once, and — as long as the dispatcher keeps running
// rounds — exactly once. With a bounded queue (Config.QueueDepth) and the
// target shard saturated, Submit blocks until space frees (Block) or
// fails with ErrQueueFull without consuming an id (FailFast). A Close
// racing a parked Block-policy Submit releases it with ErrClosed, id
// unconsumed. Submit is the v1 path, equivalent to Do with a bare
// Normal-priority Task.
func (d *Dispatcher) Submit(fn Job) (uint64, error) {
	return d.do(context.Background(), entry{fn0: fn}, nil)
}

// do is the single-job submission core shared by Do, Submit, SubmitAsync
// and SubmitCallback; done, when non-nil, is registered in the
// completion table (or fired inline for journal-recovered jobs). e
// carries the payload and scheduling descriptor; its id is assigned
// here.
//
// Admission order matters: the queue slot is claimed BEFORE the id is
// consumed — FailFast by reservation, Block by parking in reserveWait —
// so a rejected, cancelled (ctx) or close-released submission burns
// nothing. Anything else would shift the id sequence under transient
// overload and break the deterministic re-submission contract durable
// recovery depends on.
func (d *Dispatcher) do(ctx context.Context, e entry, done func(JobResult)) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	s := d.shards[(d.rr.v.Add(1)-1)%uint64(len(d.shards))]
	bounded := d.cfg.QueueDepth > 0
	if bounded {
		if d.cfg.Policy == FailFast {
			if !s.tryReserve(1) {
				return 0, ErrQueueFull
			}
		} else if err := s.reserveWait(ctx); err != nil {
			return 0, err
		}
	}
	id, err := s.leaseID()
	if err != nil {
		if bounded {
			s.unreserve(1)
		}
		return 0, err
	}
	s.count.submitted.Add(1)
	if d.tr != nil {
		d.tr.Record(id, obs.TraceSubmitted, s.id)
	}
	if d.resolveRecovered(id) {
		// A previous incarnation performed this job; resolve it without
		// re-running the payload (the at-most-once guarantee across
		// process death).
		if bounded {
			s.unreserve(1)
		}
		d.recoveredN.Add(1)
		if d.tr != nil {
			d.tr.Record(id, obs.TraceRecovered, s.id)
			d.tr.Record(id, obs.TraceResolved, s.id)
		}
		if done != nil {
			done(JobResult{ID: id, Recovered: true})
		}
		s.jobsDone(1)
		return id, nil
	}
	if done != nil {
		d.waiters.add(id, done)
	}
	e.id = id
	if ctx.Done() != nil {
		// Cancellable submission: carry the ctx so round assembly can
		// resolve the job without starting it once the ctx dies (the
		// cancellation fast-path; see shard.takeBatch). Background and
		// never-cancellable contexts skip the box — and the allocation.
		e.cx = &entryCtx{ctx}
	}
	if d.latHist != nil && id&latSampleMask == 0 {
		e.t0 = d.latStamp(time.Now().UnixNano())
	}
	if d.tr != nil {
		d.tr.Record(id, obs.TraceQueued, s.id)
	}
	s.enqueueOne(e, bounded)
	return id, nil
}

// SubmitBatch enqueues the jobs in order and returns the id of the first;
// the batch gets the contiguous id block [first, first+len(fns)). Jobs are
// spread across shards in contiguous chunks, one shard lock per chunk.
// Acceptance is all-or-nothing: either every job is enqueued (and will be
// performed) or the call fails — with ErrClosed, with ErrQueueFull when a
// FailFast batch does not fit into the target shards' free capacity, or
// with ErrJournalFull when a durable batch would cross MaxJobs — and none
// are. A failed call consumes no ids whatsoever (the range lease never
// moves the cursor on failure), so the deterministic id sequence is
// unaffected by rejected batches. Under Block, a batch larger than the
// free capacity is fed in as rounds drain the queues.
//
// An EMPTY batch returns the sentinel (0, nil): no job id is consumed,
// no shard is touched, and 0 is never a real id — real ids start at 1.
// SubmitBatch is the v1 path, equivalent to DoBatch with bare
// Normal-priority Tasks (whose empty-batch sentinel is (nil, nil)).
func (d *Dispatcher) SubmitBatch(fns []Job) (uint64, error) {
	if len(fns) == 0 {
		return 0, nil
	}
	return d.doBatch(context.Background(), len(fns),
		func(i int) entry { return entry{fn0: fns[i]} }, nil)
}

// doBatch is the batch submission core shared by SubmitBatch and
// DoBatch: n entries produced by entryAt (ids assigned here), each with
// an optional completion waiter from doneAt (nil for waiter-less
// batches). ctx governs admission only — it is checked before any id is
// consumed; an accepted batch is fed in fully even if ctx is cancelled
// mid-feed, because its ids are already part of the deterministic
// sequence.
func (d *Dispatcher) doBatch(ctx context.Context, n int, entryAt func(int) entry, doneAt func(int) func(JobResult)) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	plan := d.plan(n)
	failFast := d.cfg.QueueDepth > 0 && d.cfg.Policy == FailFast
	if failFast {
		for i, c := range plan {
			if !c.s.tryReserve(c.hi - c.lo) {
				for _, r := range plan[:i] {
					r.s.unreserve(r.hi - r.lo)
				}
				return 0, ErrQueueFull
			}
		}
	}
	first, err := d.leaseRange(uint64(n))
	if err != nil {
		if failFast {
			for _, c := range plan {
				c.s.unreserve(c.hi - c.lo)
			}
		}
		return 0, err
	}
	for _, c := range plan {
		c.s.count.submitted.Add(uint64(c.hi - c.lo))
	}
	var stamp uint32 // one submit stamp for the whole batch's samples (0 = off)
	if d.latHist != nil {
		stamp = d.latStamp(time.Now().UnixNano())
	}
	if d.recLeft.Load() > 0 {
		// Recovery is draining: filter out the jobs a previous
		// incarnation already performed, chunk by chunk, and enqueue the
		// rest. Waiters are registered (or fired, for recovered jobs)
		// before each chunk is enqueued, so no job can complete ahead of
		// its waiter.
		var buf []entry
		for _, c := range plan {
			buf = buf[:0]
			skipped := 0
			for i := c.lo; i < c.hi; i++ {
				id := first + uint64(i)
				done := func(JobResult) {}
				if doneAt != nil {
					done = doneAt(i)
				}
				if d.tr != nil {
					d.tr.Record(id, obs.TraceSubmitted, c.s.id)
				}
				if d.resolveRecovered(id) {
					skipped++
					if d.tr != nil {
						d.tr.Record(id, obs.TraceRecovered, c.s.id)
						d.tr.Record(id, obs.TraceResolved, c.s.id)
					}
					if doneAt != nil {
						done(JobResult{ID: id, Recovered: true})
					}
				} else {
					if doneAt != nil {
						d.waiters.add(id, done)
					}
					e := entryAt(i)
					e.id = id
					if stamp != 0 && id&latSampleMask == 0 {
						e.t0 = stamp
					}
					if d.tr != nil {
						d.tr.Record(id, obs.TraceQueued, c.s.id)
					}
					buf = append(buf, e)
				}
			}
			if skipped > 0 {
				d.recoveredN.Add(uint64(skipped))
				if failFast {
					c.s.unreserve(skipped)
				}
				c.s.jobsDone(skipped)
			}
			if len(buf) > 0 {
				c.s.enqueueEntries(buf, failFast)
			}
		}
		return first, nil
	}
	// Register every waiter before any entry is enqueued: a Block-policy
	// feed can park on a later chunk while earlier chunks already run.
	if doneAt != nil {
		for i := 0; i < n; i++ {
			d.waiters.add(first+uint64(i), doneAt(i))
		}
	}
	for _, c := range plan {
		if d.tr != nil {
			// Queued is recorded before the feed so it can never appear
			// after the round that starts the job.
			for i := c.lo; i < c.hi; i++ {
				id := first + uint64(i)
				d.tr.Record(id, obs.TraceSubmitted, c.s.id)
				d.tr.Record(id, obs.TraceQueued, c.s.id)
			}
		}
		c.s.feed(c.hi-c.lo, func(i int) entry {
			e := entryAt(c.lo + i)
			e.id = first + uint64(c.lo+i)
			if stamp != 0 && e.id&latSampleMask == 0 {
				e.t0 = stamp
			}
			return e
		}, failFast)
	}
	return first, nil
}

// chunk is one contiguous slice of a batch, bound for one shard.
type chunk struct {
	s      *shard
	lo, hi int
}

// plan partitions n queued items into contiguous chunks round-robined
// across the shards, one chunk per shard. The cursor advances by ONE
// per batch — advancing by S would keep the start shard constant
// (base ≡ const mod S), and a batch-only workload whose batches span
// fewer chunks than Shards would pile onto the same shards forever
// while the rest sat idle. Materializing the plan (rather than
// enqueueing on the fly) lets FailFast reserve every chunk's capacity
// before any id is consumed or any entry enqueued.
func (d *Dispatcher) plan(n int) []chunk {
	S := len(d.shards)
	base := int(d.rr.v.Add(1) - 1)
	per := (n + S - 1) / S
	out := make([]chunk, 0, S)
	for i := 0; i < S && i*per < n; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > n {
			hi = n
		}
		out = append(out, chunk{d.shards[(base+i)%S], lo, hi})
	}
	return out
}

// Flush blocks until every job submitted so far has resolved — performed,
// expired, or recovered; all shard queues and in-flight rounds, carried
// residue included, have drained. Jobs submitted concurrently with Flush
// may or may not be waited for.
func (d *Dispatcher) Flush() { _ = d.FlushContext(context.Background()) }

// FlushContext is Flush with a deadline: it returns nil once every job
// submitted so far has resolved, or ctx.Err() when ctx is cancelled or
// expires first (the dispatcher keeps draining either way).
func (d *Dispatcher) FlushContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		// Wake the cond loop when ctx fires; Broadcast under d.mu pairs
		// with the Wait below, so the wakeup cannot be lost.
		stop := context.AfterFunc(ctx, func() {
			d.mu.Lock()
			d.cond.Broadcast()
			d.mu.Unlock()
		})
		defer stop()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushers.Add(1)
	defer d.flushers.Add(-1)
	for d.sumPerformed() < d.sumSubmitted() {
		if err := ctx.Err(); err != nil {
			return err
		}
		d.cond.Wait()
	}
	return nil
}

// sumPerformed and sumSubmitted total the per-shard counters. Callers
// comparing the two must call sumPerformed FIRST: with sequentially
// consistent atomics, any job whose performed increment the first sum
// observed had its submitted increment ordered before it, so the second
// sum observes that too — performed ≥ submitted then proves every
// counted submission has resolved, never the other way around.
func (d *Dispatcher) sumPerformed() uint64 {
	var n uint64
	for i := range d.counts {
		n += d.counts[i].performed.Load()
	}
	return n
}

func (d *Dispatcher) sumSubmitted() uint64 {
	var n uint64
	for i := range d.counts {
		n += d.counts[i].submitted.Load()
	}
	return n
}

// Close drains all pending jobs, stops the shard loops and releases the
// worker pools; durable backends are synced and closed. Subsequent
// Submits fail with ErrClosed, and Block-policy submitters parked on full
// queues are released with ErrClosed (their job ids unconsumed) instead
// of being left to hang. Close is idempotent.
func (d *Dispatcher) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	// Release submitters parked at admission (reserveWait): they observe
	// closed under the shard lock and return ErrClosed without having
	// consumed an id.
	for _, s := range d.shards {
		s.mu.Lock()
		s.notFull.Broadcast()
		s.mu.Unlock()
	}
	// Wait out in-flight submitters: anything that passed its closed-check
	// finishes enqueueing before the shards are told to stop, so it drains.
	d.closeMu.Lock()
	d.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for _, s := range d.shards {
		s.stop()
	}
	for _, s := range d.shards {
		<-s.done
	}
	var err error
	for _, s := range d.shards {
		s.rt.Close()
		if e := s.closeBackend(); err == nil {
			err = e
		}
	}
	// The ops endpoint outlives the drain (a scrape may watch the
	// shutdown) and dies with the dispatcher.
	if d.ops != nil {
		if e := d.ops.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Sync flushes every durable backend to stable storage (msync for the
// mmap backend). It is a no-op for in-process dispatchers and safe to
// call at any time, including while rounds are running — writes racing
// the flush may or may not be included.
func (d *Dispatcher) Sync() error {
	var err error
	for _, s := range d.shards {
		if s.backend != nil {
			if e := s.backend.Sync(); err == nil {
				err = e
			}
		}
	}
	return err
}

// abandon simulates process death for crash-recovery tests: every shard
// loop exits at its next round boundary without draining its queue, and
// the backends are left un-closed, exactly as a kill would. The
// dispatcher is unusable afterwards.
func (d *Dispatcher) abandon() {
	d.closed.Store(true)
	for _, s := range d.shards {
		s.abandon()
	}
	for _, s := range d.shards {
		<-s.done
	}
	for _, s := range d.shards {
		s.rt.Close()
	}
}

// wakeFlushers wakes parked FlushContext calls after completion
// progress, but only when one is actually waiting: flushers is
// incremented under d.mu BEFORE the flusher reads the counter sums, so
// (seq-cst) a resolver that loads flushers == 0 is ordered before that
// increment and its performed counts are visible to the flusher's own
// sums — the common no-flusher round skips the lock entirely.
func (d *Dispatcher) wakeFlushers() {
	if d.flushers.Load() == 0 {
		return
	}
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// EffBuckets is the size of the per-round effectiveness histogram: a
// fixed log scale over the round's LOSS fraction 1 − performed/batch.
// Bucket 0 counts rounds that lost more than half their batch, bucket i
// rounds with loss in (2⁻⁽ⁱ⁺¹⁾, 2⁻ⁱ], bucket EffBuckets−2 sweeps up
// every non-zero loss at or below 2⁻⁽ᴱᶠᶠᴮᵘᶜᵏᵉᵗˢ⁻²⁾, and the last bucket
// counts perfect rounds (every job in the batch performed). The log
// scale matches the quantity of interest: the paper's bound is an
// additive β+m−2 tail, so healthy rounds cluster in the fine buckets
// near zero loss and pathology shows up as mass sliding toward bucket 0.
const EffBuckets = 12

// effBucket maps one round's (performed, batch) to its histogram
// bucket.
func effBucket(performed, batch int) int {
	if performed >= batch {
		return EffBuckets - 1
	}
	loss := batch - performed // in (0, batch]
	i := 0
	for i < EffBuckets-2 && loss<<(i+1) <= batch {
		i++
	}
	return i
}

// ShardStats reports one shard's cumulative and latest-round counters.
type ShardStats struct {
	// Rounds is the number of rounds the shard has executed.
	Rounds uint64
	// Performed is the cumulative number of (real) jobs the shard
	// executed; Residue is the cumulative number it carried over to a
	// later round instead.
	Performed uint64
	Residue   uint64
	// Duplicates is the cumulative duplicate count — always 0.
	Duplicates uint64
	// Crashes counts injected worker crashes (workers revive next round).
	Crashes uint64
	// Steps and Work aggregate the paper's cost measures over all rounds.
	Steps uint64
	Work  uint64
	// Expired counts jobs whose deadline passed before their round was
	// assembled: they were removed at round-assembly time, never ran, and
	// resolved with Expired set (included in the dispatcher's Performed
	// total for conservation, like Recovered).
	Expired uint64
	// Cancelled counts jobs whose submission ctx was dead at round
	// assembly: removed like Expired ones, payload never ran, resolved
	// with Cancelled set and the ctx's error.
	Cancelled uint64
	// Stolen counts the jobs this shard claimed from sibling queues while
	// idle (work-stealing); they were performed — and, when durable,
	// journaled — by this shard under its own backend and lease.
	Stolen uint64
	// SubmitBlockedNanos accumulates the time submitters spent parked
	// waiting for space in this shard's bounded queue (Policy Block).
	SubmitBlockedNanos uint64
	// QueueDepth is the shard's pending-job queue length at snapshot
	// time (not cumulative). With Config.QueueDepth set it never exceeds
	// it.
	QueueDepth int
	// LastBatch and LastPerformed describe the most recent round: jobs in,
	// jobs done. LastPerformed/LastBatch is the round's effectiveness.
	LastBatch     int
	LastPerformed int
	// EffHist is the per-round effectiveness histogram (see EffBuckets
	// for the bucket semantics): every executed round increments exactly
	// one bucket.
	EffHist [EffBuckets]uint64
}

// Stats is a point-in-time snapshot of dispatcher progress.
type Stats struct {
	// Submitted, Performed and Pending count jobs; Pending jobs are queued
	// or in flight. Recovered counts the re-submitted jobs that resolved
	// from a previous incarnation's durable journal without re-running
	// (they are included in Performed).
	Submitted uint64
	Performed uint64
	Pending   uint64
	Recovered uint64
	// Expired counts jobs that resolved by deadline expiry at
	// round-assembly time: the payload never ran. Like Recovered, they
	// are included in Performed so Submitted = Performed + Pending.
	Expired uint64
	// Cancelled counts jobs that resolved by submission-ctx cancellation
	// at round-assembly time (the cooperative cancellation fast-path):
	// like Expired, the payload never ran and the job is included in
	// Performed for conservation.
	Cancelled uint64
	// Rounds, Residue, Duplicates, Crashes, Steps and Work sum the
	// per-shard counters.
	Rounds     uint64
	Residue    uint64
	Duplicates uint64
	Crashes    uint64
	Steps      uint64
	Work       uint64
	// StolenJobs sums the shards' work-stealing counters;
	// SubmitBlockedNanos sums the time submitters spent blocked on full
	// shard queues (backpressure). Per-shard breakdowns (including each
	// queue's current depth) are in Shards.
	StolenJobs         uint64
	SubmitBlockedNanos uint64
	// EffHist sums the shards' per-round effectiveness histograms; see
	// EffBuckets for the log-scale bucket semantics.
	EffHist [EffBuckets]uint64
	// Elapsed is the time since New; JobsPerSec is Performed/Elapsed.
	Elapsed    time.Duration
	JobsPerSec float64
	// Shards holds the per-shard breakdown, indexed by shard id.
	Shards []ShardStats
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	// Sum performed first: submitted only grows, and a job is counted
	// submitted before it can ever be performed, so this order (plus the
	// clamp) keeps Pending from underflowing when jobs complete between
	// the two sums (see sumPerformed).
	performed := d.sumPerformed()
	st := Stats{
		Submitted: d.sumSubmitted(),
		Performed: performed,
		Recovered: d.recoveredN.Load(),
		Elapsed:   time.Since(d.start),
		Shards:    make([]ShardStats, len(d.shards)),
	}
	if st.Submitted < performed {
		st.Submitted = performed
	}
	st.Pending = st.Submitted - performed
	for i, s := range d.shards {
		st.Shards[i] = s.snapshotStats()
		st.Expired += st.Shards[i].Expired
		st.Cancelled += st.Shards[i].Cancelled
		st.Rounds += st.Shards[i].Rounds
		st.Residue += st.Shards[i].Residue
		st.Duplicates += st.Shards[i].Duplicates
		st.Crashes += st.Shards[i].Crashes
		st.Steps += st.Shards[i].Steps
		st.Work += st.Shards[i].Work
		st.StolenJobs += st.Shards[i].Stolen
		st.SubmitBlockedNanos += st.Shards[i].SubmitBlockedNanos
		for b, n := range st.Shards[i].EffHist {
			st.EffHist[b] += n
		}
	}
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.JobsPerSec = float64(st.Performed) / secs
	}
	return st
}
