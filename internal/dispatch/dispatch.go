// Package dispatch turns the paper's fixed-batch at-most-once primitive
// into a streaming engine. A Dispatcher accepts a continuous stream of
// jobs, batches them into rounds, and partitions each round across S
// shards — every shard a persistent KKβ worker pool (conc.Runtime) with
// its own m workers and register file. Each round's unperformed residue
// (the unavoidable ≤ β+m−2 tail of Theorem 4.4, plus anything lost to
// injected crashes) is carried to the front of the shard's queue for the
// next round, so the additive per-round effectiveness loss never turns
// into a lost job: every submitted job is eventually performed, and the
// at-most-once guarantee holds end-to-end because a job is requeued only
// when no worker performed it.
//
// This is the round/epoch construction of the do-all literature (Dwork,
// Halpern & Waarts) layered over KKβ: amortize the per-round loss over a
// long computation instead of paying it once on a single batch.
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Job is a unit of user work. The dispatcher invokes it at most once,
// from one of the shard's worker goroutines.
type Job func()

// Config configures a Dispatcher.
type Config struct {
	// Shards is S, the number of independent KKβ instances (default 1).
	// Shards multiply throughput: rounds on different shards run fully in
	// parallel and share nothing.
	Shards int
	// Workers is m, the worker goroutines per shard (default 4).
	Workers int
	// Beta is KKβ's termination parameter per shard (0 = Workers, the
	// effectiveness-optimal choice).
	Beta int
	// MaxBatch caps the jobs a shard executes in one round (default 1024).
	// It fixes the shard's register-file capacity, so memory is
	// S·Workers·MaxBatch registers in total.
	MaxBatch int
	// Jitter adds scheduling noise inside the worker pools; Seed makes it
	// deterministic.
	Jitter bool
	Seed   int64
	// CrashPlan, when non-nil, injects worker crashes: before shard s runs
	// its round r (0-based), CrashPlan(s, r) may return a per-worker step
	// budget (0 = never crash; at least one worker must survive). Crashed
	// workers are revived on the shard's next round. Malformed vectors are
	// ignored. This is the fault-injection hook used by the chaos tests;
	// a plan that crashes workers on every round forever can starve Flush.
	CrashPlan func(shard, round int) []uint64
}

func (c *Config) normalize() error {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBatch < c.Workers {
		c.MaxBatch = c.Workers
	}
	if c.Beta < 0 {
		return fmt.Errorf("dispatch: negative beta %d", c.Beta)
	}
	return nil
}

// ErrClosed is returned by Submit and SubmitBatch after Close.
var ErrClosed = errors.New("dispatch: dispatcher is closed")

// Dispatcher is a long-lived, sharded, round-based at-most-once engine.
// All methods are safe for concurrent use.
type Dispatcher struct {
	cfg    Config
	shards []*shard
	start  time.Time

	nextID    atomic.Uint64 // job ids handed out
	rr        atomic.Uint64 // round-robin shard cursor
	submitted atomic.Uint64
	performed atomic.Uint64

	// closeMu makes submission all-or-nothing with respect to Close:
	// submitters hold the read side across their closed-check and enqueue,
	// and Close takes the write side after flipping closed, so a batch is
	// either fully enqueued before the shards stop (and drains) or fully
	// rejected — never partially accepted.
	closeMu sync.RWMutex
	closed  atomic.Bool

	mu   sync.Mutex // guards cond (Flush waiters)
	cond *sync.Cond
}

// New builds the dispatcher and starts its S shard loops. Callers must
// Close it to release the worker pools.
func New(cfg Config) (*Dispatcher, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Dispatcher{cfg: cfg, start: time.Now()}
	d.cond = sync.NewCond(&d.mu)
	d.shards = make([]*shard, cfg.Shards)
	for i := range d.shards {
		s, err := newShard(d, i)
		if err != nil {
			for _, prev := range d.shards[:i] {
				prev.stop()
				prev.rt.Close()
			}
			return nil, err
		}
		d.shards[i] = s
	}
	for _, s := range d.shards {
		go s.loop()
	}
	return d, nil
}

// Submit enqueues one job and returns its dispatcher-wide id. The job will
// be executed at most once, and — as long as the dispatcher keeps running
// rounds — exactly once.
func (d *Dispatcher) Submit(fn Job) (uint64, error) {
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	id := d.nextID.Add(1)
	s := d.shards[(d.rr.Add(1)-1)%uint64(len(d.shards))]
	d.submitted.Add(1)
	s.enqueue(entry{id: id, fn: fn})
	return id, nil
}

// SubmitBatch enqueues the jobs in order and returns the id of the first;
// the batch gets the contiguous id block [first, first+len(fns)). Jobs are
// spread across shards in contiguous chunks, one shard lock per chunk.
// Acceptance is all-or-nothing: either every job is enqueued (and will be
// performed) or the call fails with ErrClosed and none are.
func (d *Dispatcher) SubmitBatch(fns []Job) (uint64, error) {
	if len(fns) == 0 {
		return 0, nil
	}
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	n := uint64(len(fns))
	first := d.nextID.Add(n) - n + 1
	d.submitted.Add(n)
	S := len(d.shards)
	base := int(d.rr.Add(uint64(S)) - uint64(S))
	chunk := (len(fns) + S - 1) / S
	for i := 0; i < S && i*chunk < len(fns); i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(fns) {
			hi = len(fns)
		}
		d.shards[(base+i)%S].enqueueBatch(first+uint64(lo), fns[lo:hi])
	}
	return first, nil
}

// Flush blocks until every job submitted so far has been performed — i.e.
// all shard queues and in-flight rounds, including carried residue, have
// drained. Jobs submitted concurrently with Flush may or may not be
// waited for.
func (d *Dispatcher) Flush() {
	d.mu.Lock()
	for d.performed.Load() < d.submitted.Load() {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Close drains all pending jobs, stops the shard loops and releases the
// worker pools. Subsequent Submits fail with ErrClosed; Close is
// idempotent.
func (d *Dispatcher) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	// Wait out in-flight submitters: anything that passed its closed-check
	// finishes enqueueing before the shards are told to stop, so it drains.
	d.closeMu.Lock()
	d.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for _, s := range d.shards {
		s.stop()
	}
	for _, s := range d.shards {
		<-s.done
	}
	for _, s := range d.shards {
		s.rt.Close()
	}
	return nil
}

// jobsDone is called by shards after each round to publish progress.
func (d *Dispatcher) jobsDone(n int) {
	if n > 0 {
		d.performed.Add(uint64(n))
	}
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// ShardStats reports one shard's cumulative and latest-round counters.
type ShardStats struct {
	// Rounds is the number of rounds the shard has executed.
	Rounds uint64
	// Performed is the cumulative number of (real) jobs the shard
	// executed; Residue is the cumulative number it carried over to a
	// later round instead.
	Performed uint64
	Residue   uint64
	// Duplicates is the cumulative duplicate count — always 0.
	Duplicates uint64
	// Crashes counts injected worker crashes (workers revive next round).
	Crashes uint64
	// Steps and Work aggregate the paper's cost measures over all rounds.
	Steps uint64
	Work  uint64
	// LastBatch and LastPerformed describe the most recent round: jobs in,
	// jobs done. LastPerformed/LastBatch is the round's effectiveness.
	LastBatch     int
	LastPerformed int
}

// Stats is a point-in-time snapshot of dispatcher progress.
type Stats struct {
	// Submitted, Performed and Pending count jobs; Pending jobs are queued
	// or in flight.
	Submitted uint64
	Performed uint64
	Pending   uint64
	// Rounds, Residue, Duplicates, Crashes, Steps and Work sum the
	// per-shard counters.
	Rounds     uint64
	Residue    uint64
	Duplicates uint64
	Crashes    uint64
	Steps      uint64
	Work       uint64
	// Elapsed is the time since New; JobsPerSec is Performed/Elapsed.
	Elapsed    time.Duration
	JobsPerSec float64
	// Shards holds the per-shard breakdown, indexed by shard id.
	Shards []ShardStats
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	// Load performed first: submitted only grows, and a job is counted
	// submitted before it can ever be performed, so this order (plus the
	// clamp) keeps Pending from underflowing when jobs complete between
	// the two loads.
	performed := d.performed.Load()
	st := Stats{
		Submitted: d.submitted.Load(),
		Performed: performed,
		Elapsed:   time.Since(d.start),
		Shards:    make([]ShardStats, len(d.shards)),
	}
	if st.Submitted < performed {
		st.Submitted = performed
	}
	st.Pending = st.Submitted - performed
	for i, s := range d.shards {
		s.mu.Lock()
		st.Shards[i] = s.stats
		s.mu.Unlock()
		st.Rounds += st.Shards[i].Rounds
		st.Residue += st.Shards[i].Residue
		st.Duplicates += st.Shards[i].Duplicates
		st.Crashes += st.Shards[i].Crashes
		st.Steps += st.Shards[i].Steps
		st.Work += st.Shards[i].Work
	}
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.JobsPerSec = float64(st.Performed) / secs
	}
	return st
}
