package dispatch

import (
	"context"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDispatcherRandomSoak is the dispatcher-level chaos soak: randomized
// shard/worker/queue shapes, continuous crash injection via CrashPlan,
// and concurrent async submitters mixing every submission path. Each
// iteration asserts the full contract — every job executed exactly once,
// every future resolved exactly once, zero duplicates, bounded queues
// never exceeded. Iterations default low so `go test ./...` stays fast;
// CI's soak job raises them via AMO_SOAK_ITERS. Run under -race.
func TestDispatcherRandomSoak(t *testing.T) {
	iters := 3
	if s := os.Getenv("AMO_SOAK_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad AMO_SOAK_ITERS %q: %v", s, err)
		}
		iters = n
	}
	if testing.Short() {
		iters = 2
	}
	seed := time.Now().UnixNano()
	t.Logf("soak seed %d (%d iterations)", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		cfg := Config{
			Shards:   1 + rng.Intn(4),
			Workers:  2 + rng.Intn(4),
			MaxBatch: 16 << rng.Intn(4),
			Jitter:   rng.Intn(2) == 0,
			Seed:     rng.Int63(),
		}
		if rng.Intn(2) == 0 {
			cfg.QueueDepth = 8 << rng.Intn(5)
		}
		if rng.Intn(3) == 0 {
			cfg.RoundTarget = time.Duration(1+rng.Intn(5)) * time.Millisecond
		}
		// Continuous crash injection: every round, each worker but a
		// guaranteed survivor crashes at a random step. Crash parameters
		// must be deterministic per (shard, round) — the plan is called
		// from concurrent shard loops — so derive them by hashing.
		crashSeed := rng.Int63()
		m := cfg.Workers
		cfg.CrashPlan = func(shard, round int) []uint64 {
			h := uint64(crashSeed) ^ uint64(shard)*0x9E3779B97F4A7C15 ^ uint64(round)*0xBF58476D1CE4E5B9
			v := make([]uint64, m)
			for i := 1; i < m; i++ {
				h ^= h >> 27
				h *= 0x94D049BB133111EB
				if h%4 != 0 { // 3/4 of the non-survivor workers crash
					// Low step budgets: bounded queues cut tiny rounds, and a
					// budget beyond a worker's total steps never fires.
					v[i] = 2 + h%48
				}
			}
			return v
		}
		jobs := 2000 + rng.Intn(4000)
		t.Logf("iter %d: shards=%d workers=%d maxBatch=%d queueDepth=%d target=%v jobs=%d",
			it, cfg.Shards, cfg.Workers, cfg.MaxBatch, cfg.QueueDepth, cfg.RoundTarget, jobs)
		soakOnce(t, cfg, jobs, rng.Int63())
		if t.Failed() {
			return
		}
	}
}

// soakOnce drives one randomized dispatcher shape with 4 concurrent
// submitters — mixing every v1 path plus v2 Do across all three
// priorities and random deadlines — and verifies the exactly-once and
// exactly-one-resolution contracts: a job either ran exactly once, or
// (deadline jobs only) expired exactly once without ever running.
func soakOnce(t *testing.T, cfg Config, jobs int, seed int64) {
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	eo := newExactlyOnce(jobs)
	resolutions := make([]atomic.Int32, jobs)
	isAsync := make([]atomic.Bool, jobs)
	hasDeadline := make([]atomic.Bool, jobs)
	expired := make([]atomic.Bool, jobs)
	priorities := [...]Priority{High, Normal, Low}

	// Live invariant sampler: a bounded queue must never be observed
	// past QueueDepth, crash-injected residue and stealing included.
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	if cfg.QueueDepth > 0 {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			for {
				for i, sh := range d.Stats().Shards {
					if sh.QueueDepth > cfg.QueueDepth {
						t.Errorf("soak: shard %d queue observed at %d, bound %d", i, sh.QueueDepth, cfg.QueueDepth)
						return
					}
				}
				select {
				case <-stopSampler:
					return
				default:
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}

	const submitters = 4
	var wg sync.WaitGroup
	per := jobs / submitters
	for p := 0; p < submitters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(p)))
			lo, hi := p*per, (p+1)*per
			if p == submitters-1 {
				hi = jobs
			}
			for i := lo; i < hi; {
				switch rng.Intn(6) {
				case 4: // v2 Do: random priority, no deadline
					idx := i
					isAsync[idx].Store(true)
					fn := eo.job(idx)
					if _, err := d.Do(context.Background(), Task{
						Fn:       func(context.Context) error { fn(); return nil },
						Priority: priorities[rng.Intn(len(priorities))],
						Callback: func(JobResult) { resolutions[idx].Add(1) },
					}); err != nil {
						t.Error(err)
						return
					}
					i++
				case 5: // v2 Do: random priority AND a tight random deadline
					idx := i
					isAsync[idx].Store(true)
					hasDeadline[idx].Store(true)
					fn := eo.job(idx)
					// Deadlines from 1ms in the past to 3ms out: some expire
					// at round assembly, some race their round and may go
					// either way — both outcomes must resolve exactly once.
					dl := time.Now().Add(time.Duration(rng.Intn(4))*time.Millisecond - time.Millisecond)
					if _, err := d.Do(context.Background(), Task{
						Fn:       func(context.Context) error { fn(); return nil },
						Priority: priorities[rng.Intn(len(priorities))],
						Deadline: dl,
						Callback: func(r JobResult) {
							if r.Expired {
								expired[idx].Store(true)
							}
							resolutions[idx].Add(1)
						},
					}); err != nil {
						t.Error(err)
						return
					}
					i++
				case 0: // plain Submit
					if _, err := d.Submit(eo.job(i)); err != nil {
						t.Error(err)
						return
					}
					i++
				case 1: // future
					idx := i
					isAsync[idx].Store(true)
					_, ch, err := d.SubmitAsync(eo.job(idx))
					if err != nil {
						t.Error(err)
						return
					}
					go func() {
						r := <-ch
						if r.ID == 0 {
							t.Error("future resolved with zero id")
						}
						resolutions[idx].Add(1)
					}()
					i++
				case 2: // callback
					idx := i
					isAsync[idx].Store(true)
					if _, err := d.SubmitCallback(eo.job(idx), func(JobResult) {
						resolutions[idx].Add(1)
					}); err != nil {
						t.Error(err)
						return
					}
					i++
				default: // batch
					n := 1 + rng.Intn(40)
					if n > hi-i {
						n = hi - i
					}
					fns := make([]Job, n)
					for j := 0; j < n; j++ {
						fns[j] = eo.job(i + j)
					}
					if _, err := d.SubmitBatch(fns); err != nil {
						t.Error(err)
						return
					}
					i += n
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		close(stopSampler)
		samplerWG.Wait()
		return
	}
	d.Flush()
	close(stopSampler)
	samplerWG.Wait()
	// Exactly-once with expiry: a job either ran exactly once, or — only
	// if it carried a deadline — expired exactly once without running.
	wantExpired := uint64(0)
	for i := range eo.counts {
		c := eo.counts[i].Load()
		if hasDeadline[i].Load() && expired[i].Load() {
			wantExpired++
			if c != 0 {
				t.Fatalf("soak: job %d resolved Expired but ran %d times", i, c)
			}
			continue
		}
		if c != 1 {
			t.Fatalf("soak: job %d ran %d times, want 1", i, c)
		}
	}

	st := d.Stats()
	if st.Duplicates != 0 {
		t.Fatalf("soak: %d duplicates", st.Duplicates)
	}
	if st.Performed != uint64(jobs) || st.Pending != 0 {
		t.Fatalf("soak: performed %d pending %d of %d", st.Performed, st.Pending, jobs)
	}
	if st.Expired != wantExpired {
		t.Fatalf("soak: Stats.Expired = %d, but %d jobs resolved Expired", st.Expired, wantExpired)
	}
	if st.Crashes == 0 {
		t.Fatal("soak: crash plan injected nothing")
	}
	if cfg.QueueDepth > 0 {
		for i, sh := range st.Shards {
			if sh.QueueDepth > cfg.QueueDepth {
				t.Fatalf("soak: shard %d queue depth %d exceeds bound %d", i, sh.QueueDepth, cfg.QueueDepth)
			}
		}
	}
	// Every async submission resolved exactly once. Callbacks fire before
	// Flush returns; futures hand off through a helper goroutine, so give
	// those stragglers a moment.
	waitFor(t, "all futures resolved", func() bool {
		for i := range resolutions {
			if isAsync[i].Load() && resolutions[i].Load() == 0 {
				return false
			}
		}
		return true
	})
	for i := range resolutions {
		c := resolutions[i].Load()
		if isAsync[i].Load() && c != 1 {
			t.Fatalf("soak: async job index %d resolved %d times", i, c)
		}
		if !isAsync[i].Load() && c != 0 {
			t.Fatalf("soak: plain job index %d got %d resolutions", i, c)
		}
	}
	if n := d.waiters.pending(); n != 0 {
		t.Fatalf("soak: completion table not drained: %d waiters", n)
	}
}
