package dispatch

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/obs"
)

// TestDoCancelledFastPath: a Task whose submission ctx dies while it is
// still queued resolves Cancelled with the ctx's error at the next
// round assembly — the payload never runs — and the cancellation shows
// up in Stats, the per-shard metric family and the job's trace
// timeline. Conservation must hold: a cancelled job counts performed,
// so Flush still drains.
func TestDoCancelledFastPath(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 8, TraceSampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Park the shard loop inside a round: anything submitted from here
	// stays queued until the blocker is released, so the cancellation
	// is guaranteed to be observed at round ASSEMBLY, not mid-round.
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := d.Submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	h, err := d.Do(ctx, Task{Fn: func(context.Context) error { ran.Store(true); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)

	select {
	case r := <-h.Done():
		if !r.Cancelled || r.Expired || r.Recovered {
			t.Fatalf("result = %+v, want Cancelled only", r)
		}
		if r.Err != context.Canceled {
			t.Fatalf("cancelled job Err = %v, want context.Canceled", r.Err)
		}
		if r.ID != h.ID {
			t.Fatalf("result id %d, want %d", r.ID, h.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never resolved")
	}
	if ran.Load() {
		t.Fatal("cancelled payload ran")
	}
	d.Flush() // must not hang: the cancellation counted toward performed

	st := d.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("Stats.Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Expired != 0 {
		t.Fatalf("Stats.Expired = %d, want 0 (cancellations must not count as expiries)", st.Expired)
	}
	if st.Performed != st.Submitted {
		t.Fatalf("conservation broken: performed %d != submitted %d", st.Performed, st.Submitted)
	}
	if st.Shards[0].Cancelled != 1 {
		t.Fatalf("shard Cancelled = %d, want 1", st.Shards[0].Cancelled)
	}

	var buf bytes.Buffer
	if err := d.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("amo_dispatcher_cancelled_jobs_total")) {
		t.Fatal("amo_dispatcher_cancelled_jobs_total missing from the exposition")
	}

	// Trace grammar: the cancelled job must end in a cancelled event and
	// never record started.
	events := d.Tracer().Timeline(h.ID)
	if len(events) == 0 {
		t.Fatal("cancelled job left no trace")
	}
	for _, e := range events {
		if e.Event == obs.TraceStarted {
			t.Fatalf("cancelled job recorded started: %+v", events)
		}
	}
	if last := events[len(events)-1].Event; last != obs.TraceCancelled {
		t.Fatalf("cancelled job's final trace event = %v, want cancelled", last)
	}
}

// TestDoCancelTooLate: a ctx cancelled only after the payload has run
// changes nothing — the job resolved as performed, exactly once.
func TestDoCancelTooLate(t *testing.T) {
	d, err := New(Config{Shards: 1, Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	h, err := d.Do(ctx, Task{Fn: func(context.Context) error { ran.Store(true); return nil }})
	if err != nil {
		t.Fatal(err)
	}
	r := <-h.Done()
	cancel()
	if r.Cancelled || r.Err != nil {
		t.Fatalf("result = %+v, want plain success", r)
	}
	if !ran.Load() {
		t.Fatal("payload never ran")
	}
	if st := d.Stats(); st.Cancelled != 0 {
		t.Fatalf("Stats.Cancelled = %d, want 0", st.Cancelled)
	}
}

// TestDoCancelledRace hammers the fast-path from many goroutines with
// contexts cancelled at arbitrary points relative to round assembly.
// Whatever the interleaving, every handle resolves exactly once, a
// cancelled resolution never ran its payload, and the counters add up.
func TestDoCancelledRace(t *testing.T) {
	d, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const (
		submitters = 8
		perG       = 200
	)
	ran := make([]atomic.Bool, submitters*perG)
	results := make([]JobResult, submitters*perG)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx := g*perG + i
				ctx, cancel := context.WithCancel(context.Background())
				h, err := d.Do(ctx, Task{Fn: func(context.Context) error {
					ran[idx].Store(true)
					return nil
				}})
				if err != nil {
					t.Errorf("Do: %v", err)
					cancel()
					return
				}
				if i%2 == 0 {
					cancel() // racing the round cut
				}
				results[idx] = <-h.Done()
				cancel()
			}
		}(g)
	}
	wg.Wait()
	d.Flush()

	var cancelled uint64
	for i := range results {
		r := results[i]
		switch {
		case r.Cancelled:
			cancelled++
			if ran[i].Load() {
				t.Fatalf("job %d resolved Cancelled but its payload ran", r.ID)
			}
			if r.Err != context.Canceled {
				t.Fatalf("job %d cancelled with Err = %v", r.ID, r.Err)
			}
		default:
			if !ran[i].Load() {
				t.Fatalf("job %d resolved performed but its payload never ran", r.ID)
			}
		}
	}
	st := d.Stats()
	if st.Cancelled != cancelled {
		t.Fatalf("Stats.Cancelled = %d, but %d handles resolved Cancelled", st.Cancelled, cancelled)
	}
	if st.Performed != st.Submitted {
		t.Fatalf("conservation broken: performed %d != submitted %d", st.Performed, st.Submitted)
	}
	if st.Duplicates != 0 {
		t.Fatalf("duplicates: %d", st.Duplicates)
	}
}
