package netmem

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestJournalBatchReconnectResume: opJournalBatch through forced clean
// drops. A batch whose ack never arrived is replayed after the redial
// and must land whole; reads issued across a drop block through the
// reconnect; the fencing epoch must not move (resume is renew-based, so
// a replayed batch is the SAME writer finishing its claim, not a new
// epoch re-journaling).
func TestJournalBatchReconnectResume(t *testing.T) {
	proxy := chaosServer(t, ChaosOptions{Seed: 7})
	var fatal atomic.Value
	c, err := Open(proxy.Addr(), 256, Options{
		Namespace:      uniqueNS(),
		LeaseTTL:       500 * time.Millisecond,
		RedialAttempts: 20,
		OnFatal:        collectFatal(&fatal),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e0 := c.Epoch()

	ids := func(base uint64, n int) []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = base + uint64(i)
		}
		return v
	}
	if err := c.JournalWriteBatch(0, ids(1000, 16)); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	proxy.DropAll() // the next batch crosses a dead connection: resend after redial
	if err := c.JournalWriteBatch(16, ids(2000, 16)); err != nil {
		t.Fatalf("batch across a drop: %v", err)
	}
	proxy.DropAll() // and the verification reads block through another redial
	dst := make([]int64, 32)
	if err := c.ReadRange(0, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if dst[i] != int64(1000+i) {
			t.Fatalf("cell %d = %d, want %d", i, dst[i], 1000+i)
		}
		if dst[16+i] != int64(2000+i) {
			t.Fatalf("cell %d = %d, want %d", 16+i, dst[16+i], 2000+i)
		}
	}
	if got := c.Epoch(); got != e0 {
		t.Fatalf("epoch moved across reconnects: %d, want %d", got, e0)
	}
	if err, _ := fatal.Load().(error); err != nil {
		t.Fatalf("client died: %v", err)
	}
	if proxy.Drops() < 2 {
		t.Fatalf("proxy injected %d drops, want ≥ 2", proxy.Drops())
	}
}

// TestJournalBatchMidFrameDrops: opJournalBatch under the hardest cut —
// the proxy severs connections mid-frame (a strict prefix of the batch
// frame reaches the server), repeatedly, across a sustained stream of
// batches. The contract under test: an ACKED batch is fully applied (a
// truncated frame never becomes a partial batch), and every batch
// eventually lands whole because unacked ops are resent after the
// redial.
func TestJournalBatchMidFrameDrops(t *testing.T) {
	proxy := chaosServer(t, ChaosOptions{
		Seed:          13,
		DropEvery:     2 << 10, // a sever every ~2KB: several per pass
		PartialWrites: true,    // cut INSIDE frames, not at boundaries
	})
	const (
		cells    = 512
		batchLen = 16
		batches  = cells / batchLen
	)
	passes := 6
	if testing.Short() {
		passes = 2
	}
	var fatal atomic.Value
	c, err := Open(proxy.Addr(), cells, Options{
		Namespace:      uniqueNS(),
		LeaseTTL:       500 * time.Millisecond,
		RedialAttempts: 200,
		RedialBackoff:  2 * time.Millisecond,
		OnFatal:        collectFatal(&fatal),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dst := make([]int64, batchLen)
	for p := 1; p <= passes; p++ {
		for bi := 0; bi < batches; bi++ {
			addr := bi * batchLen
			ids := make([]uint64, batchLen)
			for i := range ids {
				ids[i] = uint64(p)<<32 | uint64(addr+i)
			}
			if err := c.JournalWriteBatch(addr, ids); err != nil {
				t.Fatalf("pass %d batch %d: %v", p, bi, err)
			}
			// Acked ⇒ fully applied: read the batch straight back. A
			// torn frame that half-landed would show a mix of passes.
			if err := c.ReadRange(addr, dst); err != nil {
				t.Fatalf("pass %d batch %d readback: %v", p, bi, err)
			}
			for i, got := range dst {
				if got != int64(ids[i]) {
					t.Fatalf("pass %d: cell %d = %#x, want %#x (torn batch?)", p, addr+i, got, ids[i])
				}
			}
		}
	}

	// Final audit: the whole register file carries the last pass.
	all := make([]int64, cells)
	if err := c.ReadRange(0, all); err != nil {
		t.Fatal(err)
	}
	for a, got := range all {
		want := int64(uint64(passes)<<32 | uint64(a))
		if got != want {
			t.Fatalf("audit: cell %d = %#x, want %#x", a, got, want)
		}
	}
	if err, _ := fatal.Load().(error); err != nil {
		t.Fatalf("client died: %v", err)
	}
	if proxy.Drops() == 0 {
		t.Fatal("no mid-frame drops were injected; the chaos schedule is not biting")
	}
	t.Logf("journal batches survived %d mid-frame drops", proxy.Drops())
}
