package netmem

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
)

// TestJournalWrite: the opJournal round trip. A JournalWrite lands the
// id in the cell like an acked write AND the server's tracer witnesses
// the job id as a journaled event with the server-side shard marker —
// the anchor record cross-process stitching keys on.
func TestJournalWrite(t *testing.T) {
	tr := obs.NewTracer(1, 64)
	srv := NewServer(ServerOptions{Tracer: tr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, uniqueNS()), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jw, ok := b.(membackend.JournalWriter)
	if !ok {
		t.Fatal("net backend does not implement JournalWriter")
	}

	for i, id := range []uint64{42, 43, 44} {
		if err := jw.JournalWrite(10+i, id); err != nil {
			t.Fatalf("JournalWrite(%d, %d): %v", 10+i, id, err)
		}
	}
	for i, id := range []int64{42, 43, 44} {
		if got := b.Read(10 + i); got != id {
			t.Fatalf("cell %d = %d, want %d", 10+i, got, id)
		}
	}

	doc := obs.NewTracezDoc(tr)
	if len(doc.Jobs) != 3 {
		t.Fatalf("server tracer saw %d jobs, want 3: %+v", len(doc.Jobs), doc.Jobs)
	}
	for _, j := range doc.Jobs {
		if j.ID < 42 || j.ID > 44 {
			t.Fatalf("server traced unexpected job %d", j.ID)
		}
		if len(j.Events) != 1 || j.Events[0].Event != "journaled" || j.Events[0].Shard != -1 {
			t.Fatalf("job %d server events = %+v, want one journaled at shard -1", j.ID, j.Events)
		}
		if j.Events[0].Inc != doc.Incarnation || j.Events[0].TS == 0 {
			t.Fatalf("job %d journal event missing stitching fields: %+v", j.ID, j.Events[0])
		}
	}

	// Out-of-bounds journal writes are per-op errors, not client deaths:
	// the connection survives for the next operation.
	if err := jw.JournalWrite(4096, 99); err == nil || !strings.Contains(err.Error(), "journal addr") {
		t.Fatalf("out-of-bounds JournalWrite err = %v", err)
	}
	if err := jw.JournalWrite(11, 52); err != nil {
		t.Fatalf("journal write after bad-addr error: %v", err)
	}
	if got := b.Read(11); got != 52 {
		t.Fatalf("cell 11 = %d after rewrite, want 52", got)
	}
}

// TestJournalWriteBatch: the opJournalBatch round trip. One awaited op
// lands k ids in k contiguous cells, the server's tracer witnesses
// every id, and a bad batch (out of bounds) is a per-op error that
// leaves the connection alive.
func TestJournalWriteBatch(t *testing.T) {
	tr := obs.NewTracer(1, 64)
	srv := NewServer(ServerOptions{Tracer: tr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, uniqueNS()), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bj, ok := b.(membackend.BatchJournalWriter)
	if !ok {
		t.Fatal("net backend does not implement BatchJournalWriter")
	}

	ids := []uint64{71, 72, 73, 74, 75}
	if err := bj.JournalWriteBatch(20, ids); err != nil {
		t.Fatalf("JournalWriteBatch: %v", err)
	}
	for i, id := range ids {
		if got := b.Read(20 + i); got != int64(id) {
			t.Fatalf("cell %d = %d, want %d", 20+i, got, id)
		}
	}
	if got := b.Read(20 + len(ids)); got != 0 {
		t.Fatalf("cell after batch clobbered: %d", got)
	}
	// A single-element batch is just a journal write.
	if err := bj.JournalWriteBatch(5, []uint64{99}); err != nil {
		t.Fatalf("single-element batch: %v", err)
	}
	if got := b.Read(5); got != 99 {
		t.Fatalf("cell 5 = %d, want 99", got)
	}
	// An empty batch is a no-op, not a wire error.
	if err := bj.JournalWriteBatch(5, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}

	doc := obs.NewTracezDoc(tr)
	if len(doc.Jobs) != len(ids)+1 {
		t.Fatalf("server tracer saw %d jobs, want %d: %+v", len(doc.Jobs), len(ids)+1, doc.Jobs)
	}
	for _, j := range doc.Jobs {
		if len(j.Events) != 1 || j.Events[0].Event != "journaled" || j.Events[0].Shard != -1 {
			t.Fatalf("job %d server events = %+v, want one journaled at shard -1", j.ID, j.Events)
		}
	}

	// A batch overrunning the register file is a per-op error; the
	// connection survives for the next operation.
	if err := bj.JournalWriteBatch(60, []uint64{1, 2, 3, 4, 5, 6}); err == nil ||
		!strings.Contains(err.Error(), "journal batch") {
		t.Fatalf("out-of-bounds batch err = %v", err)
	}
	if err := bj.JournalWriteBatch(30, []uint64{7}); err != nil {
		t.Fatalf("batch after bad-addr error: %v", err)
	}
	if got := b.Read(30); got != 7 {
		t.Fatalf("cell 30 = %d after recovery write, want 7", got)
	}
}

// TestJournalWriteBatchFencedNoPrefix: the atomicity half of the batch
// contract. A fenced writer's batch must be rejected as a whole — the
// successor must never observe a prefix of the incumbent's claim in the
// registers. This is the two-writer test the memtest BatchWrite subtest
// defers to the net backend (the only backend with admission control).
func TestJournalWriteBatchFencedNoPrefix(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	var fatal1 atomic.Value
	c1, err := Open(addr, 64, Options{
		Namespace: ns,
		LeaseTTL:  300 * time.Millisecond,
		OnFatal:   collectFatal(&fatal1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Incumbent stalls; a waiting successor fences it.
	c1.stopRenew()
	c2, err := Open(addr, 64, Options{Namespace: ns, LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if err := c1.JournalWriteBatch(10, []uint64{101, 102, 103, 104}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced batch err = %v, want ErrFenced", err)
	}
	// No prefix: every cell of the rejected batch is untouched.
	for i := 0; i < 4; i++ {
		if got := c2.Read(10 + i); got != 0 {
			t.Fatalf("fenced batch left a prefix: cell %d = %d", 10+i, got)
		}
	}
	c1.Close()
}

// TestJournalWriteNoTracer: a server without a tracer still applies
// journal writes (the capability degrades to an acked write).
func TestJournalWriteNoTracer(t *testing.T) {
	addr := testServerAddr(t)
	b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, uniqueNS()), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jw := b.(membackend.JournalWriter)
	if err := jw.JournalWrite(3, 7); err != nil {
		t.Fatal(err)
	}
	if got := b.Read(3); got != 7 {
		t.Fatalf("cell 3 = %d, want 7", got)
	}
}
