package netmem

import (
	"fmt"
	"strings"
	"testing"

	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
)

// TestJournalWrite: the opJournal round trip. A JournalWrite lands the
// id in the cell like an acked write AND the server's tracer witnesses
// the job id as a journaled event with the server-side shard marker —
// the anchor record cross-process stitching keys on.
func TestJournalWrite(t *testing.T) {
	tr := obs.NewTracer(1, 64)
	srv := NewServer(ServerOptions{Tracer: tr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, uniqueNS()), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jw, ok := b.(membackend.JournalWriter)
	if !ok {
		t.Fatal("net backend does not implement JournalWriter")
	}

	for i, id := range []uint64{42, 43, 44} {
		if err := jw.JournalWrite(10+i, id); err != nil {
			t.Fatalf("JournalWrite(%d, %d): %v", 10+i, id, err)
		}
	}
	for i, id := range []int64{42, 43, 44} {
		if got := b.Read(10 + i); got != id {
			t.Fatalf("cell %d = %d, want %d", 10+i, got, id)
		}
	}

	doc := obs.NewTracezDoc(tr)
	if len(doc.Jobs) != 3 {
		t.Fatalf("server tracer saw %d jobs, want 3: %+v", len(doc.Jobs), doc.Jobs)
	}
	for _, j := range doc.Jobs {
		if j.ID < 42 || j.ID > 44 {
			t.Fatalf("server traced unexpected job %d", j.ID)
		}
		if len(j.Events) != 1 || j.Events[0].Event != "journaled" || j.Events[0].Shard != -1 {
			t.Fatalf("job %d server events = %+v, want one journaled at shard -1", j.ID, j.Events)
		}
		if j.Events[0].Inc != doc.Incarnation || j.Events[0].TS == 0 {
			t.Fatalf("job %d journal event missing stitching fields: %+v", j.ID, j.Events[0])
		}
	}

	// Out-of-bounds journal writes are per-op errors, not client deaths:
	// the connection survives for the next operation.
	if err := jw.JournalWrite(4096, 99); err == nil || !strings.Contains(err.Error(), "journal addr") {
		t.Fatalf("out-of-bounds JournalWrite err = %v", err)
	}
	if err := jw.JournalWrite(11, 52); err != nil {
		t.Fatalf("journal write after bad-addr error: %v", err)
	}
	if got := b.Read(11); got != 52 {
		t.Fatalf("cell 11 = %d after rewrite, want 52", got)
	}
}

// TestJournalWriteNoTracer: a server without a tracer still applies
// journal writes (the capability degrades to an acked write).
func TestJournalWriteNoTracer(t *testing.T) {
	addr := testServerAddr(t)
	b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, uniqueNS()), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jw := b.(membackend.JournalWriter)
	if err := jw.JournalWrite(3, 7); err != nil {
		t.Fatal(err)
	}
	if got := b.Read(3); got != 7 {
		t.Fatalf("cell 3 = %d, want 7", got)
	}
}
