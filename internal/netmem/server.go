package netmem

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

// ServerOptions configures a register server.
type ServerOptions struct {
	// Spec is the membackend spec template backing the namespaces
	// (default "atomic"). Instance-bearing kinds get a ".<namespace>"
	// suffix per namespace (membackend.WithSuffix), so
	// "mmap:/var/lib/amo/regs" stores namespace "jobs" in
	// "/var/lib/amo/regs.jobs".
	Spec string
	// DefaultTTL is the lease duration granted when a client asks for 0
	// (default 2s); MaxTTL clamps what a client may ask for (default 1m).
	DefaultTTL time.Duration
	MaxTTL     time.Duration
	// Logf, when non-nil, receives one line per connection, namespace
	// and lease event.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records a server-side TraceJournaled event
	// (shard -1) for every opJournal write, keyed by the job id on the
	// wire. This is the server's contribution to cross-process timeline
	// stitching: the journal write is observed even if the writing
	// dispatcher dies before its own tracer is scraped.
	Tracer *obs.Tracer
}

// Server owns the register namespaces and serves the wire protocol.
// Each namespace is one membackend.Backend plus a writer-lease record;
// the backend stays open across client sessions, so a successor
// dispatcher reconnecting to a namespace sees the registers its
// predecessor wrote — over "mmap:" specs even across server restarts.
type Server struct {
	opts ServerOptions
	ln   net.Listener

	mu     sync.Mutex
	nss    map[string]*namespace
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// namespace is one register set: a backend and its lease.
type namespace struct {
	name string
	bk   membackend.Backend
	size int

	mu sync.Mutex
	// Lease state. epoch only ever increases; it is bumped on every
	// grant, so a write stamped with an older epoch proves its writer
	// lost the lease at some point since stamping it. holderID 0 means
	// released. An expired deadline does not by itself fence the holder
	// — only a successor's grant does — so a writer with no contender
	// survives arbitrary stalls.
	epoch    uint64
	holderID uint64
	deadline time.Time
	ttl      time.Duration
	cond     *sync.Cond // acquire waiters, woken on release/expiry/shutdown
}

// NewServer builds a server; Listen starts it.
func NewServer(opts ServerOptions) *Server {
	if opts.Spec == "" {
		opts.Spec = "atomic"
	}
	if opts.DefaultTTL <= 0 {
		opts.DefaultTTL = 2 * time.Second
	}
	if opts.MaxTTL <= 0 {
		opts.MaxTTL = time.Minute
	}
	return &Server{
		opts:  opts,
		nss:   make(map[string]*namespace),
		conns: make(map[net.Conn]struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept loop in
// the background, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("netmem: server is closed")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Close stops accepting, severs every connection, wakes lease waiters,
// waits for the handlers to drain and closes the namespace backends.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	nss := make([]*namespace, 0, len(s.nss))
	for _, ns := range s.nss {
		nss = append(nss, ns)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, ns := range nss {
		ns.mu.Lock()
		ns.cond.Broadcast()
		ns.mu.Unlock()
	}
	s.wg.Wait()
	var err error
	for _, ns := range nss {
		if e := ns.bk.Close(); err == nil {
			err = e
		}
	}
	return err
}

// getNamespace returns the namespace for a hello, opening its backend
// on first use. reopened reports whether the namespace holds earlier
// state: either the backend reopened a durable file, or the namespace
// was already open in this server (a previous client session wrote it).
func (s *Server) getNamespace(name string, size int) (ns *namespace, reopened bool, werr *wireError) {
	if err := checkNamespaceName(name); err != nil {
		return nil, false, &wireError{codeBadNamespace, err.Error()}
	}
	if size <= 0 || size > maxCells {
		return nil, false, &wireError{codeProto, fmt.Sprintf("namespace size %d out of range (1..%d)", size, maxCells)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, &wireError{codeClosed, "server is shutting down"}
	}
	if ns, ok := s.nss[name]; ok {
		if ns.size != size {
			return nil, false, &wireError{codeSizeMismatch,
				fmt.Sprintf("namespace %q holds %d cells, hello asked for %d", name, ns.size, size)}
		}
		return ns, true, nil
	}
	spec := membackend.WithSuffix(s.opts.Spec, "."+name)
	bk, err := membackend.Open(spec, size)
	if err != nil {
		return nil, false, &wireError{codeBackend, err.Error()}
	}
	if r, ok := bk.(membackend.Reopener); ok {
		reopened = r.Reopened()
	}
	ns = &namespace{name: name, bk: bk, size: size}
	ns.cond = sync.NewCond(&ns.mu)
	s.nss[name] = ns
	s.logf("netmem: namespace %q opened (%s, %d cells, reopened=%v)", name, spec, size, reopened)
	eventlog.Logger().Info("netmem_server_namespace_open",
		"namespace", name, "spec", spec, "cells", size, "reopened", reopened)
	return ns, reopened, nil
}

// checkNamespaceName restricts names to path-safe characters: they are
// spliced into backend specs (mmap file suffixes).
func checkNamespaceName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("namespace name must be 1..128 characters, got %d", len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("namespace name %q contains %q; allowed: letters, digits, '.', '_', '-'", name, c)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("namespace name %q is reserved", name)
	}
	return nil
}

// acquire implements the lease grant. A grant goes through when the
// lease is free, expired, or already held by the same client identity
// (a reconnecting writer re-acquires instantly); every grant bumps the
// epoch. With wait set, the caller parks until the lease can be
// granted; srv is consulted so server shutdown unblocks waiters, and
// dead (set by the caller's connection monitor) so a waiter whose
// client has vanished gives up instead of lingering as a ghost that
// could later be granted the lease — and fence a healthy incumbent
// that has no live contender.
func (ns *namespace) acquire(srv *Server, clientID uint64, ttl time.Duration, wait bool, dead *atomic.Bool) (epoch uint64, grantedTTL time.Duration, werr *wireError) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for {
		srv.mu.Lock()
		closed := srv.closed
		srv.mu.Unlock()
		if closed {
			return 0, 0, &wireError{codeClosed, "server is shutting down"}
		}
		if dead != nil && dead.Load() {
			return 0, 0, &wireError{codeClosed, "client went away while waiting for the lease"}
		}
		now := time.Now()
		if ns.holderID == 0 || ns.holderID == clientID || now.After(ns.deadline) {
			oldEpoch := ns.epoch
			ns.epoch++
			ns.holderID = clientID
			ns.ttl = ttl
			ns.deadline = now.Add(ttl)
			srv.logf("netmem: namespace %q lease granted: epoch %d, client %#x, ttl %s",
				ns.name, ns.epoch, clientID, ttl)
			eventlog.Logger().Info("netmem_server_lease_granted",
				"namespace", ns.name, "old_epoch", oldEpoch, "new_epoch", ns.epoch,
				"client", fmt.Sprintf("%#x", clientID), "ttl", ttl)
			return ns.epoch, ttl, nil
		}
		if !wait {
			return 0, 0, &wireError{codeLeaseHeld,
				fmt.Sprintf("lease held by another writer for up to %s", time.Until(ns.deadline).Round(time.Millisecond))}
		}
		// Park until the holder releases, the lease expires, or the
		// server shuts down. The timer re-checks the deadline for us.
		t := time.AfterFunc(time.Until(ns.deadline)+time.Millisecond, func() {
			ns.mu.Lock()
			ns.cond.Broadcast()
			ns.mu.Unlock()
		})
		ns.cond.Wait()
		t.Stop()
	}
}

// renew extends the holder's lease. The epoch must still be current:
// renewing after a successor's grant is the fencing moment where a
// stalled writer learns it is dead.
func (ns *namespace) renew(epoch uint64) *wireError {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if epoch == 0 || epoch != ns.epoch || ns.holderID == 0 {
		return &wireError{codeFenced, fmt.Sprintf("renew epoch %d, lease is at %d", epoch, ns.epoch)}
	}
	ns.deadline = time.Now().Add(ns.ttl)
	return nil
}

// release frees the lease if epoch is still current; stale releases are
// ignored (the lease they refer to is already gone).
func (ns *namespace) release(epoch uint64) {
	ns.mu.Lock()
	if epoch != 0 && epoch == ns.epoch && ns.holderID != 0 {
		ns.holderID = 0
		ns.cond.Broadcast()
	}
	ns.mu.Unlock()
}

// applyMut gates every mutating op: the stamped epoch must be the
// current lease, and the mutation runs under the same lock that grants
// leases — the fencing check and the apply are one atomic step. Without
// that, a handler descheduled between check and apply could land a
// stale writer's mutation after its successor's grant (and after the
// successor's recovery scan), which is exactly the duplicate the fence
// exists to prevent.
func (ns *namespace) applyMut(epoch uint64, fn func() *wireError) *wireError {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if epoch == 0 || epoch != ns.epoch || ns.holderID == 0 {
		return &wireError{codeFenced, fmt.Sprintf("write stamped epoch %d, lease is at %d", epoch, ns.epoch)}
	}
	return fn()
}

// wireError is an error that travels as an opErr frame.
type wireError struct {
	code uint16
	msg  string
}

func (e *wireError) Error() string { return fmt.Sprintf("netmem: server error %d: %s", e.code, e.msg) }

// handle serves one connection until EOF or error. Requests are
// processed strictly in order; replies are buffered and flushed when
// the read side has no more complete requests buffered (natural
// batching under pipelining) and always before a potentially blocking
// lease wait.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	srvConns.Add(1)
	defer srvConns.Add(-1)
	remote := c.RemoteAddr().String()
	eventlog.Logger().Debug("netmem_server_conn_open", "remote", remote)
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		eventlog.Logger().Debug("netmem_server_conn_closed", "remote", remote)
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var (
		buf     []byte
		scratch []byte
		ids     []uint64
		ns      *namespace
	)
	reply := func(seq uint32, op byte, payload []byte) bool {
		srvBytesOut.Add(frameBytes(len(payload)))
		return writeFrame(bw, op, seq, payload) == nil
	}
	replyErr := func(seq uint32, we *wireError) bool {
		if we.code == codeFenced {
			srvFencedRejs.Inc()
			nsName := ""
			if ns != nil {
				nsName = ns.name
			}
			// The detail text carries both epochs: the offender's stale
			// stamp and the lease's current one.
			eventlog.Logger().Warn("netmem_server_fenced_rejection",
				"namespace", nsName, "remote", remote, "detail", we.msg)
		}
		scratch = scratch[:0]
		scratch = appendU16(scratch, we.code)
		scratch = appendStr(scratch, we.msg)
		return reply(seq, opErr, scratch)
	}
	for {
		if br.Buffered() == 0 && bw.Buffered() > 0 {
			if bw.Flush() != nil {
				return
			}
		}
		op, seq, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			bw.Flush()
			return
		}
		obsServerReq(op, len(payload))
		d := decoder{b: payload}
		ok := true
		switch op {
		case opHello:
			name := d.str()
			size := d.u64()
			if d.done() != nil {
				ok = replyErr(seq, &wireError{codeProto, "malformed hello"})
				break
			}
			n, reopened, werr := s.getNamespace(name, int(size))
			if werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			ns = n
			scratch = scratch[:0]
			if reopened {
				scratch = append(scratch, 1)
			} else {
				scratch = append(scratch, 0)
			}
			ok = reply(seq, opHelloOK, scratch)

		case opAcquire:
			clientID := d.u64()
			ttlMs := d.u64()
			wait := d.u8() != 0
			if d.done() != nil || ns == nil || clientID == 0 {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil && clientID != 0, ns))
				break
			}
			ttl := time.Duration(ttlMs) * time.Millisecond
			if ttl <= 0 {
				ttl = s.opts.DefaultTTL
			}
			if ttl > s.opts.MaxTTL {
				ttl = s.opts.MaxTTL
			}
			// The wait can park this handler; everything buffered must
			// reach the client first or its pipeline stalls against ours.
			if bw.Flush() != nil {
				return
			}
			// While a waiter is parked nothing else reads this
			// connection, so a monitor goroutine can safely block in
			// Peek: it fires when the client disconnects (waiter gives
			// up) or when the client's next request arrives post-grant
			// (monitor retires; the byte stays unconsumed for the main
			// loop, which resumes reading only after monitorDone).
			var dead *atomic.Bool
			var monitorDone chan struct{}
			if wait {
				dead = new(atomic.Bool)
				monitorDone = make(chan struct{})
				go func() {
					defer close(monitorDone)
					if _, err := br.Peek(1); err != nil {
						dead.Store(true)
						ns.mu.Lock()
						ns.cond.Broadcast()
						ns.mu.Unlock()
					}
				}()
			}
			epoch, granted, werr := ns.acquire(s, clientID, ttl, wait, dead)
			if werr != nil {
				if !replyErr(seq, werr) {
					return
				}
				if bw.Flush() != nil {
					return
				}
				if monitorDone != nil {
					<-monitorDone // reclaim the read side before the next readFrame
				}
				break
			}
			srvAcquires.Inc()
			scratch = scratch[:0]
			scratch = appendU64(scratch, epoch)
			scratch = appendU64(scratch, uint64(granted/time.Millisecond))
			if !reply(seq, opAcquireOK, scratch) || bw.Flush() != nil {
				// The grant never reached anyone: free the lease so the
				// next contender need not wait out a dead holder's TTL.
				ns.release(epoch)
				return
			}
			if monitorDone != nil {
				<-monitorDone
			}
			ok = true

		case opRenew:
			epoch := d.u64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if werr := ns.renew(epoch); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			srvRenews.Inc()
			ok = reply(seq, opAck, nil)

		case opRelease:
			epoch := d.u64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			ns.release(epoch)
			ok = reply(seq, opAck, nil)

		case opRead:
			addr := d.u64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if addr >= uint64(ns.size) {
				ok = replyErr(seq, &wireError{codeBadAddr, fmt.Sprintf("read addr %d ≥ size %d", addr, ns.size)})
				break
			}
			scratch = appendI64(scratch[:0], ns.bk.Read(int(addr)))
			ok = reply(seq, opValue, scratch)

		case opWrite:
			epoch := d.u64()
			addr := d.u64()
			val := d.i64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if addr >= uint64(ns.size) {
				ok = replyErr(seq, &wireError{codeBadAddr, fmt.Sprintf("write addr %d ≥ size %d", addr, ns.size)})
				break
			}
			if werr := ns.applyMut(epoch, func() *wireError {
				ns.bk.Write(int(addr), val)
				return nil
			}); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			ok = reply(seq, opAck, nil)

		case opJournal:
			epoch := d.u64()
			addr := d.u64()
			id := d.u64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if addr >= uint64(ns.size) {
				ok = replyErr(seq, &wireError{codeBadAddr, fmt.Sprintf("journal addr %d ≥ size %d", addr, ns.size)})
				break
			}
			if werr := ns.applyMut(epoch, func() *wireError {
				// Same durability and fencing semantics as an acked
				// opWrite; the id names the job so the server can witness
				// the journal write in its own tracer (shard -1 marks the
				// entry as a server-side observation).
				if jw, okj := ns.bk.(membackend.JournalWriter); okj {
					if err := jw.JournalWrite(int(addr), id); err != nil {
						return &wireError{codeBackend, err.Error()}
					}
				} else if aw, oka := ns.bk.(membackend.AckedWriter); oka {
					if err := aw.WriteAcked(int(addr), int64(id)); err != nil {
						return &wireError{codeBackend, err.Error()}
					}
				} else {
					ns.bk.Write(int(addr), int64(id))
				}
				s.opts.Tracer.Record(id, obs.TraceJournaled, -1)
				return nil
			}); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			ok = reply(seq, opAck, nil)

		case opJournalBatch:
			epoch := d.u64()
			addr := d.u64()
			// The rest of the payload is the id vector; the frame length
			// implies the count, like opValues in the other direction.
			if d.err != nil || len(d.b) == 0 || len(d.b)%8 != 0 || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.err == nil && len(d.b) > 0 && len(d.b)%8 == 0, ns))
				break
			}
			count := len(d.b) / 8
			// Overflow-safe bounds, mirroring opReadRange: addr and count
			// are checked separately, never their sum.
			if count > maxRange || addr >= uint64(ns.size) || uint64(count) > uint64(ns.size)-addr {
				ok = replyErr(seq, &wireError{codeBadAddr,
					fmt.Sprintf("journal batch addr %d count %d outside size %d or over %d cells", addr, count, ns.size, maxRange)})
				break
			}
			ids = ids[:0]
			for i := 0; i < count; i++ {
				ids = append(ids, d.u64())
			}
			if werr := ns.applyMut(epoch, func() *wireError {
				// The fence check and every cell store happen under one
				// applyMut critical section: a stale epoch rejects the
				// whole batch before any cell is touched, so a fenced
				// writer can never leave a prefix of its claim behind.
				switch bk := ns.bk.(type) {
				case membackend.BatchJournalWriter:
					if err := bk.JournalWriteBatch(int(addr), ids); err != nil {
						return &wireError{codeBackend, err.Error()}
					}
				case membackend.JournalWriter:
					for i, id := range ids {
						if err := bk.JournalWrite(int(addr)+i, id); err != nil {
							return &wireError{codeBackend, err.Error()}
						}
					}
				case membackend.AckedWriter:
					for i, id := range ids {
						if err := bk.WriteAcked(int(addr)+i, int64(id)); err != nil {
							return &wireError{codeBackend, err.Error()}
						}
					}
				default:
					for i, id := range ids {
						ns.bk.Write(int(addr)+i, int64(id))
					}
				}
				for _, id := range ids {
					s.opts.Tracer.Record(id, obs.TraceJournaled, -1)
				}
				return nil
			}); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			ok = reply(seq, opAck, nil)

		case opReadRange:
			addr := d.u64()
			count := d.u32()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			// Overflow-safe bounds: check addr and count separately, never
			// their sum (addr+count can wrap uint64 on a corrupt frame).
			if count == 0 || count > maxRange || addr >= uint64(ns.size) || uint64(count) > uint64(ns.size)-addr {
				ok = replyErr(seq, &wireError{codeBadAddr,
					fmt.Sprintf("range addr %d count %d outside size %d or over %d cells", addr, count, ns.size, maxRange)})
				break
			}
			scratch = scratch[:0]
			for i := 0; i < int(count); i++ {
				scratch = appendI64(scratch, ns.bk.Read(int(addr)+i))
			}
			ok = reply(seq, opValues, scratch)

		case opFill:
			epoch := d.u64()
			addr := d.u64()
			count := d.u32()
			val := d.i64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			// Overflow-safe bounds, as for opReadRange; a fill may cover
			// the whole namespace (no maxRange cap — there is no reply
			// frame to bound).
			if count == 0 || addr >= uint64(ns.size) || uint64(count) > uint64(ns.size)-addr {
				ok = replyErr(seq, &wireError{codeBadAddr,
					fmt.Sprintf("fill addr %d count %d outside size %d", addr, count, ns.size)})
				break
			}
			if werr := ns.applyMut(epoch, func() *wireError {
				if f, okf := ns.bk.(membackend.Filler); okf {
					if err := f.Fill(int(addr), int(count), val); err != nil {
						return &wireError{codeBackend, err.Error()}
					}
					return nil
				}
				for i := 0; i < int(count); i++ {
					ns.bk.Write(int(addr)+i, val)
				}
				return nil
			}); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			ok = reply(seq, opAck, nil)

		case opCAS:
			epoch := d.u64()
			addr := d.u64()
			oldv := d.i64()
			newv := d.i64()
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if addr >= uint64(ns.size) {
				ok = replyErr(seq, &wireError{codeBadAddr, fmt.Sprintf("cas addr %d ≥ size %d", addr, ns.size)})
				break
			}
			var swapped bool
			var prev int64
			if werr := ns.applyMut(epoch, func() *wireError {
				sw, okc := ns.bk.(membackend.Swapper)
				if !okc {
					return &wireError{codeBackend, fmt.Sprintf("backend %T has no atomic CAS", ns.bk)}
				}
				swapped = sw.CompareAndSwap(int(addr), oldv, newv)
				prev = oldv
				if !swapped {
					prev = ns.bk.Read(int(addr))
				}
				return nil
			}); werr != nil {
				ok = replyErr(seq, werr)
				break
			}
			scratch = scratch[:0]
			if swapped {
				scratch = append(scratch, 1)
			} else {
				scratch = append(scratch, 0)
			}
			scratch = appendI64(scratch, prev)
			ok = reply(seq, opCASResult, scratch)

		case opSync:
			if d.done() != nil || ns == nil {
				ok = replyErr(seq, protoOrNoNS(d.done() == nil, ns))
				break
			}
			if err := ns.bk.Sync(); err != nil {
				ok = replyErr(seq, &wireError{codeBackend, err.Error()})
				break
			}
			ok = reply(seq, opAck, nil)

		default:
			ok = replyErr(seq, &wireError{codeProto, fmt.Sprintf("unknown op %d", op)})
		}
		if !ok {
			return
		}
	}
}

// protoOrNoNS picks the right error for the shared "malformed payload
// or no hello yet" guard.
func protoOrNoNS(wellFormed bool, ns *namespace) *wireError {
	if !wellFormed {
		return &wireError{codeProto, "malformed request payload"}
	}
	if ns == nil {
		return &wireError{codeNoNamespace, "data op before hello"}
	}
	return &wireError{codeProto, "malformed request"}
}
