package netmem

import (
	"time"

	"atmostonce/internal/obs"
)

// Metric families for the networked register service, registered into
// obs.Default at package init — so every binary linking netmem (the
// public atmostonce API blank-imports it) exposes the families from the
// first scrape, zero-valued until traffic flows. Per-op series are
// pre-resolved into arrays indexed by op code: the hot paths never
// touch the registry's name→series map.
//
// Naming follows DESIGN.md §12: amo_netmem_<name>_<unit>, split into
// client_* (NetMem) and server_* (Server) families. Byte counters
// measure whole frames (length prefix and header included), so they
// reconcile against OS-level socket accounting.

// netmemOps enumerates the request op codes and their label values.
var netmemOps = [...]struct {
	op   byte
	name string
}{
	{opHello, "hello"}, {opAcquire, "acquire"}, {opRenew, "renew"},
	{opRelease, "release"}, {opRead, "read"}, {opWrite, "write"},
	{opReadRange, "read_range"}, {opFill, "fill"}, {opCAS, "cas"},
	{opSync, "sync"}, {opJournal, "journal"}, {opJournalBatch, "journal_batch"},
}

var (
	cliReqs       [opJournalBatch + 1]*obs.Counter
	cliRPC        [opJournalBatch + 1]*obs.Histogram
	cliBytesOut   *obs.Counter
	cliBytesIn    *obs.Counter
	cliReconnects *obs.Counter
	cliFatal      *obs.Counter
	cliFenced     *obs.Counter

	srvConns      *obs.Gauge
	srvReqs       [opJournalBatch + 1]*obs.Counter
	srvBytesIn    *obs.Counter
	srvBytesOut   *obs.Counter
	srvAcquires   *obs.Counter
	srvRenews     *obs.Counter
	srvFencedRejs *obs.Counter
)

func init() {
	r := obs.Default
	for _, o := range netmemOps {
		cliReqs[o.op] = r.Counter("amo_netmem_client_requests_total",
			"Requests queued on the client connection, by op (pipelined writes included).",
			"op", o.name)
		cliRPC[o.op] = r.Histogram("amo_netmem_client_rpc_seconds",
			"Round-trip latency of awaited client ops (send to matched reply), by op.",
			1e-9, "op", o.name)
		srvReqs[o.op] = r.Counter("amo_netmem_server_requests_total",
			"Requests handled by the register server, by op.", "op", o.name)
	}
	cliBytesOut = r.Counter("amo_netmem_client_bytes_sent_total",
		"Frame bytes written by the client, headers included.")
	cliBytesIn = r.Counter("amo_netmem_client_bytes_received_total",
		"Frame bytes read by the client, headers included.")
	cliReconnects = r.Counter("amo_netmem_client_reconnects_total",
		"Successful reconnect handshakes (lease revalidated, pipeline resent).")
	cliFatal = r.Counter("amo_netmem_client_fatal_total",
		"Clients declared dead: fenced, redial budget exhausted, or protocol corruption.")
	cliFenced = r.Counter("amo_netmem_client_fenced_total",
		"Client deaths caused specifically by lease fencing (a newer writer took over).")
	srvConns = r.Gauge("amo_netmem_server_connections",
		"Client connections currently served.")
	srvBytesIn = r.Counter("amo_netmem_server_bytes_received_total",
		"Frame bytes read by the server, headers included.")
	srvBytesOut = r.Counter("amo_netmem_server_bytes_sent_total",
		"Frame bytes written by the server, headers included.")
	srvAcquires = r.Counter("amo_netmem_server_lease_acquires_total",
		"Writer-lease grants (each bumps a namespace epoch).")
	srvRenews = r.Counter("amo_netmem_server_lease_renews_total",
		"Successful lease renewals.")
	srvFencedRejs = r.Counter("amo_netmem_server_fenced_rejections_total",
		"Requests rejected with a fencing error (stale epoch after a successor's grant).")
}

// frameBytes is the on-wire size of a frame with the given payload.
func frameBytes(payloadLen int) uint64 { return uint64(4 + frameOverhead + payloadLen) }

// obsClientQueued accounts one request queued on the client connection.
func obsClientQueued(op byte, payloadLen int) {
	cliReqs[op].Inc()
	cliBytesOut.Add(frameBytes(payloadLen))
}

// obsClientRPC records one awaited op's round trip.
func obsClientRPC(op byte, d time.Duration) {
	if d < 0 {
		d = 0
	}
	cliRPC[op].Observe(uint64(d))
}

// obsServerReq accounts one inbound request frame on the server.
func obsServerReq(op byte, payloadLen int) {
	srvBytesIn.Add(frameBytes(payloadLen))
	if int(op) < len(srvReqs) && srvReqs[op] != nil {
		srvReqs[op].Inc()
	}
}
