package netmem

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// collectFatal returns Options hooks that record a fatal error instead
// of panicking.
func collectFatal(dst *atomic.Value) func(error) {
	return func(err error) {
		dst.CompareAndSwap(nil, error(err))
	}
}

// TestLeaseFencing is the arbitration story end to end inside one
// process: writer 1 holds the lease, a fail-fast contender bounces, the
// lease expires once writer 1 stops renewing (a stalled process), a
// waiting successor is granted the next epoch and sees writer 1's
// registers — and writer 1's subsequent writes are fenced and do not
// land.
func TestLeaseFencing(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	var fatal1 atomic.Value
	c1, err := Open(addr, 64, Options{
		Namespace: ns,
		LeaseTTL:  400 * time.Millisecond,
		OnFatal:   collectFatal(&fatal1),
	})
	if err != nil {
		t.Fatal(err)
	}
	e1 := c1.Epoch()
	if err := c1.WriteAcked(1, 42); err != nil {
		t.Fatal(err)
	}

	// A fail-fast contender loses immediately, with the sentinel.
	if _, err := Open(addr, 64, Options{Namespace: ns, FailFast: true}); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("fail-fast acquire against a held lease: %v, want ErrLeaseHeld", err)
	}

	// Writer 1 stalls (stops renewing); a waiting successor takes over
	// after expiry, at the next epoch, over the same registers.
	c1.stopRenew()
	start := time.Now()
	var fatal2 atomic.Value
	c2, err := Open(addr, 64, Options{
		Namespace: ns,
		LeaseTTL:  400 * time.Millisecond,
		OnFatal:   collectFatal(&fatal2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Fatalf("successor acquired in %s; it cannot have waited out the lease", waited)
	}
	if got := c2.Epoch(); got != e1+1 {
		t.Fatalf("successor epoch %d, want %d", got, e1+1)
	}
	if !c2.Reopened() {
		t.Fatal("successor did not see existing state")
	}
	if got := c2.Read(1); got != 42 {
		t.Fatalf("successor reads %d from cell 1, want 42", got)
	}

	// The stalled writer is fenced: its write is rejected and must not
	// reach the registers.
	err = c1.WriteAcked(2, 666)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale writer's WriteAcked: %v, want ErrFenced", err)
	}
	if got := c2.Read(2); got != 0 {
		t.Fatalf("fenced write landed: cell 2 = %d", got)
	}
	// The client declared itself dead: further operations fail without
	// touching the wire.
	if err := c1.Sync(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Sync on fenced client: %v, want ErrFenced", err)
	}
	c1.Close()
}

// TestFencedAsyncWriteTripsOnFatal: a pipelined (fire-and-forget) write
// that gets fenced has no caller to hand the error to — the client must
// route it through OnFatal on the next errorless operation.
func TestFencedAsyncWriteTripsOnFatal(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	var fatal1 atomic.Value
	c1, err := Open(addr, 64, Options{
		Namespace: ns,
		LeaseTTL:  300 * time.Millisecond,
		OnFatal:   collectFatal(&fatal1),
	})
	if err != nil {
		t.Fatal(err)
	}
	c1.stopRenew()
	c2, err := Open(addr, 64, Options{Namespace: ns, LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Async write from the fenced writer: the rejection arrives on the
	// ack path and poisons the client.
	c1.Write(3, 1)
	deadline := time.Now().Add(5 * time.Second)
	for fatal1.Load() == nil && time.Now().Before(deadline) {
		c1.Read(0) // errorless op: surfaces the stored fatal via OnFatal
		time.Sleep(10 * time.Millisecond)
	}
	err, _ = fatal1.Load().(error)
	if err == nil || !errors.Is(err, ErrFenced) {
		t.Fatalf("OnFatal got %v, want ErrFenced", err)
	}
	if got := c2.Read(3); got != 0 {
		t.Fatalf("fenced async write landed: cell 3 = %d", got)
	}
	c1.Close()
}

// TestReconnectFencedByTakeover: a writer that loses its connection
// AND its lease (a successor was granted it while the writer was away)
// must discover the fence during the reconnect handshake — the renew
// comes back fenced — and die via OnFatal instead of resuming, waiting
// forever, or bumping the epoch under the successor.
func TestReconnectFencedByTakeover(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	var fatal1 atomic.Value
	c1, err := Open(addr, 32, Options{
		Namespace: ns,
		LeaseTTL:  300 * time.Millisecond,
		OnFatal:   collectFatal(&fatal1),
	})
	if err != nil {
		t.Fatal(err)
	}
	c1.stopRenew()
	c2, err := Open(addr, 32, Options{Namespace: ns, LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Cut c1's connection out from under it: the reader breaks, the
	// redialer reconnects and renews epoch e1 — which c2's grant has
	// fenced.
	c1.mu.Lock()
	conn := c1.conn
	c1.mu.Unlock()
	conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for fatal1.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	err, _ = fatal1.Load().(error)
	if err == nil || !errors.Is(err, ErrFenced) {
		t.Fatalf("reconnect under a takeover: OnFatal got %v, want ErrFenced", err)
	}
	if got := c2.Read(0); got != 0 {
		t.Fatalf("registers disturbed by the fenced reconnect: cell 0 = %d", got)
	}
	c1.Close()
}

// TestDeadWaiterLeavesNoGhost: a contender that waits for the lease,
// times out and disconnects must not linger server-side — if it did, a
// later expiry of the incumbent's lease would grant a ghost writer,
// bump the epoch twice, and force the next real contender to wait out
// a dead holder's TTL.
func TestDeadWaiterLeavesNoGhost(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	var fatal1 atomic.Value
	c1, err := Open(addr, 16, Options{
		Namespace: ns,
		LeaseTTL:  600 * time.Millisecond,
		OnFatal:   collectFatal(&fatal1),
	})
	if err != nil {
		t.Fatal(err)
	}
	e1 := c1.Epoch()
	// An impatient contender: parks on the lease, gives up, disconnects.
	if _, err := Open(addr, 16, Options{
		Namespace:      ns,
		LeaseTTL:       600 * time.Millisecond,
		AcquireTimeout: 250 * time.Millisecond,
	}); err == nil {
		t.Fatal("impatient contender acquired a held lease")
	}
	// Now the incumbent stalls and its lease lapses. The next grant must
	// go to the next REAL contender at epoch e1+1; e1+2 would mean the
	// dead waiter's handler got a ghost grant in between.
	c1.stopRenew()
	c3, err := Open(addr, 16, Options{Namespace: ns, LeaseTTL: 600 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := c3.Epoch(); got != e1+1 {
		t.Fatalf("takeover epoch %d, want %d — a dead waiter was granted the lease as a ghost", got, e1+1)
	}
	c1.Close()
}

// TestReleaseOnCloseFreesLease: Close releases the lease, so the next
// writer acquires immediately instead of waiting out the TTL.
func TestReleaseOnCloseFreesLease(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	c1, err := Open(addr, 16, Options{Namespace: ns, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c2, err := Open(addr, 16, Options{Namespace: ns, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("acquire after release took %s; the lease was not freed", waited)
	}
}

// TestRenewKeepsLease: a live writer survives far past one TTL because
// the background renewal keeps extending the lease.
func TestRenewKeepsLease(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	c1, err := Open(addr, 16, Options{Namespace: ns, LeaseTTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	time.Sleep(700 * time.Millisecond) // several TTLs
	if err := c1.WriteAcked(0, 7); err != nil {
		t.Fatalf("live writer fenced after renewals: %v", err)
	}
	if _, err := Open(addr, 16, Options{Namespace: ns, FailFast: true}); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contender against a renewed lease: %v, want ErrLeaseHeld", err)
	}
}
