package netmem

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ChaosOptions shapes the faults a ChaosProxy injects.
type ChaosOptions struct {
	// Seed makes the fault schedule deterministic.
	Seed int64
	// Latency (plus a uniform [0,LatencyJitter) extra) is slept before
	// each forwarded chunk, per direction.
	Latency       time.Duration
	LatencyJitter time.Duration
	// DropEvery, when > 0, severs a connection pair after roughly that
	// many forwarded bytes (uniform in [DropEvery/2, 3·DropEvery/2)),
	// counted per direction.
	DropEvery int
	// PartialWrites makes each injected drop first forward a strict
	// prefix of the chunk in hand, so the victim sees a truncated frame
	// — the hardest cut for a framing layer — rather than a clean
	// boundary.
	PartialWrites bool
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// ChaosProxy is a wire-level fault injector: a TCP proxy in front of a
// register server that delays, truncates and severs traffic so tests
// can drive the client's reconnect-and-resume path without touching
// either endpoint. Faults are injected on the byte stream, below the
// protocol, which is exactly where real networks misbehave.
type ChaosProxy struct {
	target string
	opts   ChaosOptions
	ln     net.Listener

	mu     sync.Mutex
	rng    *rand.Rand
	pairs  map[*proxyPair]struct{}
	closed bool
	drops  int
	wg     sync.WaitGroup
}

type proxyPair struct {
	client, server net.Conn
	once           sync.Once
}

func (p *proxyPair) sever() {
	p.once.Do(func() {
		p.client.Close()
		p.server.Close()
	})
}

// NewChaosProxy listens on 127.0.0.1:0 and forwards to target with the
// configured faults. Close it to stop.
func NewChaosProxy(target string, opts ChaosOptions) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		target: target,
		opts:   opts,
		ln:     ln,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		pairs:  make(map[*proxyPair]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; point clients at it.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Drops returns the number of connection severs injected so far.
func (p *ChaosProxy) Drops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

// DropAll severs every live connection pair now (a test hook for
// forcing a reconnect at a chosen moment).
func (p *ChaosProxy) DropAll() {
	p.mu.Lock()
	pairs := make([]*proxyPair, 0, len(p.pairs))
	for pr := range p.pairs {
		pairs = append(pairs, pr)
	}
	p.drops += len(pairs)
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.sever()
	}
}

// Close stops the proxy and severs everything in flight.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropAll()
	p.wg.Wait()
	return nil
}

func (p *ChaosProxy) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// intn draws from the shared rng (guarded: pumps run concurrently).
func (p *ChaosProxy) intn(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		s, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			c.Close()
			continue
		}
		pair := &proxyPair{client: c, server: s}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			pair.sever()
			return
		}
		p.pairs[pair] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		go p.pump(pair, c, s, "c→s")
		go p.pump(pair, s, c, "s→c")
	}
}

// pump forwards src → dst, injecting latency and, when the direction's
// byte budget runs out, an optional partial write followed by a sever
// of the whole pair.
func (p *ChaosProxy) pump(pair *proxyPair, src, dst net.Conn, dir string) {
	defer p.wg.Done()
	defer func() {
		pair.sever()
		p.mu.Lock()
		delete(p.pairs, pair)
		p.mu.Unlock()
	}()
	budget := -1
	if p.opts.DropEvery > 0 {
		budget = p.opts.DropEvery/2 + p.intn(p.opts.DropEvery)
	}
	buf := make([]byte, 8<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.opts.Latency > 0 || p.opts.LatencyJitter > 0 {
				d := p.opts.Latency
				if p.opts.LatencyJitter > 0 {
					d += time.Duration(p.intn(int(p.opts.LatencyJitter)))
				}
				time.Sleep(d)
			}
			chunk := buf[:n]
			if budget >= 0 && n >= budget {
				// Fault point: forward a strict prefix (maybe empty),
				// then sever both directions mid-frame.
				cut := 0
				if p.opts.PartialWrites && n > 1 {
					cut = p.intn(n)
				}
				if cut > 0 {
					dst.Write(chunk[:cut])
				}
				p.mu.Lock()
				p.drops++
				p.mu.Unlock()
				p.logf("netmem: chaos drop (%s) after %d of %d bytes", dir, cut, n)
				return
			}
			if budget >= 0 {
				budget -= n
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				_ = err
			}
			return
		}
	}
}
