// Package netmem is the networked register service: it emulates the
// paper's shared memory — an array of atomic int64 read/write registers
// — over message passing, so dispatcher shards can live in different
// processes and on different machines while the algorithms above the
// shmem.Mem seam stay untouched. This is the classical shared-memory ⇄
// message-passing bridge (cf. Oh-RAM! and the ABD lineage), specialized
// to the single-writer topology the streaming dispatcher already has:
// one register set, one live writer, any number of observers.
//
// The package has three parts:
//
//   - Server: owns one membackend.Backend per namespace (atomic, durable
//     mmap — any registry spec) and serves cell reads, writes, range
//     reads, fills, CAS and Sync over a compact length-prefixed binary
//     protocol on TCP. Requests on a connection are processed strictly
//     in order, which is what makes client-side pipelining sound.
//   - NetMem: the client backend, registered in the membackend registry
//     as "net:HOST:PORT[/NAMESPACE][?options]". Writes are pipelined
//     (sent without waiting for the ack), reads and the capability ops
//     (WriteAcked, ReadRange, Fill, CompareAndSwap, Sync) wait for their
//     reply; a broken connection is redialed and every unacknowledged
//     operation is resent in order, so callers never observe the
//     reconnect. cmd/amo-regd is the server binary.
//   - Arbitration: the server grants a single writer lease per
//     namespace, identified by a monotonically increasing epoch. Every
//     mutating request carries the writer's epoch and is rejected with
//     ErrFenced once a newer writer has been granted the lease, so a
//     paused or partitioned dispatcher can never scribble on registers
//     its successor has taken over (the fencing-token discipline of the
//     leader-election literature; cf. the Omega failure-detector paper).
//
// See DESIGN.md §8 for the wire protocol, the lease state machine and
// the crash-window analysis of network writes.
package netmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format. Every message, both directions, is one frame:
//
//	uint32  length of the rest of the frame (op + seq + payload)
//	uint8   op code
//	uint32  seq — client-chosen; the server echoes it in the reply
//	...     op-specific payload
//
// All integers are little-endian; strings are uint16 length + bytes.
// The server replies to every request, in request order, on the same
// connection. Payloads must be consumed exactly: trailing bytes in a
// frame are a protocol error.
const (
	// Client → server.
	opHello     byte = 1  // ns string, size u64          → opHelloOK
	opAcquire   byte = 2  // clientID u64, ttlMs u64, wait u8 → opAcquireOK
	opRenew     byte = 3  // epoch u64                    → opAck
	opRelease   byte = 4  // epoch u64                    → opAck
	opRead      byte = 5  // addr u64                     → opValue
	opWrite     byte = 6  // epoch u64, addr u64, val i64 → opAck
	opReadRange byte = 7  // addr u64, count u32          → opValues
	opFill      byte = 8  // epoch u64, addr u64, count u32, val i64 → opAck
	opCAS       byte = 9  // epoch u64, addr u64, old i64, new i64   → opCASResult
	opSync      byte = 10 // (empty)                      → opAck
	opJournal   byte = 11 // epoch u64, addr u64, id u64  → opAck; a write that names its job
	// opJournalBatch is the vectored journal write: ids land in the
	// contiguous cells starting at addr (count implied by frame length).
	// The whole batch is admitted or fenced atomically — a stale epoch
	// rejects every cell, never a prefix — which is what lets the
	// group-commit dispatcher journal k claims in one round trip.
	opJournalBatch byte = 12 // epoch u64, addr u64, id u64 × count → opAck

	// Server → client.
	opAck       byte = 16 // (empty)
	opValue     byte = 17 // val i64
	opValues    byte = 18 // val i64 × count (count implied by frame length)
	opCASResult byte = 19 // swapped u8, prev i64
	opHelloOK   byte = 20 // reopened u8
	opAcquireOK byte = 21 // epoch u64, ttlMs u64 (effective, after clamping)
	opErr       byte = 31 // code u16, msg string
)

// Error codes carried by opErr frames.
const (
	codeProto        uint16 = 1 // malformed frame or op sequence
	codeBadNamespace uint16 = 2 // namespace name rejected
	codeNoNamespace  uint16 = 3 // data op before opHello
	codeBadAddr      uint16 = 4 // cell address or range out of bounds
	codeFenced       uint16 = 5 // stale epoch: a newer writer holds the lease
	codeLeaseHeld    uint16 = 6 // fail-fast acquire lost to a live lease
	codeBackend      uint16 = 7 // backend open/sync failure
	codeSizeMismatch uint16 = 8 // hello size differs from the open namespace
	codeClosed       uint16 = 9 // server shutting down
)

const (
	// maxFrame bounds a frame's self-declared length; anything larger is
	// treated as stream corruption, not an allocation request.
	maxFrame = 1 << 21
	// maxRange bounds the cells of one opReadRange, keeping reply frames
	// under maxFrame. Clients chunk larger ranges.
	maxRange = 1 << 16
	// maxCells bounds a namespace's register count (2^30 cells = 8 GiB —
	// a sanity bound against corrupt hellos, not a product limit).
	maxCells = 1 << 30
	// frameOverhead is op + seq.
	frameOverhead = 5
)

// writeFrame appends one frame to w. The caller flushes.
func writeFrame(w *bufio.Writer, op byte, seq uint32, payload []byte) error {
	var hdr [4 + frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameOverhead+len(payload)))
	hdr[4] = op
	binary.LittleEndian.PutUint32(hdr[5:], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it is big enough. It
// returns the (possibly grown) buffer for the next call; payload aliases
// it.
func readFrame(r *bufio.Reader, buf []byte) (op byte, seq uint32, payload, bufOut []byte, err error) {
	bufOut = buf
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < frameOverhead || n > maxFrame {
		err = fmt.Errorf("netmem: corrupt frame length %d", n)
		return
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
		bufOut = buf
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	op = buf[0]
	seq = binary.LittleEndian.Uint32(buf[1:5])
	payload = buf[frameOverhead:]
	return
}

// Payload append helpers.

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// decoder is a cursor over a frame payload. The first malformed read
// poisons it; done() reports that error, or complains about trailing
// bytes — a frame must be consumed exactly.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("netmem: truncated frame payload")
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// done returns the accumulated decode error, or a protocol error when
// payload bytes are left over.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("netmem: %d trailing bytes in frame payload", len(d.b))
	}
	return nil
}
