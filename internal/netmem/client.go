package netmem

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/obs/eventlog"
	"atmostonce/internal/shmem"
)

// Sentinel errors surfaced by the client.
var (
	// ErrFenced means a newer writer was granted the namespace lease and
	// the server is rejecting this client's writes. The client is dead:
	// continuing would violate the single-writer contract the dispatcher
	// journal depends on. The default OnFatal panics with this error —
	// deliberate process suicide, the fencing analogue of a crash.
	ErrFenced = errors.New("netmem: fenced: a newer writer holds the lease")
	// ErrLeaseHeld is returned by Open in fail-fast mode when another
	// writer holds the lease.
	ErrLeaseHeld = errors.New("netmem: lease held by another writer")
	// ErrClosed is returned by operations after Close.
	ErrClosed = errors.New("netmem: backend is closed")
)

// Options configures a NetMem client. The zero value is usable: 2s
// lease, waiting acquire, panic on fatal errors.
type Options struct {
	// Namespace selects the register set on the server (default
	// "default").
	Namespace string
	// LeaseTTL is the writer-lease duration requested from the server
	// (default 2s, clamped by the server). The client renews every
	// TTL/3.
	LeaseTTL time.Duration
	// FailFast makes Open return ErrLeaseHeld instead of waiting when
	// another writer holds the lease. The default (wait) is what a
	// standby dispatcher wants: block until the incumbent's lease
	// expires, then take over.
	FailFast bool
	// AcquireTimeout bounds how long a waiting Open may block on the
	// lease (0 = no bound).
	AcquireTimeout time.Duration
	// DialTimeout bounds each dial and the handshake replies (default
	// 5s).
	DialTimeout time.Duration
	// RedialAttempts is how many consecutive dial failures the
	// reconnect path tolerates before declaring the backend dead
	// (default 8); RedialBackoff is the initial pause between attempts,
	// doubled each time (default 25ms).
	RedialAttempts int
	RedialBackoff  time.Duration
	// OnFatal is invoked when the backend dies under an interface that
	// cannot return errors (Read/Write): fenced, lease lost during a
	// reconnect, redial budget exhausted. The default panics — for a
	// fenced dispatcher that is correct behavior: a zombie writer must
	// die, not compute on. Override it in tests or in callers with their
	// own shutdown path.
	OnFatal func(error)
	// Logf, when non-nil, receives reconnect and lease events.
	Logf func(format string, args ...any)
}

func (o *Options) normalize() {
	if o.Namespace == "" {
		o.Namespace = "default"
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 8
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 25 * time.Millisecond
	}
	if o.OnFatal == nil {
		o.OnFatal = func(err error) { panic(err) }
	}
}

// pendingOp is one request in flight: sent (or queued for resend), not
// yet acknowledged. The client keeps them FIFO; the server answers in
// order, so the front of the queue always matches the next reply.
type pendingOp struct {
	op    byte
	seq   uint32
	addr  int
	val   int64 // write/fill value, CAS new
	old   int64 // CAS old
	count int   // fill/range count
	vals  []int64
	ids   []uint64 // journal-batch job ids
	// done is non-nil for awaited ops; the reader goroutine fills res*
	// and closes it. Fire-and-forget writes leave it nil: their ack is
	// still consumed (and checked for errors) in order.
	done    chan struct{}
	err     error
	swapped bool
}

// NetMem is the remote register backend: shmem.Mem plus the membackend
// lifecycle and capabilities, over one TCP connection to a register
// server. Plain Writes are pipelined — sent without waiting for the
// acknowledgement, which the background reader consumes in order — so a
// burst of register traffic costs one round trip, not one per cell;
// Read, WriteAcked, ReadRange, Fill, CompareAndSwap and Sync wait for
// their reply. All methods are safe for concurrent use.
//
// A broken connection is redialed with backoff; the handshake
// revalidates the existing lease with a renew — the epoch does not move
// — and every unacknowledged operation is resent in order, so callers
// never observe the reconnect. A fenced renew means another writer was
// granted the lease while we were away: the registers are no longer
// ours to resume, and the client declares itself dead (OnFatal) instead
// of continuing.
type NetMem struct {
	addr     string
	size     int
	opts     Options
	clientID uint64

	mu          sync.Mutex
	cond        *sync.Cond // conn became usable, or outstanding drained
	conn        net.Conn
	bw          *bufio.Writer
	gen         uint64 // connection generation, so stale readers stand down
	seq         uint32
	epoch       uint64
	reopened    bool
	outstanding []*pendingOp
	fatal       error
	closed      bool
	redialing   bool
	renewStop   chan struct{}
	renewOnce   sync.Once
	scratch     []byte
}

// maxOutstanding bounds the pipelined requests in flight. The bound is
// what makes the pipeline deadlock-free: at 2048 small frames, neither
// direction's requests-plus-replies can fill both peers' socket and
// bufio buffers, so the server is always able to ingest what a sender
// flushes while the reader goroutine briefly holds the client lock.
const maxOutstanding = 2048

var (
	_ membackend.Backend            = (*NetMem)(nil)
	_ membackend.Reopener           = (*NetMem)(nil)
	_ membackend.AckedWriter        = (*NetMem)(nil)
	_ membackend.JournalWriter      = (*NetMem)(nil)
	_ membackend.BatchJournalWriter = (*NetMem)(nil)
	_ membackend.RangeReader        = (*NetMem)(nil)
	_ membackend.Filler             = (*NetMem)(nil)
	_ membackend.Swapper            = (*NetMem)(nil)
	_ shmem.Mem                     = (*NetMem)(nil)
)

// Open dials addr, attaches to (or creates) the namespace with size
// cells, and acquires the writer lease per the options.
func Open(addr string, size int, opts Options) (*NetMem, error) {
	if size <= 0 {
		return nil, fmt.Errorf("netmem: need a positive size, got %d", size)
	}
	opts.normalize()
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, fmt.Errorf("netmem: client id: %w", err)
	}
	m := &NetMem{
		addr:     addr,
		size:     size,
		opts:     opts,
		clientID: binary.LittleEndian.Uint64(idb[:]) | 1, // never 0
	}
	m.cond = sync.NewCond(&m.mu)
	m.renewStop = make(chan struct{})
	if err := m.connect(true); err != nil {
		return nil, err
	}
	eventlog.Logger().Info("netmem_client_connected",
		"addr", addr, "namespace", m.opts.Namespace, "epoch", m.Epoch(),
		"lease_ttl", m.opts.LeaseTTL, "reopened", m.Reopened())
	go m.renewLoop()
	return m, nil
}

func (m *NetMem) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// connect dials, handshakes and installs the connection. With first
// set it is Open's synchronous path: hello + lease acquire (which may
// wait out an incumbent). Otherwise it is one reconnect attempt: hello
// + a renew of the lease we already hold — the epoch does not move, so
// resent operations stay valid, and a fenced renew proves a successor
// took over while we were away (fatal). The dial and handshake run
// without the lock (they block); installation and the resend of
// outstanding ops happen under it.
func (m *NetMem) connect(first bool) error {
	conn, err := net.DialTimeout("tcp", m.addr, m.opts.DialTimeout)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	reopened, err := m.hello(conn, br, bw)
	if err != nil {
		conn.Close()
		return err
	}
	var epoch uint64
	if first {
		if epoch, err = m.acquireLease(conn, br, bw); err != nil {
			conn.Close()
			return err
		}
	} else {
		m.mu.Lock()
		epoch = m.epoch
		m.mu.Unlock()
		if err := m.renewOnConn(conn, br, bw, epoch); err != nil {
			conn.Close()
			if errors.Is(err, ErrFenced) {
				m.fatalize(err)
			}
			return err
		}
	}

	m.mu.Lock()
	if m.closed || m.fatal != nil {
		m.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	m.conn, m.bw = conn, bw
	m.gen++
	m.epoch = epoch
	if first {
		m.reopened = reopened
	}
	// Resend everything the old connection never acknowledged, in
	// order, re-stamped with the fresh epoch. Registers are absolute
	// stores and reads, so re-applying a prefix the server already
	// executed is harmless. A failure here un-installs the connection
	// and reports to the caller (Open fails; the redial loop retries).
	gen := m.gen
	resent := len(m.outstanding)
	resendErr := func() error {
		for _, op := range m.outstanding {
			op.seq = m.nextSeqLocked()
			if err := writeFrame(bw, op.op, op.seq, m.encodeLocked(op)); err != nil {
				return err
			}
		}
		if len(m.outstanding) > 0 {
			return bw.Flush()
		}
		return nil
	}()
	if resendErr != nil {
		m.conn, m.bw = nil, nil
		m.mu.Unlock()
		conn.Close()
		return resendErr
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if !first {
		cliReconnects.Inc()
		eventlog.Logger().Info("netmem_client_reconnected",
			"addr", m.addr, "epoch", epoch, "resent_ops", resent)
	}
	go m.readLoop(gen, br)
	return nil
}

// hello performs the namespace attach on a fresh connection,
// synchronously (no reader goroutine exists yet).
func (m *NetMem) hello(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) (reopened bool, err error) {
	conn.SetDeadline(time.Now().Add(m.opts.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	payload := appendU64(appendStr(nil, m.opts.Namespace), uint64(m.size))
	if err := writeFrame(bw, opHello, 0, payload); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	op, _, reply, _, err := readFrame(br, nil)
	if err != nil {
		return false, err
	}
	if op == opErr {
		return false, decodeErr(reply)
	}
	if op != opHelloOK {
		return false, fmt.Errorf("netmem: unexpected hello reply op %d", op)
	}
	d := decoder{b: reply}
	reopened = d.u8() != 0
	return reopened, d.done()
}

// renewOnConn revalidates the client's existing lease during a
// reconnect handshake, synchronously (no reader goroutine exists yet).
// The server replies immediately — a renew never parks — so the dial
// timeout bounds it.
func (m *NetMem) renewOnConn(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, epoch uint64) error {
	conn.SetDeadline(time.Now().Add(m.opts.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := writeFrame(bw, opRenew, 0, appendU64(nil, epoch)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	op, _, reply, _, err := readFrame(br, nil)
	if err != nil {
		return err
	}
	switch op {
	case opAck:
		return nil
	case opErr:
		return decodeErr(reply)
	default:
		return fmt.Errorf("netmem: unexpected renew reply op %d", op)
	}
}

// acquireLease asks for the writer lease on the first connection,
// honoring FailFast and AcquireTimeout. On the wait path the reply can
// take as long as the incumbent's remaining lease.
func (m *NetMem) acquireLease(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) (uint64, error) {
	wait := byte(1)
	if m.opts.FailFast {
		wait = 0
	}
	deadline := time.Time{}
	if m.opts.FailFast {
		deadline = time.Now().Add(m.opts.DialTimeout)
	} else if m.opts.AcquireTimeout > 0 {
		deadline = time.Now().Add(m.opts.AcquireTimeout)
	}
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	payload := appendU64(appendU64(nil, m.clientID), uint64(m.opts.LeaseTTL/time.Millisecond))
	payload = append(payload, wait)
	if err := writeFrame(bw, opAcquire, 0, payload); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	op, _, reply, _, err := readFrame(br, nil)
	if err != nil {
		return 0, err
	}
	if op == opErr {
		return 0, decodeErr(reply)
	}
	if op != opAcquireOK {
		return 0, fmt.Errorf("netmem: unexpected acquire reply op %d", op)
	}
	d := decoder{b: reply}
	epoch := d.u64()
	granted := time.Duration(d.u64()) * time.Millisecond
	if err := d.done(); err != nil {
		return 0, err
	}
	if granted > 0 && granted < m.opts.LeaseTTL {
		m.logf("netmem: server clamped lease ttl to %s", granted)
		m.opts.LeaseTTL = granted
	}
	return epoch, nil
}

// decodeErr turns an opErr payload into a Go error, mapping the fencing
// and lease codes onto their sentinels.
func decodeErr(payload []byte) error {
	d := decoder{b: payload}
	code := d.u16()
	msg := d.str()
	if d.done() != nil {
		return fmt.Errorf("netmem: malformed error frame")
	}
	switch code {
	case codeFenced:
		return fmt.Errorf("%w (%s)", ErrFenced, msg)
	case codeLeaseHeld:
		return fmt.Errorf("%w (%s)", ErrLeaseHeld, msg)
	default:
		return &wireError{code, msg}
	}
}

func (m *NetMem) nextSeqLocked() uint32 {
	m.seq++
	return m.seq
}

// encodeLocked builds op's payload into the shared scratch buffer,
// stamping mutating ops with the current epoch.
func (m *NetMem) encodeLocked(op *pendingOp) []byte {
	b := m.scratch[:0]
	switch op.op {
	case opRead:
		b = appendU64(b, uint64(op.addr))
	case opWrite:
		b = appendU64(b, m.epoch)
		b = appendU64(b, uint64(op.addr))
		b = appendI64(b, op.val)
	case opJournal:
		b = appendU64(b, m.epoch)
		b = appendU64(b, uint64(op.addr))
		b = appendU64(b, uint64(op.val)) // job id
	case opJournalBatch:
		b = appendU64(b, m.epoch)
		b = appendU64(b, uint64(op.addr))
		for _, id := range op.ids {
			b = appendU64(b, id)
		}
	case opReadRange:
		b = appendU64(b, uint64(op.addr))
		b = appendU32(b, uint32(op.count))
	case opFill:
		b = appendU64(b, m.epoch)
		b = appendU64(b, uint64(op.addr))
		b = appendU32(b, uint32(op.count))
		b = appendI64(b, op.val)
	case opCAS:
		b = appendU64(b, m.epoch)
		b = appendU64(b, uint64(op.addr))
		b = appendI64(b, op.old)
		b = appendI64(b, op.val)
	case opRenew, opRelease:
		b = appendU64(b, m.epoch)
	case opSync:
		// empty
	default:
		panic(fmt.Sprintf("netmem: encode of unexpected op %d", op.op))
	}
	m.scratch = b
	return b
}

// flushThreshold is the buffered-bytes point past which a pipelined
// write flushes eagerly instead of waiting for the next awaited op.
const flushThreshold = 32 << 10

// send queues op on the connection. Awaited ops (done != nil) flush and
// block until the reader delivers their reply; pipelined writes return
// after buffering. When the connection is down, send waits for the
// redialer rather than failing: reconnection is the client's job, not
// the caller's.
func (m *NetMem) send(op *pendingOp) error {
	var t0 time.Time
	if op.done != nil {
		t0 = time.Now()
	}
	m.mu.Lock()
	for {
		if m.fatal != nil {
			err := m.fatal
			m.mu.Unlock()
			return err
		}
		if m.closed {
			m.mu.Unlock()
			return ErrClosed
		}
		if m.conn != nil {
			if len(m.outstanding) < maxOutstanding {
				break
			}
			// Queue full: push the buffered tail out so its acks can
			// drain the queue while we wait.
			if err := m.bw.Flush(); err != nil {
				m.breakConnLocked(err)
				continue
			}
		}
		m.cond.Wait()
	}
	op.seq = m.nextSeqLocked()
	m.outstanding = append(m.outstanding, op)
	payload := m.encodeLocked(op)
	obsClientQueued(op.op, len(payload))
	if err := writeFrame(m.bw, op.op, op.seq, payload); err != nil {
		m.breakConnLocked(err)
	} else if op.done != nil || m.bw.Buffered() > flushThreshold {
		if err := m.bw.Flush(); err != nil {
			m.breakConnLocked(err)
		}
	}
	m.mu.Unlock()
	if op.done == nil {
		return nil
	}
	<-op.done
	obsClientRPC(op.op, time.Since(t0))
	return op.err
}

// readLoop consumes replies for one connection generation and matches
// them FIFO against the outstanding queue.
func (m *NetMem) readLoop(gen uint64, br *bufio.Reader) {
	var buf []byte
	for {
		op, seq, payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			m.breakConn(gen, err)
			return
		}
		cliBytesIn.Add(frameBytes(len(payload)))
		if fatal := m.deliver(gen, op, seq, payload); fatal != nil {
			m.fatalize(fatal)
			return
		}
		m.mu.Lock()
		stale := m.gen != gen
		m.mu.Unlock()
		if stale {
			return
		}
	}
}

// deliver matches one reply to the front of the outstanding queue. It
// returns a non-nil error only for fatal conditions (fencing, protocol
// corruption); per-op errors on awaited ops go to the waiter.
func (m *NetMem) deliver(gen uint64, op byte, seq uint32, payload []byte) error {
	m.mu.Lock()
	if m.gen != gen || m.closed {
		m.mu.Unlock()
		return nil
	}
	if len(m.outstanding) == 0 {
		m.mu.Unlock()
		return fmt.Errorf("netmem: reply op %d with nothing outstanding", op)
	}
	p := m.outstanding[0]
	if p.seq != seq {
		m.mu.Unlock()
		return fmt.Errorf("netmem: reply seq %d, expected %d", seq, p.seq)
	}
	m.outstanding = m.outstanding[1:]
	// Wake senders parked on the in-flight bound and Sync/Close waiters
	// watching for the queue to drain.
	m.cond.Broadcast()
	m.mu.Unlock()

	// fail delivers a fatal decode error to p's waiter (p is already off
	// the outstanding queue, so the fatalize that follows in readLoop
	// cannot wake it) and passes the error through.
	fail := func(err error) error {
		if p.done != nil {
			p.err = err
			close(p.done)
		}
		return err
	}
	var opErrv error
	if op == opErr {
		opErrv = decodeErr(payload)
	}
	switch {
	case opErrv != nil:
		// A failed pipelined write has no caller to inform, and a fenced
		// reply dooms the whole client either way. Poison the client
		// BEFORE waking the waiter, so no concurrent operation can slip
		// through between the waiter learning of the fence and the
		// client dying.
		fatal := errors.Is(opErrv, ErrFenced) || p.done == nil
		if fatal {
			m.fatalize(opErrv)
		}
		if p.done != nil {
			p.err = opErrv
			close(p.done)
		}
		if fatal {
			return opErrv
		}
		return nil
	case op == opAck:
		if p.done != nil {
			close(p.done)
		}
		return nil
	case op == opValue:
		d := decoder{b: payload}
		p.val = d.i64()
		if err := d.done(); err != nil {
			return fail(err)
		}
		if p.done != nil {
			close(p.done)
		}
		return nil
	case op == opValues:
		if len(payload)%8 != 0 || len(payload)/8 != p.count {
			return fail(fmt.Errorf("netmem: range reply holds %d bytes for %d cells", len(payload), p.count))
		}
		for i := 0; i < p.count; i++ {
			p.vals[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		if p.done != nil {
			close(p.done)
		}
		return nil
	case op == opCASResult:
		d := decoder{b: payload}
		p.swapped = d.u8() != 0
		p.val = d.i64()
		if err := d.done(); err != nil {
			return fail(err)
		}
		if p.done != nil {
			close(p.done)
		}
		return nil
	default:
		return fail(fmt.Errorf("netmem: unexpected reply op %d", op))
	}
}

// breakConn marks the generation's connection dead and kicks the
// redialer (reader-goroutine entry point).
func (m *NetMem) breakConn(gen uint64, err error) {
	m.mu.Lock()
	if m.gen != gen {
		m.mu.Unlock()
		return
	}
	m.breakConnLocked(err)
	m.mu.Unlock()
}

// breakConnLocked severs the current connection and starts the
// redialer unless one is already running or the client is done.
func (m *NetMem) breakConnLocked(err error) {
	if m.conn != nil {
		m.conn.Close()
		m.conn, m.bw = nil, nil
	}
	if m.closed || m.fatal != nil || m.redialing {
		return
	}
	m.redialing = true
	m.logf("netmem: connection lost (%v), redialing", err)
	eventlog.Logger().Warn("netmem_client_connection_lost",
		"addr", m.addr, "err", err, "outstanding", len(m.outstanding))
	go m.redial()
}

// redial runs the reconnect-and-resume loop with exponential backoff.
// Exhausting the budget is fatal: callers blocked in send are woken
// with the error.
func (m *NetMem) redial() {
	backoff := m.opts.RedialBackoff
	var lastErr error
	for attempt := 0; attempt < m.opts.RedialAttempts; attempt++ {
		m.mu.Lock()
		done := m.closed || m.fatal != nil
		m.mu.Unlock()
		if done {
			m.clearRedialing()
			return
		}
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		err := m.connect(false)
		if err == nil {
			m.clearRedialing()
			m.logf("netmem: reconnected to %s (epoch %d)", m.addr, m.Epoch())
			return
		}
		lastErr = err
		if errors.Is(err, ErrClosed) {
			m.clearRedialing()
			return
		}
		if errors.Is(err, ErrFenced) {
			// connect already fatalized; surface the death through
			// OnFatal too — an otherwise-idle client (no op in flight to
			// return the error to) must still die rather than linger.
			m.clearRedialing()
			m.fatalOut(err)
			return
		}
	}
	// Fatalize before clearing the flag, so clearRedialing's respawn
	// guard sees the death and does not start a pointless new redialer.
	err := fmt.Errorf("netmem: reconnect to %s failed after %d attempts: %w",
		m.addr, m.opts.RedialAttempts, lastErr)
	m.fatalize(err)
	m.clearRedialing()
	m.fatalOut(err)
}

func (m *NetMem) clearRedialing() {
	m.mu.Lock()
	m.redialing = false
	// A connection that died between our successful connect and this
	// point saw redialing still true and declined to start a new
	// redialer; that duty falls to us, or the client would park forever
	// with no connection, no redialer and no fatal error.
	if m.conn == nil && !m.closed && m.fatal == nil {
		m.redialing = true
		go m.redial()
	}
	m.mu.Unlock()
}

// fatalize kills the client: every outstanding and future operation
// fails with err. Interfaces that cannot return errors route through
// OnFatal at their next call.
func (m *NetMem) fatalize(err error) {
	m.mu.Lock()
	if m.fatal != nil || m.closed {
		m.mu.Unlock()
		return
	}
	m.fatal = err
	epoch := m.epoch
	fenced := errors.Is(err, ErrFenced)
	cliFatal.Inc()
	if fenced {
		cliFenced.Inc()
	}
	if m.conn != nil {
		m.conn.Close()
		m.conn, m.bw = nil, nil
	}
	out := m.outstanding
	m.outstanding = nil
	for _, p := range out {
		if p.done != nil {
			p.err = err
			close(p.done)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.logf("netmem: fatal: %v", err)
	// The client is dead; leave a forensic artifact. On a fence the
	// error text carries both epochs (ours and the lease's current one,
	// from the server's rejection), and the epoch attr names the lease
	// this client was writing under when it died.
	eventlog.CrashDump("netmem_client_fatal",
		"addr", m.addr, "epoch", epoch, "fenced", fenced, "err", err)
}

// fatalOut reports err through OnFatal for the error-less interface
// methods; ErrClosed is swallowed (post-Close access is undefined by
// contract, not a process-killing event).
func (m *NetMem) fatalOut(err error) {
	if err == nil || errors.Is(err, ErrClosed) {
		return
	}
	m.opts.OnFatal(err)
}

// renewLoop keeps the writer lease alive. A renew that fails fatally
// (fenced, redial exhausted) routes through OnFatal, so even a client
// that has gone quiet — no register traffic — learns of its death
// within a third of the lease.
func (m *NetMem) renewLoop() {
	t := time.NewTicker(m.opts.LeaseTTL / 3)
	defer t.Stop()
	for {
		select {
		case <-m.renewStop:
			return
		case <-t.C:
			op := &pendingOp{op: opRenew, done: make(chan struct{})}
			if err := m.send(op); err != nil {
				if !errors.Is(err, ErrClosed) {
					m.fatalOut(err)
				}
				return
			}
		}
	}
}

// Read implements shmem.Mem with one awaited round trip.
func (m *NetMem) Read(addr int) int64 {
	op := &pendingOp{op: opRead, addr: addr, done: make(chan struct{})}
	if err := m.send(op); err != nil {
		m.fatalOut(err)
		return 0
	}
	return op.val
}

// Write implements shmem.Mem as a pipelined write: it returns once the
// request is queued on the connection. The ack is consumed (and
// checked) in the background; ordering against every later operation on
// this client is preserved by the connection. Use WriteAcked when the
// write must be durable on the server before proceeding.
func (m *NetMem) Write(addr int, v int64) {
	op := &pendingOp{op: opWrite, addr: addr, val: v}
	if err := m.send(op); err != nil {
		m.fatalOut(err)
	}
}

// WriteAcked implements membackend.AckedWriter: it returns after the
// server has applied the write, which is the record-then-do ordering
// the dispatcher journal needs across process death.
func (m *NetMem) WriteAcked(addr int, v int64) error {
	op := &pendingOp{op: opWrite, addr: addr, val: v, done: make(chan struct{})}
	return m.send(op)
}

// JournalWrite implements membackend.JournalWriter: an acked write
// that names the job whose journal record the cell carries, so the
// server can trace the journal write under the job's global id. Same
// durability contract as WriteAcked.
func (m *NetMem) JournalWrite(addr int, id uint64) error {
	op := &pendingOp{op: opJournal, addr: addr, val: int64(id), done: make(chan struct{})}
	return m.send(op)
}

// JournalWriteBatch implements membackend.BatchJournalWriter: one
// awaited round trip journals the whole claim, which is the group
// commit that makes JournalBatch>1 pay — k journal records for one
// network RTT instead of k. The server applies the batch atomically
// with respect to fencing: a stale epoch rejects every cell, never a
// prefix. Batches beyond the protocol's per-op bound are chunked (each
// chunk then carries the atomicity guarantee individually — chunking at
// maxRange cells is far beyond any sane JournalBatch setting).
func (m *NetMem) JournalWriteBatch(addr int, ids []uint64) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > maxRange {
			n = maxRange
		}
		op := &pendingOp{op: opJournalBatch, addr: addr, ids: ids[:n], done: make(chan struct{})}
		if err := m.send(op); err != nil {
			return err
		}
		addr += n
		ids = ids[n:]
	}
	return nil
}

// ReadRange implements membackend.RangeReader, chunking to the
// protocol's per-op bound.
func (m *NetMem) ReadRange(addr int, dst []int64) error {
	for len(dst) > 0 {
		n := len(dst)
		if n > maxRange {
			n = maxRange
		}
		op := &pendingOp{op: opReadRange, addr: addr, count: n, vals: dst[:n], done: make(chan struct{})}
		if err := m.send(op); err != nil {
			return err
		}
		addr += n
		dst = dst[n:]
	}
	return nil
}

// Fill implements membackend.Filler with one awaited op.
func (m *NetMem) Fill(addr, n int, v int64) error {
	if n == 0 {
		return nil
	}
	op := &pendingOp{op: opFill, addr: addr, count: n, val: v, done: make(chan struct{})}
	return m.send(op)
}

// CompareAndSwap implements membackend.Swapper. Caveat: if the
// connection breaks between the server applying a CAS and the ack
// arriving, the resend re-applies it; unlike reads and absolute writes
// a CAS is not idempotent, so a retried success can report failure.
// The dispatcher never uses CAS; callers that do must tolerate that.
func (m *NetMem) CompareAndSwap(addr int, old, new int64) bool {
	op := &pendingOp{op: opCAS, addr: addr, old: old, val: new, done: make(chan struct{})}
	if err := m.send(op); err != nil {
		m.fatalOut(err)
		return false
	}
	return op.swapped
}

// Size implements shmem.Mem.
func (m *NetMem) Size() int { return m.size }

// Reopened implements membackend.Reopener: whether the namespace held
// register state before this client attached (a durable file reopened
// by the server, or an earlier client session on the same namespace).
func (m *NetMem) Reopened() bool { return m.reopened }

// Epoch returns the current writer-lease epoch (test and debug hook).
func (m *NetMem) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Sync implements membackend.Backend: it drains the pipeline (the
// server applies requests in order) and has the server flush the
// namespace backend to stable storage.
func (m *NetMem) Sync() error {
	op := &pendingOp{op: opSync, done: make(chan struct{})}
	return m.send(op)
}

// Close releases the lease, flushes pipelined writes and closes the
// connection. If the connection is down at Close (mid-redial),
// operations that were queued but never reached the server are
// discarded — Close then returns an error naming how many, rather than
// pretending the writes landed. Close is idempotent; operations after
// Close fail with ErrClosed (without invoking OnFatal).
func (m *NetMem) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.renewOnce.Do(func() { close(m.renewStop) })
	// Best-effort graceful goodbye: queue a release, flush, and DRAIN
	// the acks (bounded) before closing the socket. Closing with unread
	// acks in our receive queue would RST the connection, and a reset
	// can make the server discard frames it has not yet read — silently
	// un-doing the release and the final writes. The drain ends when the
	// release's ack arrives, proving the server applied everything.
	var discardErr error
	if m.fatal == nil && m.conn != nil {
		op := &pendingOp{op: opRelease}
		op.seq = m.nextSeqLocked()
		m.outstanding = append(m.outstanding, op)
		if writeFrame(m.bw, op.op, op.seq, m.encodeLocked(op)) == nil {
			if err := m.bw.Flush(); err != nil {
				discardErr = fmt.Errorf("netmem: close flush failed, up to %d operations may not have reached the server: %w",
					len(m.outstanding), err)
			} else {
				deadline := time.Now().Add(2 * time.Second)
				wake := time.AfterFunc(2*time.Second, func() {
					m.mu.Lock()
					m.cond.Broadcast()
					m.mu.Unlock()
				})
				for len(m.outstanding) > 0 && m.conn != nil && m.fatal == nil && time.Now().Before(deadline) {
					m.cond.Wait()
				}
				wake.Stop()
				if n := len(m.outstanding); n > 0 {
					discardErr = fmt.Errorf("netmem: close timed out with %d operations unacknowledged", n)
				}
			}
		}
	} else if m.fatal == nil && len(m.outstanding) > 0 {
		// Disconnected with queued operations: they never reached the
		// server and never will. (With fatal set, the operations were
		// already failed loudly via fatalize/OnFatal — no double report.)
		discardErr = fmt.Errorf("netmem: close while disconnected discarded %d unacknowledged operations", len(m.outstanding))
	}
	m.closed = true
	if m.conn != nil {
		m.conn.Close()
		m.conn, m.bw = nil, nil
	}
	out := m.outstanding
	m.outstanding = nil
	for _, p := range out {
		if p.done != nil {
			p.err = ErrClosed
			close(p.done)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	return discardErr
}

// stopRenew halts lease renewal without closing the client — a test
// hook to let a lease expire while the client lives (simulating a
// stalled writer).
func (m *NetMem) stopRenew() {
	m.renewOnce.Do(func() { close(m.renewStop) })
}

func init() {
	membackend.Register("net", func(arg string, size int) (membackend.Backend, error) {
		addr, opts, err := ParseSpec(arg)
		if err != nil {
			return nil, err
		}
		return Open(addr, size, opts)
	})
	// Teach membackend.WithSuffix (and hence ShardSpec) this kind's
	// grammar: the suffix lands on the namespace — never the port —
	// before any "?option" tail, defaulting the namespace first when the
	// spec names none.
	membackend.RegisterSuffixer("net", func(arg, suffix string) string {
		base, opts := arg, ""
		if i := strings.IndexByte(arg, '?'); i >= 0 {
			base, opts = arg[:i], arg[i:]
		}
		if strings.LastIndexByte(base, '/') < 0 {
			base += "/default"
		}
		return base + suffix + opts
	})
}

// ParseSpec parses the argument of a "net:" backend spec:
//
//	HOST:PORT[/NAMESPACE][?option=value&...]
//
// Options: ttl (lease duration, e.g. 750ms), acquire (wait | fail),
// acquiretimeout, dialtimeout, retries (redial attempts). Unknown
// options are rejected.
func ParseSpec(arg string) (addr string, opts Options, err error) {
	rest := arg
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		q := rest[i+1:]
		rest = rest[:i]
		vals, perr := url.ParseQuery(q)
		if perr != nil {
			return "", opts, fmt.Errorf("netmem: bad options in spec %q: %v", arg, perr)
		}
		for k, vs := range vals {
			v := vs[len(vs)-1]
			switch k {
			case "ttl":
				if opts.LeaseTTL, err = time.ParseDuration(v); err != nil || opts.LeaseTTL <= 0 {
					return "", opts, fmt.Errorf("netmem: bad ttl %q in spec %q (want a positive duration like 2s)", v, arg)
				}
			case "acquire":
				switch v {
				case "wait":
					opts.FailFast = false
				case "fail":
					opts.FailFast = true
				default:
					return "", opts, fmt.Errorf("netmem: bad acquire mode %q in spec %q (want wait or fail)", v, arg)
				}
			case "acquiretimeout":
				if opts.AcquireTimeout, err = time.ParseDuration(v); err != nil || opts.AcquireTimeout <= 0 {
					return "", opts, fmt.Errorf("netmem: bad acquiretimeout %q in spec %q", v, arg)
				}
			case "dialtimeout":
				if opts.DialTimeout, err = time.ParseDuration(v); err != nil || opts.DialTimeout <= 0 {
					return "", opts, fmt.Errorf("netmem: bad dialtimeout %q in spec %q", v, arg)
				}
			case "retries":
				if opts.RedialAttempts, err = strconv.Atoi(v); err != nil || opts.RedialAttempts <= 0 {
					return "", opts, fmt.Errorf("netmem: bad retries %q in spec %q (want a positive integer)", v, arg)
				}
			default:
				return "", opts, fmt.Errorf("netmem: unknown option %q in spec %q (have ttl, acquire, acquiretimeout, dialtimeout, retries)", k, arg)
			}
		}
	}
	// The namespace is everything after the last '/', so IPv6 hosts
	// ("[::1]:7878") and ports stay intact.
	addr = rest
	if i := strings.LastIndexByte(rest, '/'); i >= 0 {
		addr, opts.Namespace = rest[:i], rest[i+1:]
		if opts.Namespace == "" {
			return "", opts, fmt.Errorf("netmem: empty namespace in spec %q; drop the '/' for the default", arg)
		}
	}
	if addr == "" || !strings.Contains(addr, ":") {
		return "", opts, fmt.Errorf("netmem: spec %q needs HOST:PORT (e.g. %q)", arg, "net:127.0.0.1:7878/jobs")
	}
	return addr, opts, nil
}
