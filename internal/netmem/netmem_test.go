package netmem

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/membackend"
	"atmostonce/internal/memtest"
	"atmostonce/internal/shmem"
)

// testServerAddr returns the address of the register server under
// test: the external one named by AMO_REGD_ADDR (how CI points the
// suite at a live amo-regd process), or an in-process Server torn down
// with the test.
func testServerAddr(t *testing.T) string {
	t.Helper()
	if a := os.Getenv("AMO_REGD_ADDR"); a != "" {
		return a
	}
	srv := NewServer(ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

var nsSeq atomic.Uint64

// uniqueNS returns a namespace name no other test (or earlier run
// against a shared external server) has used.
func uniqueNS() string {
	return fmt.Sprintf("t%d-%d-%d", os.Getpid(), time.Now().UnixNano()&0xffffff, nsSeq.Add(1))
}

// TestNetMemSuite runs the full backend conformance battery against a
// live server through the registry spec path — the acceptance gate for
// the remote backend.
func TestNetMemSuite(t *testing.T) {
	addr := testServerAddr(t)
	var ns string
	open := func(t *testing.T, size int) shmem.Mem {
		b, err := membackend.Open(fmt.Sprintf("net:%s/%s", addr, ns), size)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			ns = uniqueNS()
			return open(t, size)
		},
		Reopen:  open,
		Release: func(t *testing.T, m shmem.Mem) { m.(membackend.Backend).Close() },
	})
}

// TestCountingNetSuite checks the wrapper composes over the remote
// backend ("counting:net:..."), capabilities included.
func TestCountingNetSuite(t *testing.T) {
	addr := testServerAddr(t)
	var ns string
	open := func(t *testing.T, size int) shmem.Mem {
		b, err := membackend.Open(fmt.Sprintf("counting:net:%s/%s", addr, ns), size)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	memtest.RunMemSuite(t, memtest.Factory{
		New: func(t *testing.T, size int) shmem.Mem {
			ns = uniqueNS()
			return open(t, size)
		},
		Reopen:  open,
		Release: func(t *testing.T, m shmem.Mem) { m.(membackend.Backend).Close() },
	})
}

// TestReopenedFlag pins the Reopener semantics across client sessions:
// a fresh namespace is not "reopened", the second session over it is.
func TestReopenedFlag(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	c1, err := Open(addr, 32, Options{Namespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Reopened() {
		t.Fatal("fresh namespace reported reopened")
	}
	if err := c1.WriteAcked(7, 1234); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(addr, 32, Options{Namespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Reopened() {
		t.Fatal("second session over the namespace not reported reopened")
	}
	if got := c2.Read(7); got != 1234 {
		t.Fatalf("cell 7 = %d across sessions, want 1234", got)
	}
}

// TestSizeMismatchRejected: a hello whose size disagrees with the open
// namespace must fail loudly, not silently alias cells.
func TestSizeMismatchRejected(t *testing.T) {
	addr := testServerAddr(t)
	ns := uniqueNS()
	c1, err := Open(addr, 64, Options{Namespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Open(addr, 128, Options{Namespace: ns, FailFast: true}); err == nil {
		t.Fatal("size mismatch accepted")
	} else if !strings.Contains(err.Error(), "cells") {
		t.Fatalf("size mismatch error does not explain itself: %v", err)
	}
}

// TestBadNamespaceRejected: names that could escape into backend paths
// are refused at hello.
func TestBadNamespaceRejected(t *testing.T) {
	addr := testServerAddr(t)
	for _, ns := range []string{"..", "a/b", "x y"} {
		if _, err := Open(addr, 8, Options{Namespace: ns, FailFast: true}); err == nil {
			t.Errorf("namespace %q accepted", ns)
		}
	}
}

// TestCorruptRangeFrames hand-crafts frames whose addr+count overflows
// uint64: the server must answer with a bounds error, not panic on a
// negative index (a single malformed client must never take down the
// register service).
func TestCorruptRangeFrames(t *testing.T) {
	srv := NewServer(ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	send := func(op byte, payload []byte) (reply byte, errCode uint16) {
		t.Helper()
		if err := writeFrame(bw, op, 1, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		rop, _, rp, _, err := readFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rop == opErr {
			d := decoder{b: rp}
			return rop, d.u16()
		}
		return rop, 0
	}

	if rop, _ := send(opHello, appendU64(appendStr(nil, "corrupt-test"), 32)); rop != opHelloOK {
		t.Fatalf("hello reply op %d", rop)
	}
	ep := uint64(0)
	if err := writeFrame(bw, opAcquire, 1, append(appendU64(appendU64(nil, 1), 1000), 1)); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	rop, _, rp, _, err := readFrame(br, nil)
	if err != nil || rop != opAcquireOK {
		t.Fatalf("acquire reply op %d err %v", rop, err)
	}
	d := decoder{b: rp}
	ep = d.u64()

	// ReadRange with addr+count wrapping to 0.
	huge := appendU32(appendU64(nil, ^uint64(0)), 1)
	if rop, code := send(opReadRange, huge); rop != opErr || code != codeBadAddr {
		t.Fatalf("overflowing readrange: op %d code %d, want opErr/badaddr", rop, code)
	}
	// Fill with the same wrap.
	fill := appendI64(appendU32(appendU64(appendU64(nil, ep), ^uint64(0)), 1), 7)
	if rop, code := send(opFill, fill); rop != opErr || code != codeBadAddr {
		t.Fatalf("overflowing fill: op %d code %d, want opErr/badaddr", rop, code)
	}
	// The connection (and server) survived: a normal op still works.
	if rop, _ := send(opRead, appendU64(nil, 3)); rop != opValue {
		t.Fatalf("read after corrupt frames: op %d", rop)
	}
}

// TestFrameRoundTrip is the wire-format unit test: frames survive the
// encoder/decoder pair, and payloads must be consumed exactly.
func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	bw := bufio.NewWriter(&b)
	payload := appendI64(appendU64(appendStr(nil, "ns"), 42), -7)
	if err := writeFrame(bw, opWrite, 9, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	op, seq, got, _, err := readFrame(bufio.NewReader(&b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if op != opWrite || seq != 9 {
		t.Fatalf("frame decoded as op %d seq %d", op, seq)
	}
	d := decoder{b: got}
	if s := d.str(); s != "ns" {
		t.Fatalf("str = %q", s)
	}
	if v := d.u64(); v != 42 {
		t.Fatalf("u64 = %d", v)
	}
	if v := d.i64(); v != -7 {
		t.Fatalf("i64 = %d", v)
	}
	if err := d.done(); err != nil {
		t.Fatal(err)
	}
	// Trailing bytes are a protocol error.
	d = decoder{b: got}
	d.str()
	if err := d.done(); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}
	// Truncation poisons the decoder instead of panicking.
	d = decoder{b: got[:1]}
	d.str()
	if err := d.done(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestParseNetSpec is the spec-option parser's table test.
func TestParseNetSpec(t *testing.T) {
	cases := []struct {
		arg        string
		addr, ns   string
		errPattern string
	}{
		{"127.0.0.1:7878", "127.0.0.1:7878", "", ""},
		{"127.0.0.1:7878/jobs", "127.0.0.1:7878", "jobs", ""},
		{"[::1]:7878/jobs.shard0", "[::1]:7878", "jobs.shard0", ""},
		{"h:1/ns?ttl=750ms&acquire=fail&retries=3", "h:1", "ns", ""},
		{"h:1/ns?acquire=wait", "h:1", "ns", ""},
		{"h:1/", "", "", "empty namespace"},
		{"", "", "", "HOST:PORT"},
		{"nohostport", "", "", "HOST:PORT"},
		{"h:1/ns?ttl=banana", "", "", "bad ttl"},
		{"h:1/ns?acquire=maybe", "", "", "bad acquire mode"},
		{"h:1/ns?retries=0", "", "", "bad retries"},
		{"h:1/ns?bogus=1", "", "", "unknown option"},
	}
	for _, c := range cases {
		addr, opts, err := ParseSpec(c.arg)
		if c.errPattern != "" {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error containing %q", c.arg, c.errPattern)
			} else if !strings.Contains(err.Error(), c.errPattern) {
				t.Errorf("ParseSpec(%q) error %q does not mention %q", c.arg, err, c.errPattern)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.arg, err)
			continue
		}
		if addr != c.addr || opts.Namespace != c.ns {
			t.Errorf("ParseSpec(%q) = addr %q ns %q, want %q %q", c.arg, addr, opts.Namespace, c.addr, c.ns)
		}
	}
	// Option values actually land.
	_, opts, err := ParseSpec("h:1/ns?ttl=750ms&acquire=fail&retries=3&dialtimeout=1s&acquiretimeout=2s")
	if err != nil {
		t.Fatal(err)
	}
	if opts.LeaseTTL != 750*time.Millisecond || !opts.FailFast || opts.RedialAttempts != 3 ||
		opts.DialTimeout != time.Second || opts.AcquireTimeout != 2*time.Second {
		t.Fatalf("options not applied: %+v", opts)
	}
}

// TestNetShardSpec pins the "net" suffix grammar this package registers
// with membackend: the shard suffix lands on the namespace — never the
// port — before any option tail, with the default namespace made
// explicit when the spec names none.
func TestNetShardSpec(t *testing.T) {
	cases := [][3]string{
		{"net:127.0.0.1:7878/jobs", "2", "net:127.0.0.1:7878/jobs.shard2"},
		{"net:127.0.0.1:7878/jobs?ttl=1s", "1", "net:127.0.0.1:7878/jobs.shard1?ttl=1s"},
		{"counting:net:h:1/ns", "0", "counting:net:h:1/ns.shard0"},
		{"net:127.0.0.1:7878", "0", "net:127.0.0.1:7878/default.shard0"},
		{"net:127.0.0.1:7878?ttl=1s", "3", "net:127.0.0.1:7878/default.shard3?ttl=1s"},
	}
	for _, c := range cases {
		shard := int(c[1][0] - '0')
		if got := membackend.ShardSpec(c[0], shard); got != c[2] {
			t.Errorf("ShardSpec(%q, %d) = %q, want %q", c[0], shard, got, c[2])
		}
	}
}

// TestPipelinedWritesOrdered: a burst of pipelined writes followed by a
// read observes every one of them (read-your-writes through the
// pipeline), and a range read agrees.
func TestPipelinedWritesOrdered(t *testing.T) {
	addr := testServerAddr(t)
	c, err := Open(addr, 1024, Options{Namespace: uniqueNS()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 1024; i++ {
		c.Write(i, int64(i)^0x5a5a)
	}
	if got := c.Read(1023); got != 1023^0x5a5a {
		t.Fatalf("read after pipelined burst = %d", got)
	}
	dst := make([]int64, 1024)
	if err := c.ReadRange(0, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != int64(i)^0x5a5a {
			t.Fatalf("cell %d = %d after burst", i, v)
		}
	}
}
