package netmem

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosServer starts an in-process server plus a ChaosProxy in front of
// it. Chaos tests always use the in-process server: the faults live in
// the proxy, and pointing them at a shared external server would leak
// severed leases into other tests' timing.
func chaosServer(t *testing.T, opts ChaosOptions) *ChaosProxy {
	t.Helper()
	srv := NewServer(ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p, err := NewChaosProxy(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestReconnectResume forces clean connection drops at chosen moments
// and checks the client resumes with nothing lost: pipelined writes
// that were never acknowledged are replayed, reads block through the
// redial instead of failing, and the reconnect handshake revalidates
// the lease by renewal — the fencing epoch must NOT move, or resent
// operations and the single-writer story would both be wrong.
func TestReconnectResume(t *testing.T) {
	proxy := chaosServer(t, ChaosOptions{Seed: 1})
	addr := proxy.Addr()
	var fatal atomic.Value
	c, err := Open(addr, 256, Options{
		Namespace:      uniqueNS(),
		LeaseTTL:       500 * time.Millisecond,
		RedialAttempts: 20,
		OnFatal:        collectFatal(&fatal),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e0 := c.Epoch()

	for i := 0; i < 256; i++ {
		c.Write(i, int64(i+1000))
	}
	proxy.DropAll() // writes may be unacked; they must be replayed
	for i := 0; i < 256; i++ {
		if got := c.Read(i); got != int64(i+1000) {
			t.Fatalf("cell %d = %d after drop, want %d", i, got, i+1000)
		}
	}
	proxy.DropAll()
	if err := c.WriteAcked(7, -7); err != nil {
		t.Fatalf("WriteAcked across a drop: %v", err)
	}
	if got := c.Read(7); got != -7 {
		t.Fatalf("cell 7 = %d, want -7", got)
	}
	if got := c.Epoch(); got != e0 {
		t.Fatalf("epoch moved across reconnects: %d, want %d (renew-based resume must not re-grant)", got, e0)
	}
	if err, _ := fatal.Load().(error); err != nil {
		t.Fatalf("client died during reconnect test: %v", err)
	}
	if proxy.Drops() < 2 {
		t.Fatalf("proxy injected %d drops, want ≥ 2", proxy.Drops())
	}
}

// TestCloseReportsDiscardedWrites: closing a client whose connection is
// down (mid-redial) with pipelined writes still queued must return an
// error naming the loss, not pretend the writes reached the server.
func TestCloseReportsDiscardedWrites(t *testing.T) {
	proxy := chaosServer(t, ChaosOptions{Seed: 9})
	var fatal atomic.Value
	c, err := Open(proxy.Addr(), 16, Options{
		Namespace:      uniqueNS(),
		RedialBackoff:  200 * time.Millisecond,
		RedialAttempts: 50,
		OnFatal:        collectFatal(&fatal),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Write(i, int64(i+1)) // pipelined; unflushed and unacknowledged
	}
	proxy.Close() // sever now and refuse every redial
	// Wait for the reader to notice the severed connection.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		down := c.conn == nil
		c.mu.Unlock()
		if down {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = c.Close()
	if err == nil || !strings.Contains(err.Error(), "discarded") {
		t.Fatalf("Close with queued writes and no connection returned %v, want a discard error", err)
	}
}

// TestChaosSoak runs a deterministic per-cell workload through a proxy
// that injects latency jitter, periodic severs and partial writes, then
// audits every cell. Read-your-writes must hold for each goroutine's
// own cells across however many reconnects the chaos causes. Short mode
// shrinks the clock, not the checks.
func TestChaosSoak(t *testing.T) {
	dur := 3 * time.Second
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	proxy := chaosServer(t, ChaosOptions{
		Seed:          42,
		LatencyJitter: 300 * time.Microsecond,
		DropEvery:     64 << 10,
		PartialWrites: true,
	})
	addr := proxy.Addr()
	const (
		workers     = 4
		cellsPerW   = 16
		cells       = workers * cellsPerW
		ackedEvery  = 16
		verifyEvery = 8
	)
	var fatal atomic.Value
	c, err := Open(addr, cells, Options{
		Namespace:      uniqueNS(),
		LeaseTTL:       400 * time.Millisecond,
		RedialAttempts: 100,
		RedialBackoff:  5 * time.Millisecond,
		OnFatal:        collectFatal(&fatal),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var iters atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * cellsPerW
			seq := int64(0)
			for time.Now().Before(deadline) && fatal.Load() == nil {
				seq++
				cell := base + int(seq)%cellsPerW
				val := int64(w+1)<<32 | seq
				if seq%ackedEvery == 0 {
					if err := c.WriteAcked(cell, val); err != nil {
						errs <- fmt.Errorf("worker %d: WriteAcked: %w", w, err)
						return
					}
				} else {
					c.Write(cell, val)
				}
				if seq%verifyEvery == 0 {
					if got := c.Read(cell); got != val {
						errs <- fmt.Errorf("worker %d: read-your-writes broken: cell %d = %#x, want %#x", w, cell, got, val)
						return
					}
				}
				iters.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err, _ := fatal.Load().(error); err != nil {
		t.Fatalf("client died during soak: %v", err)
	}

	// Final audit: stamp every cell with an acknowledged sentinel, then
	// range-read the whole register file back.
	for a := 0; a < cells; a++ {
		if err := c.WriteAcked(a, int64(a)+5_000_000); err != nil {
			t.Fatalf("final stamp of cell %d: %v", a, err)
		}
	}
	dst := make([]int64, cells)
	if err := c.ReadRange(0, dst); err != nil {
		t.Fatal(err)
	}
	for a, v := range dst {
		if v != int64(a)+5_000_000 {
			t.Fatalf("audit: cell %d = %d, want %d", a, v, int64(a)+5_000_000)
		}
	}
	t.Logf("soak: %d ops, %d injected drops, final epoch %d", iters.Load(), proxy.Drops(), c.Epoch())
	if !testing.Short() && proxy.Drops() == 0 {
		t.Fatal("soak ran with zero injected drops; chaos options are not biting")
	}
}
