package conc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"atmostonce/internal/core"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// RuntimeOptions configures a persistent KKβ execution pool.
type RuntimeOptions struct {
	// M is the number of worker goroutines (the algorithm's m processes).
	M int
	// Capacity is the largest round size the pool can execute: the done
	// matrix is laid out with Capacity columns per process and every round
	// must satisfy m ≤ k ≤ Capacity.
	Capacity int
	// Beta is KKβ's termination parameter (0 = m).
	Beta int
	// Jitter injects random runtime.Gosched calls into the worker loops to
	// diversify interleavings; Seed makes the injection deterministic per
	// worker.
	Jitter bool
	Seed   int64
	// Mem, when non-nil, supplies the register backend instead of a fresh
	// in-process AtomicMem — e.g. a durable membackend.MmapMem so register
	// state survives the process. It must hold at least
	// MemBase + Layout{M, RowLen: Capacity}.Padded().Size() cells (the
	// runtime uses the cache-line-padded layout), and the cells in
	// that window must read zero when the first round starts (a recovering
	// caller re-zeroes them). Reads and writes must be per-cell atomic and
	// safe for concurrent use.
	Mem shmem.Mem
	// MemBase offsets the runtime's register layout within Mem, so a
	// caller can co-locate its own durable state (journals, metadata) in
	// the same register file. Only meaningful with Mem.
	MemBase int
	// Flush, when non-nil, is invoked by each worker (1-based id) after
	// its step loop ends — normal termination AND injected crash alike —
	// and before the round settles, so per-worker work a payload deferred
	// (the dispatcher's group-commit journal claims) is completed inside
	// the round that produced it. It runs on the worker's goroutine; the
	// round is not considered settled until every worker's Flush returns.
	Flush func(worker int)
}

// RoundResult reports one executed round. The struct and its Unperformed
// slice are owned by the Runtime and reused: they are valid until the next
// RunRound call.
type RoundResult struct {
	// Performed is the number of distinct jobs executed this round.
	Performed int
	// Duplicates counts do events beyond the first per job; nonzero means
	// an at-most-once violation (always 0, Lemma 4.1).
	Duplicates int
	// Crashed is the number of workers that actually crashed this round
	// (counted at the stop action, not at spawn — a worker whose algorithm
	// terminates before reaching its crash step did not crash).
	Crashed int
	// Steps is the total number of actions taken by all workers.
	Steps uint64
	// Work is the total work in the paper's cost model.
	Work uint64
	// Unperformed lists the job ids (1..k) left undone, ascending: the
	// residue a round-based caller carries into its next round.
	Unperformed []int
}

// Runtime is a persistent worker pool executing plain KKβ rounds: m
// long-lived goroutines over one reusable register file — an in-process
// AtomicMem by default, or any shmem.Mem backend supplied via
// RuntimeOptions.Mem (see internal/membackend). Where
// Run spawns goroutines and allocates shared memory per call, a Runtime is
// built once and executes any number of rounds; between rounds it re-zeroes
// only the registers the previous round dirtied and resets the warm
// processes in place, so the steady-state round path performs no heap
// allocation. This is the substrate the streaming dispatcher
// (internal/dispatch) schedules its shards on.
//
// A Runtime is NOT safe for concurrent use: rounds are executed one at a
// time by a single orchestrating goroutine.
type Runtime struct {
	m      int
	cap    int
	jitter bool
	seed   int64
	flush  func(worker int)

	mem   shmem.Mem
	lay   core.Layout
	procs []*core.Proc
	logs  []*eventLog

	// Per-round inputs, written by RunRound before the workers are kicked
	// (the start-channel send publishes them).
	fn         func(worker, job int)
	crashAfter []uint64

	start   []chan struct{}
	wg      sync.WaitGroup
	steps   []uint64
	crashed atomic.Int64
	closed  bool

	round       uint64
	stamp       []uint64 // stamp[j] == round marks job j performed this round
	unperformed []int
	res         RoundResult
}

// NewRuntime builds the pool: layout, registers, m warm processes and m
// parked worker goroutines. Close releases the goroutines.
func NewRuntime(o RuntimeOptions) (*Runtime, error) {
	if o.M < 1 || o.Capacity < o.M {
		return nil, fmt.Errorf("%w: capacity=%d m=%d", errValidate, o.Capacity, o.M)
	}
	r := &Runtime{
		m:      o.M,
		cap:    o.Capacity,
		jitter: o.Jitter,
		seed:   o.Seed,
		flush:  o.Flush,
		// Padded: each worker's write-hot next cell gets its own cache
		// line, so neighboring workers (and neighboring shards sharing
		// one register file) stop false-sharing on the set_next path.
		lay:         core.Layout{Base: o.MemBase, M: o.M, RowLen: o.Capacity}.Padded(),
		steps:       make([]uint64, o.M),
		stamp:       make([]uint64, o.Capacity+1),
		unperformed: make([]int, 0, o.Capacity),
	}
	if o.Mem != nil {
		if o.MemBase < 0 {
			return nil, fmt.Errorf("%w: negative MemBase %d", errValidate, o.MemBase)
		}
		if need := o.MemBase + r.lay.Size(); o.Mem.Size() < need {
			return nil, fmt.Errorf("%w: backend holds %d cells, need %d (base %d + layout %d)",
				errValidate, o.Mem.Size(), need, o.MemBase, r.lay.Size())
		}
		r.mem = o.Mem
	} else {
		if o.MemBase != 0 {
			return nil, fmt.Errorf("%w: MemBase without Mem", errValidate)
		}
		r.mem = shmem.NewAtomic(r.lay.Size())
	}
	r.procs = make([]*core.Proc, o.M)
	r.logs = make([]*eventLog, o.M)
	r.start = make([]chan struct{}, o.M)
	for i := 0; i < o.M; i++ {
		r.logs[i] = &eventLog{pid: i + 1, events: make([]sim.Event, 0, o.Capacity)}
		pid := i + 1
		r.procs[i] = core.NewProc(core.ProcOptions{
			ID: pid, M: o.M, Beta: o.Beta, Layout: r.lay, Mem: r.mem,
			Universe: o.Capacity, Sink: r.logs[i],
			// The payload indirects through r.fn, set per round, so no
			// closure is built on the round path.
			DoFn: func(job int64) { r.invoke(pid, job) },
		})
		// Grow the set-node pools and log buffers to their worst case up
		// front: every later round reuses them and allocates nothing.
		r.procs[i].Prewarm(o.Capacity)
		r.start[i] = make(chan struct{}, 1)
		go r.workerLoop(i)
	}
	return r, nil
}

func (r *Runtime) invoke(pid int, job int64) {
	if r.fn != nil {
		r.fn(pid, int(job))
	}
}

// workerLoop is the persistent per-worker goroutine: park on the start
// channel, step the warm process to completion (or injected crash), report,
// park again.
func (r *Runtime) workerLoop(idx int) {
	p := r.procs[idx]
	var rng *rand.Rand
	if r.jitter {
		rng = rand.New(rand.NewSource(r.seed + int64(idx)))
	}
	for range r.start[idx] {
		var crashAt uint64
		if r.crashAfter != nil {
			crashAt = r.crashAfter[idx]
		}
		var steps uint64
		for p.Status() == sim.Running {
			if crashAt > 0 && steps >= crashAt {
				p.Crash()
				r.crashed.Add(1)
				break
			}
			p.Step()
			steps++
			if rng != nil && rng.Intn(8) == 0 {
				runtime.Gosched()
			}
		}
		r.steps[idx] = steps
		if r.flush != nil {
			// Even a crashed worker flushes: an injected crash stops the
			// ALGORITHM mid-round (the paper's model), not the process, and
			// jobs the worker already claimed are marked done in the round —
			// their deferred payloads must still run, or a live process
			// would report jobs performed whose payloads never executed.
			r.flush(idx + 1)
		}
		r.wg.Done()
	}
}

// M returns the number of workers.
func (r *Runtime) M() int { return r.m }

// Capacity returns the largest admissible round size.
func (r *Runtime) Capacity() int { return r.cap }

// RunRound executes one KKβ round over the dense job set [1..k]: it
// re-zeroes the dirty registers, resets the warm processes, kicks the
// parked workers and waits for the round to settle. fn, when non-nil, is
// the job payload (invoked at most once per job with the performing worker
// id). crashAfter, when non-nil, injects per-worker crashes exactly as
// Options.CrashAfter; crashed workers are revived on the next round.
//
// The returned RoundResult is reused across rounds — callers must consume
// it (in particular Unperformed) before calling RunRound again.
func (r *Runtime) RunRound(k int, fn func(worker, job int), crashAfter []uint64) (*RoundResult, error) {
	if r.closed {
		return nil, fmt.Errorf("%w: runtime is closed", errValidate)
	}
	if k < r.m || k > r.cap {
		return nil, fmt.Errorf("%w: round size %d outside [m=%d..capacity=%d]", errValidate, k, r.m, r.cap)
	}
	if crashAfter != nil {
		if len(crashAfter) != r.m {
			return nil, fmt.Errorf("%w: CrashAfter has %d entries for m=%d", errValidate, len(crashAfter), r.m)
		}
		alive := 0
		for _, c := range crashAfter {
			if c == 0 {
				alive++
			}
		}
		if alive == 0 {
			return nil, fmt.Errorf("%w: all processes crash (need f < m)", errValidate)
		}
	}

	r.prepare(k, fn, crashAfter)
	r.wg.Add(r.m)
	for _, ch := range r.start {
		ch <- struct{}{}
	}
	r.wg.Wait()
	return r.collect(k), nil
}

// prepare re-zeroes the registers dirtied by the previous round and resets
// processes and logs. It runs strictly between rounds (before the start
// send), so it may read process state freely.
func (r *Runtime) prepare(k int, fn func(worker, job int), crashAfter []uint64) {
	r.fn = fn
	r.crashAfter = crashAfter
	if r.round > 0 {
		for q := 1; q <= r.m; q++ {
			r.mem.Write(r.lay.NextAddr(q), 0)
			// Row q was written by process q at positions 1..pos-1.
			dirty := r.procs[q-1].PosOf(q) - 1
			for idx := 1; idx <= dirty; idx++ {
				r.mem.Write(r.lay.DoneAddr(q, idx), 0)
			}
		}
	}
	for i, p := range r.procs {
		p.Reset(k)
		r.logs[i].events = r.logs[i].events[:0]
	}
	r.crashed.Store(0)
}

// collect merges the per-worker logs into the reusable RoundResult.
func (r *Runtime) collect(k int) *RoundResult {
	r.round++
	epoch := r.round
	res := &r.res
	res.Performed, res.Duplicates = 0, 0
	res.Steps, res.Work = 0, 0
	for i, l := range r.logs {
		res.Steps += r.steps[i]
		res.Work += r.procs[i].Work()
		for _, e := range l.events {
			if r.stamp[e.Job] == epoch {
				res.Duplicates++
			} else {
				r.stamp[e.Job] = epoch
				res.Performed++
			}
		}
	}
	r.unperformed = r.unperformed[:0]
	for j := 1; j <= k; j++ {
		if r.stamp[j] != epoch {
			r.unperformed = append(r.unperformed, j)
		}
	}
	res.Unperformed = r.unperformed
	res.Crashed = int(r.crashed.Load())
	return res
}

// Events appends the last round's do events to dst, grouped by worker.
// Valid until the next RunRound call.
func (r *Runtime) Events(dst []sim.Event) []sim.Event {
	for _, l := range r.logs {
		dst = append(dst, l.events...)
	}
	return dst
}

// Close parks the pool permanently, releasing the worker goroutines. It
// must not be called concurrently with RunRound.
func (r *Runtime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, ch := range r.start {
		close(ch)
	}
}
