package conc

import (
	"sync/atomic"
	"testing"

	"atmostonce/internal/core"
	"atmostonce/internal/shmem"
)

// TestRuntimeRoundReuse drives many rounds of varying sizes through one
// pool and checks each round is an independent, correct KKβ execution.
func TestRuntimeRoundReuse(t *testing.T) {
	const m, capacity = 4, 500
	rt, err := NewRuntime(RuntimeOptions{M: m, Capacity: capacity, Jitter: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for round, k := range []int{capacity, 17, 250, m, capacity, 100} {
		var count atomic.Int64
		res, err := rt.RunRound(k, func(worker, job int) { count.Add(1) }, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Duplicates != 0 {
			t.Fatalf("round %d (k=%d): %d duplicates", round, k, res.Duplicates)
		}
		if lower := core.EffectivenessBound(k, m, 0); res.Performed < lower {
			t.Fatalf("round %d (k=%d): performed %d < bound %d", round, k, res.Performed, lower)
		}
		if res.Performed+len(res.Unperformed) != k {
			t.Fatalf("round %d (k=%d): performed %d + residue %d != k",
				round, k, res.Performed, len(res.Unperformed))
		}
		if int(count.Load()) != res.Performed {
			t.Fatalf("round %d: payload ran %d times, performed %d", round, count.Load(), res.Performed)
		}
	}
}

// TestRuntimeCrashRevival crashes workers in one round and checks they are
// revived — and that residue is reported — on the next.
func TestRuntimeCrashRevival(t *testing.T) {
	const m, k = 4, 300
	rt, err := NewRuntime(RuntimeOptions{M: m, Capacity: k, Jitter: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.RunRound(k, nil, []uint64{50, 80, 120, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 3 {
		t.Fatalf("crashed = %d, want 3", res.Crashed)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%d duplicates under crashes", res.Duplicates)
	}
	// Crash-free follow-up round: everyone revives and the full round
	// completes to the Theorem 4.4 bound.
	res, err = rt.RunRound(k, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 0 {
		t.Fatalf("revived round reports %d crashes", res.Crashed)
	}
	if lower := core.EffectivenessBound(k, m, 0); res.Performed < lower {
		t.Fatalf("revived round performed %d < bound %d", res.Performed, lower)
	}
}

// TestRuntimeSteadyStateAllocFree is the zero-allocation guard for the
// round hot path: after construction (which prewarms every pool), RunRound
// must not allocate at all.
func TestRuntimeSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI")
	}
	const m, k = 4, 512
	rt, err := NewRuntime(RuntimeOptions{M: m, Capacity: k})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var count atomic.Int64
	fn := func(worker, job int) { count.Add(1) }
	for i := 0; i < 3; i++ { // settle goroutine stacks and scheduler state
		if _, err := rt.RunRound(k, fn, nil); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := rt.RunRound(k, fn, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", avg)
	}
}

// TestRunCrashCountExcludesUnreachedCrashes is the regression test for the
// spawn-time crash accounting bug: a worker whose crash step lies beyond
// its execution must NOT be counted as crashed.
func TestRunCrashCountExcludesUnreachedCrashes(t *testing.T) {
	// Worker 2's crash point is astronomically far away; the run finishes
	// long before, so nobody actually crashes.
	res, err := Run(Options{N: 100, M: 2, CrashAfter: []uint64{0, 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 0 {
		t.Fatalf("Crashed = %d, want 0 (no worker reached its crash step)", res.Crashed)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%d duplicates", res.Duplicates)
	}
	// Iterative path shares the accounting fix.
	res, err = Run(Options{N: 500, M: 2, Iterative: true, CrashAfter: []uint64{0, 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 0 {
		t.Fatalf("iterative Crashed = %d, want 0", res.Crashed)
	}
}

// TestRuntimeRoundValidation covers the per-round argument checks.
func TestRuntimeRoundValidation(t *testing.T) {
	rt, err := NewRuntime(RuntimeOptions{M: 3, Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunRound(2, nil, nil); err == nil {
		t.Error("k < m accepted")
	}
	if _, err := rt.RunRound(11, nil, nil); err == nil {
		t.Error("k > capacity accepted")
	}
	if _, err := rt.RunRound(5, nil, []uint64{1}); err == nil {
		t.Error("short crash vector accepted")
	}
	if _, err := rt.RunRound(5, nil, []uint64{1, 1, 1}); err == nil {
		t.Error("all-crash vector accepted")
	}
	rt.Close()
	rt.Close() // idempotent
	if _, err := rt.RunRound(5, nil, nil); err == nil {
		t.Error("round on closed runtime accepted")
	}
	if _, err := NewRuntime(RuntimeOptions{M: 4, Capacity: 2}); err == nil {
		t.Error("capacity < m accepted")
	}
}

// TestRuntimeExternalMem runs the pool over a caller-supplied backend at
// a base offset and checks the rounds stay correct and confined to the
// layout window.
func TestRuntimeExternalMem(t *testing.T) {
	const m, k, base = 3, 64, 17
	// The runtime lays its registers out cache-line padded; size the
	// backend and place the sentinels against that layout.
	lay := core.Layout{Base: base, M: m, RowLen: k}.Padded()
	mem := shmem.NewAtomic(base + lay.Size() + 5)
	// Sentinels outside the runtime's window must never be touched.
	mem.Write(base-1, 123)
	mem.Write(base+lay.Size(), 456)
	rt, err := NewRuntime(RuntimeOptions{M: m, Capacity: k, Mem: mem, MemBase: base})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for round := 0; round < 4; round++ {
		res, err := rt.RunRound(k, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Duplicates != 0 {
			t.Fatalf("round %d: %d duplicates", round, res.Duplicates)
		}
		if lower := core.EffectivenessBound(k, m, 0); res.Performed < lower {
			t.Fatalf("round %d: performed %d < bound %d", round, res.Performed, lower)
		}
	}
	if v := mem.Read(base - 1); v != 123 {
		t.Fatalf("runtime wrote below its base: %d", v)
	}
	if v := mem.Read(base + lay.Size()); v != 456 {
		t.Fatalf("runtime wrote past its layout: %d", v)
	}

	// An undersized backend is rejected up front.
	if _, err := NewRuntime(RuntimeOptions{M: m, Capacity: k, Mem: shmem.NewAtomic(10), MemBase: base}); err == nil {
		t.Error("undersized backend accepted")
	}
	if _, err := NewRuntime(RuntimeOptions{M: m, Capacity: k, MemBase: base}); err == nil {
		t.Error("MemBase without Mem accepted")
	}
}

// Negative MemBase must fail at construction, not as a worker panic.
func TestRuntimeNegativeMemBase(t *testing.T) {
	if _, err := NewRuntime(RuntimeOptions{M: 2, Capacity: 8, Mem: shmem.NewAtomic(100), MemBase: -8}); err == nil {
		t.Fatal("negative MemBase accepted")
	}
}
