package conc

import (
	"sync/atomic"
	"testing"

	"atmostonce/internal/core"
)

func TestRunKKConcurrentAMO(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(Options{N: 2000, M: 8, Jitter: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Duplicates != 0 {
			t.Fatalf("seed %d: at-most-once violated under real concurrency (%d dups)", seed, res.Duplicates)
		}
		if lower := core.EffectivenessBound(2000, 8, 0); res.Distinct < lower {
			t.Fatalf("seed %d: Do = %d < %d", seed, res.Distinct, lower)
		}
		if res.Distinct > 2000 {
			t.Fatalf("seed %d: Do = %d > n", seed, res.Distinct)
		}
	}
}

func TestRunKKWithCrashes(t *testing.T) {
	// Processes 1..3 stop after a few hundred actions; 4 survives.
	crash := []uint64{200, 350, 500, 0}
	res, err := Run(Options{N: 1000, M: 4, CrashAfter: crash, Jitter: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 0 {
		t.Fatalf("AMO violated with crashes (%d dups)", res.Duplicates)
	}
	if res.Crashed != 3 {
		t.Fatalf("crashed = %d, want 3", res.Crashed)
	}
	if lower := core.EffectivenessBound(1000, 4, 0); res.Distinct < lower {
		t.Fatalf("Do = %d < %d", res.Distinct, lower)
	}
}

func TestRunPayloadExecutedAtMostOnce(t *testing.T) {
	const n = 1500
	counters := make([]atomic.Int32, n+1)
	res, err := Run(Options{
		N: n, M: 6, Jitter: true, Seed: 3,
		DoFn: func(pid int, job int64) { counters[job].Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	for j := 1; j <= n; j++ {
		switch counters[j].Load() {
		case 0:
		case 1:
			executed++
		default:
			t.Fatalf("job %d payload ran %d times", j, counters[j].Load())
		}
	}
	if executed != res.Distinct {
		t.Fatalf("payload executions %d != distinct %d", executed, res.Distinct)
	}
}

func TestRunIterativeConcurrent(t *testing.T) {
	res, err := Run(Options{N: 3000, M: 4, Iterative: true, EpsDenom: 1, Jitter: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 0 {
		t.Fatalf("iterative AMO violated (%d dups)", res.Duplicates)
	}
	if res.Distinct == 0 || res.Distinct > 3000 {
		t.Fatalf("Distinct = %d out of range", res.Distinct)
	}
}

func TestRunWriteAllConcurrent(t *testing.T) {
	const n = 2000
	var written [n + 1]atomic.Bool
	res, err := Run(Options{
		N: n, M: 4, WriteAll: true, Jitter: true, Seed: 11,
		DoFn: func(pid int, job int64) { written[job].Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		if !written[j].Load() {
			t.Fatalf("cell %d never written", j)
		}
	}
	if res.Distinct != n {
		t.Fatalf("Distinct = %d, want n", res.Distinct)
	}
}

func TestRunWriteAllWithCrashes(t *testing.T) {
	const n = 1200
	crash := []uint64{150, 0, 300, 0}
	res, err := Run(Options{N: n, M: 4, WriteAll: true, CrashAfter: crash, Jitter: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct != n {
		t.Fatalf("coverage %d of %d after crashes", res.Distinct, n)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{N: 2, M: 4}); err == nil {
		t.Error("n<m accepted")
	}
	if _, err := Run(Options{N: 10, M: 2, CrashAfter: []uint64{1}}); err == nil {
		t.Error("short CrashAfter accepted")
	}
	if _, err := Run(Options{N: 10, M: 2, CrashAfter: []uint64{1, 1}}); err == nil {
		t.Error("all-crash accepted")
	}
}
