// Package conc runs the paper's algorithms under true concurrency: one
// goroutine per process over sync/atomic registers, with no locks or
// read-modify-write operations on the algorithm path. Because every Step
// of a core.Proc performs at most one shared register access, the
// goroutine executions are exactly the linearizable executions of the
// paper's model (§2.1), now scheduled by the Go runtime and the hardware
// instead of a simulated adversary.
//
// The runtime validates the at-most-once property post-hoc from
// per-process event logs and supports deterministic crash injection
// (a goroutine stops stepping after a configured number of actions).
package conc

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"atmostonce/internal/core"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// Options configures a concurrent run.
type Options struct {
	// N is the number of jobs, M the number of processes (goroutines).
	N, M int
	// Beta is KKβ's termination parameter (0 = m).
	Beta int
	// Iterative selects IterativeKK(ε) instead of plain KKβ.
	Iterative bool
	// EpsDenom is 1/ε for the iterative algorithm (0 = 1).
	EpsDenom int
	// WriteAll selects WA_IterativeKK(ε) (implies Iterative).
	WriteAll bool
	// CrashAfter, when non-nil, gives per-process step counts after which
	// the goroutine stops stepping (simulated crash). 0 = never. At least
	// one process must never crash.
	CrashAfter []uint64
	// Jitter injects random runtime.Gosched calls to diversify
	// interleavings; Seed makes the injection deterministic per process.
	Jitter bool
	Seed   int64
	// DoFn, when non-nil, is the job payload, invoked once per performed
	// job with the performing process id.
	DoFn func(pid int, job int64)
}

// Result summarizes a concurrent run.
type Result struct {
	// Events holds every do event, grouped by process.
	Events []sim.Event
	// Distinct is the number of distinct jobs performed.
	Distinct int
	// Duplicates counts do events beyond the first per job; nonzero means
	// an at-most-once violation.
	Duplicates int
	// Crashed is the number of processes that crashed.
	Crashed int
	// Steps is the total number of actions taken by all goroutines.
	Steps uint64
}

// errValidate gathers option errors.
var errValidate = errors.New("conc: invalid options")

func (o *Options) normalize() error {
	if o.M < 1 || o.N < o.M {
		return fmt.Errorf("%w: n=%d m=%d", errValidate, o.N, o.M)
	}
	if o.CrashAfter != nil && len(o.CrashAfter) != o.M {
		return fmt.Errorf("%w: CrashAfter has %d entries for m=%d", errValidate, len(o.CrashAfter), o.M)
	}
	if o.CrashAfter != nil {
		alive := 0
		for _, c := range o.CrashAfter {
			if c == 0 {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("%w: all processes crash (need f < m)", errValidate)
		}
	}
	if o.WriteAll {
		o.Iterative = true
	}
	if o.EpsDenom <= 0 {
		o.EpsDenom = 1
	}
	return nil
}

// eventLog is a per-goroutine DoSink; no synchronization needed because
// each process owns its log.
type eventLog struct {
	pid    int
	events []sim.Event
}

func (l *eventLog) RecordDo(pid int, job int64) {
	l.events = append(l.events, sim.Event{PID: pid, Job: job})
}

// Run executes the configured algorithm concurrently and returns the
// merged, validated result. Plain KKβ runs execute as a single round on a
// throwaway Runtime pool; the iterative variants spawn their level-chain
// processes directly (IterProc chains are not reusable).
func Run(o Options) (*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if o.Iterative {
		return runIterative(o)
	}
	rt, err := NewRuntime(RuntimeOptions{
		M: o.M, Capacity: o.N, Beta: o.Beta, Jitter: o.Jitter, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	var fn func(worker, job int)
	if o.DoFn != nil {
		do := o.DoFn
		fn = func(worker, job int) { do(worker, int64(job)) }
	}
	rr, err := rt.RunRound(o.N, fn, o.CrashAfter)
	if err != nil {
		return nil, err
	}
	return &Result{
		Events:     rt.Events(nil),
		Distinct:   rr.Performed,
		Duplicates: rr.Duplicates,
		Crashed:    rr.Crashed,
		Steps:      rr.Steps,
	}, nil
}

// runIterative executes IterativeKK(ε) / WA_IterativeKK(ε): one goroutine
// per level-chain process over a fresh register file.
func runIterative(o Options) (*Result, error) {
	procs, logs, err := buildIterProcs(o)
	if err != nil {
		return nil, err
	}
	var (
		wg      sync.WaitGroup
		steps   = make([]uint64, o.M)
		crashed atomic.Int64
	)
	for i := 0; i < o.M; i++ {
		var crashAt uint64
		if o.CrashAfter != nil {
			crashAt = o.CrashAfter[i]
		}
		wg.Add(1)
		go func(idx int, p sim.Process, crashAt uint64) {
			defer wg.Done()
			var rng *rand.Rand
			if o.Jitter {
				rng = rand.New(rand.NewSource(o.Seed + int64(idx)))
			}
			for p.Status() == sim.Running {
				if crashAt > 0 && steps[idx] >= crashAt {
					// Count crashes as they are delivered: a process that
					// terminates before reaching its crash step did not
					// crash.
					p.Crash()
					crashed.Add(1)
					return
				}
				p.Step()
				steps[idx]++
				if rng != nil && rng.Intn(8) == 0 {
					runtime.Gosched()
				}
			}
		}(i, procs[i], crashAt)
	}
	wg.Wait()

	res := &Result{Crashed: int(crashed.Load())}
	seen := make(map[int64]int, o.N)
	for i, l := range logs {
		res.Events = append(res.Events, l.events...)
		res.Steps += steps[i]
		for _, e := range l.events {
			seen[e.Job]++
			if seen[e.Job] > 1 {
				res.Duplicates++
			}
		}
	}
	res.Distinct = len(seen)
	return res, nil
}

func buildIterProcs(o Options) ([]sim.Process, []*eventLog, error) {
	procs := make([]sim.Process, o.M)
	logs := make([]*eventLog, o.M)
	cfg := core.IterConfig{N: o.N, M: o.M, EpsDenom: o.EpsDenom, WriteAll: o.WriteAll, Beta: o.Beta}
	cfg, levels, size, err := core.PlanLevels(cfg)
	if err != nil {
		return nil, nil, err
	}
	iters := core.NewIterProcsOn(cfg, levels, shmem.NewAtomic(size))
	for i, ip := range iters {
		logs[i] = &eventLog{pid: i + 1}
		ip.SetSink(logs[i])
		if o.DoFn != nil {
			pid := i + 1
			fn := o.DoFn
			ip.SetDoFn(func(job int64) { fn(pid, job) })
		}
		procs[i] = ip
	}
	return procs, logs, nil
}
