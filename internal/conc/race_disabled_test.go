//go:build !race

package conc

const raceEnabled = false
