package denseset

import (
	"math/rand"
	"testing"

	"atmostonce/internal/oset"
)

func TestBasicOps(t *testing.T) {
	s := New()
	if s.Len() != 0 || s.Contains(0) || s.Contains(5) {
		t.Fatal("zero value not empty")
	}
	if !s.Insert(5) || s.Insert(5) {
		t.Fatal("Insert absent/present misreported")
	}
	if !s.Contains(5) || s.Contains(4) || s.Len() != 1 {
		t.Fatal("Contains/Len wrong after insert")
	}
	if !s.Delete(5) || s.Delete(5) || s.Delete(1000) {
		t.Fatal("Delete present/absent misreported")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestResetRange(t *testing.T) {
	s := New()
	for _, tc := range []struct{ lo, hi int }{
		{1, 1}, {1, 64}, {1, 65}, {63, 65}, {0, 200}, {128, 128}, {5, 4},
	} {
		s.ResetRange(tc.lo, tc.hi)
		want := tc.hi - tc.lo + 1
		if want < 0 {
			want = 0
		}
		if s.Len() != want {
			t.Fatalf("ResetRange(%d,%d): Len=%d want %d", tc.lo, tc.hi, s.Len(), want)
		}
		for v := 0; v <= tc.hi+64; v++ {
			if got, want := s.Contains(v), v >= tc.lo && v <= tc.hi; got != want {
				t.Fatalf("ResetRange(%d,%d): Contains(%d)=%v", tc.lo, tc.hi, v, got)
			}
		}
	}
}

func TestSelectRankMinMax(t *testing.T) {
	s := NewRange(10, 200)
	if v, ok := s.Min(); !ok || v != 10 {
		t.Fatalf("Min=%d,%v", v, ok)
	}
	if v, ok := s.Max(); !ok || v != 200 {
		t.Fatalf("Max=%d,%v", v, ok)
	}
	for i := 1; i <= s.Len(); i++ {
		if v, ok := s.Select(i); !ok || v != 9+i {
			t.Fatalf("Select(%d)=%d,%v", i, v, ok)
		}
	}
	if _, ok := s.Select(0); ok {
		t.Fatal("Select(0) ok")
	}
	if _, ok := s.Select(s.Len() + 1); ok {
		t.Fatal("Select(len+1) ok")
	}
	if r := s.Rank(9); r != 0 {
		t.Fatalf("Rank(9)=%d", r)
	}
	if r := s.Rank(200); r != 191 {
		t.Fatalf("Rank(200)=%d", r)
	}
	if r := s.Rank(100000); r != 191 {
		t.Fatalf("Rank(high)=%d", r)
	}
}

// TestAgainstOset drives random mutations through a dense set and the
// red-black reference in lockstep and compares every query, including
// the rank(SET1, SET2, i) operation.
func TestAgainstOset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const universe = 700
	d, ref := New(), oset.New()
	excl, refExcl := New(), oset.New()
	for step := 0; step < 20000; step++ {
		v := rng.Intn(universe)
		switch rng.Intn(6) {
		case 0, 1:
			if d.Insert(v) != ref.Insert(v) {
				t.Fatalf("step %d: Insert(%d) disagrees", step, v)
			}
		case 2:
			if d.Delete(v) != ref.Delete(v) {
				t.Fatalf("step %d: Delete(%d) disagrees", step, v)
			}
		case 3:
			if d.Insert(v) != ref.Insert(v) {
				t.Fatalf("step %d: Insert(%d) disagrees", step, v)
			}
			excl.Insert(v)
			refExcl.Insert(v)
		case 4:
			excl.Delete(v)
			refExcl.Delete(v)
		case 5:
			if step%500 == 0 {
				lo, hi := rng.Intn(universe), rng.Intn(universe)
				d.ResetRange(lo, hi)
				ref.ResetRange(lo, hi)
			}
		}
		if d.Len() != ref.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, d.Len(), ref.Len())
		}
		if d.Contains(v) != ref.Contains(v) {
			t.Fatalf("step %d: Contains(%d) disagrees", step, v)
		}
		if step%100 == 0 {
			i := rng.Intn(universe) + 1
			dv, dok := d.Select(i)
			rv, rok := ref.Select(i)
			if dv != rv || dok != rok {
				t.Fatalf("step %d: Select(%d) = %d,%v vs %d,%v", step, i, dv, dok, rv, rok)
			}
			dv, dok = d.SelectExcluding(excl, i)
			rv, rok = ref.SelectExcluding(refExcl, i)
			if dv != rv || dok != rok {
				t.Fatalf("step %d: SelectExcluding(%d) = %d,%v vs %d,%v", step, i, dv, dok, rv, rok)
			}
			if d.Rank(v) != ref.Rank(v) {
				t.Fatalf("step %d: Rank(%d) disagrees", step, v)
			}
			got, want := d.Slice(), ref.Slice()
			if len(got) != len(want) {
				t.Fatalf("step %d: Slice lengths %d vs %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Slice[%d] %d vs %d", step, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewRange(1, 100)
	c := s.Clone()
	s.Delete(50)
	if !c.Contains(50) || c.Len() != 100 {
		t.Fatal("Clone shares storage")
	}
	c.Insert(200)
	if s.Contains(200) {
		t.Fatal("Clone mutation leaked back")
	}
}

// TestSteadyStateAllocs is the property the round loop builds on: after
// Reserve, a fill/drain cycle at a fixed universe allocates nothing.
func TestSteadyStateAllocs(t *testing.T) {
	s := New()
	excl := New()
	s.Reserve(1024)
	excl.Reserve(1024)
	allocs := testing.AllocsPerRun(100, func() {
		s.ResetRange(1, 1024)
		excl.Clear()
		for v := 1; v <= 1024; v += 7 {
			excl.Insert(v)
		}
		for i := 0; i < 64; i++ {
			if v, ok := s.SelectExcluding(excl, i*3+1); ok {
				s.Delete(v)
			}
		}
		s.Ascend(func(int) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %v times per run", allocs)
	}
}
