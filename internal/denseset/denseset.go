// Package denseset provides a bitmap-backed integer set specialized for
// the dense job universes of the round-based runtime, where ids within a
// round live in a small contiguous range [1..batch].
//
// It mirrors the subset of the internal/oset API that core.Proc uses for
// its FREE, DONE and TRY sets, trading the red-black tree's O(log n)
// pointer-chasing operations for O(1) word arithmetic: Insert, Delete and
// Contains touch one word; Select and SelectExcluding scan words with
// popcounts (O(n/64)), which for round-sized universes is a handful of
// cache lines. SelectExcluding — the paper's rank(SET1, SET2, i) — is
// computed directly over the word-wise difference free &^ try, with no
// snapshot or fixpoint iteration.
//
// The sparse consumers (IterativeKK's super-job inputs, harness tests over
// arbitrary subsets) keep using internal/oset; core.Proc picks the
// implementation per instance (see core.JobSet).
package denseset

import "math/bits"

// Set is a bitmap set of non-negative ints. The zero value is an empty
// set; storage grows on demand and is retained across Clear/ResetRange,
// so a set that is repeatedly filled and cleared to a similar size
// reaches a steady state where no operation allocates (the property the
// round-based runtime's hot path depends on — see Reserve).
type Set struct {
	words []uint64
	n     int // element count
}

// New returns an empty set. If keys are given they are inserted.
func New(keys ...int) *Set {
	s := &Set{}
	for _, k := range keys {
		s.Insert(k)
	}
	return s
}

// NewRange returns the set {lo, lo+1, ..., hi}.
func NewRange(lo, hi int) *Set {
	s := &Set{}
	s.ResetRange(lo, hi)
	return s
}

// Reserve grows the bitmap so values in [0..n] can be inserted without
// any further allocation.
func (s *Set) Reserve(n int) {
	s.grow(n)
}

// ReserveSelectScratch is a no-op: SelectExcluding needs no scratch
// storage here. Present to mirror the oset API.
func (s *Set) ReserveSelectScratch(int) {}

// grow ensures bit v is addressable.
func (s *Set) grow(v int) {
	need := v>>6 + 1
	if need <= len(s.words) {
		return
	}
	if need <= cap(s.words) {
		s.words = s.words[:need]
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Len returns the number of elements.
func (s *Set) Len() int { return s.n }

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	if v < 0 || v>>6 >= len(s.words) {
		return false
	}
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// Insert adds v to the set. It reports whether v was absent. v must be
// non-negative.
func (s *Set) Insert(v int) bool {
	s.grow(v)
	w := &s.words[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	if *w&mask != 0 {
		return false
	}
	*w |= mask
	s.n++
	return true
}

// Delete removes v from the set. It reports whether v was present.
func (s *Set) Delete(v int) bool {
	if v < 0 || v>>6 >= len(s.words) {
		return false
	}
	w := &s.words[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	if *w&mask == 0 {
		return false
	}
	*w &^= mask
	s.n--
	return true
}

// Clear removes all elements, keeping the storage.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// ResetRange clears the set and refills it with {lo, lo+1, ..., hi} by
// writing full words plus two edge masks — O(hi/64) with no per-element
// work. lo > hi leaves the set empty. lo must be non-negative.
func (s *Set) ResetRange(lo, hi int) {
	s.Clear()
	if lo > hi {
		return
	}
	s.grow(hi)
	loW, hiW := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi)&63)
	if loW == hiW {
		s.words[loW] = loMask & hiMask
	} else {
		s.words[loW] = loMask
		for i := loW + 1; i < hiW; i++ {
			s.words[i] = ^uint64(0)
		}
		s.words[hiW] = hiMask
	}
	s.n = hi - lo + 1
}

// Min returns the smallest element; ok is false when the set is empty.
func (s *Set) Min() (v int, ok bool) {
	for i, w := range s.words {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Max returns the largest element; ok is false when the set is empty.
func (s *Set) Max() (v int, ok bool) {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// Select returns the element with rank i (1-indexed: Select(1) is the
// minimum). ok is false when i is out of range.
func (s *Set) Select(i int) (v int, ok bool) {
	if i < 1 || i > s.n {
		return 0, false
	}
	for k, w := range s.words {
		c := bits.OnesCount64(w)
		if i > c {
			i -= c
			continue
		}
		return k<<6 + selectInWord(w, i), true
	}
	return 0, false // unreachable: i ≤ s.n
}

// Rank returns the number of elements ≤ v.
func (s *Set) Rank(v int) int {
	if v < 0 {
		return 0
	}
	r := 0
	vw := v >> 6
	for k, w := range s.words {
		if k > vw {
			break
		}
		if k == vw {
			w &= ^uint64(0) >> (63 - uint(v)&63)
		}
		r += bits.OnesCount64(w)
	}
	return r
}

// SelectExcluding returns the element of rank i (1-indexed) in the set
// difference s \ excl — the paper's rank(SET1, SET2, i) — by scanning the
// word-wise difference with popcounts. ok is false when s \ excl has
// fewer than i elements. Cost: O(n/64) regardless of |excl|.
func (s *Set) SelectExcluding(excl *Set, i int) (v int, ok bool) {
	if i < 1 {
		return 0, false
	}
	ew := excl.words
	for k, w := range s.words {
		if k < len(ew) {
			w &^= ew[k]
		}
		c := bits.OnesCount64(w)
		if i > c {
			i -= c
			continue
		}
		return k<<6 + selectInWord(w, i), true
	}
	return 0, false
}

// selectInWord returns the bit position of the i-th (1-indexed) set bit
// of w; i must be ≤ popcount(w).
func selectInWord(w uint64, i int) int {
	for ; i > 1; i-- {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// Ascend calls fn for each element in ascending order until fn returns
// false.
func (s *Set) Ascend(fn func(v int) bool) {
	for k, w := range s.words {
		for w != 0 {
			v := k<<6 + bits.TrailingZeros64(w)
			if !fn(v) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns all elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.n)
	s.Ascend(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n}
	if len(s.words) > 0 {
		c.words = make([]uint64, len(s.words))
		copy(c.words, s.words)
	}
	return c
}
