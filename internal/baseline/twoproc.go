package baseline

import (
	"fmt"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// TwoProc is the two-process at-most-once algorithm in the style of [26]:
// the left process performs jobs lo, lo+1, ... and the right process
// performs hi, hi−1, ...; each announces its target job in its own
// register before performing it and checks the other side's announcement
// after announcing. The announce-then-check order makes overlap
// impossible (the same argument as the paper's Lemma 4.1 Case 2), and at
// most one job at the meeting point is sacrificed: effectiveness n−1,
// which is optimal for two processes (Theorem 2.1 with f=1).
//
// Register layout: cell 0 = left announcement, cell 1 = right
// announcement (0 = no announcement yet).
type TwoProc struct {
	id     int  // 1-based process id (used for events)
	left   bool // direction of travel
	cur    int  // job about to be announced/performed
	lo, hi int  // inclusive range (fixed)
	mem    shmem.Mem
	base   int // register base address
	phase  twoPhase
	status sim.Status
	sink   DoSink
	work   uint64
	nDone  int
}

type twoPhase int

const (
	twoAnnounce twoPhase = iota + 1 // write own register
	twoRead                         // read the peer register
	twoDo                           // perform the job
)

var _ sim.Process = (*TwoProc)(nil)

// NewTwoProcPair builds the two processes sharing jobs [lo..hi] over the
// two registers at mem[base] and mem[base+1]. leftID and rightID are the
// event/process ids.
func NewTwoProcPair(mem shmem.Mem, base, lo, hi, leftID, rightID int) (*TwoProc, *TwoProc) {
	l := &TwoProc{id: leftID, left: true, cur: lo, lo: lo, hi: hi,
		mem: mem, base: base, phase: twoAnnounce, status: sim.Running}
	r := &TwoProc{id: rightID, left: false, cur: hi, lo: lo, hi: hi,
		mem: mem, base: base, phase: twoAnnounce, status: sim.Running}
	return l, r
}

// NewTwoProcSystem builds a complete 2-process world over jobs [1..n].
func NewTwoProcSystem(n, f int) (*sim.World, error) {
	if n < 2 {
		return nil, fmt.Errorf("baseline: two-process algorithm needs n ≥ 2, got %d", n)
	}
	mem := shmem.NewSim(2)
	l, r := NewTwoProcPair(mem, 0, 1, n, 1, 2)
	w := sim.NewWorld([]sim.Process{l, r}, mem, f)
	l.sink, r.sink = w, w
	return w, nil
}

// ID implements sim.Process.
func (p *TwoProc) ID() int { return p.id }

// Status implements sim.Process.
func (p *TwoProc) Status() sim.Status { return p.status }

// Crash implements sim.Process.
func (p *TwoProc) Crash() { p.status = sim.Crashed }

// Work implements sim.Worker.
func (p *TwoProc) Work() uint64 { return p.work }

// Performed returns the number of jobs this process completed.
func (p *TwoProc) Performed() int { return p.nDone }

func (p *TwoProc) ownAddr() int {
	if p.left {
		return p.base
	}
	return p.base + 1
}

func (p *TwoProc) peerAddr() int {
	if p.left {
		return p.base + 1
	}
	return p.base
}

func (p *TwoProc) exhausted() bool {
	if p.left {
		return p.cur > p.hi
	}
	return p.cur < p.lo
}

// Step implements sim.Process: announce → read peer → do, one shared
// access per step.
func (p *TwoProc) Step() {
	switch p.phase {
	case twoAnnounce:
		if p.exhausted() {
			p.status = sim.Done
			return
		}
		p.mem.Write(p.ownAddr(), int64(p.cur))
		p.work++
		p.phase = twoRead
	case twoRead:
		peer := p.mem.Read(p.peerAddr())
		p.work++
		if peer != 0 && p.passed(int(peer)) {
			// The peer announced this job or one we already passed: the
			// ranges have met; stop without performing cur.
			p.status = sim.Done
			return
		}
		p.phase = twoDo
	case twoDo:
		p.sink.RecordDo(p.id, int64(p.cur))
		p.work++
		p.nDone++
		if p.left {
			p.cur++
		} else {
			p.cur--
		}
		p.phase = twoAnnounce
	}
}

// passed reports whether the peer's announced job is at or beyond our
// current position (the fronts met).
func (p *TwoProc) passed(peer int) bool {
	if p.left {
		return peer <= p.cur
	}
	return peer >= p.cur
}

// SetSink rebinds the do-event sink (model checker wiring).
func (p *TwoProc) SetSink(s DoSink) { p.sink = s }

// twoProcSnap is the full mutable state of a TwoProc.
type twoProcSnap struct {
	cur    int
	phase  twoPhase
	status sim.Status
	nDone  int
}

// SaveState implements verify.Snapshottable.
func (p *TwoProc) SaveState() any {
	return twoProcSnap{cur: p.cur, phase: p.phase, status: p.status, nDone: p.nDone}
}

// LoadState implements verify.Snapshottable.
func (p *TwoProc) LoadState(snapshot any) {
	if s, ok := snapshot.(twoProcSnap); ok {
		p.cur, p.phase, p.status, p.nDone = s.cur, s.phase, s.status, s.nDone
	}
}

// AppendState implements verify.Snapshottable.
func (p *TwoProc) AppendState(buf []byte) []byte {
	if p.status == sim.Crashed {
		return append(buf, 0xFF)
	}
	return append(buf, byte(p.status), byte(p.phase),
		byte(p.cur), byte(p.cur>>8), byte(p.cur>>16))
}
