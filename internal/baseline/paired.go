package baseline

import (
	"fmt"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// NewPairedSystem lifts the two-process algorithm to m processes by
// pairing: processes (2i−1, 2i) share slice i of the job range via
// TwoProc; with odd m the last process owns its slice alone (TrivialProc).
// A slice survives unless both of its owners crash, so the worst-case
// effectiveness is n − ⌊f/2⌋·(2n/m) − O(f) — strictly better than Trivial
// for f < m−1 but still multiplicative, unlike KKβ's additive n−2m+2.
func NewPairedSystem(n, m, f int) (*sim.World, error) {
	if m < 1 || n < m {
		return nil, fmt.Errorf("baseline: invalid n=%d m=%d", n, m)
	}
	pairs := m / 2
	solo := m%2 == 1
	mem := shmem.NewSim(2 * pairs)
	var (
		procs []sim.Process
		twos  []*TwoProc
		trivs []*TrivialProc
	)
	slices := pairs
	if solo {
		slices++
	}
	for i := 0; i < pairs; i++ {
		lo := i*n/slices + 1
		hi := (i + 1) * n / slices
		l, r := NewTwoProcPair(mem, 2*i, lo, hi, 2*i+1, 2*i+2)
		twos = append(twos, l, r)
		procs = append(procs, l, r)
	}
	if solo {
		lo := pairs*n/slices + 1
		tp := &TrivialProc{id: m, next: lo, hi: n, status: sim.Running}
		trivs = append(trivs, tp)
		procs = append(procs, tp)
	}
	w := sim.NewWorld(procs, mem, f)
	for _, p := range twos {
		p.sink = w
	}
	for _, p := range trivs {
		p.sink = w
	}
	return w, nil
}
