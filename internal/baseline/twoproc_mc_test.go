package baseline

import (
	"fmt"
	"testing"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
	"atmostonce/internal/verify"
)

// TestExploreTwoProcExhaustive model-checks the two-process baseline over
// EVERY interleaving and crash pattern: at-most-once safety, wait-freedom
// (no fair cycles) and the optimal effectiveness n−1 at every terminal.
// The announce-then-check argument is subtle enough to deserve the same
// treatment as KKβ.
func TestExploreTwoProcExhaustive(t *testing.T) {
	for _, tt := range []struct {
		n, f int
	}{
		{2, 0}, {2, 1}, {3, 0}, {3, 1}, {4, 1}, {5, 1},
	} {
		t.Run(fmt.Sprintf("n=%d_f=%d", tt.n, tt.f), func(t *testing.T) {
			mem := shmem.NewSim(2)
			l, r := NewTwoProcPair(mem, 0, 1, tt.n, 1, 2)
			stats, err := verify.ExploreProcs(verify.ExploreOpts{
				Procs: []verify.Snapshottable{l, r},
				Mem:   mem,
				Jobs:  tt.n,
				F:     tt.f,
				Bind: func(sink verify.DoSink) {
					l.SetSink(sink)
					r.SetSink(sink)
				},
				OnTerminal: func(performed map[int64]int, witness []sim.Decision) *verify.MCViolationError {
					if len(performed) < tt.n-1 {
						return &verify.MCViolationError{
							Kind:    "effectiveness",
							Detail:  fmt.Sprintf("terminal with Do=%d < n-1=%d", len(performed), tt.n-1),
							Witness: witness,
						}
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Terminals == 0 {
				t.Fatal("no terminals")
			}
			if stats.MinDo < tt.n-1 {
				t.Fatalf("MinDo = %d < n-1", stats.MinDo)
			}
			t.Logf("n=%d f=%d: %d states, %d terminals, Do ∈ [%d,%d], %d cycles",
				tt.n, tt.f, stats.States, stats.Terminals, stats.MinDo, stats.MaxDo, stats.Cycles)
		})
	}
}
