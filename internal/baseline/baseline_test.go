package baseline

import (
	"testing"

	"atmostonce/internal/sim"
	"atmostonce/internal/verify"
)

const stepLimit = 20_000_000

func runWorld(t *testing.T, w *sim.World, adv sim.Adversary) *sim.Result {
	t.Helper()
	res, err := sim.Run(w, adv, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrivialAllJobsNoCrashes(t *testing.T) {
	w, err := NewTrivialSystem(100, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := runWorld(t, w, &sim.RoundRobin{})
	rep := verify.CheckEvents(res.Events)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Distinct != 100 {
		t.Fatalf("Do = %d, want 100", rep.Distinct)
	}
}

func TestTrivialEffectivenessUnderCrashes(t *testing.T) {
	const n, m, f = 100, 4, 2
	w, err := NewTrivialSystem(n, m, f)
	if err != nil {
		t.Fatal(err)
	}
	adv := &sim.CrashList{Victims: []int{1, 2}, Then: &sim.RoundRobin{}}
	res := runWorld(t, w, adv)
	rep := verify.CheckEvents(res.Events)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if want := TrivialEffectiveness(n, m, f); rep.Distinct != want {
		t.Fatalf("Do = %d, want (m-f)n/m = %d", rep.Distinct, want)
	}
}

func TestTrivialInvalidConfig(t *testing.T) {
	if _, err := NewTrivialSystem(2, 4, 0); err == nil {
		t.Fatal("n<m accepted")
	}
	if _, err := NewTrivialSystem(5, 0, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestTwoProcNoCrashesLosesAtMostOne(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w, err := NewTwoProcSystem(40, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := runWorld(t, w, sim.NewRandom(seed))
		rep := verify.CheckEvents(res.Events)
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Distinct < 39 {
			t.Fatalf("seed %d: Do = %d < n-1 = 39", seed, rep.Distinct)
		}
	}
}

func TestTwoProcWithCrashOptimal(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w, err := NewTwoProcSystem(30, 1)
		if err != nil {
			t.Fatal(err)
		}
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.02
		res := runWorld(t, w, adv)
		rep := verify.CheckEvents(res.Events)
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Distinct < 29 {
			t.Fatalf("seed %d: Do = %d < n-1 = 29 (two-process optimal)", seed, rep.Distinct)
		}
	}
}

func TestTwoProcSoloFinishesEverything(t *testing.T) {
	// Peer crashes before announcing: survivor performs all n jobs.
	w, err := NewTwoProcSystem(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	adv := &sim.CrashList{Victims: []int{2}, Then: &sim.RoundRobin{}}
	res := runWorld(t, w, adv)
	rep := verify.CheckEvents(res.Events)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Distinct != 25 {
		t.Fatalf("Do = %d, want all 25", rep.Distinct)
	}
}

func TestTwoProcLockstepExhaustiveSchedules(t *testing.T) {
	// Drive the pair through many distinct deterministic interleavings by
	// scripting prefixes; safety must hold in all of them.
	patterns := [][]int{
		{1, 2, 1, 2, 1, 2}, {1, 1, 2, 2, 1, 1, 2, 2}, {2, 2, 2, 1, 1, 1},
		{1, 2, 2, 1, 2, 1, 1, 2}, {2, 1, 1, 1, 1, 2, 2, 2},
	}
	for _, pat := range patterns {
		w, err := NewTwoProcSystem(10, 0)
		if err != nil {
			t.Fatal(err)
		}
		var script []sim.Decision
		for r := 0; r < 10; r++ {
			for _, pid := range pat {
				script = append(script, sim.StepOf(pid))
			}
		}
		res := runWorld(t, w, &sim.Scripted{Script: script, Then: &sim.RoundRobin{}})
		rep := verify.CheckEvents(res.Events)
		if err := rep.Err(); err != nil {
			t.Fatalf("pattern %v: %v", pat, err)
		}
		if rep.Distinct < 9 {
			t.Fatalf("pattern %v: Do = %d < 9", pat, rep.Distinct)
		}
	}
}

func TestTwoProcInvalid(t *testing.T) {
	if _, err := NewTwoProcSystem(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestPairedSafeAndEffective(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8} {
		for seed := int64(0); seed < 10; seed++ {
			w, err := NewPairedSystem(120, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			res := runWorld(t, w, sim.NewRandom(seed))
			rep := verify.CheckEvents(res.Events)
			if err := rep.Err(); err != nil {
				t.Fatalf("m=%d seed %d: %v", m, seed, err)
			}
			// Each of the ⌈m/2⌉ slices loses at most one job.
			slices := (m + 1) / 2
			if rep.Distinct < 120-slices {
				t.Fatalf("m=%d seed %d: Do = %d < %d", m, seed, rep.Distinct, 120-slices)
			}
		}
	}
}

func TestPairedSurvivesSingleCrashPerPair(t *testing.T) {
	// Crash one member of each pair: every slice still completes (minus
	// at most the announced job per slice).
	const n, m = 80, 4
	w, err := NewPairedSystem(n, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	adv := &sim.CrashList{Victims: []int{1, 4}, Then: &sim.RoundRobin{}}
	res := runWorld(t, w, adv)
	rep := verify.CheckEvents(res.Events)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Distinct < n-2 {
		t.Fatalf("Do = %d < n-2 = %d", rep.Distinct, n-2)
	}
}

func TestTASOptimalEffectiveness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		const n, m, f = 60, 3, 2
		w, err := NewTASSystem(n, m, f)
		if err != nil {
			t.Fatal(err)
		}
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.01
		res := runWorld(t, w, adv)
		rep := verify.CheckEvents(res.Events)
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Theorem 2.1's n−f is achieved by the TAS algorithm.
		if rep.Distinct < n-res.Crashes {
			t.Fatalf("seed %d: Do = %d < n-f = %d", seed, rep.Distinct, n-res.Crashes)
		}
	}
}

func TestTASNoCrashesDoesEverything(t *testing.T) {
	w, err := NewTASSystem(50, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := runWorld(t, w, &sim.RoundRobin{})
	rep := verify.CheckEvents(res.Events)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Distinct != 50 {
		t.Fatalf("Do = %d, want 50", rep.Distinct)
	}
}
