package baseline

import (
	"fmt"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// TASProc implements the §1 remark: "one can associate a test-and-set bit
// with each job, ensuring that the job is assigned to the only process
// that successfully sets the shared bit." Each process sweeps the job
// array; one TAS per job, performing those it wins. Effectiveness is the
// optimal n−f (a job is lost only when its winner crashes between the TAS
// and the do), but the primitive is a read-modify-write — exactly what
// the paper's model rules out — so this is a reference line, not a
// competitor.
type TASProc struct {
	id     int
	n      int
	cur    int // job whose bit is probed next
	won    int // job won and not yet performed (0 = none)
	mem    *shmem.SimMem
	status sim.Status
	sink   DoSink
	work   uint64
}

var _ sim.Process = (*TASProc)(nil)

// NewTASSystem builds the test-and-set claiming algorithm over n jobs and
// m processes. Register j−1 is job j's claim bit.
func NewTASSystem(n, m, f int) (*sim.World, error) {
	if m < 1 || n < m {
		return nil, fmt.Errorf("baseline: invalid n=%d m=%d", n, m)
	}
	mem := shmem.NewSim(n)
	procs := make([]sim.Process, m)
	tps := make([]*TASProc, m)
	for i := 0; i < m; i++ {
		tps[i] = &TASProc{id: i + 1, n: n, cur: 1, mem: mem, status: sim.Running}
		procs[i] = tps[i]
	}
	w := sim.NewWorld(procs, mem, f)
	for _, p := range tps {
		p.sink = w
	}
	return w, nil
}

// ID implements sim.Process.
func (p *TASProc) ID() int { return p.id }

// Status implements sim.Process.
func (p *TASProc) Status() sim.Status { return p.status }

// Crash implements sim.Process.
func (p *TASProc) Crash() { p.status = sim.Crashed }

// Work implements sim.Worker.
func (p *TASProc) Work() uint64 { return p.work }

// Step probes one claim bit or performs a won job.
func (p *TASProc) Step() {
	if p.won != 0 {
		p.sink.RecordDo(p.id, int64(p.won))
		p.work++
		p.won = 0
		return
	}
	if p.cur > p.n {
		p.status = sim.Done
		return
	}
	if p.mem.TestAndSet(p.cur-1) == 0 {
		p.won = p.cur
	}
	p.work++
	p.cur++
}
