// Package baseline implements the comparison algorithms the paper
// positions KKβ against:
//
//   - Trivial: the §2.2 strawman — split the n jobs into m static groups,
//     one per process; effectiveness (m−f)·n/m.
//   - TwoProc: the optimal two-process algorithm in the style of Kentros
//     et al. [26] — the two processes walk the job range from opposite
//     ends, announcing before performing; effectiveness n−1.
//   - Paired: TwoProc lifted to m processes by pairing them over m/2
//     static slices; an executable midpoint between Trivial and KKβ.
//   - TAS: the §1 remark — with test-and-set registers each job is
//     claimed atomically; effectiveness n−f, unattainable with read/write
//     registers alone but a useful reference line.
//
// The full multi-process algorithm of [26] (effectiveness n − log m·o(n))
// is not reconstructable from the present paper's text; experiment E7
// reports its effectiveness formula analytically instead (see DESIGN.md).
package baseline

import (
	"fmt"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// TrivialProc performs a static slice of jobs, one per step, touching no
// shared memory. Crashing it loses the remainder of its slice.
type TrivialProc struct {
	id     int
	next   int // next job to perform
	hi     int // last job of the slice (inclusive)
	status sim.Status
	sink   DoSink
	work   uint64
}

// DoSink mirrors core.DoSink without importing it (avoids a dependency
// cycle through test helpers); sim.World satisfies it.
type DoSink interface {
	RecordDo(pid int, job int64)
}

var _ sim.Process = (*TrivialProc)(nil)

// NewTrivialSystem builds the trivial split algorithm for n jobs over m
// processes: process p owns jobs ((p−1)·n/m, p·n/m].
func NewTrivialSystem(n, m, f int) (*sim.World, error) {
	if m < 1 || n < m {
		return nil, fmt.Errorf("baseline: invalid n=%d m=%d", n, m)
	}
	mem := shmem.NewSim(1) // the algorithm uses no shared memory
	procs := make([]sim.Process, m)
	tps := make([]*TrivialProc, m)
	for i := 0; i < m; i++ {
		lo := i*n/m + 1
		hi := (i + 1) * n / m
		tps[i] = &TrivialProc{id: i + 1, next: lo, hi: hi, status: sim.Running}
		procs[i] = tps[i]
	}
	w := sim.NewWorld(procs, mem, f)
	for _, p := range tps {
		p.sink = w
	}
	return w, nil
}

// ID implements sim.Process.
func (p *TrivialProc) ID() int { return p.id }

// Status implements sim.Process.
func (p *TrivialProc) Status() sim.Status { return p.status }

// Crash implements sim.Process.
func (p *TrivialProc) Crash() { p.status = sim.Crashed }

// Work implements sim.Worker.
func (p *TrivialProc) Work() uint64 { return p.work }

// Step performs the next job of the slice.
func (p *TrivialProc) Step() {
	if p.next > p.hi {
		p.status = sim.Done
		return
	}
	p.sink.RecordDo(p.id, int64(p.next))
	p.next++
	p.work++
}

// TrivialEffectiveness is the closed form (m−f)·n/m from §2.2.
func TrivialEffectiveness(n, m, f int) int { return (m - f) * n / m }
