// Package writeall implements §7: solving the Write-All problem of
// Kanellakis and Shvartsman ("using m processors write 1's to all
// locations of an array of size n") with WA_IterativeKK(ε), plus two
// read/write baselines used for the work comparisons in experiment E6.
package writeall

import (
	"fmt"

	"atmostonce/internal/core"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
	"atmostonce/internal/verify"
)

// Report summarizes one Write-All execution.
type Report struct {
	// N is the array size.
	N int
	// Covered counts distinct cells written at least once.
	Covered int
	// Missing lists unwritten cells; the Write-All postcondition requires
	// it to be empty.
	Missing []int64
	// Writes counts total do events (≥ n when correct; the surplus is the
	// redundancy the algorithm paid).
	Writes int
	// Work is total work in the paper's cost model.
	Work uint64
	// Steps is the number of scheduler actions.
	Steps uint64
	// Crashes is the number of injected failures.
	Crashes int
}

// Complete reports whether every cell was written.
func (r *Report) Complete() bool { return len(r.Missing) == 0 }

func summarize(n int, res *sim.Result) *Report {
	missing := verify.CheckCoverage(res.Events, n)
	return &Report{
		N:       n,
		Covered: n - len(missing),
		Missing: missing,
		Writes:  len(res.Events),
		Work:    res.TotalWork,
		Steps:   res.Steps,
		Crashes: res.Crashes,
	}
}

// RunIterKK executes WA_IterativeKK(ε) (Figure 4): the IterativeKK
// cascade with FREE-returning IterStepKK levels and a final direct
// execution of each process's residual set.
func RunIterKK(n, m, epsDenom, f int, adv sim.Adversary, maxSteps uint64) (*Report, error) {
	s, err := core.NewIterSystem(core.IterConfig{
		N: n, M: m, EpsDenom: epsDenom, F: f, WriteAll: true,
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(s.World, adv, maxSteps)
	if err != nil {
		return nil, err
	}
	return summarize(n, res), nil
}

// trivialWAProc writes every cell of the array, one write per step.
type trivialWAProc struct {
	id     int
	cur    int
	n      int
	mem    *shmem.SimMem
	status sim.Status
	sink   core.DoSink
	work   uint64
}

var _ sim.Process = (*trivialWAProc)(nil)

func (p *trivialWAProc) ID() int            { return p.id }
func (p *trivialWAProc) Status() sim.Status { return p.status }
func (p *trivialWAProc) Crash()             { p.status = sim.Crashed }
func (p *trivialWAProc) Work() uint64       { return p.work }

func (p *trivialWAProc) Step() {
	if p.cur > p.n {
		p.status = sim.Done
		return
	}
	p.mem.Write(p.cur-1, 1)
	p.sink.RecordDo(p.id, int64(p.cur))
	p.work++
	p.cur++
}

// RunTrivial executes the always-correct O(n·m) strawman: every process
// writes every cell.
func RunTrivial(n, m, f int, adv sim.Adversary, maxSteps uint64) (*Report, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("writeall: invalid n=%d m=%d", n, m)
	}
	mem := shmem.NewSim(n)
	procs := make([]sim.Process, m)
	tps := make([]*trivialWAProc, m)
	for i := 0; i < m; i++ {
		tps[i] = &trivialWAProc{id: i + 1, cur: 1, n: n, mem: mem, status: sim.Running}
		procs[i] = tps[i]
	}
	w := sim.NewWorld(procs, mem, f)
	for _, p := range tps {
		p.sink = w
	}
	res, err := sim.Run(w, adv, maxSteps)
	if err != nil {
		return nil, err
	}
	return summarize(n, res), nil
}

// sweepPhase is the state of a checkSweepProc.
type sweepPhase int

const (
	sweepOwn sweepPhase = iota + 1 // writing the private slice
	sweepRead
	sweepWrite
	sweepDone
)

// checkSweepProc writes its private slice, then sweeps the whole array
// reading each cell and writing only those still zero. Still Θ(n) reads
// per process (Θ(n·m) total) in the worst case, but with a much smaller
// write count than trivial — the strongest "obvious" read/write baseline
// short of the paper's machinery.
type checkSweepProc struct {
	id      int
	n       int
	cur     int
	sliceHi int
	phase   sweepPhase
	mem     *shmem.SimMem
	status  sim.Status
	sink    core.DoSink
	work    uint64
}

var _ sim.Process = (*checkSweepProc)(nil)

func (p *checkSweepProc) ID() int            { return p.id }
func (p *checkSweepProc) Status() sim.Status { return p.status }
func (p *checkSweepProc) Crash()             { p.status = sim.Crashed }
func (p *checkSweepProc) Work() uint64       { return p.work }

func (p *checkSweepProc) Step() {
	switch p.phase {
	case sweepOwn:
		if p.cur > p.sliceHi {
			p.cur = 1
			p.phase = sweepRead
			return
		}
		p.mem.Write(p.cur-1, 1)
		p.sink.RecordDo(p.id, int64(p.cur))
		p.work++
		p.cur++
	case sweepRead:
		if p.cur > p.n {
			p.phase = sweepDone
			p.status = sim.Done
			return
		}
		if p.mem.Read(p.cur-1) == 0 {
			p.phase = sweepWrite
		} else {
			p.cur++
		}
		p.work++
	case sweepWrite:
		p.mem.Write(p.cur-1, 1)
		p.sink.RecordDo(p.id, int64(p.cur))
		p.work++
		p.cur++
		p.phase = sweepRead
	}
}

// RunCheckSweep executes the slice-then-sweep baseline.
func RunCheckSweep(n, m, f int, adv sim.Adversary, maxSteps uint64) (*Report, error) {
	if m < 1 || n < m {
		return nil, fmt.Errorf("writeall: invalid n=%d m=%d", n, m)
	}
	mem := shmem.NewSim(n)
	procs := make([]sim.Process, m)
	cps := make([]*checkSweepProc, m)
	for i := 0; i < m; i++ {
		lo := i*n/m + 1
		hi := (i + 1) * n / m
		cps[i] = &checkSweepProc{id: i + 1, n: n, cur: lo, sliceHi: hi, phase: sweepOwn, mem: mem, status: sim.Running}
		procs[i] = cps[i]
	}
	w := sim.NewWorld(procs, mem, f)
	for _, p := range cps {
		p.sink = w
	}
	res, err := sim.Run(w, adv, maxSteps)
	if err != nil {
		return nil, err
	}
	return summarize(n, res), nil
}
