package writeall

import (
	"testing"

	"atmostonce/internal/sim"
)

const stepLimit = 100_000_000

func TestIterKKCoversAll(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rep, err := RunIterKK(500, 3, 1, 0, sim.NewRandom(seed), stepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Complete() {
			t.Fatalf("seed %d: %d cells unwritten: %v", seed, len(rep.Missing), rep.Missing)
		}
		if rep.Writes < rep.N {
			t.Fatalf("seed %d: writes %d < n", seed, rep.Writes)
		}
	}
}

func TestIterKKCoversAllUnderCrashes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.001
		rep, err := RunIterKK(400, 4, 1, 3, adv, stepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Complete() {
			t.Fatalf("seed %d (crashes=%d): %d cells unwritten", seed, rep.Crashes, len(rep.Missing))
		}
	}
}

func TestIterKKCrashStorm(t *testing.T) {
	// Crash all but one process immediately; the survivor must finish.
	adv := &sim.CrashList{Victims: []int{2, 3, 4}, Then: &sim.RoundRobin{}}
	rep, err := RunIterKK(300, 4, 2, 3, adv, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("%d cells unwritten after crash storm", len(rep.Missing))
	}
}

func TestTrivialCoversAll(t *testing.T) {
	rep, err := RunTrivial(200, 4, 3, &sim.CrashList{Victims: []int{1, 2, 3}, Then: &sim.RoundRobin{}}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatal("trivial WA incomplete")
	}
	// Work is Θ(n·m) when nobody crashes; here survivors still paid ~n.
	if rep.Work < 200 {
		t.Fatalf("work %d < n", rep.Work)
	}
}

func TestTrivialWorkIsNM(t *testing.T) {
	rep, err := RunTrivial(100, 5, 0, &sim.RoundRobin{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work != 500 {
		t.Fatalf("work = %d, want n·m = 500", rep.Work)
	}
	if !rep.Complete() {
		t.Fatal("incomplete")
	}
}

func TestCheckSweepCoversAll(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		adv := sim.NewRandom(seed)
		adv.CrashProb = 0.002
		rep, err := RunCheckSweep(300, 3, 2, adv, stepLimit)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Complete() {
			t.Fatalf("seed %d: incomplete (%d missing)", seed, len(rep.Missing))
		}
	}
}

func TestCheckSweepFewerWritesThanTrivial(t *testing.T) {
	tr, err := RunTrivial(400, 4, 0, &sim.RoundRobin{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RunCheckSweep(400, 4, 0, &sim.RoundRobin{}, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Writes >= tr.Writes {
		t.Fatalf("check-sweep writes %d ≥ trivial writes %d", cs.Writes, tr.Writes)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := RunTrivial(0, 1, 0, &sim.RoundRobin{}, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RunCheckSweep(2, 4, 0, &sim.RoundRobin{}, 10); err == nil {
		t.Fatal("n<m accepted")
	}
	if _, err := RunIterKK(2, 4, 1, 0, &sim.RoundRobin{}, 10); err == nil {
		t.Fatal("n<m accepted")
	}
}
