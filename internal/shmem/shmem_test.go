package shmem

import (
	"sync"
	"testing"
)

func TestSimMemReadWrite(t *testing.T) {
	m := NewSim(4)
	if m.Size() != 4 {
		t.Fatalf("Size = %d, want 4", m.Size())
	}
	for i := 0; i < 4; i++ {
		if v := m.Read(i); v != 0 {
			t.Fatalf("initial Read(%d) = %d, want 0", i, v)
		}
	}
	m.Write(2, 42)
	if v := m.Read(2); v != 42 {
		t.Fatalf("Read(2) = %d, want 42", v)
	}
	if m.Reads() != 5 || m.Writes() != 1 {
		t.Fatalf("counters = %d reads, %d writes; want 5, 1", m.Reads(), m.Writes())
	}
	if m.Accesses() != 6 {
		t.Fatalf("Accesses = %d, want 6", m.Accesses())
	}
}

func TestSimMemTAS(t *testing.T) {
	m := NewSim(2)
	if got := m.TestAndSet(0); got != 0 {
		t.Fatalf("first TAS = %d, want 0", got)
	}
	if got := m.TestAndSet(0); got != 1 {
		t.Fatalf("second TAS = %d, want 1", got)
	}
	if v := m.Read(0); v != 1 {
		t.Fatalf("register after TAS = %d, want 1", v)
	}
	if v := m.Read(1); v != 0 {
		t.Fatalf("untouched register = %d, want 0", v)
	}
}

func TestSimMemSnapshotRestore(t *testing.T) {
	m := NewSim(3)
	m.Write(0, 1)
	m.Write(1, 2)
	snap := m.Snapshot()
	m.Write(0, 99)
	m.Write(2, 7)
	m.Restore(snap)
	want := []int64{1, 2, 0}
	for i, w := range want {
		if v := m.Read(i); v != w {
			t.Fatalf("after restore Read(%d) = %d, want %d", i, v, w)
		}
	}
	// Snapshot must be a copy, not an alias.
	snap[0] = 1234
	if v := m.Read(0); v == 1234 {
		t.Fatal("Snapshot aliases memory")
	}
}

func TestAtomicMemReadWrite(t *testing.T) {
	m := NewAtomic(2)
	m.Write(1, -5)
	if v := m.Read(1); v != -5 {
		t.Fatalf("Read = %d, want -5", v)
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}

func TestAtomicMemTASExactlyOneWinner(t *testing.T) {
	const goroutines = 32
	m := NewAtomic(1)
	var (
		wg      sync.WaitGroup
		winners = make(chan int, goroutines)
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if m.TestAndSet(0) == 0 {
				winners <- id
			}
		}(g)
	}
	wg.Wait()
	close(winners)
	n := 0
	for range winners {
		n++
	}
	if n != 1 {
		t.Fatalf("%d TAS winners, want exactly 1", n)
	}
}

func TestAtomicMemConcurrentDistinctCells(t *testing.T) {
	const goroutines = 16
	m := NewAtomic(goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Write(id, int64(i))
				if v := m.Read(id); v != int64(i) {
					t.Errorf("goroutine %d read %d, want %d", id, v, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
