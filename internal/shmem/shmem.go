// Package shmem models the shared memory of the paper's asynchronous
// shared-memory system (§2.1): a collection of atomic read/write cells,
// each O(log n) bits wide. The Mem interface is the seam the whole
// stack is built on — algorithms (internal/core), the concurrent
// runtime (internal/conc) and the streaming dispatcher
// (internal/dispatch) only ever see Read/Write/Size.
//
// This package provides the two foundational implementations:
//
//   - SimMem: plain cells for use under the single-stepped simulation
//     engine (internal/sim), where atomicity holds by construction because
//     the scheduler serializes actions. SimMem counts every access, which
//     feeds the work-complexity experiments (Theorem 5.6).
//   - AtomicMem: cells backed by sync/atomic for the true concurrent runtime
//     (internal/conc), where each algorithm action performs at most one
//     shared access and therefore remains atomic on real hardware.
//
// Further backends live in the registry package internal/membackend and
// are selected by spec string (membackend.Open): the in-process atomic
// backend, the durable memory-mapped register file ("mmap:PATH", the
// substrate of dispatcher crash recovery), an instrumented counting
// wrapper, and the networked register service ("net:HOST:PORT/NS",
// internal/netmem — registers served by an amo-regd process with
// single-writer lease arbitration). Every implementation must pass the
// shared conformance suite internal/memtest; the file layout and
// recovery protocol are specified in DESIGN.md §7, the wire protocol
// and fencing in §8.
//
// A separate TAS extension models test-and-set registers; the paper's
// algorithms never use it (they are read/write only), but the baseline
// comparison algorithms from §1's remark do.
package shmem

import "sync/atomic"

// Mem is an array of atomic read/write registers addressed by index.
type Mem interface {
	// Read returns the value of the register at addr.
	Read(addr int) int64
	// Write stores v into the register at addr.
	Write(addr int, v int64)
	// Size returns the number of registers.
	Size() int
}

// TAS is the optional test-and-set capability. Read/write algorithms in
// this repository never depend on it; it exists to implement the stronger
// baseline the paper mentions in §1 ("one can associate a test-and-set bit
// with each job").
type TAS interface {
	// TestAndSet atomically sets the register at addr to 1 and returns its
	// previous value.
	TestAndSet(addr int) int64
}

// SimMem is a sequential Mem with access counting. It must only be used
// under a scheduler that serializes actions (internal/sim does).
type SimMem struct {
	cells  []int64
	reads  uint64
	writes uint64
}

var (
	_ Mem = (*SimMem)(nil)
	_ TAS = (*SimMem)(nil)
)

// NewSim returns a SimMem with size zero-initialized registers.
func NewSim(size int) *SimMem {
	return &SimMem{cells: make([]int64, size)}
}

// Read implements Mem.
func (m *SimMem) Read(addr int) int64 {
	m.reads++
	return m.cells[addr]
}

// Write implements Mem.
func (m *SimMem) Write(addr int, v int64) {
	m.writes++
	m.cells[addr] = v
}

// TestAndSet implements TAS.
func (m *SimMem) TestAndSet(addr int) int64 {
	m.reads++
	m.writes++
	old := m.cells[addr]
	m.cells[addr] = 1
	return old
}

// Size implements Mem.
func (m *SimMem) Size() int { return len(m.cells) }

// Peek reads a register without counting the access. For observers and
// invariant checkers, never for algorithm code.
func (m *SimMem) Peek(addr int) int64 { return m.cells[addr] }

// Reads returns the total number of Read operations performed.
func (m *SimMem) Reads() uint64 { return m.reads }

// Writes returns the total number of Write operations performed.
func (m *SimMem) Writes() uint64 { return m.writes }

// Accesses returns Reads()+Writes().
func (m *SimMem) Accesses() uint64 { return m.reads + m.writes }

// Snapshot copies the register contents; used by the bounded model checker
// to hash global states.
func (m *SimMem) Snapshot() []int64 {
	out := make([]int64, len(m.cells))
	copy(out, m.cells)
	return out
}

// Restore overwrites the register contents from a snapshot taken on a
// memory of the same size. Access counters are unaffected.
func (m *SimMem) Restore(snap []int64) {
	copy(m.cells, snap)
}

// AtomicMem is a Mem backed by sync/atomic operations, safe for concurrent
// use by multiple goroutines.
type AtomicMem struct {
	cells []atomic.Int64
}

var (
	_ Mem = (*AtomicMem)(nil)
	_ TAS = (*AtomicMem)(nil)
)

// NewAtomic returns an AtomicMem with size zero-initialized registers.
func NewAtomic(size int) *AtomicMem {
	return &AtomicMem{cells: make([]atomic.Int64, size)}
}

// Read implements Mem.
func (m *AtomicMem) Read(addr int) int64 { return m.cells[addr].Load() }

// Write implements Mem.
func (m *AtomicMem) Write(addr int, v int64) { m.cells[addr].Store(v) }

// TestAndSet implements TAS.
func (m *AtomicMem) TestAndSet(addr int) int64 {
	if m.cells[addr].CompareAndSwap(0, 1) {
		return 0
	}
	return 1
}

// CompareAndSwap atomically replaces the cell at addr with new if it
// holds old, reporting whether the swap happened. The paper's
// algorithms never use it (read/write registers only); it serves the
// backend registry's optional Swapper capability.
func (m *AtomicMem) CompareAndSwap(addr int, old, new int64) bool {
	return m.cells[addr].CompareAndSwap(old, new)
}

// Size implements Mem.
func (m *AtomicMem) Size() int { return len(m.cells) }
