// Package verify provides correctness oracles for at-most-once executions:
// a trace checker for the at-most-once property (Definition 2.2) and a
// bounded exhaustive model checker that explores every interleaving and
// crash pattern of small KKβ configurations, machine-checking Lemma 4.1
// (safety), Lemma 4.3 (wait-freedom) and Theorem 4.4's effectiveness lower
// bound on the full execution tree.
package verify

import (
	"fmt"
	"sort"

	"atmostonce/internal/sim"
)

// TraceReport is the outcome of checking one execution trace.
type TraceReport struct {
	// Distinct is Do(α), the number of distinct jobs performed.
	Distinct int
	// Violations lists jobs performed more than once, with counts.
	Violations []Violation
}

// Violation is one at-most-once breach.
type Violation struct {
	Job   int64
	Count int
	PIDs  []int
}

// OK reports whether the trace satisfies at-most-once semantics.
func (r *TraceReport) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the trace is safe, or an error naming the first
// violated job.
func (r *TraceReport) Err() error {
	if r.OK() {
		return nil
	}
	v := r.Violations[0]
	return fmt.Errorf("verify: job %d performed %d times by %v", v.Job, v.Count, v.PIDs)
}

// CheckEvents verifies Definition 2.2 over a do-event trace: every job is
// performed at most once across all processes.
func CheckEvents(events []sim.Event) *TraceReport {
	count := make(map[int64]int, len(events))
	pids := make(map[int64][]int)
	for _, e := range events {
		count[e.Job]++
		pids[e.Job] = append(pids[e.Job], e.PID)
	}
	rep := &TraceReport{Distinct: len(count)}
	for job, c := range count {
		if c > 1 {
			rep.Violations = append(rep.Violations, Violation{Job: job, Count: c, PIDs: pids[job]})
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		return rep.Violations[i].Job < rep.Violations[j].Job
	})
	return rep
}

// CheckCoverage verifies the Write-All postcondition: every job in [1..n]
// appears in the trace at least once. It returns the missing jobs.
func CheckCoverage(events []sim.Event, n int) []int64 {
	seen := make(map[int64]bool, n)
	for _, e := range events {
		seen[e.Job] = true
	}
	var missing []int64
	for j := int64(1); j <= int64(n); j++ {
		if !seen[j] {
			missing = append(missing, j)
		}
	}
	return missing
}
