package verify

import (
	"testing"

	"atmostonce/internal/sim"
)

func TestCheckEventsClean(t *testing.T) {
	events := []sim.Event{
		{PID: 1, Job: 1}, {PID: 2, Job: 2}, {PID: 1, Job: 3},
	}
	rep := CheckEvents(events)
	if !rep.OK() {
		t.Fatalf("clean trace flagged: %v", rep.Violations)
	}
	if rep.Distinct != 3 {
		t.Fatalf("Distinct = %d, want 3", rep.Distinct)
	}
	if rep.Err() != nil {
		t.Fatalf("Err = %v", rep.Err())
	}
}

func TestCheckEventsDuplicate(t *testing.T) {
	events := []sim.Event{
		{PID: 1, Job: 7}, {PID: 2, Job: 7}, {PID: 3, Job: 9},
		{PID: 3, Job: 9}, {PID: 3, Job: 9},
	}
	rep := CheckEvents(events)
	if rep.OK() {
		t.Fatal("duplicates not detected")
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %d, want 2", len(rep.Violations))
	}
	if rep.Violations[0].Job != 7 || rep.Violations[0].Count != 2 {
		t.Fatalf("first violation = %+v", rep.Violations[0])
	}
	if rep.Violations[1].Job != 9 || rep.Violations[1].Count != 3 {
		t.Fatalf("second violation = %+v", rep.Violations[1])
	}
	if rep.Err() == nil {
		t.Fatal("Err = nil for dirty trace")
	}
}

func TestCheckEventsEmpty(t *testing.T) {
	rep := CheckEvents(nil)
	if !rep.OK() || rep.Distinct != 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
}

func TestCheckCoverage(t *testing.T) {
	events := []sim.Event{{PID: 1, Job: 1}, {PID: 2, Job: 3}}
	missing := CheckCoverage(events, 4)
	if len(missing) != 2 || missing[0] != 2 || missing[1] != 4 {
		t.Fatalf("missing = %v, want [2 4]", missing)
	}
	if m := CheckCoverage(events, 1); m != nil {
		t.Fatalf("full coverage reported missing %v", m)
	}
}
