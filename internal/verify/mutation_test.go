package verify

import (
	"errors"
	"testing"

	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// greedyProc is a DELIBERATELY UNSAFE at-most-once attempt: each process
// scans a shared done-bitmap, picks the lowest unclaimed job, performs it
// and only then marks it. Classic check-then-act race — two processes can
// read "unclaimed" concurrently and both perform the job. The model
// checker must find the violation and produce a replayable witness;
// this is the mutation test proving the checker has teeth.
type greedyProc struct {
	id     int
	n      int
	target int // job selected by the last scan (0 = none)
	phase  int // 0 = scan, 1 = do, 2 = mark
	status sim.Status
	mem    shmem.Mem
	sink   DoSink
}

var _ Snapshottable = (*greedyProc)(nil)

func (p *greedyProc) ID() int            { return p.id }
func (p *greedyProc) Status() sim.Status { return p.status }
func (p *greedyProc) Crash()             { p.status = sim.Crashed }

func (p *greedyProc) Step() {
	switch p.phase {
	case 0: // scan the bitmap (reads, one per job — coarse but fine here)
		p.target = 0
		for j := 1; j <= p.n; j++ {
			if p.mem.Read(j-1) == 0 {
				p.target = j
				break
			}
		}
		if p.target == 0 {
			p.status = sim.Done
			return
		}
		p.phase = 1
	case 1: // perform WITHOUT having claimed
		p.sink.RecordDo(p.id, int64(p.target))
		p.phase = 2
	case 2: // mark done (too late)
		p.mem.Write(p.target-1, 1)
		p.phase = 0
	}
}

func (p *greedyProc) SaveState() any { c := *p; return &c }

func (p *greedyProc) LoadState(snapshot any) {
	if c, ok := snapshot.(*greedyProc); ok {
		mem, sink := p.mem, p.sink
		*p = *c
		p.mem, p.sink = mem, sink
	}
}

func (p *greedyProc) AppendState(buf []byte) []byte {
	if p.status == sim.Crashed {
		return append(buf, 0xFF)
	}
	return append(buf, byte(p.status), byte(p.phase), byte(p.target))
}

// TestModelCheckerCatchesUnsafeAlgorithm: the checker must refute the
// greedy algorithm with an at-most-once violation.
func TestModelCheckerCatchesUnsafeAlgorithm(t *testing.T) {
	const n = 2
	mem := shmem.NewSim(n)
	a := &greedyProc{id: 1, n: n, status: sim.Running, mem: mem}
	b := &greedyProc{id: 2, n: n, status: sim.Running, mem: mem}
	_, err := ExploreProcs(ExploreOpts{
		Procs: []Snapshottable{a, b},
		Mem:   mem,
		Jobs:  n,
		Bind:  func(s DoSink) { a.sink, b.sink = s, s },
	})
	var v *MCViolationError
	if !errors.As(err, &v) {
		t.Fatalf("checker missed the race: err = %v", err)
	}
	if v.Kind != "at-most-once" {
		t.Fatalf("violation kind = %q, want at-most-once", v.Kind)
	}
	if len(v.Witness) == 0 {
		t.Fatal("no witness schedule")
	}
	t.Logf("counterexample found, witness length %d: %v", len(v.Witness), v.Witness)

	// Replay the witness through the real engine and confirm it
	// reproduces the duplicate — end-to-end validation of the witness.
	mem2 := shmem.NewSim(n)
	a2 := &greedyProc{id: 1, n: n, status: sim.Running, mem: mem2}
	b2 := &greedyProc{id: 2, n: n, status: sim.Running, mem: mem2}
	w := sim.NewWorld([]sim.Process{a2, b2}, mem2, 1)
	a2.sink, b2.sink = w, w
	res, err := sim.Run(w, &sim.Scripted{Script: v.Witness, Then: &sim.RoundRobin{}}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckEvents(res.Events)
	if rep.OK() {
		t.Fatal("witness replay did not reproduce the violation")
	}
	t.Logf("witness replay reproduced: %v", rep.Err())
}

// TestModelCheckerCatchesEffectivenessGap: an algorithm that gives up too
// early must be refuted by the terminal predicate.
func TestModelCheckerCatchesEffectivenessGap(t *testing.T) {
	const n = 3
	mem := shmem.NewSim(n)
	// A "lazy" process that performs only job 1 and stops.
	lazy := &greedyProc{id: 1, n: 1 /* sees only job 1 */, status: sim.Running, mem: mem}
	_, err := ExploreProcs(ExploreOpts{
		Procs: []Snapshottable{lazy},
		Mem:   mem,
		Jobs:  n,
		Bind:  func(s DoSink) { lazy.sink = s },
		OnTerminal: func(performed map[int64]int, witness []sim.Decision) *MCViolationError {
			if len(performed) < n {
				return &MCViolationError{Kind: "effectiveness", Detail: "left jobs behind", Witness: witness}
			}
			return nil
		},
	})
	var v *MCViolationError
	if !errors.As(err, &v) || v.Kind != "effectiveness" {
		t.Fatalf("terminal predicate not enforced: %v", err)
	}
}
