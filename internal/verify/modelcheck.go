package verify

import (
	"encoding/binary"
	"errors"
	"fmt"

	"atmostonce/internal/core"
	"atmostonce/internal/shmem"
	"atmostonce/internal/sim"
)

// Snapshottable is a process the model checker can branch: in addition to
// stepping (sim.Process) it supports state save/restore and serialization
// of its behaviorally relevant state for state hashing.
type Snapshottable interface {
	sim.Process
	// SaveState returns an opaque deep copy of the process state.
	SaveState() any
	// LoadState restores state saved by SaveState on the same process.
	LoadState(snapshot any)
	// AppendState appends the behaviorally relevant state to buf.
	// Crashed processes should collapse to a constant marker.
	AppendState(buf []byte) []byte
}

// MCConfig configures an exhaustive exploration of a (small) KKβ instance.
type MCConfig struct {
	// N, M, Beta, F are the algorithm parameters (Beta 0 = m).
	N, M, Beta, F int
	// IterStep explores the §6 IterStepKK variant (single level, with the
	// termination flag) instead of plain KKβ. In this mode the checker
	// additionally verifies Lemma 6.2: no terminated process's output set
	// contains a performed job.
	IterStep bool
	// MaxStates aborts the search after visiting this many distinct
	// states (0 = 4e6). Exceeding it returns ErrStateBudget.
	MaxStates int
}

// MCStats summarizes an exhaustive exploration.
type MCStats struct {
	States    int // distinct global states visited
	Terminals int // terminal (all-stopped) states
	MinDo     int // fewest distinct jobs performed over all terminals
	MaxDo     int // most distinct jobs performed over all terminals
	Cycles    int // state-graph cycles encountered (all must be unfair)
}

// MCViolationError describes a property violation with a witness schedule
// that reproduces it via sim.Scripted.
type MCViolationError struct {
	Kind    string // "at-most-once" | "effectiveness" | "fair-cycle" | "lemma-6.2"
	Detail  string
	Witness []sim.Decision
}

// Error implements error.
func (e *MCViolationError) Error() string {
	return fmt.Sprintf("verify: %s violation: %s (witness length %d)", e.Kind, e.Detail, len(e.Witness))
}

// ErrStateBudget is returned when the exploration exceeds MaxStates.
var ErrStateBudget = errors.New("verify: state budget exceeded")

// ExploreKK exhaustively explores every interleaving and crash pattern of
// a KKβ instance, checking:
//
//   - Lemma 4.1: no job is ever performed twice;
//   - Lemma 4.3: no fair cycle exists in the state graph (wait-freedom);
//   - Theorem 4.4 (lower bound): every terminal state has
//     Do(α) ≥ n−(β+m−2);
//   - Lemma 6.2 (IterStep mode): output sets never contain performed jobs.
func ExploreKK(cfg MCConfig) (*MCStats, error) {
	if cfg.Beta == 0 {
		cfg.Beta = cfg.M
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 4_000_000
	}
	lay := core.Layout{M: cfg.M, RowLen: cfg.N, HasFlag: cfg.IterStep}
	mem := shmem.NewSim(lay.Size())
	e := newExplorer(mem, cfg.F, cfg.N, cfg.MaxStates)
	kkProcs := make([]*core.Proc, cfg.M)
	for i := 0; i < cfg.M; i++ {
		kkProcs[i] = core.NewProc(core.ProcOptions{
			ID:       i + 1,
			M:        cfg.M,
			Beta:     cfg.Beta,
			Layout:   lay,
			Mem:      mem,
			Universe: cfg.N,
			IterStep: cfg.IterStep,
			Sink:     e,
		})
		e.procs = append(e.procs, kkProcs[i])
	}
	e.onTerminal = func(e *explorer) *MCViolationError {
		if !cfg.IterStep {
			if bound := core.EffectivenessBound(cfg.N, cfg.M, cfg.Beta); len(e.counts) < bound {
				return &MCViolationError{
					Kind:    "effectiveness",
					Detail:  fmt.Sprintf("terminal with Do=%d < n-(β+m-2)=%d", len(e.counts), bound),
					Witness: e.witness(),
				}
			}
			return nil
		}
		// Lemma 6.2: output sets contain no performed jobs.
		for _, p := range kkProcs {
			if p.Status() != sim.Done {
				continue
			}
			var bad int64 = -1
			p.Output().Ascend(func(v int) bool {
				if e.counts[int64(v)] > 0 {
					bad = int64(v)
					return false
				}
				return true
			})
			if bad >= 0 {
				return &MCViolationError{
					Kind:    "lemma-6.2",
					Detail:  fmt.Sprintf("process %d output contains performed job %d", p.ID(), bad),
					Witness: e.witness(),
				}
			}
		}
		return nil
	}
	if err := e.dfs(0); err != nil {
		return e.stats, err
	}
	return e.stats, nil
}

// ExploreProcs exhaustively explores an arbitrary set of Snapshottable
// processes over a shared memory with crash budget f, checking
// at-most-once safety, fair-cycle freedom and the optional onTerminal
// predicate at every terminal state. Processes must already be wired to
// report do events to the returned explorer... callers use the
// ExploreOpts.Sink hook for that.
func ExploreProcs(opts ExploreOpts) (*MCStats, error) {
	e := newExplorer(opts.Mem, opts.F, opts.Jobs, opts.MaxStates)
	opts.Bind(e)
	e.procs = opts.Procs
	if opts.OnTerminal != nil {
		e.onTerminal = func(e *explorer) *MCViolationError {
			return opts.OnTerminal(e.counts, e.witness())
		}
	}
	if err := e.dfs(0); err != nil {
		return e.stats, err
	}
	return e.stats, nil
}

// ExploreOpts configures ExploreProcs.
type ExploreOpts struct {
	// Procs are the processes to explore; they must report do events to
	// the sink passed to Bind.
	Procs []Snapshottable
	// Mem is the shared memory all processes use.
	Mem *shmem.SimMem
	// Jobs is the job universe size (for the performed-set state hash).
	Jobs int
	// F is the crash budget.
	F int
	// MaxStates bounds the exploration (0 = 4e6).
	MaxStates int
	// Bind is called once with the event sink the processes must report
	// do events to (it is the explorer itself).
	Bind func(sink DoSink)
	// OnTerminal, when non-nil, is evaluated at every terminal state with
	// the performed-count map and a witness factory; return a violation
	// to abort.
	OnTerminal func(performed map[int64]int, witness []sim.Decision) *MCViolationError
}

// DoSink mirrors core.DoSink for event reporting.
type DoSink interface {
	RecordDo(pid int, job int64)
}

func newExplorer(mem *shmem.SimMem, f, jobs, maxStates int) *explorer {
	if maxStates == 0 {
		maxStates = 4_000_000
	}
	return &explorer{
		mem:       mem,
		f:         f,
		jobs:      jobs,
		maxStates: maxStates,
		visited:   make(map[string]struct{}),
		onstack:   make(map[string]int),
		counts:    make(map[int64]int),
		stats:     &MCStats{MinDo: jobs + 1, MaxDo: -1},
	}
}

type explorer struct {
	mem       *shmem.SimMem
	procs     []Snapshottable
	f         int
	jobs      int
	maxStates int
	crashes   int

	visited map[string]struct{}
	onstack map[string]int // state key -> depth on current DFS path
	path    []sim.Decision
	events  []sim.Event
	counts  map[int64]int
	dup     *sim.Event

	onTerminal func(*explorer) *MCViolationError

	stats *MCStats
}

// RecordDo implements core.DoSink.
func (e *explorer) RecordDo(pid int, job int64) {
	ev := sim.Event{PID: pid, Job: job}
	e.events = append(e.events, ev)
	e.counts[job]++
	if e.counts[job] > 1 && e.dup == nil {
		e.dup = &ev
	}
}

func (e *explorer) popEvents(toLen int) {
	for i := len(e.events) - 1; i >= toLen; i-- {
		job := e.events[i].Job
		e.counts[job]--
		if e.counts[job] == 0 {
			delete(e.counts, job)
		}
	}
	e.events = e.events[:toLen]
	e.dup = nil
}

func (e *explorer) key() string {
	buf := make([]byte, 0, 256)
	for _, c := range e.mem.Snapshot() {
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], uint64(c))
		buf = append(buf, t[:]...)
	}
	for _, p := range e.procs {
		buf = p.AppendState(buf)
	}
	buf = append(buf, byte(e.crashes))
	// Performed set: jobs done by now-crashed processes are invisible in
	// process state but still constrain the future (a second do of the
	// same job is a violation), so they are part of the behavioral state.
	for j := int64(1); j <= int64(e.jobs); j++ {
		if e.counts[j] > 0 {
			buf = append(buf, byte(j))
		}
	}
	return string(buf)
}

func (e *explorer) witness() []sim.Decision {
	w := make([]sim.Decision, len(e.path))
	copy(w, e.path)
	return w
}

func (e *explorer) dfs(depth int) error {
	k := e.key()
	if d, ok := e.onstack[k]; ok {
		// Cycle: check fairness — does the cycle step every process that
		// is live at cycle entry? If so, an infinite fair execution
		// exists, contradicting Lemma 4.3.
		e.stats.Cycles++
		stepped := make(map[int]bool)
		for _, dec := range e.path[d:] {
			if dec.Kind == sim.DecideStep {
				stepped[dec.PID] = true
			}
		}
		fair := true
		for _, p := range e.procs {
			if p.Status() == sim.Running && !stepped[p.ID()] {
				fair = false
				break
			}
		}
		if fair {
			return &MCViolationError{
				Kind:    "fair-cycle",
				Detail:  fmt.Sprintf("fair cycle of length %d at depth %d", depth-d, d),
				Witness: e.witness(),
			}
		}
		return nil
	}
	if _, ok := e.visited[k]; ok {
		return nil
	}
	e.visited[k] = struct{}{}
	e.stats.States++
	if e.stats.States > e.maxStates {
		return ErrStateBudget
	}

	allStopped := true
	for _, p := range e.procs {
		if p.Status() == sim.Running {
			allStopped = false
			break
		}
	}
	if allStopped {
		e.stats.Terminals++
		do := len(e.counts)
		if do < e.stats.MinDo {
			e.stats.MinDo = do
		}
		if do > e.stats.MaxDo {
			e.stats.MaxDo = do
		}
		if e.onTerminal != nil {
			if v := e.onTerminal(e); v != nil {
				return v
			}
		}
		return nil
	}

	e.onstack[k] = depth
	defer delete(e.onstack, k)

	memSnap := e.mem.Snapshot()
	for _, p := range e.procs {
		if p.Status() != sim.Running {
			continue
		}
		// Branch 1: step p.
		save := p.SaveState()
		evLen := len(e.events)
		e.path = append(e.path, sim.StepOf(p.ID()))
		p.Step()
		if e.dup != nil {
			return &MCViolationError{
				Kind:    "at-most-once",
				Detail:  fmt.Sprintf("job %d performed twice (second by process %d)", e.dup.Job, e.dup.PID),
				Witness: e.witness(),
			}
		}
		if err := e.dfs(depth + 1); err != nil {
			return err
		}
		e.path = e.path[:len(e.path)-1]
		p.LoadState(save)
		e.mem.Restore(memSnap)
		e.popEvents(evLen)

		// Branch 2: crash p (budget permitting).
		if e.crashes < e.f {
			e.path = append(e.path, sim.CrashOf(p.ID()))
			p.Crash()
			e.crashes++
			if err := e.dfs(depth + 1); err != nil {
				return err
			}
			e.crashes--
			e.path = e.path[:len(e.path)-1]
			p.LoadState(save)
		}
	}
	return nil
}
