package verify

import (
	"testing"

	"atmostonce/internal/core"
)

// TestExploreTiny exhaustively checks KKβ for m=2, n=2, f=1: every
// interleaving and crash pattern. This machine-checks Lemma 4.1 (safety),
// Lemma 4.3 (no fair cycles) and Theorem 4.4's lower bound on the entire
// execution tree.
func TestExploreTiny(t *testing.T) {
	stats, err := ExploreKK(MCConfig{N: 2, M: 2, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Terminals == 0 {
		t.Fatal("no terminal states reached")
	}
	if bound := core.EffectivenessBound(2, 2, 0); stats.MinDo < bound {
		t.Fatalf("MinDo = %d < bound %d", stats.MinDo, bound)
	}
	if stats.MaxDo > 2 {
		t.Fatalf("MaxDo = %d > n", stats.MaxDo)
	}
	t.Logf("n=2 m=2 f=1: %d states, %d terminals, Do ∈ [%d,%d], %d cycles",
		stats.States, stats.Terminals, stats.MinDo, stats.MaxDo, stats.Cycles)
}

func TestExploreNoCrashes(t *testing.T) {
	stats, err := ExploreKK(MCConfig{N: 3, M: 2, F: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Without crashes both processes terminate voluntarily; Lemma 4.2
	// guarantees at least n-(β+m-2) jobs in every terminal.
	if bound := core.EffectivenessBound(3, 2, 0); stats.MinDo < bound {
		t.Fatalf("MinDo = %d < bound %d", stats.MinDo, bound)
	}
	t.Logf("n=3 m=2 f=0: %d states, %d terminals, Do ∈ [%d,%d]",
		stats.States, stats.Terminals, stats.MinDo, stats.MaxDo)
}

func TestExploreWithCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow in -short mode")
	}
	stats, err := ExploreKK(MCConfig{N: 3, M: 2, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bound := core.EffectivenessBound(3, 2, 0); stats.MinDo < bound {
		t.Fatalf("MinDo = %d < bound %d", stats.MinDo, bound)
	}
	t.Logf("n=3 m=2 f=1: %d states, %d terminals, Do ∈ [%d,%d], %d cycles",
		stats.States, stats.Terminals, stats.MinDo, stats.MaxDo, stats.Cycles)
}

// TestExploreIterStep checks the IterStepKK variant (termination flag) on
// a tiny instance, including Lemma 6.2: no output set contains a
// performed job.
func TestExploreIterStep(t *testing.T) {
	stats, err := ExploreKK(MCConfig{N: 2, M: 2, F: 1, IterStep: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Terminals == 0 {
		t.Fatal("no terminal states reached")
	}
	t.Logf("iterstep n=2 m=2 f=1: %d states, %d terminals, Do ∈ [%d,%d]",
		stats.States, stats.Terminals, stats.MinDo, stats.MaxDo)
}

func TestExploreStateBudget(t *testing.T) {
	_, err := ExploreKK(MCConfig{N: 4, M: 2, F: 1, MaxStates: 10})
	if err != ErrStateBudget {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
}
