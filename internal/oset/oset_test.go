package oset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// validate checks the binary-search-tree property, subtree size counters,
// and the red-black invariants. It returns the black-height.
func validate(t *testing.T, s *Set) int {
	t.Helper()
	if s.nil_.color != black {
		t.Fatalf("sentinel is red")
	}
	if s.root.color != black {
		t.Fatalf("root is red")
	}
	var check func(x *node, lo, hi int) int
	check = func(x *node, lo, hi int) int {
		if x == s.nil_ {
			return 1
		}
		if x.key < lo || x.key > hi {
			t.Fatalf("BST violation: key %d outside (%d,%d)", x.key, lo, hi)
		}
		if x.color == red && (x.left.color == red || x.right.color == red) {
			t.Fatalf("red-red violation at key %d", x.key)
		}
		if x.left != s.nil_ && x.left.parent != x {
			t.Fatalf("broken parent pointer below key %d", x.key)
		}
		if x.right != s.nil_ && x.right.parent != x {
			t.Fatalf("broken parent pointer below key %d", x.key)
		}
		bl := check(x.left, lo, x.key-1)
		br := check(x.right, x.key+1, hi)
		if bl != br {
			t.Fatalf("black-height mismatch at key %d: %d vs %d", x.key, bl, br)
		}
		if want := x.left.size + x.right.size + 1; x.size != want {
			t.Fatalf("size mismatch at key %d: have %d want %d", x.key, x.size, want)
		}
		if x.color == black {
			return bl + 1
		}
		return bl
	}
	return check(s.root, -1<<62, 1<<62)
}

func TestEmpty(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Contains(1) {
		t.Fatal("empty set contains 1")
	}
	if _, ok := s.Select(1); ok {
		t.Fatal("Select on empty set succeeded")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty set succeeded")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max on empty set succeeded")
	}
	if s.Delete(1) {
		t.Fatal("Delete on empty set reported true")
	}
	validate(t, s)
}

func TestInsertBasic(t *testing.T) {
	s := New()
	for _, v := range []int{5, 3, 8, 1, 4, 7, 9, 2, 6} {
		if !s.Insert(v) {
			t.Fatalf("Insert(%d) = false on fresh value", v)
		}
	}
	if s.Insert(5) {
		t.Fatal("duplicate Insert reported true")
	}
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
	for i := 1; i <= 9; i++ {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
		if v, ok := s.Select(i); !ok || v != i {
			t.Fatalf("Select(%d) = %d,%v; want %d,true", i, v, ok, i)
		}
	}
	validate(t, s)
}

func TestDeleteBasic(t *testing.T) {
	s := New(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for _, v := range []int{5, 1, 10, 7} {
		if !s.Delete(v) {
			t.Fatalf("Delete(%d) = false", v)
		}
		if s.Contains(v) {
			t.Fatalf("still contains %d after delete", v)
		}
		validate(t, s)
	}
	want := []int{2, 3, 4, 6, 8, 9}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	s := New(42, 7, 99, 13)
	if v, ok := s.Min(); !ok || v != 7 {
		t.Fatalf("Min = %d,%v; want 7,true", v, ok)
	}
	if v, ok := s.Max(); !ok || v != 99 {
		t.Fatalf("Max = %d,%v; want 99,true", v, ok)
	}
}

func TestRank(t *testing.T) {
	s := New(10, 20, 30, 40, 50)
	tests := []struct {
		v    int
		want int
	}{
		{5, 0}, {10, 1}, {15, 1}, {20, 2}, {45, 4}, {50, 5}, {99, 5},
	}
	for _, tt := range tests {
		if got := s.Rank(tt.v); got != tt.want {
			t.Errorf("Rank(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestNewRangeSizes(t *testing.T) {
	for count := 0; count <= 300; count++ {
		s := NewRange(1, count)
		if s.Len() != count {
			t.Fatalf("NewRange(1,%d).Len() = %d", count, s.Len())
		}
		validate(t, s)
		for i := 1; i <= count; i++ {
			if v, ok := s.Select(i); !ok || v != i {
				t.Fatalf("count=%d Select(%d) = %d,%v", count, i, v, ok)
			}
		}
	}
}

func TestNewRangeThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, count := range []int{1, 2, 17, 64, 100, 255, 256, 257} {
		s := NewRange(0, count-1)
		// Interleave deletes and inserts, validating the whole way.
		for i := 0; i < 2*count; i++ {
			v := rng.Intn(count * 2)
			if rng.Intn(2) == 0 {
				s.Delete(v)
			} else {
				s.Insert(v)
			}
		}
		validate(t, s)
	}
}

func TestSelectExcluding(t *testing.T) {
	s := NewRange(1, 10)
	excl := New(2, 3, 7)
	// s \ excl = {1,4,5,6,8,9,10}
	want := []int{1, 4, 5, 6, 8, 9, 10}
	for i, w := range want {
		if v, ok := s.SelectExcluding(excl, i+1); !ok || v != w {
			t.Fatalf("SelectExcluding(i=%d) = %d,%v; want %d", i+1, v, ok, w)
		}
	}
	if _, ok := s.SelectExcluding(excl, len(want)+1); ok {
		t.Fatal("SelectExcluding out of range succeeded")
	}
	if _, ok := s.SelectExcluding(excl, 0); ok {
		t.Fatal("SelectExcluding(0) succeeded")
	}
}

func TestSelectExcludingDisjoint(t *testing.T) {
	// Exclusions not present in s must be ignored.
	s := New(1, 3, 5)
	excl := New(2, 4, 6)
	for i, w := range []int{1, 3, 5} {
		if v, ok := s.SelectExcluding(excl, i+1); !ok || v != w {
			t.Fatalf("SelectExcluding(i=%d) = %d,%v; want %d", i+1, v, ok, w)
		}
	}
}

func TestSelectExcludingAllExcluded(t *testing.T) {
	s := New(1, 2, 3)
	excl := New(1, 2, 3)
	if _, ok := s.SelectExcluding(excl, 1); ok {
		t.Fatal("SelectExcluding with everything excluded succeeded")
	}
}

func TestClone(t *testing.T) {
	s := NewRange(1, 50)
	c := s.Clone()
	c.Delete(25)
	if !s.Contains(25) {
		t.Fatal("mutating clone affected original")
	}
	if c.Contains(25) {
		t.Fatal("clone delete did not stick")
	}
	validate(t, c)
	validate(t, s)
}

func TestClear(t *testing.T) {
	s := NewRange(1, 10)
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d", s.Len())
	}
	s.Insert(3)
	if !s.Contains(3) || s.Len() != 1 {
		t.Fatal("set unusable after Clear")
	}
	validate(t, s)
}

func TestAscendEarlyStop(t *testing.T) {
	s := NewRange(1, 100)
	n := 0
	s.Ascend(func(v int) bool {
		n++
		return v < 10
	})
	if n != 10 {
		t.Fatalf("visited %d elements, want 10", n)
	}
}

// TestModelRandomOps drives the tree and a map-based reference model with
// the same random operation stream and compares observable behaviour.
func TestModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	model := make(map[int]bool)
	const universe = 200
	for op := 0; op < 20000; op++ {
		v := rng.Intn(universe)
		switch rng.Intn(3) {
		case 0:
			got, want := s.Insert(v), !model[v]
			if got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", op, v, got, want)
			}
			model[v] = true
		case 1:
			got, want := s.Delete(v), model[v]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, v, got, want)
			}
			delete(model, v)
		case 2:
			if got, want := s.Contains(v), model[v]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", op, v, got, want)
			}
		}
		if op%500 == 0 {
			validate(t, s)
			checkAgainstModel(t, s, model)
		}
	}
	validate(t, s)
	checkAgainstModel(t, s, model)
}

func checkAgainstModel(t *testing.T, s *Set, model map[int]bool) {
	t.Helper()
	keys := make([]int, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := s.Select(i + 1); !ok || v != k {
			t.Fatalf("Select(%d) = %d,%v; want %d", i+1, v, ok, k)
		}
		if got := s.Rank(k); got != i+1 {
			t.Fatalf("Rank(%d) = %d, want %d", k, got, i+1)
		}
	}
	got := s.Slice()
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Slice mismatch at %d: %d vs %d", i, got[i], keys[i])
		}
	}
}

// TestQuickSelectExcluding property-tests SelectExcluding against a brute
// force difference computation.
func TestQuickSelectExcluding(t *testing.T) {
	f := func(base []uint8, excl []uint8, idx uint8) bool {
		s := New()
		for _, v := range base {
			s.Insert(int(v))
		}
		e := New()
		for _, v := range excl {
			e.Insert(int(v))
		}
		// Brute force: sorted slice of s minus e.
		var diff []int
		s.Ascend(func(v int) bool {
			if !e.Contains(v) {
				diff = append(diff, v)
			}
			return true
		})
		i := int(idx)%(len(diff)+2) + 1 // probe in and slightly out of range
		v, ok := s.SelectExcluding(e, i)
		if i <= len(diff) {
			return ok && v == diff[i-1]
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRankSelectInverse checks Select(Rank(v)) == v for members.
func TestQuickRankSelectInverse(t *testing.T) {
	f := func(vals []uint16) bool {
		s := New()
		for _, v := range vals {
			s.Insert(int(v))
		}
		ok := true
		s.Ascend(func(v int) bool {
			r := s.Rank(v)
			got, found := s.Select(r)
			if !found || got != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(i)
	}
}

func BenchmarkSelectExcluding(b *testing.B) {
	s := NewRange(1, 1<<16)
	excl := New()
	for i := 1; i <= 32; i++ {
		excl.Insert(i * 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SelectExcluding(excl, i%(1<<15)+1); !ok {
			b.Fatal("unexpected out of range")
		}
	}
}
