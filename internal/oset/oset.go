// Package oset provides an order-statistic set of integers backed by a
// red-black tree, as required by algorithm KKβ for its FREE, DONE and TRY
// sets (Kentros & Kiayias, §3).
//
// In addition to the usual Insert/Delete/Contains operations in O(log n),
// the set supports rank queries: Select(i) returns the i-th smallest
// element, Rank(v) returns the number of elements ≤ v, and SelectExcluding
// implements the paper's rank(SET1, SET2, i) — the element of SET1\SET2
// with rank i — in O(|SET2|·log n), matching the cost model used in the
// paper's work-complexity analysis (Theorem 5.6).
package oset

const (
	red   = true
	black = false
)

type node struct {
	key                 int
	size                int // number of keys in the subtree rooted here
	color               bool
	left, right, parent *node
}

// Set is an ordered set of ints with order-statistic queries.
// The zero value is not usable; call New.
//
// Removed nodes are kept on an internal free list and reused by later
// insertions, so a set that is repeatedly filled and cleared to a similar
// size reaches a steady state where no operation allocates. The round-based
// runtime (internal/conc, internal/dispatch) relies on this to keep its
// per-round hot path allocation-free.
type Set struct {
	root    *node
	nil_    *node // sentinel leaf (black)
	free    *node // recycled nodes, linked through right
	nfree   int   // length of the free list
	scratch []int // SelectExcluding's reusable exclusion snapshot
}

// New returns an empty set. If keys are given they are inserted.
func New(keys ...int) *Set {
	sentinel := &node{color: black}
	s := &Set{root: sentinel, nil_: sentinel}
	for _, k := range keys {
		s.Insert(k)
	}
	return s
}

// NewRange returns the set {lo, lo+1, ..., hi}. It builds a balanced tree
// in O(hi-lo+1) without per-key rebalancing, which matters when
// initializing FREE = J for large n.
func NewRange(lo, hi int) *Set {
	s := New()
	s.ResetRange(lo, hi)
	return s
}

// ResetRange clears the set and refills it with {lo, lo+1, ..., hi},
// reusing the recycled nodes. After one warm-up fill at a given size, the
// call allocates nothing — the property Proc.Reset depends on to restart a
// round without touching the heap. lo > hi leaves the set empty.
func (s *Set) ResetRange(lo, hi int) {
	s.recycle(s.root)
	s.root = s.nil_
	if lo > hi {
		return
	}
	count := hi - lo + 1
	// A mid-split tree of size c has every sentinel at depth H-1 or H,
	// where H = ceil(log2(c+1)). Coloring exactly the nodes at the deepest
	// level (depth H-1) red gives a uniform black-height of H-1 along
	// every path and no red-red violations (the deepest level's parents
	// are all black), so the result is a valid red-black tree.
	maxDepth := ceilLog2(count+1) - 1
	s.root = s.buildBalanced(lo, hi, s.nil_, 0, maxDepth)
	s.root.color = black // a single-node tree would otherwise have a red root
}

func (s *Set) buildBalanced(lo, hi int, parent *node, depth, redDepth int) *node {
	if lo > hi {
		return s.nil_
	}
	mid := lo + (hi-lo)/2
	n := s.newNode(mid)
	n.size = hi - lo + 1
	n.color = black
	n.parent = parent
	if depth == redDepth {
		n.color = red
	}
	n.left = s.buildBalanced(lo, mid-1, n, depth+1, redDepth)
	n.right = s.buildBalanced(mid+1, hi, n, depth+1, redDepth)
	return n
}

// newNode pops a recycled node (or allocates one) and initializes it as a
// red leaf with the given key.
func (s *Set) newNode(key int) *node {
	n := s.free
	if n == nil {
		n = &node{}
	} else {
		s.free = n.right
		s.nfree--
	}
	n.key = key
	n.size = 1
	n.color = red
	n.left = s.nil_
	n.right = s.nil_
	n.parent = nil
	return n
}

// recycle pushes the subtree rooted at x onto the free list.
func (s *Set) recycle(x *node) {
	if x == s.nil_ {
		return
	}
	s.recycle(x.left)
	s.recycle(x.right)
	s.recycleOne(x)
}

// recycleOne pushes a single detached node onto the free list.
func (s *Set) recycleOne(x *node) {
	x.left, x.parent = nil, nil
	x.right = s.free
	s.free = x
	s.nfree++
}

// Reserve grows the node pool so the set can hold at least n elements
// without any further allocation — the prewarming step that makes a
// fill/clear cycle deterministically allocation-free from the first round.
func (s *Set) Reserve(n int) {
	for s.root.size+s.nfree < n {
		s.recycleOne(&node{})
	}
}

// ReserveSelectScratch pre-sizes the scratch buffer SelectExcluding uses,
// so calls with exclusion sets of up to n elements never allocate.
func (s *Set) ReserveSelectScratch(n int) {
	if cap(s.scratch) < n {
		s.scratch = make([]int, 0, n)
	}
}

// ceilLog2 returns ceil(log2(v)) for v ≥ 1.
func ceilLog2(v int) int {
	r, p := 0, 1
	for p < v {
		p <<= 1
		r++
	}
	return r
}

// Len returns the number of elements.
func (s *Set) Len() int {
	return s.root.size
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	return s.find(v) != s.nil_
}

func (s *Set) find(v int) *node {
	x := s.root
	for x != s.nil_ {
		switch {
		case v < x.key:
			x = x.left
		case v > x.key:
			x = x.right
		default:
			return x
		}
	}
	return s.nil_
}

// Min returns the smallest element; ok is false when the set is empty.
func (s *Set) Min() (v int, ok bool) {
	if s.root == s.nil_ {
		return 0, false
	}
	x := s.root
	for x.left != s.nil_ {
		x = x.left
	}
	return x.key, true
}

// Max returns the largest element; ok is false when the set is empty.
func (s *Set) Max() (v int, ok bool) {
	if s.root == s.nil_ {
		return 0, false
	}
	x := s.root
	for x.right != s.nil_ {
		x = x.right
	}
	return x.key, true
}

// Insert adds v to the set. It reports whether v was absent.
func (s *Set) Insert(v int) bool {
	y := s.nil_
	x := s.root
	for x != s.nil_ {
		y = x
		switch {
		case v < x.key:
			x = x.left
		case v > x.key:
			x = x.right
		default:
			return false // already present
		}
	}
	z := s.newNode(v)
	z.parent = y
	switch {
	case y == s.nil_:
		s.root = z
	case v < y.key:
		y.left = z
	default:
		y.right = z
	}
	for p := y; p != s.nil_; p = p.parent {
		p.size++
	}
	s.insertFixup(z)
	return true
}

// Delete removes v from the set. It reports whether v was present.
func (s *Set) Delete(v int) bool {
	z := s.find(v)
	if z == s.nil_ {
		return false
	}
	s.deleteNode(z)
	return true
}

// Select returns the element with rank i (1-indexed: Select(1) is the
// minimum). ok is false when i is out of range.
func (s *Set) Select(i int) (v int, ok bool) {
	if i < 1 || i > s.root.size {
		return 0, false
	}
	x := s.root
	for {
		r := x.left.size + 1
		switch {
		case i == r:
			return x.key, true
		case i < r:
			x = x.left
		default:
			i -= r
			x = x.right
		}
	}
}

// Rank returns the number of elements ≤ v.
func (s *Set) Rank(v int) int {
	r := 0
	x := s.root
	for x != s.nil_ {
		if v < x.key {
			x = x.left
		} else {
			r += x.left.size + 1
			x = x.right
		}
	}
	return r
}

// SelectExcluding returns the element of rank i (1-indexed) in the set
// difference s \ excl. This is the paper's rank(SET1, SET2, i) operation.
// ok is false when s \ excl has fewer than i elements.
//
// Cost: O((|excl|+k)·log n) where k is the number of fixpoint iterations
// (k ≤ |excl|+1), matching the paper's O(|SET2|·log n) charge for the
// sizes arising in KKβ (|TRY| < m).
func (s *Set) SelectExcluding(excl *Set, i int) (v int, ok bool) {
	if i < 1 {
		return 0, false
	}
	// Gather the exclusions that are actually present in s, in order. The
	// snapshot lives in a scratch buffer reused across calls, so a set
	// whose exclusion sizes have stabilized performs this without
	// allocating (see ReserveSelectScratch).
	present := s.scratch[:0]
	excl.Ascend(func(e int) bool {
		if s.Contains(e) {
			present = append(present, e)
		}
		return true
	})
	s.scratch = present[:0]
	if s.Len()-len(present) < i {
		return 0, false
	}
	// Fixpoint: the i-th element of s\excl is the j-th element of s where
	// j = i + |{e in present : e ≤ candidate}|. The count is monotone in
	// the candidate, so iterating converges in ≤ len(present)+1 rounds.
	j := i
	for {
		x, xok := s.Select(j)
		if !xok {
			return 0, false
		}
		c := countLeq(present, x)
		if j == i+c {
			return x, true
		}
		j = i + c
	}
}

// countLeq returns the number of elements of the sorted slice a that are ≤ v.
func countLeq(a []int, v int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Ascend calls fn for each element in ascending order until fn returns false.
func (s *Set) Ascend(fn func(v int) bool) {
	s.ascend(s.root, fn)
}

func (s *Set) ascend(x *node, fn func(v int) bool) bool {
	if x == s.nil_ {
		return true
	}
	if !s.ascend(x.left, fn) {
		return false
	}
	if !fn(x.key) {
		return false
	}
	return s.ascend(x.right, fn)
}

// Slice returns all elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Ascend(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := New()
	c.root = c.cloneNode(s, s.root, c.nil_)
	return c
}

func (c *Set) cloneNode(src *Set, x *node, parent *node) *node {
	if x == src.nil_ {
		return c.nil_
	}
	n := &node{key: x.key, size: x.size, color: x.color, parent: parent}
	n.left = c.cloneNode(src, x.left, n)
	n.right = c.cloneNode(src, x.right, n)
	return n
}

// Clear removes all elements. The nodes are recycled for later insertions.
func (s *Set) Clear() {
	s.recycle(s.root)
	s.root = s.nil_
}

// --- red-black machinery (CLRS-style with sentinel) ---

func (s *Set) leftRotate(x *node) {
	y := x.right
	x.right = y.left
	if y.left != s.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == s.nil_:
		s.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	y.size = x.size
	x.size = x.left.size + x.right.size + 1
}

func (s *Set) rightRotate(x *node) {
	y := x.left
	x.left = y.right
	if y.right != s.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == s.nil_:
		s.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	y.size = x.size
	x.size = x.left.size + x.right.size + 1
}

func (s *Set) insertFixup(z *node) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					s.leftRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				s.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					s.rightRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				s.leftRotate(z.parent.parent)
			}
		}
	}
	s.root.color = black
}

func (s *Set) transplant(u, v *node) {
	switch {
	case u.parent == s.nil_:
		s.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (s *Set) minimum(x *node) *node {
	for x.left != s.nil_ {
		x = x.left
	}
	return x
}

func (s *Set) deleteNode(z *node) {
	y := z
	yOrigColor := y.color
	var x *node
	switch {
	case z.left == s.nil_:
		x = z.right
		s.transplant(z, z.right)
		s.decrementSizes(z.parent)
	case z.right == s.nil_:
		x = z.left
		s.transplant(z, z.left)
		s.decrementSizes(z.parent)
	default:
		y = s.minimum(z.right)
		yOrigColor = y.color
		x = y.right
		s.decrementSizes(y.parent)
		if y.parent == z {
			x.parent = y
		} else {
			s.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		s.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
		y.size = y.left.size + y.right.size + 1
	}
	if yOrigColor == black {
		s.deleteFixup(x)
	}
	// z is detached from the tree in every case above (in the two-child
	// case y takes z's place, structurally removing z).
	s.recycleOne(z)
}

// decrementSizes walks from p to the root decrementing subtree sizes to
// account for one removed node below p (inclusive).
func (s *Set) decrementSizes(p *node) {
	for ; p != s.nil_; p = p.parent {
		p.size--
	}
}

func (s *Set) deleteFixup(x *node) {
	for x != s.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				s.leftRotate(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					s.rightRotate(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				s.leftRotate(x.parent)
				x = s.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				s.rightRotate(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					s.leftRotate(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				s.rightRotate(x.parent)
				x = s.root
			}
		}
	}
	x.color = black
}
