package jobd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConnectionSoak drives thousands of connections through one
// server in sequential waves (bounding concurrent FDs and goroutines
// so the run stays race-detector-friendly), with every connection
// submitting a handful of jobs. The oracle is the at-most-once
// contract end to end: every ACKED submission's payload index executes
// exactly once, and a long-lived subscriber sees each job id complete
// at most once.
//
// Short mode runs 8 waves of 256 connections (2048 total); full mode
// doubles the wave count.
func TestConnectionSoak(t *testing.T) {
	waves, perWave, jobsPerConn := 8, 256, 4
	if !testing.Short() {
		waves = 16
	}
	total := waves * perWave * jobsPerConn

	executed := make([]atomic.Int32, total)
	reg := NewRegistry()
	reg.Register("mark", 1, func(_ context.Context, p []byte) error {
		dec := decoder{b: p}
		executed[dec.u64()].Add(1)
		return nil
	})
	_, addr := testServer(t, Options{
		Registry: reg,
		MaxJobs:  total + (1 << 12),
		LogCells: 1 << 20,
		Shards:   2,
		Workers:  2,
		MaxBatch: 64,
		Tenants:  map[string]TenantLimits{"soak": {}},
	})

	// One long-lived subscriber across all waves: every completion event
	// for an id must arrive at most once.
	sub := testClient(t, addr, ClientOptions{})
	var evMu sync.Mutex
	evSeen := make(map[uint64]int)
	var evDup, evBad atomic.Int32
	if err := sub.Subscribe("soak", func(e Event) {
		evMu.Lock()
		evSeen[e.ID]++
		if evSeen[e.ID] > 1 {
			evDup.Add(1)
		}
		evMu.Unlock()
		if e.Status != StatusOK {
			evBad.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	var acked atomic.Int64
	var next atomic.Int64 // global payload-index allocator
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		errs := make(chan error, perWave)
		for i := 0; i < perWave; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr, ClientOptions{})
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for j := 0; j < jobsPerConn; j++ {
					idx := next.Add(1) - 1
					var p [8]byte
					putCell(p[:], idx)
					if _, err := c.Submit("soak", "mark", 1, p[:], SubmitOptions{}); err != nil {
						errs <- fmt.Errorf("submit %d: %w", idx, err)
						return
					}
					acked.Add(1)
				}
				if err := c.Ping(); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("wave %d: %v", w, err)
		}
	}

	want := int64(total)
	if got := acked.Load(); got != want {
		t.Fatalf("acked %d submissions, want %d", got, want)
	}
	waitFor(t, 60*time.Second, func() bool {
		st, err := sub.Stats()
		return err == nil && st.Jobs.Pending == 0 && int64(st.Jobs.Performed) >= want
	}, "soak jobs draining")

	for i := int64(0); i < want; i++ {
		if n := executed[i].Load(); n != 1 {
			t.Fatalf("payload index %d executed %d times, want exactly 1", i, n)
		}
	}
	st, err := sub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Duplicates != 0 {
		t.Fatalf("dispatcher reports %d duplicates", st.Jobs.Duplicates)
	}
	if d := evDup.Load(); d != 0 {
		t.Fatalf("%d job ids delivered more than one completion event", d)
	}
	if b := evBad.Load(); b != 0 {
		t.Fatalf("%d completions with non-OK status", b)
	}
	// Event delivery is best-effort per subscriber (a slow subscriber
	// drops, never wedges), so assert a sane floor rather than equality.
	evMu.Lock()
	seen := len(evSeen)
	evMu.Unlock()
	if seen == 0 {
		t.Fatal("subscriber saw zero completion events")
	}
	t.Logf("soak: %d conns, %d jobs, %d events seen", waves*perWave, total, seen)
}
