package jobd

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/membackend"
)

const testLogCells = 1 << 14

// TestDescLogRoundTrip: records appended to the log come back verbatim
// after a close/reopen, in order, and the scan stops at the first
// uncommitted header.
func TestDescLogRoundTrip(t *testing.T) {
	spec := "mmap:" + filepath.Join(t.TempDir(), "log")
	l, recs, err := openDescLog(spec, testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	want := []desc{
		{tenant: "a", task: "t1", version: 1, pri: 0, deadline: 0, payload: []byte("hello")},
		{tenant: "b", task: "t2", version: 7, pri: 1, deadline: 12345, payload: nil},
		{tenant: "a", task: "t1", version: 1, pri: -1, deadline: -1, payload: make([]byte, 100)},
	}
	for i := range want {
		if err := l.append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := openDescLog(spec, testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(got) != len(want) {
		t.Fatalf("reopened log has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if g.tenant != w.tenant || g.task != w.task || g.version != w.version ||
			g.pri != w.pri || g.deadline != w.deadline || string(g.payload) != string(w.payload) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
	// Appending after reopen continues from the scan cursor.
	if err := l2.append(&desc{tenant: "c", task: "t3", version: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestDescLogTornTail: payload cells written without their header cell
// (the crash window inside append) are invisible to the scan and get
// overwritten by the next append.
func TestDescLogTornTail(t *testing.T) {
	spec := "mmap:" + filepath.Join(t.TempDir(), "log")
	l, _, err := openDescLog(spec, testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append(&desc{tenant: "a", task: "t", version: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: garbage payload cells at the cursor, no
	// header committed.
	l.b.Write(l.cur+1, 0x6741734761726241)
	l.b.Write(l.cur+2, 0x6741734761726241)
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := openDescLog(spec, testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(recs) != 1 {
		t.Fatalf("scan found %d records, want 1 (torn tail must be invisible)", len(recs))
	}
	if err := l2.append(&desc{tenant: "b", task: "t", version: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestDescLogFull: an append beyond capacity fails with errLogFull and
// hasRoom predicts it.
func TestDescLogFull(t *testing.T) {
	spec := "mmap:" + filepath.Join(t.TempDir(), "log")
	l, _, err := openDescLog(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	d := desc{tenant: "t", task: "x", version: 1, payload: make([]byte, 64)}
	if l.hasRoom(21 + 1 + 1 + 64) {
		t.Fatal("hasRoom claims a 64-byte payload fits in 8 cells")
	}
	if err := l.append(&d); err != errLogFull {
		t.Fatalf("append = %v, want errLogFull", err)
	}
}

// durableServer builds a server over a durable mmap family rooted in
// dir. The registry counts executions of task "mark" per payload index.
func durableServer(t *testing.T, dir string, executed *[]atomic.Int32) (*Server, string) {
	t.Helper()
	reg := NewRegistry()
	reg.Register("mark", 1, func(_ context.Context, p []byte) error {
		dec := decoder{b: p}
		idx := dec.u64()
		(*executed)[idx].Add(1)
		return nil
	})
	s, err := New(Options{
		Registry: reg,
		Backend:  "mmap:" + filepath.Join(dir, "jobd"),
		MaxJobs:  1 << 12,
		LogCells: testLogCells,
		Shards:   2,
		Workers:  2,
		MaxBatch: 32,
		Tenants:  map[string]TenantLimits{"t": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, addr
}

// TestRecoveryDedupe: a cleanly closed server performed everything it
// admitted; reopening replays every descriptor and ALL of them resolve
// Recovered — nothing runs twice.
func TestRecoveryDedupe(t *testing.T) {
	dir := t.TempDir()
	executed := make([]atomic.Int32, 16)
	s1, addr := durableServer(t, dir, &executed)
	c := testClient(t, addr, ClientOptions{})
	ids := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		var p [8]byte
		putCell(p[:], int64(i))
		id, err := c.Submit("t", "mark", 1, p[:], SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = true
	}
	c.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if n := executed[i].Load(); n != 1 {
			t.Fatalf("job %d executed %d times before restart", i, n)
		}
	}

	s2, addr2 := durableServer(t, dir, &executed)
	defer s2.Close()
	c2 := testClient(t, addr2, ClientOptions{})
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 10 || st.Reexecuted != 0 {
		t.Fatalf("replayed=%d reexecuted=%d, want 10/0", st.Replayed, st.Reexecuted)
	}
	if st.Jobs.Recovered != 10 || st.Jobs.Duplicates != 0 {
		t.Fatalf("jobs = %+v, want 10 recovered, 0 duplicates", st.Jobs)
	}
	for i := 0; i < 10; i++ {
		if n := executed[i].Load(); n != 1 {
			t.Fatalf("job %d executed %d times after replay (duplicate!)", i, n)
		}
	}
	// The id stream continues past the replayed block: a fresh
	// submission must not collide with any replayed id.
	id, err := c2.Submit("t", "mark", 1, func() []byte { var p [8]byte; putCell(p[:], 11); return p[:] }(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ids[id] {
		t.Fatalf("post-replay id %d collides with a replayed id", id)
	}
}

// TestRecoveryReexecute: descriptors that made it into the log but
// never into a shard journal — the process died after admission,
// before execution — RE-RUN on reopen, exactly once each. The state is
// constructed exactly as the crash leaves it: a populated descriptor
// log next to empty shard journals.
func TestRecoveryReexecute(t *testing.T) {
	dir := t.TempDir()
	spec := "mmap:" + filepath.Join(dir, "jobd")
	l, _, err := openDescLog(membackend.WithSuffix(spec, ".desclog"), testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var p [8]byte
		putCell(p[:], int64(i))
		if err := l.append(&desc{tenant: "t", task: "mark", version: 1, payload: p[:]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	executed := make([]atomic.Int32, 16)
	s, addr := durableServer(t, dir, &executed)
	defer s.Close()
	c := testClient(t, addr, ClientOptions{})
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 5 {
		t.Fatalf("replayed=%d, want 5", st.Replayed)
	}
	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < 5; i++ {
			if executed[i].Load() != 1 {
				return false
			}
		}
		return true
	}, "replayed descriptors re-executing")
	waitFor(t, 10*time.Second, func() bool {
		st, err := c.Stats()
		return err == nil && st.Reexecuted == 5
	}, "reexecuted counter")
	for i := 0; i < 5; i++ {
		if n := executed[i].Load(); n != 1 {
			t.Fatalf("descriptor %d executed %d times", i, n)
		}
	}
}

// TestRecoveryMixed is the heart of the contract: a log where a prefix
// was performed (journaled by incarnation 1) and a suffix was admitted
// but never run. Reopening dedupes the prefix and re-executes the
// suffix — zero duplicates, zero losses.
func TestRecoveryMixed(t *testing.T) {
	dir := t.TempDir()
	executed := make([]atomic.Int32, 16)
	s1, addr := durableServer(t, dir, &executed)
	c := testClient(t, addr, ClientOptions{})
	for i := 0; i < 3; i++ {
		var p [8]byte
		putCell(p[:], int64(i))
		if _, err := c.Submit("t", "mark", 1, p[:], SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := s1.Close(); err != nil { // performs and journals jobs 0..2
		t.Fatal(err)
	}

	// Simulate the crash window: two more descriptors reach the log but
	// the process dies before they are submitted (no journal entries).
	spec := "mmap:" + filepath.Join(dir, "jobd")
	l, recs, err := openDescLog(membackend.WithSuffix(spec, ".desclog"), testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("log has %d records, want 3", len(recs))
	}
	for i := 3; i < 5; i++ {
		var p [8]byte
		putCell(p[:], int64(i))
		if err := l.append(&desc{tenant: "t", task: "mark", version: 1, payload: p[:]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	s2, addr2 := durableServer(t, dir, &executed)
	defer s2.Close()
	c2 := testClient(t, addr2, ClientOptions{})
	waitFor(t, 10*time.Second, func() bool {
		st, err := c2.Stats()
		return err == nil && st.Jobs.Pending == 0 && st.Replayed == 5
	}, "replay settling")
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Recovered != 3 {
		t.Fatalf("recovered=%d, want 3", st.Jobs.Recovered)
	}
	waitFor(t, 10*time.Second, func() bool {
		st, err := c2.Stats()
		return err == nil && st.Reexecuted == 2
	}, "reexecuted counter")
	for i := 0; i < 5; i++ {
		if n := executed[i].Load(); n != 1 {
			t.Fatalf("job %d executed %d times across incarnations, want exactly 1", i, n)
		}
	}
	if st.Jobs.Duplicates != 0 {
		t.Fatalf("duplicates: %d", st.Jobs.Duplicates)
	}
}

// TestReplayUnregisteredTask: a logged descriptor whose task has
// vanished from the registry still replays (the id stream must line
// up) but resolves as performed-with-error instead of running.
func TestReplayUnregisteredTask(t *testing.T) {
	dir := t.TempDir()
	spec := "mmap:" + filepath.Join(dir, "jobd")
	l, _, err := openDescLog(membackend.WithSuffix(spec, ".desclog"), testLogCells)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append(&desc{tenant: "t", task: "gone", version: 9, payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	executed := make([]atomic.Int32, 1)
	s, addr := durableServer(t, dir, &executed)
	defer s.Close()
	c := testClient(t, addr, ClientOptions{})
	waitFor(t, 10*time.Second, func() bool {
		st, err := c.Stats()
		return err == nil && st.Replayed == 1 && st.Jobs.Performed == 1 && st.Jobs.Pending == 0
	}, "unregistered replay resolving")
	if executed[0].Load() != 0 {
		t.Fatal("the placeholder for an unregistered task must not touch real task state")
	}
}
