package jobd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures RunLoad, the load-generator harness behind
// `amo-jobd -load` and the many-connection soak.
type LoadOptions struct {
	// Addr is the server to hammer. Required.
	Addr string
	// Conns is the number of concurrent client connections (default 16).
	Conns int
	// Jobs is the submissions per connection (default 100).
	Jobs int
	// Tenants are cycled through round-robin per connection (default
	// ["load"]).
	Tenants []string
	// Task and Version name the registered task to submit (default
	// "noop" v1).
	Task    string
	Version uint32
	// PayloadSize pads each submission's payload to this many bytes
	// (the first 8 carry the submission's sequence number).
	PayloadSize int
	// HighEvery makes every Nth submission High priority (0 = never).
	HighEvery int
	// Subscribe adds one extra connection subscribed to every tenant,
	// and the run waits (up to DrainTimeout) until it has seen a
	// completion event for every accepted job.
	Subscribe bool
	// DrainTimeout bounds the post-submission completion wait
	// (default 30s).
	DrainTimeout time.Duration
}

// LoadReport is RunLoad's outcome.
type LoadReport struct {
	Conns     int
	Submitted int
	Accepted  uint64
	Quota     uint64 // rejections that, by contract, burned no job ids
	Capacity  uint64
	Failed    uint64 // transport or unexpected server errors
	Events    uint64 // completion events observed (Subscribe only)
	Elapsed   time.Duration
}

// Throughput is accepted submissions per second.
func (r LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted) / r.Elapsed.Seconds()
}

func (r LoadReport) String() string {
	return fmt.Sprintf("conns=%d submitted=%d accepted=%d quota=%d capacity=%d failed=%d events=%d elapsed=%s throughput=%.0f/s",
		r.Conns, r.Submitted, r.Accepted, r.Quota, r.Capacity, r.Failed, r.Events, r.Elapsed.Round(time.Millisecond), r.Throughput())
}

// RunLoad opens o.Conns pipelined connections and pushes o.Jobs
// submissions down each. Quota and capacity rejections are expected
// outcomes (that is what admission control is for) and are counted, not
// failed.
func RunLoad(o LoadOptions) (LoadReport, error) {
	if o.Addr == "" {
		return LoadReport{}, fmt.Errorf("jobd: LoadOptions.Addr is required")
	}
	if o.Conns == 0 {
		o.Conns = 16
	}
	if o.Jobs == 0 {
		o.Jobs = 100
	}
	if len(o.Tenants) == 0 {
		o.Tenants = []string{"load"}
	}
	if o.Task == "" {
		o.Task = "noop"
		if o.Version == 0 {
			o.Version = 1
		}
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 30 * time.Second
	}

	var rep LoadReport
	rep.Conns = o.Conns
	rep.Submitted = o.Conns * o.Jobs
	var accepted, quota, capacity, failed, events atomic.Uint64

	var sub *Client
	if o.Subscribe {
		var err error
		sub, err = Dial(o.Addr, ClientOptions{Name: "load-subscriber", Redial: true})
		if err != nil {
			return rep, fmt.Errorf("jobd: load subscriber dial: %w", err)
		}
		defer sub.Close()
		for _, t := range o.Tenants {
			if err := sub.Subscribe(t, func(Event) { events.Add(1) }); err != nil {
				return rep, fmt.Errorf("jobd: load subscribe %q: %w", t, err)
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < o.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(o.Addr, ClientOptions{Name: fmt.Sprintf("load-%d", g)})
			if err != nil {
				failed.Add(uint64(o.Jobs))
				return
			}
			defer c.Close()
			payload := make([]byte, max(8, o.PayloadSize))
			for i := 0; i < o.Jobs; i++ {
				tenant := o.Tenants[(g+i)%len(o.Tenants)]
				var so SubmitOptions
				if o.HighEvery > 0 && i%o.HighEvery == 0 {
					so.Priority = PriorityHigh
				}
				seq := uint64(g)*uint64(o.Jobs) + uint64(i)
				putCell(payload, int64(seq))
				_, err := c.Submit(tenant, o.Task, o.Version, payload, so)
				switch {
				case err == nil:
					accepted.Add(1)
				case IsQuota(err):
					quota.Add(1)
				case IsCapacity(err):
					capacity.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	if o.Subscribe {
		deadline := time.Now().Add(o.DrainTimeout)
		for events.Load() < accepted.Load() && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	rep.Accepted = accepted.Load()
	rep.Quota = quota.Load()
	rep.Capacity = capacity.Load()
	rep.Failed = failed.Load()
	rep.Events = events.Load()
	return rep, nil
}
