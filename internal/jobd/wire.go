// Package jobd is the multi-tenant networked job service over the
// at-most-once engine: clients submit NAMED, REGISTERED task types over
// a compact length-prefixed binary TCP protocol, and the server runs
// them through a dispatch.Dispatcher with the full at-most-once,
// durability and observability stack underneath.
//
// The package has four parts:
//
//   - Registry: name+version → func(ctx, payload) — the task types a
//     server instance knows how to run. A submission names a task; the
//     payload bytes travel through the wire, the descriptor log and the
//     worker unchanged. Because descriptors are serializable, durable
//     recovery can RE-RUN work after a process death, not merely skip
//     what already ran.
//   - Server: accepts connections, enforces per-tenant admission quotas,
//     appends an admitted submission's descriptor to a durable
//     descriptor log, submits it to the dispatcher, and streams
//     completion events to subscribed clients. The architecture is the
//     voxelcraft discipline (ROADMAP item 2): network goroutines only
//     enqueue and dequeue; ONE authoritative core loop owns every piece
//     of mutable jobd state (tenant table, descriptor log, subscriber
//     registry) and is the dispatcher's only submitter — which makes
//     the submission order, and therefore the job-id sequence, a
//     deterministic function of the descriptor log. That determinism is
//     what turns the log into a recovery mechanism: replaying it
//     re-submits the identical stream, the dispatcher's journal dedupes
//     everything a previous incarnation performed, and the remainder
//     re-executes exactly once (see desclog.go).
//   - Client: a pipelined client with auto-redial. In-flight submits
//     FAIL on a connection drop instead of being resent: an unacked
//     submit may or may not have been admitted, and blind resend would
//     re-admit it under a fresh id — the one thing an at-most-once
//     front door must never do. Completion subscriptions survive the
//     redial.
//   - Load: the load-generator harness behind `amo-jobd -load` and the
//     many-connection soak.
//
// See DESIGN.md §15 for the wire format, the tenant/quota model and the
// descriptor-journaling crash-window analysis.
package jobd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format. Identical framing discipline to internal/netmem (§8):
// every message, both directions, is one frame —
//
//	uint32  length of the rest of the frame (op + seq + payload)
//	uint8   op code
//	uint32  seq — client-chosen; the server echoes it in the reply
//	...     op-specific payload
//
// All integers are little-endian; strings are uint16 length + bytes.
// The server replies to every request IN REQUEST ORDER on the same
// connection (every request is routed through the core loop, which
// processes serially), which is what makes client-side pipelining
// sound. Completion events are unsolicited server→client frames with
// seq 0, interleaved between replies; clients dispatch on the op code.
const (
	// Client → server.
	jopHello       byte = 1 // proto u32, client string           → jopHelloOK
	jopSubmit      byte = 2 // tenant str, task str, ver u32, pri i8, deadline i64 (unix ns, 0 = none), payload u32+bytes → jopSubmitOK
	jopSubscribe   byte = 3 // tenant str                         → jopAck; events flow until unsubscribe or close
	jopUnsubscribe byte = 4 // tenant str                         → jopAck
	jopStats       byte = 5 // (empty)                            → jopStatsOK
	jopPing        byte = 6 // (empty)                            → jopAck

	// Server → client.
	jopAck      byte = 16 // (empty)
	jopHelloOK  byte = 17 // proto u32, incarnation str (the server process's obs incarnation, for cross-process stitching)
	jopSubmitOK byte = 18 // id u64 — the job's dispatcher-wide id
	jopStatsOK  byte = 19 // JSON document (rest of frame)
	jopEvent    byte = 20 // seq 0: tenant str, id u64, status u8, task str, errmsg str
	jopErr      byte = 31 // code u16, msg string
)

// protoVersion is the wire protocol revision carried in hello frames; a
// server rejects hellos from a different revision so incompatibilities
// fail loudly at connect time instead of as frame soup later.
const protoVersion uint32 = 1

// Completion-event statuses (jopEvent status byte). They mirror the
// dispatcher's JobResult: exactly one event is emitted per admitted job
// — completion resolution is exactly-once because it is driven by the
// completion table's exactly-once callbacks.
const (
	evOK        byte = 0 // payload ran, returned nil
	evError     byte = 1 // payload ran, returned an error (errmsg carries it)
	evExpired   byte = 2 // deadline passed before the round was assembled; never ran
	evRecovered byte = 3 // deduped against a previous incarnation's journal; did not run again
	evCancelled byte = 4 // submission ctx dead at round assembly; never ran
)

// Error codes carried by jopErr frames.
const (
	codeProto       uint16 = 1 // malformed frame, bad op sequence, or protocol-version mismatch
	codeUnknownTask uint16 = 2 // task name+version not in the server's registry
	codeQuota       uint16 = 3 // tenant at MaxPending, or High quota exhausted
	codeCapacity    uint16 = 4 // server at MaxJobs or descriptor log full
	codeClosed      uint16 = 5 // server shutting down
	codeTenant      uint16 = 6 // unknown tenant (no configured limits, no default)
	codeTooBig      uint16 = 7 // payload exceeds MaxPayload
)

const (
	// maxFrame bounds a frame's self-declared length; anything larger is
	// treated as stream corruption, not an allocation request.
	maxFrame = 1 << 21
	// frameOverhead is op + seq.
	frameOverhead = 5
)

// writeFrame appends one frame to w. The caller flushes.
func writeFrame(w *bufio.Writer, op byte, seq uint32, payload []byte) error {
	var hdr [4 + frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameOverhead+len(payload)))
	hdr[4] = op
	binary.LittleEndian.PutUint32(hdr[5:], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameBytes is the on-wire size of a frame with the given payload.
func frameBytes(payloadLen int) uint64 { return uint64(4 + frameOverhead + payloadLen) }

// readFrame reads one frame, reusing buf when it is big enough. It
// returns the (possibly grown) buffer for the next call; payload
// aliases it, so anything retained past the next read must be copied.
func readFrame(r *bufio.Reader, buf []byte) (op byte, seq uint32, payload, bufOut []byte, err error) {
	bufOut = buf
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < frameOverhead || n > maxFrame {
		err = fmt.Errorf("jobd: corrupt frame length %d", n)
		return
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
		bufOut = buf
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	op = buf[0]
	seq = binary.LittleEndian.Uint32(buf[1:5])
	payload = buf[frameOverhead:]
	return
}

// Payload append helpers.

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// decoder is a cursor over a frame payload. The first malformed read
// poisons it; done() reports that error, or complains about trailing
// bytes — a frame must be consumed exactly.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("jobd: truncated frame payload")
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// bytes reads a u32-prefixed byte string, COPYING it out of the frame
// buffer (payloads outlive the frame: they ride descriptors and worker
// invocations).
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[:n])
	d.b = d.b[n:]
	return p
}

// done returns the accumulated decode error, or a protocol error when
// payload bytes are left over.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("jobd: %d trailing bytes in frame payload", len(d.b))
	}
	return nil
}
