package jobd

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testServer starts a volatile server with test-sized defaults and
// returns it with its bound address. Closed via t.Cleanup.
func testServer(t *testing.T, o Options) (*Server, string) {
	t.Helper()
	if o.Registry == nil {
		o.Registry = NewRegistry()
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr
}

func testClient(t *testing.T, addr string, o ClientOptions) *Client {
	t.Helper()
	c, err := Dial(addr, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// eventCollector records streamed events.
type eventCollector struct {
	mu  sync.Mutex
	evs []Event
}

func (ec *eventCollector) add(e Event) {
	ec.mu.Lock()
	ec.evs = append(ec.evs, e)
	ec.mu.Unlock()
}

func (ec *eventCollector) snapshot() []Event {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return append([]Event(nil), ec.evs...)
}

func (ec *eventCollector) count() int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return len(ec.evs)
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout: " + msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitAndEvents: two tenants submit a registered task; each
// subscriber sees exactly its own tenant's completions with the task
// name, the payload-determined outcome and the job id intact.
func TestSubmitAndEvents(t *testing.T) {
	reg := NewRegistry()
	var ran atomic.Int64
	reg.Register("count", 1, func(_ context.Context, p []byte) error {
		ran.Add(1)
		if string(p) == "boom" {
			return errors.New("boom requested")
		}
		return nil
	})
	_, addr := testServer(t, Options{
		Registry: reg,
		Tenants:  map[string]TenantLimits{"alpha": {}, "beta": {}},
	})

	c := testClient(t, addr, ClientOptions{Name: "test"})
	var alpha, beta eventCollector
	if err := c.Subscribe("alpha", alpha.add); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("beta", beta.add); err != nil {
		t.Fatal(err)
	}

	idA, err := c.Submit("alpha", "count", 1, []byte("ok"), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := c.Submit("beta", "count", 1, []byte("boom"), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if idA == 0 || idB == 0 || idA == idB {
		t.Fatalf("bad ids %d, %d", idA, idB)
	}

	waitFor(t, 10*time.Second, func() bool { return alpha.count() == 1 && beta.count() == 1 },
		"completion events")
	if ran.Load() != 2 {
		t.Fatalf("task ran %d times, want 2", ran.Load())
	}
	evA := alpha.snapshot()[0]
	if evA.Tenant != "alpha" || evA.ID != idA || evA.Status != StatusOK || evA.Task != "count" {
		t.Fatalf("alpha event = %+v", evA)
	}
	evB := beta.snapshot()[0]
	if evB.Tenant != "beta" || evB.ID != idB || evB.Status != StatusError || evB.Err == "" {
		t.Fatalf("beta event = %+v", evB)
	}
}

// TestAdmissionRejections: unknown tenants, unknown tasks and oversized
// payloads are rejected with their own codes, and none of them burns a
// job id — the next accepted submission's id is still dense.
func TestAdmissionRejections(t *testing.T) {
	reg := NewRegistry()
	reg.Register("noop", 1, func(context.Context, []byte) error { return nil })
	_, addr := testServer(t, Options{
		Registry:   reg,
		MaxPayload: 64,
		Tenants:    map[string]TenantLimits{"a": {}},
	})
	c := testClient(t, addr, ClientOptions{})

	id1, err := c.Submit("a", "noop", 1, nil, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var se *ServerError
	if _, err := c.Submit("ghost", "noop", 1, nil, SubmitOptions{}); !errors.As(err, &se) || se.Code != codeTenant {
		t.Fatalf("unknown tenant: got %v, want codeTenant", err)
	}
	if _, err := c.Submit("a", "missing", 1, nil, SubmitOptions{}); !errors.As(err, &se) || se.Code != codeUnknownTask {
		t.Fatalf("unknown task: got %v, want codeUnknownTask", err)
	}
	if _, err := c.Submit("a", "noop", 2, nil, SubmitOptions{}); !errors.As(err, &se) || se.Code != codeUnknownTask {
		t.Fatalf("unknown version: got %v, want codeUnknownTask", err)
	}
	if _, err := c.Submit("a", "noop", 1, make([]byte, 65), SubmitOptions{}); !errors.As(err, &se) || se.Code != codeTooBig {
		t.Fatalf("oversized payload: got %v, want codeTooBig", err)
	}

	id2, err := c.Submit("a", "noop", 1, nil, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1+1 {
		t.Fatalf("id after rejections = %d, want %d (rejections must not burn ids)", id2, id1+1)
	}
}

// TestTenantQuota: a tenant at MaxPending is rejected with codeQuota;
// the rejection burns no id (the next accepted id is dense); and once
// the pending work resolves, the tenant is admitted again.
func TestTenantQuota(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	reg.Register("block", 1, func(ctx context.Context, _ []byte) error {
		<-release
		return nil
	})
	_, addr := testServer(t, Options{
		Registry: reg,
		Workers:  4,
		Tenants:  map[string]TenantLimits{"q": {MaxPending: 2}},
	})
	c := testClient(t, addr, ClientOptions{})
	var done eventCollector
	if err := c.Subscribe("q", done.add); err != nil {
		t.Fatal(err)
	}

	id1, err := c.Submit("q", "block", 1, nil, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Submit("q", "block", 1, nil, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1+1 {
		t.Fatalf("ids not dense: %d then %d", id1, id2)
	}

	if _, err := c.Submit("q", "block", 1, nil, SubmitOptions{}); !IsQuota(err) {
		t.Fatalf("submit at MaxPending: got %v, want quota rejection", err)
	}

	close(release)
	waitFor(t, 10*time.Second, func() bool { return done.count() == 2 }, "pending jobs resolving")

	id3, err := c.Submit("q", "block", 1, nil, SubmitOptions{})
	if err != nil {
		t.Fatalf("submit after quota freed: %v", err)
	}
	if id3 != id2+1 {
		t.Fatalf("id after quota rejection = %d, want %d (the rejection burned an id)", id3, id2+1)
	}
	waitFor(t, 10*time.Second, func() bool { return done.count() == 3 }, "final job resolving")

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ts := st.Tenants["q"]
	if ts.Admitted != 3 || ts.Rejected != 1 || ts.Pending != 0 {
		t.Fatalf("tenant stats = %+v", ts)
	}
	if st.Jobs.Duplicates != 0 {
		t.Fatalf("duplicates: %d", st.Jobs.Duplicates)
	}
}

// TestPriorityQuota: MaxHigh caps only the High class — a tenant at its
// High quota can still submit Normal work.
func TestPriorityQuota(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	reg.Register("block", 1, func(context.Context, []byte) error { <-release; return nil })
	_, addr := testServer(t, Options{
		Registry: reg,
		Workers:  4,
		Tenants:  map[string]TenantLimits{"p": {MaxPending: 10, MaxHigh: 1}},
	})
	defer close(release)
	c := testClient(t, addr, ClientOptions{})

	if _, err := c.Submit("p", "block", 1, nil, SubmitOptions{Priority: PriorityHigh}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("p", "block", 1, nil, SubmitOptions{Priority: PriorityHigh}); !IsQuota(err) {
		t.Fatalf("second High: got %v, want quota rejection", err)
	}
	if _, err := c.Submit("p", "block", 1, nil, SubmitOptions{}); err != nil {
		t.Fatalf("Normal under High quota: %v", err)
	}
}

// TestDefaultLimits: unlisted tenants ride DefaultLimits when set.
func TestDefaultLimits(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	reg.Register("block", 1, func(context.Context, []byte) error { <-release; return nil })
	_, addr := testServer(t, Options{
		Registry:      reg,
		Workers:       4,
		DefaultLimits: &TenantLimits{MaxPending: 1},
	})
	defer close(release)
	c := testClient(t, addr, ClientOptions{})

	if _, err := c.Submit("anybody", "block", 1, nil, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("anybody", "block", 1, nil, SubmitOptions{}); !IsQuota(err) {
		t.Fatalf("got %v, want quota rejection under DefaultLimits", err)
	}
	// A different tenant has its own ledger.
	if _, err := c.Submit("other", "block", 1, nil, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedSubmitters: many goroutines share one client; every
// submission gets a unique id and every completion is streamed.
func TestPipelinedSubmitters(t *testing.T) {
	reg := NewRegistry()
	var ran atomic.Int64
	reg.Register("tick", 1, func(context.Context, []byte) error { ran.Add(1); return nil })
	_, addr := testServer(t, Options{
		Registry: reg,
		Shards:   2,
		Tenants:  map[string]TenantLimits{"pipe": {}},
	})
	c := testClient(t, addr, ClientOptions{})
	var done eventCollector
	if err := c.Subscribe("pipe", done.add); err != nil {
		t.Fatal(err)
	}

	const (
		gs   = 8
		each = 50
	)
	ids := make([]uint64, gs*each)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id, err := c.Submit("pipe", "tick", 1, nil, SubmitOptions{})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids[g*each+i] = id
			}
		}(g)
	}
	wg.Wait()

	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero id %d", id)
		}
		seen[id] = true
	}
	waitFor(t, 20*time.Second, func() bool { return done.count() == gs*each }, "all completions")
	if ran.Load() != gs*each {
		t.Fatalf("ran %d, want %d", ran.Load(), gs*each)
	}
}

// TestUnsubscribe: after unsubscribing, completions stop flowing.
func TestUnsubscribe(t *testing.T) {
	reg := NewRegistry()
	reg.Register("noop", 1, func(context.Context, []byte) error { return nil })
	_, addr := testServer(t, Options{
		Registry: reg,
		Tenants:  map[string]TenantLimits{"u": {}},
	})
	c := testClient(t, addr, ClientOptions{})
	var done eventCollector
	if err := c.Subscribe("u", done.add); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("u", "noop", 1, nil, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return done.count() == 1 }, "first completion")

	if err := c.Unsubscribe("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("u", "noop", 1, nil, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	// The second completion must NOT arrive; give it a moment to prove a
	// negative by draining through a ping round trip and a beat.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := done.count(); n != 1 {
		t.Fatalf("events after unsubscribe: %d, want 1", n)
	}
}

// TestServerStats: the stats document reports tasks, admissions and the
// dispatcher's conservation counters.
func TestServerStats(t *testing.T) {
	reg := NewRegistry()
	reg.Register("noop", 1, func(context.Context, []byte) error { return nil })
	reg.Register("noop", 2, func(context.Context, []byte) error { return nil })
	s, addr := testServer(t, Options{
		Registry: reg,
		Tenants:  map[string]TenantLimits{"st": {}},
	})
	c := testClient(t, addr, ClientOptions{})
	for i := 0; i < 5; i++ {
		if _, err := c.Submit("st", "noop", 1, nil, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Incarnation == "" || st.Admitted != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Tasks) != 2 || st.Tasks[0] != "noop@v1" || st.Tasks[1] != "noop@v2" {
		t.Fatalf("tasks = %v", st.Tasks)
	}
	if st.Jobs.Submitted != 5 {
		t.Fatalf("jobs = %+v", st.Jobs)
	}
	_ = s
}

// TestHelloRequired: a first frame that is not hello, and a hello with
// the wrong protocol version, both cut the connection with codeProto.
func TestHelloRequired(t *testing.T) {
	reg := NewRegistry()
	_, addr := testServer(t, Options{Registry: reg})

	// Raw dial, send a ping first: expect jopErr{codeProto}.
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err) // proper hello works
	}
	c.Close()

	raw := func(frames func() []byte) *ServerError {
		t.Helper()
		nc, err := netDial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write(frames()); err != nil {
			t.Fatal(err)
		}
		op, _, payload, err := readOneFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if op != jopErr {
			t.Fatalf("op = %d, want jopErr", op)
		}
		dec := decoder{b: payload}
		se := &ServerError{Code: dec.u16(), Msg: dec.str()}
		return se
	}

	if se := raw(func() []byte { return encodeFrame(jopPing, 1, nil) }); se.Code != codeProto {
		t.Fatalf("ping before hello: %+v", se)
	}
	if se := raw(func() []byte {
		p := appendU32(nil, protoVersion+1)
		p = appendStr(p, "bad")
		return encodeFrame(jopHello, 1, p)
	}); se.Code != codeProto {
		t.Fatalf("bad proto version: %+v", se)
	}
}

// TestSubmitWithDeadline: a job whose deadline passes while queued
// resolves Expired and its event says so.
func TestSubmitWithDeadline(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	var expiredRan atomic.Bool
	reg.Register("block", 1, func(context.Context, []byte) error { <-release; return nil })
	reg.Register("doomed", 1, func(context.Context, []byte) error { expiredRan.Store(true); return nil })
	_, addr := testServer(t, Options{
		Registry: reg,
		Workers:  2,
		Tenants:  map[string]TenantLimits{"d": {}},
	})
	c := testClient(t, addr, ClientOptions{})
	var done eventCollector
	if err := c.Subscribe("d", done.add); err != nil {
		t.Fatal(err)
	}

	// Saturate both workers so the doomed job waits in the queue past
	// its deadline.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit("d", "block", 1, nil, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.Submit("d", "doomed", 1, nil, SubmitOptions{Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	close(release)

	waitFor(t, 10*time.Second, func() bool { return done.count() == 3 }, "all three completions")
	var expired *Event
	for _, e := range done.snapshot() {
		if e.ID == id {
			ev := e
			expired = &ev
		}
	}
	if expired == nil || expired.Status != StatusExpired {
		t.Fatalf("doomed job event = %+v, want expired", expired)
	}
	if expiredRan.Load() {
		t.Fatal("expired job's payload ran")
	}
}

// netDial and readOneFrame are raw-wire helpers for protocol tests
// that must speak frames the Client refuses to produce.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func readOneFrame(nc net.Conn) (op byte, seq uint32, payload []byte, err error) {
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(nc)
	op, seq, payload, _, err = readFrame(r, nil)
	return
}
