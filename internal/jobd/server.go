package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce/internal/dispatch"
	"atmostonce/internal/membackend"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

// TenantLimits is one tenant's admission contract. Limits are enforced
// BEFORE a submission consumes a job id or a descriptor-log slot (the
// same reserve-before-id discipline the dispatcher's bounded queues
// use), so a rejected submission burns nothing: ids stay dense and the
// durable id budget is spent only on admitted work.
type TenantLimits struct {
	// MaxPending caps the tenant's admitted-but-unresolved jobs (queued
	// plus running). 0 = unlimited.
	MaxPending int
	// MaxHigh caps how many of those may be High priority — the priority
	// quota: a tenant can always fill its pending allowance, but only
	// this much of it may jump other tenants' Normal work. 0 = unlimited.
	MaxHigh int
}

// Options configures a Server.
type Options struct {
	// Registry holds the task types this server can run. Required.
	Registry *Registry
	// Backend is the membackend spec family backing the dispatcher
	// shards (".shard<i>" suffixes) and the descriptor log (".desclog").
	// Empty means "atomic": volatile, nothing survives the process.
	Backend string
	// MaxJobs is the durable id budget across restarts (dispatch.Config
	// MaxJobs). Default 1 << 20.
	MaxJobs int
	// LogCells sizes the descriptor log in 8-byte register cells.
	// Default 1 << 20 (8 MiB) — roughly MaxJobs small descriptors. A
	// full log rejects further submissions with codeCapacity.
	LogCells int
	// MaxPayload caps one submission's payload bytes. Default 1 << 20;
	// hard ceiling just under maxFrame.
	MaxPayload int

	// Shards, Workers, MaxBatch, JournalBatch and RoundTarget pass
	// through to dispatch.Config. The dispatcher queue is always
	// UNBOUNDED here: all backpressure lives in jobd's admission (tenant
	// quotas and the id budget), checked before an id exists — a Do that
	// could fail after the descriptor is logged would desync log and
	// journal.
	Shards       int
	Workers      int
	MaxBatch     int
	JournalBatch int
	RoundTarget  time.Duration

	// Tenants maps tenant name → limits. Tenants not listed are
	// admitted under DefaultLimits when set, rejected (codeTenant)
	// when nil.
	Tenants       map[string]TenantLimits
	DefaultLimits *TenantLimits

	// MetricsAddr, when non-empty, serves the ops endpoint (/metrics,
	// /healthz, /statsz, /tracez, /debug/pprof/) through the dispatcher.
	MetricsAddr string
	// TraceSampleRate samples job timelines into the dispatcher tracer
	// (served at /tracez) — the substrate for cross-incarnation
	// stitching of re-executed work.
	TraceSampleRate float64
}

// doneMsg carries one job completion from a dispatcher callback into
// the core loop.
type doneMsg struct {
	tenant string
	task   string
	pri    dispatch.Priority
	r      dispatch.JobResult
}

// Core-request kinds (coreReq.op reuses wire op codes; opConnGone is
// the internal "connection died, forget its subscriptions" sentinel).
const opConnGone byte = 0xfe
const opBarrier byte = 0xff

// coreReq is one request routed from a connection reader (or Close)
// into the core loop.
type coreReq struct {
	op      byte
	c       *conn
	seq     uint32
	d       desc          // jopSubmit
	tenant  string        // jopSubscribe / jopUnsubscribe
	barrier chan struct{} // opBarrier: closed when the core reaches it
}

// tenantState is the core loop's per-tenant ledger.
type tenantState struct {
	limits   TenantLimits
	pending  int // admitted, not yet resolved
	high     int // of pending, High priority
	admitted uint64
	rejected uint64
}

// Server is the job service. See the package comment for the
// architecture; the load-bearing invariant is that coreLoop is the ONLY
// goroutine that touches tenants, subs, the descriptor log or the
// dispatcher's submit path.
type Server struct {
	opts Options
	reg  *Registry
	d    *dispatch.Dispatcher
	log  *descLog

	reqs     chan coreReq
	doneMu   sync.Mutex
	doneQ    []doneMsg
	doneWake chan struct{}
	quit     chan struct{}
	coreWG   sync.WaitGroup

	closing atomic.Bool
	ln      net.Listener
	lnMu    sync.Mutex
	connWG  sync.WaitGroup
	connMu  sync.Mutex
	conns   map[*conn]struct{}

	nShards int // resolved shard count, for the id-margin capacity check

	// Core-owned state — coreLoop only, no locks.
	tenants       map[string]*tenantState
	subs          map[string]map[*conn]struct{}
	admitted      uint64 // successful Do calls, replay included
	replayed      uint64
	reexecuted    uint64
	replayHorizon uint64 // max id assigned during replay; 0 = none
}

// idMargin is the headroom the capacity check keeps between admitted
// submissions and MaxJobs: each shard holds a partially consumed leased
// id block (idBlock = 64 ids), so the ids drawn from the journal budget
// can exceed the submission count by strictly less than 64 per shard.
// Keeping this margin makes dispatch.ErrJournalFull unreachable on the
// admission path — which must be true, because by Do time the
// descriptor is already in the log.
const idMargin = 64

// New opens the server: dispatcher (recovering any existing shard
// journals), descriptor log, and — before New returns — the replay of
// every logged descriptor through the dispatcher. Replayed descriptors
// the journals recorded as performed resolve Recovered without running;
// the rest re-execute. New does not listen; call Listen.
func New(o Options) (*Server, error) {
	if o.Registry == nil {
		return nil, errors.New("jobd: Options.Registry is required")
	}
	if o.Backend == "" {
		o.Backend = "atomic"
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 1 << 20
	}
	if o.LogCells == 0 {
		o.LogCells = 1 << 20
	}
	if o.MaxPayload == 0 {
		o.MaxPayload = 1 << 20
	}
	if o.MaxPayload > maxFrame-1024 {
		return nil, fmt.Errorf("jobd: MaxPayload %d exceeds the frame ceiling", o.MaxPayload)
	}
	spec := o.Backend
	d, err := dispatch.New(dispatch.Config{
		Shards:       o.Shards,
		Workers:      o.Workers,
		MaxBatch:     o.MaxBatch,
		JournalBatch: o.JournalBatch,
		RoundTarget:  o.RoundTarget,
		NewMem: func(shard, size int) (membackend.Backend, error) {
			return membackend.Open(membackend.ShardSpec(spec, shard), size)
		},
		MaxJobs:         o.MaxJobs,
		Metrics:         true,
		MetricsAddr:     o.MetricsAddr,
		TraceSampleRate: o.TraceSampleRate,
	})
	if err != nil {
		return nil, fmt.Errorf("jobd: open dispatcher: %w", err)
	}
	dlog, recs, err := openDescLog(membackend.WithSuffix(spec, ".desclog"), o.LogCells)
	if err != nil {
		d.Close()
		return nil, err
	}
	s := &Server{
		opts:     o,
		reg:      o.Registry,
		d:        d,
		log:      dlog,
		reqs:     make(chan coreReq, 1024),
		doneWake: make(chan struct{}, 1),
		quit:     make(chan struct{}),
		conns:    make(map[*conn]struct{}),
		tenants:  make(map[string]*tenantState),
		subs:     make(map[string]map[*conn]struct{}),
	}
	s.nShards = len(d.Stats().Shards)
	for name, lim := range o.Tenants {
		s.tenants[name] = &tenantState{limits: lim}
	}
	replayErr := make(chan error, 1)
	s.coreWG.Add(1)
	go s.coreLoop(recs, replayErr)
	if err := <-replayErr; err != nil {
		close(s.quit)
		s.coreWG.Wait()
		d.Close()
		dlog.close()
		return nil, err
	}
	return s, nil
}

// Listen binds addr (":0" picks a port) and starts serving; it returns
// the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	eventlog.Logger().Info("jobd_listen", "addr", ln.Addr().String(), "backend", s.opts.Backend)
	s.connWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// OpsAddr returns the ops endpoint's bound address ("" without
// MetricsAddr).
func (s *Server) OpsAddr() string { return s.d.OpsAddr() }

// Tracer returns the dispatcher's tracer (nil without a sample rate).
func (s *Server) Tracer() *obs.Tracer { return s.d.Tracer() }

// Registry returns the dispatcher's metric registry.
func (s *Server) Registry() *obs.Registry { return s.d.Registry() }

// Close drains and shuts down: stop accepting, hang up every
// connection, let the core finish its queued requests, flush the
// dispatcher so every admitted job resolves (and its completion is
// accounted), then close the dispatcher and the descriptor log.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()

	// All readers are gone; a barrier guarantees the core has processed
	// every request they enqueued before we flush.
	s.barrier()
	s.d.Flush()
	// Flush returns only after every completion callback ran (callbacks
	// fire before the dispatcher's pending count drops), so one more
	// barrier drains the completion queue through the core's ledger.
	s.barrier()

	close(s.quit)
	s.coreWG.Wait()
	err := s.d.Close()
	if lerr := s.log.close(); err == nil {
		err = lerr
	}
	eventlog.Logger().Info("jobd_closed")
	return err
}

// barrier round-trips a sentinel through the core loop.
func (s *Server) barrier() {
	ch := make(chan struct{})
	s.reqs <- coreReq{op: opBarrier, barrier: ch}
	<-ch
}

// enqueueDone hands a completion to the core loop. It must never block:
// it is called from shard loop goroutines and — for journal-recovered
// jobs — synchronously from the core loop's own Do call, so a bounded
// channel here could deadlock the server against itself. The queue is
// a mutex-guarded slice (bounded in practice by admitted-but-unresolved
// jobs) plus a 1-buffered wake signal.
func (s *Server) enqueueDone(m doneMsg) {
	s.doneMu.Lock()
	s.doneQ = append(s.doneQ, m)
	s.doneMu.Unlock()
	select {
	case s.doneWake <- struct{}{}:
	default:
	}
}

// drainDone applies every queued completion to the core ledger.
func (s *Server) drainDone() {
	s.doneMu.Lock()
	q := s.doneQ
	s.doneQ = nil
	s.doneMu.Unlock()
	for i := range q {
		s.complete(&q[i])
	}
}

// coreLoop is the authoritative loop: sole owner of the tenant ledger,
// the subscriber registry, the descriptor log and the dispatcher's
// submit path. It first replays the log (signalling replayErr), then
// serves requests and completions until quit.
func (s *Server) coreLoop(recs []desc, replayErr chan<- error) {
	defer s.coreWG.Done()
	for i := range recs {
		if err := s.replayOne(&recs[i]); err != nil {
			replayErr <- fmt.Errorf("jobd: replay descriptor %d/%d: %w", i+1, len(recs), err)
			return
		}
	}
	if n := len(recs); n > 0 {
		eventlog.Logger().Info("jobd_replayed", "descriptors", n, "horizon_id", s.replayHorizon)
	}
	replayErr <- nil
	for {
		s.drainDone()
		select {
		case r := <-s.reqs:
			s.handleReq(&r)
		case <-s.doneWake:
		case <-s.quit:
			// Final drain: no new requests can arrive (readers are gone
			// before quit), completions are already flushed.
			for {
				select {
				case r := <-s.reqs:
					s.handleReq(&r)
				default:
					s.drainDone()
					return
				}
			}
		}
	}
}

// replayOne re-submits one logged descriptor. No admission checks: the
// descriptor was admitted by a previous incarnation and MUST be
// re-submitted in log order for the id stream to line up with the shard
// journals — even if the tenant or the task has since vanished from the
// configuration. A descriptor whose task is no longer registered
// resolves as performed-with-error instead of executing.
func (s *Server) replayOne(d *desc) error {
	fn := s.reg.lookup(d.task, d.version)
	if fn == nil {
		name, ver := d.task, d.version
		eventlog.Logger().Warn("jobd_replay_task_missing", "task", name, "version", ver, "tenant", d.tenant)
		fn = func(context.Context, []byte) error {
			return fmt.Errorf("jobd: task %s@v%d no longer registered", name, ver)
		}
	}
	jdReplayed.Inc()
	s.replayed++
	id, err := s.submitDesc(d, fn)
	if err != nil {
		return err
	}
	if id > s.replayHorizon {
		s.replayHorizon = id
	}
	return nil
}

// submitDesc is the single dispatcher-submission site: it charges the
// tenant ledger and calls Do. Callers have already appended d to the
// log (admission) or are replaying it from the log.
func (s *Server) submitDesc(d *desc, fn TaskFunc) (uint64, error) {
	ts := s.tenantLedger(d.tenant)
	payload := d.payload
	t := dispatch.Task{
		Fn:       func(ctx context.Context) error { return fn(ctx, payload) },
		Priority: dispatch.Priority(d.pri),
	}
	if d.deadline != 0 {
		t.Deadline = time.Unix(0, d.deadline)
	}
	m := doneMsg{tenant: d.tenant, task: d.task, pri: t.Priority}
	t.Callback = func(r dispatch.JobResult) {
		m.r = r
		s.enqueueDone(m)
	}
	h, err := s.d.Do(context.Background(), t)
	if err != nil {
		return 0, err
	}
	ts.pending++
	if t.Priority == dispatch.High {
		ts.high++
	}
	ts.admitted++
	s.admitted++
	return h.ID, nil
}

// tenantLedger returns (creating if needed) the ledger entry for a
// tenant. Creation happens for configured tenants at New, for
// default-limit tenants at first admission, and for replayed tenants
// that are no longer configured (zero limits: the ledger must balance
// regardless of today's config).
func (s *Server) tenantLedger(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		if s.opts.DefaultLimits != nil {
			ts.limits = *s.opts.DefaultLimits
		}
		s.tenants[name] = ts
	}
	return ts
}

// handleReq dispatches one core request.
func (s *Server) handleReq(r *coreReq) {
	switch r.op {
	case jopSubmit:
		s.admit(r)
	case jopSubscribe:
		set := s.subs[r.tenant]
		if set == nil {
			set = make(map[*conn]struct{})
			s.subs[r.tenant] = set
		}
		set[r.c] = struct{}{}
		r.c.tenants[r.tenant] = struct{}{}
		r.c.sendReply(jopAck, r.seq, nil)
	case jopUnsubscribe:
		if set := s.subs[r.tenant]; set != nil {
			delete(set, r.c)
			if len(set) == 0 {
				delete(s.subs, r.tenant)
			}
		}
		delete(r.c.tenants, r.tenant)
		r.c.sendReply(jopAck, r.seq, nil)
	case jopStats:
		b, err := json.Marshal(s.statsLocked())
		if err != nil {
			r.c.sendErr(r.seq, codeProto, "stats encoding failed")
			return
		}
		r.c.sendReply(jopStatsOK, r.seq, b)
	case jopPing:
		r.c.sendReply(jopAck, r.seq, nil)
	case opConnGone:
		// r.c.tenants is core-owned state (only touched here and in
		// subscribe/unsubscribe above), so this sweep is race-free.
		for tenant := range r.c.tenants {
			if set := s.subs[tenant]; set != nil {
				delete(set, r.c)
				if len(set) == 0 {
					delete(s.subs, tenant)
				}
			}
		}
	case opBarrier:
		close(r.barrier)
	default:
		r.c.sendErr(r.seq, codeProto, fmt.Sprintf("unknown op %d", r.op))
	}
}

// admit runs the admission pipeline for one submission. Order matters:
// every rejection happens BEFORE the log append and the id draw, so
// rejections burn nothing; the log append happens BEFORE Do, so every
// id the journals can record has a descriptor to replay.
func (s *Server) admit(r *coreReq) {
	d := &r.d
	reject := func(adm int, code uint16, msg string) {
		jdSubmits[adm].Inc()
		if ts := s.tenants[d.tenant]; ts != nil {
			ts.rejected++
		}
		r.c.sendErr(r.seq, code, msg)
	}
	if s.closing.Load() {
		reject(admClosed, codeClosed, "server closing")
		return
	}
	if len(d.payload) > s.opts.MaxPayload {
		reject(admTooBig, codeTooBig, fmt.Sprintf("payload %d exceeds limit %d", len(d.payload), s.opts.MaxPayload))
		return
	}
	ts := s.tenants[d.tenant]
	if ts == nil && s.opts.DefaultLimits == nil {
		reject(admUnknownTenant, codeTenant, fmt.Sprintf("unknown tenant %q", d.tenant))
		return
	}
	fn := s.reg.lookup(d.task, d.version)
	if fn == nil {
		reject(admUnknownTask, codeUnknownTask, fmt.Sprintf("unknown task %s@v%d", d.task, d.version))
		return
	}
	if ts != nil {
		if lim := ts.limits.MaxPending; lim > 0 && ts.pending >= lim {
			reject(admQuota, codeQuota, fmt.Sprintf("tenant %q at MaxPending %d", d.tenant, lim))
			return
		}
		if lim := ts.limits.MaxHigh; lim > 0 && dispatch.Priority(d.pri) == dispatch.High && ts.high >= lim {
			reject(admQuota, codeQuota, fmt.Sprintf("tenant %q at MaxHigh %d", d.tenant, lim))
			return
		}
	}
	if s.admitted+idMargin*uint64(s.nShards) >= uint64(s.opts.MaxJobs) {
		reject(admCapacity, codeCapacity, "server job-id budget exhausted")
		return
	}
	// Exact serialized size: two u16-prefixed strings, u32 version, the
	// priority byte, the i64 deadline, the u32-prefixed payload.
	if !s.log.hasRoom(21 + len(d.tenant) + len(d.task) + len(d.payload)) {
		reject(admCapacity, codeCapacity, "descriptor log full")
		return
	}
	// Point of no return: log, then submit. Both failure modes below are
	// invariant breaches, not load conditions.
	if err := s.log.append(d); err != nil {
		reject(admCapacity, codeCapacity, "descriptor log full")
		return
	}
	id, err := s.submitDesc(d, fn)
	if err != nil {
		// Unreachable by construction (unbounded queue + id margin);
		// if it ever fires the log and journal have diverged.
		eventlog.CrashDump("jobd_submit_desync", "err", err, "tenant", d.tenant, "task", d.task)
		reject(admCapacity, codeCapacity, "submission failed after log append")
		return
	}
	jdSubmits[admAccepted].Inc()
	var buf [8]byte
	r.c.sendReply(jopSubmitOK, r.seq, appendU64(buf[:0], id))
}

// complete applies one resolved job to the ledger and fans its event
// out to the tenant's subscribers. Exactly-once delivery of the
// RESOLUTION is inherited from the completion table (the callback fires
// once per job); event DELIVERY to any one subscriber is best-effort —
// a full outbound queue drops the event and counts it.
func (s *Server) complete(m *doneMsg) {
	ts := s.tenantLedger(m.tenant)
	ts.pending--
	if m.pri == dispatch.High {
		ts.high--
	}
	status := evOK
	errmsg := ""
	switch {
	case m.r.Recovered:
		status = evRecovered
	case m.r.Cancelled:
		status = evCancelled
	case m.r.Expired:
		status = evExpired
	case m.r.Err != nil:
		status = evError
		errmsg = m.r.Err.Error()
	}
	obsDone(status)
	if m.r.ID != 0 && m.r.ID <= s.replayHorizon && (status == evOK || status == evError) {
		jdReexec.Inc()
		s.reexecuted++
	}
	set := s.subs[m.tenant]
	if len(set) == 0 {
		return
	}
	p := make([]byte, 0, 32+len(m.tenant)+len(m.task)+len(errmsg))
	p = appendStr(p, m.tenant)
	p = appendU64(p, m.r.ID)
	p = append(p, status)
	p = appendStr(p, m.task)
	p = appendStr(p, errmsg)
	f := encodeFrame(jopEvent, 0, p)
	for c := range set {
		if c.sendEvent(f) {
			jdEvStream.Inc()
		} else {
			jdEvDropped.Inc()
		}
	}
}

// ServerStats is the jopStats document.
type ServerStats struct {
	Incarnation string                 `json:"incarnation"`
	Tasks       []string               `json:"tasks"`
	Admitted    uint64                 `json:"admitted"`
	Replayed    uint64                 `json:"replayed"`
	Reexecuted  uint64                 `json:"reexecuted"`
	Tenants     map[string]TenantStats `json:"tenants"`
	Jobs        JobStats               `json:"jobs"`
}

// TenantStats is one tenant's ledger snapshot.
type TenantStats struct {
	Pending     int    `json:"pending"`
	PendingHigh int    `json:"pending_high"`
	Admitted    uint64 `json:"admitted"`
	Rejected    uint64 `json:"rejected"`
}

// JobStats summarizes the dispatcher underneath.
type JobStats struct {
	Submitted  uint64 `json:"submitted"`
	Performed  uint64 `json:"performed"`
	Pending    uint64 `json:"pending"`
	Recovered  uint64 `json:"recovered"`
	Expired    uint64 `json:"expired"`
	Cancelled  uint64 `json:"cancelled"`
	Duplicates uint64 `json:"duplicates"`
}

// statsLocked builds the stats document. Core loop only.
func (s *Server) statsLocked() ServerStats {
	st := s.d.Stats()
	out := ServerStats{
		Incarnation: obs.IncarnationString(),
		Tasks:       s.reg.Tasks(),
		Admitted:    s.admitted,
		Replayed:    s.replayed,
		Reexecuted:  s.reexecuted,
		Tenants:     make(map[string]TenantStats, len(s.tenants)),
		Jobs: JobStats{
			Submitted:  st.Submitted,
			Performed:  st.Performed,
			Pending:    st.Pending,
			Recovered:  st.Recovered,
			Expired:    st.Expired,
			Cancelled:  st.Cancelled,
			Duplicates: st.Duplicates,
		},
	}
	for name, ts := range s.tenants {
		out.Tenants[name] = TenantStats{
			Pending:     ts.pending,
			PendingHigh: ts.high,
			Admitted:    ts.admitted,
			Rejected:    ts.rejected,
		}
	}
	return out
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.connWG.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		if s.closing.Load() {
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		jdConns.Add(1)
		jdConnsTot.Inc()
		if eventlog.SinkEnabled(slog.LevelDebug) {
			eventlog.Logger().Debug("jobd_conn_open", "remote", nc.RemoteAddr().String())
		}
		s.connWG.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// forget removes a dead connection from the server's tables.
func (s *Server) forget(c *conn) {
	s.connMu.Lock()
	if _, ok := s.conns[c]; !ok {
		s.connMu.Unlock()
		return
	}
	delete(s.conns, c)
	s.connMu.Unlock()
	jdConns.Add(-1)
	// Tell the core to drop the conn's subscriptions. Best effort on a
	// quitting server: the core stops reading reqs only after every
	// reader (including this one) has exited and the Close barrier ran.
	select {
	case s.reqs <- coreReq{op: opConnGone, c: c}:
	case <-s.quit:
	}
}
