package jobd

import (
	"bufio"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"atmostonce/internal/dispatch"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

// conn is one server-side client connection: a reader goroutine that
// parses frames and routes typed requests into the core loop, and a
// writer goroutine that drains the outbound frame queue. Neither
// goroutine touches server state — the voxelcraft boundary.
//
// The outbound queue is bounded. A reply that would overflow it means
// the client pipelined thousands of requests and stopped reading — the
// connection is cut (losing a reply breaks the in-order pipelining
// contract, so the stream is unrecoverable anyway). An EVENT that would
// overflow it is dropped and counted: completion streaming is
// best-effort per subscriber, and a slow subscriber must not be able to
// wedge the core loop or other tenants.
const connOutDepth = 4096

type conn struct {
	s    *Server
	nc   net.Conn
	out  chan []byte
	done chan struct{}
	once sync.Once
	bye  atomic.Bool // reader → writer: flush, then hang up

	// tenants is this connection's subscription set. Core-loop-owned:
	// only subscribe/unsubscribe/connGone handling reads or writes it.
	tenants map[string]struct{}
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:       s,
		nc:      nc,
		out:     make(chan []byte, connOutDepth),
		done:    make(chan struct{}),
		tenants: make(map[string]struct{}),
	}
}

// close hangs up. Idempotent; safe from any goroutine.
func (c *conn) close() {
	c.once.Do(func() {
		close(c.done)
		c.nc.Close()
	})
}

// encodeFrame renders a complete frame (header included) into one
// buffer, so the writer goroutine is a pure byte pump and a fanned-out
// event can share a single buffer across subscribers (writers only
// read it).
func encodeFrame(op byte, seq uint32, payload []byte) []byte {
	f := make([]byte, 0, 4+frameOverhead+len(payload))
	f = appendU32(f, uint32(frameOverhead+len(payload)))
	f = append(f, op)
	f = appendU32(f, seq)
	return append(f, payload...)
}

// sendReply queues a reply frame. Overflow cuts the connection (see the
// connOutDepth comment).
func (c *conn) sendReply(op byte, seq uint32, payload []byte) {
	f := encodeFrame(op, seq, payload)
	select {
	case c.out <- f:
	default:
		eventlog.Logger().Warn("jobd_conn_reply_overflow", "remote", c.nc.RemoteAddr().String())
		c.close()
	}
}

// sendErr queues a jopErr reply.
func (c *conn) sendErr(seq uint32, code uint16, msg string) {
	p := make([]byte, 0, 2+2+len(msg))
	p = appendU16(p, code)
	p = appendStr(p, msg)
	c.sendReply(jopErr, seq, p)
}

// sendEvent queues an unsolicited event frame; reports false on
// overflow (the caller counts the drop).
func (c *conn) sendEvent(f []byte) bool {
	select {
	case c.out <- f:
		return true
	default:
		return false
	}
}

// writeLoop drains the outbound queue, batching flushes: it writes
// frames while more are immediately available and flushes only when
// the queue goes empty.
func (c *conn) writeLoop() {
	defer c.s.connWG.Done()
	defer c.close()
	w := bufio.NewWriter(c.nc)
	for {
		var f []byte
		select {
		case f = <-c.out:
		case <-c.done:
			return
		}
		for f != nil {
			if _, err := w.Write(f); err != nil {
				return
			}
			jdBytesOut.Add(uint64(len(f)))
			select {
			case f = <-c.out:
				continue
			default:
				f = nil
				continue
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
		if c.bye.Load() && len(c.out) == 0 {
			// The reader said goodbye (fatal protocol error): everything
			// queued before the flag is flushed, so hang up from the
			// writing side — closing from the reader would race the
			// error frame onto a dead socket.
			c.close()
			return
		}
	}
}

// sayBye asks the writer to flush what is queued and hang up. Called by
// the reader on fatal protocol errors, AFTER queueing the error reply.
func (c *conn) sayBye() {
	c.bye.Store(true)
	// Nudge the writer (a nil frame writes nothing) in case the queue is
	// already drained and it is parked in its select.
	select {
	case c.out <- nil:
	default:
		c.close()
	}
}

// readLoop parses frames and routes them. The first frame must be a
// hello with a matching protocol version; everything after flows
// through the core loop so per-connection reply order equals request
// order.
func (c *conn) readLoop() {
	defer c.s.connWG.Done()
	defer func() {
		c.s.forget(c)
		if eventlog.SinkEnabled(slog.LevelDebug) {
			eventlog.Logger().Debug("jobd_conn_close", "remote", c.nc.RemoteAddr().String())
		}
	}()
	// fatal queues an error reply and hands the hangup to the writer so
	// the reply actually reaches the wire before the socket dies.
	fatal := func(seq uint32, code uint16, msg string) {
		c.sendErr(seq, code, msg)
		c.sayBye()
	}
	r := bufio.NewReader(c.nc)
	var buf []byte
	helloed := false
	for {
		op, seq, payload, nbuf, err := readFrame(r, buf)
		if err != nil {
			c.close() // transport-level: nothing left to flush to
			return
		}
		buf = nbuf
		obsReq(op, len(payload))
		if !helloed {
			if op != jopHello {
				fatal(seq, codeProto, "first frame must be hello")
				return
			}
			dec := decoder{b: payload}
			proto := dec.u32()
			dec.str() // client name: accepted for logs, unused otherwise
			if err := dec.done(); err != nil {
				fatal(seq, codeProto, err.Error())
				return
			}
			if proto != protoVersion {
				fatal(seq, codeProto, "protocol version mismatch")
				return
			}
			p := appendU32(nil, protoVersion)
			p = appendStr(p, obs.IncarnationString())
			c.sendReply(jopHelloOK, seq, p)
			helloed = true
			continue
		}
		req := coreReq{op: op, c: c, seq: seq}
		switch op {
		case jopSubmit:
			dec := decoder{b: payload}
			req.d = desc{
				tenant:  dec.str(),
				task:    dec.str(),
				version: dec.u32(),
				pri:     int8(dec.u8()),
			}
			req.d.deadline = dec.i64()
			req.d.payload = dec.bytes()
			if err := dec.done(); err != nil {
				fatal(seq, codeProto, err.Error())
				return
			}
			if p := dispatch.Priority(req.d.pri); !(p == dispatch.Normal || p == dispatch.High || p == dispatch.Low) {
				fatal(seq, codeProto, "unknown priority")
				return
			}
		case jopSubscribe, jopUnsubscribe:
			dec := decoder{b: payload}
			req.tenant = dec.str()
			if err := dec.done(); err != nil {
				fatal(seq, codeProto, err.Error())
				return
			}
		case jopStats, jopPing:
			if len(payload) != 0 {
				fatal(seq, codeProto, "unexpected payload")
				return
			}
		case jopHello:
			fatal(seq, codeProto, "duplicate hello")
			return
		default:
			fatal(seq, codeProto, "unknown op")
			return
		}
		select {
		case c.s.reqs <- req:
		case <-c.done:
			return
		}
	}
}
