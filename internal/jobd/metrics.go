package jobd

import "atmostonce/internal/obs"

// Metric families for the job service, registered into obs.Default at
// package init (the PR 7 convention, mirroring internal/netmem): every
// binary linking jobd exposes the amo_jobd_* families from the first
// scrape, zero-valued until traffic flows. Labels are enumerable —
// op codes, admission results, completion statuses — never tenant
// names or task names, which are client-controlled and would make the
// registry grow without bound.
//
// Per-op and per-status series are pre-resolved into arrays at init so
// the conn readers and the core loop never touch the registry's
// name→series map.

// jobdOps enumerates the request op codes and their label values.
var jobdOps = [...]struct {
	op   byte
	name string
}{
	{jopHello, "hello"}, {jopSubmit, "submit"}, {jopSubscribe, "subscribe"},
	{jopUnsubscribe, "unsubscribe"}, {jopStats, "stats"}, {jopPing, "ping"},
}

// Admission results for amo_jobd_submits_total.
const (
	admAccepted = iota
	admQuota
	admCapacity
	admUnknownTask
	admUnknownTenant
	admClosed
	admTooBig
	admCount
)

var admNames = [admCount]string{
	"accepted", "quota", "capacity", "unknown_task", "unknown_tenant", "closed", "too_big",
}

var evNames = [evCancelled + 1]string{
	"ok", "error", "expired", "recovered", "cancelled",
}

var (
	jdConns     *obs.Gauge
	jdConnsTot  *obs.Counter
	jdReqs      [jopPing + 1]*obs.Counter
	jdSubmits   [admCount]*obs.Counter
	jdDone      [evCancelled + 1]*obs.Counter
	jdEvStream  *obs.Counter
	jdEvDropped *obs.Counter
	jdReplayed  *obs.Counter
	jdReexec    *obs.Counter
	jdBytesIn   *obs.Counter
	jdBytesOut  *obs.Counter
)

func init() {
	r := obs.Default
	jdConns = r.Gauge("amo_jobd_connections",
		"Client connections currently served by the job server.")
	jdConnsTot = r.Counter("amo_jobd_connections_total",
		"Client connections accepted by the job server over its lifetime.")
	for _, o := range jobdOps {
		jdReqs[o.op] = r.Counter("amo_jobd_requests_total",
			"Requests handled by the job server, by op.", "op", o.name)
	}
	for i, n := range admNames {
		jdSubmits[i] = r.Counter("amo_jobd_submits_total",
			"Submit admission decisions, by result. Every non-accepted result burned no job id.",
			"result", n)
	}
	for i, n := range evNames {
		jdDone[i] = r.Counter("amo_jobd_completions_total",
			"Job completions resolved through the completion table, by status.",
			"status", n)
	}
	jdEvStream = r.Counter("amo_jobd_events_streamed_total",
		"Completion events delivered to subscribed connections.")
	jdEvDropped = r.Counter("amo_jobd_events_dropped_total",
		"Completion events dropped because a subscriber's outbound queue was full.")
	jdReplayed = r.Counter("amo_jobd_replayed_descriptors_total",
		"Descriptors re-submitted from the descriptor log at server open.")
	jdReexec = r.Counter("amo_jobd_reexecuted_jobs_total",
		"Replayed descriptors whose payloads actually ran again (admitted but unperformed at the previous death).")
	jdBytesIn = r.Counter("amo_jobd_server_bytes_received_total",
		"Frame bytes read by the job server, headers included.")
	jdBytesOut = r.Counter("amo_jobd_server_bytes_sent_total",
		"Frame bytes written by the job server, headers included.")
}

// obsReq accounts one inbound request frame.
func obsReq(op byte, payloadLen int) {
	jdBytesIn.Add(frameBytes(payloadLen))
	if int(op) < len(jdReqs) && jdReqs[op] != nil {
		jdReqs[op].Inc()
	}
}

// obsDone accounts one completion by event status.
func obsDone(status byte) {
	if int(status) < len(jdDone) {
		jdDone[status].Inc()
	}
}
