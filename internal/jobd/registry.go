package jobd

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// TaskFunc is a registered task type's payload: invoked at most once
// per admitted job, on a dispatcher worker goroutine, with the
// submission's opaque payload bytes. The context carries the job's
// deadline when one was set. The returned error travels back to the
// submitter (and subscribers) in the completion event; it does not
// affect at-most-once accounting — the job counts performed either way.
type TaskFunc func(ctx context.Context, payload []byte) error

// taskKey identifies a task type: descriptors carry both fields, so a
// server can hold several versions of one task name simultaneously and
// replay descriptors written by an older binary against the exact
// implementation they were submitted for.
type taskKey struct {
	name    string
	version uint32
}

func (k taskKey) String() string { return fmt.Sprintf("%s@v%d", k.name, k.version) }

// Registry is the set of task types a Server knows how to run. A
// submission naming a (name, version) pair not present in the server's
// registry is rejected at admission — before any id is consumed or
// descriptor logged. Registration after the server has started is
// allowed (the registry is safe for concurrent use), but a descriptor
// REPLAYED at open time against a since-unregistered task resolves as
// performed-with-error rather than re-executing (see server.go replay).
type Registry struct {
	mu sync.RWMutex
	m  map[taskKey]TaskFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[taskKey]TaskFunc)} }

// Register adds (or replaces) the implementation of name at version.
// It panics on a nil fn, an empty name, or a name longer than the wire
// format can carry — registration errors are programmer errors, caught
// at process start.
func (r *Registry) Register(name string, version uint32, fn TaskFunc) {
	if fn == nil {
		panic("jobd: Register with nil TaskFunc")
	}
	if name == "" || len(name) > 255 {
		panic(fmt.Sprintf("jobd: task name %q must be 1..255 bytes", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[taskKey]TaskFunc)
	}
	r.m[taskKey{name, version}] = fn
}

// lookup returns the implementation of (name, version), or nil.
func (r *Registry) lookup(name string, version uint32) TaskFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[taskKey{name, version}]
}

// Tasks returns the registered task keys as "name@vN" strings, sorted —
// for statsz and logs.
func (r *Registry) Tasks() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}
