package jobd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Priority is a submission's scheduling class on the wire — the same
// three classes as the dispatcher's (High jumps Normal jumps Low).
type Priority int8

const (
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
	PriorityLow    Priority = -1
)

// Status is a completion event's outcome.
type Status byte

const (
	StatusOK        Status = Status(evOK)
	StatusError     Status = Status(evError)
	StatusExpired   Status = Status(evExpired)
	StatusRecovered Status = Status(evRecovered)
	StatusCancelled Status = Status(evCancelled)
)

func (s Status) String() string {
	if int(s) < len(evNames) {
		return evNames[s]
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Event is one streamed job completion.
type Event struct {
	Tenant string
	ID     uint64
	Status Status
	Task   string
	Err    string // the payload's error text, for StatusError
}

// ErrConnLost fails in-flight operations when the connection drops.
// Submits are NEVER resent across a redial: an unacked submit may or
// may not have been admitted (and logged, and journaled) by the server,
// and blindly resending it would re-admit the same work under a fresh
// job id — a duplicate by construction, which is the one failure mode
// this whole stack exists to rule out. Callers that need retry must
// decide idempotence at the application level.
var ErrConnLost = errors.New("jobd: connection lost")

// ErrClientClosed fails operations on a Close()d client.
var ErrClientClosed = errors.New("jobd: client closed")

// ServerError is a jopErr reply: the server rejected the request.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("jobd: server error %d: %s", e.Code, e.Msg) }

// IsQuota reports whether err is a tenant-quota rejection.
func IsQuota(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == codeQuota
}

// IsCapacity reports whether err is a server-capacity rejection.
func IsCapacity(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == codeCapacity
}

// ClientOptions configures Dial.
type ClientOptions struct {
	// Name identifies the client in the hello frame (logs only).
	Name string
	// Redial enables automatic reconnection: on a dropped connection the
	// client fails every in-flight operation with ErrConnLost (see its
	// doc for why nothing is resent), re-dials with exponential backoff,
	// and re-establishes its subscriptions. Without it the first drop
	// kills the client.
	Redial bool
	// RedialAttempts bounds consecutive failed dials (default 5).
	RedialAttempts int
	// RedialBackoff is the initial backoff, doubling per attempt
	// (default 50ms).
	RedialBackoff time.Duration
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
}

// SubmitOptions carries a submission's scheduling contract.
type SubmitOptions struct {
	Priority Priority
	Deadline time.Time // zero = none
}

type clientReply struct {
	op      byte
	payload []byte // copied out of the read buffer
	err     error
}

type clientPending struct {
	seq uint32
	ch  chan clientReply
}

// Client is a pipelined jobd client, safe for concurrent use: each
// blocking call (Submit, Subscribe, Stats, Ping) occupies one slot in
// the in-order pending queue, so many goroutines sharing one Client
// share one pipelined connection.
type Client struct {
	addr string
	opts ClientOptions

	mu        sync.Mutex
	nc        net.Conn
	w         *bufio.Writer
	seq       uint32
	pending   []*clientPending
	subs      map[string]func(Event)
	inc       string // server incarnation from the last hello
	connected bool   // false between a drop and a successful redial
	closed    bool
	dead      error // terminal failure, nil while usable
}

// Dial connects, performs the hello handshake and starts the reader.
func Dial(addr string, o ClientOptions) (*Client, error) {
	if o.RedialAttempts == 0 {
		o.RedialAttempts = 5
	}
	if o.RedialBackoff == 0 {
		o.RedialBackoff = 50 * time.Millisecond
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: o, subs: make(map[string]func(Event))}
	if err := c.connect(); err != nil {
		return nil, err
	}
	go c.reader()
	return c, nil
}

// connect dials and runs the synchronous hello handshake; on success it
// installs the connection. Caller must not hold mu.
func (c *Client) connect() error {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(nc)
	r := bufio.NewReader(nc)
	p := appendU32(nil, protoVersion)
	p = appendStr(p, c.opts.Name)
	if err := writeFrame(w, jopHello, 1, p); err != nil {
		nc.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		nc.Close()
		return err
	}
	op, _, payload, _, err := readFrame(r, nil)
	if err != nil {
		nc.Close()
		return err
	}
	if op != jopHelloOK {
		nc.Close()
		return fmt.Errorf("jobd: hello rejected (op %d)", op)
	}
	dec := decoder{b: payload}
	dec.u32() // server's protocol version; equality is implied by jopHelloOK
	inc := dec.str()
	if err := dec.done(); err != nil {
		nc.Close()
		return err
	}

	// Re-establish subscriptions synchronously on the new connection —
	// events must not race the acks, and the reader is not running yet.
	c.mu.Lock()
	tenants := make([]string, 0, len(c.subs))
	for t := range c.subs {
		tenants = append(tenants, t)
	}
	c.mu.Unlock()
	seq := uint32(1)
	for _, t := range tenants {
		seq++
		if err := writeFrame(w, jopSubscribe, seq, appendStr(nil, t)); err != nil {
			nc.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		nc.Close()
		return err
	}
	var buf []byte
	for range tenants {
		var op byte
		op, _, _, buf, err = readFrame(r, buf)
		// Events can already interleave here once the first subscribe
		// lands; skip them — the reader will stream the rest.
		for err == nil && op == jopEvent {
			op, _, _, buf, err = readFrame(r, buf)
		}
		if err != nil {
			nc.Close()
			return err
		}
		if op != jopAck {
			nc.Close()
			return fmt.Errorf("jobd: resubscribe rejected (op %d)", op)
		}
	}

	c.mu.Lock()
	c.nc = nc
	c.w = w
	c.seq = seq
	c.inc = inc
	c.connected = true
	c.mu.Unlock()
	return nil
}

// Incarnation returns the server process incarnation reported by the
// most recent hello — changes across a server restart, which is how
// tests and examples detect recovery.
func (c *Client) Incarnation() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inc
}

// rpc sends one request and blocks for its in-order reply.
func (c *Client) rpc(op byte, payload []byte) (clientReply, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return clientReply{}, ErrClientClosed
	}
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return clientReply{}, err
	}
	if !c.connected {
		// Between a drop and a successful redial: fail fast rather than
		// enqueue an op nobody would ever resolve.
		c.mu.Unlock()
		return clientReply{}, ErrConnLost
	}
	c.seq++
	pd := &clientPending{seq: c.seq, ch: make(chan clientReply, 1)}
	c.pending = append(c.pending, pd)
	err := writeFrame(c.w, op, pd.seq, payload)
	if err == nil {
		err = c.w.Flush()
	}
	if err != nil {
		c.nc.Close() // reader observes the broken conn and fails pending
	}
	c.mu.Unlock()
	r := <-pd.ch
	if r.err != nil {
		return clientReply{}, r.err
	}
	if r.op == jopErr {
		dec := decoder{b: r.payload}
		se := &ServerError{Code: dec.u16(), Msg: dec.str()}
		if err := dec.done(); err != nil {
			return clientReply{}, err
		}
		return clientReply{}, se
	}
	return r, nil
}

// Submit submits one job and blocks for its admission decision: the
// assigned job id, or the server's rejection (see IsQuota/IsCapacity).
// Admission is not completion — subscribe to the tenant for that.
func (c *Client) Submit(tenant, task string, version uint32, payload []byte, o SubmitOptions) (uint64, error) {
	p := make([]byte, 0, 32+len(tenant)+len(task)+len(payload))
	p = appendStr(p, tenant)
	p = appendStr(p, task)
	p = appendU32(p, version)
	p = append(p, byte(o.Priority))
	var dl int64
	if !o.Deadline.IsZero() {
		dl = o.Deadline.UnixNano()
	}
	p = appendI64(p, dl)
	p = appendBytes(p, payload)
	r, err := c.rpc(jopSubmit, p)
	if err != nil {
		return 0, err
	}
	if r.op != jopSubmitOK {
		return 0, fmt.Errorf("jobd: unexpected submit reply op %d", r.op)
	}
	dec := decoder{b: r.payload}
	id := dec.u64()
	if err := dec.done(); err != nil {
		return 0, err
	}
	return id, nil
}

// Subscribe streams the tenant's completion events to fn, which runs on
// the client's reader goroutine — keep it fast, or completions (and
// replies) back up behind it. The subscription survives redials.
func (c *Client) Subscribe(tenant string, fn func(Event)) error {
	if fn == nil {
		return errors.New("jobd: Subscribe with nil handler")
	}
	c.mu.Lock()
	c.subs[tenant] = fn
	c.mu.Unlock()
	_, err := c.rpc(jopSubscribe, appendStr(nil, tenant))
	if err != nil {
		c.mu.Lock()
		delete(c.subs, tenant)
		c.mu.Unlock()
	}
	return err
}

// Unsubscribe stops the tenant's event stream.
func (c *Client) Unsubscribe(tenant string) error {
	c.mu.Lock()
	delete(c.subs, tenant)
	c.mu.Unlock()
	_, err := c.rpc(jopUnsubscribe, appendStr(nil, tenant))
	return err
}

// Stats fetches the server's stats document.
func (c *Client) Stats() (ServerStats, error) {
	r, err := c.rpc(jopStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	var st ServerStats
	if err := json.Unmarshal(r.payload, &st); err != nil {
		return ServerStats{}, fmt.Errorf("jobd: stats decode: %w", err)
	}
	return st, nil
}

// Ping round-trips the connection.
func (c *Client) Ping() error {
	_, err := c.rpc(jopPing, nil)
	return err
}

// Close hangs up and fails any in-flight operations.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	return nil
}

// failPending marks the connection down and resolves every in-flight
// op with err. Marking down and clearing pending under one lock hold is
// what prevents a racing rpc from enqueueing an op nobody will resolve.
func (c *Client) failPending(err error) {
	c.mu.Lock()
	c.connected = false
	pend := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, p := range pend {
		p.ch <- clientReply{err: err}
	}
}

// reader drains the connection: events to their handlers, replies to
// their in-order waiters. On a connection drop it fails in-flight ops
// and, when Redial is set, reconnects and carries on.
func (c *Client) reader() {
	for {
		err := c.readConn()
		c.failPending(fmt.Errorf("%w: %w", ErrConnLost, err))
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if !c.opts.Redial {
			c.markDead(err)
			return
		}
		backoff := c.opts.RedialBackoff
		redialed := false
		for i := 0; i < c.opts.RedialAttempts; i++ {
			time.Sleep(backoff)
			backoff *= 2
			c.mu.Lock()
			closed = c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			if cerr := c.connect(); cerr == nil {
				redialed = true
				break
			}
		}
		if !redialed {
			c.markDead(fmt.Errorf("jobd: redial budget exhausted after: %w", err))
			return
		}
	}
}

func (c *Client) markDead(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = fmt.Errorf("%w: %w", ErrConnLost, err)
	}
	c.mu.Unlock()
}

// readConn pumps one connection until it breaks, returning the error.
func (c *Client) readConn() error {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	r := bufio.NewReader(nc)
	var buf []byte
	for {
		op, seq, payload, nbuf, err := readFrame(r, buf)
		if err != nil {
			return err
		}
		buf = nbuf
		if op == jopEvent {
			dec := decoder{b: payload}
			ev := Event{Tenant: dec.str(), ID: dec.u64(), Status: Status(dec.u8()), Task: dec.str(), Err: dec.str()}
			if err := dec.done(); err != nil {
				return err
			}
			c.mu.Lock()
			fn := c.subs[ev.Tenant]
			c.mu.Unlock()
			if fn != nil {
				fn(ev)
			}
			continue
		}
		c.mu.Lock()
		if len(c.pending) == 0 {
			c.mu.Unlock()
			return fmt.Errorf("jobd: unsolicited reply op %d seq %d", op, seq)
		}
		pd := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		if pd.seq != seq {
			pd.ch <- clientReply{err: fmt.Errorf("jobd: reply seq %d, want %d (pipeline desync)", seq, pd.seq)}
			return fmt.Errorf("jobd: pipeline desync")
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		pd.ch <- clientReply{op: op, payload: cp}
	}
}
