package jobd

import (
	"errors"
	"fmt"

	"atmostonce/internal/membackend"
)

// The descriptor log.
//
// The dispatcher's own journal records job IDS — enough to dedupe, not
// enough to re-run. jobd adds the missing half: an append-only log of
// every admitted submission's full descriptor (tenant, task name,
// version, priority, deadline, payload), in ADMISSION ORDER, over the
// same membackend register file family as the shard journals (suffix
// ".desclog" on the server's backend spec). Because the core loop is
// the dispatcher's only submitter and id assignment is a deterministic
// function of the submission sequence, replaying this log through Do()
// at open time reproduces the identical id stream: descriptors whose
// ids the shard journals recorded as performed resolve Recovered
// (deduped, payload not run again), and the rest — admitted but
// unperformed when the process died — RE-EXECUTE, exactly once.
//
// Layout (cells are int64 registers):
//
//	cell 0      log fingerprint (logMagic) — catches foreign files
//	cell 1..    records, back to back
//
// A record is one header cell followed by its payload cells:
//
//	header  = recMagic<<48 | byteLen     (never zero: recMagic != 0)
//	payload = ceil(byteLen/8) cells, record bytes packed little-endian
//
// Append writes the payload cells FIRST and the header cell LAST — the
// header is the commit point. The scan walks records until the first
// zero header cell, so a crash mid-append leaves a torn tail that the
// scan never sees and the next append overwrites in place. When the
// backend distinguishes acked from posted writes (a remote register
// service), the header cell is written through WriteAcked: the
// descriptor must be durable BEFORE the dispatcher assigns its id and
// journals it, or a crash could lose a descriptor whose id the journal
// recorded — shifting every later replayed descriptor onto the wrong
// id and corrupting the dedupe. Record-then-do, one level up.
const (
	logMagic int64  = 0x616d6f2d64657363 // "amo-desc"
	recMagic uint64 = 0x6a44             // "jD", the per-record header tag
)

// errLogFull is the internal append failure; the server maps it to a
// codeCapacity rejection BEFORE consuming an id, so a full log burns
// nothing.
var errLogFull = errors.New("jobd: descriptor log full")

// desc is one submission descriptor — the unit the log stores and the
// replay re-submits.
type desc struct {
	tenant   string
	task     string
	version  uint32
	pri      int8
	deadline int64 // unix nanoseconds; 0 = none
	payload  []byte
}

// encode appends d's serialized form to b.
func (d *desc) encode(b []byte) []byte {
	b = appendStr(b, d.tenant)
	b = appendStr(b, d.task)
	b = appendU32(b, d.version)
	b = append(b, byte(d.pri))
	b = appendI64(b, d.deadline)
	b = appendBytes(b, d.payload)
	return b
}

// decodeDesc parses one serialized descriptor.
func decodeDesc(b []byte) (desc, error) {
	dec := decoder{b: b}
	d := desc{
		tenant:  dec.str(),
		task:    dec.str(),
		version: dec.u32(),
		pri:     int8(dec.u8()),
	}
	d.deadline = dec.i64()
	d.payload = dec.bytes()
	if err := dec.done(); err != nil {
		return desc{}, err
	}
	return d, nil
}

// descLog is the open log. It is owned by the server's core loop — no
// internal locking; membackend cell writes are individually atomic, and
// the single-writer discipline is exactly the point of the core loop.
type descLog struct {
	b     membackend.Backend
	acked membackend.AckedWriter // nil when plain Write is already durable-ordered
	cur   int                    // next free cell
	size  int
	buf   []byte // encode scratch, reused across appends
}

// openDescLog opens (or creates) the log behind spec with the given
// cell count and returns it along with every committed record, in
// order. A corrupt record header is fatal: the log is the recovery
// oracle, and a hole in it would silently shift replayed descriptors
// onto wrong ids.
func openDescLog(spec string, cells int) (*descLog, []desc, error) {
	b, err := membackend.Open(spec, cells)
	if err != nil {
		return nil, nil, fmt.Errorf("jobd: open descriptor log: %w", err)
	}
	l := &descLog{b: b, cur: 1, size: cells}
	l.acked, _ = b.(membackend.AckedWriter)

	switch fp := b.Read(0); fp {
	case logMagic:
		// Existing log; scan below.
	case 0:
		if err := l.writeCell(0, logMagic); err != nil {
			b.Close()
			return nil, nil, err
		}
		return l, nil, nil
	default:
		b.Close()
		return nil, nil, fmt.Errorf("jobd: backend %q is not a descriptor log (fingerprint %#x)", spec, fp)
	}

	var recs []desc
	for l.cur < l.size {
		hdr := uint64(b.Read(l.cur))
		if hdr == 0 {
			break // first uncommitted cell: end of log
		}
		if hdr>>48 != recMagic {
			b.Close()
			return nil, nil, fmt.Errorf("jobd: corrupt descriptor log: record %d header %#x at cell %d", len(recs), hdr, l.cur)
		}
		n := int(hdr & 0xffffffff)
		nCells := (n + 7) / 8
		if n == 0 || n > maxFrame || l.cur+1+nCells > l.size {
			b.Close()
			return nil, nil, fmt.Errorf("jobd: corrupt descriptor log: record %d length %d at cell %d", len(recs), n, l.cur)
		}
		raw := make([]byte, nCells*8)
		for i := 0; i < nCells; i++ {
			putCell(raw[i*8:], b.Read(l.cur+1+i))
		}
		d, err := decodeDesc(raw[:n])
		if err != nil {
			b.Close()
			return nil, nil, fmt.Errorf("jobd: corrupt descriptor log: record %d at cell %d: %w", len(recs), l.cur, err)
		}
		recs = append(recs, d)
		l.cur += 1 + nCells
	}
	return l, recs, nil
}

// hasRoom reports whether a descriptor serializing to n bytes fits.
// The server checks it during admission, before consuming an id.
func (l *descLog) hasRoom(n int) bool {
	return l.cur+1+(n+7)/8 <= l.size
}

// append commits d to the log. The caller (the core loop) must only
// call it after hasRoom, but a race-free re-check keeps the invariant
// local.
func (l *descLog) append(d *desc) error {
	l.buf = d.encode(l.buf[:0])
	n := len(l.buf)
	nCells := (n + 7) / 8
	if l.cur+1+nCells > l.size {
		return errLogFull
	}
	// Payload cells first...
	for i := 0; i < nCells; i++ {
		var cell [8]byte
		copy(cell[:], l.buf[i*8:])
		l.b.Write(l.cur+1+i, cellVal(cell[:]))
	}
	// ...header last: the commit point, acked when the backend makes
	// that distinction so the record is durable before the id exists.
	if err := l.writeCell(l.cur, int64(recMagic<<48|uint64(n))); err != nil {
		return err
	}
	l.cur += 1 + nCells
	return nil
}

func (l *descLog) close() error { return l.b.Close() }

func (l *descLog) writeCell(addr int, v int64) error {
	if l.acked != nil {
		return l.acked.WriteAcked(addr, v)
	}
	l.b.Write(addr, v)
	return nil
}

// cellVal packs 8 little-endian bytes into a register value.
func cellVal(b []byte) int64 {
	return int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
}

// putCell unpacks a register value into 8 little-endian bytes.
func putCell(dst []byte, v int64) {
	u := uint64(v)
	dst[0] = byte(u)
	dst[1] = byte(u >> 8)
	dst[2] = byte(u >> 16)
	dst[3] = byte(u >> 24)
	dst[4] = byte(u >> 32)
	dst[5] = byte(u >> 40)
	dst[6] = byte(u >> 48)
	dst[7] = byte(u >> 56)
}
