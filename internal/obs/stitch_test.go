package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func ev(event string, shard int32, ts int64, inc string) TracezEvent {
	return TracezEvent{Event: event, Shard: shard, TS: ts, Inc: inc}
}

// TestStitchTimelines: events from several documents merge by job id,
// order by wall clock with ties keeping document order, and TUs is
// recomputed against the merged first event.
func TestStitchTimelines(t *testing.T) {
	incumbent := TracezDoc{Incarnation: "aaaa", Jobs: []TracezJob{
		{ID: 7, Events: []TracezEvent{
			ev("submitted", 0, 1000, "aaaa"),
			ev("started", 0, 3000, "aaaa"),
			ev("journaled", 0, 5000, "aaaa"),
		}},
		{ID: 9, Events: []TracezEvent{ev("submitted", 0, 2000, "aaaa")}},
	}}
	server := TracezDoc{Incarnation: "cccc", Jobs: []TracezJob{
		{ID: 7, Events: []TracezEvent{ev("journaled", -1, 4000, "cccc")}},
	}}
	successor := TracezDoc{Incarnation: "bbbb", Jobs: []TracezJob{
		{ID: 7, Events: []TracezEvent{
			ev("submitted", 0, 9000, "bbbb"),
			ev("recovered", 0, 9500, "bbbb"),
			ev("resolved", 0, 9600, "bbbb"),
		}},
	}}

	jobs := StitchTimelines(incumbent, server, successor)
	if len(jobs) != 2 {
		t.Fatalf("stitched %d jobs, want 2", len(jobs))
	}
	// Job 7's first event (TS 1000) precedes job 9's (TS 2000).
	if jobs[0].ID != 7 || jobs[1].ID != 9 {
		t.Fatalf("job order = %d, %d; want 7, 9", jobs[0].ID, jobs[1].ID)
	}
	j := jobs[0]
	want := []string{"submitted", "started", "journaled", "journaled", "submitted", "recovered", "resolved"}
	if len(j.Events) != len(want) {
		t.Fatalf("job 7 has %d merged events, want %d: %+v", len(j.Events), len(want), j.Events)
	}
	for i, e := range j.Events {
		if e.Event != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, e.Event, want[i])
		}
	}
	// The server's observation (TS 4000) interleaves between the client's
	// started (3000) and journaled (5000).
	if j.Events[2].Inc != "cccc" || j.Events[2].Shard != -1 {
		t.Fatalf("server observation misplaced: %+v", j.Events[2])
	}
	// TUs recomputed against merged t0 = 1000.
	if j.Events[0].TUs != 0 || j.Events[3].TUs != 4.0 {
		t.Fatalf("TUs = %v, %v; want 0, 4", j.Events[0].TUs, j.Events[3].TUs)
	}
	if got := j.Incarnations(); len(got) != 3 || got[0] != "aaaa" || got[1] != "cccc" || got[2] != "bbbb" {
		t.Fatalf("Incarnations() = %v", got)
	}
	if err := CheckStitched(j); err != nil {
		t.Fatalf("legal failover timeline rejected: %v", err)
	}
}

// TestStitchTimelinesTieKeepsDocOrder: equal timestamps must not reorder
// one process's records against each other.
func TestStitchTimelinesTieKeepsDocOrder(t *testing.T) {
	doc := TracezDoc{Incarnation: "aaaa", Jobs: []TracezJob{
		{ID: 1, Events: []TracezEvent{
			ev("submitted", 0, 100, "aaaa"),
			ev("queued", 0, 100, "aaaa"),
			ev("started", 0, 100, "aaaa"),
		}},
	}}
	j := StitchTimelines(doc)[0]
	if j.Events[0].Event != "submitted" || j.Events[1].Event != "queued" || j.Events[2].Event != "started" {
		t.Fatalf("tie broke document order: %+v", j.Events)
	}
}

// TestCheckStitchedViolations: each grammar rule rejects its violation.
func TestCheckStitchedViolations(t *testing.T) {
	cases := []struct {
		name    string
		events  []TracezEvent
		wantErr string
	}{
		{
			// The at-most-once guarantee itself: a second started in a
			// different incarnation is a duplicate execution.
			name: "started twice across incarnations",
			events: []TracezEvent{
				ev("started", 0, 1, "aaaa"),
				ev("started", 0, 2, "bbbb"),
			},
			wantErr: "started 2 times",
		},
		{
			name: "event after terminal in same incarnation",
			events: []TracezEvent{
				ev("resolved", 0, 1, "aaaa"),
				ev("journaled", 0, 2, "aaaa"),
			},
			wantErr: "after a terminal event",
		},
		{
			name: "recovered incarnation starts the job",
			events: []TracezEvent{
				ev("recovered", 0, 1, "bbbb"),
				ev("started", 0, 2, "bbbb"),
			},
			wantErr: "after it recovered",
		},
		{
			name: "client journaled before started",
			events: []TracezEvent{
				ev("journaled", 0, 1, "aaaa"),
			},
			wantErr: "journaled before started",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckStitched(TracezJob{ID: 1, Events: tc.events})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckStitchedLegal: shapes that must pass — a successor
// re-resolving a job its predecessor resolved (each life re-runs the
// stream), and the server's journal observation (shard < 0) needing no
// prior started.
func TestCheckStitchedLegal(t *testing.T) {
	legal := [][]TracezEvent{
		{
			ev("started", 0, 1, "aaaa"), ev("journaled", 0, 2, "aaaa"), ev("resolved", 0, 3, "aaaa"),
			ev("submitted", 0, 4, "bbbb"), ev("recovered", 0, 5, "bbbb"), ev("resolved", 0, 6, "bbbb"),
		},
		{
			ev("journaled", -1, 1, "cccc"), // server witnesses the write, not the worker
			ev("started", 0, 2, "aaaa"),
		},
	}
	for i, events := range legal {
		if err := CheckStitched(TracezJob{ID: uint64(i + 1), Events: events}); err != nil {
			t.Fatalf("legal timeline %d rejected: %v", i, err)
		}
	}
}

// TestNewTracezDocRoundTrip: a live tracer's document survives
// JSON round-trip and carries this process's incarnation on every event.
func TestNewTracezDocRoundTrip(t *testing.T) {
	tr := NewTracer(1, 16)
	tr.Record(42, TraceSubmitted, 0)
	tr.Record(42, TraceStarted, 0)
	tr.Record(42, TraceJournaled, -1)

	doc := NewTracezDoc(tr)
	if doc.Incarnation != IncarnationString() {
		t.Fatalf("doc incarnation = %q, want %q", doc.Incarnation, IncarnationString())
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTracezDoc(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 1 || back.Jobs[0].ID != 42 || len(back.Jobs[0].Events) != 3 {
		t.Fatalf("round trip = %s", b)
	}
	for _, e := range back.Jobs[0].Events {
		if e.Inc != IncarnationString() {
			t.Fatalf("event inc = %q, want %q", e.Inc, IncarnationString())
		}
		if e.TS == 0 {
			t.Fatal("event lost its wall-clock stamp")
		}
	}
	if back.Jobs[0].Events[2].Shard != -1 {
		t.Fatalf("server-side shard = %d, want -1", back.Jobs[0].Events[2].Shard)
	}

	if got := NewTracezDoc(nil); got.Incarnation == "" || got.Jobs == nil || len(got.Jobs) != 0 {
		t.Fatalf("nil tracer doc = %+v", got)
	}
	if _, err := ParseTracezDoc([]byte("{not json")); err == nil {
		t.Fatal("ParseTracezDoc accepted garbage")
	}
}
