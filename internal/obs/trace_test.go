package obs

import (
	"sync"
	"testing"
)

// TestTracerSamplingDeterministic: whether an id is sampled is a pure
// function of the id — the property that lets every layer (and every
// process incarnation) agree on which jobs to trace with no shared
// state.
func TestTracerSamplingDeterministic(t *testing.T) {
	a := NewTracer(0.25, 64)
	b := NewTracer(0.25, 64)
	sampled := 0
	const n = 10_000
	for id := uint64(1); id <= n; id++ {
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("id %d sampled inconsistently", id)
		}
		if a.Sampled(id) {
			sampled++
		}
	}
	// The hash should land the rate within a loose band.
	if sampled < n/8 || sampled > n/2 {
		t.Fatalf("sampled %d of %d at rate 0.25", sampled, n)
	}
	if NewTracer(0, 64) != nil {
		t.Fatal("rate 0 should return the nil tracer")
	}
	var nilT *Tracer
	if nilT.Sampled(1) {
		t.Fatal("nil tracer sampled an id")
	}
	nilT.Record(1, TraceSubmitted, 0) // must not panic
	if nilT.Snapshot() != nil {
		t.Fatal("nil tracer has entries")
	}
}

// TestTracerFullRate: rate 1 samples everything.
func TestTracerFullRate(t *testing.T) {
	tr := NewTracer(1, 16)
	for id := uint64(0); id < 100; id++ {
		if !tr.Sampled(id) {
			t.Fatalf("rate 1 skipped id %d", id)
		}
	}
}

// TestTracerRingWrap: the ring keeps the newest entries, oldest-first
// in Snapshot.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(1, 4)
	for id := uint64(1); id <= 7; id++ {
		tr.Record(id, TraceSubmitted, 0)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(snap))
	}
	for i, e := range snap {
		if want := uint64(4 + i); e.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, e.ID, want)
		}
	}
}

// TestTracerTimelines: events group by id in record order, and
// Timeline(id) filters.
func TestTracerTimelines(t *testing.T) {
	tr := NewTracer(1, 64)
	tr.Record(1, TraceSubmitted, 0)
	tr.Record(2, TraceSubmitted, 1)
	tr.Record(1, TraceQueued, 0)
	tr.Record(1, TraceStarted, 0)
	tr.Record(2, TraceQueued, 1)
	tls := tr.Timelines()
	if len(tls) != 2 || tls[0].ID != 1 || tls[1].ID != 2 {
		t.Fatalf("timelines = %+v", tls)
	}
	want := []TraceEvent{TraceSubmitted, TraceQueued, TraceStarted}
	got := tr.Timeline(1)
	if len(got) != len(want) {
		t.Fatalf("timeline(1) = %+v", got)
	}
	for i, e := range got {
		if e.Event != want[i] {
			t.Fatalf("timeline(1)[%d] = %s, want %s", i, e.Event, want[i])
		}
	}
}

// TestTracerConcurrent: concurrent Record is safe (run under -race).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1, 128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(uint64(g*1000+i), TraceSubmitted, g)
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 128 {
		t.Fatalf("ring holds %d, want 128", got)
	}
}

// TestTraceEventStrings: every event renders a stable name.
func TestTraceEventStrings(t *testing.T) {
	for ev := TraceSubmitted; ev <= TraceRecovered; ev++ {
		if ev.String() == "unknown" {
			t.Fatalf("event %d has no name", ev)
		}
	}
	if TraceEvent(0).String() != "unknown" || TraceEvent(99).String() != "unknown" {
		t.Fatal("out-of-range events should render unknown")
	}
}
