// Package eventlog is the process's structured event log and crash
// flight recorder, built on log/slog with no dependencies outside the
// standard library.
//
// Every record flows through two paths with different retention and
// different cost models:
//
//   - the sink: a leveled slog text handler on stderr, for humans and
//     for CI to grep. Its level comes from AMO_LOG (debug, info, warn,
//     error, off; default info), and every line carries inc=<id>, the
//     process incarnation from internal/obs.
//
//   - the flight recorder: a bounded lock-free ring that keeps the last
//     DefaultFlightCap records at ALL levels, even those the sink
//     suppresses. Debug-level round summaries cost two atomic ops each,
//     so the hot path can afford them; and when the process dies — a
//     fenced write, a fatal client error, a panic — the ring is dumped
//     as one JSON line prefixed AMO-FLIGHT-DUMP, giving the post-mortem
//     the detailed recent history that the leveled sink threw away.
//     /flightz serves the same dump on demand.
//
// The forensic contract: a crash artifact must never be just a panic
// string. CrashDump (and the DumpOnPanic defer helper) write the flight
// dump to stderr before the process exits, once per process — the first
// fault is the interesting one.
package eventlog

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atmostonce/internal/obs"
)

// DefaultFlightCap is the default flight-recorder ring capacity. 256
// records at the emission rates of this codebase (per-round, per-lease,
// per-connection events — never per-op) covers several seconds of
// history before a crash, at ~40 KiB resident.
const DefaultFlightCap = 256

// Record is one captured event as the flight recorder stores it and the
// flight dump serializes it. Seq is a process-global claim order (dense,
// starting at 1) that survives into the dump so readers can see ring
// wrap-around and interleave records exactly as emitted; TS is wall
// clock for cross-process correlation with /tracez timelines.
type Record struct {
	Seq   uint64         `json:"seq"`
	TS    int64          `json:"ts_unix_nano"`
	Level string         `json:"level"`
	Event string         `json:"event"`
	Inc   string         `json:"inc"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Recorder is the lock-free flight ring. Writers claim a slot with one
// atomic add and publish the record with one atomic pointer store;
// readers snapshot whatever is published. Neither side ever blocks the
// other, which is the property that makes recording safe from the
// dispatcher's hot path and from the middle of a panic.
type Recorder struct {
	slots []atomic.Pointer[Record]
	claim atomic.Uint64
}

// NewRecorder builds a flight ring keeping the last capacity records
// (DefaultFlightCap when capacity ≤ 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Recorder{slots: make([]atomic.Pointer[Record], capacity)}
}

// Add publishes a record into the ring, stamping its Seq. The record
// must not be mutated afterwards.
func (r *Recorder) Add(rec *Record) {
	seq := r.claim.Add(1)
	rec.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(rec)
}

// Snapshot returns the currently published records in Seq order. It is
// a best-effort read — a writer racing the snapshot may leave its slot
// holding the previous occupant — which is exactly what a flight
// recorder wants: never wait, report what is there.
func (r *Recorder) Snapshot() []Record {
	out := make([]Record, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Handler is the slog.Handler that tees every record into a Recorder
// and forwards sink-level-and-above records to a wrapped handler. Its
// Enabled always reports true: the ring records below the sink level by
// design, and level filtering for the sink happens inside Handle.
type Handler struct {
	rec   *Recorder
	sink  slog.Handler
	attrs []slog.Attr // pre-bound via WithAttrs, keys already group-prefixed
	group string      // dotted prefix for subsequent attr keys
}

// NewHandler tees records into rec and forwards to sink (nil for
// ring-only logging).
func NewHandler(rec *Recorder, sink slog.Handler) *Handler {
	return &Handler{rec: rec, sink: sink}
}

func (h *Handler) Enabled(context.Context, slog.Level) bool { return true }

func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	rec := &Record{
		TS:    r.Time.UnixNano(),
		Level: r.Level.String(),
		Event: r.Message,
		Inc:   obs.IncarnationString(),
	}
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	if len(h.attrs) > 0 || r.NumAttrs() > 0 {
		rec.Attrs = make(map[string]any, len(h.attrs)+r.NumAttrs())
		for _, a := range h.attrs {
			putAttr(rec.Attrs, "", a)
		}
		r.Attrs(func(a slog.Attr) bool {
			putAttr(rec.Attrs, h.group, a)
			return true
		})
	}
	h.rec.Add(rec)
	if h.sink != nil && h.sink.Enabled(ctx, r.Level) {
		return h.sink.Handle(ctx, r)
	}
	return nil
}

func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.group + a.Key
		nh.attrs = append(nh.attrs, a)
	}
	if h.sink != nil {
		nh.sink = h.sink.WithAttrs(attrs)
	}
	return &nh
}

func (h *Handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.group = h.group + name + "."
	if h.sink != nil {
		nh.sink = h.sink.WithGroup(name)
	}
	return &nh
}

// putAttr flattens one attr into the record's map, resolving LogValuers
// and dotting group members, and coercing values to shapes that survive
// a JSON round trip (errors to their messages, uint64 kept integral).
func putAttr(m map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, g := range v.Group() {
			putAttr(m, prefix+a.Key+".", g)
		}
		return
	}
	m[prefix+a.Key] = attrValue(v)
}

func attrValue(v slog.Value) any {
	switch v.Kind() {
	case slog.KindString:
		return v.String()
	case slog.KindInt64:
		return v.Int64()
	case slog.KindUint64:
		return v.Uint64()
	case slog.KindFloat64:
		return v.Float64()
	case slog.KindBool:
		return v.Bool()
	case slog.KindDuration:
		return v.Duration().String()
	case slog.KindTime:
		return v.Time().Format(time.RFC3339Nano)
	default:
		a := v.Any()
		if err, ok := a.(error); ok {
			return err.Error()
		}
		return fmt.Sprint(a)
	}
}

// New builds a logger whose records all land in the returned Recorder
// and whose text sink on w filters at level. Every sink line carries
// inc=<incarnation>.
func New(w io.Writer, level slog.Level, capacity int) (*slog.Logger, *Recorder) {
	rec := NewRecorder(capacity)
	var sink slog.Handler
	if w != nil {
		sink = slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}).
			WithAttrs([]slog.Attr{slog.String("inc", obs.IncarnationString())})
	}
	return slog.New(NewHandler(rec, sink)), rec
}

// levelOff is a sink level above every slog level: the ring still
// records, the sink stays silent.
const levelOff = slog.Level(127)

func levelFromEnv(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "", "info":
		return slog.LevelInfo
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	case "off":
		return levelOff
	default:
		return slog.LevelInfo
	}
}

var (
	defaultLogger   *slog.Logger
	defaultRecorder *Recorder
	sinkLevel       slog.Level
)

func init() {
	sinkLevel = levelFromEnv(os.Getenv("AMO_LOG"))
	defaultLogger, defaultRecorder = New(os.Stderr, sinkLevel, DefaultFlightCap)
}

// SinkEnabled reports whether the process sink (stderr, leveled by
// AMO_LOG) records at level l. The flight ring records at ALL levels,
// so slog's own Enabled gate never fires for the default logger; hot
// paths that emit high-frequency records use this to decide whether the
// operator asked for them at full rate or a sampled trickle into the
// ring is enough (see dispatch's per-round heartbeat).
func SinkEnabled(l slog.Level) bool { return l >= sinkLevel }

// Logger returns the process-default event logger (sink on stderr,
// level from AMO_LOG, flight ring behind it). Layers log through this
// rather than constructing their own so one flight recorder sees the
// whole process.
func Logger() *slog.Logger { return defaultLogger }

// Default returns the process-default flight recorder.
func Default() *Recorder { return defaultRecorder }

// FlightDump is the JSON document a flight-recorder dump serializes:
// the dumping process's incarnation, why it dumped, and the ring's
// records oldest-first.
type FlightDump struct {
	Incarnation string   `json:"incarnation"`
	Reason      string   `json:"reason"`
	Events      []Record `json:"events"`
}

// DumpPrefix marks a flight dump line on stderr; everything after it on
// the line is one FlightDump JSON object. Post-mortem tooling (and the
// failover example's parent process) keys on this prefix.
const DumpPrefix = "AMO-FLIGHT-DUMP "

// WriteFlight writes the recorder's current contents as a FlightDump
// JSON object (no prefix — this is the /flightz body).
func WriteFlight(w io.Writer, rec *Recorder, reason string) error {
	if rec == nil {
		rec = defaultRecorder
	}
	enc := json.NewEncoder(w)
	return enc.Encode(FlightDump{
		Incarnation: obs.IncarnationString(),
		Reason:      reason,
		Events:      rec.Snapshot(),
	})
}

var dumpOnce sync.Once

// dumpToStderr writes the prefixed one-line flight dump. Once per
// process: the first fault is the forensically interesting one, and a
// cascade of dumps during teardown would bury it.
func dumpToStderr(reason string) {
	dumpOnce.Do(func() {
		b, err := json.Marshal(FlightDump{
			Incarnation: obs.IncarnationString(),
			Reason:      reason,
			Events:      defaultRecorder.Snapshot(),
		})
		if err != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "%s%s\n", DumpPrefix, b)
	})
}

// CrashDump records a fatal event (level Error, with args as slog
// attrs) and then dumps the flight ring to stderr. Call it on the way
// to a deliberate process death — a fenced write, a fatal client error
// — so the death leaves a forensic artifact, not just a panic string.
func CrashDump(event string, args ...any) {
	defaultLogger.Error(event, args...)
	dumpToStderr(event)
}

// DumpOnPanic is a defer helper: if the goroutine is panicking, dump
// the flight ring (reason "panic") and re-panic. It never swallows the
// panic — the process still dies, it just dies documented.
func DumpOnPanic() {
	if r := recover(); r != nil {
		defaultLogger.Error("panic", "value", fmt.Sprint(r))
		dumpToStderr("panic")
		panic(r)
	}
}
