package eventlog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"atmostonce/internal/obs"
)

// TestRingCapturesBelowSinkLevel: the flight ring keeps Debug records
// even when the sink is at Warn — the whole point of teeing before the
// level filter — and the sink stays quiet about them.
func TestRingCapturesBelowSinkLevel(t *testing.T) {
	var sinkOut bytes.Buffer
	log, rec := New(&sinkOut, slog.LevelWarn, 16)
	log.Debug("round_summary", "shard", 0, "jobs", 12)
	log.Info("connected", "addr", "x")
	log.Warn("fenced", "epoch", 3)

	events := rec.Snapshot()
	if len(events) != 3 {
		t.Fatalf("ring holds %d records, want 3: %+v", len(events), events)
	}
	for i, want := range []string{"round_summary", "connected", "fenced"} {
		if events[i].Event != want {
			t.Fatalf("ring[%d] = %q, want %q", i, events[i].Event, want)
		}
		if events[i].Seq != uint64(i+1) {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, events[i].Seq, i+1)
		}
		if events[i].Inc != obs.IncarnationString() {
			t.Fatalf("ring[%d].Inc = %q", i, events[i].Inc)
		}
		if events[i].TS == 0 {
			t.Fatalf("ring[%d] has no wall-clock stamp", i)
		}
	}
	if events[0].Attrs["jobs"] != int64(12) {
		t.Fatalf("debug attrs = %#v", events[0].Attrs)
	}

	sunk := sinkOut.String()
	if strings.Contains(sunk, "round_summary") || strings.Contains(sunk, "connected") {
		t.Fatalf("sink at Warn leaked lower-level records:\n%s", sunk)
	}
	if !strings.Contains(sunk, "fenced") || !strings.Contains(sunk, "inc="+obs.IncarnationString()) {
		t.Fatalf("sink line missing event or incarnation:\n%s", sunk)
	}
}

// TestRingWrapKeepsNewest: past capacity, the ring retains exactly the
// last N records, still in Seq order.
func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(8)
	for i := 1; i <= 20; i++ {
		rec.Add(&Record{Event: fmt.Sprintf("e%d", i)})
	}
	events := rec.Snapshot()
	if len(events) != 8 {
		t.Fatalf("ring holds %d, want 8", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(13 + i)
		if e.Seq != wantSeq || e.Event != fmt.Sprintf("e%d", wantSeq) {
			t.Fatalf("ring[%d] = seq %d event %q, want seq %d", i, e.Seq, e.Event, wantSeq)
		}
	}
}

// TestRecorderConcurrent: concurrent Add and Snapshot must be safe (the
// race detector is the real assertion here) and every snapshotted Seq
// must be one a writer actually claimed.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Add(&Record{Event: "e"})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, e := range rec.Snapshot() {
				if e.Seq == 0 || e.Seq > 1600 {
					t.Errorf("snapshot saw impossible seq %d", e.Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := len(rec.Snapshot()); got != 32 {
		t.Fatalf("final snapshot has %d records, want full ring of 32", got)
	}
}

// TestHandlerAttrFlattening: WithAttrs/WithGroup flatten into dotted
// keys in the ring record, and values coerce to JSON-stable shapes.
func TestHandlerAttrFlattening(t *testing.T) {
	log, rec := New(nil, slog.LevelInfo, 8)
	log.With("layer", "netmem").WithGroup("conn").Info("opened",
		"addr", "1.2.3.4:5",
		"err", errors.New("boom"),
		"ttl", 750*time.Millisecond,
		"epoch", uint64(9),
		slog.Group("peer", "id", 7),
	)
	events := rec.Snapshot()
	if len(events) != 1 {
		t.Fatalf("ring = %+v", events)
	}
	a := events[0].Attrs
	if a["layer"] != "netmem" || a["conn.addr"] != "1.2.3.4:5" {
		t.Fatalf("attrs = %#v", a)
	}
	if a["conn.err"] != "boom" || a["conn.ttl"] != "750ms" {
		t.Fatalf("coerced attrs = %#v", a)
	}
	if a["conn.epoch"] != uint64(9) || a["conn.peer.id"] != int64(7) {
		t.Fatalf("numeric attrs = %#v", a)
	}
}

// TestWriteFlightRoundTrip: the /flightz body parses back into a
// FlightDump carrying the incarnation, the reason and the ring.
func TestWriteFlightRoundTrip(t *testing.T) {
	log, rec := New(nil, slog.LevelInfo, 8)
	log.Warn("fenced", "epoch", 3)

	var buf bytes.Buffer
	if err := WriteFlight(&buf, rec, "on-demand"); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("flight body not JSON: %v\n%s", err, buf.String())
	}
	if dump.Incarnation != obs.IncarnationString() || dump.Reason != "on-demand" {
		t.Fatalf("dump header = %q %q", dump.Incarnation, dump.Reason)
	}
	if len(dump.Events) != 1 || dump.Events[0].Event != "fenced" {
		t.Fatalf("dump events = %+v", dump.Events)
	}
	// JSON numbers decode as float64; epoch 3 is exactly representable.
	if dump.Events[0].Attrs["epoch"] != float64(3) {
		t.Fatalf("epoch attr = %#v", dump.Events[0].Attrs)
	}
}

func TestLevelFromEnv(t *testing.T) {
	cases := map[string]slog.Level{
		"":      slog.LevelInfo,
		"info":  slog.LevelInfo,
		"debug": slog.LevelDebug,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
		"off":   levelOff,
		"bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := levelFromEnv(in); got != want {
			t.Errorf("levelFromEnv(%q) = %v, want %v", in, got, want)
		}
	}
}
