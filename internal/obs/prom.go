package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE pair per family, cumulative le-labeled buckets for
// histograms (empty buckets elided; +Inf always present).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.order {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
			case kindCounterFunc:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(s.labels), s.cFn())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(s.g.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(s.gFn()))
			case kindHistogram:
				writePromHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram series: cumulative buckets
// at each non-empty boundary plus the mandatory +Inf, then _sum and
// _count. Bucket bounds and the sum are scaled into exposition units.
func writePromHistogram(w io.Writer, f *family, s *series) {
	snap := s.h.Snapshot()
	withLe := func(le string) string {
		kv := make([]string, 0, len(s.labels)+2)
		kv = append(append(kv, s.labels...), "le", le)
		return renderLabels(kv)
	}
	var cum uint64
	for i, n := range snap.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := float64(BucketUpper(i)) * f.scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLe(fmtFloat(le)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLe("+Inf"), snap.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), fmtFloat(float64(snap.Sum)*f.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), snap.Count)
}

// ExpositionStats summarizes a parsed exposition.
type ExpositionStats struct {
	Families int
	Series   int
}

// ParseExposition validates Prometheus text-format input: every line
// must be a well-formed HELP/TYPE comment or a sample whose metric name
// matches the format's grammar, whose label block (if any) is balanced
// and quoted, and whose value parses as a float; a family's TYPE must
// appear before its samples, histogram buckets must be cumulative, and
// no series may repeat. It returns what it counted. This is the
// validator CI points at a live /metrics endpoint.
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	var st ExpositionStats
	types := make(map[string]string)       // family → TYPE
	seen := make(map[string]bool)          // full series line identity
	lastBucket := make(map[string]float64) // histogram series (sans le) → last cumulative count
	lastLe := make(map[string]float64)     // histogram series (sans le) → last le bound
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := parseComment(text, types); err != nil {
				return st, fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		fam := histogramFamily(name, types)
		if types[fam] == "" {
			return st, fmt.Errorf("line %d: sample %q before its # TYPE", line, name)
		}
		serKey := name + "|" + labels
		if seen[serKey] {
			return st, fmt.Errorf("line %d: duplicate series %s{%s}", line, name, labels)
		}
		seen[serKey] = true
		st.Series++
		if strings.HasSuffix(name, "_bucket") && types[fam] == "histogram" {
			if err := checkBucket(name, labels, value, lastBucket, lastLe); err != nil {
				return st, fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	st.Families = len(types)
	if st.Series == 0 {
		return st, fmt.Errorf("no samples in exposition")
	}
	return st, nil
}

// parseComment validates a # HELP / # TYPE line, recording TYPEs.
func parseComment(text string, types map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return fmt.Errorf("malformed comment %q", text)
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if types[name] != "" {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		types[name] = fields[3]
	}
	return nil
}

// parseSample splits a sample line into name, canonical label text and
// value, validating each part.
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces in %q", text)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if err := validLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample %q has no value", text)
		}
		name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// A timestamp may follow the value; only the value is validated.
	valText := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valText = rest[:sp]
	}
	value, err = strconv.ParseFloat(valText, 64)
	if err != nil && valText != "+Inf" && valText != "-Inf" && valText != "NaN" {
		return "", "", 0, fmt.Errorf("bad sample value %q", valText)
	}
	return name, labels, value, nil
}

// validLabels checks a label block's k="v" grammar.
func validLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !validLabelName(rest[:eq]) {
			return fmt.Errorf("bad label name in %q", labels)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		rest = rest[1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		rest = rest[end+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("missing comma between labels in %q", labels)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// checkBucket enforces cumulative, le-ascending histogram buckets.
func checkBucket(name, labels string, value float64, lastBucket, lastLe map[string]float64) error {
	le, others, err := splitLe(labels)
	if err != nil {
		return err
	}
	key := name + "|" + others
	if prev, ok := lastLe[key]; ok {
		if le <= prev {
			return fmt.Errorf("%s buckets not le-ascending (%v after %v)", name, le, prev)
		}
		if value < lastBucket[key] {
			return fmt.Errorf("%s buckets not cumulative (%v after %v)", name, value, lastBucket[key])
		}
	}
	lastLe[key], lastBucket[key] = le, value
	return nil
}

// splitLe extracts the le bound from a bucket's label block, returning
// the remaining labels as the series identity.
func splitLe(labels string) (le float64, others string, err error) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	found := false
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			v = strings.TrimSuffix(v, `"`)
			found = true
			if v == "+Inf" {
				le = math.Inf(1)
			} else if le, err = strconv.ParseFloat(v, 64); err != nil {
				return 0, "", fmt.Errorf("bad le bound %q", v)
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return 0, "", fmt.Errorf("histogram bucket without le label: {%s}", labels)
	}
	return le, strings.Join(kept, ","), nil
}

// histogramFamily strips the _bucket/_sum/_count suffix when the base
// name has a registered histogram TYPE.
func histogramFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
