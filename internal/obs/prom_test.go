package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with every metric kind and fixed
// values, so its exposition is byte-for-byte reproducible.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("amo_test_jobs_total", "Jobs processed.", "shard", "0").Add(42)
	r.Counter("amo_test_jobs_total", "Jobs processed.", "shard", "1").Add(7)
	r.Gauge("amo_test_queue_depth", "Jobs resident in the queue.", "shard", "0").Set(3)
	r.CounterFunc("amo_test_pulled_total", "Pull-style counter.", func() uint64 { return 9 })
	r.GaugeFunc("amo_test_temperature_ratio", "Pull-style gauge.", func() float64 { return 0.5 })
	h := r.Histogram("amo_test_latency_seconds", "Sampled latency.", 1e-9)
	for _, v := range []uint64{5, 5, 17, 1000, 1_000_000} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden locks the exposition format against the checked-in
// golden file. Regenerate with -update on deliberate format changes.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nrun with OBS_UPDATE_GOLDEN=1 to regenerate", buf.Bytes(), want)
	}
}

// TestParseOwnExposition: the validator accepts what WritePrometheus
// produces and counts its families and series.
func TestParseOwnExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Families != 5 {
		t.Fatalf("parsed %d families, want 5", st.Families)
	}
	// 2 counter series + 1 gauge + 1 counterfunc + 1 gaugefunc +
	// histogram (4 non-empty buckets + Inf + sum + count = 7).
	if st.Series != 12 {
		t.Fatalf("parsed %d series, want 12", st.Series)
	}
}

// TestParseExpositionRejects: malformed expositions fail with the
// offending line.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":            "# TYPE 9bad counter\n9bad 1\n",
		"no value":            "# TYPE amo_x counter\namo_x\n",
		"bad value":           "# TYPE amo_x counter\namo_x pizza\n",
		"unbalanced braces":   "# TYPE amo_x counter\namo_x{shard=\"0\" 1\n",
		"unquoted label":      "# TYPE amo_x counter\namo_x{shard=0} 1\n",
		"sample before TYPE":  "amo_x 1\n",
		"duplicate series":    "# TYPE amo_x counter\namo_x 1\namo_x 2\n",
		"unknown type":        "# TYPE amo_x flavor\n",
		"non-cumulative hist": "# TYPE amo_h histogram\namo_h_bucket{le=\"1\"} 5\namo_h_bucket{le=\"2\"} 3\n",
		"le not ascending":    "# TYPE amo_h histogram\namo_h_bucket{le=\"2\"} 1\namo_h_bucket{le=\"1\"} 2\n",
		"empty input":         "",
		// Comment-grammar and ordering paths.
		"truncated HELP":       "# HELP amo_x\namo_x 1\n",
		"TYPE missing type":    "# TYPE amo_x\namo_x 1\n",
		"duplicate TYPE":       "# TYPE amo_x counter\n# TYPE amo_x counter\namo_x 1\n",
		"TYPE on bad name":     "# TYPE amo-x counter\n",
		"HELP only, no TYPE":   "# HELP amo_x About x.\namo_x 1\n",
		"dup series w/ labels": "# TYPE amo_x counter\namo_x{s=\"0\"} 1\namo_x{s=\"0\"} 2\n",
		// Label-grammar paths.
		"unterminated value": "# TYPE amo_x counter\namo_x{s=\"0} 1\n",
		"missing comma":      "# TYPE amo_x counter\namo_x{a=\"0\"b=\"1\"} 1\n",
		"bad label name":     "# TYPE amo_x counter\namo_x{9s=\"0\"} 1\n",
		// Histogram-grammar paths.
		"bucket without le": "# TYPE amo_h histogram\namo_h_bucket{s=\"0\"} 1\n",
		"bad le bound":      "# TYPE amo_h histogram\namo_h_bucket{le=\"pizza\"} 1\namo_h_bucket{le=\"wide\"} 2\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}
