// Package obs is the dispatcher's dependency-free observability core:
// atomic counters and gauges, log-bucketed mergeable histograms, a
// labeled registry with Prometheus text exposition, and a sampled
// per-job tracer. Every layer of the engine — dispatcher, netmem,
// membackend, the server binaries — records into this package, and the
// ops endpoint (obs/opshttp) serves what it holds.
//
// The design constraint is the dispatcher's hot path: a submit or a
// round must never pay for metrics it doesn't record. Counters and
// gauges are single atomics; most dispatcher metrics are registered as
// pull-style funcs over counters the engine already maintains, so the
// scrape pays the synchronization and the hot path pays nothing; the
// histogram's record path is two atomic adds. The CI overhead gate
// (amo-bench -overhead) holds the whole layer under 3% of streaming
// throughput.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; Add and Inc are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64. The zero value is ready to use; Set and
// Add are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
