package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketBoundaries: every value lands in a bucket whose bounds
// contain it, bucket indexes are monotone in the value, and the
// exact-bucket region is exact.
func TestBucketBoundaries(t *testing.T) {
	// Exact region: bucket index == value == upper bound.
	for v := uint64(0); v < histExact; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact bucket", v, got)
		}
		if up := BucketUpper(int(v)); up != v {
			t.Fatalf("BucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// Log region: sweep powers of two ± 1 and random values; the
	// containing bucket's upper bound must be ≥ v and the previous
	// bucket's upper bound < v.
	check := func(v uint64) {
		i := bucketOf(v)
		if up := BucketUpper(i); up < v {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if up := BucketUpper(i - 1); up >= v {
				t.Fatalf("value %d at or below bucket %d's predecessor bound %d", v, i, up)
			}
		}
	}
	for shift := 4; shift < 64; shift++ {
		v := uint64(1) << shift
		check(v - 1)
		check(v)
		check(v + 1)
	}
	check(^uint64(0)) // MaxUint64 must fit in the last bucket
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		check(rng.Uint64() >> uint(rng.Intn(60)))
	}
	// Monotonicity across consecutive bucket uppers.
	prev := BucketUpper(0)
	for i := 1; i < histBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev {
			t.Fatalf("BucketUpper not strictly increasing at %d: %d then %d", i, prev, up)
		}
		// Width bound: relative error of the upper bound vs the bucket's
		// smallest member is ≤ histMaxRelErr.
		lo := prev + 1
		if float64(up-lo) > histMaxRelErr*float64(lo) {
			t.Fatalf("bucket %d too wide: [%d,%d]", i, lo, up)
		}
		prev = up
	}
}

// TestHistogramMergeAssociative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and both
// equal recording all samples into one histogram.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var hs [3]Histogram
	var all Histogram
	for i := range hs {
		for j := 0; j < 1000; j++ {
			v := rng.Uint64() >> uint(rng.Intn(50))
			hs[i].Observe(v)
			all.Observe(v)
		}
	}
	left := hs[0].Snapshot()
	left.Merge(hs[1].Snapshot())
	left.Merge(hs[2].Snapshot())
	right := hs[2].Snapshot()
	mid := hs[1].Snapshot()
	mid.Merge(right)
	first := hs[0].Snapshot()
	first.Merge(mid)
	want := all.Snapshot()
	if left != want || first != want {
		t.Fatal("merge is not associative or loses samples")
	}
}

// TestHistogramConcurrent: concurrent Observe loses nothing (run under
// -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Uint64() >> 32)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count %d, want %d", snap.Count, goroutines*per)
	}
	var sum uint64
	for _, n := range snap.Buckets {
		sum += n
	}
	if sum != snap.Count {
		t.Fatalf("bucket total %d != count %d", sum, snap.Count)
	}
}

// TestQuantileErrorBound: against exact sorted samples, the histogram
// quantile never undershoots and overshoots by at most histMaxRelErr.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1 + rng.Intn(5000)
		samples := make([]uint64, n)
		for i := range samples {
			// Mix magnitudes: exact region, mid-range, huge.
			switch rng.Intn(3) {
			case 0:
				samples[i] = uint64(rng.Intn(histExact))
			case 1:
				samples[i] = uint64(rng.Intn(1_000_000))
			default:
				samples[i] = rng.Uint64() >> uint(rng.Intn(40))
			}
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(n))
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			exact := samples[rank-1]
			est := snap.Quantile(q)
			if est < exact {
				t.Fatalf("trial %d q=%v: estimate %d undershoots exact %d", trial, q, est, exact)
			}
			if float64(est-exact) > histMaxRelErr*float64(exact) {
				t.Fatalf("trial %d q=%v: estimate %d exceeds exact %d by more than %.1f%%",
					trial, q, est, exact, 100*histMaxRelErr)
			}
		}
	}
}

// TestQuantileEmpty: an empty snapshot reports 0.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}
