package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
)

// incarnation is this process's forensic identity: a random 64-bit id
// drawn once at startup. Every trace entry and event-log record is
// stamped with it, which is what makes cross-process timelines
// stitchable after the fact: two processes that opened the same durable
// namespace (an incumbent dispatcher and its successor, or the register
// server between them) produce records that name WHICH life of the
// system wrote them, even though job ids — deliberately — repeat across
// incarnations. A PID cannot play this role (PIDs recycle, and the
// interesting comparisons cross machine boundaries); a random 64-bit
// draw collides with probability ~n²/2⁶⁵ over n processes, which is
// negligible at any fleet size this system will see.
var incarnation = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: reading incarnation randomness: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:]) | 1 // never 0: 0 means "unstamped"
}()

// incarnationStr caches the canonical %016x rendering; it is stamped on
// every sink log line, so formatting it once matters.
var incarnationStr = fmt.Sprintf("%016x", incarnation)

// Incarnation returns this process's random per-startup id.
func Incarnation() uint64 { return incarnation }

// IncarnationString returns the id in its canonical form: 16 lowercase
// hex digits. String (not raw uint64) is also the JSON wire form — a
// 64-bit integer would silently lose precision in any consumer that
// parses JSON numbers as float64.
func IncarnationString() string { return incarnationStr }

// FormatIncarnation renders any incarnation id in the canonical form
// IncarnationString uses for this process's own.
func FormatIncarnation(inc uint64) string { return fmt.Sprintf("%016x", inc) }
