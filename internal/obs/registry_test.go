package obs

import (
	"sync"
	"testing"
)

// TestRegistryGetOrCreate: same (name, labels) returns the same metric;
// different labels are distinct series of one family.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("amo_test_total", "h", "shard", "0")
	b := r.Counter("amo_test_total", "h", "shard", "0")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	c := r.Counter("amo_test_total", "h", "shard", "1")
	if a == c {
		t.Fatal("distinct label sets share a counter")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("counter = %d, want 3", a.Value())
	}
}

// TestRegistryKindMismatch: re-registering a name as a different kind
// panics (a programming error, not a runtime condition).
func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("amo_test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("amo_test_total", "h")
}

// TestRegistryConcurrent: concurrent registration and exposition are
// safe (run under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("amo_test_total", "h", "g", string(rune('a'+g))).Inc()
				r.Gauge("amo_test_depth", "h").Set(float64(i))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		r.Snapshot()
	}
	wg.Wait()
	snap := r.Snapshot()
	var total uint64
	for g := 0; g < 4; g++ {
		v, ok := snap[`amo_test_total{g="`+string(rune('a'+g))+`"}`].(uint64)
		if !ok {
			t.Fatalf("missing series for g=%c in %v", 'a'+g, snap)
		}
		total += v
	}
	if total != 400 {
		t.Fatalf("snapshot total %d, want 400", total)
	}
}

// TestGaugeAdd: concurrent float adds converge exactly (CAS loop).
func TestGaugeAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

// TestHistogramSnapshotMergesSeries: HistogramSnapshot folds every
// label set of one family into a single mergeable snapshot.
func TestHistogramSnapshotMergesSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("amo_test_lat", "h", 1, "shard", "0").Observe(5)
	r.Histogram("amo_test_lat", "h", 1, "shard", "1").Observe(100)
	snap, ok := r.HistogramSnapshot("amo_test_lat")
	if !ok || snap.Count != 2 {
		t.Fatalf("merged snapshot count = %d (ok=%v), want 2", snap.Count, ok)
	}
	if _, ok := r.HistogramSnapshot("amo_absent"); ok {
		t.Fatal("HistogramSnapshot invented an absent family")
	}
}
