package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout. Values below histExact get one exact bucket
// each; above that, every power-of-two octave is split into 2^histSubBits
// sub-buckets of equal width, so a bucket's width is at most 1/8 of its
// lower bound and any quantile read from a bucket's upper bound
// overshoots the true sample by at most 12.5% (histMaxRelErr). The
// layout is closed under merge — two histograms recorded independently
// have identical bucket boundaries — which is what makes per-shard or
// per-process snapshots mergeable by plain vector addition.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	histExact   = 2 * histSub      // values < histExact get exact buckets
	// Octaves for bit lengths 5..64 (values ≥ 16), histSub buckets each.
	histBuckets = histExact + (64-4)*histSub

	// histMaxRelErr bounds Quantile's overshoot: upper/lower of any
	// log bucket is < 1 + 1/histSub = 1.125.
	histMaxRelErr = 1.0 / histSub
)

// bucketOf maps a recorded value to its bucket index.
func bucketOf(v uint64) int {
	if v < histExact {
		return int(v)
	}
	hi := bits.Len64(v)                // ≥ 5
	sub := v >> (hi - 1 - histSubBits) // in [histSub, 2·histSub)
	return histExact + (hi-5)*histSub + int(sub) - histSub
}

// BucketUpper returns the largest value that lands in bucket i — the
// inclusive upper bound used as the Prometheus `le` label and as the
// Quantile estimate.
func BucketUpper(i int) uint64 {
	if i < histExact {
		return uint64(i)
	}
	oct := (i - histExact) / histSub
	sub := uint64((i-histExact)%histSub) + histSub
	width := uint64(1) << (oct + 1)
	return sub<<(oct+1) + width - 1
}

// Histogram is a fixed-shape log-bucketed histogram of uint64 samples
// (typically nanoseconds; Scale converts to exposition units). Record
// is two atomic adds and is safe for concurrent use. The count/sum pair
// sits on its own cache line ahead of the bucket array so the hottest
// words never false-share with whatever the registry allocates next.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	_     [48]byte
	b     [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.b[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram's state. Concurrent Observes may be
// torn across count/sum/buckets by at most the records in flight; the
// snapshot is internally consistent enough for quantiles and merging.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.b {
		s.Buckets[i] = h.b[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable with
// any other snapshot (the bucket layout is fixed package-wide).
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Merge folds o into s. Merging is bucket-wise addition, so it is
// commutative and associative: shard snapshots can be combined in any
// grouping and yield the same aggregate.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) as the upper bound
// of the bucket holding the ⌈q·count⌉-th smallest sample. The estimate
// never undershoots the true sample and overshoots it by at most
// histMaxRelErr (12.5%); values below histExact are exact. Returns 0
// for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}
