package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates what a series holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// promType maps a kind to its Prometheus TYPE keyword.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family.
type series struct {
	labels []string // alternating k1, v1, k2, v2, …
	c      *Counter
	g      *Gauge
	h      *Histogram
	cFn    func() uint64
	gFn    func() float64
}

// family groups every series sharing one metric name; HELP and TYPE are
// family-wide, per the exposition format.
type family struct {
	name  string
	help  string
	kind  metricKind
	scale float64 // histogram exposition scale (raw units → exposed units)
	order []*series
	byKey map[string]*series
}

// Registry holds metric families and renders them. A Registry is safe
// for concurrent registration and exposition. Two registries are used
// in practice: one per Dispatcher (its gauges die with it) and the
// process-global Default for layers created from spec strings (netmem,
// membackend) that have no dispatcher to hang metrics off.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-global registry. Layers without an owning
// Dispatcher (netmem client/server, membackend) register here; the ops
// endpoint exposes it alongside the dispatcher's own registry.
var Default = NewRegistry()

func labelKey(kv []string) string { return strings.Join(kv, "\x1f") }

// getSeries finds or creates the (name, labels) series, creating the
// family on first use. Registering the same name with a different kind
// is a programming error and panics — metric names are compile-time
// constants in this codebase.
func (r *Registry) getSeries(name, help string, kind metricKind, scale float64, kv []string) *series {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, scale: scale, byKey: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	key := labelKey(kv)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]string(nil), kv...)}
		switch kind {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = new(Histogram)
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter registers (or finds) a counter series. kv is an alternating
// label key/value list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return r.getSeries(name, help, kindCounter, 0, kv).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.getSeries(name, help, kindGauge, 0, kv).g
}

// CounterFunc registers a pull-style counter: fn is called at
// exposition time. This is the zero-hot-path-cost shape — the engine
// keeps maintaining the counters it already had, and only the scrape
// pays for reading them. fn must be safe to call concurrently with the
// code it observes.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, kv ...string) {
	r.getSeries(name, help, kindCounterFunc, 0, kv).cFn = fn
}

// GaugeFunc registers a pull-style gauge; see CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.getSeries(name, help, kindGaugeFunc, 0, kv).gFn = fn
}

// Histogram registers (or finds) a histogram series. scale converts
// recorded raw units into exposed units (1e-9 for nanosecond samples
// exposed as seconds; 1 for dimensionless samples).
func (r *Registry) Histogram(name, help string, scale float64, kv ...string) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return r.getSeries(name, help, kindHistogram, scale, kv).h
}

// HistogramSnapshot merges every series of the named histogram family
// into one snapshot (per-label-set histograms of one family share the
// bucket layout, so the merge is exact). ok is false when the family is
// absent or not a histogram.
func (r *Registry) HistogramSnapshot(name string) (HistSnapshot, bool) {
	r.mu.Lock()
	f := r.fams[name]
	var hs []*Histogram
	if f != nil && f.kind == kindHistogram {
		for _, s := range f.order {
			hs = append(hs, s.h)
		}
	}
	r.mu.Unlock()
	if f == nil || f.kind != kindHistogram {
		return HistSnapshot{}, false
	}
	var out HistSnapshot
	for _, h := range hs {
		out.Merge(h.Snapshot())
	}
	return out, true
}

// Snapshot renders the registry as a flat name{labels} → value map —
// the representation the legacy expvar adapter publishes. Counters and
// gauges render as numbers; histograms as {count, sum, p50, p99, p999}
// sub-maps derived from the same buckets Prometheus sees.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range fams {
		for _, s := range f.order {
			key := f.name + renderLabels(s.labels)
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindCounterFunc:
				out[key] = s.cFn()
			case kindGauge:
				out[key] = s.g.Value()
			case kindGaugeFunc:
				out[key] = s.gFn()
			case kindHistogram:
				snap := s.h.Snapshot()
				out[key] = map[string]any{
					"count": snap.Count,
					"sum":   float64(snap.Sum) * f.scale,
					"p50":   float64(snap.Quantile(0.50)) * f.scale,
					"p99":   float64(snap.Quantile(0.99)) * f.scale,
					"p999":  float64(snap.Quantile(0.999)) * f.scale,
				}
			}
		}
	}
	return out
}

// renderLabels formats an alternating k/v list as {k="v",…}; empty
// lists render as "".
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortedFamilies snapshots the family list in name order for stable
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
