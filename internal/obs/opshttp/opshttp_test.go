package opshttp

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeEndpoints: every route answers, /metrics parses as valid
// exposition, /statsz and /tracez are valid JSON with the expected
// shape, and /healthz reflects the health func.
func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("amo_test_jobs_total", "Jobs.", "shard", "0").Add(5)
	reg.Histogram("amo_test_latency_seconds", "Latency.", 1e-9).Observe(1500)
	tr := obs.NewTracer(1, 64)
	tr.Record(7, obs.TraceSubmitted, 0)
	tr.Record(7, obs.TraceStarted, 0)
	var healthy atomic.Bool
	srv, err := Serve("127.0.0.1:0", Options{
		Registries: []*obs.Registry{reg, obs.Default},
		Statsz:     func() any { return map[string]int{"pending": 3} },
		Healthz: func() error {
			if !healthy.Load() {
				return errors.New("still warming up")
			}
			return nil
		},
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unhealthy: %d %s", code, body)
	}
	healthy.Store(true)
	if code, body = get(t, base+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	st, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if st.Series == 0 {
		t.Fatal("/metrics served no series")
	}

	code, body = get(t, base+"/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var statsz struct {
		Metrics map[string]any `json:"metrics"`
		Stats   map[string]int `json:"stats"`
	}
	if err := json.Unmarshal(body, &statsz); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if statsz.Stats["pending"] != 3 {
		t.Fatalf("/statsz stats = %v", statsz.Stats)
	}
	if _, ok := statsz.Metrics[`amo_test_jobs_total{shard="0"}`]; !ok {
		t.Fatalf("/statsz metrics missing counter: %v", statsz.Metrics)
	}

	code, body = get(t, base+"/tracez")
	if code != 200 {
		t.Fatalf("/tracez = %d", code)
	}
	var tracez struct {
		Jobs []struct {
			ID     uint64 `json:"id"`
			Events []struct {
				Event string  `json:"event"`
				TUs   float64 `json:"t_us"`
			} `json:"events"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(body, &tracez); err != nil {
		t.Fatalf("/tracez not JSON: %v\n%s", err, body)
	}
	if len(tracez.Jobs) != 1 || tracez.Jobs[0].ID != 7 || len(tracez.Jobs[0].Events) != 2 {
		t.Fatalf("/tracez = %s", body)
	}
	if tracez.Jobs[0].Events[0].Event != "submitted" || tracez.Jobs[0].Events[1].Event != "started" {
		t.Fatalf("/tracez event names = %s", body)
	}

	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestLiveExposition validates a LIVE endpoint named by AMO_METRICS_URL
// — CI starts examples/quickstart with an ops endpoint and points this
// test at it, asserting the three layer families are present.
func TestLiveExposition(t *testing.T) {
	url := os.Getenv("AMO_METRICS_URL")
	if url == "" {
		t.Skip("AMO_METRICS_URL not set; CI-only live validation")
	}
	code, body := get(t, url)
	if code != 200 {
		t.Fatalf("GET %s = %d", url, code)
	}
	st, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("live exposition invalid: %v\n%s", err, body)
	}
	t.Logf("live exposition: %d families, %d series", st.Families, st.Series)
	for _, fam := range []string{"amo_dispatcher_", "amo_netmem_", "amo_membackend_"} {
		if !strings.Contains(string(body), "# TYPE "+fam) {
			t.Errorf("live exposition missing %s* family", fam)
		}
	}
}
