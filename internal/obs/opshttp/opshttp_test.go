package opshttp

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeEndpoints: every route answers, /metrics parses as valid
// exposition, /statsz and /tracez are valid JSON with the expected
// shape, and /healthz reflects the health func.
func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("amo_test_jobs_total", "Jobs.", "shard", "0").Add(5)
	reg.Histogram("amo_test_latency_seconds", "Latency.", 1e-9).Observe(1500)
	tr := obs.NewTracer(1, 64)
	tr.Record(7, obs.TraceSubmitted, 0)
	tr.Record(7, obs.TraceStarted, 0)
	var healthy atomic.Bool
	srv, err := Serve("127.0.0.1:0", Options{
		Registries: []*obs.Registry{reg, obs.Default},
		Statsz:     func() any { return map[string]int{"pending": 3} },
		Healthz: func() error {
			if !healthy.Load() {
				return errors.New("still warming up")
			}
			return nil
		},
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unhealthy: %d %s", code, body)
	}
	healthy.Store(true)
	if code, body = get(t, base+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	st, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if st.Series == 0 {
		t.Fatal("/metrics served no series")
	}

	code, body = get(t, base+"/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var statsz struct {
		Metrics map[string]any `json:"metrics"`
		Stats   map[string]int `json:"stats"`
	}
	if err := json.Unmarshal(body, &statsz); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if statsz.Stats["pending"] != 3 {
		t.Fatalf("/statsz stats = %v", statsz.Stats)
	}
	if _, ok := statsz.Metrics[`amo_test_jobs_total{shard="0"}`]; !ok {
		t.Fatalf("/statsz metrics missing counter: %v", statsz.Metrics)
	}

	code, body = get(t, base+"/tracez")
	if code != 200 {
		t.Fatalf("/tracez = %d", code)
	}
	var tracez struct {
		Jobs []struct {
			ID     uint64 `json:"id"`
			Events []struct {
				Event string  `json:"event"`
				TUs   float64 `json:"t_us"`
			} `json:"events"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(body, &tracez); err != nil {
		t.Fatalf("/tracez not JSON: %v\n%s", err, body)
	}
	if len(tracez.Jobs) != 1 || tracez.Jobs[0].ID != 7 || len(tracez.Jobs[0].Events) != 2 {
		t.Fatalf("/tracez = %s", body)
	}
	if tracez.Jobs[0].Events[0].Event != "submitted" || tracez.Jobs[0].Events[1].Event != "started" {
		t.Fatalf("/tracez event names = %s", body)
	}

	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestForensicEndpoints: /tracez's id= and limit= filters (including
// their 400 paths) and the /flightz flight-recorder dump.
func TestForensicEndpoints(t *testing.T) {
	tr := obs.NewTracer(1, 64)
	tr.Record(7, obs.TraceSubmitted, 0)
	tr.Record(7, obs.TraceStarted, 0)
	tr.Record(9, obs.TraceSubmitted, 1)
	tr.Record(11, obs.TraceSubmitted, 1)
	srv, err := Serve("127.0.0.1:0", Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	parse := func(body []byte) obs.TracezDoc {
		t.Helper()
		doc, err := obs.ParseTracezDoc(body)
		if err != nil {
			t.Fatalf("tracez body invalid: %v\n%s", err, body)
		}
		return doc
	}

	code, body := get(t, base+"/tracez")
	if code != 200 {
		t.Fatalf("/tracez = %d", code)
	}
	doc := parse(body)
	if doc.Incarnation != obs.IncarnationString() || len(doc.Jobs) != 3 {
		t.Fatalf("/tracez = %s", body)
	}
	for _, j := range doc.Jobs {
		for _, e := range j.Events {
			if e.Inc != doc.Incarnation || e.TS == 0 {
				t.Fatalf("event missing stitching fields: %+v", e)
			}
		}
	}

	code, body = get(t, base+"/tracez?id=7")
	if code != 200 {
		t.Fatalf("/tracez?id=7 = %d", code)
	}
	if doc = parse(body); len(doc.Jobs) != 1 || doc.Jobs[0].ID != 7 || len(doc.Jobs[0].Events) != 2 {
		t.Fatalf("/tracez?id=7 = %s", body)
	}

	code, body = get(t, base+"/tracez?id=999")
	if code != 200 {
		t.Fatalf("/tracez?id=999 = %d", code)
	}
	if doc = parse(body); len(doc.Jobs) != 0 {
		t.Fatalf("/tracez?id=999 should filter to nothing: %s", body)
	}

	code, body = get(t, base+"/tracez?limit=2")
	if code != 200 {
		t.Fatalf("/tracez?limit=2 = %d", code)
	}
	if doc = parse(body); len(doc.Jobs) != 2 {
		t.Fatalf("/tracez?limit=2 = %s", body)
	}

	for _, bad := range []string{"/tracez?id=banana", "/tracez?id=-1", "/tracez?limit=banana", "/tracez?limit=-1"} {
		if code, body = get(t, base+bad); code != http.StatusBadRequest {
			t.Errorf("%s = %d %s, want 400", bad, code, body)
		}
	}

	code, body = get(t, base+"/flightz")
	if code != 200 {
		t.Fatalf("/flightz = %d", code)
	}
	var dump eventlog.FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/flightz not a FlightDump: %v\n%s", err, body)
	}
	if dump.Incarnation != obs.IncarnationString() || dump.Reason != "on-demand" {
		t.Fatalf("/flightz header = %q %q", dump.Incarnation, dump.Reason)
	}
	// The process-default ring has at least the records this test's
	// logging produced — assert shape, not contents.
	for _, e := range dump.Events {
		if e.Event == "" || e.Seq == 0 {
			t.Fatalf("/flightz malformed record: %+v", e)
		}
	}
}

// TestLiveExposition validates a LIVE endpoint named by AMO_METRICS_URL
// — CI starts examples/quickstart with an ops endpoint and points this
// test at it, asserting the three layer families are present.
func TestLiveExposition(t *testing.T) {
	url := os.Getenv("AMO_METRICS_URL")
	if url == "" {
		t.Skip("AMO_METRICS_URL not set; CI-only live validation")
	}
	code, body := get(t, url)
	if code != 200 {
		t.Fatalf("GET %s = %d", url, code)
	}
	st, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("live exposition invalid: %v\n%s", err, body)
	}
	t.Logf("live exposition: %d families, %d series", st.Families, st.Series)
	for _, fam := range []string{"amo_dispatcher_", "amo_netmem_", "amo_membackend_"} {
		if !strings.Contains(string(body), "# TYPE "+fam) {
			t.Errorf("live exposition missing %s* family", fam)
		}
	}
}
