// Package opshttp is the engine's ops endpoint: a small HTTP mux over
// one or more obs registries serving Prometheus exposition (/metrics),
// liveness (/healthz), a JSON stats snapshot (/statsz), sampled job
// timelines (/tracez) and the stdlib profiler (/debug/pprof/*). The
// Dispatcher mounts it when DispatcherConfig.MetricsAddr is set, and
// amo-regd reuses the same mux behind its -metrics flag.
package opshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"atmostonce/internal/obs"
)

// Options configures the mux.
type Options struct {
	// Registries are exposed, concatenated, at /metrics (and as
	// name→value maps at /statsz). Families must not repeat across
	// registries.
	Registries []*obs.Registry
	// Statsz, when non-nil, contributes a "stats" object to /statsz —
	// the Dispatcher passes its Stats() here.
	Statsz func() any
	// Healthz, when non-nil, gates /healthz: a non-nil error answers
	// 503 with the error text. nil means always healthy.
	Healthz func() error
	// Tracer, when non-nil, serves sampled job timelines at /tracez.
	Tracer *obs.Tracer
}

// NewMux builds the ops mux.
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range o.Registries {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if o.Healthz != nil {
			if err := o.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		doc := make(map[string]any)
		metrics := make(map[string]any)
		for _, reg := range o.Registries {
			for k, v := range reg.Snapshot() {
				metrics[k] = v
			}
		}
		doc["metrics"] = metrics
		if o.Statsz != nil {
			doc["stats"] = o.Statsz()
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, tracezDoc(o.Tracer))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// tracezEvent and tracezJob are the stable /tracez JSON shape; t_us is
// microseconds since the job's first recorded event.
type tracezEvent struct {
	Event string  `json:"event"`
	Shard int32   `json:"shard"`
	TUs   float64 `json:"t_us"`
}

type tracezJob struct {
	ID     uint64        `json:"id"`
	Events []tracezEvent `json:"events"`
}

func tracezDoc(tr *obs.Tracer) map[string]any {
	jobs := []tracezJob{}
	if tr != nil {
		for _, tl := range tr.Timelines() {
			j := tracezJob{ID: tl.ID, Events: make([]tracezEvent, len(tl.Events))}
			t0 := tl.Events[0].TS
			for i, e := range tl.Events {
				j.Events[i] = tracezEvent{
					Event: e.Event.String(),
					Shard: e.Shard,
					TUs:   float64(e.TS-t0) / 1e3,
				}
			}
			jobs = append(jobs, j)
		}
	}
	return map[string]any{"jobs": jobs}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a listening ops endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// ops mux on it until Close.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("opshttp: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: NewMux(o), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
