// Package opshttp is the engine's ops endpoint: a small HTTP mux over
// one or more obs registries serving Prometheus exposition (/metrics),
// liveness (/healthz), a JSON stats snapshot (/statsz), sampled job
// timelines (/tracez), the process flight recorder (/flightz) and the
// stdlib profiler (/debug/pprof/*). The Dispatcher mounts it when
// DispatcherConfig.MetricsAddr is set, and amo-regd reuses the same mux
// behind its -metrics flag. Importing this package also pulls in
// procmetrics, so every ops endpoint's /metrics carries Go runtime
// health (GC, heap, goroutines, sched latency) and amo_build_info.
package opshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"atmostonce/internal/obs"
	"atmostonce/internal/obs/eventlog"
	_ "atmostonce/internal/obs/procmetrics" // register runtime + build-info metrics in obs.Default
)

// Options configures the mux.
type Options struct {
	// Registries are exposed, concatenated, at /metrics (and as
	// name→value maps at /statsz). Families must not repeat across
	// registries.
	Registries []*obs.Registry
	// Statsz, when non-nil, contributes a "stats" object to /statsz —
	// the Dispatcher passes its Stats() here.
	Statsz func() any
	// Healthz, when non-nil, gates /healthz: a non-nil error answers
	// 503 with the error text. nil means always healthy.
	Healthz func() error
	// Tracer, when non-nil, serves sampled job timelines at /tracez.
	Tracer *obs.Tracer
}

// NewMux builds the ops mux.
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range o.Registries {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if o.Healthz != nil {
			if err := o.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		doc := make(map[string]any)
		metrics := make(map[string]any)
		for _, reg := range o.Registries {
			for k, v := range reg.Snapshot() {
				metrics[k] = v
			}
		}
		doc["metrics"] = metrics
		if o.Statsz != nil {
			doc["stats"] = o.Statsz()
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		doc := obs.NewTracezDoc(o.Tracer)
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad id %q: %v", idStr, err), http.StatusBadRequest)
				return
			}
			jobs := doc.Jobs[:0]
			for _, j := range doc.Jobs {
				if j.ID == id {
					jobs = append(jobs, j)
				}
			}
			doc.Jobs = jobs
		}
		if limStr := r.URL.Query().Get("limit"); limStr != "" {
			lim, err := strconv.Atoi(limStr)
			if err != nil || lim < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", limStr), http.StatusBadRequest)
				return
			}
			if lim < len(doc.Jobs) {
				doc.Jobs = doc.Jobs[:lim]
			}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/flightz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = eventlog.WriteFlight(w, nil, "on-demand")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a listening ops endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// ops mux on it until Close.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("opshttp: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: NewMux(o), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
