package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceEvent is one step of a job's lifecycle through the dispatcher.
// The at-most-once contract fixes the legal orderings: Submitted ≤
// Queued ≤ (Stolen)* ≤ Started ≤ Resolved for executed jobs, with
// Journaled between Started and Resolved on durable dispatchers
// (record-then-do), Requeued marking residue carry-over between Queued
// and the next Started, Expired replacing Started..Resolved for
// deadline casualties (Cancelled likewise for jobs whose submission ctx
// was dead at round assembly), and Recovered jobs resolving straight
// from Submitted (the payload never runs twice across incarnations).
// Started appears at most once per id — that ordering IS the paper's
// guarantee, and the trace tests assert it.
type TraceEvent uint8

const (
	TraceSubmitted TraceEvent = iota + 1
	TraceQueued
	TraceStolen
	TraceRequeued
	TraceStarted
	TraceJournaled
	TraceResolved
	TraceExpired
	TraceRecovered
	TraceCancelled
)

var traceNames = [...]string{
	TraceSubmitted: "submitted",
	TraceQueued:    "queued",
	TraceStolen:    "stolen",
	TraceRequeued:  "requeued",
	TraceStarted:   "started",
	TraceJournaled: "journaled",
	TraceResolved:  "resolved",
	TraceExpired:   "expired",
	TraceRecovered: "recovered",
	TraceCancelled: "cancelled",
}

func (e TraceEvent) String() string {
	if int(e) < len(traceNames) && traceNames[e] != "" {
		return traceNames[e]
	}
	return "unknown"
}

// TraceEntry is one recorded event. TS is wall-clock (Unix nanoseconds)
// rather than monotonic on purpose: entries from different processes
// must merge into one timeline (StitchTimelines), and wall clock is the
// only scale they share. Inc is the recording process's incarnation id
// (Incarnation()), so a merged timeline can tell an incumbent's events
// from its successor's even though both use the same job ids.
type TraceEntry struct {
	ID    uint64     `json:"id"`
	Event TraceEvent `json:"-"`
	Shard int32      `json:"shard"`
	TS    int64      `json:"ts_unix_nano"`
	Inc   uint64     `json:"-"`
}

// Timeline is every recorded event of one job, in record order.
type Timeline struct {
	ID     uint64
	Events []TraceEntry
}

// DefaultTraceCap is the ring capacity used when a Tracer is built with
// cap ≤ 0: enough for ~1k sampled jobs' full lifecycles.
const DefaultTraceCap = 8192

// Tracer records sampled per-job event timelines into a fixed ring.
// Sampling is a deterministic hash of the job id, so every layer that
// sees a sampled job records it (no per-entry sampling state to
// thread), and the same id is sampled or not consistently across
// process incarnations — which is what lets a recovery test trace the
// same job in both lives. Record on an unsampled id is one multiply and
// a compare; sampled records share one mutex, acceptable because
// sampling keeps the traced stream sparse. A nil *Tracer is inert.
type Tracer struct {
	threshold uint64 // sample iff hash(id) < threshold
	mu        sync.Mutex
	ring      []TraceEntry
	next      int // overwrite cursor once the ring is full
}

// NewTracer builds a tracer sampling the given fraction of job ids
// (clamped to [0,1]); rate 0 returns nil, the inert tracer.
func NewTracer(rate float64, capacity int) *Tracer {
	if rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	t := &Tracer{ring: make([]TraceEntry, 0, capacity)}
	if rate >= 1 {
		t.threshold = ^uint64(0)
	} else {
		t.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return t
}

// traceHash spreads job ids (dense sequences) uniformly over uint64.
func traceHash(id uint64) uint64 {
	x := id * 0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xd6e8feb86659fd93
	return x ^ (x >> 32)
}

// Sampled reports whether id's events are recorded.
func (t *Tracer) Sampled(id uint64) bool {
	return t != nil && traceHash(id) < t.threshold
}

// Record appends one event for id if it is sampled. Safe on a nil
// tracer.
func (t *Tracer) Record(id uint64, ev TraceEvent, shard int) {
	if !t.Sampled(id) {
		return
	}
	e := TraceEntry{ID: id, Event: ev, Shard: int32(shard), TS: time.Now().UnixNano(), Inc: incarnation}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		if t.next++; t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.mu.Unlock()
}

// Snapshot returns the ring's entries oldest-first. Safe on a nil
// tracer (returns nil).
func (t *Tracer) Snapshot() []TraceEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		return append([]TraceEntry(nil), t.ring...)
	}
	// Full ring: the overwrite cursor points at the oldest entry.
	out := make([]TraceEntry, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Timelines groups the ring's entries by job id, each timeline in
// record order, timelines ordered by their first event's timestamp.
// Jobs whose early events were overwritten by ring wrap-around appear
// with the tail they still have.
func (t *Tracer) Timelines() []Timeline {
	entries := t.Snapshot()
	byID := make(map[uint64]*Timeline)
	order := make([]*Timeline, 0, 16)
	for _, e := range entries {
		tl := byID[e.ID]
		if tl == nil {
			tl = &Timeline{ID: e.ID}
			byID[e.ID] = tl
			order = append(order, tl)
		}
		tl.Events = append(tl.Events, e)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Events[0].TS < order[j].Events[0].TS
	})
	out := make([]Timeline, len(order))
	for i, tl := range order {
		out[i] = *tl
	}
	return out
}

// Timeline returns one job's recorded events (nil when untraced).
func (t *Tracer) Timeline(id uint64) []TraceEntry {
	var out []TraceEntry
	for _, e := range t.Snapshot() {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}
