package procmetrics

import (
	"bytes"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"

	"atmostonce/internal/obs"
)

// TestRuntimeFamiliesExposed: importing the package (init) registers the
// runtime-health families and amo_build_info into obs.Default, and the
// rendered exposition stays valid.
func TestRuntimeFamiliesExposed(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if _, err := obs.ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition with runtime families invalid: %v\n%s", err, body)
	}
	for _, fam := range []string{
		"amo_runtime_goroutines",
		"amo_runtime_heap_objects_bytes",
		"amo_runtime_memory_total_bytes",
		"amo_runtime_gc_cycles_total",
		"amo_runtime_gc_pause_seconds",
		"amo_runtime_sched_latency_seconds",
		"amo_build_info",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing %s family", fam)
		}
	}
	// A live process always has at least this test's goroutine.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "amo_runtime_goroutines ") {
			if strings.TrimPrefix(line, "amo_runtime_goroutines ") == "0" {
				t.Errorf("goroutine gauge reads 0 in a live process")
			}
			return
		}
	}
	t.Error("no amo_runtime_goroutines sample line")
}

// TestBuildInfo: the build-info gauge has value 1 and carries the
// running Go version as a label.
func TestBuildInfo(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "amo_build_info{") {
			continue
		}
		found = true
		if !strings.Contains(line, `goversion="`+runtime.Version()+`"`) {
			t.Errorf("build info lacks the running Go version: %s", line)
		}
		if !strings.HasSuffix(line, " 1") {
			t.Errorf("build info value != 1: %s", line)
		}
		if !strings.Contains(line, `revision="`) || !strings.Contains(line, `version="`) {
			t.Errorf("build info lacks revision/version labels: %s", line)
		}
	}
	if !found {
		t.Fatal("no amo_build_info sample")
	}
}

// TestHistQuantile exercises the bucket walk directly: median and max of
// a known distribution, the +Inf tail falling back to the finite lower
// bound, and the empty histogram.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{2, 6, 2},
		Buckets: []float64{0, 0.001, 0.01, 0.1},
	}
	if got := histQuantile(h, 0.5); got != 0.01 {
		t.Errorf("q0.5 = %v, want 0.01", got)
	}
	if got := histQuantile(h, 0); got != 0.001 {
		t.Errorf("q0 = %v, want 0.001", got)
	}
	if got := histQuantile(h, 1); got != 0.1 {
		t.Errorf("q1 = %v, want 0.1", got)
	}

	tail := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 0.5, math.Inf(1)},
	}
	if got := histQuantile(tail, 1); got != 0.5 {
		t.Errorf("q1 at +Inf tail = %v, want lower bound 0.5", got)
	}

	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty histogram = %v, want 0", got)
	}
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil histogram = %v, want 0", got)
	}
}

// TestSamplerLive: the goroutine count from the cached sampler is
// plausible and the GC quantiles are non-negative and finite.
func TestSamplerLive(t *testing.T) {
	if n := proc.uint64Value("/sched/goroutines:goroutines"); n == 0 {
		t.Error("sampler reports 0 goroutines in a live process")
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		v := proc.quantile("/gc/pauses:seconds", q)
		if v < 0 || v > 1e300 || v != v {
			t.Errorf("gc pause q%v = %v, want finite non-negative", q, v)
		}
	}
	if v := proc.uint64Value("/not/a/metric:units"); v != 0 {
		t.Errorf("unknown metric = %d, want 0", v)
	}
}
