// Package procmetrics bridges the Go runtime's own telemetry
// (runtime/metrics) into the process-default internal/obs registry, so
// every binary that serves /metrics exposes process health — GC pauses,
// heap size, goroutine count, scheduler latency — next to the amo_*
// application families. Importing the package (opshttp does it for
// every ops server) is the whole integration: registration happens in
// init, and samples are taken lazily when a scrape reads the gauges.
//
// It also registers amo_build_info, the conventional "what exactly is
// running" gauge: constant value 1 with the Go version, VCS revision,
// and module version as labels, read from debug.ReadBuildInfo.
package procmetrics

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"

	"atmostonce/internal/obs"
)

// sampleNames is the fixed set of runtime metrics we read. Reading a
// fixed batch keeps each refresh to one metrics.Read call.
var sampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// sampler caches one metrics.Read batch for refreshEvery, so a scrape
// that reads a dozen gauges costs one runtime sample, and concurrent
// scrapes don't stampede the runtime.
type sampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	taken   time.Time
}

const refreshEvery = 250 * time.Millisecond

var proc = &sampler{}

func (s *sampler) refreshLocked() {
	if s.samples == nil {
		s.samples = make([]metrics.Sample, len(sampleNames))
		for i, n := range sampleNames {
			s.samples[i].Name = n
		}
	}
	metrics.Read(s.samples)
	s.taken = time.Now()
}

// uint64Value returns the named metric as a uint64 (0 when the runtime
// doesn't publish it — KindBad guards against running under a future
// runtime that dropped a name).
func (s *sampler) uint64Value(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.taken) > refreshEvery {
		s.refreshLocked()
	}
	for i := range s.samples {
		if s.samples[i].Name == name && s.samples[i].Value.Kind() == metrics.KindUint64 {
			return s.samples[i].Value.Uint64()
		}
	}
	return 0
}

// quantile returns the q-quantile of the named Float64Histogram metric
// in seconds (0 when absent or empty). Buckets are cumulative-walked;
// the matched bucket's upper bound is reported, falling back to the
// lower bound at the +Inf tail so the result is always finite.
func (s *sampler) quantile(name string, q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.taken) > refreshEvery {
		s.refreshLocked()
	}
	for i := range s.samples {
		if s.samples[i].Name != name || s.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		return histQuantile(s.samples[i].Value.Float64Histogram(), q)
	}
	return 0
}

func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i+1] is the bucket's upper bound; at the +Inf
			// tail report the finite lower bound instead.
			hi := h.Buckets[i+1]
			if hi > 1e300 || hi != hi { // +Inf or NaN
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

func registerQuantiles(name, help, metric string) {
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"1", 1}} {
		q := q
		obs.Default.GaugeFunc(name, help,
			func() float64 { return proc.quantile(metric, q.v) }, "q", q.label)
	}
}

func buildInfoLabels() (goversion, revision, version string) {
	goversion, revision, version = runtime.Version(), "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
		}
	}
	return
}

func init() {
	obs.Default.GaugeFunc("amo_runtime_goroutines",
		"Live goroutines in this process.",
		func() float64 { return float64(proc.uint64Value("/sched/goroutines:goroutines")) })
	obs.Default.GaugeFunc("amo_runtime_heap_objects_bytes",
		"Bytes of memory occupied by live heap objects plus dead-not-yet-swept objects.",
		func() float64 { return float64(proc.uint64Value("/memory/classes/heap/objects:bytes")) })
	obs.Default.GaugeFunc("amo_runtime_memory_total_bytes",
		"Total bytes of memory mapped by the Go runtime.",
		func() float64 { return float64(proc.uint64Value("/memory/classes/total:bytes")) })
	obs.Default.CounterFunc("amo_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() uint64 { return proc.uint64Value("/gc/cycles/total:gc-cycles") })
	registerQuantiles("amo_runtime_gc_pause_seconds",
		"Quantiles of GC stop-the-world pause latency.", "/gc/pauses:seconds")
	registerQuantiles("amo_runtime_sched_latency_seconds",
		"Quantiles of goroutine scheduling latency (runnable to running).", "/sched/latencies:seconds")

	goversion, revision, version := buildInfoLabels()
	obs.Default.Gauge("amo_build_info",
		"Build identity of this binary; value is always 1.",
		"goversion", goversion, "revision", revision, "version", version).Set(1)
}
