package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Cross-process trace stitching. A job deliberately crosses process
// boundaries in this system — journaled by a dispatcher, observed by the
// register server, resolved from the journal by a successor — so one
// process's /tracez is only a fragment of the job's real history. The
// types here define the /tracez JSON document (opshttp renders it,
// anything can parse it back) and StitchTimelines merges documents from
// several processes into per-job forensic timelines.
//
// Merging is by wall clock, which on one host orders events to well
// under the lease TTLs that drive a failover; but crucially the
// at-most-once grammar does NOT depend on cross-process ordering being
// exact. "Started at most once" is a COUNT over the merged timeline, and
// per-incarnation rules (resolved is terminal, a recovered incarnation
// never starts the job) are checked within one process's records, which
// carry that process's own ordering. Clock skew can make a merged
// timeline read oddly; it cannot make a duplicate execution look legal.

// TracezEvent is one event of the /tracez JSON shape. TUs is
// microseconds since the (possibly merged) timeline's first event; TS
// and Inc are the wall-clock stamp and recording process's incarnation
// that make cross-process merging possible.
type TracezEvent struct {
	Event string  `json:"event"`
	Shard int32   `json:"shard"`
	TUs   float64 `json:"t_us"`
	TS    int64   `json:"ts_unix_nano"`
	Inc   string  `json:"inc"`
}

// TracezJob is one job's timeline in the /tracez JSON shape.
type TracezJob struct {
	ID     uint64        `json:"id"`
	Events []TracezEvent `json:"events"`
}

// TracezDoc is the full /tracez document: the serving process's
// incarnation plus every sampled job timeline.
type TracezDoc struct {
	Incarnation string      `json:"incarnation"`
	Jobs        []TracezJob `json:"jobs"`
}

// NewTracezDoc snapshots a tracer into the /tracez document shape. A nil
// tracer yields an empty (but valid) document.
func NewTracezDoc(tr *Tracer) TracezDoc {
	doc := TracezDoc{Incarnation: IncarnationString(), Jobs: []TracezJob{}}
	if tr == nil {
		return doc
	}
	for _, tl := range tr.Timelines() {
		j := TracezJob{ID: tl.ID, Events: make([]TracezEvent, len(tl.Events))}
		t0 := tl.Events[0].TS
		for i, e := range tl.Events {
			inc := e.Inc
			if inc == 0 {
				inc = incarnation
			}
			j.Events[i] = TracezEvent{
				Event: e.Event.String(),
				Shard: e.Shard,
				TUs:   float64(e.TS-t0) / 1e3,
				TS:    e.TS,
				Inc:   FormatIncarnation(inc),
			}
		}
		doc.Jobs = append(doc.Jobs, j)
	}
	return doc
}

// ParseTracezDoc decodes a /tracez response body.
func ParseTracezDoc(b []byte) (TracezDoc, error) {
	var doc TracezDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("obs: parsing tracez document: %w", err)
	}
	return doc, nil
}

// StitchTimelines merges /tracez documents from several processes into
// unified per-job timelines: events are grouped by the (already global)
// job id, ordered by wall-clock timestamp — ties keep document order, so
// records from one process never reorder against each other — and TUs is
// recomputed against the merged timeline's first event. Jobs are
// returned in order of their earliest event.
func StitchTimelines(docs ...TracezDoc) []TracezJob {
	byID := make(map[uint64]*TracezJob)
	order := make([]*TracezJob, 0, 64)
	for _, doc := range docs {
		for _, j := range doc.Jobs {
			tl := byID[j.ID]
			if tl == nil {
				tl = &TracezJob{ID: j.ID}
				byID[j.ID] = tl
				order = append(order, tl)
			}
			tl.Events = append(tl.Events, j.Events...)
		}
	}
	for _, tl := range order {
		sort.SliceStable(tl.Events, func(i, k int) bool { return tl.Events[i].TS < tl.Events[k].TS })
		t0 := tl.Events[0].TS
		for i := range tl.Events {
			tl.Events[i].TUs = float64(tl.Events[i].TS-t0) / 1e3
		}
	}
	sort.SliceStable(order, func(i, k int) bool {
		return order[i].Events[0].TS < order[k].Events[0].TS
	})
	out := make([]TracezJob, len(order))
	for i, tl := range order {
		out[i] = *tl
	}
	return out
}

// CheckStitched validates the at-most-once trace grammar on a merged,
// possibly multi-incarnation timeline:
//
//   - "started" appears at most once ACROSS incarnations — the paper's
//     guarantee itself, and a pure count, immune to clock skew;
//   - within one incarnation, "resolved", "expired" and "cancelled" are
//     terminal and appear at most once (a successor may legitimately resolve a job
//     its predecessor also resolved — each life re-runs the deterministic
//     stream — so the per-incarnation scope is the correct one);
//   - an incarnation that records "recovered" for the job never records
//     "started" for it: recovered jobs resolve from the journal, their
//     payload must not run again;
//   - a client-side "journaled" (shard ≥ 0) follows a "started" in the
//     same incarnation (record-then-do runs inside the worker); the
//     register server's journal observations (shard < 0) carry no such
//     constraint — the server sees the write, not the worker.
//
// It assumes the timeline is complete (no ring wrap-around truncation).
func CheckStitched(j TracezJob) error {
	started := 0
	type incState struct {
		terminal  bool
		recovered bool
		started   bool
	}
	incs := make(map[string]*incState)
	for _, e := range j.Events {
		st := incs[e.Inc]
		if st == nil {
			st = &incState{}
			incs[e.Inc] = st
		}
		if st.terminal {
			return fmt.Errorf("job %d: event %q after a terminal event in incarnation %s", j.ID, e.Event, e.Inc)
		}
		switch e.Event {
		case "started":
			started++
			st.started = true
			if started > 1 {
				return fmt.Errorf("job %d: started %d times across incarnations (at-most-once violated)", j.ID, started)
			}
			if st.recovered {
				return fmt.Errorf("job %d: started in incarnation %s after it recovered the job", j.ID, e.Inc)
			}
		case "recovered":
			st.recovered = true
			if st.started {
				return fmt.Errorf("job %d: recovered in incarnation %s after it started the job", j.ID, e.Inc)
			}
		case "resolved", "expired", "cancelled":
			st.terminal = true
		case "journaled":
			if e.Shard >= 0 && !st.started {
				return fmt.Errorf("job %d: journaled before started in incarnation %s", j.ID, e.Inc)
			}
		}
	}
	return nil
}

// Incarnations lists the distinct incarnation ids a merged timeline
// spans, in order of first appearance.
func (j TracezJob) Incarnations() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range j.Events {
		if !seen[e.Inc] {
			seen[e.Inc] = true
			out = append(out, e.Inc)
		}
	}
	return out
}
