package atmostonce

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunBasic(t *testing.T) {
	const n, m = 500, 4
	var count atomic.Int64
	sum, err := Run(Config{Jobs: n, Workers: m}, func(worker, job int) {
		if worker < 1 || worker > m || job < 1 || job > n {
			t.Errorf("bad ids worker=%d job=%d", worker, job)
		}
		count.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Duplicates != 0 {
		t.Fatalf("duplicates = %d", sum.Duplicates)
	}
	if int(count.Load()) != sum.Performed {
		t.Fatalf("payload ran %d times, Performed = %d", count.Load(), sum.Performed)
	}
	if sum.Performed < EffectivenessLowerBound(n, m, 0) {
		t.Fatalf("Performed = %d below guarantee %d", sum.Performed, EffectivenessLowerBound(n, m, 0))
	}
	if sum.Performed+sum.Remaining != n {
		t.Fatalf("Performed+Remaining = %d, want n", sum.Performed+sum.Remaining)
	}
}

func TestRunUnperformedPartition(t *testing.T) {
	// Performed payload jobs and Summary.Unperformed must partition [1..n],
	// including under crash injection.
	const n, m = 400, 4
	var ran [n + 1]atomic.Bool
	sum, err := Run(Config{
		Jobs: n, Workers: m,
		CrashAfter: []uint64{100, 0, 250, 0},
		Jitter:     true, Seed: 2,
	}, func(worker, job int) {
		ran[job].Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Unperformed) != sum.Remaining {
		t.Fatalf("len(Unperformed) = %d, Remaining = %d", len(sum.Unperformed), sum.Remaining)
	}
	left := make(map[int]bool, len(sum.Unperformed))
	prev := 0
	for _, j := range sum.Unperformed {
		if j <= prev {
			t.Fatalf("Unperformed not ascending: %v", sum.Unperformed)
		}
		prev = j
		left[j] = true
	}
	for j := 1; j <= n; j++ {
		if ran[j].Load() == left[j] {
			t.Fatalf("job %d: ran=%v unperformed=%v (must be exactly one)", j, ran[j].Load(), left[j])
		}
	}
}

func TestRunNilPayload(t *testing.T) {
	sum, err := Run(Config{Jobs: 100, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Performed == 0 {
		t.Fatal("nothing performed")
	}
}

func TestRunIterative(t *testing.T) {
	sum, err := Run(Config{Jobs: 4000, Workers: 4, Iterative: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Duplicates != 0 {
		t.Fatalf("duplicates = %d", sum.Duplicates)
	}
}

func TestRunInvalid(t *testing.T) {
	if _, err := Run(Config{Jobs: 1, Workers: 4}, nil); err == nil {
		t.Fatal("n<m accepted")
	}
}

func TestWriteAllCoversEverything(t *testing.T) {
	const n = 1000
	var cells [n + 1]atomic.Int32
	redundant, err := WriteAll(n, 4, func(worker, cell int) {
		cells[cell].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 1; c <= n; c++ {
		if cells[c].Load() == 0 {
			t.Fatalf("cell %d never written", c)
		}
		total += int(cells[c].Load())
	}
	if total-n != redundant {
		t.Fatalf("redundant = %d, counted %d", redundant, total-n)
	}
}

func TestSimulateRoundRobin(t *testing.T) {
	rep, err := Simulate(SimConfig{Jobs: 200, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated")
	}
	if rep.Performed < rep.EffectivenessLB {
		t.Fatalf("Performed %d < lower bound %d", rep.Performed, rep.EffectivenessLB)
	}
	if rep.Work == 0 || rep.Steps == 0 {
		t.Fatal("metrics missing")
	}
}

func TestSimulateTightnessExact(t *testing.T) {
	rep, err := Simulate(SimConfig{Jobs: 300, Workers: 6, Scheduler: Tightness})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Performed != rep.EffectivenessLB {
		t.Fatalf("tightness run performed %d, want exactly %d", rep.Performed, rep.EffectivenessLB)
	}
	if rep.Crashes != 5 {
		t.Fatalf("crashes = %d, want m-1", rep.Crashes)
	}
}

func TestSimulateCollisions(t *testing.T) {
	rep, err := Simulate(SimConfig{
		Jobs: 150, Workers: 3, Beta: 27, Scheduler: Staircase, TrackCollisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collisions == nil || len(rep.Collisions) != 3 {
		t.Fatal("collision matrix missing")
	}
	for p := range rep.Collisions {
		if rep.Collisions[p][p] != 0 {
			t.Fatalf("self collision at %d", p+1)
		}
	}
}

func TestSimulateIterative(t *testing.T) {
	rep, err := Simulate(SimConfig{Jobs: 1000, Workers: 3, Iterative: true, Scheduler: RandomSched, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 {
		t.Fatal("AMO violated")
	}
}

func TestSimulateIncompatible(t *testing.T) {
	_, err := Simulate(SimConfig{Jobs: 100, Workers: 4, Iterative: true, Scheduler: Tightness})
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
	_, err = Simulate(SimConfig{Jobs: 100, Workers: 4, Scheduler: Scheduler(42)})
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
}

func TestBoundHelpers(t *testing.T) {
	if EffectivenessLowerBound(100, 4, 0) != 94 {
		t.Error("lower bound wrong")
	}
	if EffectivenessUpperBound(100, 3) != 97 {
		t.Error("upper bound wrong")
	}
}
