// Command amo-jobd is the multi-tenant networked job service over the
// at-most-once engine (internal/jobd): clients submit named, registered
// task types over a binary TCP protocol; the server enforces per-tenant
// admission quotas, journals every admitted submission's descriptor,
// runs it through the streaming dispatcher, and streams completion
// events to subscribers. Killed and restarted over a durable backend
// (-backend mmap:PATH), it replays the descriptor log: work a previous
// incarnation performed is deduped against the shard journals, work it
// merely admitted re-executes — exactly once either way.
//
// The binary registers three demo task types (production deployments
// embed jobd.Server with their own Registry):
//
//	noop@v1   do nothing (payload ignored) — the load generator's default
//	sleep@v1  sleep for the little-endian uint32 milliseconds in the payload
//	fail@v1   return an error carrying the payload text
//
// Tenants are declared with repeated -tenant NAME:MAXPENDING:MAXHIGH
// flags (0 = unlimited); -default-tenant admits unlisted tenants under
// the given limits, otherwise they are rejected.
//
// With -load the same binary turns into the load generator: it opens
// -conns pipelined connections against -addr and pushes -jobs
// submissions down each, reporting accepted/quota/capacity counts and
// throughput (quota rejections are expected outcomes, not failures).
//
// Usage:
//
//	amo-jobd [-listen 127.0.0.1:7979] [-backend atomic|mmap:PATH] [-maxjobs N]
//	         [-shards S] [-workers W] [-journal-batch K]
//	         [-tenant NAME:MAXPENDING:MAXHIGH]... [-default-tenant MAXPENDING:MAXHIGH]
//	         [-metrics ADDR] [-trace RATE]
//	amo-jobd -load -addr HOST:PORT [-conns N] [-jobs M] [-tenants a,b] [-task noop] [-high-every N] [-subscribe]
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"atmostonce/internal/jobd"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "amo-jobd:", err)
		os.Exit(1)
	}
}

// tenantFlags collects repeated -tenant NAME:MAXPENDING:MAXHIGH values.
type tenantFlags struct {
	m map[string]jobd.TenantLimits
}

func (t *tenantFlags) String() string { return fmt.Sprintf("%v", t.m) }

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 || parts[0] == "" {
		return fmt.Errorf("want NAME:MAXPENDING:MAXHIGH, got %q", v)
	}
	maxPending, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad MAXPENDING in %q: %w", v, err)
	}
	maxHigh, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("bad MAXHIGH in %q: %w", v, err)
	}
	if t.m == nil {
		t.m = make(map[string]jobd.TenantLimits)
	}
	t.m[parts[0]] = jobd.TenantLimits{MaxPending: maxPending, MaxHigh: maxHigh}
	return nil
}

// builtinRegistry registers the demo task types.
func builtinRegistry() *jobd.Registry {
	reg := jobd.NewRegistry()
	reg.Register("noop", 1, func(context.Context, []byte) error { return nil })
	reg.Register("sleep", 1, func(ctx context.Context, payload []byte) error {
		if len(payload) < 4 {
			return errors.New("sleep: payload wants a little-endian uint32 of milliseconds")
		}
		d := time.Duration(binary.LittleEndian.Uint32(payload)) * time.Millisecond
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	reg.Register("fail", 1, func(_ context.Context, payload []byte) error {
		return fmt.Errorf("fail: %s", payload)
	})
	return reg
}

// run starts the server (blocking until SIGINT/SIGTERM) or, with -load,
// runs the load generator to completion. ready, when non-nil, receives
// the server's bound address — the test hook.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("amo-jobd", flag.ContinueOnError)
	// Server mode.
	listen := fs.String("listen", "127.0.0.1:7979", "address to listen on (host:port; port 0 picks one)")
	backend := fs.String("backend", "atomic", "membackend spec family backing the shard journals and the descriptor log (e.g. mmap:/var/lib/amo/jobd)")
	maxJobs := fs.Int("maxjobs", 1<<20, "durable job-id budget across restarts")
	shards := fs.Int("shards", 0, "dispatcher shards (0 = default)")
	workers := fs.Int("workers", 0, "workers per shard (0 = default)")
	journalBatch := fs.Int("journal-batch", 0, "journal group-commit factor (0 = per-job)")
	var tenants tenantFlags
	fs.Var(&tenants, "tenant", "declare a tenant as NAME:MAXPENDING:MAXHIGH (repeatable; 0 = unlimited)")
	defTenant := fs.String("default-tenant", "", "admit unlisted tenants under MAXPENDING:MAXHIGH limits (empty = reject them)")
	metrics := fs.String("metrics", "", "serve the ops endpoint (/metrics, /healthz, /statsz, /tracez, /debug/pprof/) on this address")
	trace := fs.Float64("trace", 0, "sample this fraction of job ids into the tracer (served at /tracez; 0 disables)")
	// Load-generator mode.
	load := fs.Bool("load", false, "run as load generator against -addr instead of serving")
	addr := fs.String("addr", "", "server address to hammer (load mode)")
	conns := fs.Int("conns", 16, "concurrent connections (load mode)")
	jobs := fs.Int("jobs", 100, "submissions per connection (load mode)")
	loadTenants := fs.String("tenants", "load", "comma-separated tenants to cycle through (load mode)")
	task := fs.String("task", "noop", "task name to submit (load mode)")
	taskVersion := fs.Uint("task-version", 1, "task version to submit (load mode)")
	payloadSize := fs.Int("payload", 8, "payload bytes per submission (load mode)")
	highEvery := fs.Int("high-every", 0, "make every Nth submission High priority (load mode; 0 = never)")
	subscribe := fs.Bool("subscribe", false, "subscribe to completions and wait for every accepted job (load mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	if *load {
		if *addr == "" {
			return errors.New("-load requires -addr")
		}
		rep, err := jobd.RunLoad(jobd.LoadOptions{
			Addr:        *addr,
			Conns:       *conns,
			Jobs:        *jobs,
			Tenants:     strings.Split(*loadTenants, ","),
			Task:        *task,
			Version:     uint32(*taskVersion),
			PayloadSize: *payloadSize,
			HighEvery:   *highEvery,
			Subscribe:   *subscribe,
		})
		if err != nil {
			return err
		}
		fmt.Println("amo-jobd load:", rep)
		if rep.Failed > 0 {
			return fmt.Errorf("%d submissions failed", rep.Failed)
		}
		return nil
	}

	if *trace < 0 || *trace > 1 {
		return fmt.Errorf("-trace %v out of range [0,1]", *trace)
	}
	opts := jobd.Options{
		Registry:        builtinRegistry(),
		Backend:         *backend,
		MaxJobs:         *maxJobs,
		Shards:          *shards,
		Workers:         *workers,
		JournalBatch:    *journalBatch,
		Tenants:         tenants.m,
		MetricsAddr:     *metrics,
		TraceSampleRate: *trace,
	}
	if *defTenant != "" {
		parts := strings.Split(*defTenant, ":")
		if len(parts) != 2 {
			return fmt.Errorf("-default-tenant wants MAXPENDING:MAXHIGH, got %q", *defTenant)
		}
		maxPending, err := strconv.Atoi(parts[0])
		if err != nil {
			return fmt.Errorf("bad -default-tenant: %w", err)
		}
		maxHigh, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("bad -default-tenant: %w", err)
		}
		opts.DefaultLimits = &jobd.TenantLimits{MaxPending: maxPending, MaxHigh: maxHigh}
	}
	srv, err := jobd.New(opts)
	if err != nil {
		return err
	}
	bound, err := srv.Listen(*listen)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "amo-jobd: listening on %s (backend %s, maxjobs %d)\n", bound, *backend, *maxJobs)
	if *metrics != "" {
		fmt.Fprintf(os.Stderr, "amo-jobd: ops endpoint on %s\n", srv.OpsAddr())
	}
	if ready != nil {
		ready <- bound
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "amo-jobd: shutting down")
	return srv.Close()
}
