package main

import (
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServerAndLoad boots the real binary entry point (server mode,
// port 0), points the load generator at it, and shuts the server down
// with a real SIGTERM — the full operator path minus exec.
func TestServerAndLoad(t *testing.T) {
	ready := make(chan string, 1)
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-tenant", "load:0:0",
			"-tenant", "quiet:1:0",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-srvErr:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	if err := run([]string{
		"-load", "-addr", addr,
		"-conns", "4", "-jobs", "25",
		"-high-every", "5", "-subscribe",
	}, nil); err != nil {
		t.Fatalf("load run: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatalf("server shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit on SIGTERM")
	}
}

// TestBadFlags covers the operator-error paths.
func TestBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"load without addr", []string{"-load"}, "-load requires -addr"},
		{"malformed tenant", []string{"-tenant", "justname"}, "want NAME:MAXPENDING:MAXHIGH"},
		{"tenant bad number", []string{"-tenant", "a:x:0"}, "bad MAXPENDING"},
		{"malformed default tenant", []string{"-default-tenant", "7"}, "wants MAXPENDING:MAXHIGH"},
		{"trace out of range", []string{"-trace", "1.5"}, "out of range"},
		{"stray args", []string{"-load", "-addr", "x", "oops"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
