package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTightness(t *testing.T) {
	if err := run([]string{"-n", "256", "-m", "4", "-adversary", "tightness"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIterative(t *testing.T) {
	args := []string{"-n", "512", "-m", "2", "-iterative", "-adversary", "random", "-seed", "3"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollisions(t *testing.T) {
	if err := run([]string{"-n", "128", "-m", "4", "-beta", "48", "-adversary", "staircase", "-collisions"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrent(t *testing.T) {
	if err := run([]string{"-n", "512", "-m", "4", "-conc"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "nope"}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
