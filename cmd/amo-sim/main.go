// Command amo-sim runs a single adversarial simulation of KKβ or
// IterativeKK(ε) and prints the measured effectiveness, work and safety
// outcome.
//
// Usage:
//
//	amo-sim -n 4096 -m 8 [-beta 8] [-adversary tightness] [-f 7]
//	amo-sim -n 65536 -m 8 -iterative -eps-denom 2 -adversary random -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"atmostonce"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amo-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amo-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1024, "number of jobs")
		m         = fs.Int("m", 4, "number of processes")
		beta      = fs.Int("beta", 0, "termination parameter β (0 = m)")
		f         = fs.Int("f", 0, "crash budget (f < m)")
		advName   = fs.String("adversary", "roundrobin", "roundrobin|random|tightness|staircase|alternator")
		seed      = fs.Int64("seed", 0, "random adversary seed")
		crashProb = fs.Float64("crash-prob", 0.001, "random adversary crash probability")
		iterative = fs.Bool("iterative", false, "run IterativeKK(ε) instead of plain KKβ")
		epsDenom  = fs.Int("eps-denom", 1, "1/ε for the iterative algorithm")
		coll      = fs.Bool("collisions", false, "track Definition 5.2 collisions (plain KKβ)")
		concRun   = fs.Bool("conc", false, "run on real goroutines over sync/atomic registers instead of the simulator")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concRun {
		return runConc(*n, *m, *beta, *iterative, *epsDenom, *seed)
	}
	scheds := map[string]atmostonce.Scheduler{
		"roundrobin": atmostonce.RoundRobin,
		"random":     atmostonce.RandomSched,
		"tightness":  atmostonce.Tightness,
		"staircase":  atmostonce.Staircase,
		"alternator": atmostonce.Alternator,
	}
	sched, ok := scheds[*advName]
	if !ok {
		return fmt.Errorf("unknown adversary %q", *advName)
	}
	rep, err := atmostonce.Simulate(atmostonce.SimConfig{
		Jobs: *n, Workers: *m, Beta: *beta,
		Iterative: *iterative, EpsDenom: *epsDenom,
		Scheduler: sched, Crashes: *f, CrashProb: *crashProb, Seed: *seed,
		TrackCollisions: *coll,
	})
	if err != nil {
		return err
	}
	fmt.Printf("jobs performed (Do)   %d / %d\n", rep.Performed, *n)
	fmt.Printf("duplicates            %d (at-most-once %s)\n", rep.Duplicates, okStr(rep.Duplicates == 0))
	if !*iterative {
		fmt.Printf("effectiveness bound   %d (Theorem 4.4: n−(β+m−2))\n", rep.EffectivenessLB)
	}
	fmt.Printf("work                  %d\n", rep.Work)
	fmt.Printf("scheduler actions     %d\n", rep.Steps)
	fmt.Printf("crashes injected      %d\n", rep.Crashes)
	if rep.Collisions != nil {
		var total uint64
		for _, row := range rep.Collisions {
			for _, c := range row {
				total += c
			}
		}
		fmt.Printf("collisions            %d\n", total)
	}
	if rep.Duplicates != 0 {
		return fmt.Errorf("at-most-once violated")
	}
	return nil
}

func runConc(n, m, beta int, iterative bool, epsDenom int, seed int64) error {
	sum, err := atmostonce.Run(atmostonce.Config{
		Jobs: n, Workers: m, Beta: beta,
		Iterative: iterative, EpsDenom: epsDenom,
		Jitter: true, Seed: seed,
	}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("mode                  concurrent (goroutines over sync/atomic)\n")
	fmt.Printf("jobs performed (Do)   %d / %d\n", sum.Performed, n)
	fmt.Printf("jobs remaining        %d\n", sum.Remaining)
	fmt.Printf("duplicates            %d (at-most-once %s)\n", sum.Duplicates, okStr(sum.Duplicates == 0))
	if sum.Duplicates != 0 {
		return fmt.Errorf("at-most-once violated")
	}
	return nil
}

func okStr(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
