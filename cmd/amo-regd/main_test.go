package main

import (
	"strings"
	"syscall"
	"testing"
	"time"

	"atmostonce/internal/netmem"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// drives a client session against it and shuts it down with the signal
// path a deployment would use.
func TestRunServesAndShutsDown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-lease", "500ms"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := netmem.Open(addr, 32, netmem.Options{Namespace: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAcked(3, 99); err != nil {
		t.Fatal(err)
	}
	if got := c.Read(3); got != 99 {
		t.Fatalf("cell 3 = %d, want 99", got)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// TestRunFlagErrors: bad invocations fail instead of serving.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"stray"}, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray argument: %v", err)
	}
	if err := run([]string{"-listen", "not-an-address"}, nil); err == nil {
		t.Fatal("unusable listen address accepted")
	}
}
