// Command amo-regd is the networked register server: it owns register
// namespaces backed by any membackend spec (in-memory atomic by
// default, durable mmap register files with -backend mmap:PATH) and
// serves cell reads/writes/CAS plus single-writer lease arbitration
// over the netmem wire protocol (DESIGN.md §8).
//
// A dispatcher connects by spec, e.g.
//
//	atmostonce.DispatcherConfig{Backend: "net:127.0.0.1:7878/jobs", MaxJobs: 1 << 20}
//
// Each dispatcher shard takes namespace "jobs.shard<i>" and holds its
// writer lease; a second dispatcher over the same namespaces waits for
// the lease and takes over with a higher fencing epoch, so a stalled
// predecessor can never corrupt the registers (examples/failover runs
// that end to end).
//
// With -metrics ADDR the server also exposes the process ops endpoint
// (internal/obs/opshttp): Prometheus exposition of the netmem server
// families — connections, per-op request counts, lease grants/renewals,
// fenced-write rejections, bytes in/out — plus membackend counters, Go
// runtime health and amo_build_info at /metrics, liveness at /healthz,
// a JSON snapshot at /statsz, the flight recorder at /flightz and
// pprof at /debug/pprof/. With -trace RATE the server additionally
// samples journal writes into a server-side tracer served at /tracez —
// the server's half of cross-process timeline stitching (DESIGN.md
// §13). Structured events go to stderr at the level named by AMO_LOG
// (debug, info, warn, error, off). See DESIGN.md §12.
//
// Usage:
//
//	amo-regd [-listen 127.0.0.1:7878] [-backend atomic|mmap:PATH|...] [-lease 2s] [-max-lease 1m] [-metrics 127.0.0.1:9090] [-trace 0.5] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atmostonce/internal/netmem"
	"atmostonce/internal/obs"
	"atmostonce/internal/obs/opshttp"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "amo-regd:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until SIGINT/SIGTERM (or a value on
// stop, the test hook). ready, when non-nil, receives the bound
// address.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("amo-regd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7878", "address to listen on (host:port; port 0 picks one)")
	backend := fs.String("backend", "atomic", "membackend spec template backing the namespaces; instance-bearing kinds get a .<namespace> suffix (e.g. mmap:/var/lib/amo/regs)")
	lease := fs.Duration("lease", 2*time.Second, "default writer-lease TTL granted to clients that do not ask for one")
	maxLease := fs.Duration("max-lease", time.Minute, "upper bound on client-requested lease TTLs")
	verbose := fs.Bool("v", false, "log connection, namespace and lease events")
	metrics := fs.String("metrics", "", "serve the ops endpoint (/metrics, /healthz, /statsz, /tracez, /flightz, /debug/pprof/) on this address")
	trace := fs.Float64("trace", 0, "sample this fraction of journaled job ids into the server-side tracer (served at /tracez; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *trace < 0 || *trace > 1 {
		return fmt.Errorf("-trace %v out of range [0,1]", *trace)
	}
	tracer := obs.NewTracer(*trace, 0)
	opts := netmem.ServerOptions{
		Spec:       *backend,
		DefaultTTL: *lease,
		MaxTTL:     *maxLease,
		Tracer:     tracer,
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *verbose {
		opts.Logf = logf
	}
	srv := netmem.NewServer(opts)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	logf("amo-regd: listening on %s (backend %s, lease %s)", addr, *backend, *lease)
	if *metrics != "" {
		ops, err := opshttp.Serve(*metrics, opshttp.Options{
			Registries: []*obs.Registry{obs.Default},
			Tracer:     tracer,
		})
		if err != nil {
			srv.Close()
			return err
		}
		defer ops.Close()
		logf("amo-regd: ops endpoint on %s", ops.Addr())
	}
	if ready != nil {
		ready <- addr
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logf("amo-regd: %s, shutting down", s)
	return srv.Close()
}
