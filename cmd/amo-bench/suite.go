package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// benchDoc is the combined -suite document: the schema of the committed
// BENCH_N.json trajectory files (one per PR), and the unit the -compare
// perf gate diffs against.
type benchDoc struct {
	PR         int              `json:"pr"`
	Meta       benchMeta        `json:"meta"`
	Throughput throughputReport `json:"throughput"`
	Async      asyncReport      `json:"async"`
	Priority   priorityReport   `json:"priority"`
	// Durable is the group-commit sweep (mmap backend, JournalBatch 1 vs
	// 16); absent from baselines older than PR 7, which -compare skips.
	Durable durableReport `json:"durable"`
}

// runSuite runs all three sweeps and emits one combined JSON document —
// exactly what gets committed as BENCH_N.json.
func runSuite(quick bool, pr int, backend string) error {
	doc, err := buildSuite(quick, pr, backend)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func buildSuite(quick bool, pr int, backend string) (benchDoc, error) {
	var zero benchDoc
	tr, err := throughputSweep(quick, backend)
	if err != nil {
		return zero, err
	}
	as, err := asyncSweep(quick, backend)
	if err != nil {
		return zero, err
	}
	pri, err := prioritySweep(quick)
	if err != nil {
		return zero, err
	}
	dur, err := durableSweep(quick)
	if err != nil {
		return zero, err
	}
	return benchDoc{PR: pr, Meta: collectMeta(), Throughput: tr, Async: as, Priority: pri, Durable: dur}, nil
}

// runCompare is the CI perf gate: re-run the sweeps, match each sweep
// point against the committed baseline document by shape, and fail when
// any matched point's throughput drops more than tolerance below the
// baseline. Latency percentiles are printed for context but not gated —
// on shared CI runners they are too noisy for a hard bound, while
// jobs/sec over 30k+ jobs (median of reps) is stable enough to catch a
// real regression. Shapes present on only one side (a new sweep point,
// or an old retired one) are reported and skipped, so the gate keeps
// working across baseline generations.
func runCompare(path string, quick bool, tolerance float64, backend string) error {
	if tolerance <= 0 || tolerance >= 1 {
		return fmt.Errorf("-tolerance %v out of range (0, 1)", tolerance)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	cur, err := buildSuite(quick, base.PR, backend)
	if err != nil {
		return err
	}

	fmt.Printf("# Perf gate: current tree vs %s (pr %d, rev %s), tolerance %.0f%%\n\n",
		path, base.PR, orUnknown(base.Meta.GitRev), tolerance*100)
	fmt.Println("| sweep point | baseline jobs/s | current jobs/s | delta | verdict |")
	fmt.Println("|-------------|----------------:|---------------:|------:|---------|")
	failed := 0
	check := func(label string, baseJPS, curJPS float64) {
		delta := curJPS/baseJPS - 1
		verdict := "ok"
		if delta < -tolerance {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("| %s | %.0f | %.0f | %+.1f%% | %s |\n", label, baseJPS, curJPS, delta*100, verdict)
	}

	// checkAllocs gates -benchmem-style allocs/job on matched points: a
	// hot path designed around ~0 allocs/job regresses in absolute
	// steps, not fractions, so the gate is baseline + max(0.25,
	// base·tolerance) — a quarter of an allocation per job of headroom
	// over a near-zero baseline, proportional once a baseline carries
	// real allocations. Baselines older than the field (0) are skipped.
	// Bytes/job ride along as context, never gated.
	checkAllocs := func(baseA, curA, baseB, curB float64) {
		if baseA == 0 {
			// Old-format baseline from before the allocs field: say so
			// instead of silently passing the gate.
			fmt.Printf("| ↳ allocs/job | — | %.3f | — | old-format baseline (no allocs/job), skipped |\n", curA)
			return
		}
		slack := 0.25
		if s := baseA * tolerance; s > slack {
			slack = s
		}
		verdict := "ok"
		if curA > baseA+slack {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("| ↳ allocs/job (gated) | %.3f | %.3f | %+.3f | %s |\n", baseA, curA, curA-baseA, verdict)
		fmt.Printf("| ↳ bytes/job (context, not gated) | %.0f | %.0f | %+.0f | — |\n", baseB, curB, curB-baseB)
	}

	matchedT := make(map[throughputShape]bool)
	for _, b := range base.Throughput.Results {
		found := false
		for _, c := range cur.Throughput.Results {
			if c.throughputShape == b.throughputShape {
				check(fmt.Sprintf("throughput %ds/%dw/%db", b.Shards, b.Workers, b.Batch), b.JobsPerSec, c.JobsPerSec)
				checkAllocs(b.AllocsPerJob, c.AllocsPerJob, b.BytesPerJob, c.BytesPerJob)
				matchedT[b.throughputShape] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("| throughput %ds/%dw/%db | %.0f | — | — | baseline-only, skipped |\n",
				b.Shards, b.Workers, b.Batch, b.JobsPerSec)
		}
	}
	for _, c := range cur.Throughput.Results {
		if !matchedT[c.throughputShape] {
			fmt.Printf("| throughput %ds/%dw/%db | — | %.0f | — | new point, skipped |\n",
				c.Shards, c.Workers, c.Batch, c.JobsPerSec)
		}
	}

	if len(base.Async.Results) == 0 && len(cur.Async.Results) > 0 {
		fmt.Printf("note: baseline %s has no async sweep (old format) — the async gate is skipped, not passed\n", path)
	}
	matchedA := make(map[asyncShape]bool)
	for _, b := range base.Async.Results {
		found := false
		for _, c := range cur.Async.Results {
			if c.asyncShape == b.asyncShape {
				check(fmt.Sprintf("async %ds/%dw/%db/q%d%s", b.Shards, b.Workers, b.Batch, b.QueueDepth, skewTag(b.Skewed)),
					b.JobsPerSec, c.JobsPerSec)
				fmt.Printf("| ↳ p99 µs (context, not gated) | %.1f | %.1f | %+.1f%% | — |\n",
					b.P99Micros, c.P99Micros, (c.P99Micros/math.Max(b.P99Micros, 1e-9)-1)*100)
				matchedA[b.asyncShape] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("| async %ds/%dw/%db/q%d%s | %.0f | — | — | baseline-only, skipped |\n",
				b.Shards, b.Workers, b.Batch, b.QueueDepth, skewTag(b.Skewed), b.JobsPerSec)
		}
	}
	for _, c := range cur.Async.Results {
		if !matchedA[c.asyncShape] {
			fmt.Printf("| async %ds/%dw/%db/q%d%s | — | %.0f | — | new point, skipped |\n",
				c.Shards, c.Workers, c.Batch, c.QueueDepth, skewTag(c.Skewed), c.JobsPerSec)
		}
	}

	if len(base.Durable.Results) == 0 && len(cur.Durable.Results) > 0 {
		fmt.Printf("note: baseline %s has no durable sweep (old format) — the durable gate is skipped, not passed\n", path)
	}
	matchedD := make(map[durableShape]bool)
	for _, b := range base.Durable.Results {
		found := false
		for _, c := range cur.Durable.Results {
			if c.durableShape == b.durableShape {
				check(fmt.Sprintf("durable %ds/%dw/%db/jb%d", b.Shards, b.Workers, b.Batch, b.JournalBatch),
					b.JobsPerSec, c.JobsPerSec)
				matchedD[b.durableShape] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("| durable %ds/%dw/%db/jb%d | %.0f | — | — | baseline-only, skipped |\n",
				b.Shards, b.Workers, b.Batch, b.JournalBatch, b.JobsPerSec)
		}
	}
	for _, c := range cur.Durable.Results {
		if !matchedD[c.durableShape] {
			fmt.Printf("| durable %ds/%dw/%db/jb%d | — | %.0f | — | new point, skipped |\n",
				c.Shards, c.Workers, c.Batch, c.JournalBatch, c.JobsPerSec)
		}
	}

	fmt.Println()
	if failed > 0 {
		return fmt.Errorf("perf gate: %d sweep point(s) regressed more than %.0f%% vs %s", failed, tolerance*100, path)
	}
	fmt.Printf("Perf gate passed: no sweep point regressed more than %.0f%%.\n", tolerance*100)
	return nil
}

func skewTag(skewed bool) string {
	if skewed {
		return "/skew"
	}
	return ""
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
