package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"atmostonce"
	"atmostonce/internal/membackend"
)

// throughputShape is one sweep point of the streaming benchmark.
type throughputShape struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Batch   int `json:"batch"`
}

// throughputResult is one measured sweep point, stable across PRs so
// bench trajectories (BENCH_*.json) can be diffed mechanically.
type throughputResult struct {
	throughputShape
	Rounds  uint64 `json:"rounds"`
	Residue uint64 `json:"residue"`
	Crashes uint64 `json:"crashes"`
	// EffHist is the per-round effectiveness histogram: log-scale
	// buckets over each round's loss fraction, bucket 0 = lost more than
	// half, middle buckets halving loss each step, last bucket = perfect
	// rounds (see atmostonce.DispatcherStats.EffHist).
	EffHist    []uint64 `json:"eff_hist"`
	JobsPerSec float64  `json:"jobs_per_sec"`
	// AllocsPerJob and BytesPerJob are -benchmem-style heap numbers over
	// the timed stream (runtime.MemStats Mallocs/TotalAlloc deltas per
	// job, all goroutines — the engine's round loops included). Allocs
	// are gated by -compare (the steady-state hot path is designed to
	// allocate ~0 per job; see dispatch's AllocsPerRun tests), bytes are
	// printed for context.
	AllocsPerJob float64 `json:"allocs_per_job"`
	BytesPerJob  float64 `json:"bytes_per_job"`
}

// throughputReport is the -json document.
type throughputReport struct {
	Mode    string             `json:"mode"`
	Jobs    int                `json:"jobs"`
	Backend string             `json:"backend"`
	Meta    benchMeta          `json:"meta"`
	Results []throughputResult `json:"results"`
}

// Measurement discipline shared by the throughput and async sweeps:
// every shape first streams benchWarmup jobs outside the timed window
// (warming pools, rings, id blocks and the adaptive round controller),
// then the timed stream runs benchReps times on fresh dispatchers and
// the median-throughput rep is reported — one scheduler hiccup cannot
// skew a committed trajectory point.
const (
	benchWarmup = 5000
	benchReps   = 5
)

// runThroughput streams a fixed job count through the Dispatcher at each
// shards × workers × batch shape and reports jobs/sec — as a Markdown
// table, or as one JSON document with -json. The payload is a single
// atomic increment, so the numbers measure engine overhead: round
// cutting, KKβ coordination, residue carry-over and (with -backend
// mmap) the durable journal writes.
func runThroughput(quick, asJSON bool, backend string) error {
	report, err := throughputSweep(quick, backend)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("# Streaming dispatcher throughput (%s mode, %s backend)\n\n", report.Mode, report.Backend)
	fmt.Printf("%d jobs per shape (median of %d reps after %d warmup jobs); payload = one atomic increment.\n\n",
		report.Jobs, benchReps, benchWarmup)
	fmt.Println("| shards | workers/shard | max batch | rounds | carried residue | crashes | jobs/sec | allocs/job | bytes/job |")
	fmt.Println("|-------:|--------------:|----------:|-------:|----------------:|--------:|---------:|-----------:|----------:|")
	for _, res := range report.Results {
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %.0f | %.3f | %.0f |\n",
			res.Shards, res.Workers, res.Batch, res.Rounds, res.Residue, res.Crashes,
			res.JobsPerSec, res.AllocsPerJob, res.BytesPerJob)
	}
	fmt.Println()
	return nil
}

// throughputSweep measures every shape and returns the report (shared
// by -throughput, -suite and -compare).
func throughputSweep(quick bool, backend string) (throughputReport, error) {
	var zero throughputReport
	jobs := 200_000
	shapes := []throughputShape{
		{1, 2, 256}, {1, 4, 1024},
		{2, 4, 1024}, {4, 4, 1024},
		{4, 8, 1024}, {8, 4, 4096},
	}
	if quick {
		jobs = 30_000
		shapes = shapes[:4]
	}

	backend, cleanup, err := tempMmap(backend)
	if err != nil {
		return zero, err
	}
	defer cleanup()

	report := throughputReport{Mode: mode(quick), Jobs: jobs, Backend: backendLabel(backend), Meta: collectMeta()}
	for i, sh := range shapes {
		st, err := streamMedian(sh, jobs, benchWarmup, benchJournalBatch, benchReps, shapeSpec(backend, i))
		if err != nil {
			return zero, err
		}
		report.Results = append(report.Results, throughputResult{
			throughputShape: sh,
			Rounds:          st.Rounds,
			Residue:         st.Residue,
			Crashes:         st.Crashes,
			EffHist:         append([]uint64(nil), st.EffHist[:]...),
			JobsPerSec:      st.JobsPerSec,
			AllocsPerJob:    st.allocsPerJob,
			BytesPerJob:     st.bytesPerJob,
		})
	}
	return report, nil
}

// streamRun is one streamOnce measurement: the dispatcher's stats plus
// the timed window's -benchmem-style heap numbers.
type streamRun struct {
	atmostonce.DispatcherStats
	allocsPerJob float64
	bytesPerJob  float64
}

// streamMedian runs streamOnce reps times — each rep on a fresh
// dispatcher (fresh register files for durable backends) — and returns
// the rep with the median jobs/sec.
func streamMedian(sh throughputShape, jobs, warmup, jbatch, reps int, backend string) (streamRun, error) {
	runs := make([]streamRun, 0, reps)
	for r := 0; r < reps; r++ {
		collectGarbage()
		st, err := streamOnce(sh, jobs, warmup, jbatch, membackend.WithSuffix(backend, fmt.Sprintf(".rep%d", r)))
		if err != nil {
			return streamRun{}, err
		}
		runs = append(runs, st)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].JobsPerSec < runs[j].JobsPerSec })
	return runs[len(runs)/2], nil
}

// tempMmap rewrites a pathless "mmap" terminal ("mmap", "counting:mmap")
// to bench against throwaway register files; other specs pass through
// with a no-op cleanup.
func tempMmap(backend string) (string, func(), error) {
	if backend != "mmap" && !strings.HasSuffix(backend, ":mmap") {
		return backend, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "amo-bench-*")
	if err != nil {
		return "", nil, err
	}
	return backend + ":" + filepath.Join(dir, "regs"), func() { os.RemoveAll(dir) }, nil
}

// shapeSpec gives every sweep point its own register files: a durable
// backend refuses to reopen files written under a different shape.
// Specs without a path (atomic, counting:atomic) pass through.
func shapeSpec(backend string, i int) string {
	return membackend.WithSuffix(backend, fmt.Sprintf(".shape%d", i))
}

// backendLabel strips the throwaway temp path from the report.
func backendLabel(backend string) string {
	if backend == "" {
		return "atomic"
	}
	if i := strings.Index(backend, "mmap:"); i >= 0 {
		return backend[:i+4]
	}
	return backend
}

func streamOnce(sh throughputShape, jobs, warmup, jbatch int, backend string) (streamRun, error) {
	var zero streamRun
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          sh.Shards,
		WorkersPerShard: sh.Workers,
		MaxBatch:        sh.Batch,
		Backend:         backend,
		JournalBatch:    jbatch,
		Metrics:         benchMetrics,
		MetricsAddr:     benchMetricsAddr,
		// Slack beyond the timed jobs: the warmup stream, plus each
		// shard's possibly part-consumed leased id block.
		MaxJobs: jobs + warmup + 64*sh.Shards,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	var count atomic.Uint64
	job := func() { count.Add(1) }
	const chunk = 2000
	fns := make([]func(), chunk)
	for i := range fns {
		fns[i] = job
	}
	stream := func(n int) error {
		for sent := 0; sent < n; sent += chunk {
			c := chunk
			if rem := n - sent; rem < c {
				c = rem
			}
			if _, err := d.SubmitBatch(fns[:c]); err != nil {
				return err
			}
		}
		d.Flush()
		return nil
	}
	// Warm pools, rings and the round controller outside the timed window.
	if err := stream(warmup); err != nil {
		return zero, err
	}
	// Mallocs/TotalAlloc deltas over the timed window measure the whole
	// process — submit goroutine and the engine's round loops alike — so
	// the numbers are -benchmem for the pipeline, not one goroutine.
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := stream(jobs); err != nil {
		return zero, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	if got := count.Load(); got != uint64(jobs+warmup) {
		return zero, fmt.Errorf("throughput: performed %d of %d jobs", got, jobs+warmup)
	}
	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("throughput: %d duplicate executions", st.Duplicates)
	}
	// Recompute over the measured window rather than dispatcher lifetime.
	st.JobsPerSec = float64(jobs) / elapsed.Seconds()
	return streamRun{
		DispatcherStats: st,
		allocsPerJob:    float64(m1.Mallocs-m0.Mallocs) / float64(jobs),
		bytesPerJob:     float64(m1.TotalAlloc-m0.TotalAlloc) / float64(jobs),
	}, nil
}
