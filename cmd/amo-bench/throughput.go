package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"atmostonce"
	"atmostonce/internal/membackend"
)

// throughputShape is one sweep point of the streaming benchmark.
type throughputShape struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Batch   int `json:"batch"`
}

// throughputResult is one measured sweep point, stable across PRs so
// bench trajectories (BENCH_*.json) can be diffed mechanically.
type throughputResult struct {
	throughputShape
	Rounds  uint64 `json:"rounds"`
	Residue uint64 `json:"residue"`
	Crashes uint64 `json:"crashes"`
	// EffHist is the per-round effectiveness histogram: log-scale
	// buckets over each round's loss fraction, bucket 0 = lost more than
	// half, middle buckets halving loss each step, last bucket = perfect
	// rounds (see atmostonce.DispatcherStats.EffHist).
	EffHist    []uint64 `json:"eff_hist"`
	JobsPerSec float64  `json:"jobs_per_sec"`
}

// throughputReport is the -json document.
type throughputReport struct {
	Mode    string             `json:"mode"`
	Jobs    int                `json:"jobs"`
	Backend string             `json:"backend"`
	Results []throughputResult `json:"results"`
}

// runThroughput streams a fixed job count through the Dispatcher at each
// shards × workers × batch shape and reports jobs/sec — as a Markdown
// table, or as one JSON document with -json. The payload is a single
// atomic increment, so the numbers measure engine overhead: round
// cutting, KKβ coordination, residue carry-over and (with -backend
// mmap) the durable journal writes.
func runThroughput(quick, asJSON bool, backend string) error {
	jobs := 200_000
	shapes := []throughputShape{
		{1, 2, 256}, {1, 4, 1024},
		{2, 4, 1024}, {4, 4, 1024},
		{4, 8, 1024}, {8, 4, 4096},
	}
	if quick {
		jobs = 30_000
		shapes = shapes[:4]
	}

	backend, cleanup, err := tempMmap(backend)
	if err != nil {
		return err
	}
	defer cleanup()

	report := throughputReport{Mode: mode(quick), Jobs: jobs, Backend: backendLabel(backend)}
	if !asJSON {
		fmt.Printf("# Streaming dispatcher throughput (%s mode, %s backend)\n\n", report.Mode, report.Backend)
		fmt.Printf("%d jobs per shape; payload = one atomic increment.\n\n", jobs)
		fmt.Println("| shards | workers/shard | max batch | rounds | carried residue | crashes | jobs/sec |")
		fmt.Println("|-------:|--------------:|----------:|-------:|----------------:|--------:|---------:|")
	}
	for i, sh := range shapes {
		st, err := streamOnce(sh, jobs, shapeSpec(backend, i))
		if err != nil {
			return err
		}
		res := throughputResult{
			throughputShape: sh,
			Rounds:          st.Rounds,
			Residue:         st.Residue,
			Crashes:         st.Crashes,
			EffHist:         append([]uint64(nil), st.EffHist[:]...),
			JobsPerSec:      st.JobsPerSec,
		}
		report.Results = append(report.Results, res)
		if !asJSON {
			fmt.Printf("| %d | %d | %d | %d | %d | %d | %.0f |\n",
				sh.Shards, sh.Workers, sh.Batch, res.Rounds, res.Residue, res.Crashes, res.JobsPerSec)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Println()
	return nil
}

// tempMmap rewrites a pathless "mmap" terminal ("mmap", "counting:mmap")
// to bench against throwaway register files; other specs pass through
// with a no-op cleanup.
func tempMmap(backend string) (string, func(), error) {
	if backend != "mmap" && !strings.HasSuffix(backend, ":mmap") {
		return backend, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "amo-bench-*")
	if err != nil {
		return "", nil, err
	}
	return backend + ":" + filepath.Join(dir, "regs"), func() { os.RemoveAll(dir) }, nil
}

// shapeSpec gives every sweep point its own register files: a durable
// backend refuses to reopen files written under a different shape.
// Specs without a path (atomic, counting:atomic) pass through.
func shapeSpec(backend string, i int) string {
	return membackend.WithSuffix(backend, fmt.Sprintf(".shape%d", i))
}

// backendLabel strips the throwaway temp path from the report.
func backendLabel(backend string) string {
	if backend == "" {
		return "atomic"
	}
	if i := strings.Index(backend, "mmap:"); i >= 0 {
		return backend[:i+4]
	}
	return backend
}

func streamOnce(sh throughputShape, jobs int, backend string) (atmostonce.DispatcherStats, error) {
	var zero atmostonce.DispatcherStats
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          sh.Shards,
		WorkersPerShard: sh.Workers,
		MaxBatch:        sh.Batch,
		Backend:         backend,
		MaxJobs:         jobs,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	var count atomic.Uint64
	job := func() { count.Add(1) }
	const chunk = 2000
	fns := make([]func(), chunk)
	for i := range fns {
		fns[i] = job
	}
	start := time.Now()
	for sent := 0; sent < jobs; sent += chunk {
		n := chunk
		if rem := jobs - sent; rem < n {
			n = rem
		}
		if _, err := d.SubmitBatch(fns[:n]); err != nil {
			return zero, err
		}
	}
	d.Flush()
	elapsed := time.Since(start)

	if got := count.Load(); got != uint64(jobs) {
		return zero, fmt.Errorf("throughput: performed %d of %d jobs", got, jobs)
	}
	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("throughput: %d duplicate executions", st.Duplicates)
	}
	// Recompute over the measured window rather than dispatcher lifetime.
	st.JobsPerSec = float64(jobs) / elapsed.Seconds()
	return st, nil
}
