package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"atmostonce"
)

// throughputShape is one sweep point of the streaming benchmark.
type throughputShape struct {
	Shards, Workers, Batch int
}

// runThroughput streams a fixed job count through the Dispatcher at each
// shards × workers × batch shape and prints a Markdown jobs/sec table. The
// payload is a single atomic increment, so the numbers measure engine
// overhead: round cutting, KKβ coordination and residue carry-over.
func runThroughput(quick bool) error {
	jobs := 200_000
	shapes := []throughputShape{
		{1, 2, 256}, {1, 4, 1024},
		{2, 4, 1024}, {4, 4, 1024},
		{4, 8, 1024}, {8, 4, 4096},
	}
	if quick {
		jobs = 30_000
		shapes = shapes[:4]
	}

	fmt.Printf("# Streaming dispatcher throughput (%s mode)\n\n", mode(quick))
	fmt.Printf("%d jobs per shape; payload = one atomic increment.\n\n", jobs)
	fmt.Println("| shards | workers/shard | max batch | rounds | carried residue | crashes | jobs/sec |")
	fmt.Println("|-------:|--------------:|----------:|-------:|----------------:|--------:|---------:|")
	for _, sh := range shapes {
		st, err := streamOnce(sh, jobs)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %.0f |\n",
			sh.Shards, sh.Workers, sh.Batch, st.Rounds, st.Residue, st.Crashes, st.JobsPerSec)
	}
	fmt.Println()
	return nil
}

func streamOnce(sh throughputShape, jobs int) (atmostonce.DispatcherStats, error) {
	var zero atmostonce.DispatcherStats
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          sh.Shards,
		WorkersPerShard: sh.Workers,
		MaxBatch:        sh.Batch,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	var count atomic.Uint64
	job := func() { count.Add(1) }
	const chunk = 2000
	fns := make([]func(), chunk)
	for i := range fns {
		fns[i] = job
	}
	start := time.Now()
	for sent := 0; sent < jobs; sent += chunk {
		n := chunk
		if rem := jobs - sent; rem < n {
			n = rem
		}
		if _, err := d.SubmitBatch(fns[:n]); err != nil {
			return zero, err
		}
	}
	d.Flush()
	elapsed := time.Since(start)

	if got := count.Load(); got != uint64(jobs) {
		return zero, fmt.Errorf("throughput: performed %d of %d jobs", got, jobs)
	}
	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("throughput: %d duplicate executions", st.Duplicates)
	}
	// Recompute over the measured window rather than dispatcher lifetime.
	st.JobsPerSec = float64(jobs) / elapsed.Seconds()
	return st, nil
}
