package main

import (
	"fmt"
	"sort"
)

// Overhead-gate methodology (DESIGN.md §12): the observability layer
// claims its hot path is nearly free — pull-style counters read
// existing atomics at scrape time, the round histogram reuses the
// controller's already-measured duration, and per-job latency is
// sampled 1 in 16 with one clock read per round. -overhead checks that
// claim empirically. It streams one mid-size shape with metrics off
// and on in strictly interleaved reps (off, on, off, on, …) so slow
// drift — thermal throttling, a background daemon waking up — hits
// both arms equally, then gates on the ratio of each arm's BEST rep.
// Best-of-N is the right estimator here because throughput noise is
// one-sided: interference only ever makes a rep slower, never faster,
// so the fastest rep of each arm converges on the arm's true capability
// while medians still carry whatever hit half the reps. The tolerance
// sits on top of that; arm medians are printed as context.
const overheadReps = 9

// runOverhead is the -overhead mode: fail when metrics-on median
// throughput is more than tol below metrics-off.
func runOverhead(quick bool, tol float64, backend string) error {
	if tol <= 0 || tol >= 1 {
		return fmt.Errorf("-overheadtol must be in (0, 1), got %v", tol)
	}
	sh := throughputShape{Shards: 2, Workers: 4, Batch: 1024}
	jobs := 150_000
	if quick {
		jobs = 40_000
	}

	backend, cleanup, err := tempMmap(backend)
	if err != nil {
		return err
	}
	defer cleanup()

	// One streamOnce per arm per rep, each on fresh register files;
	// benchMetrics toggles the Metrics knob streamOnce passes through.
	measure := func(on bool, spec string) (float64, error) {
		collectGarbage()
		benchMetrics = on
		defer func() { benchMetrics = false }()
		st, err := streamOnce(sh, jobs, benchWarmup, benchJournalBatch, spec)
		if err != nil {
			return 0, err
		}
		return st.JobsPerSec, nil
	}
	off := make([]float64, 0, overheadReps)
	on := make([]float64, 0, overheadReps)
	for r := 0; r < overheadReps; r++ {
		vOff, err := measure(false, shapeSpec(backend, 2*r))
		if err != nil {
			return err
		}
		off = append(off, vOff)
		vOn, err := measure(true, shapeSpec(backend, 2*r+1))
		if err != nil {
			return err
		}
		on = append(on, vOn)
	}

	offBest, onBest := maxFloat(off), maxFloat(on)
	delta := 1 - onBest/offBest
	fmt.Printf("# Observability overhead gate (%s mode, %s backend)\n\n", mode(quick), backendLabel(backend))
	fmt.Printf("%d jobs on %d shards × %d workers × batch %d; %d interleaved reps per arm.\n\n",
		jobs, sh.Shards, sh.Workers, sh.Batch, overheadReps)
	fmt.Println("| arm | best jobs/sec | median jobs/sec |")
	fmt.Println("|-----|--------------:|----------------:|")
	fmt.Printf("| metrics off | %.0f | %.0f |\n", offBest, medianFloat(off))
	fmt.Printf("| metrics on  | %.0f | %.0f |\n", onBest, medianFloat(on))
	fmt.Printf("\nOverhead (best-of-%d vs best-of-%d): %+.2f%% (tolerance %.0f%%)\n",
		overheadReps, overheadReps, delta*100, tol*100)
	if onBest < offBest*(1-tol) {
		return fmt.Errorf("observability overhead %.2f%% exceeds the %.0f%% budget (off %.0f jobs/sec, on %.0f jobs/sec)",
			delta*100, tol*100, offBest, onBest)
	}
	return nil
}

func maxFloat(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func medianFloat(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
