package main

import "testing"

func TestRunQuickSingle(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E42"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"-quick", "-only", "e9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunThroughputQuick(t *testing.T) {
	if err := run([]string{"-throughput", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAsyncQuick(t *testing.T) {
	if err := run([]string{"-async", "-quick", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAsyncThroughputExclusive(t *testing.T) {
	if err := run([]string{"-async", "-throughput"}); err == nil {
		t.Fatal("-async -throughput accepted together")
	}
	if err := run([]string{"-async", "-priority"}); err == nil {
		t.Fatal("-async -priority accepted together")
	}
}

func TestRunPriorityQuick(t *testing.T) {
	if err := run([]string{"-priority", "-quick", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPriorityBackendRejected(t *testing.T) {
	if err := run([]string{"-priority", "-backend", "mmap"}); err == nil {
		t.Fatal("-priority -backend mmap accepted")
	}
}

func TestRunSuiteCompareExclusive(t *testing.T) {
	if err := run([]string{"-suite", "-compare", "BENCH_5.json"}); err == nil {
		t.Fatal("-suite -compare accepted together")
	}
	if err := run([]string{"-suite", "-throughput"}); err == nil {
		t.Fatal("-suite -throughput accepted together")
	}
}

func TestRunCompareBadTolerance(t *testing.T) {
	if err := run([]string{"-compare", "BENCH_5.json", "-tolerance", "1.5"}); err == nil {
		t.Fatal("out-of-range tolerance accepted")
	}
}

func TestRunCompareMissingBaseline(t *testing.T) {
	if err := run([]string{"-compare", "no-such-file.json"}); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestModeString(t *testing.T) {
	if mode(true) != "quick" || mode(false) != "full" {
		t.Fatal("mode strings wrong")
	}
}
