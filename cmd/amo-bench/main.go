// Command amo-bench runs the reproduction experiment suite E1–E9 (one
// experiment per theorem of Kentros & Kiayias 2011/2013; see DESIGN.md §4)
// and prints the result tables as Markdown. EXPERIMENTS.md is generated
// from this output.
//
// With -throughput it instead benchmarks the streaming Dispatcher,
// sweeping shards × workers × batch size and reporting jobs/sec.
// With -async it benchmarks the async submission pipeline: concurrent
// producers drive SubmitCallback against bounded queues (SubmitPolicy
// Block) and the sweep reports per-job completion latency percentiles
// (p50/p99/p999, submit → future resolution) alongside throughput,
// stolen-job and backpressure counters.
// With -priority it benchmarks the v2 priority scheduler on a classic
// inversion workload — a High burst behind a deep Low backlog — and
// reports each class's p50/p99 completion latency next to the v1
// single-ring baseline (the identical stream, all Normal priority),
// plus the High-p99 speedup.
// With -suite it runs all three dispatcher sweeps plus the durable
// group-commit sweep (mmap backend, JournalBatch 1 vs 16 on one shape)
// and emits ONE combined JSON document (-pr stamps the PR number) — the
// schema of the committed BENCH_N.json trajectory files, every report
// carrying a `meta` block (GOMAXPROCS, NumCPU, go version, git rev,
// timestamp) so trajectories stay interpretable across machines.
// With -compare FILE it is the CI perf gate: it re-runs the sweeps and
// diffs them against a committed BENCH_N.json, exiting nonzero when any
// matched sweep point's jobs/sec regressed more than -tolerance
// (default 20%).
// With -overhead it measures the observability layer's own hot-path
// cost: interleaved metrics-on/metrics-off streaming reps on one shape,
// failing when the median metrics-on throughput regresses more than
// -overheadtol (default 3%) — the CI gate for DESIGN.md §12's overhead
// budget. The structured event log (DESIGN.md §13) is live in BOTH arms
// — its per-round Debug events go to the flight ring regardless of the
// AMO_LOG sink level — so the gate also bounds the forensic layer's
// hot-path cost; set AMO_LOG=off to silence the bench's stderr without
// changing what is measured.
// -backend selects the register backend (atomic, mmap[:PATH],
// net:HOST:PORT/NS, counting:SPEC — see internal/membackend), so the
// cost of durable journaling — local or networked — is measurable;
// -journalbatch sets the journal group-commit factor for -throughput
// and -async (k jobs claimed per durable journal ack instead of one;
// ignored by in-process backends — see DESIGN.md §14);
// -json emits the sweep as one JSON document for bench trajectories
// (BENCH_*.json), including each shape's per-round effectiveness
// histogram (eff_hist); -metricsaddr serves the benchmark dispatcher's
// ops endpoint while sweeps run (and the async sweep's -json points
// always carry histogram-derived hist_p50_us/hist_p99_us from the obs
// registry next to the exact percentiles); -cpuprofile writes a pprof
// CPU profile of the selected run.
//
// Usage:
//
//	amo-bench [-quick] [-only E3]
//	amo-bench -throughput [-quick] [-backend mmap] [-journalbatch 16] [-json] [-cpuprofile FILE]
//	amo-bench -async [-quick] [-backend mmap] [-json] [-metricsaddr :9091]
//	amo-bench -priority [-quick] [-json]
//	amo-bench -overhead [-quick] [-overheadtol 0.03]
//	amo-bench -suite [-quick] [-pr N] > BENCH_N.json
//	amo-bench -compare BENCH_N.json [-quick] [-tolerance 0.2]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"atmostonce/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amo-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amo-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced sweeps")
	only := fs.String("only", "", "run a single experiment (E1..E9)")
	throughput := fs.Bool("throughput", false, "benchmark the streaming dispatcher instead of the E1-E9 suite")
	async := fs.Bool("async", false, "benchmark the async submission pipeline (per-job completion latency percentiles)")
	priority := fs.Bool("priority", false, "benchmark priority scheduling: per-class p50/p99 latency for a High burst behind a Low backlog, vs the v1 single-ring baseline")
	backend := fs.String("backend", "atomic", "register backend for -throughput/-async: atomic, mmap[:PATH] or any membackend spec")
	journalbatch := fs.Int("journalbatch", 1, "durable journal group-commit factor for -throughput/-async sweeps (ignored by in-process backends; the -suite durable section sweeps it explicitly)")
	asJSON := fs.Bool("json", false, "emit the -throughput/-async/-priority sweep as JSON instead of Markdown")
	suite := fs.Bool("suite", false, "run all three dispatcher sweeps and emit one combined JSON document (the BENCH_N.json schema)")
	pr := fs.Int("pr", 0, "PR number stamped into the -suite document")
	compare := fs.String("compare", "", "perf gate: re-run the sweeps and diff against this committed BENCH_N.json, failing on regression")
	tolerance := fs.Float64("tolerance", 0.20, "-compare regression tolerance as a fraction (0.20 = fail when a point is >20% slower)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the selected run to this file")
	metricsaddr := fs.String("metricsaddr", "", "serve the benchmark dispatcher's ops endpoint (/metrics, /statsz, /tracez) on this address while sweeps run")
	overhead := fs.Bool("overhead", false, "measure the observability layer's hot-path cost: interleaved metrics-on/off streaming reps, failing when the median regression exceeds -overheadtol")
	overheadtol := fs.Float64("overheadtol", 0.03, "-overhead regression tolerance as a fraction (0.03 = fail when metrics-on throughput is >3% below metrics-off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, on := range []bool{*throughput, *async, *priority, *suite, *overhead, *compare != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-throughput, -async, -priority, -suite, -overhead and -compare are mutually exclusive")
	}
	benchMetricsAddr = *metricsaddr
	benchMetrics = *metricsaddr != ""
	if *journalbatch < 1 {
		return fmt.Errorf("-journalbatch %d must be >= 1", *journalbatch)
	}
	benchJournalBatch = *journalbatch
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *suite {
		return runSuite(*quick, *pr, *backend)
	}
	if *compare != "" {
		return runCompare(*compare, *quick, *tolerance, *backend)
	}
	if *overhead {
		return runOverhead(*quick, *overheadtol, *backend)
	}
	if *throughput {
		return runThroughput(*quick, *asJSON, *backend)
	}
	if *async {
		return runAsync(*quick, *asJSON, *backend)
	}
	if *priority {
		if *backend != "atomic" {
			return fmt.Errorf("-priority runs on the atomic backend only")
		}
		return runPriority(*quick, *asJSON)
	}
	if *asJSON || *backend != "atomic" {
		return fmt.Errorf("-json and -backend only apply to -throughput, -async and -priority")
	}
	s := harness.Suite{Quick: *quick}
	experiments := map[string]func() *harness.Table{
		"E1": s.E1Effectiveness,
		"E2": s.E2Bounds,
		"E3": s.E3Work,
		"E4": s.E4Collisions,
		"E5": s.E5Iterative,
		"E6": s.E6WriteAll,
		"E7": s.E7Comparison,
		"E8": s.E8Crossover,
		"E9": s.E9Verification,
	}

	fmt.Printf("# At-most-once reproduction suite (%s mode)\n\n", mode(*quick))
	start := time.Now()
	var tables []*harness.Table
	if *only != "" {
		fn, ok := experiments[strings.ToUpper(*only)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E9)", *only)
		}
		tables = append(tables, fn())
	} else {
		tables = s.All()
	}
	failed := 0
	for _, t := range tables {
		fmt.Print(t.Markdown())
		if !t.Pass {
			failed++
		}
	}
	fmt.Printf("---\n\nSuite finished in %s; %d/%d experiments passed.\n",
		time.Since(start).Round(time.Millisecond), len(tables)-failed, len(tables))
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

// Observability wiring for benchmark dispatchers, set once by run()
// before any sweep starts. benchMetrics enables the obs registry (the
// async sweep always enables it: its -json points carry
// histogram-derived quantiles); benchMetricsAddr additionally serves
// the ops endpoint so a sweep in flight can be scraped.
var (
	benchMetrics     bool
	benchMetricsAddr string
)

// benchJournalBatch is the -journalbatch group-commit factor applied to
// the -throughput and -async sweeps' dispatchers (1 = journal per job;
// meaningful only with a durable/remote -backend). The -suite durable
// section sweeps the knob explicitly and ignores this.
var benchJournalBatch = 1

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}
