package main

import (
	"fmt"
	"os"
	"path/filepath"
)

// durableShape is one sweep point of the group-commit benchmark: a
// dispatcher shape over the durable mmap backend at a journal
// group-commit factor. The sweep exists to measure exactly one knob —
// the same shape at JournalBatch 1 vs 16 — so the committed trajectory
// captures what batching the msync-per-job journal ack buys.
type durableShape struct {
	Shards       int `json:"shards"`
	Workers      int `json:"workers"`
	Batch        int `json:"batch"`
	JournalBatch int `json:"journal_batch"`
}

// durableResult is one measured sweep point.
type durableResult struct {
	durableShape
	Rounds       uint64  `json:"rounds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	AllocsPerJob float64 `json:"allocs_per_job"`
	BytesPerJob  float64 `json:"bytes_per_job"`
}

// durableReport is the -suite document's durable section.
type durableReport struct {
	Mode    string `json:"mode"`
	Jobs    int    `json:"jobs"`
	Backend string `json:"backend"`
	// GroupCommitSpeedup is jobs/s at the largest JournalBatch divided
	// by jobs/s at JournalBatch=1, same shape: the headline number of
	// the group-commit optimization (each worker pays one msync per
	// claim of k jobs instead of per job).
	GroupCommitSpeedup float64         `json:"group_commit_speedup"`
	Results            []durableResult `json:"results"`
}

// durableSweep measures the mmap-backed dispatcher at JournalBatch 1
// and 16 on one modest shape. The stream is short and the warmup
// shorter than the in-process sweeps': at JournalBatch=1 every job
// costs a synchronous msync (~100-200µs on typical local disks), so a
// long stream would measure the disk for minutes without adding
// information.
func durableSweep(quick bool) (durableReport, error) {
	var zero durableReport
	jobs, warmup, reps := 4000, 500, 3
	if quick {
		jobs = 1500
	}
	dir, err := os.MkdirTemp("", "amo-bench-durable-*")
	if err != nil {
		return zero, err
	}
	defer os.RemoveAll(dir)

	report := durableReport{Mode: mode(quick), Jobs: jobs, Backend: "mmap"}
	base := throughputShape{Shards: 1, Workers: 4, Batch: 256}
	var jps1 float64
	for i, jb := range []int{1, 16} {
		spec := "mmap:" + filepath.Join(dir, fmt.Sprintf("regs.jb%d", jb))
		st, err := streamMedian(base, jobs, warmup, jb, reps, shapeSpec(spec, i))
		if err != nil {
			return zero, err
		}
		report.Results = append(report.Results, durableResult{
			durableShape: durableShape{base.Shards, base.Workers, base.Batch, jb},
			Rounds:       st.Rounds,
			JobsPerSec:   st.JobsPerSec,
			AllocsPerJob: st.allocsPerJob,
			BytesPerJob:  st.bytesPerJob,
		})
		if jb == 1 {
			jps1 = st.JobsPerSec
		} else if jps1 > 0 {
			report.GroupCommitSpeedup = st.JobsPerSec / jps1
		}
	}
	return report, nil
}
