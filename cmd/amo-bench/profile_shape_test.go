package main

import (
	"os"
	"testing"
)

// TestProfileAsyncShape is a profiling hook, not a test: set
// AMO_PROFILE_ASYNC=1 and run with -cpuprofile to profile one async
// sweep shape in isolation.
func TestProfileAsyncShape(t *testing.T) {
	if os.Getenv("AMO_PROFILE_ASYNC") == "" {
		t.Skip("set AMO_PROFILE_ASYNC=1 to run")
	}
	for i := 0; i < 3; i++ {
		if _, err := asyncOnce(asyncShape{Shards: 2, Workers: 4, Batch: 1024, QueueDepth: 4096}, 200_000, "atomic"); err != nil {
			t.Fatal(err)
		}
	}
}
