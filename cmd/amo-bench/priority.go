package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"atmostonce"
)

// priorityClass is one scheduling class's measured completion-latency
// split (submit → resolution).
type priorityClass struct {
	Jobs      int     `json:"jobs"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// priorityRun is one full run of the inversion workload: a deep Low
// backlog with a burst of High jobs submitted behind it.
type priorityRun struct {
	// Label is "v2" (High/Low classes) or "v1-baseline" (every job
	// Normal — the single-ring behavior the v1 API had).
	Label      string        `json:"label"`
	High       priorityClass `json:"high"`
	Low        priorityClass `json:"low"`
	Rounds     uint64        `json:"rounds"`
	Expired    uint64        `json:"expired"`
	Duplicates uint64        `json:"duplicates"`
	ElapsedMS  float64       `json:"elapsed_ms"`
}

// priorityReport is the -priority -json document.
type priorityReport struct {
	Mode    string      `json:"mode"`
	Backlog int         `json:"backlog"`
	Burst   int         `json:"burst"`
	Spin    string      `json:"spin"`
	Meta    benchMeta   `json:"meta"`
	V2      priorityRun `json:"v2"`
	V1      priorityRun `json:"v1_baseline"`
	// SpeedupP99 is the priority-inversion win: the v1 baseline's High
	// p99 over v2's. The acceptance bar is ≥ 5.
	SpeedupP99 float64 `json:"high_p99_speedup"`
}

// runPriority benchmarks the v2 priority scheduling against the v1
// single-ring behavior on a classic inversion workload: a deep backlog
// of Low-priority jobs is queued first, then a burst of High-priority
// jobs arrives behind it. Under v2 the burst jumps to the next rounds;
// under the baseline (every job Normal — exactly what the v1 API could
// express) the burst waits out the backlog. Reported per class:
// p50/p99 submit→completion latency.
func runPriority(quick, asJSON bool) error {
	report, err := prioritySweep(quick)
	if err != nil {
		return err
	}
	v2, v1 := report.V2, report.V1
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("# Priority scheduling latency split (%s mode)\n\n", report.Mode)
	fmt.Printf("%d-job Low backlog (%s spin payloads), then a %d-job High burst; 2 shards × 4 workers, RoundTarget 2ms.\n\n",
		report.Backlog, report.Spin, report.Burst)
	fmt.Println("| run | high p50 µs | high p99 µs | low p50 µs | low p99 µs | rounds | dups |")
	fmt.Println("|-----|------------:|------------:|-----------:|-----------:|-------:|-----:|")
	for _, r := range []priorityRun{v2, v1} {
		fmt.Printf("| %s | %.1f | %.1f | %.1f | %.1f | %d | %d |\n",
			r.Label, r.High.P50Micros, r.High.P99Micros, r.Low.P50Micros, r.Low.P99Micros, r.Rounds, r.Duplicates)
	}
	fmt.Printf("\nHigh-priority p99 speedup vs the v1 single-ring baseline: **%.1f×**\n\n", report.SpeedupP99)
	return nil
}

// priorityReps mirrors the other sweeps' rep discipline: the headline
// number is a ratio of two p99s from runs of a few hundred milliseconds,
// so a single scheduler hiccup in either run can swing it several-fold.
const priorityReps = 3

// prioritySweep runs the inversion workload (v2 classes and the v1
// baseline) and returns the report (shared by -priority and -suite).
// The v2/v1 pair runs priorityReps times and the pair with the median
// speedup is reported — the two runs of a pair share machine conditions,
// so medianing pairs (rather than each side independently) keeps the
// reported split internally consistent.
func prioritySweep(quick bool) (priorityReport, error) {
	var zero priorityReport
	backlog, burst, spin := 30_000, 64, 20*time.Microsecond
	if quick {
		backlog = 8_000
	}
	type pair struct {
		v2, v1  priorityRun
		speedup float64
	}
	pairs := make([]pair, 0, priorityReps)
	for r := 0; r < priorityReps; r++ {
		collectGarbage()
		v2, err := priorityOnce(backlog, burst, spin, true)
		if err != nil {
			return zero, err
		}
		collectGarbage()
		v1, err := priorityOnce(backlog, burst, spin, false)
		if err != nil {
			return zero, err
		}
		p := pair{v2: v2, v1: v1}
		if v2.High.P99Micros > 0 {
			p.speedup = v1.High.P99Micros / v2.High.P99Micros
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].speedup < pairs[j].speedup })
	med := pairs[len(pairs)/2]
	return priorityReport{
		Mode: mode(quick), Backlog: backlog, Burst: burst, Spin: spin.String(),
		Meta: collectMeta(), V2: med.v2, V1: med.v1, SpeedupP99: med.speedup,
	}, nil
}

// priorityOnce runs the inversion workload once. usePriorities selects
// the v2 classes; false replays the identical job stream with every
// Task at Normal priority — the v1 single-ring schedule.
func priorityOnce(backlog, burst int, spin time.Duration, usePriorities bool) (priorityRun, error) {
	var zero priorityRun
	run := priorityRun{Label: "v1-baseline"}
	lowPri, highPri := atmostonce.Normal, atmostonce.Normal
	if usePriorities {
		run.Label = "v2"
		lowPri, highPri = atmostonce.Low, atmostonce.High
	}
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          2,
		WorkersPerShard: 4,
		MaxBatch:        512,
		RoundTarget:     2 * time.Millisecond,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	payload := func(context.Context) error {
		for t0 := time.Now(); time.Since(t0) < spin; {
		}
		return nil
	}
	// Sample every 16th backlog job's latency; callbacks append to the
	// shared slice under lowMu (they fire on the shard loops).
	lowLat := make([]int64, 0, backlog/16+1)
	var lowMu sync.Mutex
	start := time.Now()
	ctx := context.Background()
	tasks := make([]atmostonce.Task, backlog)
	for i := range tasks {
		tasks[i] = atmostonce.Task{Fn: payload, Priority: lowPri}
		if i%16 == 0 {
			t0 := time.Now()
			tasks[i].Callback = func(atmostonce.JobResult) {
				l := int64(time.Since(t0))
				lowMu.Lock()
				lowLat = append(lowLat, l)
				lowMu.Unlock()
			}
		}
	}
	if _, err := d.DoBatch(ctx, tasks); err != nil {
		return zero, err
	}
	// The burst arrives behind the whole backlog.
	highLat := make([]int64, burst)
	var wg sync.WaitGroup
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		idx := i
		t0 := time.Now()
		if _, err := d.Do(ctx, atmostonce.Task{
			Fn:       payload,
			Priority: highPri,
			Callback: func(atmostonce.JobResult) {
				highLat[idx] = int64(time.Since(t0))
				wg.Done()
			},
		}); err != nil {
			return zero, err
		}
	}
	wg.Wait()
	d.Flush()
	run.ElapsedMS = float64(time.Since(start)) / 1e6

	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("priority: %d duplicate executions", st.Duplicates)
	}
	if st.Performed != uint64(backlog+burst) {
		return zero, fmt.Errorf("priority: performed %d of %d jobs", st.Performed, backlog+burst)
	}
	run.Rounds, run.Expired, run.Duplicates = st.Rounds, st.Expired, st.Duplicates
	run.High = classStats(highLat)
	run.Low = classStats(lowLat)
	return run, nil
}

// classStats folds one class's latency samples into its report row.
func classStats(lat []int64) priorityClass {
	c := priorityClass{Jobs: len(lat)}
	if len(lat) == 0 {
		return c
	}
	sorted := make([]int64, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 { return float64(sorted[int(p*float64(len(sorted)-1))]) / 1e3 }
	c.P50Micros, c.P99Micros = pct(0.50), pct(0.99)
	return c
}
