package main

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// benchMeta stamps a bench document with the environment it ran in, so
// BENCH_N.json trajectories stay interpretable across machines and
// toolchains: a jobs/sec delta means nothing without knowing whether
// the core count or compiler changed underneath it.
type benchMeta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GitRev     string `json:"git_rev"`
	Timestamp  string `json:"timestamp"`
}

// collectMeta snapshots the environment. The git revision is best
// effort: outside a work tree (or without git) it reads "unknown"
// rather than failing the bench.
// collectGarbage forces a full collection before a timed rep — the same
// discipline testing.B applies before each benchmark run. Without it,
// garbage accumulated by earlier sweeps in the same -suite process gets
// collected DURING a later sweep's timed window, and the pause lands in
// that sweep's latency tail (observed: +20-30% on the 2-shard async p99
// with nothing else changed).
func collectGarbage() {
	runtime.GC()
}

func collectMeta() benchMeta {
	m := benchMeta{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GitRev:     "unknown",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			m.GitRev = rev
		}
	}
	return m
}
