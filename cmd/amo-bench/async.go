package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"atmostonce"
	"atmostonce/internal/membackend"
)

// asyncShape is one sweep point of the async latency benchmark: a
// dispatcher shape plus the bounded queue the producers push against.
type asyncShape struct {
	Shards     int `json:"shards"`
	Workers    int `json:"workers"`
	Batch      int `json:"batch"`
	QueueDepth int `json:"queue_depth"`
	// Skewed makes one shard's jobs slow: a single producer submits
	// sequentially (round-robin placement then maps job parity onto
	// shard identity for a 2-shard dispatcher) and gives every
	// even-indexed job a spin payload, so shard 0 backs up in wall time
	// while shard 1 drains, goes idle and steals. This is the imbalance
	// the balanced sweeps never create: round-robin placement keeps
	// queue depths within one job of each other and every shard busy
	// until end-of-stream drain, so the idle-steal trigger (empty own
	// queue + a sibling with ≥ 2 pending) has nothing to fire on and
	// stolen_jobs stays ~0 by construction. The skewed point exists to
	// exercise and measure stealing.
	Skewed bool `json:"skewed,omitempty"`
}

// asyncResult is one measured sweep point: per-job completion latency
// percentiles (submit → future resolution) alongside throughput and the
// pipeline's observability counters.
type asyncResult struct {
	asyncShape
	Rounds  uint64 `json:"rounds"`
	Residue uint64 `json:"residue"`
	// StolenJobs counts jobs idle shards claimed from siblings;
	// SubmitBlockedNanos is the total time producers spent parked on
	// full queues (Block policy backpressure).
	StolenJobs         uint64  `json:"stolen_jobs"`
	SubmitBlockedNanos uint64  `json:"submit_blocked_nanos"`
	JobsPerSec         float64 `json:"jobs_per_sec"`
	P50Micros          float64 `json:"p50_us"`
	P99Micros          float64 `json:"p99_us"`
	P999Micros         float64 `json:"p999_us"`
	// HistP50Micros/HistP99Micros are the same submit→done quantiles
	// read back from the dispatcher's obs latency histogram
	// (amo_dispatcher_submit_to_done_seconds): 1-in-16 sampled and
	// log-bucketed (≤12.5% relative error) where p50_us/p99_us are
	// exact over every job. Committing both lets trajectories
	// cross-check what a production scrape would report against ground
	// truth.
	HistP50Micros float64 `json:"hist_p50_us"`
	HistP99Micros float64 `json:"hist_p99_us"`
}

// asyncReport is the -async -json document.
type asyncReport struct {
	Mode      string        `json:"mode"`
	Jobs      int           `json:"jobs"`
	Producers int           `json:"producers"`
	Backend   string        `json:"backend"`
	Meta      benchMeta     `json:"meta"`
	Results   []asyncResult `json:"results"`
}

const asyncProducers = 4

// asyncReps is higher than benchReps: the latency percentiles are the
// headline numbers of this sweep and a tail percentile over one rep is
// far noisier than a throughput mean, so the median gets more samples.
const asyncReps = 5

// runAsync benchmarks the async submission pipeline: concurrent
// producers drive SubmitCallback against a bounded queue (Block policy),
// and every job's completion latency — submit call to future resolution,
// queue wait and backpressure stall included — is recorded exactly. The
// payload is a single atomic increment, so the percentiles measure the
// pipeline itself: round cutting, adaptive sizing, carry-over, stealing
// and notification, not user work.
func runAsync(quick, asJSON bool, backend string) error {
	report, err := asyncSweep(quick, backend)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("# Async submission pipeline latency (%s mode, %s backend)\n\n", report.Mode, report.Backend)
	fmt.Printf("%d jobs per shape (median of %d reps after %d warmup jobs), %d producers, SubmitPolicy Block; payload = one atomic increment.\n\n",
		report.Jobs, asyncReps, benchWarmup, asyncProducers)
	fmt.Println("| shards | workers | max batch | queue depth | skew | rounds | stolen | blocked ms | jobs/sec | p50 µs | p99 µs | p999 µs | hist p50 µs | hist p99 µs |")
	fmt.Println("|-------:|--------:|----------:|------------:|:----:|-------:|-------:|-----------:|---------:|-------:|-------:|--------:|------------:|------------:|")
	for _, res := range report.Results {
		skew := ""
		if res.Skewed {
			skew = "✓"
		}
		fmt.Printf("| %d | %d | %d | %d | %s | %d | %d | %.1f | %.0f | %.1f | %.1f | %.1f | %.1f | %.1f |\n",
			res.Shards, res.Workers, res.Batch, res.QueueDepth, skew, res.Rounds, res.StolenJobs,
			float64(res.SubmitBlockedNanos)/1e6, res.JobsPerSec,
			res.P50Micros, res.P99Micros, res.P999Micros,
			res.HistP50Micros, res.HistP99Micros)
	}
	fmt.Println()
	return nil
}

// asyncSweep measures every shape and returns the report (shared by
// -async, -suite and -compare). The final shape is the skewed-producer
// point: shard 0 is crash-degraded so its siblings actually steal.
func asyncSweep(quick bool, backend string) (asyncReport, error) {
	var zero asyncReport
	jobs := 200_000
	shapes := []asyncShape{
		{1, 2, 256, 1024, false}, {1, 4, 1024, 4096, false},
		{2, 4, 1024, 4096, false}, {4, 4, 1024, 4096, false},
		{4, 8, 1024, 8192, false}, {8, 4, 4096, 8192, false},
	}
	if quick {
		// Quick mode trims the shape list but keeps a long stream: with
		// ~8k jobs resident in the bounded queues at the larger shapes, a
		// short stream makes the p99 a property of a few round bursts (and
		// of whatever scheduler stall hits the window) rather than of the
		// pipeline; 100k jobs keeps the resident set under 10% of the
		// stream and the tail percentiles reproducible.
		jobs = 100_000
		shapes = shapes[:4]
	}
	shapes = append(shapes, asyncShape{2, 4, 1024, 4096, true})

	backend, cleanup, err := tempMmap(backend)
	if err != nil {
		return zero, err
	}
	defer cleanup()

	report := asyncReport{Mode: mode(quick), Jobs: jobs, Producers: asyncProducers, Backend: backendLabel(backend), Meta: collectMeta()}
	for i, sh := range shapes {
		j := jobs
		if sh.Skewed {
			// The skew point demonstrates stealing, not tail latency, and
			// a 30k stream triggers it far more reliably than a long one:
			// over a long stream the single producer spends most of its
			// time parked on shard 0's full queue, the two shards settle
			// into a lockstep cadence, and shard 1's idle windows (the
			// steal trigger) mostly vanish. The short stream's larger
			// drain fraction guarantees a backlogged shard 0 next to an
			// idle shard 1.
			j = 30_000
		}
		res, err := asyncMedian(sh, j, shapeSpec(backend, i))
		if err != nil {
			return zero, err
		}
		report.Results = append(report.Results, res)
	}
	return report, nil
}

// asyncMedian runs asyncOnce asyncReps times — each rep on a fresh
// dispatcher (fresh register files for durable backends) — and returns
// the rep with the median jobs/sec, except that each latency percentile
// is replaced by its own median across the reps: a rep with typical
// throughput can still catch one bad end-of-stream drain tail, and a
// committed trajectory point should report the typical tail, not the
// tail of whichever rep happened to have median throughput.
func asyncMedian(sh asyncShape, jobs int, backend string) (asyncResult, error) {
	runs := make([]asyncResult, 0, asyncReps)
	for r := 0; r < asyncReps; r++ {
		collectGarbage()
		res, err := asyncOnce(sh, jobs, membackend.WithSuffix(backend, fmt.Sprintf(".rep%d", r)))
		if err != nil {
			return asyncResult{}, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].JobsPerSec < runs[j].JobsPerSec })
	med := runs[len(runs)/2]
	medianOf := func(field func(asyncResult) float64) float64 {
		vs := make([]float64, len(runs))
		for i, r := range runs {
			vs[i] = field(r)
		}
		sort.Float64s(vs)
		return vs[len(vs)/2]
	}
	med.P50Micros = medianOf(func(r asyncResult) float64 { return r.P50Micros })
	med.P99Micros = medianOf(func(r asyncResult) float64 { return r.P99Micros })
	med.P999Micros = medianOf(func(r asyncResult) float64 { return r.P999Micros })
	med.HistP50Micros = medianOf(func(r asyncResult) float64 { return r.HistP50Micros })
	med.HistP99Micros = medianOf(func(r asyncResult) float64 { return r.HistP99Micros })
	return med, nil
}

// asyncOnce streams one shape and returns its measured result.
func asyncOnce(sh asyncShape, jobs int, backend string) (asyncResult, error) {
	var zero asyncResult
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          sh.Shards,
		WorkersPerShard: sh.Workers,
		MaxBatch:        sh.Batch,
		QueueDepth:      sh.QueueDepth,
		SubmitPolicy:    atmostonce.Block,
		Backend:         backend,
		JournalBatch:    benchJournalBatch,
		// The async sweep's headline numbers are latencies, so the obs
		// registry is always on: each point reports the latency
		// histogram's view of p50/p99 next to the exact percentiles.
		Metrics:     true,
		MetricsAddr: benchMetricsAddr,
		// Slack beyond the timed jobs: the warmup stream, plus each
		// shard's possibly part-consumed leased id block.
		MaxJobs: jobs + benchWarmup + 64*sh.Shards,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	// Warm pools, rings and the round controller outside the timed window.
	noop := func() {}
	for i := 0; i < benchWarmup; i++ {
		if _, err := d.Submit(noop); err != nil {
			return zero, err
		}
	}
	d.Flush()

	// The skewed point uses ONE sequential producer so single-submit
	// round-robin placement is deterministic: with 2 shards, job parity
	// IS shard identity, and the spin payload on every even job lands
	// all the slow work on shard 0 (the warmup stream is even-length,
	// preserving parity). Shard 1 then outruns its feed, goes idle and
	// steals from shard 0's backlog — measurable on any core count,
	// unlike crash-degrading shard 0's workers, which costs nothing in
	// wall time on a single-core runner.
	producers := asyncProducers
	spin := func() {
		for t0 := time.Now(); time.Since(t0) < 20*time.Microsecond; {
		}
	}
	if sh.Skewed {
		producers = 1
	}

	// One exact latency cell per job; producers and callbacks write
	// disjoint indices, so no synchronization beyond the WaitGroup.
	lat := make([]int64, jobs)
	per := jobs / producers
	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo, hi := p*per, (p+1)*per
			if p == producers-1 {
				hi = jobs
			}
			for i := lo; i < hi; i++ {
				idx := i
				fn := noop
				if sh.Skewed && i%2 == 0 {
					fn = spin
				}
				t0 := time.Now()
				if _, err := d.SubmitCallback(fn, func(atmostonce.JobResult) {
					lat[idx] = int64(time.Since(t0))
				}); err != nil {
					errOnce.Do(func() { submitErr = err })
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if submitErr != nil {
		return zero, submitErr
	}
	d.Flush()
	elapsed := time.Since(start)

	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("async: %d duplicate executions", st.Duplicates)
	}
	if st.Performed != uint64(jobs+benchWarmup) {
		return zero, fmt.Errorf("async: performed %d of %d jobs", st.Performed, jobs+benchWarmup)
	}
	for i, l := range lat {
		if l == 0 {
			return zero, fmt.Errorf("async: job %d never resolved its future", i)
		}
	}
	// The histogram's view of the same distribution, read back before
	// Close. ok is false only if the 1-in-16 sample mask caught nothing,
	// which cannot happen over these stream lengths.
	var histP50, histP99 float64
	if qs, ok := d.LatencyQuantiles(0.5, 0.99); ok {
		histP50 = float64(qs[0]) / 1e3
		histP99 = float64(qs[1]) / 1e3
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / 1e3
	}
	return asyncResult{
		asyncShape:         sh,
		Rounds:             st.Rounds,
		Residue:            st.Residue,
		StolenJobs:         st.StolenJobs,
		SubmitBlockedNanos: st.SubmitBlockedNanos,
		JobsPerSec:         float64(jobs) / elapsed.Seconds(),
		P50Micros:          pct(0.50),
		P99Micros:          pct(0.99),
		P999Micros:         pct(0.999),
		HistP50Micros:      histP50,
		HistP99Micros:      histP99,
	}, nil
}
