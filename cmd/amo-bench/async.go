package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"atmostonce"
)

// asyncShape is one sweep point of the async latency benchmark: a
// dispatcher shape plus the bounded queue the producers push against.
type asyncShape struct {
	Shards     int `json:"shards"`
	Workers    int `json:"workers"`
	Batch      int `json:"batch"`
	QueueDepth int `json:"queue_depth"`
}

// asyncResult is one measured sweep point: per-job completion latency
// percentiles (submit → future resolution) alongside throughput and the
// pipeline's observability counters.
type asyncResult struct {
	asyncShape
	Rounds  uint64 `json:"rounds"`
	Residue uint64 `json:"residue"`
	// StolenJobs counts jobs idle shards claimed from siblings;
	// SubmitBlockedNanos is the total time producers spent parked on
	// full queues (Block policy backpressure).
	StolenJobs         uint64  `json:"stolen_jobs"`
	SubmitBlockedNanos uint64  `json:"submit_blocked_nanos"`
	JobsPerSec         float64 `json:"jobs_per_sec"`
	P50Micros          float64 `json:"p50_us"`
	P99Micros          float64 `json:"p99_us"`
	P999Micros         float64 `json:"p999_us"`
}

// asyncReport is the -async -json document.
type asyncReport struct {
	Mode      string        `json:"mode"`
	Jobs      int           `json:"jobs"`
	Producers int           `json:"producers"`
	Backend   string        `json:"backend"`
	Results   []asyncResult `json:"results"`
}

const asyncProducers = 4

// runAsync benchmarks the async submission pipeline: concurrent
// producers drive SubmitCallback against a bounded queue (Block policy),
// and every job's completion latency — submit call to future resolution,
// queue wait and backpressure stall included — is recorded exactly. The
// payload is a single atomic increment, so the percentiles measure the
// pipeline itself: round cutting, adaptive sizing, carry-over, stealing
// and notification, not user work.
func runAsync(quick, asJSON bool, backend string) error {
	jobs := 200_000
	shapes := []asyncShape{
		{1, 2, 256, 1024}, {1, 4, 1024, 4096},
		{2, 4, 1024, 4096}, {4, 4, 1024, 4096},
		{4, 8, 1024, 8192}, {8, 4, 4096, 8192},
	}
	if quick {
		jobs = 30_000
		shapes = shapes[:4]
	}

	backend, cleanup, err := tempMmap(backend)
	if err != nil {
		return err
	}
	defer cleanup()

	report := asyncReport{Mode: mode(quick), Jobs: jobs, Producers: asyncProducers, Backend: backendLabel(backend)}
	if !asJSON {
		fmt.Printf("# Async submission pipeline latency (%s mode, %s backend)\n\n", report.Mode, report.Backend)
		fmt.Printf("%d jobs per shape, %d producers, SubmitPolicy Block; payload = one atomic increment.\n\n", jobs, asyncProducers)
		fmt.Println("| shards | workers | max batch | queue depth | rounds | stolen | blocked ms | jobs/sec | p50 µs | p99 µs | p999 µs |")
		fmt.Println("|-------:|--------:|----------:|------------:|-------:|-------:|-----------:|---------:|-------:|-------:|--------:|")
	}
	for i, sh := range shapes {
		res, err := asyncOnce(sh, jobs, shapeSpec(backend, i))
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
		if !asJSON {
			fmt.Printf("| %d | %d | %d | %d | %d | %d | %.1f | %.0f | %.1f | %.1f | %.1f |\n",
				sh.Shards, sh.Workers, sh.Batch, sh.QueueDepth, res.Rounds, res.StolenJobs,
				float64(res.SubmitBlockedNanos)/1e6, res.JobsPerSec,
				res.P50Micros, res.P99Micros, res.P999Micros)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Println()
	return nil
}

// asyncOnce streams one shape and returns its measured result.
func asyncOnce(sh asyncShape, jobs int, backend string) (asyncResult, error) {
	var zero asyncResult
	d, err := atmostonce.NewDispatcher(atmostonce.DispatcherConfig{
		Shards:          sh.Shards,
		WorkersPerShard: sh.Workers,
		MaxBatch:        sh.Batch,
		QueueDepth:      sh.QueueDepth,
		SubmitPolicy:    atmostonce.Block,
		Backend:         backend,
		MaxJobs:         jobs,
	})
	if err != nil {
		return zero, err
	}
	defer d.Close()

	// One exact latency cell per job; producers and callbacks write
	// disjoint indices, so no synchronization beyond the WaitGroup.
	lat := make([]int64, jobs)
	noop := func() {}
	per := jobs / asyncProducers
	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	start := time.Now()
	for p := 0; p < asyncProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo, hi := p*per, (p+1)*per
			if p == asyncProducers-1 {
				hi = jobs
			}
			for i := lo; i < hi; i++ {
				idx := i
				t0 := time.Now()
				if _, err := d.SubmitCallback(noop, func(atmostonce.JobResult) {
					lat[idx] = int64(time.Since(t0))
				}); err != nil {
					errOnce.Do(func() { submitErr = err })
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if submitErr != nil {
		return zero, submitErr
	}
	d.Flush()
	elapsed := time.Since(start)

	st := d.Stats()
	if st.Duplicates != 0 {
		return zero, fmt.Errorf("async: %d duplicate executions", st.Duplicates)
	}
	if st.Performed != uint64(jobs) {
		return zero, fmt.Errorf("async: performed %d of %d jobs", st.Performed, jobs)
	}
	for i, l := range lat {
		if l == 0 {
			return zero, fmt.Errorf("async: job %d never resolved its future", i)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / 1e3
	}
	return asyncResult{
		asyncShape:         sh,
		Rounds:             st.Rounds,
		Residue:            st.Residue,
		StolenJobs:         st.StolenJobs,
		SubmitBlockedNanos: st.SubmitBlockedNanos,
		JobsPerSec:         float64(jobs) / elapsed.Seconds(),
		P50Micros:          pct(0.50),
		P99Micros:          pct(0.99),
		P999Micros:         pct(0.999),
	}, nil
}
