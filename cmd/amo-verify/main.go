// Command amo-verify exhaustively model-checks a small KKβ (or
// IterStepKK) configuration: it explores every interleaving and crash
// pattern, verifying Lemma 4.1 (at-most-once), Lemma 4.3 (no fair
// cycles), Theorem 4.4's effectiveness lower bound and, in -iterstep
// mode, Lemma 6.2 (outputs contain no performed jobs).
//
// Usage:
//
//	amo-verify -n 3 -m 2 -f 1
//	amo-verify -n 2 -m 2 -f 1 -iterstep
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"atmostonce/internal/core"
	"atmostonce/internal/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amo-verify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amo-verify", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 3, "number of jobs")
		m         = fs.Int("m", 2, "number of processes")
		beta      = fs.Int("beta", 0, "termination parameter β (0 = m)")
		f         = fs.Int("f", 1, "crash budget")
		iterStep  = fs.Bool("iterstep", false, "check the IterStepKK variant (§6)")
		maxStates = fs.Int("max-states", 0, "state budget (0 = 4e6)")
		suite     = fs.Bool("suite", false, "run the standard verification suite and print a summary table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite {
		return runSuite(*maxStates)
	}
	fmt.Printf("exploring KKβ: n=%d m=%d β=%d f=%d iterstep=%v\n", *n, *m, orM(*beta, *m), *f, *iterStep)
	start := time.Now()
	stats, err := verify.ExploreKK(verify.MCConfig{
		N: *n, M: *m, Beta: *beta, F: *f, IterStep: *iterStep, MaxStates: *maxStates,
	})
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		var v *verify.MCViolationError
		if errors.As(err, &v) {
			fmt.Printf("VIOLATION (%s): %s\n", v.Kind, v.Detail)
			fmt.Println("witness schedule:")
			for i, d := range v.Witness {
				fmt.Printf("  %3d: %+v\n", i, d)
			}
		}
		return err
	}
	fmt.Printf("states visited        %d\n", stats.States)
	fmt.Printf("terminal states       %d\n", stats.Terminals)
	fmt.Printf("Do(α) range           [%d, %d]\n", stats.MinDo, stats.MaxDo)
	if !*iterStep {
		fmt.Printf("effectiveness bound   %d (every terminal must reach it)\n",
			core.EffectivenessBound(*n, *m, *beta))
	}
	fmt.Printf("cycles (all unfair)   %d\n", stats.Cycles)
	fmt.Printf("elapsed               %s\n", elapsed)
	fmt.Println("all properties verified on the full execution tree")
	return nil
}

func orM(beta, m int) int {
	if beta == 0 {
		return m
	}
	return beta
}

// runSuite explores the standard battery of small configurations and
// prints the Markdown table EXPERIMENTS.md embeds.
func runSuite(maxStates int) error {
	configs := []verify.MCConfig{
		{N: 2, M: 2, F: 1},
		{N: 3, M: 2, F: 0},
		{N: 3, M: 2, F: 1},
		{N: 4, M: 2, F: 1},
		{N: 3, M: 3, F: 1},
		{N: 2, M: 2, F: 1, IterStep: true},
		{N: 3, M: 2, F: 1, IterStep: true},
	}
	fmt.Println("| config | states | terminals | Do range | bound | fair cycles | violations |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, cfg := range configs {
		cfg.MaxStates = maxStates
		start := time.Now()
		stats, err := verify.ExploreKK(cfg)
		if err != nil {
			return fmt.Errorf("config %+v: %w", cfg, err)
		}
		name := fmt.Sprintf("n=%d m=%d f=%d", cfg.N, cfg.M, cfg.F)
		bound := fmt.Sprintf("%d", core.EffectivenessBound(cfg.N, cfg.M, cfg.Beta))
		if cfg.IterStep {
			name += " (IterStepKK)"
			bound = "—"
		}
		fmt.Printf("| %s | %d | %d | [%d,%d] | %s | %d | 0 |\n",
			name, stats.States, stats.Terminals, stats.MinDo, stats.MaxDo, bound, stats.Cycles)
		_ = start
	}
	fmt.Println("\nall configurations verified exhaustively")
	return nil
}
