package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunIterStep(t *testing.T) {
	if err := run([]string{"-n", "2", "-m", "2", "-f", "1", "-iterstep"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	if err := run([]string{"-n", "4", "-m", "2", "-f", "1", "-max-states", "5"}); err == nil {
		t.Fatal("state budget not enforced")
	}
}

func TestRunSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full battery is slow")
	}
	if err := run([]string{"-suite"}); err != nil {
		t.Fatal(err)
	}
}
